(* Differential suite for the compiled µop execution core (Phloem_ir.Flat)
   against the tree-walking interpreter (Phloem_ir.Interp).

   The flat path's contract is byte-identity: same architectural results,
   same micro-op trace (every column, every token), same queue traffic,
   same runtime errors and forensics reports, and budget exhaustion after
   exactly the same number of charged ops. These tests sweep every
   workload's variants on smoke inputs plus hand-built pipelines that
   exercise the compiler's hard corners (control-value handlers, unwinds
   across handler frames, operand capture around dequeues). *)

open Phloem_ir
open Phloem_ir.Builder
open Phloem_workloads
module Vec = Phloem_util.Vec

(* --- equality of everything the rest of the system can observe --- *)

let check_trace_eq name (a : Trace.t) (b : Trace.t) =
  Alcotest.(check int)
    (name ^ ": thread count") (Array.length a.Trace.threads)
    (Array.length b.Trace.threads);
  Array.iteri
    (fun i ta ->
      let pa = Trace.pack ta and pb = Trace.pack b.Trace.threads.(i) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: thread %d trace columns identical" name i)
        true (pa = pb))
    a.Trace.threads;
  Alcotest.(check int)
    (name ^ ": RA count") (Array.length a.Trace.ras)
    (Array.length b.Trace.ras);
  Array.iteri
    (fun i ra ->
      let rb = b.Trace.ras.(i) in
      let cols (r : Trace.ra_trace) =
        ( Vec.Int_vec.to_array r.Trace.rt_in_seq,
          Vec.Int_vec.to_array r.Trace.rt_out_seq,
          Vec.Int_vec.to_array r.Trace.rt_addr,
          Vec.Int_vec.to_array r.Trace.rt_size )
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: RA %d trace identical" name i)
        true
        (cols ra = cols rb))
    a.Trace.ras;
  Alcotest.(check int) (name ^ ": total ops") a.Trace.total_ops b.Trace.total_ops

let check_result_eq name (a : Interp.result) (b : Interp.result) =
  List.iter2
    (fun (na, va) (nb, vb) ->
      Alcotest.(check string) (name ^ ": array order") na nb;
      Alcotest.(check bool)
        (Printf.sprintf "%s: array %s contents identical" name na)
        true (va = vb))
    a.Interp.r_arrays b.Interp.r_arrays;
  Alcotest.(check int) (name ^ ": instr count") a.Interp.r_instrs b.Interp.r_instrs;
  Alcotest.(check bool)
    (name ^ ": queue traffic identical")
    true
    (a.Interp.r_queue_traffic = b.Interp.r_queue_traffic);
  check_trace_eq name a.Interp.r_trace b.Interp.r_trace

(* Run one execution path, capturing failures in a comparable form. *)
let capture f =
  match f () with
  | v -> Ok v
  | exception Interp.Runtime_error m -> Error ("runtime: " ^ m)
  | exception Interp.Budget_exceeded -> Error "budget"
  | exception Forensics.Pipeline_failure r ->
    Error
      (Printf.sprintf "forensics exit %d at %d:\n%s"
         (Forensics.exit_code r.Forensics.fr_kind)
         r.Forensics.fr_at (Forensics.render r))

(* The core differential assertion: tree and flat agree on outcome —
   results byte-identical, or the same failure. *)
let diff ?(inputs = []) name p =
  let tree = capture (fun () -> Interp.run ~inputs p) in
  let flat = capture (fun () -> Flat.run ~inputs p) in
  match (tree, flat) with
  | Ok a, Ok b -> check_result_eq name a b
  | Error ea, Error eb -> Alcotest.(check string) (name ^ ": same failure") ea eb
  | Ok _, Error e -> Alcotest.failf "%s: tree completed but flat failed: %s" name e
  | Error e, Ok _ -> Alcotest.failf "%s: flat completed but tree failed: %s" name e

(* --- workload sweep: every benchmark x variant on smoke inputs --- *)

let diff_bound (b : Workload.bound) =
  let name = b.Workload.b_name in
  let dp, dins = b.Workload.b_data_parallel ~threads:4 in
  diff ~inputs:(snd b.Workload.b_serial) (name ^ "/serial") (fst b.Workload.b_serial);
  diff ~inputs:dins (name ^ "/data-parallel") dp;
  (match Phloem.Compile.static_flow ~stages:4 (fst b.Workload.b_serial) with
  | p -> diff ~inputs:(snd b.Workload.b_serial) (name ^ "/phloem") p
  | exception Phloem.Compile.Unsupported _ -> ());
  match b.Workload.b_manual with
  | Some (mp, mins) -> diff ~inputs:mins (name ^ "/manual") mp
  | None -> ()

let grid () = Phloem_graph.Gen.grid ~width:14 ~height:10 ~seed:3
let powerlaw () = Phloem_graph.Gen.rmat ~scale:7 ~edge_factor:3 ~seed:4

let test_workloads_graph () =
  List.iter diff_bound
    [
      Bfs.bind (grid ());
      Bfs.bind (powerlaw ());
      Cc.bind (grid ());
      Prd.bind (grid ());
      Radii.bind (grid ());
    ]

let test_workloads_sparse () =
  let a = Phloem_sparse.Gen.random ~rows:24 ~cols:24 ~nnz_per_row:3 ~seed:41 in
  let bt = Phloem_sparse.Gen.random ~rows:24 ~cols:24 ~nnz_per_row:3 ~seed:42 in
  diff_bound (Spmm.bind a bt);
  let m = Phloem_sparse.Gen.banded ~n:30 ~bandwidth:6 ~nnz_per_row:4 ~seed:43 in
  List.iter
    (fun k -> diff_bound (Taco_kernels.bind k m))
    [ Taco_kernels.Spmv; Taco_kernels.Residual; Taco_kernels.Mtmul;
      Taco_kernels.Sddmm ]

let test_workloads_replicated () =
  let g = grid () in
  let p, inputs, _ = Replicated.bfs g ~replicas:4 in
  diff ~inputs "replicated-bfs" p;
  let p, inputs, _ = Replicated.cc (powerlaw ()) ~replicas:4 in
  diff ~inputs "replicated-cc" p

(* --- handler and unwind corners --- *)

(* Fall-through retry: control values interleaved with data; the handler
   accumulates payloads, the dequeue retries transparently. *)
let test_handler_fallthrough () =
  diff "handler-fallthrough"
    (pipeline "hft"
       ~queues:[ queue 0 ]
       ~arrays:[ int_array "out" 10; int_array "seen" 1 ]
       [
         stage "prod"
           [
             for_ "i" (int 0) (int 8)
               [
                 when_ (v "i" %! int 3 ==! int 0) [ enq_ctrl 0 7 ];
                 enq 0 (v "i");
               ];
             enq_ctrl 0 9;
             enq 0 (int 99);
           ];
         stage "cons"
           ~handlers:
             [
               handler ~queue:0 ~cv:"cv"
                 [ atomic_add "seen" (int 0) (ctrl_payload (v "cv")) ];
             ]
           [
             for_ "i" (int 0) (int 9)
               [ "x" <-- deq 0; store "out" (v "i") (v "x") ];
           ];
       ])

(* Exit_loops 1 from a handler terminates the consumer's infinite loop. *)
let test_handler_exit_one () =
  diff "handler-exit-1"
    (pipeline "hx1"
       ~queues:[ queue 0 ]
       ~arrays:[ int_array "out" 8 ]
       [
         stage "prod"
           [ for_ "i" (int 0) (int 5) [ enq 0 (v "i" *! int 3) ]; enq_ctrl 0 1 ];
         stage "cons"
           ~handlers:[ handler ~queue:0 ~cv:"c" [ exit_loops 1 ] ]
           [
             "n" <-- int 0;
             loop_forever
               [
                 "x" <-- deq 0;
                 store "out" (v "n") (v "x");
                 "n" <-- v "n" +! int 1;
               ];
             store "out" (int 7) (int 555);
           ];
       ])

(* Exit_loops 2 unwinds both nested loops from inside the handler. *)
let test_handler_exit_two () =
  diff "handler-exit-2"
    (pipeline "hx2"
       ~queues:[ queue 0 ]
       ~arrays:[ int_array "out" 12 ]
       [
         stage "prod"
           [ for_ "i" (int 0) (int 6) [ enq 0 (v "i") ]; enq_ctrl 0 2 ];
         stage "cons"
           ~handlers:[ handler ~queue:0 ~cv:"c" [ exit_loops 2 ] ]
           [
             "n" <-- int 0;
             loop_forever
               [
                 loop_forever
                   [
                     "x" <-- deq 0;
                     store "out" (v "n") (v "x");
                     "n" <-- v "n" +! int 1;
                   ];
               ];
             store "out" (int 11) (int 777);
           ];
       ])

(* A loop and a break local to the handler body: the unwind resolves as a
   static jump inside the handler unit, then the dequeue retries. *)
let test_handler_local_break () =
  diff "handler-local-break"
    (pipeline "hlb"
       ~queues:[ queue 0 ]
       ~arrays:[ int_array "out" 8; int_array "seen" 1 ]
       [
         stage "prod"
           [
             enq_ctrl 0 5;
             for_ "i" (int 0) (int 4) [ enq 0 (v "i") ];
             enq_ctrl 0 6;
             enq 0 (int 42);
           ];
         stage "cons"
           ~handlers:
             [
               handler ~queue:0 ~cv:"c"
                 [
                   for_ "k" (int 0) (ctrl_payload (v "c"))
                     [
                       when_ (v "k" ==! int 2) [ break_ ];
                       atomic_add "seen" (int 0) (int 1);
                     ];
                 ];
             ]
           [
             for_ "i" (int 0) (int 5)
               [ "x" <-- deq 0; store "out" (v "i") (v "x") ];
           ];
       ])

(* Nested handler invocations: the q0 handler dequeues q1 (which has its
   own handler that unwinds two levels, crossing both handler frames back
   into the stage body's loop). *)
let test_nested_handlers () =
  diff "nested-handlers"
    (pipeline "nest"
       ~queues:[ queue 0; queue 1 ]
       ~arrays:[ int_array "out" 8; int_array "aux" 4 ]
       [
         stage "prod"
           [
             enq 0 (int 10);
             enq_ctrl 0 1;
             enq 1 (int 20);
             enq 0 (int 30);
             enq 1 (int 40);
             enq_ctrl 1 2;
             enq_ctrl 0 3;
           ];
         stage "cons"
           ~handlers:
             [
               handler ~queue:0 ~cv:"c0"
                 [ "y" <-- deq 1; store "aux" (ctrl_payload (v "c0")) (v "y") ];
               handler ~queue:1 ~cv:"c1" [ exit_loops 2 ];
             ]
           [
             "n" <-- int 0;
             loop_forever
               [
                 loop_forever
                   [
                     "x" <-- deq 0;
                     store "out" (v "n") (v "x");
                     "n" <-- v "n" +! int 1;
                   ];
               ];
             store "out" (int 7) (int 888);
           ];
       ])

(* Operand capture: the tree interpreter reads the left operand before the
   right-hand dequeue runs its handler (which clobbers the same variable);
   the compiled path must shield the captured value and token. *)
let test_operand_capture () =
  diff "operand-capture"
    (pipeline "shield"
       ~queues:[ queue 0 ]
       ~arrays:[ int_array "out" 4 ]
       [
         stage "prod" [ enq_ctrl 0 5; enq 0 (int 10) ];
         stage "cons"
           ~handlers:[ handler ~queue:0 ~cv:"c" [ "x" <-- int 100 ] ]
           [
             "x" <-- int 1;
             "y" <-- v "x" +! deq 0;
             store "out" (int 0) (v "y");
             store "out" (int 1) (v "x");
           ];
       ])

(* For-loop bound capture: the bound is evaluated once; a handler running
   mid-loop that rewrites the bound variable must not change trip count. *)
let test_for_bound_capture () =
  diff "for-bound-capture"
    (pipeline "bound"
       ~queues:[ queue 0 ]
       ~arrays:[ int_array "out" 8 ]
       [
         stage "prod"
           [ enq 0 (int 1); enq_ctrl 0 9; enq 0 (int 2); enq 0 (int 3) ];
         stage "cons"
           ~handlers:[ handler ~queue:0 ~cv:"c" [ "n" <-- int 0 ] ]
           [
             "n" <-- int 3;
             for_ "i" (int 0) (v "n")
               [ "x" <-- deq 0; store "out" (v "i") (v "x") ];
             store "out" (int 4) (v "n");
           ];
       ])

(* --- failure parity --- *)

let test_runtime_error_parity () =
  (* division by zero, out-of-bounds store, break outside any loop: same
     Runtime_error text on both paths *)
  diff "div-by-zero"
    (serial "dz" [ "x" <-- int 1 /! int 0 ]);
  diff "oob-store"
    (pipeline "oob" ~arrays:[ int_array "a" 4 ]
       [ stage "s" [ store "a" (int 9) (int 1) ] ]);
  diff "naked-break" (serial "nb" [ break_ ]);
  diff "unknown-array"
    (pipeline "ua" ~arrays:[ int_array "a" 4 ]
       [ stage "s" [ store "b" (int 0) (int 1) ] ])

let test_deadlock_parity () =
  (* a consumer starving on a queue nobody fills: both paths raise the
     same structured forensics report from the shared scheduler *)
  diff "starved-deq"
    (pipeline "starve"
       ~queues:[ queue 0; queue 1 ]
       [
         stage "a" [ "x" <-- deq 0 ];
         stage "b" [ enq 1 (int 1); "y" <-- deq 1; "z" <-- deq 0 ];
       ])

(* --- budget parity --- *)

(* The op budget is charged at exactly three sites shared by both paths;
   the flat path must exhaust a budget of N-1 and survive a budget of N for
   the same N. Find the tree path's exact threshold by binary search, then
   pin the flat path to it. *)
let test_budget_parity () =
  let p, inputs = (Bfs.bind (grid ())).Workload.b_serial in
  let tree () = ignore (Interp.run ~inputs p) in
  let flat () = ignore (Flat.run ~inputs p) in
  let passes run n =
    match Interp.with_max_ops n run with
    | () -> true
    | exception Interp.Budget_exceeded -> false
  in
  let rec up n = if passes tree n then n else up (2 * n) in
  let rec bin lo hi =
    if lo >= hi then hi
    else
      let m = (lo + hi) / 2 in
      if passes tree m then bin lo m else bin (m + 1) hi
  in
  let threshold = bin 1 (up 1024) in
  Alcotest.(check bool) "tree fails below threshold" false
    (passes tree (threshold - 1));
  Alcotest.(check bool)
    (Printf.sprintf "flat passes at threshold %d" threshold)
    true (passes flat threshold);
  Alcotest.(check bool) "flat fails below threshold" false
    (passes flat (threshold - 1))

(* --- misc op coverage: calls, indexed enqueues, unops, prefetch --- *)

let test_misc_ops () =
  diff "calls-and-misc"
    (pipeline "misc"
       ~queues:[ queue 0; queue 1; queue 2 ]
       ~arrays:[ int_array "out" 16; float_array "f" 4 ]
       ~params:[ ("base", Phloem_ir.Types.Vint 2) ]
       ~call_costs:[ ("hash", 3); ("free", 1) ]
       [
         stage "prod"
           [
             for_ "i" (int 0) (int 6)
               [
                 prefetch "out" (v "i");
                 enq_indexed [| 0; 1 |] (v "i" %! int 2) (call "hash" [ v "i"; v "base" ]);
               ];
             enq 2 (int 0);
             store "f" (int 0) (flt 1.5);
             store "f" (int 1) (fabs (neg (load "f" (int 0))));
             "c" <-- call "free" [];
             store "out" (int 15) (v "c" +! to_int (load "f" (int 1)));
           ];
         stage "cons"
           [
             "g" <-- deq 2;
             for_ "i" (int 0) (int 3)
               [
                 "a" <-- deq 0;
                 "b" <-- deq 1;
                 store "out" (v "i") (imin (v "a") (v "b"));
                 store "out" (v "i" +! int 3) (imax (v "a") (v "b"));
                 store "out" (v "i" +! int 6)
                   (not_ (v "a" ==! v "b") &&! (v "a" <=! v "b"));
               ];
           ];
       ])

let test_barrier_parity () =
  diff "barriers"
    (pipeline "barr"
       ~arrays:[ int_array "out" 4 ]
       [
         stage "a" [ store "out" (int 0) (int 1); barrier 0; "x" <-- load "out" (int 1); store "out" (int 2) (v "x" +! int 1); barrier 1 ];
         stage "b" [ store "out" (int 1) (int 7); barrier 0; barrier 1; store "out" (int 3) (load "out" (int 2)) ];
       ])

(* --- timing-path differential: Sim.run (compiled core, memoized traces)
   vs Sim.run_tree (tree-walking reference, cache-free). The contract
   extends byte-identity from architectural results to the full timing
   picture: cycles, stall attribution, cache/branch/queue counters, energy,
   the machine-readable JSON report, and forensics failures under fault
   injection. *)

module Sim = Pipette.Sim
module Faults = Pipette.Faults

let check_sim_eq name (a : Sim.run) (b : Sim.run) =
  check_result_eq name a.Sim.sr_functional b.Sim.sr_functional;
  Alcotest.(check bool)
    (name ^ ": timing result identical (cycles, attribution, counters)")
    true
    (a.Sim.sr_timing = b.Sim.sr_timing);
  Alcotest.(check bool)
    (name ^ ": energy breakdown identical")
    true
    (a.Sim.sr_energy = b.Sim.sr_energy);
  Alcotest.(check string)
    (name ^ ": json report identical")
    (Pipette.Telemetry.Json.to_string (Sim.json_of_run a))
    (Pipette.Telemetry.Json.to_string (Sim.json_of_run b))

(* Fresh [Faults.t] per execution path: reusing one continues its PRNG
   stream, which is exactly the non-determinism the plan abstraction
   exists to prevent. *)
let diff_sim ?(inputs = []) ?plan ?watchdog ?cycle_budget name p =
  let faults () = Option.map Faults.create plan in
  let tree =
    capture (fun () ->
        Sim.run_tree ~inputs ?faults:(faults ()) ?watchdog ?cycle_budget p)
  in
  let flat =
    capture (fun () ->
        Sim.run ~inputs ?faults:(faults ()) ?watchdog ?cycle_budget p)
  in
  match (tree, flat) with
  | Ok a, Ok b -> check_sim_eq name a b
  | Error ea, Error eb -> Alcotest.(check string) (name ^ ": same failure") ea eb
  | Ok _, Error e ->
    Alcotest.failf "%s: tree run completed but compiled run failed: %s" name e
  | Error e, Ok _ ->
    Alcotest.failf "%s: compiled run completed but tree run failed: %s" name e

(* Like [diff_sim] but both paths must fail, with the same forensics report
   and the expected exit code. *)
let diff_sim_fail ?(inputs = []) ?plan ?watchdog ?cycle_budget ~exit_code name
    p =
  let faults () = Option.map Faults.create plan in
  let tree =
    capture (fun () ->
        Sim.run_tree ~inputs ?faults:(faults ()) ?watchdog ?cycle_budget p)
  in
  let flat =
    capture (fun () ->
        Sim.run ~inputs ?faults:(faults ()) ?watchdog ?cycle_budget p)
  in
  match (tree, flat) with
  | Error ea, Error eb ->
    Alcotest.(check string) (name ^ ": same forensics report") ea eb;
    let prefix = Printf.sprintf "forensics exit %d" exit_code in
    Alcotest.(check bool)
      (Printf.sprintf "%s: failure kind (want %s, got %s)" name prefix
         (try String.sub ea 0 (min 24 (String.length ea)) with _ -> ea))
      true
      (String.length ea >= String.length prefix
      && String.sub ea 0 (String.length prefix) = prefix)
  | Ok _, Ok _ -> Alcotest.failf "%s: expected both paths to fail" name
  | Ok _, Error e ->
    Alcotest.failf "%s: tree run completed but compiled run failed: %s" name e
  | Error e, Ok _ ->
    Alcotest.failf "%s: compiled run completed but tree run failed: %s" name e

let sim_bound (b : Workload.bound) =
  let name = b.Workload.b_name ^ "-sim" in
  let dp, dins = b.Workload.b_data_parallel ~threads:4 in
  diff_sim
    ~inputs:(snd b.Workload.b_serial)
    (name ^ "/serial")
    (fst b.Workload.b_serial);
  diff_sim ~inputs:dins (name ^ "/data-parallel") dp;
  (match Phloem.Compile.static_flow ~stages:4 (fst b.Workload.b_serial) with
  | p -> diff_sim ~inputs:(snd b.Workload.b_serial) (name ^ "/phloem") p
  | exception Phloem.Compile.Unsupported _ -> ());
  match b.Workload.b_manual with
  | Some (mp, mins) -> diff_sim ~inputs:mins (name ^ "/manual") mp
  | None -> ()

let test_sim_workloads_graph () =
  List.iter sim_bound
    [
      Bfs.bind (grid ());
      Bfs.bind (powerlaw ());
      Cc.bind (grid ());
      Prd.bind (grid ());
      Radii.bind (grid ());
    ]

let test_sim_workloads_sparse () =
  let a = Phloem_sparse.Gen.random ~rows:24 ~cols:24 ~nnz_per_row:3 ~seed:41 in
  let bt = Phloem_sparse.Gen.random ~rows:24 ~cols:24 ~nnz_per_row:3 ~seed:42 in
  sim_bound (Spmm.bind a bt);
  let m = Phloem_sparse.Gen.banded ~n:30 ~bandwidth:6 ~nnz_per_row:4 ~seed:43 in
  List.iter
    (fun k -> sim_bound (Taco_kernels.bind k m))
    [ Taco_kernels.Spmv; Taco_kernels.Residual; Taco_kernels.Mtmul;
      Taco_kernels.Sddmm ]

(* Warm-cache replay: the second [Sim.run] serves the functional trace from
   the memo table; it must be indistinguishable from the cold run and from
   the cache-free tree path. *)
let test_sim_cache_warm () =
  let p, inputs = (Bfs.bind (grid ())).Workload.b_serial in
  Sim.clear_caches ();
  let cold = Sim.run ~inputs p in
  let warm = Sim.run ~inputs p in
  check_sim_eq "trace-cache warm replay" cold warm;
  let tree = Sim.run_tree ~inputs p in
  check_sim_eq "warm vs tree" warm tree

(* The cache-enabled flag is runtime state (a daemon toggles it), not a
   module-init constant: both toggle orders must work within one process.
   Disabled runs must not touch the memo tables; re-enabling must resume
   caching (miss then hit); results stay identical throughout. *)
let test_sim_cache_toggle () =
  let p, inputs = (Bfs.bind (grid ())).Workload.b_serial in
  let initial = Sim.cache_enabled () in
  Fun.protect
    ~finally:(fun () ->
      Sim.set_cache_enabled initial;
      Sim.clear_caches ())
    (fun () ->
      (* order 1: enabled -> disabled *)
      Sim.set_cache_enabled true;
      Sim.clear_caches ();
      let cold = Sim.run ~inputs p in
      Sim.set_cache_enabled false;
      let off = Sim.run ~inputs p in
      check_sim_eq "cache off vs cold" cold off;
      let c = Sim.cache_counters () in
      Alcotest.(check int) "disabled run records no trace hit/miss" 1
        (c.Sim.cc_trace_hits + c.Sim.cc_trace_misses);
      (* order 2: disabled -> enabled *)
      Sim.clear_caches ();
      let off2 = Sim.run ~inputs p in
      check_sim_eq "still disabled" cold off2;
      let c = Sim.cache_counters () in
      Alcotest.(check int) "still no cache traffic" 0
        (c.Sim.cc_trace_hits + c.Sim.cc_trace_misses);
      Sim.set_cache_enabled true;
      let warm_miss = Sim.run ~inputs p in
      let warm_hit = Sim.run ~inputs p in
      check_sim_eq "re-enabled miss" cold warm_miss;
      check_sim_eq "re-enabled hit" cold warm_hit;
      let c = Sim.cache_counters () in
      Alcotest.(check (pair int int))
        "re-enabling resumes caching (miss then hit)" (1, 1)
        (c.Sim.cc_trace_hits, c.Sim.cc_trace_misses))

(* The FIFO bound is configurable and must hold under churn: simulating
   more distinct pipelines than the capacity keeps both memo tables at the
   bound, with the overflow visible in the eviction counters and evicted
   entries re-missing on reuse. *)
let test_sim_cache_capacity_churn () =
  let initial_cap = Sim.cache_capacity () in
  let initial_on = Sim.cache_enabled () in
  Fun.protect
    ~finally:(fun () ->
      Sim.set_cache_capacity initial_cap;
      Sim.set_cache_enabled initial_on;
      Sim.clear_caches ())
    (fun () ->
      Alcotest.check_raises "capacity must be positive"
        (Invalid_argument "Sim.set_cache_capacity: capacity must be >= 1")
        (fun () -> Sim.set_cache_capacity 0);
      Sim.set_cache_enabled true;
      Sim.clear_caches ();
      Sim.set_cache_capacity 4;
      (* 10 structurally distinct pipelines (distinct iteration bounds) *)
      let pipe n =
        pipeline (Printf.sprintf "churn%d" n)
          ~queues:[ queue 0 ]
          [
            stage "prod" [ for_ "i" (int 0) (int n) [ enq 0 (v "i") ] ];
            stage "cons" [ for_ "i" (int 0) (int n) [ "x" <-- deq 0 ] ];
          ]
      in
      for n = 1 to 10 do
        ignore (Sim.run (pipe n))
      done;
      let c = Sim.cache_counters () in
      Alcotest.(check int) "trace entries at the bound" 4 c.Sim.cc_trace_entries;
      Alcotest.(check int) "program entries at the bound" 4
        c.Sim.cc_program_entries;
      Alcotest.(check int) "trace evictions = overflow" 6 c.Sim.cc_trace_evictions;
      Alcotest.(check int) "program evictions = overflow" 6
        c.Sim.cc_program_evictions;
      Alcotest.(check int) "all ten missed" 10 c.Sim.cc_trace_misses;
      (* oldest entries were evicted; the newest still hit *)
      ignore (Sim.run (pipe 10));
      ignore (Sim.run (pipe 1));
      let c = Sim.cache_counters () in
      Alcotest.(check int) "newest entry hits" 1 c.Sim.cc_trace_hits;
      Alcotest.(check int) "evicted entry re-misses" 11 c.Sim.cc_trace_misses;
      (* shrinking evicts immediately, oldest first *)
      Sim.set_cache_capacity 2;
      let c = Sim.cache_counters () in
      Alcotest.(check int) "shrink trims to the new bound" 2
        c.Sim.cc_trace_entries;
      Alcotest.(check int) "shrink trims programs too" 2 c.Sim.cc_program_entries)

(* A two-stage producer/consumer whose queue is the fault target. [n] is
   larger than the queue depth so occupancy faults bite. *)
let faulty_pipe n =
  pipeline "faulty"
    ~queues:[ queue 0 ]
    ~arrays:[ int_array "out" n ]
    [
      stage "prod" [ for_ "i" (int 0) (int n) [ enq 0 (v "i" *! v "i") ] ];
      stage "cons"
        [
          for_ "i" (int 0) (int n)
            [ "x" <-- deq 0; store "out" (v "i") (v "x") ];
        ];
    ]

(* Faults that perturb timing but let the run complete: both paths must
   draw the same PRNG decisions at the same replay points. Also checks that
   [rekey] variations stay aligned. *)
let test_sim_fault_perturbed () =
  let p, inputs = (Bfs.bind (grid ())).Workload.b_serial in
  let p =
    match Phloem.Compile.static_flow ~stages:4 p with
    | p -> p
    | exception Phloem.Compile.Unsupported _ -> Alcotest.fail "bfs static_flow"
  in
  let plan =
    Faults.plan ~key:7
      [
        Faults.Latency_spike { level = 4; extra = 200; prob = 0.5 };
        Faults.Predictor_poison { prob = 0.25 };
        Faults.Thread_stall { thread = 1; period = 500; duration = 50 };
      ]
  in
  diff_sim ~inputs ~plan "perturbed-complete" p;
  diff_sim ~inputs ~plan:(Faults.rekey plan ~attempt:3) "perturbed-rekeyed" p

(* The producer thread is permanently frozen mid-stream: the consumer
   starves on a queue nobody will ever fill again — deadlock, exit 5. *)
let test_sim_fault_deadlock () =
  diff_sim_fail ~exit_code:5
    ~plan:
      (Faults.plan ~key:11
         [ Faults.Thread_kill { thread = 0; after_retired = 10 } ])
    "kill-producer-deadlock" (faulty_pipe 64)

(* Every enqueue attempt transiently fails and is retried next cycle: the
   clock keeps ticking, nothing retires — livelock, exit 6. *)
let test_sim_fault_livelock () =
  diff_sim_fail ~exit_code:6 ~watchdog:3000
    ~plan:(Faults.plan ~key:13 [ Faults.Queue_drop { queue = 0; prob = 1.0 } ])
    "drop-forever-livelock" (faulty_pipe 64)

(* A healthy pipeline against a cycle budget far below its runtime —
   budget exhaustion, exit 7, at the same cycle on both paths. *)
let test_sim_budget_exhausted () =
  diff_sim_fail ~exit_code:7 ~cycle_budget:100 "tiny-cycle-budget"
    (faulty_pipe 64)

let () =
  Alcotest.run "flat"
    [
      ( "workloads",
        [
          Alcotest.test_case "graph benchmarks" `Quick test_workloads_graph;
          Alcotest.test_case "sparse benchmarks" `Quick test_workloads_sparse;
          Alcotest.test_case "replicated" `Quick test_workloads_replicated;
        ] );
      ( "handlers",
        [
          Alcotest.test_case "fall-through retry" `Quick test_handler_fallthrough;
          Alcotest.test_case "exit one loop" `Quick test_handler_exit_one;
          Alcotest.test_case "exit two loops" `Quick test_handler_exit_two;
          Alcotest.test_case "handler-local break" `Quick test_handler_local_break;
          Alcotest.test_case "nested handlers" `Quick test_nested_handlers;
          Alcotest.test_case "operand capture" `Quick test_operand_capture;
          Alcotest.test_case "for bound capture" `Quick test_for_bound_capture;
        ] );
      ( "failures",
        [
          Alcotest.test_case "runtime errors" `Quick test_runtime_error_parity;
          Alcotest.test_case "deadlock forensics" `Quick test_deadlock_parity;
          Alcotest.test_case "budget threshold" `Quick test_budget_parity;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "misc ops" `Quick test_misc_ops;
          Alcotest.test_case "barriers" `Quick test_barrier_parity;
        ] );
      ( "timing",
        [
          Alcotest.test_case "graph benchmarks" `Quick test_sim_workloads_graph;
          Alcotest.test_case "sparse benchmarks" `Quick
            test_sim_workloads_sparse;
          Alcotest.test_case "warm trace cache" `Quick test_sim_cache_warm;
          Alcotest.test_case "cache toggle at runtime" `Quick
            test_sim_cache_toggle;
          Alcotest.test_case "cache capacity under churn" `Quick
            test_sim_cache_capacity_churn;
          Alcotest.test_case "fault perturbation" `Quick
            test_sim_fault_perturbed;
          Alcotest.test_case "fault deadlock" `Quick test_sim_fault_deadlock;
          Alcotest.test_case "fault livelock" `Quick test_sim_fault_livelock;
          Alcotest.test_case "budget exhaustion" `Quick
            test_sim_budget_exhausted;
        ] );
    ]
