(* Resilience tests: engine deadlock forensics (wait-cycle naming,
   deadlock vs budget exhaustion), fault-plan parsing and fixed-key replay
   determinism, the static check-deadlock pass, pool partial-failure
   capture, and harness degradation (a deadlocking variant leaves an error
   record instead of aborting the sweep). *)

open Phloem_ir.Builder
module Forensics = Phloem_ir.Forensics
module Faults = Pipette.Faults

let has needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* Two stages that each fill the other's undersized queue before draining
   their own: the functional (unbounded-queue) semantics complete, the
   bounded timing replay wedges with both producers blocked on a full
   queue whose only consumer is the other producer. *)
let ring_pipeline ?(capacity = 2) () =
  let n = 8 in
  pipeline "ring"
    ~queues:[ queue ~capacity 0; queue ~capacity 1 ]
    [
      stage "left"
        [
          for_ "i" (int 0) (int n) [ enq 0 (v "i") ];
          for_ "i" (int 0) (int n) [ "x" <-- deq 1 ];
        ];
      stage "right"
        [
          for_ "i" (int 0) (int n) [ enq 1 (v "i") ];
          for_ "i" (int 0) (int n) [ "y" <-- deq 0 ];
        ];
    ]

(* A healthy 2-stage producer/consumer writing out.(i) = 2*i. *)
let healthy_pipeline ?(n = 64) () =
  pipeline "healthy"
    ~queues:[ queue 0 ]
    ~arrays:[ int_array "out" n ]
    [
      stage "prod" [ for_ "i" (int 0) (int n) [ enq 0 (v "i" *! int 2) ] ];
      stage "cons"
        [ for_ "i" (int 0) (int n) [ "x" <-- deq 0; store "out" (v "i") (v "x") ] ];
    ]

(* --- engine forensics --- *)

let test_undersized_queue_deadlock () =
  match Pipette.Sim.run (ring_pipeline ()) with
  | _ -> Alcotest.fail "undersized ring completed"
  | exception Forensics.Pipeline_failure r ->
    Alcotest.(check string) "kind" "deadlock" (Forensics.kind_name r.Forensics.fr_kind);
    Alcotest.(check int) "exit code" 5 (Forensics.exit_code r.Forensics.fr_kind);
    Alcotest.(check int) "no faults injected" 0 r.Forensics.fr_injected;
    let names =
      List.map (fun (a, _) -> a.Forensics.ag_name) r.Forensics.fr_wait_cycle
    in
    Alcotest.(check bool) "cycle names left" true (List.mem "left" names);
    Alcotest.(check bool) "cycle names right" true (List.mem "right" names);
    let queues = List.map snd r.Forensics.fr_wait_cycle in
    Alcotest.(check bool)
      "cycle runs over q0 and q1" true
      (List.mem 0 queues && List.mem 1 queues);
    List.iter
      (fun (a, _) ->
        match a.Forensics.ag_blocked with
        | Forensics.On_queue_full _ -> ()
        | other ->
          Alcotest.failf "expected On_queue_full, got %s"
            (Forensics.blocked_to_string other))
      r.Forensics.fr_wait_cycle;
    (* the rendering names the chain and the report carries a diagnosis *)
    let text = Forensics.render r in
    Alcotest.(check bool) "render names the chain" true
      (has "cyclic wait chain" text);
    Alcotest.(check bool) "has a diagnosis" true (r.Forensics.fr_diagnosis <> [])

let test_ample_capacity_completes () =
  (* same ring with room for every in-flight token: completes *)
  let r = Pipette.Sim.run (ring_pipeline ~capacity:8 ()) in
  Alcotest.(check bool) "completes" true (Pipette.Sim.cycles r > 0)

let test_budget_vs_deadlock () =
  (* a healthy pipeline under a tiny budget is budget exhaustion (exit 7),
     not deadlock: progress was still being made *)
  (match Pipette.Sim.run ~cycle_budget:40 (healthy_pipeline ()) with
  | _ -> Alcotest.fail "tiny budget completed"
  | exception Forensics.Pipeline_failure r ->
    Alcotest.(check string) "kind" "budget-exhausted"
      (Forensics.kind_name r.Forensics.fr_kind);
    Alcotest.(check int) "exit code" 7 (Forensics.exit_code r.Forensics.fr_kind);
    Alcotest.(check bool) "no wait cycle claimed" true
      (r.Forensics.fr_wait_cycle = []));
  (* the same pipeline with an ample budget completes *)
  let r = Pipette.Sim.run ~cycle_budget:1_000_000 (healthy_pipeline ()) in
  Alcotest.(check bool) "ample budget completes" true (Pipette.Sim.cycles r > 0)

let test_kill_fault_deadlocks () =
  let plan = Faults.plan [ Faults.Thread_kill { thread = 0; after_retired = 5 } ] in
  match Pipette.Sim.run ~faults:(Faults.create plan) (healthy_pipeline ()) with
  | _ -> Alcotest.fail "killed producer completed"
  | exception Forensics.Pipeline_failure r ->
    Alcotest.(check string) "kind" "deadlock" (Forensics.kind_name r.Forensics.fr_kind);
    Alcotest.(check bool) "injection recorded" true (r.Forensics.fr_injected > 0);
    let killed =
      List.filter (fun a -> a.Forensics.ag_blocked = Forensics.Killed) r.Forensics.fr_agents
    in
    Alcotest.(check int) "one killed agent" 1 (List.length killed)

(* --- fault plans: parsing and replay determinism --- *)

let test_plan_roundtrip () =
  let s = "drop@q0:0.01,dup:0.02,spike@dram+400:0.05,stall@t1:1000x200,kill@t2:5000,poison:0.1" in
  match Faults.of_string s with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok plan ->
    Alcotest.(check string) "round-trips" s (Faults.to_string plan);
    (match Faults.of_string "spike@l9+4:0.5" with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "bad level accepted");
    (match Faults.of_string "stall@t0:100x100" with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "duration >= period accepted");
    (match Faults.of_string "drop:1.5" with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "probability > 1 accepted")

let run_with plan =
  let t = Faults.create plan in
  let r = Pipette.Sim.run ~faults:t (healthy_pipeline ~n:128 ()) in
  (Pipette.Sim.cycles r, Faults.total t)

let test_fixed_key_replay () =
  let plan =
    match Faults.of_string "drop:0.3,poison:0.2" with
    | Ok p -> { p with Faults.fp_key = 42 }
    | Error e -> Alcotest.failf "parse failed: %s" e
  in
  let c1, n1 = run_with plan in
  let c2, n2 = run_with plan in
  Alcotest.(check bool) "faults actually injected" true (n1 > 0);
  Alcotest.(check int) "replay: same cycles" c1 c2;
  Alcotest.(check int) "replay: same fault count" n1 n2;
  (* a rekeyed retry attempt draws an independent stream but the same specs *)
  let plan' = Faults.rekey plan ~attempt:1 in
  Alcotest.(check bool) "rekey changes the key" true
    (plan'.Faults.fp_key <> plan.Faults.fp_key);
  let c3, n3 = run_with plan' in
  let c3', n3' = run_with plan' in
  Alcotest.(check int) "rekeyed replay: same cycles" c3 c3';
  Alcotest.(check int) "rekeyed replay: same fault count" n3 n3'

let test_no_faults_is_clean () =
  let base = Pipette.Sim.cycles (Pipette.Sim.run (healthy_pipeline ())) in
  (* an empty-probability plan consumes no stream and changes nothing *)
  let plan = Faults.plan [ Faults.Predictor_poison { prob = 0.0 } ] in
  let t = Faults.create plan in
  let c = Pipette.Sim.cycles (Pipette.Sim.run ~faults:t (healthy_pipeline ())) in
  Alcotest.(check int) "zero-prob plan is byte-identical" base c;
  Alcotest.(check int) "nothing injected" 0 (Faults.total t)

(* --- static check-deadlock pass --- *)

let ctx = { Phloem.Pass.flags = Phloem.Pass.queues_only; cuts = [] }

let run_check p =
  let module P = (val Phloem.Passes.check_deadlock) in
  P.run ctx p

let test_check_deadlock_accepts_shipped () =
  let g = Phloem_graph.Gen.grid ~width:10 ~height:8 ~seed:5 in
  let b = Phloem_workloads.Bfs.bind g in
  let serial = fst b.Phloem_workloads.Workload.b_serial in
  (* the standard flow includes check-deadlock: compiling is the assertion *)
  let p = Phloem.Compile.static_flow ~stages:4 serial in
  Alcotest.(check bool) "bfs compiles through check-deadlock" true
    (List.length p.Phloem_ir.Types.p_stages >= 2);
  (* and the feasible ring plan (first op is an enqueue) is accepted *)
  let p' = run_check (ring_pipeline ()) in
  Alcotest.(check string) "feasible cycle accepted" "ring"
    p'.Phloem_ir.Types.p_name

let test_check_deadlock_rejects_cycle () =
  (* every member's first queue op dequeues a queue only the cycle fills *)
  let p =
    pipeline "wedge"
      ~queues:[ queue 0; queue 1 ]
      [
        stage "a" [ "x" <-- deq 0; enq 1 (v "x") ];
        stage "b" [ "y" <-- deq 1; enq 0 (v "y") ];
      ]
  in
  match run_check p with
  | _ -> Alcotest.fail "wedged cycle accepted"
  | exception Phloem.Pass.Reject msg ->
    Alcotest.(check bool) "names the cycle" true (has "can never start" msg);
    Alcotest.(check bool) "names members" true (has "a" msg && has "b" msg)

let test_check_deadlock_rejects_producerless () =
  let p =
    pipeline "starved"
      ~queues:[ queue 0 ]
      [ stage "only" [ "x" <-- deq 0 ] ]
  in
  match run_check p with
  | _ -> Alcotest.fail "producerless dequeue accepted"
  | exception Phloem.Pass.Reject msg ->
    Alcotest.(check bool) "names the queue" true (has "q0" msg);
    Alcotest.(check bool) "explains" true (has "ever enqueues" msg)

(* --- pool partial failure --- *)

let test_pool_partial_failure () =
  let module Pool = Phloem_util.Pool in
  Pool.with_pool ~jobs:4 (fun pool ->
      let items = Array.init 12 Fun.id in
      let rs =
        Pool.try_map pool
          (fun i -> if i = 5 || i = 9 then failwith (Printf.sprintf "boom %d" i) else i * i)
          items
      in
      Alcotest.(check int) "every slot filled" 12 (Array.length rs);
      Array.iteri
        (fun i r ->
          match r with
          | Ok v ->
            Alcotest.(check bool) "sibling survives" true (i <> 5 && i <> 9);
            Alcotest.(check int) "sibling value" (i * i) v
          | Error e ->
            Alcotest.(check bool) "failure slot" true (i = 5 || i = 9);
            Alcotest.(check int) "exact index" i e.Pool.e_index;
            Alcotest.(check bool) "message kept" true
              (has (Printf.sprintf "boom %d" i) (Printexc.to_string e.Pool.e_exn)))
        rs;
      (match Pool.first_error rs with
      | Some e -> Alcotest.(check int) "lowest index surfaces" 5 e.Pool.e_index
      | None -> Alcotest.fail "no error surfaced");
      (* try_run: thunks, same contract *)
      match
        Pool.try_run pool
          [ (fun () -> 1); (fun () -> failwith "thunk"); (fun () -> 3) ]
      with
      | [ Ok 1; Error e; Ok 3 ] ->
        Alcotest.(check int) "thunk index" 1 e.Pool.e_index
      | _ -> Alcotest.fail "try_run shape")

let test_pool_jobs1_partial_failure () =
  let module Pool = Phloem_util.Pool in
  Pool.with_pool ~jobs:1 (fun pool ->
      let rs =
        Pool.try_map pool (fun i -> if i = 2 then failwith "serial boom" else i)
          (Array.init 5 Fun.id)
      in
      let oks = Array.to_list rs |> List.filter_map Result.to_option in
      Alcotest.(check (list int)) "serial path keeps siblings" [ 0; 1; 3; 4 ] oks)

(* --- harness degradation: a deadlocking variant leaves an error record --- *)

let degradable_bound () =
  let n = 32 in
  let serial_p =
    Phloem_ir.Builder.serial "degradable"
      ~arrays:[ int_array "out" n ]
      [ for_ "i" (int 0) (int n) [ store "out" (v "i") (v "i" *! int 2) ] ]
  in
  let reference = Array.init n (fun i -> i * 2) in
  {
    Phloem_workloads.Workload.b_name = "degradable";
    b_serial = (serial_p, []);
    b_data_parallel = (fun ~threads:_ -> (serial_p, []));
    b_manual = Some (ring_pipeline (), []);
    b_check_arrays = [ "out" ];
    b_reference = [ ("out", Phloem_workloads.Workload.vint reference) ];
    b_float_tolerance = 0.0;
  }

let test_run_all_degrades () =
  let a = Phloem_harness.Runner.run_all (degradable_bound ()) in
  let open Phloem_harness.Runner in
  Alcotest.(check bool) "serial measured" true (a.serial.m_cycles > 0);
  Alcotest.(check bool) "data-parallel survives" true (a.data_parallel <> None);
  Alcotest.(check bool) "deadlocked manual is absent" true (a.manual = None);
  (match List.find_opt (fun f -> f.f_variant = "manual") a.failures with
  | Some f ->
    Alcotest.(check string) "failure kind" "deadlock" f.f_kind;
    Alcotest.(check bool) "report embedded" true (has "cyclic wait chain" f.f_message)
  | None -> Alcotest.fail "no failure record for the deadlocked manual variant");
  (* the JSON record carries the errors array *)
  let j = json_of_all_runs a in
  match Pipette.Telemetry.Json.member "errors" j with
  | Some (Pipette.Telemetry.Json.List (_ :: _)) -> ()
  | _ -> Alcotest.fail "errors array missing from JSON"

let () =
  Alcotest.run "faults"
    [
      ( "forensics",
        [
          Alcotest.test_case "undersized ring deadlocks with wait cycle" `Quick
            test_undersized_queue_deadlock;
          Alcotest.test_case "ample capacity completes" `Quick
            test_ample_capacity_completes;
          Alcotest.test_case "budget exhaustion vs deadlock" `Quick
            test_budget_vs_deadlock;
          Alcotest.test_case "kill fault starves into deadlock" `Quick
            test_kill_fault_deadlocks;
        ] );
      ( "fault plans",
        [
          Alcotest.test_case "plan parse / round-trip" `Quick test_plan_roundtrip;
          Alcotest.test_case "fixed-key replay determinism" `Quick
            test_fixed_key_replay;
          Alcotest.test_case "zero-prob plan is clean" `Quick test_no_faults_is_clean;
        ] );
      ( "check-deadlock",
        [
          Alcotest.test_case "accepts shipped kernels" `Quick
            test_check_deadlock_accepts_shipped;
          Alcotest.test_case "rejects wedged cycle" `Quick
            test_check_deadlock_rejects_cycle;
          Alcotest.test_case "rejects producerless dequeue" `Quick
            test_check_deadlock_rejects_producerless;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "pool partial failure keeps siblings" `Quick
            test_pool_partial_failure;
          Alcotest.test_case "pool jobs=1 partial failure" `Quick
            test_pool_jobs1_partial_failure;
          Alcotest.test_case "run_all records a deadlocked variant" `Quick
            test_run_all_degrades;
        ] );
    ]
