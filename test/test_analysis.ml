(* Tests for bottleneck attribution (Pipette.Analysis), the refined
   per-queue stall counters behind it (Engine.attribution), the benchmark
   regression differ (Phloem_harness.Regress), and the JSON parser that
   feeds it. *)

open Phloem_ir
open Builder
open Pipette
module Json = Telemetry.Json
module Regress = Phloem_harness.Regress

(* A deliberately unbalanced 2-stage pipeline: the producer enqueues items
   as fast as it can into an undersized queue (capacity 2); the consumer
   burns a dependent ALU chain per item. The consumer must come out as the
   bottleneck stage and queue 0 as the critical queue, with the stall mass
   on the producer side (blocked on a full queue). *)
let unbalanced n =
  pipeline "unbalanced"
    ~params:[ ("n", Types.Vint n) ]
    ~queues:[ queue ~capacity:2 0 ]
    [
      stage "prod" [ for_ "i" (int 0) (v "n") [ enq 0 (v "i") ] ];
      stage "cons"
        [
          "acc" <-- int 0;
          for_ "i" (int 0) (v "n")
            [
              "x" <-- deq 0;
              for_ "j" (int 0) (int 6)
                [ "acc" <-- ((v "acc" +! v "x") *! int 3 %! int 251) ];
            ];
        ];
    ]

let run_unbalanced () = Sim.run (unbalanced 300)

let test_bottleneck_diagnosis () =
  let r = run_unbalanced () in
  let rep = Sim.analyze ~stage_names:[| "prod"; "cons" |] r in
  Alcotest.(check (option int)) "consumer is the bottleneck" (Some 1) rep.Analysis.r_bottleneck;
  Alcotest.(check (option int)) "queue 0 is critical" (Some 0) rep.Analysis.r_critical_queue;
  let q = rep.Analysis.r_queues.(0) in
  Alcotest.(check bool) "stall mass is on the producer side (queue full)" true
    (q.Analysis.q_full > q.Analysis.q_empty);
  Alcotest.(check bool) "producer observed" true (List.mem 0 q.Analysis.q_producers);
  Alcotest.(check bool) "consumer observed" true (List.mem 1 q.Analysis.q_consumers);
  Alcotest.(check bool) "headroom estimate is at least 1" true
    (rep.Analysis.r_headroom >= 1.0);
  Alcotest.(check bool) "diagnosis names the critical queue" true
    (List.exists
       (fun d ->
         let re = Str.regexp_string "queue 0" in
         try ignore (Str.search_forward re d 0); true with Not_found -> false)
       rep.Analysis.r_diagnosis)

let test_occupancy_hist_sums_to_cycles () =
  let r = run_unbalanced () in
  let t = r.Sim.sr_timing in
  Array.iter
    (fun (q : Engine.queue_attr) ->
      Alcotest.(check int)
        (Printf.sprintf "queue %d histogram buckets sum to cycles" q.Engine.qa_id)
        t.Engine.cycles
        (Array.fold_left ( + ) 0 q.Engine.qa_occ_hist);
      Alcotest.(check int)
        (Printf.sprintf "queue %d histogram has capacity+1 buckets" q.Engine.qa_id)
        (q.Engine.qa_capacity + 1)
        (Array.length q.Engine.qa_occ_hist))
    t.Engine.attribution.Engine.at_queues

(* The refined counters must partition the coarse 4-way split exactly:
   that is what makes the --profile report trustworthy against the numbers
   every other tool prints. *)
let test_attribution_reconciles () =
  let r = run_unbalanced () in
  let t = r.Sim.sr_timing in
  let a = t.Engine.attribution in
  let sum = Array.fold_left ( + ) 0 in
  for i = 0 to t.Engine.n_threads - 1 do
    let qf = Array.fold_left (fun acc q -> acc + q.Engine.qa_full.(i)) 0 a.Engine.at_queues in
    let qe = Array.fold_left (fun acc q -> acc + q.Engine.qa_empty.(i)) 0 a.Engine.at_queues in
    Alcotest.(check int)
      (Printf.sprintf "thread %d: full + empty + barrier = queue class" i)
      a.Engine.at_queue.(i)
      (qf + qe + a.Engine.at_barrier.(i));
    Alcotest.(check int)
      (Printf.sprintf "thread %d: backend levels sum to backend class" i)
      a.Engine.at_backend.(i)
      (sum a.Engine.at_backend_level.(i))
  done;
  Alcotest.(check int) "issue sums to aggregate" t.Engine.issue_cycles (sum a.Engine.at_issue);
  Alcotest.(check int) "backend sums to aggregate" t.Engine.backend_cycles (sum a.Engine.at_backend);
  Alcotest.(check int) "queue sums to aggregate" t.Engine.queue_cycles (sum a.Engine.at_queue);
  Alcotest.(check int) "other sums to aggregate" t.Engine.other_cycles (sum a.Engine.at_other)

let test_analysis_json_parses () =
  let r = run_unbalanced () in
  let rep = Sim.analyze r in
  let j = Json.of_string (Json.to_string (Analysis.json_of_report rep)) in
  match Json.member "cycles" j with
  | Some (Json.Int c) -> Alcotest.(check int) "cycles round-trips" (Sim.cycles r) c
  | _ -> Alcotest.fail "analysis JSON lost the cycles field"

(* --- the JSON parser (Telemetry.Json.of_string) --- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("a", Json.Int 42);
        ("b", Json.Float 1.5);
        ("c", Json.Str "he \"said\"\n\t\\x");
        ("d", Json.List [ Json.Null; Json.Bool true; Json.Bool false ]);
        ("e", Json.Obj [ ("nested", Json.List [ Json.Int (-7) ]) ]);
        ("f", Json.Str "unicode: \xe2\x86\x92");
      ]
  in
  Alcotest.(check bool) "parse (to_string v) = v" true
    (Json.of_string (Json.to_string v) = v)

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted malformed JSON: %s" s)
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated"; "{\"a\" 1}" ]

let test_json_member_helpers () =
  let j = Json.of_string "{\"x\": {\"y\": 3}, \"z\": 2.5}" in
  (match Option.bind (Json.member "x" j) (Json.member "y") with
  | Some (Json.Int 3) -> ()
  | _ -> Alcotest.fail "member lookup failed");
  Alcotest.(check (option (float 1e-9))) "to_float_opt on float"
    (Some 2.5)
    (Option.bind (Json.member "z" j) Json.to_float_opt);
  Alcotest.(check (option (float 1e-9))) "member miss" None
    (Option.bind (Json.member "missing" j) Json.to_float_opt)

(* --- the regression differ --- *)

(* A minimal report in the shape Experiments.write_json_report emits. *)
let report ~cycles ~speedup ~energy =
  Json.Obj
    [
      ( "benchmarks",
        List.map
          (fun () ->
            Json.Obj
              [
                ("benchmark", Json.Str "BFS");
                ( "inputs",
                  Json.List
                    [
                      Json.Obj
                        [
                          ("input", Json.Str "internet");
                          ( "runs",
                            Json.Obj
                              [
                                ( "phloem_static",
                                  Json.Obj
                                    [
                                      ("cycles", Json.Int cycles);
                                      ("speedup", Json.Float speedup);
                                      ( "energy_nj",
                                        Json.Obj [ ("total", Json.Float energy) ] );
                                    ] );
                                ("manual", Json.Null);
                              ] );
                        ];
                    ] );
              ])
          [ () ]
        |> fun l -> Json.List l );
    ]

let test_regress_flags_cycle_regression () =
  let old_j = report ~cycles:10000 ~speedup:2.0 ~energy:500.0 in
  let bad = report ~cycles:11000 ~speedup:2.0 ~energy:500.0 in
  let o = Regress.compare_json ~old_j ~new_j:bad () in
  Alcotest.(check bool) "+10% cycles regresses" true (Regress.regressed o);
  Alcotest.(check int) "exactly one regression" 1 (List.length o.Regress.o_regressions);
  let d = List.hd o.Regress.o_regressions in
  Alcotest.(check string) "the cycles metric" "BFS/internet/phloem_static/cycles"
    d.Regress.d_key

let test_regress_tolerates_noise () =
  let old_j = report ~cycles:10000 ~speedup:2.0 ~energy:500.0 in
  let ok = report ~cycles:10200 ~speedup:1.96 ~energy:520.0 in
  let o = Regress.compare_json ~old_j ~new_j:ok () in
  Alcotest.(check bool) "+2% cycles within threshold" false (Regress.regressed o);
  Alcotest.(check int) "all shared metrics compared" 3 (List.length o.Regress.o_deltas)

let test_regress_flags_speedup_and_energy () =
  let old_j = report ~cycles:10000 ~speedup:2.0 ~energy:500.0 in
  let bad = report ~cycles:10000 ~speedup:1.7 ~energy:600.0 in
  let o = Regress.compare_json ~old_j ~new_j:bad () in
  Alcotest.(check int) "speedup drop and energy rise both flagged" 2
    (List.length o.Regress.o_regressions)

let test_regress_reports_missing_series () =
  let old_j = report ~cycles:10000 ~speedup:2.0 ~energy:500.0 in
  let o = Regress.compare_json ~old_j ~new_j:(Json.Obj [ ("benchmarks", Json.List []) ]) () in
  Alcotest.(check bool) "missing series is not a regression" false (Regress.regressed o);
  Alcotest.(check (list string)) "missing series listed"
    [ "BFS/internet/phloem_static" ] o.Regress.o_missing;
  ignore (Regress.render o)

(* --- Runner.of_run with a degenerate serial baseline --- *)

let test_of_run_zero_serial_cycles () =
  let r = Sim.run (unbalanced 10) in
  let m =
    Phloem_harness.Runner.of_run ~variant:"t" ~serial_cycles:0 ~ok:true r
  in
  let finite x =
    match classify_float x with FP_infinite | FP_nan -> false | _ -> true
  in
  List.iter
    (fun (name, x) ->
      Alcotest.(check bool) (name ^ " is finite") true (finite x))
    [
      ("speedup", m.Phloem_harness.Runner.m_speedup);
      ("issue", m.Phloem_harness.Runner.m_issue);
      ("backend", m.Phloem_harness.Runner.m_backend);
      ("queue", m.Phloem_harness.Runner.m_queue);
      ("other", m.Phloem_harness.Runner.m_other);
    ]

let () =
  Alcotest.run "analysis"
    [
      ( "attribution",
        [
          Alcotest.test_case "undersized queue is diagnosed" `Quick
            test_bottleneck_diagnosis;
          Alcotest.test_case "occupancy histograms sum to cycles" `Quick
            test_occupancy_hist_sums_to_cycles;
          Alcotest.test_case "refined counters reconcile with aggregates" `Quick
            test_attribution_reconciles;
          Alcotest.test_case "analysis JSON parses back" `Quick
            test_analysis_json_parses;
        ] );
      ( "json-parser",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
          Alcotest.test_case "member helpers" `Quick test_json_member_helpers;
        ] );
      ( "regress",
        [
          Alcotest.test_case "flags a 10% cycle regression" `Quick
            test_regress_flags_cycle_regression;
          Alcotest.test_case "tolerates 2% noise" `Quick test_regress_tolerates_noise;
          Alcotest.test_case "flags speedup and energy regressions" `Quick
            test_regress_flags_speedup_and_energy;
          Alcotest.test_case "reports missing series" `Quick
            test_regress_reports_missing_series;
        ] );
      ( "runner",
        [
          Alcotest.test_case "zero serial cycles stays finite" `Quick
            test_of_run_zero_serial_cycles;
        ] );
    ]
