(* Wire-protocol and daemon tests for phloemd (Phloem_serve).

   Unit layers first — request parsing and rejection codes, response
   envelopes and raw-payload extraction, the content-addressed key, the
   FIFO result cache, the fair bounded scheduler, and the harness rate
   guards — then end-to-end runs against a real server on a Unix-domain
   socket in this process: a repeated request must come back as a cache
   hit with byte-identical payload bytes and without re-running any
   compile/trace phase, and a full queue must answer with a structured
   shed-load response rather than blocking or dying. *)

module Protocol = Phloem_serve.Protocol
module Cache = Phloem_serve.Cache
module Scheduler = Phloem_serve.Scheduler
module Server = Phloem_serve.Server
module Client = Phloem_serve.Client
module Obs = Phloem_serve.Obs
module Metrics = Phloem_util.Metrics
module Stats = Phloem_util.Stats
module Json = Pipette.Telemetry.Json
module Phases = Phloem_harness.Phases

(* --- request parsing ---------------------------------------------------- *)

let reject_code ?(max_bytes = 4096) line =
  match Protocol.parse_request ~max_bytes line with
  | Error r -> r.Protocol.rj_code
  | Ok _ -> Alcotest.failf "expected a reject for %S" line

let test_parse_rejects () =
  Alcotest.(check string)
    "malformed JSON" "bad-request"
    (reject_code "{\"kind\":\"simulate\",");
  Alcotest.(check string) "not JSON at all" "bad-request" (reject_code "hello");
  Alcotest.(check string)
    "missing kind" "bad-request"
    (reject_code "{\"id\":1,\"bench\":\"bfs\"}");
  Alcotest.(check string)
    "unknown kind" "unknown-kind"
    (reject_code "{\"kind\":\"explode\"}");
  Alcotest.(check string)
    "simulate without bench" "bad-request"
    (reject_code "{\"kind\":\"simulate\",\"input\":\"internet\"}");
  Alcotest.(check string)
    "simulate without input" "bad-request"
    (reject_code "{\"kind\":\"simulate\",\"bench\":\"bfs\"}");
  Alcotest.(check string)
    "bad fault plan" "bad-request"
    (reject_code
       "{\"kind\":\"simulate\",\"bench\":\"bfs\",\"input\":\"internet\",\"inject\":\"nonsense\"}")

let test_parse_oversized () =
  (* the length bound is checked before parsing: even well-formed JSON past
     the bound is rejected as oversized *)
  let line =
    Printf.sprintf "{\"kind\":\"ping\",\"pad\":\"%s\"}" (String.make 256 'x')
  in
  Alcotest.(check string)
    "oversized rejects before parse" "oversized"
    (reject_code ~max_bytes:64 line);
  Alcotest.(check string)
    "oversized garbage too" "oversized"
    (reject_code ~max_bytes:8 (String.make 64 '{'))

let test_parse_simulate_roundtrip () =
  let job =
    {
      Protocol.default_job with
      Protocol.j_bench = "cc";
      j_input = "internet";
      j_variant = "data-parallel";
      j_scale = 0.25;
      j_stages = 6;
      j_threads = 2;
      j_watchdog = Some 9999;
      j_cycle_budget = Some 123456;
    }
  in
  let line = Protocol.simulate_request ~id:(Json.Int 7) job in
  match Protocol.parse_request ~max_bytes:4096 line with
  | Error r -> Alcotest.failf "round-trip rejected: %s" r.Protocol.rj_msg
  | Ok (Protocol.Simulate { id; job = j }) ->
    Alcotest.(check bool) "id echoed" true (id = Json.Int 7);
    Alcotest.(check string) "bench" job.Protocol.j_bench j.Protocol.j_bench;
    Alcotest.(check string) "variant" job.Protocol.j_variant j.Protocol.j_variant;
    Alcotest.(check string) "input" job.Protocol.j_input j.Protocol.j_input;
    Alcotest.(check (float 1e-9)) "scale" job.Protocol.j_scale j.Protocol.j_scale;
    Alcotest.(check int) "stages" job.Protocol.j_stages j.Protocol.j_stages;
    Alcotest.(check int) "threads" job.Protocol.j_threads j.Protocol.j_threads;
    Alcotest.(check (option int)) "watchdog" job.Protocol.j_watchdog
      j.Protocol.j_watchdog;
    Alcotest.(check (option int)) "cycle budget" job.Protocol.j_cycle_budget
      j.Protocol.j_cycle_budget;
    Alcotest.(check string) "same content key" (Protocol.content_key job)
      (Protocol.content_key j)
  | Ok _ -> Alcotest.fail "parsed as the wrong kind"

let test_parse_sanitizes_id () =
  (* a structured id could smuggle an unescaped result marker into the
     envelope; it is replaced by null *)
  match
    Protocol.parse_request ~max_bytes:4096
      "{\"kind\":\"ping\",\"id\":{\"evil\":1}}"
  with
  | Ok (Protocol.Ping { id }) ->
    Alcotest.(check bool) "structured id nulled" true (id = Json.Null)
  | _ -> Alcotest.fail "ping with structured id should still parse"

(* --- response envelopes -------------------------------------------------- *)

let test_envelope_payload_raw () =
  let payload = "{\"cycles\":12,\"speedup\":2.5,\"valid\":true}" in
  let line = Protocol.ok_response ~id:(Json.Int 3) ~cached:false payload in
  Alcotest.(check (option string)) "payload extracted verbatim" (Some payload)
    (Protocol.response_payload_raw line);
  Alcotest.(check (option string)) "trailing newline tolerated" (Some payload)
    (Protocol.response_payload_raw (line ^ "\n"));
  (* a string id whose *content* spells the marker is escaped when the
     envelope is serialized, so extraction still finds the real payload *)
  let evil = Json.Str ",\"result\":" in
  let line = Protocol.ok_response ~id:evil ~cached:true payload in
  Alcotest.(check (option string)) "marker-shaped id cannot confuse extraction"
    (Some payload)
    (Protocol.response_payload_raw line);
  (* a payload with its own "result" field: the envelope's marker comes
     first, so the payload bytes still come back whole *)
  let nested = "{\"a\":1,\"result\":{\"b\":2}}" in
  let line = Protocol.ok_response ~id:Json.Null ~cached:false nested in
  Alcotest.(check (option string)) "nested result field preserved" (Some nested)
    (Protocol.response_payload_raw line)

let test_envelope_statuses () =
  let ok = Json.of_string (Protocol.ok_response ~id:(Json.Int 1) ~cached:true "7") in
  Alcotest.(check string) "ok status" "ok" (Protocol.response_status ok);
  Alcotest.(check bool) "cached flag" true (Protocol.response_cached ok);
  let err =
    Json.of_string
      (Protocol.error_response ~id:Json.Null ~code:"bad-request" "nope")
  in
  Alcotest.(check string) "error status" "error" (Protocol.response_status err);
  Alcotest.(check bool) "errors are not cached" false
    (Protocol.response_cached err);
  let shed =
    Json.of_string (Protocol.shed_response ~id:(Json.Int 2) ~queued:64 ~limit:64)
  in
  Alcotest.(check string) "shed status" "shed" (Protocol.response_status shed);
  (match Json.member "code" shed with
  | Some (Json.Str c) -> Alcotest.(check string) "shed code" "queue-full" c
  | _ -> Alcotest.fail "shed response needs a code");
  match (Json.member "queued" shed, Json.member "limit" shed) with
  | Some (Json.Int q), Some (Json.Int l) ->
    Alcotest.(check (pair int int)) "shed carries occupancy" (64, 64) (q, l)
  | _ -> Alcotest.fail "shed response needs queued and limit"

let test_content_key () =
  let base = { Protocol.default_job with Protocol.j_scale = 0.1 } in
  Alcotest.(check string) "key is deterministic" (Protocol.content_key base)
    (Protocol.content_key base);
  Alcotest.(check int) "key is a hex digest" 32
    (String.length (Protocol.content_key base));
  let differs label j =
    Alcotest.(check bool) label false
      (String.equal (Protocol.content_key base) (Protocol.content_key j))
  in
  differs "bench feeds the key" { base with Protocol.j_bench = "cc" };
  differs "variant feeds the key" { base with Protocol.j_variant = "serial" };
  differs "scale feeds the key" { base with Protocol.j_scale = 0.2 };
  differs "stages feed the key" { base with Protocol.j_stages = 5 };
  differs "budget feeds the key" { base with Protocol.j_cycle_budget = Some 10 }

(* --- result cache -------------------------------------------------------- *)

let test_cache_hit_miss () =
  let c = Cache.create ~capacity:4 () in
  Alcotest.(check (option string)) "cold miss" None (Cache.find c "k1");
  Cache.add c "k1" "payload-one";
  Alcotest.(check (option string)) "hit returns the stored bytes"
    (Some "payload-one") (Cache.find c "k1");
  Cache.add c "k1" "other";
  Alcotest.(check (option string)) "insert-if-absent keeps the first payload"
    (Some "payload-one") (Cache.find c "k1");
  let s = Cache.stats c in
  Alcotest.(check int) "hits" 2 s.Cache.cs_hits;
  Alcotest.(check int) "misses" 1 s.Cache.cs_misses;
  Alcotest.(check int) "entries" 1 s.Cache.cs_entries;
  Alcotest.(check int) "payload bytes" (String.length "payload-one")
    s.Cache.cs_payload_bytes

let test_cache_fifo_eviction () =
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Serve.Cache.create: capacity must be >= 1") (fun () ->
      ignore (Cache.create ~capacity:0 ()));
  let c = Cache.create ~capacity:2 () in
  Cache.add c "a" "1";
  Cache.add c "b" "22";
  Cache.add c "c" "333";
  let s = Cache.stats c in
  Alcotest.(check int) "entries bounded" 2 s.Cache.cs_entries;
  Alcotest.(check int) "one eviction" 1 s.Cache.cs_evictions;
  Alcotest.(check (option string)) "oldest evicted" None (Cache.find c "a");
  Alcotest.(check (option string)) "newer kept" (Some "22") (Cache.find c "b");
  Alcotest.(check (option string)) "newest kept" (Some "333") (Cache.find c "c");
  Alcotest.(check int) "bytes track residents"
    (String.length "22" + String.length "333")
    (Cache.stats c).Cache.cs_payload_bytes

(* --- scheduler ----------------------------------------------------------- *)

let test_scheduler_fairness () =
  let s = Scheduler.create ~limit:16 () in
  let ok = function
    | Ok () -> ()
    | Error _ -> Alcotest.fail "unexpected shed"
  in
  ok (Scheduler.submit s ~client:1 "a1");
  ok (Scheduler.submit s ~client:1 "a2");
  ok (Scheduler.submit s ~client:1 "a3");
  ok (Scheduler.submit s ~client:2 "b1");
  Alcotest.(check (list string))
    "dispatch interleaves clients despite arrival order"
    [ "a1"; "b1"; "a2"; "a3" ]
    (Scheduler.take_batch s ~max:4);
  let st = Scheduler.stats s in
  Alcotest.(check int) "accepted" 4 st.Scheduler.st_accepted;
  Alcotest.(check int) "dispatched" 4 st.Scheduler.st_dispatched;
  Alcotest.(check int) "drained" 0 st.Scheduler.st_queued

let test_scheduler_shed () =
  let s = Scheduler.create ~limit:2 () in
  ignore (Scheduler.submit s ~client:1 "j1");
  ignore (Scheduler.submit s ~client:2 "j2");
  (match Scheduler.submit s ~client:3 "j3" with
  | Ok () -> Alcotest.fail "submit past the bound must shed"
  | Error { Scheduler.sh_queued; sh_limit } ->
    Alcotest.(check (pair int int)) "shed reports occupancy" (2, 2)
      (sh_queued, sh_limit));
  let st = Scheduler.stats s in
  Alcotest.(check int) "shed counted" 1 st.Scheduler.st_shed;
  Alcotest.(check int) "accepted unaffected" 2 st.Scheduler.st_accepted;
  (* limit 0 sheds everything — drain mode *)
  let z = Scheduler.create ~limit:0 () in
  match Scheduler.submit z ~client:1 "x" with
  | Ok () -> Alcotest.fail "limit 0 must shed"
  | Error { Scheduler.sh_limit; _ } ->
    Alcotest.(check int) "limit 0 reported" 0 sh_limit

let test_scheduler_queue_wait () =
  (* deterministic clock: submits at t=1 and t=2, dispatch at t=10 *)
  let now = ref 1.0 in
  let s = Scheduler.create ~limit:8 ~clock:(fun () -> !now) () in
  ignore (Scheduler.submit s ~client:1 "j1");
  now := 2.0;
  ignore (Scheduler.submit s ~client:1 "j2");
  now := 10.0;
  (match Scheduler.take_batch_timed s ~max:8 with
  | [ ("j1", w1); ("j2", w2) ] ->
    Alcotest.(check (float 1e-9)) "first job waited 9s" 9.0 w1;
    Alcotest.(check (float 1e-9)) "second job waited 8s" 8.0 w2
  | other ->
    Alcotest.failf "unexpected batch of %d" (List.length other));
  let st = Scheduler.stats s in
  Alcotest.(check (float 1e-9)) "wait total" 17.0 st.Scheduler.st_wait_total_s;
  Alcotest.(check (float 1e-9)) "wait max" 9.0 st.Scheduler.st_wait_max_s;
  (* a clock running backwards cannot produce negative waits *)
  let back = ref 5.0 in
  let s2 = Scheduler.create ~limit:4 ~clock:(fun () -> !back) () in
  ignore (Scheduler.submit s2 ~client:1 "x");
  back := 3.0;
  (match Scheduler.take_batch_timed s2 ~max:1 with
  | [ (_, w) ] -> Alcotest.(check (float 1e-9)) "clamped at zero" 0.0 w
  | _ -> Alcotest.fail "expected one job")

let test_scheduler_close_drains () =
  let s = Scheduler.create ~limit:8 () in
  ignore (Scheduler.submit s ~client:1 "j1");
  ignore (Scheduler.submit s ~client:1 "j2");
  Scheduler.close s;
  (match Scheduler.submit s ~client:1 "late" with
  | Ok () -> Alcotest.fail "closed scheduler must shed"
  | Error _ -> ());
  Alcotest.(check (list string))
    "queued jobs still drain after close" [ "j1"; "j2" ]
    (Scheduler.take_batch s ~max:8);
  Alcotest.(check (list string))
    "closed and drained yields the exit signal" []
    (Scheduler.take_batch s ~max:8)

(* --- harness rate guards (satellite: inf/NaN poisoning) ------------------ *)

let test_phases_guards () =
  let f = Alcotest.(check (float 1e-9)) in
  f "normal rate" 50.0 (Phases.per_second 100 2.0);
  f "zero duration" 0.0 (Phases.per_second 100 0.0);
  f "negative duration" 0.0 (Phases.per_second 100 (-1.0));
  f "infinite duration" 0.0 (Phases.per_second 100 infinity);
  f "nan duration" 0.0 (Phases.per_second 100 Float.nan);
  f "zero ops" 0.0 (Phases.per_second 0 5.0);
  f "normal ratio" 1.5 (Phases.ratio 3.0 2.0);
  f "zero denominator" 0.0 (Phases.ratio 1.0 0.0);
  f "infinite denominator" 0.0 (Phases.ratio 1.0 infinity);
  f "nan numerator" 0.0 (Phases.ratio Float.nan 1.0);
  f "negative numerator" 0.0 (Phases.ratio (-1.0) 2.0);
  Alcotest.(check bool)
    "guarded rates survive strict JSON round-trips" true
    (Float.is_finite (Phases.per_second max_int 1e-300))

(* --- end-to-end over a Unix-domain socket -------------------------------- *)

let with_server ?(queue_limit = 64) ?(max_request = 1 lsl 20) ?obs f =
  let sock = Filename.temp_file "phloemd-test" ".sock" in
  Sys.remove sock;
  let server =
    Server.create
      {
        Server.default_opts with
        Server.so_unix = Some sock;
        so_jobs = 1;
        so_queue_limit = queue_limit;
        so_max_request = max_request;
        so_obs = obs;
      }
  in
  let th = Thread.create Server.run server in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Thread.join th;
      if Sys.file_exists sock then Sys.remove sock)
    (fun () -> f sock server)

(* a small, fast job: the tiny-scale internet graph through the compiler *)
let tiny_job = { Protocol.default_job with Protocol.j_scale = 0.05 }

let test_e2e_cache_hit_byte_identical () =
  with_server (fun sock _server ->
      Pipette.Sim.clear_caches ();
      let req = Protocol.simulate_request ~id:(Json.Int 1) tiny_job in
      let r1 = Client.with_unix sock (fun fd -> Client.request fd req) in
      let j1 = Json.of_string r1 in
      Alcotest.(check string) "cold run ok" "ok" (Protocol.response_status j1);
      Alcotest.(check bool) "cold run is not cached" false
        (Protocol.response_cached j1);
      let sim_cold = Pipette.Sim.cache_counters () in
      let r2 = Client.with_unix sock (fun fd -> Client.request fd req) in
      let j2 = Json.of_string r2 in
      Alcotest.(check string) "repeat ok" "ok" (Protocol.response_status j2);
      Alcotest.(check bool) "repeat served from the cache" true
        (Protocol.response_cached j2);
      (let p1 = Protocol.response_payload_raw r1
       and p2 = Protocol.response_payload_raw r2 in
       match (p1, p2) with
       | Some p1, Some p2 ->
         Alcotest.(check string) "payload bytes identical" p1 p2;
         (match Json.member "valid" (Json.of_string p1) with
         | Some (Json.Bool v) -> Alcotest.(check bool) "result valid" true v
         | _ -> Alcotest.fail "payload needs a valid field")
       | _ -> Alcotest.fail "both responses must carry raw payloads");
      (* the hit never reached the job runner: no compile / trace activity *)
      let sim_hit = Pipette.Sim.cache_counters () in
      Alcotest.(check int) "no re-trace on a hit"
        sim_cold.Pipette.Sim.cc_trace_misses sim_hit.Pipette.Sim.cc_trace_misses;
      Alcotest.(check int) "no recompile on a hit"
        sim_cold.Pipette.Sim.cc_program_misses
        sim_hit.Pipette.Sim.cc_program_misses;
      (* the daemon's own stats agree: one result-cache miss, one hit *)
      let stats =
        Client.with_unix sock (fun fd ->
            Client.request fd (Protocol.plain_request ~id:(Json.Int 2) "stats"))
      in
      match Protocol.response_payload_raw stats with
      | None -> Alcotest.fail "stats response must carry a payload"
      | Some payload -> (
        match Json.member "result_cache" (Json.of_string payload) with
        | Some rc ->
          let geti k =
            match Json.member k rc with Some (Json.Int i) -> i | _ -> -1
          in
          Alcotest.(check int) "one result-cache hit" 1 (geti "hits");
          Alcotest.(check int) "one result-cache miss" 1 (geti "misses");
          Alcotest.(check int) "one resident entry" 1 (geti "entries")
        | None -> Alcotest.fail "stats payload needs result_cache"))

let test_e2e_rejects_and_shed () =
  (* queue limit 0: every cold simulate sheds; the daemon stays up and
     keeps answering on the same connection *)
  with_server ~queue_limit:0 (fun sock _server ->
      Client.with_unix sock (fun fd ->
          let bad = Client.request fd "this is not json" in
          let j = Json.of_string bad in
          Alcotest.(check string) "malformed line is a structured error" "error"
            (Protocol.response_status j);
          (match Json.member "code" j with
          | Some (Json.Str c) -> Alcotest.(check string) "code" "bad-request" c
          | _ -> Alcotest.fail "error response needs a code");
          let unk = Json.of_string (Client.request fd "{\"kind\":\"frobnicate\"}") in
          Alcotest.(check string) "unknown kind is a structured error" "error"
            (Protocol.response_status unk);
          (match Json.member "code" unk with
          | Some (Json.Str c) -> Alcotest.(check string) "code" "unknown-kind" c
          | _ -> Alcotest.fail "error response needs a code");
          let shed =
            Json.of_string
              (Client.request fd
                 (Protocol.simulate_request ~id:(Json.Int 9) tiny_job))
          in
          Alcotest.(check string) "full queue sheds" "shed"
            (Protocol.response_status shed);
          (match Json.member "code" shed with
          | Some (Json.Str c) -> Alcotest.(check string) "code" "queue-full" c
          | _ -> Alcotest.fail "shed response needs a code");
          (* the connection survived all three rejections *)
          let pong = Json.of_string (Client.request fd "{\"kind\":\"ping\"}") in
          Alcotest.(check string) "daemon still answers" "ok"
            (Protocol.response_status pong)))

let test_e2e_oversized () =
  with_server ~max_request:128 (fun sock _server ->
      (* a complete (newline-terminated) line past the bound: structured
         oversized error, connection survives *)
      Client.with_unix sock (fun fd ->
          Client.send_line fd
            (Printf.sprintf "{\"kind\":\"ping\",\"pad\":\"%s\"}"
               (String.make 512 'x'));
          let j = Json.of_string (Client.recv_line fd) in
          Alcotest.(check string) "oversized line is a structured error" "error"
            (Protocol.response_status j);
          (match Json.member "code" j with
          | Some (Json.Str c) -> Alcotest.(check string) "code" "oversized" c
          | _ -> Alcotest.fail "error response needs a code");
          let pong = Json.of_string (Client.request fd "{\"kind\":\"ping\"}") in
          Alcotest.(check string) "connection survives a bounded line" "ok"
            (Protocol.response_status pong));
      (* an unbounded line (no newline within the bound): the daemon rejects
         and drops the connection rather than buffer without limit *)
      Client.with_unix sock (fun fd ->
          let raw = Bytes.of_string (String.make 512 '{') in
          let n = Bytes.length raw in
          let rec wloop off =
            if off < n then wloop (off + Unix.write fd raw off (n - off))
          in
          wloop 0;
          let j = Json.of_string (Client.recv_line fd) in
          (match Json.member "code" j with
          | Some (Json.Str c) ->
            Alcotest.(check string) "unbounded line rejected" "oversized" c
          | _ -> Alcotest.fail "error response needs a code");
          Alcotest.check_raises "connection dropped after unbounded line"
            End_of_file (fun () -> ignore (Client.recv_line fd))))

(* Observability enabled: a cold+warm pair must leave a metrics snapshot
   with hit p50 < miss p50 and a populated queue-wait histogram, the
   recorded spans must order and nest correctly across distinct tracks,
   and — critically — the response bytes must stay exactly as without
   observability (the cache hit still splices raw payload bytes). *)
let test_e2e_observability () =
  let obs = Obs.create ~slow_ms:1e9 () in
  with_server ~obs (fun sock _server ->
      Pipette.Sim.clear_caches ();
      let req = Protocol.simulate_request ~id:(Json.Int 1) tiny_job in
      let r1 = Client.with_unix sock (fun fd -> Client.request fd req) in
      let r2 = Client.with_unix sock (fun fd -> Client.request fd req) in
      let j1 = Json.of_string r1 and j2 = Json.of_string r2 in
      Alcotest.(check string) "cold ok" "ok" (Protocol.response_status j1);
      Alcotest.(check string) "warm ok" "ok" (Protocol.response_status j2);
      Alcotest.(check bool) "cold not cached" false (Protocol.response_cached j1);
      Alcotest.(check bool) "warm cached" true (Protocol.response_cached j2);
      (match (Protocol.response_payload_raw r1, Protocol.response_payload_raw r2)
       with
      | Some p1, Some p2 ->
        Alcotest.(check string)
          "payload bytes identical with observability on" p1 p2
      | _ -> Alcotest.fail "both responses must carry raw payloads");
      (* --- metrics: latency split and queue wait --- *)
      let snap = Metrics.snapshot (Obs.metrics obs) in
      let counter k = List.assoc k snap.Metrics.sn_counters in
      Alcotest.(check int) "requests counted" 2 (counter "phloemd_requests");
      Alcotest.(check int) "one hit" 1 (counter "phloemd_cache_hits");
      Alcotest.(check int) "one miss" 1 (counter "phloemd_cache_misses");
      let hist k = List.assoc k snap.Metrics.sn_hists in
      let hit_h = hist "phloemd_request_latency_hit_s"
      and miss_h = hist "phloemd_request_latency_miss_s"
      and wait_h = hist "phloemd_queue_wait_s" in
      Alcotest.(check int) "hit histogram populated" 1 (Stats.hist_count hit_h);
      Alcotest.(check int) "miss histogram populated" 1
        (Stats.hist_count miss_h);
      Alcotest.(check bool) "queue wait populated" true
        (Stats.hist_count wait_h >= 1);
      Alcotest.(check bool) "hit p50 < miss p50" true
        (Stats.percentile_hist 0.5 hit_h < Stats.percentile_hist 0.5 miss_h);
      (* --- spans: ordering, nesting, distinct tracks --- *)
      let spans = Obs.spans obs in
      let find trace name =
        match
          List.find_opt
            (fun s -> s.Metrics.sp_trace = trace && s.Metrics.sp_name = name)
            spans
        with
        | Some s -> s
        | None -> Alcotest.failf "missing span %s in trace %d" name trace
      in
      (* the cold request is trace 1, the warm one trace 2 *)
      let parse = find 1 "parse" in
      let lookup = find 1 "cache-lookup" in
      let wait = find 1 "queue-wait" in
      let dispatch = find 1 "dispatch" in
      let execute = find 1 "execute" in
      let compile = find 1 "compile" in
      let respond = find 1 "respond" in
      let ordered a b = a.Metrics.sp_stop <= b.Metrics.sp_start +. 1e-9 in
      Alcotest.(check bool) "parse before lookup" true (ordered parse lookup);
      Alcotest.(check bool) "lookup before queue wait" true
        (lookup.Metrics.sp_start <= wait.Metrics.sp_start +. 1e-9);
      Alcotest.(check bool) "queue wait before execute" true
        (ordered wait execute);
      Alcotest.(check bool) "execute before respond" true
        (ordered execute respond);
      Alcotest.(check bool) "compile nested in execute" true
        (compile.Metrics.sp_start >= execute.Metrics.sp_start -. 1e-9
        && compile.Metrics.sp_stop <= execute.Metrics.sp_stop +. 1e-9);
      let starts_with pre s =
        String.length s >= String.length pre
        && String.sub s 0 (String.length pre) = pre
      in
      Alcotest.(check bool) "parse on a reader track" true
        (starts_with "reader-" parse.Metrics.sp_track);
      Alcotest.(check string) "queue wait on the queue track" "queue"
        wait.Metrics.sp_track;
      Alcotest.(check string) "dispatch on the dispatcher track" "dispatcher"
        dispatch.Metrics.sp_track;
      Alcotest.(check bool) "execute on a worker track" true
        (starts_with "worker-" execute.Metrics.sp_track);
      Alcotest.(check string) "cold respond on the dispatcher track"
        "dispatcher" respond.Metrics.sp_track;
      (* the warm request never leaves its reader thread *)
      let warm_respond = find 2 "respond" in
      Alcotest.(check bool) "warm respond on the reader track" true
        (starts_with "reader-" warm_respond.Metrics.sp_track);
      Alcotest.(check bool) "warm trace has no execute" true
        (not
           (List.exists
              (fun s -> s.Metrics.sp_trace = 2 && s.Metrics.sp_name = "execute")
              spans));
      (* --- exports parse and agree --- *)
      (match Obs.trace_json obs with
      | Json.Obj kvs -> (
        match List.assoc_opt "traceEvents" kvs with
        | Some (Json.List evs) ->
          Alcotest.(check bool) "trace export has events" true
            (List.length evs > List.length spans)
        | _ -> Alcotest.fail "traceEvents must be a list")
      | _ -> Alcotest.fail "trace export must be an object");
      (* the extended stats response carries the metrics section *)
      let stats =
        Client.with_unix sock (fun fd ->
            Client.request fd (Protocol.plain_request ~id:(Json.Int 3) "stats"))
      in
      match Protocol.response_payload_raw stats with
      | None -> Alcotest.fail "stats response must carry a payload"
      | Some payload -> (
        let sj = Json.of_string payload in
        (match Json.member "metrics" sj with
        | Some (Json.Obj _) -> ()
        | _ -> Alcotest.fail "stats payload needs a metrics section");
        match Json.member "scheduler" sj with
        | Some sched -> (
          match
            Option.bind
              (Json.member "queue_wait_total_s" sched)
              Json.to_float_opt
          with
          | Some w -> Alcotest.(check bool) "queue wait in stats" true (w >= 0.0)
          | None -> Alcotest.fail "scheduler stats need queue_wait_total_s")
        | None -> Alcotest.fail "stats payload needs a scheduler section"))

let test_e2e_shutdown_request () =
  with_server (fun sock server ->
      let resp =
        Client.with_unix sock (fun fd ->
            Client.request fd (Protocol.plain_request ~id:(Json.Int 1) "shutdown"))
      in
      Alcotest.(check string) "shutdown acknowledged" "ok"
        (Protocol.response_status (Json.of_string resp));
      (* stop is already underway; run unwinds without further prompting *)
      let rec wait n =
        if Server.stopped server then ()
        else if n = 0 then Alcotest.fail "server did not stop"
        else (
          Thread.yield ();
          wait (n - 1))
      in
      wait 1000)

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "rejects" `Quick test_parse_rejects;
          Alcotest.test_case "oversized" `Quick test_parse_oversized;
          Alcotest.test_case "simulate round-trip" `Quick
            test_parse_simulate_roundtrip;
          Alcotest.test_case "id sanitization" `Quick test_parse_sanitizes_id;
          Alcotest.test_case "raw payload extraction" `Quick
            test_envelope_payload_raw;
          Alcotest.test_case "statuses" `Quick test_envelope_statuses;
          Alcotest.test_case "content key" `Quick test_content_key;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit and miss" `Quick test_cache_hit_miss;
          Alcotest.test_case "fifo eviction" `Quick test_cache_fifo_eviction;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "round-robin fairness" `Quick
            test_scheduler_fairness;
          Alcotest.test_case "shed at the bound" `Quick test_scheduler_shed;
          Alcotest.test_case "queue wait accounting" `Quick
            test_scheduler_queue_wait;
          Alcotest.test_case "close drains" `Quick test_scheduler_close_drains;
        ] );
      ( "harness",
        [ Alcotest.test_case "rate guards" `Quick test_phases_guards ] );
      ( "daemon",
        [
          Alcotest.test_case "cache hit is byte-identical" `Quick
            test_e2e_cache_hit_byte_identical;
          Alcotest.test_case "rejects and shed-load" `Quick
            test_e2e_rejects_and_shed;
          Alcotest.test_case "oversized handling" `Quick test_e2e_oversized;
          Alcotest.test_case "observability spans and latency split" `Quick
            test_e2e_observability;
          Alcotest.test_case "shutdown request" `Quick test_e2e_shutdown_request;
        ] );
    ]
