(* Tests for the simulator telemetry layer: the counter/gauge registry,
   interval sampling (deltas must sum to the run's aggregate counters),
   the JSON emitter, and the Chrome trace-event export. *)

open Phloem_ir
open Builder
open Pipette

(* --- a minimal JSON parser, so we can check exported strings really parse --- *)

exception Bad_json of string

let parse_json (s : string) =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then pos := !pos + l
    else fail (Printf.sprintf "expected %s" lit)
  in
  let parse_string () =
    expect '"';
    let continue = ref true in
    while !continue do
      if !pos >= n then fail "unterminated string";
      (match s.[!pos] with
      | '"' -> continue := false
      | '\\' ->
        incr pos;
        if !pos >= n then fail "bad escape";
        (match s.[!pos] with
        | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' -> ()
        | 'u' ->
          for _ = 1 to 4 do
            incr pos;
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> ()
            | _ -> fail "bad \\u escape"
          done
        | _ -> fail "bad escape")
      | _ -> ());
      incr pos
    done
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    while
      match peek () with
      | Some ('0' .. '9' | '.' | 'e' | 'E' | '+' | '-') -> true
      | _ -> false
    do
      incr pos
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some _ -> ()
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then incr pos
      else begin
        let continue = ref true in
        while !continue do
          skip_ws ();
          parse_string ();
          skip_ws ();
          expect ':';
          parse_value ();
          skip_ws ();
          match peek () with
          | Some ',' -> incr pos
          | Some '}' ->
            incr pos;
            continue := false
          | _ -> fail "expected ',' or '}'"
        done
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then incr pos
      else begin
        let continue = ref true in
        while !continue do
          parse_value ();
          skip_ws ();
          match peek () with
          | Some ',' -> incr pos
          | Some ']' ->
            incr pos;
            continue := false
          | _ -> fail "expected ',' or ']'"
        done
      end
    | Some '"' -> parse_string ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  parse_value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

(* --- registry semantics, no engine involved --- *)

let test_registry_counter_vs_gauge () =
  let t = Telemetry.create ~interval:10 () in
  let c = ref 0 in
  Telemetry.register_counter t ~name:"c" (fun () -> !c);
  Telemetry.register_gauge t ~name:"g" (fun () -> !c * 2);
  c := 5;
  Telemetry.maybe_sample t ~cycle:10;
  c := 9;
  Telemetry.maybe_sample t ~cycle:25;
  Telemetry.maybe_sample t ~cycle:26;
  (* inside the same interval: no sample *)
  Telemetry.finish t ~cycle:40;
  let samples = Telemetry.samples t in
  Alcotest.(check int) "three samples (two boundaries + final flush)" 3
    (List.length samples);
  let values s name =
    let v = ref min_int in
    Array.iter (fun (n, x) -> if n = name then v := x) s.Telemetry.s_values;
    !v
  in
  (match samples with
  | [ s1; s2; s3 ] ->
    Alcotest.(check int) "first counter delta" 5 (values s1 "c");
    Alcotest.(check int) "second counter delta" 4 (values s2 "c");
    Alcotest.(check int) "final flush delta" 0 (values s3 "c");
    Alcotest.(check int) "gauge is instantaneous" 18 (values s2 "g")
  | _ -> Alcotest.fail "unexpected sample shape");
  Alcotest.(check int) "counter deltas sum to the aggregate" 9
    (Telemetry.sum_counter t "c")

let test_thread_state_spans () =
  let t = Telemetry.create ~interval:100 () in
  Telemetry.set_thread_state t ~thread:0 ~cycle:0 "issue";
  Telemetry.set_thread_state t ~thread:0 ~cycle:5 "backend";
  Telemetry.set_thread_state t ~thread:0 ~cycle:5 "backend";
  Telemetry.end_thread_state t ~thread:0 ~cycle:9;
  match Telemetry.spans t with
  | [ a; b ] ->
    Alcotest.(check string) "first span state" "issue" a.Telemetry.sp_state;
    Alcotest.(check int) "first span start" 0 a.Telemetry.sp_start;
    Alcotest.(check int) "first span end" 5 a.Telemetry.sp_end;
    Alcotest.(check string) "second span state" "backend" b.Telemetry.sp_state;
    Alcotest.(check int) "second span end" 9 b.Telemetry.sp_end
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

(* --- engine integration --- *)

let mk_pipeline n =
  pipeline "tel"
    ~arrays:[ int_array "A" n ]
    ~params:[ ("n", Types.Vint n) ]
    ~queues:[ queue 0 ]
    [
      stage "prod"
        [ for_ "i" (int 0) (v "n") [ "x" <-- load "A" (v "i"); enq 0 (v "x") ] ];
      stage "cons" [ for_ "i" (int 0) (v "n") [ "y" <-- (deq 0 +! int 1) ] ];
    ]

let run_with_telemetry ?(interval = 200) n =
  let tel = Telemetry.create ~interval () in
  let r = Sim.run ~telemetry:tel (mk_pipeline n) in
  (tel, r)

let test_samples_sum_to_aggregates () =
  let tel, r = run_with_telemetry 2000 in
  let t = r.Sim.sr_timing in
  let c = t.Engine.cache in
  let sum = Telemetry.sum_counter tel in
  Alcotest.(check int) "l1 hit deltas sum to aggregate" c.Cache.c_l1_hits
    (sum "cache.l1_hits");
  Alcotest.(check int) "l1 miss deltas sum to aggregate" c.Cache.c_l1_misses
    (sum "cache.l1_misses");
  Alcotest.(check int) "dram deltas sum to aggregate" c.Cache.c_dram
    (sum "cache.dram");
  Alcotest.(check int) "queue-op deltas sum to aggregate" t.Engine.queue_ops
    (sum "engine.queue_ops");
  Alcotest.(check int) "branch lookups sum to aggregate" t.Engine.branch_lookups
    (sum "branch.lookups");
  let stall_sum name =
    sum (Printf.sprintf "thread0.%s" name) + sum (Printf.sprintf "thread1.%s" name)
  in
  Alcotest.(check int) "issue cycles sum to aggregate" t.Engine.issue_cycles
    (stall_sum "issue_cycles");
  Alcotest.(check int) "queue stall cycles sum to aggregate" t.Engine.queue_cycles
    (stall_sum "queue_cycles");
  Alcotest.(check int) "backend cycles sum to aggregate" t.Engine.backend_cycles
    (stall_sum "backend_cycles");
  Alcotest.(check int) "other cycles sum to aggregate" t.Engine.other_cycles
    (stall_sum "other_cycles");
  (* sample cycles are strictly increasing and within the run *)
  let cycles = List.map (fun s -> s.Telemetry.s_cycle) (Telemetry.samples tel) in
  let rec mono = function
    | a :: (b :: _ as rest) -> a < b && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "sample cycles strictly increasing" true (mono cycles);
  Alcotest.(check bool) "samples taken" true (List.length cycles > 2)

let test_dispatch_bandwidth_conservation () =
  (* Per-cycle dispatch-bandwidth conservation: between two samples spanning
     d cycles, at most d * dispatch_width * n_cores ops can have been
     dispatched. Sampled at every cycle this is the per-cycle bound. *)
  let tel, r = run_with_telemetry ~interval:1 800 in
  let cfg = Config.default in
  let width = cfg.Config.dispatch_width * cfg.Config.n_cores in
  (* a sample at cycle c covers dispatch in cycles (prev, c]; the first one
     also covers cycle 0 *)
  let prev = ref (-1) in
  List.iter
    (fun s ->
      let span = s.Telemetry.s_cycle - !prev in
      prev := s.Telemetry.s_cycle;
      Array.iter
        (fun (name, v) ->
          if name = "engine.dispatched" then begin
            if v > span * width then
              Alcotest.failf "dispatched %d ops in %d cycles (width %d)" v span width
          end)
        s.Telemetry.s_values)
    (Telemetry.samples tel);
  Alcotest.(check bool) "ran" true (r.Sim.sr_timing.Engine.cycles > 0)

let test_queue_occupancy_gauge_bounded () =
  let tel, _ = run_with_telemetry ~interval:50 1000 in
  List.iter
    (fun s ->
      Array.iter
        (fun (name, v) ->
          if name = "queue0.occupancy" then
            Alcotest.(check bool)
              (Printf.sprintf "occupancy %d within capacity" v)
              true
              (v >= 0 && v <= Config.default.Config.queue_depth))
        s.Telemetry.s_values)
    (Telemetry.samples tel)

(* --- exports --- *)

let test_report_json_parses () =
  let tel, r = run_with_telemetry 1000 in
  parse_json (Telemetry.Json.to_string (Sim.json_of_run r));
  parse_json (Telemetry.Json.to_string (Telemetry.report_json tel));
  let s = Telemetry.Json.to_string (Telemetry.report_json tel) in
  Alcotest.(check bool) "report mentions samples" true
    (Str.string_match (Str.regexp ".*\"samples\".*") s 0)

let test_json_escaping () =
  let j = Telemetry.Json.(Obj [ ("we\"ird\n", Str "a\\b\tc\x01") ]) in
  let s = Telemetry.Json.to_string j in
  parse_json s;
  Alcotest.(check string) "escapes" "{\"we\\\"ird\\n\":\"a\\\\b\\tc\\u0001\"}" s

let test_trace_export () =
  let tel, r = run_with_telemetry ~interval:100 1500 in
  let trace = Telemetry.trace_json tel in
  parse_json (Telemetry.Json.to_string trace);
  let events =
    match trace with
    | Telemetry.Json.Obj kvs -> (
      match List.assoc "traceEvents" kvs with
      | Telemetry.Json.List l -> l
      | _ -> Alcotest.fail "traceEvents is not a list")
    | _ -> Alcotest.fail "trace is not an object"
  in
  let ph e =
    match e with
    | Telemetry.Json.Obj kvs -> (
      match List.assoc_opt "ph" kvs with Some (Telemetry.Json.Str p) -> p | _ -> "?")
    | _ -> "?"
  in
  let count p = List.length (List.filter (fun e -> ph e = p) events) in
  Alcotest.(check bool) "has span events" true (count "X" > 0);
  Alcotest.(check bool) "has counter events" true (count "C" > 0);
  Alcotest.(check bool) "has metadata events" true (count "M" > 0);
  (* one timeline track per thread *)
  let tids =
    List.filter_map
      (fun e ->
        match e with
        | Telemetry.Json.Obj kvs when ph e = "X" -> (
          match List.assoc_opt "tid" kvs with
          | Some (Telemetry.Json.Int tid) -> Some tid
          | _ -> None)
        | _ -> None)
      events
    |> List.sort_uniq compare
  in
  Alcotest.(check int) "one span track per thread"
    r.Sim.sr_timing.Engine.n_threads (List.length tids);
  (* spans are well-formed *)
  List.iter
    (fun e ->
      match e with
      | Telemetry.Json.Obj kvs when ph e = "X" -> (
        match (List.assoc_opt "ts" kvs, List.assoc_opt "dur" kvs) with
        | Some (Telemetry.Json.Int ts), Some (Telemetry.Json.Int dur) ->
          if ts < 0 || dur <= 0 then Alcotest.failf "bad span ts=%d dur=%d" ts dur
        | _ -> Alcotest.fail "span without ts/dur")
      | _ -> ())
    events

let test_no_telemetry_same_result () =
  (* The telemetry hook must not perturb the timing model. *)
  let r1 = Sim.run (mk_pipeline 700) in
  let tel = Telemetry.create ~interval:64 () in
  let r2 = Sim.run ~telemetry:tel (mk_pipeline 700) in
  Alcotest.(check int) "same cycles" (Sim.cycles r1) (Sim.cycles r2);
  Alcotest.(check int) "same instrs" (Sim.instrs r1) (Sim.instrs r2)

let suite =
  [
    Alcotest.test_case "registry counter vs gauge" `Quick test_registry_counter_vs_gauge;
    Alcotest.test_case "thread state spans" `Quick test_thread_state_spans;
    Alcotest.test_case "samples sum to aggregates" `Quick test_samples_sum_to_aggregates;
    Alcotest.test_case "dispatch bandwidth conservation" `Quick
      test_dispatch_bandwidth_conservation;
    Alcotest.test_case "queue occupancy gauge bounded" `Quick
      test_queue_occupancy_gauge_bounded;
    Alcotest.test_case "report JSON parses" `Quick test_report_json_parses;
    Alcotest.test_case "JSON escaping" `Quick test_json_escaping;
    Alcotest.test_case "Chrome trace export" `Quick test_trace_export;
    Alcotest.test_case "telemetry does not perturb timing" `Quick
      test_no_telemetry_same_result;
  ]

let () = Alcotest.run "telemetry" [ ("telemetry", suite) ]
