(* Tests for the domain work pool: submission-order determinism, exception
   propagation, nested submits, the --jobs 1 serial path, keyed PRNG
   streams, and byte-identical parallel-vs-serial harness reports. *)

open Phloem_util

(* Nontrivial, per-item-varying work so pooled runs actually interleave. *)
let job i =
  let rng = Prng.of_key ~seed:7 ~key:i in
  let acc = ref 0 in
  for _ = 0 to 2_000 + ((i mod 7) * 800) do
    acc := !acc + Prng.int rng 1000
  done;
  (i, !acc)

let test_submission_order () =
  let items = Array.init 200 Fun.id in
  let expected = Array.map job items in
  Pool.with_pool ~jobs:4 (fun pool ->
      for _ = 1 to 3 do
        let got = Pool.map pool job items in
        Alcotest.(check bool) "results in submission order" true (got = expected)
      done)

let test_jobs1_matches_serial () =
  let items = Array.init 64 Fun.id in
  let serial = Array.map job items in
  Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check bool) "jobs=1 == serial" true (Pool.map pool job items = serial);
      (* jobs=1 spawns no domains: jobs run on the calling domain *)
      let self = Domain.self () in
      let ds = Pool.map pool (fun _ -> Domain.self ()) (Array.make 8 ()) in
      Alcotest.(check bool) "runs inline" true (Array.for_all (( = ) self) ds))

let test_chunked_map () =
  let items = Array.init 101 Fun.id in
  let expected = Array.map job items in
  Pool.with_pool ~jobs:3 (fun pool ->
      Alcotest.(check bool) "chunk=8" true (Pool.map ~chunk:8 pool job items = expected);
      Alcotest.(check bool) "chunk>n" true
        (Pool.map ~chunk:1000 pool job items = expected))

let test_exception_propagation () =
  Pool.with_pool ~jobs:4 (fun pool ->
      (* several jobs fail; the lowest-index failure must surface *)
      Alcotest.check_raises "lowest-index exception" (Failure "boom 13") (fun () ->
          ignore
            (Pool.map pool
               (fun i ->
                 ignore (job i);
                 if i = 13 || i = 40 then failwith (Printf.sprintf "boom %d" i);
                 i)
               (Array.init 64 Fun.id)));
      (* a failed batch must not poison the pool *)
      let got = Pool.map pool succ (Array.init 16 Fun.id) in
      Alcotest.(check (array int)) "pool reusable after failure"
        (Array.init 16 succ) got)

let test_nested_submit () =
  Pool.with_pool ~jobs:3 (fun pool ->
      let got =
        Pool.map pool
          (fun i ->
            (* a nested submit runs inline in the worker; must not deadlock *)
            Array.to_list (Pool.map pool (fun j -> (i * 10) + j) (Array.init 4 Fun.id)))
          (Array.init 6 Fun.id)
      in
      let expected =
        Array.init 6 (fun i -> List.init 4 (fun j -> (i * 10) + j))
      in
      Alcotest.(check bool) "nested results" true (got = expected))

let test_run_thunks () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let got = Pool.run pool [ (fun () -> 1); (fun () -> 2); (fun () -> 3) ] in
      Alcotest.(check (list int)) "thunk order" [ 1; 2; 3 ] got)

let drain n rng = List.init n (fun _ -> Prng.next rng)

let test_prng_keyed_streams () =
  (* of_key is a pure function of (seed, key): creation order is irrelevant *)
  let a1 = drain 8 (Prng.of_key ~seed:42 ~key:3) in
  let b1 = drain 8 (Prng.of_key ~seed:42 ~key:4) in
  let b2 = drain 8 (Prng.of_key ~seed:42 ~key:4) in
  let a2 = drain 8 (Prng.of_key ~seed:42 ~key:3) in
  Alcotest.(check (list int)) "key 3 reproducible" a1 a2;
  Alcotest.(check (list int)) "key 4 reproducible" b1 b2;
  Alcotest.(check bool) "keys differ" true (a1 <> b1);
  Alcotest.(check bool) "seeds differ" true
    (drain 8 (Prng.of_key ~seed:43 ~key:3) <> a1);
  (* split: children are distinct from each other and from the parent *)
  let parent = Prng.create 9 in
  let c1 = Prng.split parent in
  let c2 = Prng.split parent in
  let s1 = drain 8 c1 and s2 = drain 8 c2 in
  Alcotest.(check bool) "split streams differ" true (s1 <> s2);
  Alcotest.(check bool) "split differs from parent" true (drain 8 parent <> s1)

let test_interp_budget_is_domain_local () =
  (* with_max_ops in one domain must not leak into another running at the
     default budget *)
  Phloem_ir.Interp.with_max_ops 123 (fun () ->
      Alcotest.(check int) "set in this domain" 123 (Phloem_ir.Interp.max_ops ());
      let other = Domain.spawn (fun () -> Phloem_ir.Interp.max_ops ()) in
      Alcotest.(check int) "default in fresh domain" 60_000_000
        (Domain.join other));
  Alcotest.(check int) "restored" 60_000_000 (Phloem_ir.Interp.max_ops ())

(* The acceptance check of the parallel harness: the fig9-11 collection is
   byte-identical between --jobs 1 (no pool) and --jobs 4. Grid/mesh inputs
   honour [scale], so this stays small. *)
let test_parallel_vs_serial_json () =
  let module E = Phloem_harness.Experiments in
  let module Json = Pipette.Telemetry.Json in
  let scale = 0.05 in
  let benches = [ "BFS"; "CC" ] in
  let only_inputs = [ "hugetrace-00000"; "USA-road-d-USA" ] in
  let serial = E.collect ~benches ~only_inputs ~pgo:false ~scale () in
  let par =
    Pool.with_pool ~jobs:4 (fun pool ->
        E.collect ~pool ~benches ~only_inputs ~pgo:false ~scale ())
  in
  Alcotest.(check string) "byte-identical --jobs 1 vs --jobs 4"
    (Json.to_string (E.json_of_collection serial))
    (Json.to_string (E.json_of_collection par))

(* Search under the pool: same candidates, same best recipe, same gmeans. *)
let test_parallel_search_deterministic () =
  let g = Phloem_graph.Gen.grid ~width:10 ~height:10 ~seed:5 in
  let bounds = [ Phloem_workloads.Bfs.bind g ] in
  let serial = Phloem_harness.Runner.pgo_cuts ~top_k:3 ~max_cuts:2 bounds in
  let par =
    Pool.with_pool ~jobs:4 (fun pool ->
        Phloem_harness.Runner.pgo_cuts ~top_k:3 ~max_cuts:2 ~pool bounds)
  in
  Alcotest.(check bool) "same best cuts" true
    (serial.Phloem.Search.best = par.Phloem.Search.best);
  Alcotest.(check bool) "same candidate gmeans" true
    (List.map
       (fun (c : Phloem.Search.candidate) -> c.Phloem.Search.ca_gmean)
       serial.Phloem.Search.all
    = List.map
        (fun (c : Phloem.Search.candidate) -> c.Phloem.Search.ca_gmean)
        par.Phloem.Search.all)

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "submission order" `Quick test_submission_order;
          Alcotest.test_case "jobs=1 serial path" `Quick test_jobs1_matches_serial;
          Alcotest.test_case "chunked map" `Quick test_chunked_map;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
          Alcotest.test_case "nested submit" `Quick test_nested_submit;
          Alcotest.test_case "run thunks" `Quick test_run_thunks;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "prng keyed streams" `Quick test_prng_keyed_streams;
          Alcotest.test_case "interp budget domain-local" `Quick
            test_interp_budget_is_domain_local;
          Alcotest.test_case "search pooled == serial" `Quick
            test_parallel_search_deterministic;
          Alcotest.test_case "experiments json byte-identical" `Slow
            test_parallel_vs_serial_json;
        ] );
    ]
