(* Tests for the Phloem IR: interpreter semantics, queue/Kahn behaviour,
   control values and handlers, reference accelerators, validation, and the
   pipeline-equals-serial property on random programs. *)

open Phloem_ir
open Types
open Builder

let vint_array a = Array.map (fun x -> Vint x) a

let ints_of_result res name =
  match List.assoc_opt name res.Interp.r_arrays with
  | None -> Alcotest.failf "array %s missing from result" name
  | Some a ->
    Array.map (function Vint i -> i | v -> Alcotest.failf "non-int %s" (value_to_string v)) a

(* --- simple serial semantics --- *)

let test_serial_sum () =
  (* out[0] = sum of a[0..n) *)
  let p =
    serial "sum"
      ~arrays:[ int_array "a" 10; int_array "out" 1 ]
      ~params:[ ("n", Vint 10) ]
      [
        "acc" <-- int 0;
        for_ "i" (int 0) (v "n") [ "acc" <-- (v "acc" +! load "a" (v "i")) ];
        store "out" (int 0) (v "acc");
      ]
  in
  let a = Array.init 10 (fun i -> i * 3) in
  let res = Interp.run ~inputs:[ ("a", vint_array a) ] p in
  Alcotest.(check int) "sum" (Array.fold_left ( + ) 0 a) (ints_of_result res "out").(0)

let test_two_stage_queue () =
  (* producer sends squares, consumer accumulates *)
  let p =
    pipeline "sq"
      ~arrays:[ int_array "out" 1 ]
      ~params:[ ("n", Vint 8) ]
      ~queues:[ queue 0 ]
      [
        stage "prod" [ for_ "i" (int 0) (v "n") [ enq 0 (v "i" *! v "i") ] ];
        stage "cons"
          [
            "acc" <-- int 0;
            for_ "i" (int 0) (v "n") [ "acc" <-- (v "acc" +! deq 0) ];
            store "out" (int 0) (v "acc");
          ];
      ]
  in
  let res = Interp.run p in
  Alcotest.(check int) "sum of squares" 140 (ints_of_result res "out").(0)

let test_control_value_check () =
  (* producer terminates the stream with a control value; consumer loops
     until it sees it, using an explicit is_control check. *)
  let p =
    pipeline "cv"
      ~arrays:[ int_array "out" 1 ]
      ~queues:[ queue 0 ]
      [
        stage "prod" [ for_ "i" (int 1) (int 6) [ enq 0 (v "i") ]; enq_ctrl 0 99 ];
        stage "cons"
          [
            "acc" <-- int 0;
            loop_forever
              [
                "x" <-- deq 0;
                when_ (is_control (v "x")) [ break_ ];
                "acc" <-- (v "acc" +! v "x");
              ];
            store "out" (int 0) (v "acc");
          ];
      ]
  in
  let res = Interp.run p in
  Alcotest.(check int) "sum 1..5" 15 (ints_of_result res "out").(0)

let test_control_value_handler () =
  (* Same but via a control-value handler: no per-element check. *)
  let p =
    pipeline "cvh"
      ~arrays:[ int_array "out" 1 ]
      ~queues:[ queue 0 ]
      [
        stage "prod" [ for_ "i" (int 1) (int 6) [ enq 0 (v "i") ]; enq_ctrl 0 99 ];
        stage "cons"
          ~handlers:
            [ handler ~queue:0 ~cv:"cv" [ store "out" (int 1) (ctrl_payload (v "cv")); exit_loops 1 ] ]
          [
            "acc" <-- int 0;
            loop_forever [ "acc" <-- (v "acc" +! deq 0) ];
            store "out" (int 0) (v "acc");
          ];
      ]
  in
  let p = { p with p_arrays = [ int_array "out" 2 ] } in
  let res = Interp.run p in
  let out = ints_of_result res "out" in
  Alcotest.(check int) "sum" 15 out.(0);
  Alcotest.(check int) "payload seen by handler" 99 out.(1)

let test_handler_skip_continue () =
  (* Handler that falls through: control values are skipped transparently. *)
  let p =
    pipeline "cvskip"
      ~arrays:[ int_array "out" 1 ]
      ~queues:[ queue 0 ]
      [
        stage "prod"
          [
            enq 0 (int 1);
            enq_ctrl 0 7;
            enq 0 (int 2);
            enq_ctrl 0 8;
            enq 0 (int 3);
            enq_ctrl 0 0;
          ];
        stage "cons"
          ~handlers:
            [
              handler ~queue:0 ~cv:"cv"
                [ when_ (ctrl_payload (v "cv") ==! int 0) [ exit_loops 1 ] ];
            ]
          [
            "acc" <-- int 0;
            loop_forever [ "acc" <-- (v "acc" +! deq 0) ];
            store "out" (int 0) (v "acc");
          ];
      ]
  in
  let res = Interp.run p in
  Alcotest.(check int) "data summed, cvs skipped" 6 (ints_of_result res "out").(0)

let test_ra_indirect () =
  (* producer sends indices; RA fetches table[idx]; consumer accumulates. *)
  let p =
    pipeline "ra"
      ~arrays:[ int_array "table" 16; int_array "out" 1 ]
      ~queues:[ queue 0; queue 1 ]
      ~ras:[ ra ~id:0 ~in_q:0 ~out_q:1 ~array:"table" ~mode:Ra_indirect ]
      [
        stage "prod" [ for_ "i" (int 0) (int 8) [ enq 0 (v "i" *! int 2) ] ];
        stage "cons"
          [
            "acc" <-- int 0;
            for_ "i" (int 0) (int 8) [ "acc" <-- (v "acc" +! deq 1) ];
            store "out" (int 0) (v "acc");
          ];
      ]
  in
  let table = Array.init 16 (fun i -> 100 + i) in
  let res = Interp.run ~inputs:[ ("table", vint_array table) ] p in
  let expected = List.init 8 (fun i -> table.(2 * i)) |> List.fold_left ( + ) 0 in
  Alcotest.(check int) "indirect RA" expected (ints_of_result res "out").(0)

let test_ra_scan_chained () =
  (* Chained RAs as in BFS: indirect on nodes (start/end), scan on edges. *)
  let nodes = [| 0; 2; 5; 6 |] in
  let edges = [| 10; 11; 20; 21; 22; 30 |] in
  let p =
    pipeline "chain"
      ~arrays:[ int_array "nodes" 4; int_array "edges" 6; int_array "out" 1 ]
      ~queues:[ queue 0; queue 1; queue 2 ]
      ~ras:
        [
          ra ~id:0 ~in_q:0 ~out_q:1 ~array:"nodes" ~mode:Ra_indirect;
          ra ~id:1 ~in_q:1 ~out_q:2 ~array:"edges" ~mode:Ra_scan;
        ]
      [
        stage "prod"
          [
            for_ "vtx" (int 0) (int 3) [ enq 0 (v "vtx"); enq 0 (v "vtx" +! int 1) ];
            enq_ctrl 0 1;
          ];
        stage "cons"
          ~handlers:[ handler ~queue:2 ~cv:"cv" [ exit_loops 1 ] ]
          [
            "acc" <-- int 0;
            loop_forever [ "acc" <-- (v "acc" +! deq 2) ];
            store "out" (int 0) (v "acc");
          ];
      ]
  in
  let res =
    Interp.run ~inputs:[ ("nodes", vint_array nodes); ("edges", vint_array edges) ] p
  in
  Alcotest.(check int) "all edges streamed" (Array.fold_left ( + ) 0 edges)
    (ints_of_result res "out").(0)

let test_feedback_queue () =
  (* Two stages with a feedback edge: stage B tells stage A how many rounds
     remain (models BFS round synchronization). *)
  let p =
    pipeline "feedback"
      ~arrays:[ int_array "out" 1 ]
      ~queues:[ queue 0; queue 1 ]
      [
        stage "head"
          [
            "rounds" <-- int 5;
            while_ (v "rounds" >! int 0)
              [ enq 0 (v "rounds"); "rounds" <-- deq 1 ];
          ];
        stage "tail"
          [
            "acc" <-- int 0;
            "r" <-- deq 0;
            while_ (v "r" >! int 0)
              [
                "acc" <-- (v "acc" +! v "r");
                enq 1 (v "r" -! int 1);
                "r" <-- deq 0;
              ];
            Seq_marker "unreachable";
          ];
      ]
  in
  (* head's loop ends when rounds = 0 but tail still waits for one more enq,
     so head must send the final 0 to unblock it. *)
  let p =
    {
      p with
      p_stages =
        [
          stage "head"
            [
              "rounds" <-- int 5;
              while_ (v "rounds" >! int 0)
                [ enq 0 (v "rounds"); "rounds" <-- deq 1 ];
              enq 0 (int 0);
            ];
          stage "tail"
            [
              "acc" <-- int 0;
              "r" <-- deq 0;
              while_ (v "r" >! int 0)
                [
                  "acc" <-- (v "acc" +! v "r");
                  enq 1 (v "r" -! int 1);
                  "r" <-- deq 0;
                ];
              store "out" (int 0) (v "acc");
            ];
        ];
    }
  in
  let res = Interp.run p in
  Alcotest.(check int) "5+4+3+2+1" 15 (ints_of_result res "out").(0)

let test_barrier_phases () =
  (* Phase 1: both stages write their half; phase 2: each reads the other's
     half. The barrier makes this safe. *)
  let p =
    pipeline "phases"
      ~arrays:[ int_array "buf" 2; int_array "out" 2 ]
      [
        stage "s0"
          [ store "buf" (int 0) (int 11); barrier 1; store "out" (int 0) (load "buf" (int 1)) ];
        stage "s1"
          [ store "buf" (int 1) (int 22); barrier 1; store "out" (int 1) (load "buf" (int 0)) ];
      ]
  in
  let res = Interp.run p in
  let out = ints_of_result res "out" in
  Alcotest.(check (pair int int)) "cross reads" (22, 11) (out.(0), out.(1))

let test_deadlock_detection () =
  let p =
    pipeline "dead"
      ~queues:[ queue 0 ]
      [ stage "only" [ "x" <-- deq 0 ] ]
  in
  match Interp.run p with
  | _ -> Alcotest.fail "expected Pipeline_failure"
  | exception Forensics.Pipeline_failure r ->
    Alcotest.(check string) "kind" "deadlock" (Forensics.kind_name r.fr_kind);
    Alcotest.(check string) "pipeline" "dead" r.fr_pipeline;
    (match r.fr_agents with
    | [ a ] ->
      Alcotest.(check string) "agent" "only" a.Forensics.ag_name;
      Alcotest.(check bool) "blocked on empty q0" true
        (a.Forensics.ag_blocked = Forensics.On_queue_empty 0)
    | l -> Alcotest.failf "expected 1 agent, got %d" (List.length l));
    (* q0 has no producer at all: no cycle, but a pointed diagnosis *)
    Alcotest.(check bool) "no wait cycle" true (r.fr_wait_cycle = []);
    Alcotest.(check bool) "diagnosis names the unproduced queue" true
      (List.exists
         (fun d ->
           let has needle =
             let nl = String.length needle and dl = String.length d in
             let rec go i = i + nl <= dl && (String.sub d i nl = needle || go (i + 1)) in
             go 0
           in
           has "q0" && has "ever enqueues")
         r.fr_diagnosis)

let test_enq_indexed () =
  (* distribute across two consumer queues by parity *)
  let p =
    pipeline "dist"
      ~arrays:[ int_array "out" 2 ]
      ~queues:[ queue 0; queue 1 ]
      [
        stage "prod"
          [
            for_ "i" (int 0) (int 10) [ enq_indexed [| 0; 1 |] (v "i" %! int 2) (v "i") ];
            enq_ctrl 0 1;
            enq_ctrl 1 1;
          ];
        stage "even"
          ~handlers:[ handler ~queue:0 ~cv:"c" [ exit_loops 1 ] ]
          [
            "acc" <-- int 0;
            loop_forever [ "acc" <-- (v "acc" +! deq 0) ];
            store "out" (int 0) (v "acc");
          ];
        stage "odd"
          ~handlers:[ handler ~queue:1 ~cv:"c" [ exit_loops 1 ] ]
          [
            "acc" <-- int 0;
            loop_forever [ "acc" <-- (v "acc" +! deq 1) ];
            store "out" (int 1) (v "acc");
          ];
      ]
  in
  let res = Interp.run p in
  let out = ints_of_result res "out" in
  Alcotest.(check (pair int int)) "parity sums" (20, 25) (out.(0), out.(1))

(* --- trace sanity --- *)

let test_trace_deps_wellformed () =
  let p =
    pipeline "tr"
      ~arrays:[ int_array "a" 4; int_array "out" 1 ]
      ~queues:[ queue 0 ]
      [
        stage "prod" [ for_ "i" (int 0) (int 4) [ enq 0 (load "a" (v "i")) ] ];
        stage "cons"
          [
            "acc" <-- int 0;
            for_ "i" (int 0) (int 4) [ "acc" <-- (v "acc" +! deq 0) ];
            store "out" (int 0) (v "acc");
          ];
      ]
  in
  let res = Interp.run ~inputs:[ ("a", vint_array [| 1; 2; 3; 4 |]) ] p in
  let tr = res.Interp.r_trace in
  Array.iter
    (fun th ->
      let n = Trace.length th in
      for i = 0 to n - 1 do
        let check_dep d =
          if d <> Trace.no_dep && d >= i then
            Alcotest.failf "op %d depends on later op %d" i d
        in
        check_dep (Phloem_util.Vec.Int_vec.get th.Trace.dep1 i);
        check_dep (Phloem_util.Vec.Int_vec.get th.Trace.dep2 i);
        check_dep (Phloem_util.Vec.Int_vec.get th.Trace.dep3 i)
      done)
    tr.Trace.threads;
  Alcotest.(check bool) "ops recorded" true (Trace.op_count tr > 0)

(* --- validation --- *)

let test_validate_multiconsumer () =
  let p =
    pipeline "bad"
      ~queues:[ queue 0 ]
      [
        stage "p" [ enq 0 (int 1); enq 0 (int 2) ];
        stage "c1" [ "x" <-- deq 0 ];
        stage "c2" [ "y" <-- deq 0 ];
      ]
  in
  (match Validate.check p with
  | () -> Alcotest.fail "expected Invalid"
  | exception Validate.Invalid _ -> ())

let test_validate_undeclared_queue () =
  let p = pipeline "bad2" [ stage "p" [ enq 3 (int 1) ] ] in
  match Validate.check p with
  | () -> Alcotest.fail "expected Invalid"
  | exception Validate.Invalid _ -> ()

let test_validate_break_outside_loop () =
  let p = pipeline "bad3" [ stage "p" [ break_ ] ] in
  match Validate.check p with
  | () -> Alcotest.fail "expected Invalid"
  | exception Validate.Invalid _ -> ()

(* --- qcheck: random straight-line/loop programs, pipeline == serial --- *)

(* Generates a random two-stage map/filter pipeline and checks it computes
   the same as the equivalent serial loop. *)
let prop_two_stage_equiv =
  QCheck.Test.make ~count:100 ~name:"split map/filter pipeline equals serial"
    QCheck.(
      pair (list_of_size Gen.(int_range 1 40) (int_range (-100) 100)) (int_range 1 7))
    (fun (data, k) ->
      let n = List.length data in
      let arr = Array.of_list data in
      let serial_expected =
        Array.fold_left (fun acc x -> if x > 0 then acc + (x * k) else acc) 0 arr
      in
      let p =
        pipeline "prop"
          ~arrays:[ int_array "a" n; int_array "out" 1 ]
          ~params:[ ("n", Vint n); ("k", Vint k) ]
          ~queues:[ queue 0 ]
          [
            stage "filter"
              [
                for_ "i" (int 0) (v "n")
                  [
                    "x" <-- load "a" (v "i");
                    when_ (v "x" >! int 0) [ enq 0 (v "x") ];
                  ];
                enq_ctrl 0 1;
              ];
            stage "scale"
              ~handlers:[ handler ~queue:0 ~cv:"c" [ exit_loops 1 ] ]
              [
                "acc" <-- int 0;
                loop_forever [ "acc" <-- (v "acc" +! (deq 0 *! v "k")) ];
                store "out" (int 0) (v "acc");
              ];
          ]
      in
      let res = Interp.run ~inputs:[ ("a", vint_array arr) ] p in
      (ints_of_result res "out").(0) = serial_expected)

let prop_queue_traffic_counts =
  QCheck.Test.make ~count:50 ~name:"queue traffic equals values enqueued"
    QCheck.(int_range 0 50)
    (fun n ->
      let p =
        pipeline "traffic"
          ~params:[ ("n", Vint n) ]
          ~queues:[ queue 0 ]
          [
            stage "prod" [ for_ "i" (int 0) (v "n") [ enq 0 (v "i") ] ];
            stage "cons" [ for_ "i" (int 0) (v "n") [ "x" <-- deq 0 ] ];
          ]
      in
      let res = Interp.run p in
      res.Interp.r_queue_traffic.(0) = n)

let suite =
  [
    Alcotest.test_case "serial sum" `Quick test_serial_sum;
    Alcotest.test_case "two-stage queue" `Quick test_two_stage_queue;
    Alcotest.test_case "control value with check" `Quick test_control_value_check;
    Alcotest.test_case "control value handler" `Quick test_control_value_handler;
    Alcotest.test_case "handler skip/continue" `Quick test_handler_skip_continue;
    Alcotest.test_case "indirect RA" `Quick test_ra_indirect;
    Alcotest.test_case "chained scan RA" `Quick test_ra_scan_chained;
    Alcotest.test_case "feedback queue rounds" `Quick test_feedback_queue;
    Alcotest.test_case "barrier phases" `Quick test_barrier_phases;
    Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
    Alcotest.test_case "enq_indexed distribution" `Quick test_enq_indexed;
    Alcotest.test_case "trace deps well-formed" `Quick test_trace_deps_wellformed;
    Alcotest.test_case "validate: multi-consumer" `Quick test_validate_multiconsumer;
    Alcotest.test_case "validate: undeclared queue" `Quick test_validate_undeclared_queue;
    Alcotest.test_case "validate: break outside loop" `Quick test_validate_break_outside_loop;
    QCheck_alcotest.to_alcotest prop_two_stage_equiv;
    QCheck_alcotest.to_alcotest prop_queue_traffic_counts;
  ]

let () = Alcotest.run "phloem_ir" [ ("ir", suite) ]
