(* Tests for the utility substrate: vectors, heap, PRNG, stats, tables. *)

open Phloem_util

let test_vec_growth () =
  let v = Vec.create ~dummy:0 () in
  for i = 0 to 999 do
    Vec.push v (i * 2)
  done;
  Alcotest.(check int) "length" 1000 (Vec.length v);
  Alcotest.(check int) "get" 998 (Vec.get v 499);
  Vec.set v 499 7;
  Alcotest.(check int) "set" 7 (Vec.get v 499);
  Alcotest.(check int) "last" 1998 (Vec.last v);
  Alcotest.(check int) "fold" (List.init 1000 (fun i -> i * 2) |> List.fold_left ( + ) 0 |> fun s -> s - 998 + 7)
    (Vec.fold_left ( + ) 0 v)

let test_vec_bounds () =
  let v = Vec.of_list ~dummy:0 [ 1; 2; 3 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get") (fun () ->
      ignore (Vec.get v 3))

let test_int_vec () =
  let v = Vec.Int_vec.create () in
  for i = 0 to 99 do
    Vec.Int_vec.push v i
  done;
  Alcotest.(check int) "sum" 4950 (Vec.Int_vec.fold_left ( + ) 0 v);
  Alcotest.(check (array int)) "to_array" (Array.init 100 Fun.id) (Vec.Int_vec.to_array v)

let test_heap_sorts () =
  let h = Heap.create () in
  let rng = Prng.create 99 in
  let input = List.init 500 (fun _ -> Prng.int rng 10_000) in
  List.iter (Heap.push h) input;
  let out = List.init 500 (fun _ -> Heap.pop h) in
  Alcotest.(check (list int)) "heap pops sorted" (List.sort compare input) out;
  Alcotest.(check bool) "empty after" true (Heap.is_empty h)

let test_heap_empty () =
  let h = Heap.create () in
  Alcotest.check_raises "pop empty" (Invalid_argument "Heap.pop") (fun () ->
      ignore (Heap.pop h))

let test_prng_deterministic () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.next a) (Prng.next b)
  done

let test_prng_bounds () =
  let rng = Prng.create 3 in
  for _ = 1 to 1000 do
    let x = Prng.int rng 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17);
    let f = Prng.float rng 2.5 in
    Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 2.5)
  done

let test_prng_shuffle_permutes () =
  let rng = Prng.create 5 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle rng a;
  Alcotest.(check (list int)) "same multiset" (List.init 50 Fun.id)
    (List.sort compare (Array.to_list a))

let test_stats () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "gmean" 2.0 (Stats.gmean [ 1.0; 2.0; 4.0 ]);
  Alcotest.(check (pair (float 1e-9) (float 1e-9))) "min_max" (1.0, 4.0)
    (Stats.min_max [ 2.0; 1.0; 4.0 ]);
  Alcotest.(check (float 1e-9)) "median" 2.0 (Stats.percentile 0.5 [ 3.0; 1.0; 2.0 ]);
  Alcotest.check_raises "gmean rejects <= 0"
    (Invalid_argument "Stats.gmean: non-positive element") (fun () ->
      ignore (Stats.gmean [ 1.0; 0.0 ]))

let test_table_render () =
  let t = Table.create [ "A"; "Bench" ] in
  Table.add_row t [ "1"; "x" ];
  Table.add_row t [ "22"; "yy" ];
  let s = Table.render t in
  Alcotest.(check bool) "header present" true (String.length s > 0);
  let lines = String.split_on_char '\n' s in
  (match lines with
  | header :: rule :: _ ->
    Alcotest.(check int) "aligned" (String.length header) (String.length rule)
  | _ -> Alcotest.fail "too few lines");
  Alcotest.check_raises "row width" (Invalid_argument "Table.add_row: row width mismatch")
    (fun () -> Table.add_row t [ "only one" ])

(* --- histograms and metrics --- *)

let test_hist_basics () =
  let h = Stats.hist_create () in
  Alcotest.(check int) "empty count" 0 (Stats.hist_count h);
  Alcotest.check_raises "empty percentile"
    (Invalid_argument "Stats.percentile_hist: empty") (fun () ->
      ignore (Stats.percentile_hist 0.5 h));
  List.iter (Stats.hist_add h) [ 0.001; 0.002; 0.004; 0.008; 0.1 ];
  Stats.hist_add h Float.nan;
  Alcotest.(check int) "count (NaN ignored)" 5 (Stats.hist_count h);
  Alcotest.(check (float 1e-9)) "sum" 0.115 (Stats.hist_sum h);
  Alcotest.(check (option (float 1e-9))) "min" (Some 0.001) (Stats.hist_min h);
  Alcotest.(check (option (float 1e-9))) "max" (Some 0.1) (Stats.hist_max h);
  Alcotest.(check (float 1e-9)) "mean" 0.023 (Stats.hist_mean h);
  (* percentiles stay within the observed range *)
  List.iter
    (fun p ->
      let v = Stats.percentile_hist p h in
      Alcotest.(check bool)
        (Printf.sprintf "p%.0f in range" (100.0 *. p))
        true
        (v >= 0.001 && v <= 0.1))
    [ 0.0; 0.5; 0.95; 0.99; 1.0 ];
  (* buckets cover every sample, ascending and disjoint *)
  let buckets = Stats.hist_buckets h in
  Alcotest.(check int) "bucket counts sum" 5
    (List.fold_left (fun a (_, _, c) -> a + c) 0 buckets);
  List.iter
    (fun (lo, hi, c) ->
      Alcotest.(check bool) "bucket well-formed" true (lo < hi && c > 0))
    buckets

let test_hist_under_overflow () =
  let h = Stats.hist_create ~lo:1.0 ~growth:2.0 ~buckets:3 () in
  (* range [1, 8); 0.5 underflows, 100 overflows *)
  List.iter (Stats.hist_add h) [ 0.5; 2.0; 100.0 ];
  Alcotest.(check int) "count" 3 (Stats.hist_count h);
  let v0 = Stats.percentile_hist 0.01 h in
  let v1 = Stats.percentile_hist 1.0 h in
  Alcotest.(check (float 1e-9)) "underflow clamps to min" 0.5 v0;
  Alcotest.(check (float 1e-9)) "overflow clamps to max" 100.0 v1

let test_hist_merge () =
  let a = Stats.hist_create () and b = Stats.hist_create () in
  List.iter (Stats.hist_add a) [ 0.001; 0.01 ];
  List.iter (Stats.hist_add b) [ 0.1; 1.0; 10.0 ];
  let m = Stats.hist_merge a b in
  Alcotest.(check int) "merged count" 5 (Stats.hist_count m);
  Alcotest.(check (float 1e-9)) "merged sum" 11.111 (Stats.hist_sum m);
  Alcotest.(check (option (float 1e-9))) "merged min" (Some 0.001)
    (Stats.hist_min m);
  Alcotest.(check (option (float 1e-9))) "merged max" (Some 10.0)
    (Stats.hist_max m);
  let other = Stats.hist_create ~buckets:7 () in
  Alcotest.check_raises "shape mismatch"
    (Invalid_argument "Stats.hist_merge: shape mismatch") (fun () ->
      ignore (Stats.hist_merge a other))

(* The histogram percentile must agree with the exact nearest-rank
   percentile up to one bucket of relative error (the growth factor). *)
let prop_percentile_hist_close =
  QCheck.Test.make ~count:200 ~name:"percentile_hist within growth of exact"
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 60) (float_range 1e-5 100.0))
        (float_range 0.0 1.0))
    (fun (xs, p) ->
      let growth = 10.0 ** 0.2 in
      let h = Stats.hist_create ~growth () in
      List.iter (Stats.hist_add h) xs;
      let exact = Stats.percentile p xs in
      let approx = Stats.percentile_hist p h in
      let lo, hi = Stats.min_max xs in
      approx >= lo && approx <= hi
      && approx <= exact *. growth +. 1e-12
      && approx >= exact /. growth -. 1e-12)

let test_metrics_registry () =
  let m = Metrics.create () in
  let c = Metrics.counter m "reqs" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  Alcotest.(check int) "counter" 5 (Metrics.counter_value c);
  Alcotest.(check int) "same handle" 5
    (Metrics.counter_value (Metrics.counter m "reqs"));
  let g = Metrics.gauge m "depth" in
  Metrics.set g 3.5;
  Alcotest.(check (float 1e-9)) "gauge" 3.5 (Metrics.gauge_value g);
  let h = Metrics.histogram m "lat" in
  List.iter (Metrics.observe h) [ 0.001; 0.01; 0.1 ];
  let snap = Metrics.snapshot m in
  Alcotest.(check (list (pair string int))) "counters" [ ("reqs", 5) ]
    snap.Metrics.sn_counters;
  Alcotest.(check int) "snapshot hist count" 3
    (Stats.hist_count (List.assoc "lat" snap.Metrics.sn_hists));
  (* the snapshot is a copy: later observations don't leak in *)
  Metrics.observe h 0.5;
  Alcotest.(check int) "snapshot frozen" 3
    (Stats.hist_count (List.assoc "lat" snap.Metrics.sn_hists));
  (* merge sums counters and histograms, keeps max gauge *)
  let merged = Metrics.merge snap (Metrics.snapshot m) in
  Alcotest.(check (list (pair string int))) "merged counters" [ ("reqs", 10) ]
    merged.Metrics.sn_counters;
  Alcotest.(check int) "merged hist" 7
    (Stats.hist_count (List.assoc "lat" merged.Metrics.sn_hists));
  (* Prometheus exposition: cumulative buckets consistent with _count *)
  let prom = Metrics.to_prometheus merged in
  let has s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  Alcotest.(check bool) "prom counter line" true (has prom "reqs 10");
  Alcotest.(check bool) "prom inf bucket" true
    (has prom "lat_bucket{le=\"+Inf\"} 7");
  Alcotest.(check bool) "prom count" true (has prom "lat_count 7")

(* Two domains hammer the same histogram and counter; the snapshot must
   account for every observation — the registry's domain-safety contract. *)
let test_metrics_concurrent_domains () =
  let m = Metrics.create () in
  let per_domain = 20_000 in
  let work () =
    let c = Metrics.counter m "n" in
    let h = Metrics.histogram m "obs" in
    for i = 1 to per_domain do
      Metrics.incr c;
      Metrics.observe h (float_of_int (1 + (i mod 997)) /. 1000.0)
    done
  in
  let d1 = Domain.spawn work and d2 = Domain.spawn work in
  work ();
  Domain.join d1;
  Domain.join d2;
  let snap = Metrics.snapshot m in
  Alcotest.(check int) "counter total" (3 * per_domain)
    (List.assoc "n" snap.Metrics.sn_counters);
  Alcotest.(check int) "histogram total" (3 * per_domain)
    (Stats.hist_count (List.assoc "obs" snap.Metrics.sn_hists))

let test_span_recorder () =
  let r = Metrics.recorder ~max_spans:4 () in
  (* recorded out of order; [spans] must sort by start *)
  Metrics.record r ~trace:1 ~track:"worker" ~name:"execute" ~start:2.0 ~stop:5.0;
  Metrics.record r ~trace:1 ~track:"reader" ~name:"parse" ~start:1.0 ~stop:1.5;
  Metrics.record r ~trace:1 ~track:"worker" ~name:"compile" ~start:2.5 ~stop:3.0;
  let spans = Metrics.spans r in
  Alcotest.(check (list string)) "sorted by start"
    [ "parse"; "execute"; "compile" ]
    (List.map (fun s -> s.Metrics.sp_name) spans);
  (* nesting: the child span lies within its parent *)
  let parent = List.nth spans 1 and child = List.nth spans 2 in
  Alcotest.(check bool) "child nested in parent" true
    (child.Metrics.sp_start >= parent.Metrics.sp_start
    && child.Metrics.sp_stop <= parent.Metrics.sp_stop);
  (* bounded: past capacity, spans drop (head retained) *)
  Metrics.record r ~trace:2 ~track:"t" ~name:"a" ~start:6.0 ~stop:7.0;
  Metrics.record r ~trace:2 ~track:"t" ~name:"b" ~start:7.0 ~stop:8.0;
  Alcotest.(check int) "capacity" 4 (Metrics.span_count r);
  Alcotest.(check int) "dropped" 1 (Metrics.dropped_spans r)

let prop_heap_min =
  QCheck.Test.make ~count:100 ~name:"heap min is list min"
    QCheck.(list_of_size Gen.(int_range 1 50) int)
    (fun xs ->
      let h = Heap.create () in
      List.iter (Heap.push h) xs;
      Heap.min h = List.fold_left min (List.hd xs) xs)

let prop_percentile_bounds =
  QCheck.Test.make ~count:100 ~name:"percentile within min/max"
    QCheck.(pair (list_of_size Gen.(int_range 1 30) (float_range 0.0 100.0)) (float_range 0.0 1.0))
    (fun (xs, p) ->
      let v = Stats.percentile p xs in
      let lo, hi = Stats.min_max xs in
      v >= lo && v <= hi)

let suite =
  [
    Alcotest.test_case "vec growth" `Quick test_vec_growth;
    Alcotest.test_case "vec bounds" `Quick test_vec_bounds;
    Alcotest.test_case "int vec" `Quick test_int_vec;
    Alcotest.test_case "heap sorts" `Quick test_heap_sorts;
    Alcotest.test_case "heap empty" `Quick test_heap_empty;
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
    Alcotest.test_case "prng shuffle" `Quick test_prng_shuffle_permutes;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "hist basics" `Quick test_hist_basics;
    Alcotest.test_case "hist under/overflow" `Quick test_hist_under_overflow;
    Alcotest.test_case "hist merge" `Quick test_hist_merge;
    Alcotest.test_case "metrics registry" `Quick test_metrics_registry;
    Alcotest.test_case "metrics concurrent domains" `Quick
      test_metrics_concurrent_domains;
    Alcotest.test_case "span recorder" `Quick test_span_recorder;
    QCheck_alcotest.to_alcotest prop_heap_min;
    QCheck_alcotest.to_alcotest prop_percentile_bounds;
    QCheck_alcotest.to_alcotest prop_percentile_hist_close;
  ]

let () = Alcotest.run "phloem_util" [ ("util", suite) ]
