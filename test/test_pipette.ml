(* Tests for the Pipette timing model: caches, branch predictor, engine
   behaviour on hand-built traces, and end-to-end sanity (decoupling an
   irregular loop must actually pay off in cycles). *)

open Phloem_ir
open Builder
open Pipette

let vint_array a = Array.map (fun x -> Types.Vint x) a

(* --- cache model --- *)

let test_cache_hit_after_miss () =
  let caches = Cache.create Config.default in
  let r1 = Cache.access caches ~core:0 ~addr:0x10000 ~now:0 in
  Alcotest.(check int) "first access goes to DRAM" 4 r1.Cache.level_hit;
  let r2 = Cache.access caches ~core:0 ~addr:0x10000 ~now:200 in
  Alcotest.(check int) "second access hits L1" 1 r2.Cache.level_hit;
  Alcotest.(check int) "L1 latency" Config.default.Config.l1.Config.latency r2.Cache.latency

let test_cache_same_line () =
  let caches = Cache.create Config.default in
  ignore (Cache.access caches ~core:0 ~addr:0x20000 ~now:0);
  let r = Cache.access caches ~core:0 ~addr:0x20004 ~now:10 in
  Alcotest.(check int) "same 64B line hits L1" 1 r.Cache.level_hit

let test_cache_capacity_eviction () =
  let cfg = Config.default in
  let caches = Cache.create cfg in
  (* Touch far more lines than L1 holds, all mapping across sets; then the
     first line must have been evicted from L1 (but L2 holds it). *)
  let l1_lines = cfg.Config.l1.Config.size_kb * 1024 / cfg.Config.line_bytes in
  for i = 0 to (4 * l1_lines) - 1 do
    ignore (Cache.access caches ~core:0 ~addr:(0x100000 + (i * 64)) ~now:(i * 10))
  done;
  let r = Cache.access caches ~core:0 ~addr:0x100000 ~now:10_000_000 in
  Alcotest.(check bool) "evicted from L1" true (r.Cache.level_hit > 1)

let test_cache_private_l1 () =
  let cfg = { Config.default with Config.n_cores = 2 } in
  let caches = Cache.create cfg in
  ignore (Cache.access caches ~core:0 ~addr:0x30000 ~now:0);
  let r = Cache.access caches ~core:1 ~addr:0x30000 ~now:100 in
  Alcotest.(check int) "other core misses L1, hits shared L3" 3 r.Cache.level_hit

let test_prefetch_hides_latency () =
  let caches = Cache.create Config.default in
  Cache.prefetch caches ~core:0 ~addr:0x40000 ~now:0;
  (* Demand access long after the prefetch completes: full L1 hit. *)
  let r = Cache.access caches ~core:0 ~addr:0x40000 ~now:1000 in
  Alcotest.(check int) "prefetched line is an L1 hit" 1 r.Cache.level_hit;
  Alcotest.(check int) "L1 latency after prefetch" 4 r.Cache.latency

let test_prefetch_partial_overlap () =
  let caches = Cache.create Config.default in
  Cache.prefetch caches ~core:0 ~addr:0x50000 ~now:0;
  (* Demand access right after: pays the residual latency, not the full miss. *)
  let r = Cache.access caches ~core:0 ~addr:0x50000 ~now:10 in
  Alcotest.(check bool) "residual latency < full DRAM latency" true
    (r.Cache.latency < Config.default.Config.dram_latency);
  Alcotest.(check bool) "residual latency > L1 hit" true (r.Cache.latency > 4)

let test_prefetch_not_counted_as_demand () =
  (* Prefetches must not move the demand hit/miss or DRAM counters. *)
  let caches = Cache.create Config.default in
  for i = 0 to 31 do
    ignore (Cache.access caches ~core:0 ~addr:(0x10000 + (i * 64)) ~now:(i * 10))
  done;
  let before = Cache.counters caches in
  for i = 0 to 63 do
    Cache.prefetch caches ~core:0 ~addr:(0x80000 + (i * 64)) ~now:(1000 + i)
  done;
  (* re-prefetch some resident lines too *)
  for i = 0 to 7 do
    Cache.prefetch caches ~core:0 ~addr:(0x80000 + (i * 64)) ~now:(30000 + i)
  done;
  let after = Cache.counters caches in
  Alcotest.(check int) "demand L1 hits unchanged" before.Cache.c_l1_hits after.Cache.c_l1_hits;
  Alcotest.(check int) "demand L1 misses unchanged" before.Cache.c_l1_misses after.Cache.c_l1_misses;
  Alcotest.(check int) "demand L2 hits unchanged" before.Cache.c_l2_hits after.Cache.c_l2_hits;
  Alcotest.(check int) "demand L2 misses unchanged" before.Cache.c_l2_misses after.Cache.c_l2_misses;
  Alcotest.(check int) "demand L3 hits unchanged" before.Cache.c_l3_hits after.Cache.c_l3_hits;
  Alcotest.(check int) "demand L3 misses unchanged" before.Cache.c_l3_misses after.Cache.c_l3_misses;
  Alcotest.(check int) "demand DRAM accesses unchanged" before.Cache.c_dram after.Cache.c_dram;
  Alcotest.(check int) "prefetches counted" 72 after.Cache.c_prefetches;
  Alcotest.(check int) "prefetch cache hits counted" 8 after.Cache.c_prefetch_hits;
  Alcotest.(check int) "prefetch DRAM fills counted" 64 after.Cache.c_prefetch_dram

let test_prefetch_equals_silent_fill () =
  (* Demand counters with prefetching must equal the same run with each
     prefetch replaced by a no-op that still fills (Cache.fill). *)
  let rng = Phloem_util.Prng.create 5 in
  let ops =
    List.init 4000 (fun i ->
        let addr = Phloem_util.Prng.int rng 4096 * 64 in
        (i land 3 = 0, addr, i * 7))
  in
  let run use_prefetch =
    let caches = Cache.create Config.default in
    List.iter
      (fun (is_pf, addr, now) ->
        if is_pf then
          if use_prefetch then Cache.prefetch caches ~core:0 ~addr ~now
          else ignore (Cache.fill caches ~core:0 ~addr ~now)
        else ignore (Cache.access caches ~core:0 ~addr ~now))
      ops;
    Cache.counters caches
  in
  let a = run true and b = run false in
  Alcotest.(check int) "L1 hits equal" b.Cache.c_l1_hits a.Cache.c_l1_hits;
  Alcotest.(check int) "L1 misses equal" b.Cache.c_l1_misses a.Cache.c_l1_misses;
  Alcotest.(check int) "L2 hits equal" b.Cache.c_l2_hits a.Cache.c_l2_hits;
  Alcotest.(check int) "L2 misses equal" b.Cache.c_l2_misses a.Cache.c_l2_misses;
  Alcotest.(check int) "L3 hits equal" b.Cache.c_l3_hits a.Cache.c_l3_hits;
  Alcotest.(check int) "L3 misses equal" b.Cache.c_l3_misses a.Cache.c_l3_misses;
  Alcotest.(check int) "DRAM accesses equal" b.Cache.c_dram a.Cache.c_dram;
  Alcotest.(check bool) "prefetch counters moved only with prefetch" true
    (a.Cache.c_prefetches > 0 && b.Cache.c_prefetches = 0)

let test_demand_during_inflight_prefetch () =
  (* A demand access while the prefetched line is still in flight pays only
     the residue, and is still accounted as a normal demand access. *)
  let caches = Cache.create Config.default in
  Cache.prefetch caches ~core:0 ~addr:0x60000 ~now:0;
  let before = Cache.counters caches in
  let r = Cache.access caches ~core:0 ~addr:0x60000 ~now:10 in
  let after = Cache.counters caches in
  Alcotest.(check int) "line is resident (L1 hit)" 1 r.Cache.level_hit;
  Alcotest.(check bool) "pays residue, not the full miss" true
    (r.Cache.latency < Config.default.Config.dram_latency
    && r.Cache.latency > Config.default.Config.l1.Config.latency);
  Alcotest.(check int) "demand access counted once in L1"
    (before.Cache.c_l1_hits + 1) after.Cache.c_l1_hits;
  Alcotest.(check int) "no extra DRAM demand access" before.Cache.c_dram after.Cache.c_dram;
  (* After the in-flight window, the same line is a plain L1 hit. *)
  let r2 = Cache.access caches ~core:0 ~addr:0x60000 ~now:10_000 in
  Alcotest.(check int) "full L1 latency once arrived"
    Config.default.Config.l1.Config.latency r2.Cache.latency

let test_dram_bandwidth_queueing () =
  let cfg = { Config.default with Config.dram_controllers = 1 } in
  let caches = Cache.create cfg in
  (* Many simultaneous misses to distinct lines: later ones queue. *)
  let lats =
    List.init 16 (fun i ->
        (Cache.access caches ~core:0 ~addr:(0x900000 + (i * 2 * 64)) ~now:0).Cache.latency)
  in
  let first = List.hd lats and last = List.nth lats 15 in
  Alcotest.(check bool) "bandwidth queueing delays later misses" true (last > first)

(* --- branch predictor --- *)

let test_predictor_learns_loop () =
  let p = Predictor.create ~entries:1024 ~history_bits:8 ~n_threads:1 in
  (* A loop branch: taken 99 times, then not taken. *)
  for _ = 1 to 99 do
    ignore (Predictor.predict_update p ~thread:0 ~pc:42 ~taken:true)
  done;
  let correct = Predictor.predict_update p ~thread:0 ~pc:42 ~taken:false in
  Alcotest.(check bool) "loop exit mispredicts" false correct;
  Alcotest.(check bool) "low overall mispredict rate" true
    (Predictor.mispredict_rate p < 0.1)

let test_predictor_random_hurts () =
  let p = Predictor.create ~entries:1024 ~history_bits:8 ~n_threads:1 in
  let rng = Phloem_util.Prng.create 7 in
  for _ = 1 to 2000 do
    ignore (Predictor.predict_update p ~thread:0 ~pc:99 ~taken:(Phloem_util.Prng.bool rng))
  done;
  Alcotest.(check bool) "random branches mispredict often" true
    (Predictor.mispredict_rate p > 0.3)

(* --- end-to-end timing sanity --- *)

let make_indirect_workload n =
  (* The paper's intro kernel: for i: if (A[i] > 0) work(B[A[i]]).
     A contains indices into a large B, alternating sign to defeat the
     branch predictor. *)
  let rng = Phloem_util.Prng.create 11 in
  let bsize = 1 lsl 16 in
  let a =
    Array.init n (fun _ ->
        let idx = Phloem_util.Prng.int rng bsize in
        if Phloem_util.Prng.bool rng then idx else -idx - 1)
  in
  let b = Array.init bsize (fun i -> i land 0xFF) in
  (a, b, bsize)

let serial_intro n =
  let a, b, bsize = make_indirect_workload n in
  let p =
    serial "intro_serial"
      ~arrays:[ int_array "A" n; int_array "B" bsize; int_array "out" 1 ]
      ~params:[ ("n", Types.Vint n) ]
      ~call_costs:[ ("work", 10) ]
      [
        "acc" <-- int 0;
        for_ "i" (int 0) (v "n")
          [
            "x" <-- load "A" (v "i");
            when_ (v "x" >! int 0)
              [ "acc" <-- (v "acc" +! call "work" [ load "B" (v "x") ]) ];
          ];
        store "out" (int 0) (v "acc");
      ]
  in
  (p, [ ("A", vint_array a); ("B", vint_array b) ])

let pipelined_intro n =
  let a, b, bsize = make_indirect_workload n in
  let p =
    pipeline "intro_pipe"
      ~arrays:[ int_array "A" n; int_array "B" bsize; int_array "out" 1 ]
      ~params:[ ("n", Types.Vint n) ]
      ~call_costs:[ ("work", 10) ]
      ~queues:[ queue 0; queue 1 ]
      ~ras:[ ra ~id:0 ~in_q:0 ~out_q:1 ~array:"B" ~mode:Types.Ra_indirect ]
      [
        stage "fetch_filter"
          [
            for_ "i" (int 0) (v "n")
              [
                "x" <-- load "A" (v "i");
                when_ (v "x" >! int 0) [ enq 0 (v "x") ];
              ];
            enq_ctrl 0 1;
          ];
        stage "work"
          ~handlers:[ handler ~queue:1 ~cv:"c" [ exit_loops 1 ] ]
          [
            "acc" <-- int 0;
            loop_forever [ "acc" <-- (v "acc" +! call "work" [ deq 1 ]) ];
            store "out" (int 0) (v "acc");
          ];
      ]
  in
  (p, [ ("A", vint_array a); ("B", vint_array b) ])

let test_pipeline_beats_serial () =
  let n = 3000 in
  let ps, is_ = serial_intro n in
  let pp, ip = pipelined_intro n in
  let rs = Sim.run ~inputs:is_ ps in
  let rp = Sim.run ~inputs:ip pp in
  (* Same architectural result... *)
  let out r = List.assoc "out" r.Sim.sr_functional.Interp.r_arrays in
  Alcotest.(check bool) "same result" true (out rs = out rp);
  (* ...but the pipeline hides latency and mispredicts. *)
  let speedup = float_of_int (Sim.cycles rs) /. float_of_int (Sim.cycles rp) in
  if speedup <= 1.1 then
    Alcotest.failf "expected pipeline speedup > 1.1, got %.2f (serial %d, pipe %d)"
      speedup (Sim.cycles rs) (Sim.cycles rp)

let test_serial_cycles_scale_linearly () =
  let run n =
    let p, inputs = serial_intro n in
    Sim.cycles (Sim.run ~inputs p)
  in
  let c1 = run 500 and c2 = run 1000 in
  let ratio = float_of_int c2 /. float_of_int c1 in
  Alcotest.(check bool)
    (Printf.sprintf "roughly linear scaling (ratio %.2f)" ratio)
    true
    (ratio > 1.4 && ratio < 2.8)

let test_queue_capacity_backpressure () =
  (* A slow consumer must throttle a fast producer via queue capacity. *)
  let mk cap =
    pipeline "bp"
      ~params:[ ("n", Types.Vint 500) ]
      ~queues:[ queue ~capacity:cap 0 ]
      ~call_costs:[ ("slow", 40) ]
      [
        stage "prod" [ for_ "i" (int 0) (v "n") [ enq 0 (v "i") ] ];
        stage "cons"
          [ for_ "i" (int 0) (v "n") [ "x" <-- call "slow" [ deq 0 ] ] ];
      ]
  in
  let r = Sim.run (mk 24) in
  (* The producer spends most cycles queue-stalled. *)
  let t = r.Sim.sr_timing in
  Alcotest.(check bool) "queue stall cycles dominate producer" true
    (t.Engine.queue_cycles > t.Engine.cycles / 4)

let test_breakdown_sums_to_thread_cycles () =
  let p, inputs = pipelined_intro 500 in
  let r = Sim.run ~inputs p in
  let t = r.Sim.sr_timing in
  let total =
    t.Engine.issue_cycles + t.Engine.backend_cycles + t.Engine.queue_cycles
    + t.Engine.other_cycles
  in
  (* Each live thread is classified exactly once per cycle, so the sum is
     bounded by threads x cycles. *)
  Alcotest.(check bool) "breakdown bounded" true
    (total <= t.Engine.n_threads * t.Engine.cycles);
  Alcotest.(check bool) "breakdown non-trivial" true (total > t.Engine.cycles / 2)

let test_smt_helps_independent_threads () =
  (* Two independent compute loops on one core finish in less than 2x the
     time of one, thanks to SMT sharing of issue slots. *)
  let one =
    pipeline "one"
      ~params:[ ("n", Types.Vint 2000) ]
      ~call_costs:[ ("f", 4) ]
      [ stage "a" [ for_ "i" (int 0) (v "n") [ "x" <-- call "f" [ v "i" ] ] ] ]
  in
  let two =
    pipeline "two"
      ~params:[ ("n", Types.Vint 2000) ]
      ~call_costs:[ ("f", 4) ]
      [
        stage "a" [ for_ "i" (int 0) (v "n") [ "x" <-- call "f" [ v "i" ] ] ];
        stage "b" [ for_ "i" (int 0) (v "n") [ "x" <-- call "f" [ v "i" ] ] ];
      ]
  in
  let c1 = Sim.cycles (Sim.run one) in
  let c2 = Sim.cycles (Sim.run two) in
  Alcotest.(check bool)
    (Printf.sprintf "SMT overlap (1 thread: %d, 2 threads: %d)" c1 c2)
    true
    (float_of_int c2 < 1.7 *. float_of_int c1)

let test_energy_positive_and_consistent () =
  let p, inputs = serial_intro 300 in
  let r = Sim.run ~inputs p in
  let e = r.Sim.sr_energy in
  Alcotest.(check bool) "components positive" true
    (e.Energy.e_core_dynamic > 0.0 && e.Energy.e_memory > 0.0 && e.Energy.e_static > 0.0);
  Alcotest.(check bool) "total is the sum" true
    (abs_float
       (Energy.total e
       -. (e.Energy.e_core_dynamic +. e.Energy.e_memory +. e.Energy.e_queues_ras
         +. e.Energy.e_static))
    < 1e-9)

(* qcheck: the engine terminates and cycle counts are sane for random
   producer/consumer pipelines. *)
let prop_engine_terminates =
  QCheck.Test.make ~count:30 ~name:"engine terminates; cycles >= critical path"
    QCheck.(pair (int_range 1 200) (int_range 1 23))
    (fun (n, cap) ->
      let p =
        pipeline "rand"
          ~params:[ ("n", Types.Vint n) ]
          ~queues:[ queue ~capacity:cap 0 ]
          [
            stage "prod" [ for_ "i" (int 0) (v "n") [ enq 0 (v "i" *! int 3) ] ];
            stage "cons" [ for_ "i" (int 0) (v "n") [ "x" <-- (deq 0 +! int 1) ] ];
          ]
      in
      let r = Sim.run p in
      Sim.cycles r > 0 && Sim.cycles r >= n / 6)

let suite_cache =
  [
    Alcotest.test_case "hit after miss" `Quick test_cache_hit_after_miss;
    Alcotest.test_case "same line" `Quick test_cache_same_line;
    Alcotest.test_case "capacity eviction" `Quick test_cache_capacity_eviction;
    Alcotest.test_case "private L1 per core" `Quick test_cache_private_l1;
    Alcotest.test_case "prefetch hides latency" `Quick test_prefetch_hides_latency;
    Alcotest.test_case "prefetch partial overlap" `Quick test_prefetch_partial_overlap;
    Alcotest.test_case "prefetch not counted as demand" `Quick test_prefetch_not_counted_as_demand;
    Alcotest.test_case "prefetch equals silent fill" `Quick test_prefetch_equals_silent_fill;
    Alcotest.test_case "demand during in-flight prefetch" `Quick test_demand_during_inflight_prefetch;
    Alcotest.test_case "dram bandwidth queueing" `Quick test_dram_bandwidth_queueing;
  ]

let suite_predictor =
  [
    Alcotest.test_case "learns loop branches" `Quick test_predictor_learns_loop;
    Alcotest.test_case "random branches hurt" `Quick test_predictor_random_hurts;
  ]

let suite_engine =
  [
    Alcotest.test_case "pipeline beats serial" `Quick test_pipeline_beats_serial;
    Alcotest.test_case "serial cycles scale linearly" `Quick test_serial_cycles_scale_linearly;
    Alcotest.test_case "queue capacity backpressure" `Quick test_queue_capacity_backpressure;
    Alcotest.test_case "breakdown bounded" `Quick test_breakdown_sums_to_thread_cycles;
    Alcotest.test_case "SMT helps independent threads" `Quick test_smt_helps_independent_threads;
    Alcotest.test_case "energy consistent" `Quick test_energy_positive_and_consistent;
    QCheck_alcotest.to_alcotest prop_engine_terminates;
  ]

let () =
  Alcotest.run "pipette"
    [ ("cache", suite_cache); ("predictor", suite_predictor); ("engine", suite_engine) ]
