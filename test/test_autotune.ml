(* Tests for the analysis-guided autotuner: the directed move grammar on
   synthetic bottleneck reports (one per verdict), canonical config
   digests, frontier dedup, PGO's serial fallback, and byte-identical
   outcomes across pool sizes. *)

open Phloem
module A = Pipette.Analysis
module Json = Pipette.Telemetry.Json

let mk_cut ?(prefetch = false) id =
  { Costmodel.cut_loads = [ id ]; cut_prefetch = prefetch; cut_score = 1.0 }

let space =
  {
    Autotune.sp_cut_pool = [ mk_cut 0; mk_cut 1; mk_cut 2 ];
    sp_max_queue_cap = 192;
    sp_max_replicas = 2;
    sp_max_cores = 4;
    sp_headroom_threshold = 1.05;
  }

let base_config =
  {
    Autotune.at_cuts = [ mk_cut 0 ];
    at_queue_caps = [];
    at_chain = true;
    at_replicas = 1;
    at_cores = 1;
  }

(* --- synthetic bottleneck reports ---------------------------------- *)

let mk_stage ~thread ~issue ~backend ?(backend_level = [| 0; 0; 0; 0; 0 |])
    ~qfull ~qempty () : A.stage_report =
  {
    A.st_thread = thread;
    st_name = Printf.sprintf "s%d" thread;
    st_issue = issue;
    st_backend = backend;
    st_backend_level = backend_level;
    st_queue_full = qfull;
    st_queue_empty = qempty;
    st_barrier = 0;
    st_other = 0;
    st_total = issue + backend + qfull + qempty;
    st_service = issue + backend;
  }

let mk_queue ~id ~cap ~full ~empty () : A.queue_report =
  {
    A.q_id = id;
    q_capacity = cap;
    q_full = full;
    q_empty = empty;
    q_enqs = 100;
    q_deqs = 100;
    q_producers = [ 0 ];
    q_consumers = [ 1 ];
    q_occ_hist = Array.make (cap + 1) 0;
    q_mean_occ = 0.0;
    q_frac_full = 0.0;
    q_frac_empty = 0.0;
  }

let mk_report ~cycles ~stages ~queues ~bottleneck ~critical ~headroom :
    A.report =
  {
    A.r_cycles = cycles;
    r_stages = stages;
    r_queues = queues;
    r_bottleneck = bottleneck;
    r_critical_queue = critical;
    r_headroom = headroom;
    r_diagnosis = [];
  }

let move_strings ms =
  List.map (fun (m, _) -> Autotune.move_to_string m) ms

let check_moves name expected ms =
  Alcotest.(check (list string)) name expected (move_strings ms)

(* Producers blocked on a full q3: deepen it, replicate past it, add the
   unused cuts, toggle chaining — in that order. *)
let test_moves_backpressure () =
  let r =
    mk_report ~cycles:1000
      ~stages:
        [|
          mk_stage ~thread:0 ~issue:200 ~backend:100 ~qfull:400 ~qempty:0 ();
          mk_stage ~thread:1 ~issue:600 ~backend:100 ~qfull:0 ~qempty:0 ();
        |]
      ~queues:[| mk_queue ~id:3 ~cap:24 ~full:400 ~empty:0 () |]
      ~bottleneck:(Some 1) ~critical:(Some 3) ~headroom:2.0
  in
  Alcotest.(check string)
    "classified as backpressure" "queue-bound(q3, backpressure)"
    (A.verdict_to_string (A.classify r));
  check_moves "backpressure moves"
    [ "deepen(q3->48)"; "replicate(2)"; "add-cut(1)"; "add-cut(2)"; "toggle-chain" ]
    (Autotune.moves space base_config r)

(* Consumers starved on an empty queue: drop the used cut, add the unused
   ones, double the cores, toggle chaining. *)
let test_moves_starvation () =
  let r =
    mk_report ~cycles:1000
      ~stages:
        [|
          mk_stage ~thread:0 ~issue:700 ~backend:100 ~qfull:0 ~qempty:0 ();
          mk_stage ~thread:1 ~issue:200 ~backend:50 ~qfull:0 ~qempty:500 ();
        |]
      ~queues:[| mk_queue ~id:1 ~cap:24 ~full:0 ~empty:500 () |]
      ~bottleneck:(Some 0) ~critical:(Some 1) ~headroom:3.0
  in
  Alcotest.(check string)
    "classified as starvation" "queue-bound(q1, starvation)"
    (A.verdict_to_string (A.classify r));
  check_moves "starvation moves"
    [ "drop-cut(0)"; "add-cut(1)"; "add-cut(2)"; "cores(2)"; "toggle-chain" ]
    (Autotune.moves space base_config r)

(* DRAM-bound bottleneck stage with chaining off: chain first, then more
   cuts, replication, cores. *)
let test_moves_backend_bound () =
  let r =
    mk_report ~cycles:1000
      ~stages:
        [|
          mk_stage ~thread:0 ~issue:300 ~backend:100 ~qfull:10 ~qempty:0 ();
          mk_stage ~thread:1 ~issue:200 ~backend:700
            ~backend_level:[| 0; 50; 50; 100; 500 |] ~qfull:0 ~qempty:10 ();
        |]
      ~queues:[| mk_queue ~id:0 ~cap:24 ~full:10 ~empty:10 () |]
      ~bottleneck:(Some 1) ~critical:(Some 0) ~headroom:2.2
  in
  Alcotest.(check string)
    "classified as DRAM-bound" "backend-bound(stage 1, DRAM)"
    (A.verdict_to_string (A.classify r));
  check_moves "backend-bound moves"
    [ "toggle-chain"; "add-cut(1)"; "add-cut(2)"; "replicate(2)"; "cores(2)" ]
    (Autotune.moves space { base_config with Autotune.at_chain = false } r)

(* Headroom below the threshold: Balanced, no moves, search stops here. *)
let test_moves_balanced () =
  let r =
    mk_report ~cycles:1000
      ~stages:
        [|
          mk_stage ~thread:0 ~issue:480 ~backend:20 ~qfull:0 ~qempty:0 ();
          mk_stage ~thread:1 ~issue:470 ~backend:20 ~qfull:0 ~qempty:0 ();
        |]
      ~queues:[| mk_queue ~id:0 ~cap:24 ~full:0 ~empty:0 () |]
      ~bottleneck:(Some 0) ~critical:(Some 0) ~headroom:1.01
  in
  Alcotest.(check string) "classified as balanced" "balanced"
    (A.verdict_to_string (A.classify r));
  check_moves "no moves when balanced" [] (Autotune.moves space base_config r)

(* Knob clamps: a queue already at the cap cannot deepen further; cores
   and replicas saturate at the space bounds. *)
let test_moves_clamped () =
  let r =
    mk_report ~cycles:1000
      ~stages:
        [|
          mk_stage ~thread:0 ~issue:200 ~backend:100 ~qfull:400 ~qempty:0 ();
          mk_stage ~thread:1 ~issue:600 ~backend:100 ~qfull:0 ~qempty:0 ();
        |]
      ~queues:[| mk_queue ~id:3 ~cap:192 ~full:400 ~empty:0 () |]
      ~bottleneck:(Some 1) ~critical:(Some 3) ~headroom:2.0
  in
  let c =
    {
      base_config with
      Autotune.at_cuts = [ mk_cut 0; mk_cut 1; mk_cut 2 ];
      at_replicas = 2;
      at_cores = 4;
    }
  in
  (* queue at max cap, replicas at max, every cut used: only the chain
     toggle is left *)
  check_moves "everything clamped" [ "toggle-chain" ] (Autotune.moves space c r)

(* --- digests -------------------------------------------------------- *)

let test_config_digest () =
  let d = Autotune.config_digest in
  let c1 = { base_config with Autotune.at_queue_caps = [ (0, 48); (2, 96) ] } in
  let c2 = { base_config with Autotune.at_queue_caps = [ (2, 96); (0, 48) ] } in
  Alcotest.(check string) "cap order is canonicalized" (d c1) (d c2);
  Alcotest.(check bool) "different caps, different digest" true
    (d c1 <> d base_config);
  Alcotest.(check bool) "chain flag is part of the key" true
    (d base_config <> d { base_config with Autotune.at_chain = false });
  (* the cut score is a ranking artifact, not identity *)
  let scored =
    { base_config with Autotune.at_cuts = [ { (mk_cut 0) with Costmodel.cut_score = 9.9 } ] }
  in
  Alcotest.(check string) "cut score does not affect the digest" (d base_config)
    (d scored)

let test_cut_set_key () =
  let a = [ mk_cut 0; mk_cut 3 ] and b = [ mk_cut 3; mk_cut 0 ] in
  Alcotest.(check string) "order-insensitive" (Search.cut_set_key a)
    (Search.cut_set_key b);
  Alcotest.(check bool) "different sets differ" true
    (Search.cut_set_key a <> Search.cut_set_key [ mk_cut 0 ])

(* --- PGO serial fallback ------------------------------------------- *)

(* A kernel with no loads has no decoupling candidates: pgo must degrade
   to the serial recipe instead of raising. *)
let test_pgo_serial_fallback () =
  let open Phloem_ir.Builder in
  let tiny =
    pipeline "tiny"
      ~params:[ ("n", Phloem_ir.Types.Vint 50) ]
      [
        stage "s"
          [
            "acc" <-- int 0;
            for_ "i" (int 0) (v "n") [ "acc" <-- (v "acc" +! v "i") ];
          ];
      ]
  in
  let outcome = Search.pgo ~check_arrays:[] ~training:[ (tiny, []) ] () in
  Alcotest.(check int) "empty recipe" 0 (List.length outcome.Search.best);
  Alcotest.(check int) "no candidates" 0 (List.length outcome.Search.all);
  Alcotest.(check int) "serial baseline still measured" 1
    (List.length outcome.Search.serial_cycles);
  (* and the harness maps the empty recipe back to the serial pipeline *)
  Alcotest.(check bool) "empty training still raises" true
    (match Search.pgo ~check_arrays:[] ~training:[] () with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- end-to-end tune on BFS ---------------------------------------- *)

let bfs_training () =
  let g = Phloem_graph.Gen.grid ~width:10 ~height:8 ~seed:5 in
  Phloem_workloads.Bfs.serial g ~root:0

let tune ~jobs =
  let serial, inputs = bfs_training () in
  Phloem_util.Pool.with_pool ~jobs (fun pool ->
      Autotune.tune ~beam:2 ~budget:16 ~pool ~check_arrays:[ "dist" ]
        ~training:[ (serial, inputs) ] ())

let test_tune_bfs () =
  let o = tune ~jobs:1 in
  Alcotest.(check bool) "budget respected" true
    (o.Autotune.o_simulated <= 16);
  Alcotest.(check bool) "searched a strict subset of the space" true
    (float_of_int o.Autotune.o_simulated < o.Autotune.o_exhaustive);
  Alcotest.(check bool) "found a speedup" true (o.Autotune.o_best_gmean > 1.0);
  (* seeding with every PGO cut set means the tuner can never lose to
     cut-set-only PGO *)
  (match o.Autotune.o_cut_only with
  | Some (_, _, pgo_gmean) ->
    Alcotest.(check bool) "tuned >= PGO cut-only best" true
      (o.Autotune.o_best_gmean >= pgo_gmean)
  | None -> Alcotest.fail "no cut-only candidate survived");
  (* the frontier dedups by digest: no configuration simulated twice *)
  let digests = List.map (fun a -> a.Autotune.t_digest) o.Autotune.o_trace in
  Alcotest.(check int) "trace digests are unique"
    (List.length digests)
    (List.length (List.sort_uniq compare digests))

(* A metrics registry passed to [tune] observes the search without
   affecting it: the progress counters must agree exactly with the
   outcome's own accounting, and every eval lands in the latency
   histogram. *)
let test_tune_metrics_progress () =
  let module M = Phloem_util.Metrics in
  let metrics = M.create () in
  let serial, inputs = bfs_training () in
  let o =
    Autotune.tune ~beam:2 ~budget:16 ~metrics ~check_arrays:[ "dist" ]
      ~training:[ (serial, inputs) ] ()
  in
  let snap = M.snapshot metrics in
  let counter k =
    match List.assoc_opt k snap.M.sn_counters with Some v -> v | None -> 0
  in
  Alcotest.(check int) "evals counted" o.Autotune.o_simulated
    (counter "autotune_evals");
  Alcotest.(check int) "waves counted" o.Autotune.o_waves
    (counter "autotune_waves");
  Alcotest.(check int) "rejections counted" o.Autotune.o_rejected
    (counter "autotune_rejected");
  Alcotest.(check int) "dedups counted" o.Autotune.o_deduped
    (counter "autotune_deduped");
  (match List.assoc_opt "autotune_eval_s" snap.M.sn_hists with
  | Some h ->
    Alcotest.(check int) "one latency sample per eval" o.Autotune.o_simulated
      (Phloem_util.Stats.hist_count h)
  | None -> Alcotest.fail "eval latency histogram missing");
  match List.assoc_opt "autotune_best_gmean" snap.M.sn_gauges with
  | Some g ->
    Alcotest.(check (float 1e-9)) "best gmean gauge" o.Autotune.o_best_gmean g
  | None -> Alcotest.fail "best-gmean gauge missing"

let test_tune_deterministic_across_jobs () =
  let o1 = tune ~jobs:1 and o2 = tune ~jobs:2 in
  Alcotest.(check string) "byte-identical outcome JSON across pool sizes"
    (Json.to_string (Autotune.json_of_outcome o1))
    (Json.to_string (Autotune.json_of_outcome o2))

let suite =
  [
    Alcotest.test_case "moves: backpressure" `Quick test_moves_backpressure;
    Alcotest.test_case "moves: starvation" `Quick test_moves_starvation;
    Alcotest.test_case "moves: backend-bound" `Quick test_moves_backend_bound;
    Alcotest.test_case "moves: balanced" `Quick test_moves_balanced;
    Alcotest.test_case "moves: clamped" `Quick test_moves_clamped;
    Alcotest.test_case "config digest" `Quick test_config_digest;
    Alcotest.test_case "cut-set key" `Quick test_cut_set_key;
    Alcotest.test_case "pgo serial fallback" `Quick test_pgo_serial_fallback;
    Alcotest.test_case "tune bfs" `Quick test_tune_bfs;
    Alcotest.test_case "tune metrics progress" `Quick
      test_tune_metrics_progress;
    Alcotest.test_case "tune deterministic across jobs" `Quick
      test_tune_deterministic_across_jobs;
  ]

let () = Alcotest.run "autotune" [ ("autotune", suite) ]
