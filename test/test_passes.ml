(* Pass-manager tests: per-pass verification over every workload, the
   manager's report, IR snapshot dumping, the pass registry, and the
   structured diagnostics sink. *)

open Phloem_ir.Types
module Log = Phloem_util.Log

let verify_options =
  { Phloem.Pass.default_options with verify_each = true; keep_snapshots = true }

(* Every workload must compile with per-pass verification on: each
   intermediate pipeline passes Phloem_ir.Validate and the pass invariants. *)
let workload_serials () =
  let g = Phloem_graph.Gen.grid ~width:14 ~height:10 ~seed:3 in
  let a = Phloem_sparse.Gen.random ~rows:24 ~cols:24 ~nnz_per_row:3 ~seed:41 in
  let bt = Phloem_sparse.Gen.random ~rows:24 ~cols:24 ~nnz_per_row:3 ~seed:42 in
  let m = Phloem_sparse.Gen.banded ~n:30 ~bandwidth:6 ~nnz_per_row:4 ~seed:43 in
  let open Phloem_workloads in
  [
    ("bfs", fst (Bfs.bind g).Workload.b_serial);
    ("cc", fst (Cc.bind g).Workload.b_serial);
    ("prd", fst (Prd.bind g).Workload.b_serial);
    ("radii", fst (Radii.bind g).Workload.b_serial);
    ("spmm", fst (Spmm.bind a bt).Workload.b_serial);
    ("taco-spmv", fst (Taco_kernels.bind Taco_kernels.Spmv m).Workload.b_serial);
    ("taco-residual", fst (Taco_kernels.bind Taco_kernels.Residual m).Workload.b_serial);
    ("taco-mtmul", fst (Taco_kernels.bind Taco_kernels.Mtmul m).Workload.b_serial);
    ("taco-sddmm", fst (Taco_kernels.bind Taco_kernels.Sddmm m).Workload.b_serial);
  ]

let test_workloads_verify_each () =
  let compiled = ref 0 in
  List.iter
    (fun (name, serial) ->
      match
        Phloem.Compile.static_flow_report ~options:verify_options ~stages:4 serial
      with
      | p, report ->
        incr compiled;
        Alcotest.(check bool)
          (name ^ " produces a multi-op pipeline")
          true
          (Phloem.Pass.count_ops p > 0);
        Alcotest.(check bool)
          (name ^ " report covers every pass")
          true
          (List.length report.Phloem.Pass.rep_passes >= 3);
        List.iter
          (fun pr ->
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s wall time sane" name pr.Phloem.Pass.pr_name)
              true
              (pr.Phloem.Pass.pr_wall_s >= 0.0 && pr.Phloem.Pass.pr_wall_s < 60.0);
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s op counts positive" name pr.Phloem.Pass.pr_name)
              true
              (pr.Phloem.Pass.pr_ops_before > 0 && pr.Phloem.Pass.pr_ops_after > 0);
            match pr.Phloem.Pass.pr_snapshot with
            | Some s ->
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s snapshot nonempty" name pr.Phloem.Pass.pr_name)
                true
                (String.length s > 0)
            | None ->
              Alcotest.failf "%s/%s: keep_snapshots set but no snapshot" name
                pr.Phloem.Pass.pr_name)
          report.Phloem.Pass.rep_passes
      | exception Phloem.Compile.Unsupported _ ->
        (* no legal decoupling for this kernel/input shape: acceptable, but
           it must be a clean reject, never a Verify_failed *)
        ()
      | exception Phloem.Pass.Verify_failed (pass, msg) ->
        Alcotest.failf "%s: pass %s produced invalid IR: %s" name pass msg)
    (workload_serials ());
  Alcotest.(check bool) "most workloads decouple" true (!compiled >= 6)

(* A deliberately broken pass (enqueue to an undeclared queue) must be caught
   by verify_each immediately after the offending pass, naming it. *)
let broken_pass : Phloem.Pass.pass =
  (module struct
    let name = "inject-bad-enq"
    let describe = "test-only: enqueue to an undeclared queue"

    let run (_ : Phloem.Pass.ctx) p =
      match p.p_stages with
      | st :: rest ->
        { p with p_stages = { st with s_body = Enq (999, Const (Vint 0)) :: st.s_body } :: rest }
      | [] -> p

    let invariants = []
  end)

let bfs_serial () =
  let g = Phloem_graph.Gen.grid ~width:14 ~height:10 ~seed:3 in
  fst (Phloem_workloads.Bfs.bind g).Phloem_workloads.Workload.b_serial

let test_broken_pass_caught () =
  let serial = bfs_serial () in
  let cuts =
    match Phloem.Compile.candidates serial with
    | c :: _ -> [ c ]
    | [] -> Alcotest.fail "BFS has no cut candidates"
  in
  let manager =
    Phloem.Pass.Manager.create
      ~options:{ Phloem.Pass.default_options with verify_each = true }
      [ Phloem.Passes.decouple; broken_pass; Phloem.Passes.cleanup ]
  in
  match
    Phloem.Pass.Manager.run manager
      { Phloem.Pass.flags = Phloem.Pass.all_passes; cuts }
      serial
  with
  | _ -> Alcotest.fail "broken pass not caught"
  | exception Phloem.Pass.Verify_failed (pass, _) ->
    Alcotest.(check string) "caught right after the broken pass" "inject-bad-enq" pass

(* Without verify_each the same broken pipeline must sail through the manager
   (validation only happens where a pass requests it). *)
let test_broken_pass_unchecked () =
  let serial = bfs_serial () in
  let cuts =
    match Phloem.Compile.candidates serial with c :: _ -> [ c ] | [] -> []
  in
  let manager =
    Phloem.Pass.Manager.create [ Phloem.Passes.decouple; broken_pass ]
  in
  let p, report =
    Phloem.Pass.Manager.run manager
      { Phloem.Pass.flags = Phloem.Pass.all_passes; cuts }
      serial
  in
  Alcotest.(check int) "both passes ran" 2 (List.length report.Phloem.Pass.rep_passes);
  Alcotest.(check bool) "pipeline still has stages" true (p.p_stages <> [])

let test_dump_ir () =
  let serial = bfs_serial () in
  let dir = Filename.temp_dir "phloem-ir-test" "" in
  let options = { Phloem.Pass.default_options with dump_ir = Some dir } in
  let _, report = Phloem.Compile.static_flow_report ~options ~stages:4 serial in
  let files = Array.to_list (Sys.readdir dir) in
  Alcotest.(check bool) "input snapshot written" true (List.mem "00-input.ir" files);
  Alcotest.(check int) "one snapshot per pass plus input"
    (1 + List.length report.Phloem.Pass.rep_passes)
    (List.length files);
  List.iteri
    (fun i pr ->
      let f = Printf.sprintf "%02d-%s.ir" (i + 1) pr.Phloem.Pass.pr_name in
      Alcotest.(check bool) (f ^ " written") true (List.mem f files))
    report.Phloem.Pass.rep_passes;
  List.iter (fun f -> Sys.remove (Filename.concat dir f)) files;
  Sys.rmdir dir

let test_registry () =
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (name ^ " registered")
        true
        (Phloem.Pass.find name <> None))
    [ "decouple"; "scan-chain"; "cleanup"; "check-deadlock"; "check-limits"; "validate" ];
  Alcotest.(check bool) "unknown pass absent" true (Phloem.Pass.find "nonesuch" = None);
  let std = List.map Phloem.Pass.name_of (Phloem.Passes.standard ~flags:Phloem.Pass.all_passes) in
  Alcotest.(check (list string)) "standard order (all gates)"
    [ "decouple"; "scan-chain"; "cleanup"; "check-deadlock"; "check-limits"; "validate" ]
    std;
  let min = List.map Phloem.Pass.name_of (Phloem.Passes.standard ~flags:Phloem.Pass.queues_only) in
  Alcotest.(check (list string)) "standard order (queues only)"
    [ "decouple"; "cleanup"; "check-deadlock"; "check-limits"; "validate" ]
    min

let test_report_to_string () =
  let serial = bfs_serial () in
  let _, report = Phloem.Compile.static_flow_report ~stages:4 serial in
  let s = Phloem.Pass.report_to_string report in
  List.iter
    (fun pr ->
      let re = Str.regexp_string pr.Phloem.Pass.pr_name in
      Alcotest.(check bool)
        (pr.Phloem.Pass.pr_name ^ " appears in rendering")
        true
        (try
           ignore (Str.search_forward re s 0);
           true
         with Not_found -> false))
    report.Phloem.Pass.rep_passes

(* --- structured diagnostics --- *)

let test_log_levels () =
  let _, records =
    Log.with_capture ~level:Log.Info (fun () ->
        Log.debug ~component:"t" "dropped %d" 1;
        Log.info ~component:"t" "kept %d" 2;
        Log.warn ~component:"t" "kept %d" 3;
        Log.error ~component:"t" "kept %d" 4)
  in
  Alcotest.(check int) "debug filtered below Info" 3 (List.length records);
  Alcotest.(check (list string)) "messages in order"
    [ "kept 2"; "kept 3"; "kept 4" ]
    (List.map (fun r -> r.Log.r_message) records);
  Alcotest.(check bool) "components recorded" true
    (List.for_all (fun r -> r.Log.r_component = "t") records)

let test_log_capture_restores () =
  let before_level = Log.level () in
  let (), inner = Log.with_capture (fun () -> Log.debug "inner %s" "x") in
  Alcotest.(check int) "captured at Debug" 1 (List.length inner);
  Alcotest.(check bool) "level restored" true (Log.level () = before_level);
  (* after capture, the default sink is back: nothing is appended to the
     captured list anymore *)
  Log.set_level Log.Error;
  Log.warn "not captured";
  Log.set_level before_level;
  Alcotest.(check int) "sink restored" 1 (List.length inner)

let test_manager_logs_debug () =
  let serial = bfs_serial () in
  let _, records =
    Log.with_capture ~level:Log.Debug (fun () ->
        ignore (Phloem.Compile.static_flow ~stages:4 serial))
  in
  Alcotest.(check bool) "pass component logged" true
    (List.exists (fun r -> r.Log.r_component = "pass") records)

let suite =
  [
    Alcotest.test_case "workloads compile under verify-each" `Quick
      test_workloads_verify_each;
    Alcotest.test_case "broken pass caught between stages" `Quick
      test_broken_pass_caught;
    Alcotest.test_case "broken pass ignored without verify-each" `Quick
      test_broken_pass_unchecked;
    Alcotest.test_case "dump-ir writes numbered snapshots" `Quick test_dump_ir;
    Alcotest.test_case "pass registry" `Quick test_registry;
    Alcotest.test_case "report rendering" `Quick test_report_to_string;
    Alcotest.test_case "log level filtering" `Quick test_log_levels;
    Alcotest.test_case "log capture restores state" `Quick test_log_capture_restores;
    Alcotest.test_case "manager emits debug diagnostics" `Quick test_manager_logs_debug;
  ]

let () = Alcotest.run "passes" [ ("passes", suite) ]
