(* Functional interpreter for pipeline IR.

   Stages run as coroutines of a Kahn process network: a stage executes until
   it blocks on an empty queue (or a barrier), and a deterministic round-robin
   scheduler interleaves them. Queues are unbounded here — capacities only
   matter to the timing model. Reference accelerators run as daemon fibers.

   Besides computing the architectural result, execution emits a per-thread
   micro-op trace annotated with intra-thread data dependencies and queue
   sequence numbers (see Trace); the Pipette timing engine replays these. *)

open Types

exception Runtime_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

(* Unwinds [n] loop levels; used by break and control-value handlers. *)
exception Brk of int

(* --- runtime structures --- *)

type array_store = {
  st_decl : array_decl;
  st_data : value array;
  st_base : int; (* byte address of element 0 *)
}

type rt_queue = {
  rq_id : queue_id;
  rq_buf : value Queue.t;
  mutable rq_enq_count : int;
  mutable rq_deq_count : int;
}

type wait_reason =
  | Wait_queue of queue_id
  | Wait_barrier of int

type _ Effect.t += Wait : wait_reason -> unit Effect.t

type binding = { mutable b_value : value; mutable b_token : int }

type stage_ctx = {
  cx_thread : int;
  cx_trace : Trace.thread_trace;
  cx_env : (string, binding) Hashtbl.t;
  cx_handlers : (queue_id, handler) Hashtbl.t;
  (* Token of the most recent store to each array from this thread, used to
     order same-thread memory operations in the timing model. *)
  cx_last_store : (array_id, int) Hashtbl.t;
  cx_barrier_occ : (int, int) Hashtbl.t;
}

type state = {
  arrays : (array_id, array_store) Hashtbl.t;
  queues : rt_queue array;
  call_costs : (string, int) Hashtbl.t;
  trace : Trace.t;
}

(* --- results --- *)

exception Budget_exceeded

(* Guard against non-terminating or pathologically slow candidate
   pipelines during profile-guided search. The budget state is
   domain-local: concurrent [run]s under the parallel harness
   (Phloem_util.Pool) each count and enforce their own budget instead of
   racing on one shared counter. *)
type budget = { mutable bg_ops : int; mutable bg_limit : int }

let budget_key : budget Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { bg_ops = 0; bg_limit = 60_000_000 })

let max_ops () = (Domain.DLS.get budget_key).bg_limit
let set_max_ops n = (Domain.DLS.get budget_key).bg_limit <- n

let with_max_ops n f =
  let b = Domain.DLS.get budget_key in
  let saved = b.bg_limit in
  b.bg_limit <- n;
  Fun.protect ~finally:(fun () -> b.bg_limit <- saved) f

type result = {
  r_arrays : (array_id * value array) list;
  r_trace : Trace.t;
  r_instrs : int;
  r_queue_traffic : int array; (* total values enqueued per queue *)
}

(* --- layout --- *)

let heap_base = 0x100000
let align64 n = (n + 63) land lnot 63

let layout_arrays decls contents =
  let tbl = Hashtbl.create 16 in
  let next = ref heap_base in
  List.iter
    (fun d ->
      let data =
        match List.assoc_opt d.a_name contents with
        | Some init ->
          if Array.length init <> d.a_len then
            error "array %s: declared length %d but %d values supplied" d.a_name
              d.a_len (Array.length init);
          Array.copy init
        | None ->
          Array.make d.a_len (match d.a_ty with Ety_int -> Vint 0 | Ety_float -> Vfloat 0.0)
      in
      let base = !next in
      next := align64 (base + (d.a_len * elem_size d.a_ty));
      Hashtbl.replace tbl d.a_name { st_decl = d; st_data = data; st_base = base })
    decls;
  tbl

(* --- value operations --- *)

let as_int = function
  | Vint i -> i
  | Vfloat f -> error "expected int, got float %g" f
  | Vctrl c -> error "expected int, got control value %d" c

let as_bool v = as_int v <> 0

let int_of_bool b = Vint (if b then 1 else 0)

let eval_binop op a b =
  match (op, a, b) with
  | Add, Vint x, Vint y -> Vint (x + y)
  | Sub, Vint x, Vint y -> Vint (x - y)
  | Mul, Vint x, Vint y -> Vint (x * y)
  | Div, Vint x, Vint y -> if y = 0 then error "division by zero" else Vint (x / y)
  | Mod, Vint x, Vint y -> if y = 0 then error "mod by zero" else Vint (x mod y)
  | Add, Vfloat x, Vfloat y -> Vfloat (x +. y)
  | Sub, Vfloat x, Vfloat y -> Vfloat (x -. y)
  | Mul, Vfloat x, Vfloat y -> Vfloat (x *. y)
  | Div, Vfloat x, Vfloat y -> Vfloat (x /. y)
  | Lt, Vint x, Vint y -> int_of_bool (x < y)
  | Le, Vint x, Vint y -> int_of_bool (x <= y)
  | Gt, Vint x, Vint y -> int_of_bool (x > y)
  | Ge, Vint x, Vint y -> int_of_bool (x >= y)
  | Eq, Vint x, Vint y -> int_of_bool (x = y)
  | Ne, Vint x, Vint y -> int_of_bool (x <> y)
  | Lt, Vfloat x, Vfloat y -> int_of_bool (x < y)
  | Le, Vfloat x, Vfloat y -> int_of_bool (x <= y)
  | Gt, Vfloat x, Vfloat y -> int_of_bool (x > y)
  | Ge, Vfloat x, Vfloat y -> int_of_bool (x >= y)
  | Eq, Vfloat x, Vfloat y -> int_of_bool (x = y)
  | Ne, Vfloat x, Vfloat y -> int_of_bool (x <> y)
  | And, Vint x, Vint y -> int_of_bool (x <> 0 && y <> 0)
  | Or, Vint x, Vint y -> int_of_bool (x <> 0 || y <> 0)
  | Band, Vint x, Vint y -> Vint (x land y)
  | Bor, Vint x, Vint y -> Vint (x lor y)
  | Bxor, Vint x, Vint y -> Vint (x lxor y)
  | Shl, Vint x, Vint y -> Vint (x lsl y)
  | Shr, Vint x, Vint y -> Vint (x lsr y)
  | Min, Vint x, Vint y -> Vint (min x y)
  | Max, Vint x, Vint y -> Vint (max x y)
  | Min, Vfloat x, Vfloat y -> Vfloat (min x y)
  | Max, Vfloat x, Vfloat y -> Vfloat (max x y)
  | _, _, _ ->
    error "type error: %s applied to %s and %s" (binop_to_string op)
      (value_to_string a) (value_to_string b)

let eval_unop op a =
  match (op, a) with
  | Neg, Vint x -> Vint (-x)
  | Neg, Vfloat x -> Vfloat (-.x)
  | Not, Vint x -> int_of_bool (x = 0)
  | To_int, Vfloat x -> Vint (int_of_float x)
  | To_int, Vint x -> Vint x
  | To_float, Vint x -> Vfloat (float_of_int x)
  | To_float, Vfloat x -> Vfloat x
  | Fabs, Vfloat x -> Vfloat (abs_float x)
  | Fabs, Vint x -> Vint (abs x)
  | _, _ ->
    error "type error: %s applied to %s" (unop_to_string op) (value_to_string a)

(* --- micro-op emission helpers --- *)

let check_budget () =
  let b = Domain.DLS.get budget_key in
  b.bg_ops <- b.bg_ops + 1;
  if b.bg_ops > b.bg_limit then raise Budget_exceeded

(* These two (plus the dequeue attempt below) are the *only* budget-check
   sites; the compiled executor (Flat) shares them so both execution paths
   exhaust a budget after exactly the same number of emitted ops. *)
let push_alu tr ~dep1 ~dep2 =
  check_budget ();
  Trace.push tr ~kind:Trace.op_alu ~pa:0 ~pb:0 ~dep1 ~dep2 ~dep3:Trace.no_dep

let push_branch tr ~site ~taken ~dep =
  check_budget ();
  ignore
    (Trace.push tr ~kind:Trace.op_branch ~pa:site
       ~pb:(if taken then 1 else 0)
       ~dep1:dep ~dep2:Trace.no_dep ~dep3:Trace.no_dep)

(* --- queue runtime --- *)

let rec queue_pop st q =
  let rq = st.queues.(q) in
  if Queue.is_empty rq.rq_buf then begin
    Effect.perform (Wait (Wait_queue q));
    queue_pop st q
  end
  else begin
    let v = Queue.pop rq.rq_buf in
    let seq = rq.rq_deq_count in
    rq.rq_deq_count <- seq + 1;
    (v, seq)
  end

let queue_push st q v =
  let rq = st.queues.(q) in
  Queue.push v rq.rq_buf;
  let seq = rq.rq_enq_count in
  rq.rq_enq_count <- seq + 1;
  seq

(* --- expression evaluation --- *)

let lookup cx x =
  match Hashtbl.find_opt cx.cx_env x with
  | Some b -> b
  | None -> error "stage %d: unbound variable %s" cx.cx_thread x

let assign cx x v t =
  match Hashtbl.find_opt cx.cx_env x with
  | Some b ->
    b.b_value <- v;
    b.b_token <- t
  | None -> Hashtbl.replace cx.cx_env x { b_value = v; b_token = t }

let array_addr st arr idx =
  match Hashtbl.find_opt st.arrays arr with
  | None -> error "unknown array %s" arr
  | Some a ->
    if idx < 0 || idx >= Array.length a.st_data then
      error "array %s: index %d out of bounds [0, %d)" arr idx
        (Array.length a.st_data);
    (a, a.st_base + (idx * elem_size a.st_decl.a_ty), elem_size a.st_decl.a_ty)

let last_store_token cx arr =
  match Hashtbl.find_opt cx.cx_last_store arr with Some t -> t | None -> Trace.no_dep

(* Evaluates an expression, returning the value and the trace token of the
   op that produced it (no_dep when it came for free, e.g. a constant). *)
let rec eval st cx e : value * int =
  match e with
  | Const v -> (v, Trace.no_dep)
  | Var x ->
    let b = lookup cx x in
    (b.b_value, b.b_token)
  | Binop (op, a, b) ->
    let va, ta = eval st cx a in
    let vb, tb = eval st cx b in
    let v = eval_binop op va vb in
    (v, push_alu cx.cx_trace ~dep1:ta ~dep2:tb)
  | Unop (op, a) ->
    let va, ta = eval st cx a in
    (eval_unop op va, push_alu cx.cx_trace ~dep1:ta ~dep2:Trace.no_dep)
  | Load (arr, idx) ->
    let vi, ti = eval st cx idx in
    let a, addr, size = array_addr st arr (as_int vi) in
    let tok =
      Trace.push cx.cx_trace ~kind:Trace.op_load ~pa:addr ~pb:size ~dep1:ti
        ~dep2:(last_store_token cx arr) ~dep3:Trace.no_dep
    in
    (a.st_data.(as_int vi), tok)
  | Deq q -> deq_with_handler st cx q
  | Is_control e ->
    let v, t = eval st cx e in
    (int_of_bool (value_is_ctrl v), push_alu cx.cx_trace ~dep1:t ~dep2:Trace.no_dep)
  | Ctrl_payload e ->
    let v, t = eval st cx e in
    let payload =
      match v with Vctrl c -> Vint c | Vint _ | Vfloat _ -> error "ctrl_payload of data value"
    in
    (payload, push_alu cx.cx_trace ~dep1:t ~dep2:Trace.no_dep)
  | Call (f, args) ->
    let evaluated = List.map (eval st cx) args in
    let cost =
      match Hashtbl.find_opt st.call_costs f with
      | Some c -> c
      | None -> error "call to %s: no cost registered" f
    in
    (* An opaque call is modeled as [cost] chained ALU ops; the first
       consumes the arguments, the result carries the last op's token. *)
    let dep1, dep2 =
      match evaluated with
      | [] -> (Trace.no_dep, Trace.no_dep)
      | [ (_, t) ] -> (t, Trace.no_dep)
      | (_, t1) :: (_, t2) :: _ -> (t1, t2)
    in
    let tok = ref (push_alu cx.cx_trace ~dep1 ~dep2) in
    for _ = 2 to cost do
      tok := push_alu cx.cx_trace ~dep1:!tok ~dep2:Trace.no_dep
    done;
    (* A deterministic opaque mixing function keeps results checkable. *)
    let v =
      match evaluated with
      | [] -> Vint cost
      | (v0, _) :: _ -> (
        match v0 with
        | Vint i -> Vint ((i * 2654435761) land 0x3FFFFFFF)
        | Vfloat f -> Vfloat (f *. 1.0001)
        | Vctrl _ -> error "call %s: control value argument" f)
    in
    (v, !tok)

(* Dequeue with control-value handler support. Recording the deq op happens
   on every pop (the hardware dequeues control values too); when a handler is
   installed and a control value arrives, the handler body runs with the
   payload bound, then the dequeue is retried (fall-through) or aborted
   (Exit_loops). *)
and deq_with_handler st cx q : value * int =
  check_budget ();
  let v, seq = queue_pop st q in
  let tok =
    Trace.push cx.cx_trace ~kind:Trace.op_deq ~pa:q ~pb:seq ~dep1:Trace.no_dep
      ~dep2:Trace.no_dep ~dep3:Trace.no_dep
  in
  match (v, Hashtbl.find_opt cx.cx_handlers q) with
  | Vctrl _, Some h ->
    (* the handler sees the raw control value; Ctrl_payload extracts the id *)
    assign cx h.h_cv_var v tok;
    exec_block st cx h.h_body;
    deq_with_handler st cx q
  | _, _ -> (v, tok)

(* --- statement execution --- *)

and exec_block st cx stmts = List.iter (exec_stmt st cx) stmts

and exec_stmt st cx s =
  match s with
  | Assign (x, e) ->
    let v, t = eval st cx e in
    assign cx x v t
  | Store (arr, idx, e) ->
    let vi, ti = eval st cx idx in
    let v, tv = eval st cx e in
    let a, addr, size = array_addr st arr (as_int vi) in
    let tok =
      Trace.push cx.cx_trace ~kind:Trace.op_store ~pa:addr ~pb:size ~dep1:ti
        ~dep2:tv ~dep3:(last_store_token cx arr)
    in
    Hashtbl.replace cx.cx_last_store arr tok;
    a.st_data.(as_int vi) <- v
  | Atomic_min (arr, idx, e) ->
    let vi, ti = eval st cx idx in
    let v, tv = eval st cx e in
    let a, addr, size = array_addr st arr (as_int vi) in
    let tok =
      Trace.push cx.cx_trace ~kind:Trace.op_atomic ~pa:addr ~pb:size ~dep1:ti
        ~dep2:tv ~dep3:(last_store_token cx arr)
    in
    Hashtbl.replace cx.cx_last_store arr tok;
    let i = as_int vi in
    a.st_data.(i) <- eval_binop Min a.st_data.(i) v
  | Atomic_add (arr, idx, e) ->
    let vi, ti = eval st cx idx in
    let v, tv = eval st cx e in
    let a, addr, size = array_addr st arr (as_int vi) in
    let tok =
      Trace.push cx.cx_trace ~kind:Trace.op_atomic ~pa:addr ~pb:size ~dep1:ti
        ~dep2:tv ~dep3:(last_store_token cx arr)
    in
    Hashtbl.replace cx.cx_last_store arr tok;
    let i = as_int vi in
    a.st_data.(i) <- eval_binop Add a.st_data.(i) v
  | Prefetch (arr, idx) ->
    let vi, ti = eval st cx idx in
    let _, addr, size = array_addr st arr (as_int vi) in
    ignore
      (Trace.push cx.cx_trace ~kind:Trace.op_prefetch ~pa:addr ~pb:size ~dep1:ti
         ~dep2:Trace.no_dep ~dep3:Trace.no_dep)
  | Enq (q, e) ->
    let v, tv = eval st cx e in
    let seq = queue_push st q v in
    ignore
      (Trace.push cx.cx_trace ~kind:Trace.op_enq ~pa:q ~pb:seq ~dep1:tv
         ~dep2:Trace.no_dep ~dep3:Trace.no_dep)
  | Enq_ctrl (q, cv) ->
    let seq = queue_push st q (Vctrl cv) in
    ignore
      (Trace.push cx.cx_trace ~kind:Trace.op_enq ~pa:q ~pb:seq ~dep1:Trace.no_dep
         ~dep2:Trace.no_dep ~dep3:Trace.no_dep)
  | Enq_indexed (qs, sel, e) ->
    let vs, ts = eval st cx sel in
    let v, tv = eval st cx e in
    let i = as_int vs in
    if i < 0 || i >= Array.length qs then
      error "enq_indexed: replica selector %d out of range [0, %d)" i
        (Array.length qs);
    let seq = queue_push st qs.(i) v in
    ignore
      (Trace.push cx.cx_trace ~kind:Trace.op_enq ~pa:qs.(i) ~pb:seq ~dep1:tv
         ~dep2:ts ~dep3:Trace.no_dep)
  | If (site, c, tb, fb) ->
    let v, t = eval st cx c in
    let taken = as_bool v in
    push_branch cx.cx_trace ~site ~taken ~dep:t;
    exec_block st cx (if taken then tb else fb)
  | While (site, c, body) -> (
    let rec loop () =
      let v, t = eval st cx c in
      let taken = as_bool v in
      push_branch cx.cx_trace ~site ~taken ~dep:t;
      if taken then begin
        exec_block st cx body;
        loop ()
      end
    in
    try loop () with
    | Brk 1 -> ()
    | Brk n -> raise (Brk (n - 1)))
  | For (site, v, lo, hi, body) -> (
    let vlo, tlo = eval st cx lo in
    let vhi, thi = eval st cx hi in
    assign cx v vlo tlo;
    let rec loop () =
      let b = lookup cx v in
      let cond = as_int b.b_value < as_int vhi in
      let tcmp = push_alu cx.cx_trace ~dep1:b.b_token ~dep2:thi in
      push_branch cx.cx_trace ~site ~taken:cond ~dep:tcmp;
      if cond then begin
        exec_block st cx body;
        let b = lookup cx v in
        let t' = push_alu cx.cx_trace ~dep1:b.b_token ~dep2:Trace.no_dep in
        assign cx v (eval_binop Add b.b_value (Vint 1)) t';
        loop ()
      end
    in
    try loop () with
    | Brk 1 -> ()
    | Brk n -> raise (Brk (n - 1)))
  | Break -> raise (Brk 1)
  | Exit_loops n -> if n > 0 then raise (Brk n)
  | Barrier id ->
    let occ =
      match Hashtbl.find_opt cx.cx_barrier_occ id with Some n -> n | None -> 0
    in
    Hashtbl.replace cx.cx_barrier_occ id (occ + 1);
    ignore
      (Trace.push cx.cx_trace ~kind:Trace.op_barrier ~pa:id ~pb:occ
         ~dep1:Trace.no_dep ~dep2:Trace.no_dep ~dep3:Trace.no_dep);
    Effect.perform (Wait (Wait_barrier id))
  | Seq_marker _ -> ()

(* --- reference accelerator fibers --- *)

exception Stop_ra

let run_ra st (ra : ra_config) (rt : Trace.ra_trace) =
  let arr =
    match Hashtbl.find_opt st.arrays ra.ra_array with
    | Some a -> a
    | None -> error "RA %d: unknown array %s" ra.ra_id ra.ra_array
  in
  let esize = elem_size arr.st_decl.a_ty in
  let fetch idx in_seq =
    if idx < 0 || idx >= Array.length arr.st_data then
      error "RA %d on %s: index %d out of bounds" ra.ra_id ra.ra_array idx;
    let out_seq = queue_push st ra.ra_out arr.st_data.(idx) in
    Trace.ra_push rt ~in_seq ~out_seq ~addr:(arr.st_base + (idx * esize)) ~size:esize
  in
  let passthrough v in_seq =
    let out_seq = queue_push st ra.ra_out v in
    Trace.ra_push rt ~in_seq ~out_seq ~addr:(-1) ~size:0
  in
  (* record that an input element was consumed without producing output
     (scan range bounds, empty ranges); the timing model frees the input
     queue slot when it replays this entry. *)
  let consume_only in_seq = Trace.ra_push rt ~in_seq ~out_seq:(-1) ~addr:(-2) ~size:0 in
  match ra.ra_mode with
  | Ra_indirect ->
    let rec loop () =
      let v, in_seq = queue_pop st ra.ra_in in
      (match v with
      | Vctrl _ -> passthrough v in_seq
      | Vint idx -> fetch idx in_seq
      | Vfloat _ -> error "RA %d: float index" ra.ra_id);
      loop ()
    in
    loop ()
  | Ra_scan ->
    let rec loop () =
      let v, in_seq = queue_pop st ra.ra_in in
      (match v with
      | Vctrl _ -> passthrough v in_seq
      | Vint start ->
        let rec get_end () =
          let v2, in_seq2 = queue_pop st ra.ra_in in
          match v2 with
          | Vctrl _ ->
            passthrough v2 in_seq2;
            get_end ()
          | Vint e -> (e, in_seq2)
          | Vfloat _ -> error "RA %d: float scan bound" ra.ra_id
        in
        let stop, in_seq2 = get_end () in
        consume_only in_seq;
        if stop <= start then consume_only in_seq2
        else
          for i = start to stop - 1 do
            fetch i in_seq2
          done
      | Vfloat _ -> error "RA %d: float scan bound" ra.ra_id);
      loop ()
    in
    loop ()

(* --- scheduler --- *)

type fiber_status =
  | Not_started
  | Runnable
  | Blocked of wait_reason
  | Done

type step =
  | Step_done
  | Step_blocked of wait_reason * (unit, step) Effect.Deep.continuation

(* A wedged queue network raises [Forensics.Pipeline_failure] with a
   structured report (per-agent blocked-on state, cyclic wait chain,
   occupancy snapshot) instead of a bare string exception. *)

(* Fresh runtime state for one execution of [p]. Shared by the tree-walking
   interpreter below and the compiled executor (Flat): both paths must see
   identical array layout, queue state, and a zeroed op budget. *)
let make_state ?(inputs = []) (p : pipeline) : state =
  (Domain.DLS.get budget_key).bg_ops <- 0;
  let n_stages = List.length p.p_stages in
  let n_ras = List.length p.p_ras in
  let n_queues =
    List.fold_left (fun acc q -> max acc (q.q_id + 1)) 0 p.p_queues
  in
  {
    arrays = layout_arrays p.p_arrays inputs;
    queues =
      Array.init n_queues (fun i ->
          { rq_id = i; rq_buf = Queue.create (); rq_enq_count = 0; rq_deq_count = 0 });
    call_costs =
      (let tbl = Hashtbl.create 8 in
       List.iter (fun (f, c) -> Hashtbl.replace tbl f c) p.p_call_costs;
       tbl);
    trace = Trace.create ~n_threads:n_stages ~n_ras ~n_queues;
  }

(* Package the architectural result of a finished execution. *)
let mk_result (p : pipeline) (st : state) : result =
  let trace = st.trace in
  trace.Trace.total_ops <- Trace.op_count trace;
  {
    r_arrays =
      List.map
        (fun d -> (d.a_name, Array.copy (Hashtbl.find st.arrays d.a_name).st_data))
        p.p_arrays;
    r_trace = trace;
    r_instrs = trace.Trace.total_ops;
    r_queue_traffic = Array.map (fun rq -> rq.rq_enq_count) st.queues;
  }

(* Deterministic round-robin scheduler over the fiber [bodies] (user stages
   first, then RA daemons). Runs until every user stage finishes, or raises
   the structured deadlock report when no fiber can make progress. Both
   execution paths (tree-walking and Flat) drive their fibers through this
   one scheduler, so interleavings — and therefore queue sequence numbers
   and forensics reports — are identical by construction. *)
let schedule (p : pipeline) (st : state) (bodies : (unit -> step) array) : unit =
  let trace = st.trace in
  let n_stages = List.length p.p_stages in
  let n_fibers = Array.length bodies in
  let status = Array.make n_fibers Not_started in
  let conts :
      (unit, step) Effect.Deep.continuation option array =
    Array.make n_fibers None
  in
  let is_user i = i < n_stages in
  let handle_step i (s : step) =
    match s with
    | Step_done ->
      status.(i) <- Done;
      conts.(i) <- None
    | Step_blocked (r, k) ->
      status.(i) <- Blocked r;
      conts.(i) <- Some k
  in
  let start_fiber i =
    let open Effect.Deep in
    handle_step i
      (match_with bodies.(i) ()
         {
           retc = Fun.id;
           exnc = raise;
           effc =
             (fun (type a) (eff : a Effect.t) ->
               match eff with
               | Wait r ->
                 Some
                   (fun (k : (a, step) continuation) -> Step_blocked (r, k))
               | _ -> None);
         })
  in
  let resume_fiber i =
    match conts.(i) with
    | None -> ()
    | Some k ->
      conts.(i) <- None;
      status.(i) <- Runnable;
      handle_step i (Effect.Deep.continue k ())
  in
  let queue_nonempty q = not (Queue.is_empty st.queues.(q).rq_buf) in
  let user_stages_all_done () =
    let rec loop i = i >= n_stages || (status.(i) = Done && loop (i + 1)) in
    loop 0
  in
  (* Barrier release: every non-done user fiber is parked on the same id. *)
  let barrier_ready id =
    let rec loop i =
      if i >= n_stages then true
      else
        match status.(i) with
        | Done -> loop (i + 1)
        | Blocked (Wait_barrier id') when id' = id -> loop (i + 1)
        | Not_started | Runnable | Blocked _ -> false
    in
    loop 0
  in
  let progress = ref true in
  while (not (user_stages_all_done ())) && !progress do
    progress := false;
    for i = 0 to n_fibers - 1 do
      (* Skip RA daemons once all user work is finished. *)
      if is_user i || not (user_stages_all_done ()) then
        match status.(i) with
        | Not_started ->
          progress := true;
          status.(i) <- Runnable;
          start_fiber i
        | Blocked (Wait_queue q) when queue_nonempty q ->
          progress := true;
          resume_fiber i
        | Blocked (Wait_barrier id) when barrier_ready id ->
          progress := true;
          (* Release every participant of this barrier instance. *)
          for j = 0 to n_stages - 1 do
            match status.(j) with
            | Blocked (Wait_barrier id') when id' = id -> resume_fiber j
            | Not_started | Runnable | Blocked _ | Done -> ()
          done
        | Runnable | Blocked _ | Done -> ()
    done
  done;
  if not (user_stages_all_done ()) then begin
    let names = Forensics.agent_names p in
    let _, producers, _ = Forensics.queue_users p in
    let agents =
      List.init n_fibers (fun i ->
          {
            Forensics.ag_id = i;
            ag_name =
              (if i < Array.length names then names.(i)
               else Printf.sprintf "agent%d" i);
            ag_blocked =
              (match status.(i) with
              | Blocked (Wait_queue q) -> Forensics.On_queue_empty q
              | Blocked (Wait_barrier b) -> Forensics.On_barrier b
              | Done -> Forensics.Finished
              | Not_started | Runnable -> Forensics.Running);
            ag_done_ops =
              (if is_user i then Trace.length trace.threads.(i)
               else Trace.ra_length trace.ras.(i - n_stages));
            ag_total_ops = -1;
          })
    in
    let waiting =
      List.filter_map
        (fun a ->
          match a.Forensics.ag_blocked with
          | Forensics.On_queue_empty q -> Some (a, q)
          | Forensics.On_barrier _ -> Some (a, -1)
          | _ -> None)
        agents
    in
    (* Who could unblock a given agent: producers of the queue it starves
       on; for a barrier, the non-done user stages not yet parked at it. *)
    let unblockers a =
      match a.Forensics.ag_blocked with
      | Forensics.On_queue_empty q ->
        if q < Array.length producers then
          List.filter (fun b -> List.mem b.Forensics.ag_id producers.(q)) agents
        else []
      | Forensics.On_barrier b ->
        List.filter
          (fun x ->
            x.Forensics.ag_id < n_stages
            && x.Forensics.ag_blocked <> Forensics.Finished
            && x.Forensics.ag_blocked <> Forensics.On_barrier b)
          agents
      | _ -> []
    in
    let wait_cycle = Forensics.find_wait_cycle ~waiting ~unblockers in
    let queues =
      List.filter_map
        (fun rq ->
          let occ = Queue.length rq.rq_buf in
          if occ = 0 && rq.rq_enq_count = 0 then None
          else
            Some
              { Forensics.qo_id = rq.rq_id; qo_occupancy = occ; qo_capacity = -1 })
        (Array.to_list st.queues)
    in
    let diagnosis =
      (if wait_cycle <> [] then
         [
           "every agent on the cyclic wait chain is starved on a queue that \
            only another agent on the chain can fill; the network can never \
            make progress";
         ]
       else [])
      @ List.filter_map
          (fun (a, q) ->
            if q >= 0 && q < Array.length producers && producers.(q) = [] then
              Some
                (Printf.sprintf
                   "%s dequeues q%d, but no stage or RA ever enqueues into it"
                   a.Forensics.ag_name q)
            else None)
          waiting
    in
    Forensics.fail
      {
        Forensics.fr_kind = Forensics.Deadlock;
        fr_pipeline = p.p_name;
        fr_at = Trace.op_count trace;
        fr_agents = agents;
        fr_queues = queues;
        fr_wait_cycle = wait_cycle;
        fr_injected = 0;
        fr_diagnosis = diagnosis;
      }
  end

let run ?(inputs = []) (p : pipeline) : result =
  let st = make_state ~inputs p in
  let trace = st.trace in
  (* Fiber bodies: user stages first, then RA daemons. *)
  let stage_body i (stg : stage) () =
    let cx =
      {
        cx_thread = i;
        cx_trace = trace.Trace.threads.(i);
        cx_env = Hashtbl.create 32;
        cx_handlers =
          (let tbl = Hashtbl.create 4 in
           List.iter (fun h -> Hashtbl.replace tbl h.h_queue h) stg.s_handlers;
           tbl);
        cx_last_store = Hashtbl.create 8;
        cx_barrier_occ = Hashtbl.create 4;
      }
    in
    List.iter (fun (x, v) -> assign cx x v Trace.no_dep) p.p_params;
    (try exec_block st cx stg.s_body
     with Brk _ -> error "stage %s: break outside of loop" stg.s_name);
    Step_done
  in
  let ra_body i (ra : ra_config) () =
    (try run_ra st ra trace.Trace.ras.(i) with Stop_ra -> ());
    Step_done
  in
  let bodies =
    Array.of_list (List.mapi stage_body p.p_stages @ List.mapi ra_body p.p_ras)
  in
  schedule p st bodies;
  mk_result p st
