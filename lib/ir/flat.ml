(* Compiled µop execution core (ROADMAP item 2; Kōika-style "compile the
   rule semantics, then simulate").

   The tree-walking interpreter (Interp) re-matches IR constructors for
   every executed op, which caps single-thread simulation throughput. This
   module lowers each pipeline stage ONCE into a flat, array-indexed µop
   program — integer opcodes with preresolved operand registers, array
   slots, queue ids, callee and branch-site indices held in contiguous int
   arrays — and executes it with a tight dispatch loop (an integer [match]
   over a dense opcode range compiles to a jump table).

   Equivalence contract: for any valid pipeline, the flat program emits a
   micro-op trace byte-identical to [Interp.run]'s — same op kinds,
   payloads, dependency tokens, queue sequence numbers, and budget-check
   count — because both paths share the same emission helpers
   ([Interp.push_alu] / [push_branch] / [Trace.push]), the same queue
   runtime and value primitives, and the same deterministic scheduler
   ([Interp.schedule]). The differential suite (test/test_flat.ml)
   enforces this across every workload. One knowing divergence, affecting
   only *invalid* programs: the tree path raises "unbound variable" when a
   variable is read before any assignment, while the flat path reads the
   register file's initial [Vint 0] — register allocation erases the
   bound/unbound distinction.

   Compilation is pure and per-pipeline: the resulting programs hold no
   mutable execution state (that all lives in the per-run register file
   and [Interp.state]), so they can be cached and shared across domains. *)

open Types
module I = Interp

(* --- opcodes (dense, so the dispatch match is a jump table) --- *)

let op_halt = 0
let op_const = 1
let op_mov = 2 (* pure register copy: no trace op, no budget charge *)
let op_binop = 3
let op_unop = 4
let op_load = 5
let op_store = 6
let op_atomic = 7 (* d: 0 = min, 1 = add *)
let op_prefetch = 8
let op_enq = 9
let op_enqc = 10
let op_enqi = 11
let op_deq = 12 (* c = handler entry pc or -1, d = handler cv register *)
let op_isctrl = 13
let op_payload = 14
let op_call = 15
let op_br = 16 (* a = site, b = cond reg, c = not-taken target *)
let op_jmp = 17
let op_forcmp = 18 (* a = site, b = loop var reg, c = bound reg, d = exit *)
let op_forinc = 19
let op_barrier = 20
let op_hend = 21 (* handler fell through: retry the originating dequeue *)
let op_exitn = 22 (* a = residual unwind depth, resolved via handler stack *)
let op_err = 23 (* a = message slot, b = index reg to coerce first (or -1) *)

(* Dense integer codes for the operator variants, so the instruction
   streams stay int-only; the executor indexes back into these tables. *)
let binop_table =
  [|
    Add; Sub; Mul; Div; Mod; Lt; Le; Gt; Ge; Eq; Ne; And; Or; Band; Bor; Bxor;
    Shl; Shr; Min; Max;
  |]

let unop_table = [| Neg; Not; To_int; To_float; Fabs |]

let code_of op table =
  let rec go i = if table.(i) = op then i else go (i + 1) in
  go 0

(* --- compiled form of one stage --- *)

type program = {
  fp_stage : string;
  fp_op : int array;
  fp_a : int array;
  fp_b : int array;
  fp_c : int array;
  fp_d : int array;
  fp_consts : value array;
  fp_arrays : string array; (* array slot -> declared array name *)
  fp_qtabs : int array array; (* Enq_indexed replica tables *)
  fp_callees : string array;
  fp_errs : string array; (* messages for op_err *)
  fp_unwind : int array array;
      (* per-pc, nonempty only at dequeue sites: exit pcs of the loops
         statically enclosing that dequeue in its compilation unit,
         innermost first — consulted when a control-value handler unwinds
         ([Exit_loops]) past its own loops *)
  fp_nregs : int;
  fp_param_regs : (string * int) list; (* pipeline params the stage reads *)
}

(* --- compiler --- *)

let rec expr_has_deq = function
  | Deq _ -> true
  | Const _ | Var _ -> false
  | Binop (_, a, b) -> expr_has_deq a || expr_has_deq b
  | Unop (_, a) | Is_control a | Ctrl_payload a | Load (_, a) -> expr_has_deq a
  | Call (_, args) -> List.exists expr_has_deq args

type cctx = {
  cc_stage : string;
  cc_pipeline : pipeline;
  (* instruction stream under construction (reversed) *)
  mutable cc_ops : (int * int * int * int * int) list;
  mutable cc_n : int;
  (* pools (lists reversed) *)
  mutable cc_consts : value list;
  mutable cc_nconsts : int;
  cc_arrays : (string, int) Hashtbl.t;
  mutable cc_arr_names : string list;
  mutable cc_narrs : int;
  mutable cc_qtabs : int array list;
  mutable cc_nqtabs : int;
  cc_callees : (string, int) Hashtbl.t;
  mutable cc_callee_names : string list;
  mutable cc_ncallees : int;
  mutable cc_errs : string list;
  mutable cc_nerrs : int;
  (* register allocation: monotonic, never reused — a scratch register can
     therefore never be clobbered after it is written *)
  cc_vars : (string, int) Hashtbl.t;
  mutable cc_nregs : int;
  (* labels and backpatching *)
  mutable cc_labels : int array;
  mutable cc_nlabels : int;
  mutable cc_patches : (int * int * int) list; (* instr, field, label *)
  mutable cc_unwinds : (int * int list) list; (* deq pc, loop exit labels *)
  (* handler entries: queue id -> (entry label, control-value register) *)
  cc_handlers : (queue_id, int * int) Hashtbl.t;
  (* exit labels of loops enclosing the current emission point (innermost
     first), within the current compilation unit (stage body or one
     handler body) *)
  mutable cc_loops : int list;
  mutable cc_in_handler : bool;
}

let emit cc op a b c d =
  cc.cc_ops <- (op, a, b, c, d) :: cc.cc_ops;
  cc.cc_n <- cc.cc_n + 1;
  cc.cc_n - 1

let fresh_reg cc =
  let r = cc.cc_nregs in
  cc.cc_nregs <- r + 1;
  r

let var_reg cc x =
  match Hashtbl.find_opt cc.cc_vars x with
  | Some r -> r
  | None ->
    let r = fresh_reg cc in
    Hashtbl.replace cc.cc_vars x r;
    r

let const_slot cc v =
  let k = cc.cc_nconsts in
  cc.cc_consts <- v :: cc.cc_consts;
  cc.cc_nconsts <- k + 1;
  k

let err_slot cc msg =
  let k = cc.cc_nerrs in
  cc.cc_errs <- msg :: cc.cc_errs;
  cc.cc_nerrs <- k + 1;
  k

(* Arrays resolve to dense slots at compile time; referencing an undeclared
   array compiles to an [op_err] raised at the exact execution point (and
   after the same index coercion) where the tree interpreter would raise,
   preserving lazy runtime semantics for programs whose bad reference is
   never reached. *)
let array_slot cc name =
  if
    List.exists
      (fun (d : array_decl) -> d.a_name = name)
      cc.cc_pipeline.p_arrays
  then
    Ok
      (match Hashtbl.find_opt cc.cc_arrays name with
      | Some s -> s
      | None ->
        let s = cc.cc_narrs in
        Hashtbl.replace cc.cc_arrays name s;
        cc.cc_arr_names <- name :: cc.cc_arr_names;
        cc.cc_narrs <- s + 1;
        s)
  else Error (Printf.sprintf "unknown array %s" name)

let callee_slot cc f =
  match Hashtbl.find_opt cc.cc_callees f with
  | Some s -> s
  | None ->
    let s = cc.cc_ncallees in
    Hashtbl.replace cc.cc_callees f s;
    cc.cc_callee_names <- f :: cc.cc_callee_names;
    cc.cc_ncallees <- s + 1;
    s

let qtab_slot cc qs =
  let s = cc.cc_nqtabs in
  cc.cc_qtabs <- Array.copy qs :: cc.cc_qtabs;
  cc.cc_nqtabs <- s + 1;
  s

let new_label cc =
  let l = cc.cc_nlabels in
  if l >= Array.length cc.cc_labels then begin
    let grown = Array.make (max 16 (2 * Array.length cc.cc_labels)) (-1) in
    Array.blit cc.cc_labels 0 grown 0 (Array.length cc.cc_labels);
    cc.cc_labels <- grown
  end;
  cc.cc_nlabels <- l + 1;
  l

let bind_label cc l = cc.cc_labels.(l) <- cc.cc_n
let patch cc idx field l = cc.cc_patches <- (idx, field, l) :: cc.cc_patches
let is_var = function Var _ -> true | _ -> false

(* Copy a named-variable operand into a scratch register when a
   later-evaluated sibling expression may mutate it (the only in-statement
   mutators are control-value handlers running inside a [Deq]): the tree
   interpreter captures operand values and tokens in evaluation order, so
   the flat program must too. Compound operands land in scratch registers,
   which are never reused and hence never need shielding. *)
let shield cc r ~hazard ~e =
  if hazard && is_var e then begin
    let t = fresh_reg cc in
    ignore (emit cc op_mov t r 0 0);
    t
  end
  else r

(* Compile [e]; the result (value, token) lands in register [dst] if
   given, else in the expression's natural register (a variable's own
   register for [Var], a fresh scratch otherwise). Returns that register.
   Register reads happen strictly before the destination write at
   execution time, so [dst] may legally appear among the operands. *)
let rec compile_expr cc ?dst (e : expr) : int =
  let target () = match dst with Some d -> d | None -> fresh_reg cc in
  match e with
  | Const v ->
    let r = target () in
    ignore (emit cc op_const r (const_slot cc v) 0 0);
    r
  | Var x -> (
    let rx = var_reg cc x in
    match dst with
    | Some d when d <> rx ->
      ignore (emit cc op_mov d rx 0 0);
      d
    | Some d -> d
    | None -> rx)
  | Binop (op, a, b) ->
    let ra = compile_expr cc a in
    let ra = shield cc ra ~hazard:(expr_has_deq b) ~e:a in
    let rb = compile_expr cc b in
    let r = target () in
    ignore (emit cc op_binop r (code_of op binop_table) ra rb);
    r
  | Unop (op, a) ->
    let ra = compile_expr cc a in
    let r = target () in
    ignore (emit cc op_unop r (code_of op unop_table) ra 0);
    r
  | Load (arr, idx) ->
    let ri = compile_expr cc idx in
    let r = target () in
    (match array_slot cc arr with
    | Ok s -> ignore (emit cc op_load r s ri 0)
    | Error msg -> ignore (emit cc op_err (err_slot cc msg) ri 0 0));
    r
  | Deq q ->
    let r = target () in
    let entry, cv =
      match Hashtbl.find_opt cc.cc_handlers q with
      | Some (l, cv) -> (l, cv)
      | None -> (-1, -1)
    in
    let idx = emit cc op_deq r q (-1) cv in
    if entry >= 0 then patch cc idx 2 entry;
    cc.cc_unwinds <- (idx, cc.cc_loops) :: cc.cc_unwinds;
    r
  | Is_control a ->
    let ra = compile_expr cc a in
    let r = target () in
    ignore (emit cc op_isctrl r ra 0 0);
    r
  | Ctrl_payload a ->
    let ra = compile_expr cc a in
    let r = target () in
    ignore (emit cc op_payload r ra 0 0);
    r
  | Call (f, args) ->
    (* Every argument is evaluated (it may dequeue or touch memory); only
       the first two tokens and the first value feed the call's µops. *)
    let rec compile_args = function
      | [] -> []
      | a :: rest ->
        let ra = compile_expr cc a in
        let ra = shield cc ra ~hazard:(List.exists expr_has_deq rest) ~e:a in
        ra :: compile_args rest
    in
    let regs = compile_args args in
    let r1 = match regs with r :: _ -> r | [] -> -1 in
    let r2 = match regs with _ :: r :: _ -> r | _ -> -1 in
    let r = target () in
    ignore (emit cc op_call r (callee_slot cc f) r1 r2);
    r

(* Unwind [n] loop levels from the current emission point. Levels inside
   the current compilation unit resolve to a static jump; a handler
   unwinding past its own loops defers the residue to the runtime handler
   stack ([op_exitn]); unwinding past the stage body's outermost loop is
   the tree interpreter's "break outside of loop" runtime error. *)
let compile_unwind cc n =
  let loops = cc.cc_loops in
  if n <= List.length loops then begin
    let jidx = emit cc op_jmp (-1) 0 0 0 in
    patch cc jidx 0 (List.nth loops (n - 1))
  end
  else if cc.cc_in_handler then
    ignore (emit cc op_exitn (n - List.length loops) 0 0 0)
  else
    ignore
      (emit cc op_err
         (err_slot cc
            (Printf.sprintf "stage %s: break outside of loop" cc.cc_stage))
         (-1) 0 0)

let with_loop cc lexit f =
  let saved = cc.cc_loops in
  cc.cc_loops <- lexit :: saved;
  f ();
  cc.cc_loops <- saved

let rec compile_stmt cc (s : stmt) : unit =
  match s with
  | Assign (x, e) -> ignore (compile_expr cc ~dst:(var_reg cc x) e)
  | Store (arr, idx, e) ->
    let ri = compile_expr cc idx in
    let ri = shield cc ri ~hazard:(expr_has_deq e) ~e:idx in
    let re = compile_expr cc e in
    (match array_slot cc arr with
    | Ok s -> ignore (emit cc op_store s ri re 0)
    | Error msg -> ignore (emit cc op_err (err_slot cc msg) ri 0 0))
  | Atomic_min (arr, idx, e) | Atomic_add (arr, idx, e) ->
    let which = match s with Atomic_min _ -> 0 | _ -> 1 in
    let ri = compile_expr cc idx in
    let ri = shield cc ri ~hazard:(expr_has_deq e) ~e:idx in
    let re = compile_expr cc e in
    (match array_slot cc arr with
    | Ok sl -> ignore (emit cc op_atomic sl ri re which)
    | Error msg -> ignore (emit cc op_err (err_slot cc msg) ri 0 0))
  | Prefetch (arr, idx) ->
    let ri = compile_expr cc idx in
    (match array_slot cc arr with
    | Ok s -> ignore (emit cc op_prefetch s ri 0 0)
    | Error msg -> ignore (emit cc op_err (err_slot cc msg) ri 0 0))
  | Enq (q, e) ->
    let re = compile_expr cc e in
    ignore (emit cc op_enq q re 0 0)
  | Enq_ctrl (q, cv) -> ignore (emit cc op_enqc q cv 0 0)
  | Enq_indexed (qs, sel, e) ->
    let rs = compile_expr cc sel in
    let rs = shield cc rs ~hazard:(expr_has_deq e) ~e:sel in
    let re = compile_expr cc e in
    ignore (emit cc op_enqi (qtab_slot cc qs) rs re 0)
  | If (site, c, tb, fb) ->
    let rc = compile_expr cc c in
    let lelse = new_label cc and lend = new_label cc in
    let bidx = emit cc op_br site rc (-1) 0 in
    patch cc bidx 2 lelse;
    compile_block cc tb;
    let jidx = emit cc op_jmp (-1) 0 0 0 in
    patch cc jidx 0 lend;
    bind_label cc lelse;
    compile_block cc fb;
    bind_label cc lend
  | While (site, c, body) ->
    (* The condition is evaluated inside the loop's break scope: a handler
       breaking out of a dequeue embedded in the condition exits this
       loop, exactly as the tree interpreter's try-frame does. *)
    let lhead = new_label cc and lexit = new_label cc in
    bind_label cc lhead;
    with_loop cc lexit (fun () ->
        let rc = compile_expr cc c in
        let bidx = emit cc op_br site rc (-1) 0 in
        patch cc bidx 2 lexit;
        compile_block cc body);
    let jidx = emit cc op_jmp (-1) 0 0 0 in
    patch cc jidx 0 lhead;
    bind_label cc lexit
  | For (site, v, lo, hi, body) ->
    (* Bounds are evaluated outside the loop's break scope (tree: before
       the try-frame), and the bound value/token pair is captured once:
       pin it in a scratch register the body can never write. *)
    let rlo = compile_expr cc lo in
    let rlo = shield cc rlo ~hazard:(expr_has_deq hi) ~e:lo in
    let rhi0 = compile_expr cc hi in
    let rhi =
      if is_var hi then begin
        let t = fresh_reg cc in
        ignore (emit cc op_mov t rhi0 0 0);
        t
      end
      else rhi0
    in
    let rv = var_reg cc v in
    if rv <> rlo then ignore (emit cc op_mov rv rlo 0 0);
    let lhead = new_label cc and lexit = new_label cc in
    bind_label cc lhead;
    let fidx = emit cc op_forcmp site rv rhi (-1) in
    patch cc fidx 3 lexit;
    with_loop cc lexit (fun () -> compile_block cc body);
    ignore (emit cc op_forinc rv 0 0 0);
    let jidx = emit cc op_jmp (-1) 0 0 0 in
    patch cc jidx 0 lhead;
    bind_label cc lexit
  | Break -> compile_unwind cc 1
  | Exit_loops n -> if n > 0 then compile_unwind cc n
  | Barrier id -> ignore (emit cc op_barrier id 0 0 0)
  | Seq_marker _ -> ()

and compile_block cc stmts = List.iter (compile_stmt cc) stmts

let compile_stage (p : pipeline) (stg : stage) : program =
  let cc =
    {
      cc_stage = stg.s_name;
      cc_pipeline = p;
      cc_ops = [];
      cc_n = 0;
      cc_consts = [];
      cc_nconsts = 0;
      cc_arrays = Hashtbl.create 8;
      cc_arr_names = [];
      cc_narrs = 0;
      cc_qtabs = [];
      cc_nqtabs = 0;
      cc_callees = Hashtbl.create 8;
      cc_callee_names = [];
      cc_ncallees = 0;
      cc_errs = [];
      cc_nerrs = 0;
      cc_vars = Hashtbl.create 16;
      cc_nregs = 0;
      cc_labels = Array.make 16 (-1);
      cc_nlabels = 0;
      cc_patches = [];
      cc_unwinds = [];
      cc_handlers = Hashtbl.create 4;
      cc_loops = [];
      cc_in_handler = false;
    }
  in
  (* Handler entry labels and control-value registers exist before any
     dequeue site references them. *)
  List.iter
    (fun h ->
      Hashtbl.replace cc.cc_handlers h.h_queue
        (new_label cc, var_reg cc h.h_cv_var))
    stg.s_handlers;
  compile_block cc stg.s_body;
  ignore (emit cc op_halt 0 0 0 0);
  (* Handler bodies are appended as subroutines after the stage body; each
     is entered from a dequeue that popped a control value and ends by
     retrying that dequeue (op_hend) unless it unwound first. *)
  List.iter
    (fun h ->
      let entry, _ = Hashtbl.find cc.cc_handlers h.h_queue in
      bind_label cc entry;
      cc.cc_in_handler <- true;
      cc.cc_loops <- [];
      compile_block cc h.h_body;
      ignore (emit cc op_hend 0 0 0 0))
    stg.s_handlers;
  (* materialize the instruction stream and resolve labels *)
  let n = cc.cc_n in
  let fop = Array.make n 0
  and fa = Array.make n 0
  and fb = Array.make n 0
  and fc = Array.make n 0
  and fd = Array.make n 0 in
  List.iteri
    (fun k (o, x, y, z, w) ->
      let j = n - 1 - k in
      fop.(j) <- o;
      fa.(j) <- x;
      fb.(j) <- y;
      fc.(j) <- z;
      fd.(j) <- w)
    cc.cc_ops;
  List.iter
    (fun (idx, field, l) ->
      let pc = cc.cc_labels.(l) in
      match field with
      | 0 -> fa.(idx) <- pc
      | 2 -> fc.(idx) <- pc
      | 3 -> fd.(idx) <- pc
      | _ -> assert false)
    cc.cc_patches;
  let unwind = Array.make n [||] in
  List.iter
    (fun (pc, labels) ->
      unwind.(pc) <-
        Array.of_list (List.map (fun l -> cc.cc_labels.(l)) labels))
    cc.cc_unwinds;
  {
    fp_stage = stg.s_name;
    fp_op = fop;
    fp_a = fa;
    fp_b = fb;
    fp_c = fc;
    fp_d = fd;
    fp_consts = Array.of_list (List.rev cc.cc_consts);
    fp_arrays = Array.of_list (List.rev cc.cc_arr_names);
    fp_qtabs = Array.of_list (List.rev cc.cc_qtabs);
    fp_callees = Array.of_list (List.rev cc.cc_callee_names);
    fp_errs = Array.of_list (List.rev cc.cc_errs);
    fp_unwind = unwind;
    fp_nregs = cc.cc_nregs;
    fp_param_regs =
      List.filter_map
        (fun (x, _) ->
          Option.map (fun r -> (x, r)) (Hashtbl.find_opt cc.cc_vars x))
        p.p_params;
  }

let compile (p : pipeline) : program array =
  Array.of_list (List.map (compile_stage p) p.p_stages)

(* --- executor --- *)

let rterror msg = raise (I.Runtime_error msg)

(* One fiber body: executes [prog] against shared runtime state [st],
   emitting into thread trace [tr]. Driven by [Interp.schedule]; queue
   blocking and barriers use the interpreter's own [Wait] effect, so the
   scheduler cannot distinguish the two execution paths. *)
let exec_stage (st : I.state) (prog : program) ~(tr : Trace.thread_trace)
    (p : pipeline) () : I.step =
  let code = prog.fp_op
  and fa = prog.fp_a
  and fb = prog.fp_b
  and fc = prog.fp_c
  and fd = prog.fp_d in
  let consts = prog.fp_consts in
  let ar_name = prog.fp_arrays in
  let n_arr = Array.length ar_name in
  let ar_data = Array.make n_arr [||]
  and ar_base = Array.make n_arr 0
  and ar_esize = Array.make n_arr 0 in
  Array.iteri
    (fun s name ->
      let a = Hashtbl.find st.I.arrays name in
      ar_data.(s) <- a.I.st_data;
      ar_base.(s) <- a.I.st_base;
      ar_esize.(s) <- elem_size a.I.st_decl.a_ty)
    ar_name;
  (* Cost lookups are preresolved, but an unregistered callee must only
     fault if the call actually executes (lazy, like the tree path). *)
  let costs =
    Array.map
      (fun f ->
        match Hashtbl.find_opt st.I.call_costs f with
        | Some c -> c
        | None -> min_int)
      prog.fp_callees
  in
  let last_store = Array.make (max 1 n_arr) Trace.no_dep in
  let barrier_occ = Hashtbl.create 4 in
  let rv = Array.make (max 1 prog.fp_nregs) (Vint 0) in
  let rt = Array.make (max 1 prog.fp_nregs) Trace.no_dep in
  List.iter
    (fun (x, v) ->
      match List.assoc_opt x prog.fp_param_regs with
      | Some r ->
        rv.(r) <- v;
        rt.(r) <- Trace.no_dep
      | None -> ())
    p.p_params;
  (* Return pcs of dequeues whose control-value handler is running,
     innermost last. *)
  let hstack = ref (Array.make 8 0) in
  let hsp = ref 0 in
  let push_h pc =
    if !hsp >= Array.length !hstack then begin
      let g = Array.make (2 * Array.length !hstack) 0 in
      Array.blit !hstack 0 g 0 !hsp;
      hstack := g
    end;
    !hstack.(!hsp) <- pc;
    incr hsp
  in
  let oob s idx =
    rterror
      (Printf.sprintf "array %s: index %d out of bounds [0, %d)" ar_name.(s)
         idx
         (Array.length ar_data.(s)))
  in
  let pc = ref 0 in
  let running = ref true in
  while !running do
    let i = !pc in
    pc := i + 1;
    match code.(i) with
    | 0 (* halt *) -> running := false
    | 1 (* const *) ->
      let r = fa.(i) in
      rv.(r) <- consts.(fb.(i));
      rt.(r) <- Trace.no_dep
    | 2 (* mov *) ->
      let r = fa.(i) and s = fb.(i) in
      rv.(r) <- rv.(s);
      rt.(r) <- rt.(s)
    | 3 (* binop *) ->
      let ra = fc.(i) and rb = fd.(i) in
      let v = I.eval_binop binop_table.(fb.(i)) rv.(ra) rv.(rb) in
      let t = I.push_alu tr ~dep1:rt.(ra) ~dep2:rt.(rb) in
      let r = fa.(i) in
      rv.(r) <- v;
      rt.(r) <- t
    | 4 (* unop *) ->
      let ra = fc.(i) in
      let v = I.eval_unop unop_table.(fb.(i)) rv.(ra) in
      let t = I.push_alu tr ~dep1:rt.(ra) ~dep2:Trace.no_dep in
      let r = fa.(i) in
      rv.(r) <- v;
      rt.(r) <- t
    | 5 (* load *) ->
      let s = fb.(i) and ri = fc.(i) in
      let idx = I.as_int rv.(ri) in
      let data = ar_data.(s) in
      if idx < 0 || idx >= Array.length data then oob s idx;
      let esize = ar_esize.(s) in
      let tok =
        Trace.push tr ~kind:Trace.op_load
          ~pa:(ar_base.(s) + (idx * esize))
          ~pb:esize ~dep1:rt.(ri) ~dep2:last_store.(s) ~dep3:Trace.no_dep
      in
      let r = fa.(i) in
      rv.(r) <- data.(idx);
      rt.(r) <- tok
    | 6 (* store *) ->
      let s = fa.(i) and ri = fb.(i) and re = fc.(i) in
      let idx = I.as_int rv.(ri) in
      let data = ar_data.(s) in
      if idx < 0 || idx >= Array.length data then oob s idx;
      let esize = ar_esize.(s) in
      let tok =
        Trace.push tr ~kind:Trace.op_store
          ~pa:(ar_base.(s) + (idx * esize))
          ~pb:esize ~dep1:rt.(ri) ~dep2:rt.(re) ~dep3:last_store.(s)
      in
      last_store.(s) <- tok;
      data.(idx) <- rv.(re)
    | 7 (* atomic *) ->
      let s = fa.(i) and ri = fb.(i) and re = fc.(i) in
      let idx = I.as_int rv.(ri) in
      let data = ar_data.(s) in
      if idx < 0 || idx >= Array.length data then oob s idx;
      let esize = ar_esize.(s) in
      let tok =
        Trace.push tr ~kind:Trace.op_atomic
          ~pa:(ar_base.(s) + (idx * esize))
          ~pb:esize ~dep1:rt.(ri) ~dep2:rt.(re) ~dep3:last_store.(s)
      in
      last_store.(s) <- tok;
      data.(idx) <-
        I.eval_binop (if fd.(i) = 0 then Min else Add) data.(idx) rv.(re)
    | 8 (* prefetch *) ->
      let s = fa.(i) and ri = fb.(i) in
      let idx = I.as_int rv.(ri) in
      if idx < 0 || idx >= Array.length ar_data.(s) then oob s idx;
      let esize = ar_esize.(s) in
      ignore
        (Trace.push tr ~kind:Trace.op_prefetch
           ~pa:(ar_base.(s) + (idx * esize))
           ~pb:esize ~dep1:rt.(ri) ~dep2:Trace.no_dep ~dep3:Trace.no_dep)
    | 9 (* enq *) ->
      let q = fa.(i) and re = fb.(i) in
      let seq = I.queue_push st q rv.(re) in
      ignore
        (Trace.push tr ~kind:Trace.op_enq ~pa:q ~pb:seq ~dep1:rt.(re)
           ~dep2:Trace.no_dep ~dep3:Trace.no_dep)
    | 10 (* enq_ctrl *) ->
      let q = fa.(i) in
      let seq = I.queue_push st q (Vctrl fb.(i)) in
      ignore
        (Trace.push tr ~kind:Trace.op_enq ~pa:q ~pb:seq ~dep1:Trace.no_dep
           ~dep2:Trace.no_dep ~dep3:Trace.no_dep)
    | 11 (* enq_indexed *) ->
      let qs = prog.fp_qtabs.(fa.(i)) in
      let rs = fb.(i) and re = fc.(i) in
      let sel = I.as_int rv.(rs) in
      if sel < 0 || sel >= Array.length qs then
        rterror
          (Printf.sprintf
             "enq_indexed: replica selector %d out of range [0, %d)" sel
             (Array.length qs));
      let q = qs.(sel) in
      let seq = I.queue_push st q rv.(re) in
      ignore
        (Trace.push tr ~kind:Trace.op_enq ~pa:q ~pb:seq ~dep1:rt.(re)
           ~dep2:rt.(rs) ~dep3:Trace.no_dep)
    | 12 (* deq *) ->
      (* the one budget-charged dequeue attempt, shared with the tree
         path's [deq_with_handler] *)
      I.check_budget ();
      let q = fb.(i) in
      let v, seq = I.queue_pop st q in
      let tok =
        Trace.push tr ~kind:Trace.op_deq ~pa:q ~pb:seq ~dep1:Trace.no_dep
          ~dep2:Trace.no_dep ~dep3:Trace.no_dep
      in
      let hpc = fc.(i) in
      if hpc >= 0 && value_is_ctrl v then begin
        let cv = fd.(i) in
        rv.(cv) <- v;
        rt.(cv) <- tok;
        push_h i;
        pc := hpc
      end
      else begin
        let r = fa.(i) in
        rv.(r) <- v;
        rt.(r) <- tok
      end
    | 13 (* is_control *) ->
      let ra = fb.(i) in
      let v = I.int_of_bool (value_is_ctrl rv.(ra)) in
      let t = I.push_alu tr ~dep1:rt.(ra) ~dep2:Trace.no_dep in
      let r = fa.(i) in
      rv.(r) <- v;
      rt.(r) <- t
    | 14 (* ctrl_payload *) ->
      let ra = fb.(i) in
      let v =
        match rv.(ra) with
        | Vctrl c -> Vint c
        | Vint _ | Vfloat _ -> rterror "ctrl_payload of data value"
      in
      let t = I.push_alu tr ~dep1:rt.(ra) ~dep2:Trace.no_dep in
      let r = fa.(i) in
      rv.(r) <- v;
      rt.(r) <- t
    | 15 (* call *) ->
      let ci = fb.(i) in
      let cost = costs.(ci) in
      if cost = min_int then
        rterror
          (Printf.sprintf "call to %s: no cost registered"
             prog.fp_callees.(ci));
      let r1 = fc.(i) and r2 = fd.(i) in
      let dep1 = if r1 >= 0 then rt.(r1) else Trace.no_dep in
      let dep2 = if r2 >= 0 then rt.(r2) else Trace.no_dep in
      let tok = ref (I.push_alu tr ~dep1 ~dep2) in
      for _ = 2 to cost do
        tok := I.push_alu tr ~dep1:!tok ~dep2:Trace.no_dep
      done;
      let v =
        if r1 < 0 then Vint cost
        else
          match rv.(r1) with
          | Vint x -> Vint (x * 2654435761 land 0x3FFFFFFF)
          | Vfloat f -> Vfloat (f *. 1.0001)
          | Vctrl _ ->
            rterror
              (Printf.sprintf "call %s: control value argument"
                 prog.fp_callees.(ci))
      in
      let r = fa.(i) in
      rv.(r) <- v;
      rt.(r) <- !tok
    | 16 (* br *) ->
      let rc = fb.(i) in
      let taken = I.as_bool rv.(rc) in
      I.push_branch tr ~site:fa.(i) ~taken ~dep:rt.(rc);
      if not taken then pc := fc.(i)
    | 17 (* jmp *) -> pc := fa.(i)
    | 18 (* forcmp *) ->
      let rvr = fb.(i) and rh = fc.(i) in
      let cond = I.as_int rv.(rvr) < I.as_int rv.(rh) in
      let tcmp = I.push_alu tr ~dep1:rt.(rvr) ~dep2:rt.(rh) in
      I.push_branch tr ~site:fa.(i) ~taken:cond ~dep:tcmp;
      if not cond then pc := fd.(i)
    | 19 (* forinc *) ->
      let r = fa.(i) in
      let t = I.push_alu tr ~dep1:rt.(r) ~dep2:Trace.no_dep in
      rv.(r) <- I.eval_binop Add rv.(r) (Vint 1);
      rt.(r) <- t
    | 20 (* barrier *) ->
      let id = fa.(i) in
      let occ =
        match Hashtbl.find_opt barrier_occ id with Some n -> n | None -> 0
      in
      Hashtbl.replace barrier_occ id (occ + 1);
      ignore
        (Trace.push tr ~kind:Trace.op_barrier ~pa:id ~pb:occ
           ~dep1:Trace.no_dep ~dep2:Trace.no_dep ~dep3:Trace.no_dep);
      Effect.perform (I.Wait (I.Wait_barrier id))
    | 21 (* handler end: retry the dequeue that invoked it *) ->
      decr hsp;
      pc := !hstack.(!hsp)
    | 22 (* exitn *) ->
      let d = ref fa.(i) in
      let unwinding = ref true in
      while !unwinding do
        if !hsp = 0 then
          rterror
            (Printf.sprintf "stage %s: break outside of loop" prog.fp_stage);
        decr hsp;
        let dpc = !hstack.(!hsp) in
        let exits = prog.fp_unwind.(dpc) in
        let len = Array.length exits in
        if !d <= len then begin
          pc := exits.(!d - 1);
          unwinding := false
        end
        else d := !d - len
      done
    | 23 (* err *) ->
      let b = fb.(i) in
      if b >= 0 then ignore (I.as_int rv.(b));
      rterror prog.fp_errs.(fa.(i))
    | _ -> assert false
  done;
  I.Step_done

(* Compile-then-execute entry point: same signature and same observable
   behaviour as [Interp.run]. Pass [?programs] to reuse a compilation
   (Sim memoizes it per pipeline across a sweep). *)
let run ?(inputs = []) ?programs (p : pipeline) : I.result =
  let progs = match programs with Some ps -> ps | None -> compile p in
  let st = I.make_state ~inputs p in
  let trace = st.I.trace in
  let stage_bodies =
    List.mapi
      (fun i _ -> exec_stage st progs.(i) ~tr:trace.Trace.threads.(i) p)
      p.p_stages
  in
  let ra_body i (ra : ra_config) () =
    (try I.run_ra st ra trace.Trace.ras.(i) with I.Stop_ra -> ());
    I.Step_done
  in
  let bodies = Array.of_list (stage_bodies @ List.mapi ra_body p.p_ras) in
  I.schedule p st bodies;
  I.mk_result p st
