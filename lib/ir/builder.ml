(* A small eDSL for writing IR pipelines by hand: used for the manually
   pipelined baselines, data-parallel variants, tests, and examples.

   Open [Builder] locally; the operators are chosen not to clash with
   Stdlib's arithmetic ([+!], [<!], ...). *)

open Types

let int n = Const (Vint n)
let flt f = Const (Vfloat f)
let v x = Var x
let ( +! ) a b = Binop (Add, a, b)
let ( -! ) a b = Binop (Sub, a, b)
let ( *! ) a b = Binop (Mul, a, b)
let ( /! ) a b = Binop (Div, a, b)
let ( %! ) a b = Binop (Mod, a, b)
let ( <! ) a b = Binop (Lt, a, b)
let ( <=! ) a b = Binop (Le, a, b)
let ( >! ) a b = Binop (Gt, a, b)
let ( >=! ) a b = Binop (Ge, a, b)
let ( ==! ) a b = Binop (Eq, a, b)
let ( <>! ) a b = Binop (Ne, a, b)
let ( &&! ) a b = Binop (And, a, b)
let ( ||! ) a b = Binop (Or, a, b)
let ( &! ) a b = Binop (Band, a, b)
let ( ^! ) a b = Binop (Bxor, a, b)
let ( <<! ) a b = Binop (Shl, a, b)
let ( >>! ) a b = Binop (Shr, a, b)
let imin a b = Binop (Min, a, b)
let imax a b = Binop (Max, a, b)
let neg a = Unop (Neg, a)
let not_ a = Unop (Not, a)
let to_float a = Unop (To_float, a)
let to_int a = Unop (To_int, a)
let fabs a = Unop (Fabs, a)
let load a i = Load (a, i)
let deq q = Deq q
let is_control e = Is_control e
let ctrl_payload e = Ctrl_payload e
let call f args = Call (f, args)
let true_ = int 1

(* statements *)
let ( <-- ) x e = Assign (x, e)
let store a i e = Store (a, i, e)
let atomic_min a i e = Atomic_min (a, i, e)
let atomic_add a i e = Atomic_add (a, i, e)
let prefetch a i = Prefetch (a, i)
let enq q e = Enq (q, e)
let enq_ctrl q cv = Enq_ctrl (q, cv)
let enq_indexed qs sel e = Enq_indexed (qs, sel, e)
let if_ c t f = If (fresh_site (), c, t, f)
let when_ c t = If (fresh_site (), c, t, [])
let while_ c body = While (fresh_site (), c, body)
let loop_forever body = While (fresh_site (), true_, body)
let for_ x lo hi body = For (fresh_site (), x, lo, hi, body)
let break_ = Break
let exit_loops n = Exit_loops n
let barrier id = Barrier id

let stage ?(handlers = []) name body =
  { s_name = name; s_body = body; s_handlers = handlers }

let handler ~queue ~cv body = { h_queue = queue; h_cv_var = cv; h_body = body }

let queue ?(capacity = 24) id = { q_id = id; q_capacity = capacity }

let ra ~id ~in_q ~out_q ~array ~mode =
  { ra_id = id; ra_in = in_q; ra_out = out_q; ra_array = array; ra_mode = mode }

let int_array name len = { a_name = name; a_ty = Ety_int; a_len = len }
let float_array name len = { a_name = name; a_ty = Ety_float; a_len = len }

(* Canonicalize site ids at construction: identical DSL programs get
   identical branch PCs regardless of what was built before (see
   [Types.renumber_sites]). *)
let pipeline ?(queues = []) ?(ras = []) ?(arrays = []) ?(params = [])
    ?(call_costs = []) name stages =
  renumber_sites
    {
      p_name = name;
      p_stages = stages;
      p_queues = queues;
      p_ras = ras;
      p_arrays = arrays;
      p_params = params;
      p_call_costs = call_costs;
    }

(* Convenience: wrap a serial body as a single-stage pipeline. *)
let serial ?(arrays = []) ?(params = []) ?(call_costs = []) name body =
  pipeline ~arrays ~params ~call_costs name [ stage "serial" body ]
