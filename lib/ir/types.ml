(* Phloem intermediate representation.

   A structured, fine-grain IR for irregular loop nests. Unlike conventional
   IRs, it has first-class queue operations and control values (paper Sec. V:
   "Phloem's IR adds support for queue operations and conveying control flow
   changes"). A serial program is a pipeline with a single stage; the compiler
   passes transform it into a multi-stage pipeline. *)

type value =
  | Vint of int
  | Vfloat of float
  | Vctrl of int  (* in-band control value; payload identifies the event *)

type var = string
type array_id = string
type queue_id = int

type elem_ty = Ety_int | Ety_float

(* Binary operators; arithmetic dispatches on the runtime value kind, and
   comparisons/logic return Vint 0/1. *)
type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or
  | Band | Bor | Bxor | Shl | Shr
  | Min | Max

type unop = Neg | Not | To_int | To_float | Fabs

type expr =
  | Const of value
  | Var of var
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Load of array_id * expr
  | Deq of queue_id
      (* Dequeue from a queue. If the stage installs a handler on the queue
         and the front value is a control value, the handler runs instead of
         returning the value. *)
  | Is_control of expr
  | Ctrl_payload of expr
  | Call of string * expr list
      (* Opaque compute (e.g. work()); cost configured per callee. *)

(* Loops and conditionals carry a unique site id used as the branch PC for
   the branch predictor and for naming decoupling points. *)
type stmt =
  | Assign of var * expr
  | Store of array_id * expr * expr  (* Store (a, idx, v): a[idx] <- v *)
  | Atomic_min of array_id * expr * expr
      (* a[idx] <- min (a[idx], v), atomically; used by data-parallel code. *)
  | Atomic_add of array_id * expr * expr
  | Prefetch of array_id * expr
      (* Warm the cache without consuming the value (race-safe decoupling). *)
  | Enq of queue_id * expr
  | Enq_ctrl of queue_id * int
  | Enq_indexed of queue_id array * expr * expr
      (* Enq_indexed (qs, sel, v): enqueue v to qs.(eval sel); used by
         [#pragma distribute] to send work to the matching replica. *)
  | If of int * expr * stmt list * stmt list
  | While of int * expr * stmt list
  | For of int * var * expr * expr * stmt list
      (* For (id, v, lo, hi, body): v from lo inclusive to hi exclusive. *)
  | Break
  | Exit_loops of int
      (* Unwind n enclosing loop levels. Emitted by control-value handlers. *)
  | Barrier of int
      (* All live stages synchronize (used between program phases). *)
  | Seq_marker of string  (* no-op label; keeps provenance through passes *)

(* A control value handler: when a Deq is about to return a control value on
   the handler's queue, the handler body runs with [h_cv_var] bound to the
   control value itself (use Ctrl_payload to inspect it). Falling off the end of the body retries the dequeue
   (skipping the control value). [Exit_loops n] aborts the dequeue and
   unwinds n loop levels in the stage code. *)
type handler = {
  h_queue : queue_id;
  h_cv_var : var;
  h_body : stmt list;
}

type ra_mode = Ra_indirect | Ra_scan

(* A reference accelerator interposed between two queues: it consumes
   indices (or start/end pairs) from [ra_in], fetches from [ra_array], and
   delivers values in order into [ra_out]. Control values pass through. *)
type ra_config = {
  ra_id : int;
  ra_in : queue_id;
  ra_out : queue_id;
  ra_array : array_id;
  ra_mode : ra_mode;
}

type stage = {
  s_name : string;
  s_body : stmt list;
  s_handlers : handler list;
}

type array_decl = {
  a_name : array_id;
  a_ty : elem_ty;
  a_len : int;
}

type queue_decl = {
  q_id : queue_id;
  q_capacity : int;
}

type pipeline = {
  p_name : string;
  p_stages : stage list;
  p_queues : queue_decl list;
  p_ras : ra_config list;
  p_arrays : array_decl list;
  p_params : (var * value) list;
      (* Scalars visible to every stage (problem sizes, constants). *)
  p_call_costs : (string * int) list;
      (* Cost in ALU micro-ops of each opaque callee. *)
}

(* Site ids must be unique only within one pipeline, but they double as the
   branch-predictor PC, so their *values* are part of the timing model's
   input. The atomic counter below hands out build-time ids (safe to call
   from any domain); [renumber_sites] then canonicalizes a finished pipeline
   to a preorder numbering so that identical programs always carry identical
   site ids, no matter how many pipelines were built before them or on which
   domain. Without this, predictor-table aliasing — and therefore cycle
   counts — would drift with global build history. *)
let site_counter = Atomic.make 0
let fresh_site () = Atomic.fetch_and_add site_counter 1 + 1

let renumber_sites (p : pipeline) : pipeline =
  let next = ref 0 in
  let fresh () =
    incr next;
    !next
  in
  let rec stmt = function
    | If (_, c, t, f) ->
      let id = fresh () in
      If (id, c, block t, block f)
    | While (_, c, b) ->
      let id = fresh () in
      While (id, c, block b)
    | For (_, v, lo, hi, b) ->
      let id = fresh () in
      For (id, v, lo, hi, block b)
    | ( Assign _ | Store _ | Atomic_min _ | Atomic_add _ | Prefetch _ | Enq _
      | Enq_ctrl _ | Enq_indexed _ | Break | Exit_loops _ | Barrier _
      | Seq_marker _ ) as s ->
      s
  and block b = List.map stmt b in
  let handler h = { h with h_body = block h.h_body } in
  let stage st =
    { st with s_body = block st.s_body; s_handlers = List.map handler st.s_handlers }
  in
  { p with p_stages = List.map stage p.p_stages }

(* --- small accessors used across the compiler --- *)

let value_is_ctrl = function Vctrl _ -> true | Vint _ | Vfloat _ -> false

let value_to_string = function
  | Vint i -> string_of_int i
  | Vfloat f -> Printf.sprintf "%g" f
  | Vctrl c -> Printf.sprintf "CV(%d)" c

let elem_size = function Ety_int -> 4 | Ety_float -> 8

let binop_to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  | And -> "&&" | Or -> "||"
  | Band -> "&" | Bor -> "|" | Bxor -> "^" | Shl -> "<<" | Shr -> ">>"
  | Min -> "min" | Max -> "max"

let unop_to_string = function
  | Neg -> "-" | Not -> "!" | To_int -> "(int)" | To_float -> "(float)"
  | Fabs -> "fabs"
