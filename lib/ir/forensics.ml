(* Structured failure reports for stuck pipelines.

   Both execution paths — the functional Kahn-network interpreter (Interp)
   and the cycle-level timing replay (Pipette.Engine) — can wedge on the
   queue network: a consumer starves forever, a bounded queue backs up into
   its producer, a barrier group never completes, or forward progress decays
   without ever fully stopping. Instead of a bare exception string, both
   raise [Pipeline_failure] carrying this report: the failure kind
   (deadlock vs livelock vs budget exhaustion), every agent's blocked-on
   state, the cyclic wait chain over queues when one exists, a queue
   occupancy snapshot, and a plain-language diagnosis. *)

open Types

(* What an agent (pipeline stage thread or reference accelerator) was
   waiting on when the run was declared stuck. *)
type blocked_on =
  | On_queue_empty of queue_id (* dequeue starved: upstream never produced *)
  | On_queue_full of queue_id (* enqueue blocked: downstream never drained *)
  | On_barrier of int
  | On_memory (* outstanding memory access (timing path only) *)
  | On_frontend (* mispredict recovery / empty window (timing path only) *)
  | Killed (* disabled by fault injection *)
  | Running (* was still executing when the report was cut *)
  | Finished

type agent_report = {
  ag_id : int; (* thread index; RAs follow the stage threads *)
  ag_name : string;
  ag_blocked : blocked_on;
  ag_done_ops : int; (* ops retired (timing) or emitted (functional) *)
  ag_total_ops : int; (* trace length, or -1 when unknowable up front *)
}

type queue_snapshot = {
  qo_id : queue_id;
  qo_occupancy : int;
  qo_capacity : int; (* -1 = unbounded (functional path) *)
}

type kind =
  | Deadlock (* no agent can ever make progress again *)
  | Livelock (* cycles/ops still elapse, but nothing has retired for a window *)
  | Budget_exhausted (* progress was still being made when the budget ran out *)

type report = {
  fr_kind : kind;
  fr_pipeline : string;
  fr_at : int; (* cycle (timing path) or executed-op count (functional) *)
  fr_agents : agent_report list;
  fr_queues : queue_snapshot list;
  fr_wait_cycle : (agent_report * queue_id) list;
      (* the cyclic wait chain: each agent waits on the named queue, whose
         unblocker is the next agent in the list (wrapping around); empty
         when no cycle exists (e.g. budget exhaustion) *)
  fr_injected : int; (* faults injected before the trip; 0 on clean runs *)
  fr_diagnosis : string list;
}

exception Pipeline_failure of report

let kind_name = function
  | Deadlock -> "deadlock"
  | Livelock -> "livelock"
  | Budget_exhausted -> "budget-exhausted"

(* Distinct process exit codes for the CLIs: CI tells a wedged queue
   network (5/6) apart from an undersized cycle budget (7) and from a
   benchmark regression (4, see bench --compare). *)
let exit_code = function
  | Deadlock -> 5
  | Livelock -> 6
  | Budget_exhausted -> 7

let blocked_to_string = function
  | On_queue_empty q -> Printf.sprintf "dequeue from empty q%d" q
  | On_queue_full q -> Printf.sprintf "enqueue into full q%d" q
  | On_barrier b -> Printf.sprintf "barrier %d" b
  | On_memory -> "outstanding memory access"
  | On_frontend -> "frontend (branch redirect / empty window)"
  | Killed -> "killed by fault injection"
  | Running -> "still running"
  | Finished -> "finished"

(* ---------- static queue wiring ---------- *)

(* Producer/consumer agent sets per queue, scanned from the pipeline text.
   Agents are numbered stages-first, then RAs ([n_stages + ra index]), the
   same order both execution paths use. Handler bodies count: a handler can
   re-enqueue or dequeue on behalf of its stage. *)
let queue_users (p : pipeline) =
  let n_queues =
    List.fold_left (fun acc (q : queue_decl) -> max acc (q.q_id + 1)) 0 p.p_queues
  in
  let n_queues =
    List.fold_left
      (fun acc (r : ra_config) -> max acc (max r.ra_in r.ra_out + 1))
      n_queues p.p_ras
  in
  let producers = Array.make (max n_queues 1) [] in
  let consumers = Array.make (max n_queues 1) [] in
  let add tbl q agent = if not (List.mem agent tbl.(q)) then tbl.(q) <- agent :: tbl.(q) in
  let rec scan_expr agent e =
    match e with
    | Deq q -> add consumers q agent
    | Const _ | Var _ -> ()
    | Binop (_, a, b) ->
      scan_expr agent a;
      scan_expr agent b
    | Unop (_, a) | Is_control a | Ctrl_payload a -> scan_expr agent a
    | Load (_, i) -> scan_expr agent i
    | Call (_, args) -> List.iter (scan_expr agent) args
  in
  let rec scan_stmt agent s =
    match s with
    | Assign (_, e) | Prefetch (_, e) -> scan_expr agent e
    | Store (_, a, b) | Atomic_min (_, a, b) | Atomic_add (_, a, b) ->
      scan_expr agent a;
      scan_expr agent b
    | Enq (q, e) ->
      add producers q agent;
      scan_expr agent e
    | Enq_ctrl (q, _) -> add producers q agent
    | Enq_indexed (qs, a, b) ->
      Array.iter (fun q -> add producers q agent) qs;
      scan_expr agent a;
      scan_expr agent b
    | If (_, c, t, f) ->
      scan_expr agent c;
      List.iter (scan_stmt agent) t;
      List.iter (scan_stmt agent) f
    | While (_, c, b) ->
      scan_expr agent c;
      List.iter (scan_stmt agent) b
    | For (_, _, lo, hi, b) ->
      scan_expr agent lo;
      scan_expr agent hi;
      List.iter (scan_stmt agent) b
    | Break | Exit_loops _ | Barrier _ | Seq_marker _ -> ()
  in
  List.iteri
    (fun i (s : stage) ->
      List.iter (scan_stmt i) s.s_body;
      List.iter
        (fun (h : handler) ->
          (* a handler consumes control values arriving on its queue *)
          add consumers h.h_queue i;
          List.iter (scan_stmt i) h.h_body)
        s.s_handlers)
    p.p_stages;
  let n_stages = List.length p.p_stages in
  List.iteri
    (fun j (r : ra_config) ->
      add consumers r.ra_in (n_stages + j);
      add producers r.ra_out (n_stages + j))
    p.p_ras;
  (n_queues, producers, consumers)

let agent_names (p : pipeline) =
  Array.of_list
    (List.map (fun (s : stage) -> s.s_name) p.p_stages
    @ List.mapi (fun j (_ : ra_config) -> Printf.sprintf "ra%d" j) p.p_ras)

(* ---------- cyclic wait chain ---------- *)

(* The wait graph: a blocked agent's edges point at the agents that could
   unblock it — the producers of the queue it starves on, the consumers of
   the queue backing up into it, or the peers a barrier is missing. A cycle
   through *blocked* agents is a wedged dependency loop: every agent on it
   waits for another agent on it. [waiting] pairs each blocked agent with
   the queue it waits on ([-1] for barriers); [unblockers a] names the
   agents that could release [a] (the caller derives the direction from
   [a.ag_blocked]). Returns the cycle as (agent, queue) hops in chain
   order, or [] when no cycle exists among the blocked agents. *)
let find_wait_cycle ~waiting ~unblockers =
  let n = List.length waiting in
  if n = 0 then []
  else begin
    let agents = Array.of_list (List.map fst waiting) in
    let index_of = Hashtbl.create n in
    Array.iteri (fun i (a : agent_report) -> Hashtbl.replace index_of a.ag_id i) agents;
    let edges =
      Array.map
        (fun (a : agent_report) ->
          List.filter_map
            (fun (b : agent_report) -> Hashtbl.find_opt index_of b.ag_id)
            (unblockers a))
        agents
    in
    (* colors: 0 unvisited, 1 on stack, 2 done *)
    let color = Array.make n 0 in
    let parent = Array.make n (-1) in
    let cycle = ref None in
    let rec dfs i =
      if !cycle = None then begin
        color.(i) <- 1;
        List.iter
          (fun j ->
            if !cycle = None then
              if color.(j) = 1 then begin
                (* found: walk parents from i back to j *)
                let rec collect k acc =
                  if k = j then j :: acc else collect parent.(k) (k :: acc)
                in
                cycle := Some (collect i [])
              end
              else if color.(j) = 0 then begin
                parent.(j) <- i;
                dfs j
              end)
          edges.(i);
        color.(i) <- 2
      end
    in
    for i = 0 to n - 1 do
      if color.(i) = 0 && !cycle = None then dfs i
    done;
    match !cycle with
    | None -> []
    | Some idxs ->
      let qs = Array.of_list (List.map snd waiting) in
      List.map (fun i -> (agents.(i), qs.(i))) idxs
  end

(* ---------- rendering ---------- *)

let render (r : report) =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "==== pipeline failure: %s (%s) ====" r.fr_pipeline (kind_name r.fr_kind);
  line "at: %d %s" r.fr_at
    (match r.fr_kind with _ when r.fr_at >= 0 -> "(cycle / op count)" | _ -> "");
  if r.fr_injected > 0 then line "faults injected before the trip: %d" r.fr_injected;
  line "agents:";
  List.iter
    (fun a ->
      line "  %-16s %s%s" a.ag_name
        (blocked_to_string a.ag_blocked)
        (if a.ag_total_ops >= 0 then
           Printf.sprintf "  [%d/%d ops]" a.ag_done_ops a.ag_total_ops
         else Printf.sprintf "  [%d ops]" a.ag_done_ops))
    r.fr_agents;
  if r.fr_queues <> [] then begin
    line "queues:";
    List.iter
      (fun q ->
        line "  q%-3d occupancy %d%s" q.qo_id q.qo_occupancy
          (if q.qo_capacity >= 0 then Printf.sprintf " / capacity %d" q.qo_capacity
           else " (unbounded)"))
      r.fr_queues
  end;
  (match r.fr_wait_cycle with
  | [] -> ()
  | hops ->
    let chain =
      String.concat " -> "
        (List.map
           (fun (a, q) ->
             if q >= 0 then Printf.sprintf "%s -> q%d" a.ag_name q
             else Printf.sprintf "%s -> barrier" a.ag_name)
           hops)
    in
    line "cyclic wait chain: %s -> %s" chain
      (match hops with (a, _) :: _ -> a.ag_name | [] -> ""));
  List.iter (fun d -> line "diagnosis: %s" d) r.fr_diagnosis;
  Buffer.contents buf

let fail r = raise (Pipeline_failure r)
