(* Micro-op traces produced by the functional interpreter and consumed by the
   Pipette timing engine.

   Each thread (pipeline stage) gets a linear trace of executed micro-ops.
   Every op records its kind, up to two payload fields, and up to three
   intra-thread data dependencies (indices of earlier ops in the same trace).
   Cross-thread dependencies are expressed through queue sequence numbers:
   the i-th dequeue of queue q anywhere matches the i-th enqueue of q. *)

open Phloem_util

(* Op kinds (column [kind]). Payloads a/b:
     alu      : -
     branch   : a = site id (PC), b = 1 if taken else 0
     load     : a = byte address, b = access size
     store    : a = byte address, b = access size
     prefetch : a = byte address, b = access size
     enq      : a = queue id, b = sequence number
     deq      : a = queue id, b = sequence number
     barrier  : a = barrier id
     atomic   : a = byte address, b = access size *)
let op_alu = 0
let op_branch = 1
let op_load = 2
let op_store = 3
let op_prefetch = 4
let op_enq = 5
let op_deq = 6
let op_barrier = 7
let op_atomic = 8

let no_dep = -1

(* Plain-array snapshot of a finished thread trace. The timing engine indexes
   trace columns on its hottest paths; replaying through Vec's bounds checks
   (and re-copying the columns on every replay of a memoized trace) is pure
   overhead, so a finished trace is packed once and the arrays reused. *)
type packed = {
  pk_kind : int array;
  pk_pa : int array;
  pk_pb : int array;
  pk_dep1 : int array;
  pk_dep2 : int array;
  pk_dep3 : int array;
}

type thread_trace = {
  kind : Vec.Int_vec.t;
  pa : Vec.Int_vec.t;
  pb : Vec.Int_vec.t;
  dep1 : Vec.Int_vec.t;
  dep2 : Vec.Int_vec.t;
  dep3 : Vec.Int_vec.t;
  mutable packed : packed option;
      (* filled by [pack] after the interpreter finishes; never while ops
         are still being appended *)
}

let create_thread () =
  {
    kind = Vec.Int_vec.create ~capacity:1024 ();
    pa = Vec.Int_vec.create ~capacity:1024 ();
    pb = Vec.Int_vec.create ~capacity:1024 ();
    dep1 = Vec.Int_vec.create ~capacity:1024 ();
    dep2 = Vec.Int_vec.create ~capacity:1024 ();
    dep3 = Vec.Int_vec.create ~capacity:1024 ();
    packed = None;
  }

(* Snapshot (and cache) the columns of a finished thread trace. Call only
   once no more ops will be appended. A trace that is about to be shared
   across domains (the harness memo cache) must be packed *before* it is
   published, so concurrent replays only ever read the cached arrays. *)
let pack t =
  match t.packed with
  | Some p -> p
  | None ->
    let p =
      {
        pk_kind = Vec.Int_vec.to_array t.kind;
        pk_pa = Vec.Int_vec.to_array t.pa;
        pk_pb = Vec.Int_vec.to_array t.pb;
        pk_dep1 = Vec.Int_vec.to_array t.dep1;
        pk_dep2 = Vec.Int_vec.to_array t.dep2;
        pk_dep3 = Vec.Int_vec.to_array t.dep3;
      }
    in
    t.packed <- Some p;
    p

let length t = Vec.Int_vec.length t.kind

(* Append an op; returns its index (the token consumers depend on). *)
let push t ~kind ~pa ~pb ~dep1 ~dep2 ~dep3 =
  let idx = Vec.Int_vec.length t.kind in
  Vec.Int_vec.push t.kind kind;
  Vec.Int_vec.push t.pa pa;
  Vec.Int_vec.push t.pb pb;
  Vec.Int_vec.push t.dep1 dep1;
  Vec.Int_vec.push t.dep2 dep2;
  Vec.Int_vec.push t.dep3 dep3;
  idx

(* One reference-accelerator event: the RA consumed input sequence [in_seq]
   from its input queue and will deliver output sequence [out_seq] into its
   output queue. [addr] < 0 means a pass-through (control value or scan
   boundary) with no memory access. *)
type ra_trace = {
  rt_in_seq : Vec.Int_vec.t;
  rt_out_seq : Vec.Int_vec.t;
  rt_addr : Vec.Int_vec.t;
  rt_size : Vec.Int_vec.t;
}

let create_ra () =
  {
    rt_in_seq = Vec.Int_vec.create ~capacity:256 ();
    rt_out_seq = Vec.Int_vec.create ~capacity:256 ();
    rt_addr = Vec.Int_vec.create ~capacity:256 ();
    rt_size = Vec.Int_vec.create ~capacity:256 ();
  }

let ra_length r = Vec.Int_vec.length r.rt_in_seq

let ra_push r ~in_seq ~out_seq ~addr ~size =
  Vec.Int_vec.push r.rt_in_seq in_seq;
  Vec.Int_vec.push r.rt_out_seq out_seq;
  Vec.Int_vec.push r.rt_addr addr;
  Vec.Int_vec.push r.rt_size size

(* A full program trace: one thread trace per stage (indexed by stage
   position), one RA trace per reference accelerator, and the enqueue
   producer map needed to resolve cross-thread queue dependencies:
   [enq_thread.(q)] gives, for each sequence number, which thread (or RA,
   encoded as [-1 - ra_index]) produced it. *)
type t = {
  threads : thread_trace array;
  ras : ra_trace array;
  n_queues : int;
  mutable total_ops : int;
}

let create ~n_threads ~n_ras ~n_queues =
  {
    threads = Array.init n_threads (fun _ -> create_thread ());
    ras = Array.init n_ras (fun _ -> create_ra ());
    n_queues;
    total_ops = 0;
  }

let op_count t =
  Array.fold_left (fun acc th -> acc + length th) 0 t.threads

let instruction_count t = op_count t
