(* Replicated pipelines for the multicore evaluation (paper Sec. IV-C and
   Fig. 14): the pipeline is cloned once per core, each replica working on a
   slice of the fringe; [#pragma distribute] routes each neighbor to the
   replica that owns it (low bits of the vertex id), so distance/label
   updates are partitioned and need no synchronization. Rounds are closed
   with barriers and a leader-computed global fringe size.

   BFS and CC are built from a shared skeleton (they differ in the payload
   and the update rule). Radii replicates the 2-stage manual pipeline with
   private per-replica state via Replicate.apply (samples are partitioned).
   PRD partitions the scatter phase and distributes neighbor-sum updates. *)

open Phloem_ir.Types
open Phloem_ir.Builder
open Workload

let cv_end = 1

(* --- shared BFS/CC skeleton ---
   Replica k (3 threads + 2 RAs):
     head_k:   slice of the shared fringe -> (v, v+1) -> nodes RA -> edges RA
     visit_k:  prefetch target data, route (ngh [, payload]) to owner replica
     update_k: apply updates to its partition, append to its fringe section
   Queue ids are replica-local: base + k*stride. *)

type flavor = Bfs_flavor | Cc_flavor

let graph_replicated flavor (g : Phloem_graph.Csr.t) ~replicas =
  let n = g.Phloem_graph.Csr.n in
  let stride = 8 in
  let q k i = (k * stride) + i in
  (* queues per replica: 0 ra_nodes_in, 1 ra chain, 2 ra_edges out, 3 update in *)
  let head k =
    let body_per_vertex =
      match flavor with
      | Bfs_flavor ->
        [
          "vx" <-- load "cur_fringe" (v "i");
          enq (q k 0) (v "vx");
          enq (q k 0) (v "vx" +! int 1);
        ]
      | Cc_flavor ->
        [
          "vx" <-- load "cur_fringe" (v "i");
          "lv" <-- load "labels" (v "vx");
          "es" <-- load "nodes" (v "vx");
          "ee" <-- load "nodes" (v "vx" +! int 1);
          enq (q k 1) (v "es");
          enq (q k 1) (v "ee");
          for_ "e" (v "es") (v "ee") [ enq (q k 4) (v "lv") ];
        ]
    in
    let cv_q = match flavor with Bfs_flavor -> q k 0 | Cc_flavor -> q k 1 in
    stage
      (Printf.sprintf "head_r%d" k)
      [
        "rounds" <-- int 0;
        loop_forever
          [
            barrier 301;
            "cur_size" <-- load "shared" (int 0);
            when_ (v "cur_size" ==! int 0) [ break_ ];
            "rounds" <-- (v "rounds" +! int 1);
            "lo" <-- (int k *! v "cur_size" /! int replicas);
            "hi" <-- ((int k +! int 1) *! v "cur_size" /! int replicas);
            for_ "i" (v "lo") (v "hi") body_per_vertex;
            enq_ctrl cv_q cv_end;
            barrier 302;
          ];
      ]
  in
  let visit k =
    (* routes each neighbor to its owner replica's update queue *)
    let owners = Array.init replicas (fun k' -> q k' 3) in
    let route =
      match flavor with
      | Bfs_flavor ->
        [
          prefetch "dist" (v "x");
          enq_indexed owners (v "x" %! int replicas) (v "x");
        ]
      | Cc_flavor ->
        [
          "lvv" <-- deq (q k 4);
          prefetch "labels" (v "x");
          enq_indexed owners (v "x" %! int replicas) ((v "x" *! v "n") +! v "lvv");
        ]
    in
    stage
      (Printf.sprintf "visit_r%d" k)
      [
        loop_forever
          [
            barrier 301;
            "cur_size" <-- load "shared" (int 0);
            when_ (v "cur_size" ==! int 0) [ break_ ];
            loop_forever
              [
                "x" <-- deq (q k 2);
                if_ (is_control (v "x"))
                  (Array.to_list owners |> List.map (fun qd -> enq_ctrl qd cv_end)
                  |> fun fan -> fan @ [ break_ ])
                  route;
              ];
            barrier 302;
          ];
      ]
  in
  let update k =
    (* one control value arrives per producer replica each round *)
    let apply =
      match flavor with
      | Bfs_flavor ->
        [
          "od" <-- load "dist" (v "x");
          when_ (v "rounds" <! v "od")
            [
              store "dist" (v "x") (v "rounds");
              store "next_fringe" ((int k *! v "fs") +! v "cnt") (v "x");
              "cnt" <-- (v "cnt" +! int 1);
            ];
        ]
      | Cc_flavor ->
        [
          "lvv" <-- (v "x" %! v "n");
          "x" <-- (v "x" /! v "n");
          "lngh" <-- load "labels" (v "x");
          when_ (v "lvv" <! v "lngh")
            [
              store "labels" (v "x") (v "lvv");
              store "next_fringe" ((int k *! v "fs") +! v "cnt") (v "x");
              "cnt" <-- (v "cnt" +! int 1);
            ];
        ]
    in
    let compact =
      if k = 0 then
        [
          "total" <-- int 0;
          for_ "tt" (int 0) (int replicas)
            [
              "c" <-- load "counts" (v "tt");
              for_ "j" (int 0) (v "c")
                [
                  store "cur_fringe" (v "total")
                    (load "next_fringe" ((v "tt" *! v "fs") +! v "j"));
                  "total" <-- (v "total" +! int 1);
                ];
            ];
          store "shared" (int 0) (v "total");
        ]
      else []
    in
    stage
      (Printf.sprintf "update_r%d" k)
      [
        "rounds" <-- int 0;
        loop_forever
          ([
             barrier 301;
             "cur_size" <-- load "shared" (int 0);
             when_ (v "cur_size" ==! int 0) [ break_ ];
             "rounds" <-- (v "rounds" +! int 1);
             "cnt" <-- int 0;
             "cvs" <-- int 0;
             loop_forever
               [
                 "x" <-- deq (q k 3);
                 if_ (is_control (v "x"))
                   [
                     "cvs" <-- (v "cvs" +! int 1);
                     when_ (v "cvs" ==! int replicas) [ break_ ];
                   ]
                   apply;
               ];
             store "counts" (int k) (v "cnt");
             barrier 302;
           ]
          @ compact);
      ]
  in
  let queues =
    List.concat
      (List.init replicas (fun k -> List.init stride (fun i -> queue (q k i))))
  in
  let ras =
    List.concat
      (List.init replicas (fun k ->
           match flavor with
           | Bfs_flavor ->
             [
               ra ~id:(2 * k) ~in_q:(q k 0) ~out_q:(q k 1) ~array:"nodes"
                 ~mode:Ra_indirect;
               ra ~id:((2 * k) + 1) ~in_q:(q k 1) ~out_q:(q k 2) ~array:"edges"
                 ~mode:Ra_scan;
             ]
           | Cc_flavor ->
             [
               ra ~id:k ~in_q:(q k 1) ~out_q:(q k 2) ~array:"edges" ~mode:Ra_scan;
             ]))
  in
  let stages = List.concat (List.init replicas (fun k -> [ head k; visit k; update k ])) in
  let name, extra_arrays, init_inputs =
    match flavor with
    | Bfs_flavor ->
      let dist = Array.make n Phloem_graph.Algos.int_max in
      dist.(0) <- 0;
      ( "bfs_replicated",
        [ int_array "dist" n ],
        [
          ("dist", vint dist);
          ("cur_fringe", vint (Array.make (n + g.Phloem_graph.Csr.m) 0));
          ("shared", vint [| 1 |]);
        ] )
    | Cc_flavor ->
      ( "cc_replicated",
        [ int_array "labels" n ],
        [
          ("labels", vint (Array.init n (fun i -> i)));
          ( "cur_fringe",
            vint
              (Array.init (n + g.Phloem_graph.Csr.m) (fun i -> if i < n then i else 0)) );
          ("shared", vint [| n |]);
        ] )
  in
  let p =
    pipeline name
      ~arrays:
        ([
           int_array "nodes" (n + 1);
           int_array "edges" (max g.Phloem_graph.Csr.m 1);
           int_array "cur_fringe" (n + g.Phloem_graph.Csr.m);
           int_array "next_fringe" (replicas * (n + g.Phloem_graph.Csr.m));
           int_array "counts" replicas;
           int_array "shared" 1;
         ]
        @ extra_arrays)
      ~params:
        [ ("n", Vint n); ("fs", Vint (n + g.Phloem_graph.Csr.m)) ]
      ~queues ~ras stages
  in
  let inputs =
    [
      ("nodes", vint g.Phloem_graph.Csr.offsets);
      ("edges", vint g.Phloem_graph.Csr.edges);
    ]
    @ init_inputs
  in
  (* thread -> core: replica k on core k *)
  let thread_core = Array.init (3 * replicas) (fun i -> i / 3) in
  (p, inputs, thread_core)

(* BFS replicated: for BFS, cur_fringe must start with just the root. *)
let bfs (g : Phloem_graph.Csr.t) ~replicas =
  let p, inputs, tc = graph_replicated Bfs_flavor g ~replicas in
  let inputs =
    List.map
      (fun (name, a) ->
        if name = "cur_fringe" then (
          let a = Array.copy a in
          a.(0) <- Vint 0;
          (name, a))
        else (name, a))
      inputs
  in
  (p, inputs, tc)

let cc (g : Phloem_graph.Csr.t) ~replicas = graph_replicated Cc_flavor g ~replicas

(* Radii: replicate the 2-stage manual pipeline; each replica searches its
   own share of the samples with private BFS state. *)
let radii (g : Phloem_graph.Csr.t) ~replicas =
  let base, base_inputs = Radii.manual g in
  let per = max 1 (Radii.samples / replicas) in
  let spec =
    {
      Phloem.Replicate.r_replicas = replicas;
      r_private_arrays =
        [ "roots"; "dist"; "radii"; "cur_fringe"; "next_fringe"; "out" ];
      r_private_params = [ ("samples", fun _ -> Vint per) ];
      r_distribute = None;
    }
  in
  let manager = Phloem.Pass.Manager.create [ Phloem.Passes.replicate spec ] in
  let p, _ =
    Phloem.Pass.Manager.run manager
      { Phloem.Pass.flags = Phloem.Pass.all_passes; cuts = [] }
      base
  in
  (* rebind the private arrays per replica: roots are partitioned *)
  let all_roots = Radii.roots g in
  let inputs =
    List.filter
      (fun (name, _) ->
        not
          (List.mem name spec.Phloem.Replicate.r_private_arrays))
      base_inputs
    @ List.concat
        (List.init replicas (fun k ->
             let slice = Array.make Radii.samples 0 in
             Array.blit all_roots (k * per) slice 0 per;
             [ (Phloem.Replicate.private_name "roots" k, vint slice) ]))
  in
  let tc = Phloem.Replicate.thread_core_map base ~replicas ~n_cores:4 in
  (p, inputs, tc, per)

(* Validation for the replicated Radii: the per-replica radii combine by
   elementwise max. *)
let radii_combined (res : Phloem_ir.Interp.result) ~replicas ~n =
  let out = Array.make n 0 in
  for k = 0 to replicas - 1 do
    match
      List.assoc_opt
        (Phloem.Replicate.private_name "radii" k)
        res.Phloem_ir.Interp.r_arrays
    with
    | Some a ->
      Array.iteri
        (fun i x -> match x with Vint d -> if d > out.(i) then out.(i) <- d | _ -> ())
        a
    | None -> ()
  done;
  out

(* PRD: each replica is a head / route / apply pipeline on a fringe slice;
   neighbor-sum updates are distributed to the owner replica so ngh_sum
   partitions stay private (no atomics). Routing and applying live in
   separate threads so the all-to-all exchange cannot deadlock on bounded
   queues. *)
let prd (g : Phloem_graph.Csr.t) ~replicas =
  let n = g.Phloem_graph.Csr.n in
  let stride = 6 in
  let q k i = (k * stride) + i in
  (* per replica: 0 scan_in, 1 scan_out, 2 inbox(ngh), 3 contrib, 5 inbox(contrib) *)
  let head k =
    stage
      (Printf.sprintf "head_r%d" k)
      [
        for_ "it" (int 0) (v "iters")
          [
            barrier 311;
            "cur_size" <-- load "shared" (int 0);
            "lo" <-- (int k *! v "cur_size" /! int replicas);
            "hi" <-- ((int k +! int 1) *! v "cur_size" /! int replicas);
            for_ "i" (v "lo") (v "hi")
              [
                "vx" <-- load "cur_fringe" (v "i");
                "es" <-- load "nodes" (v "vx");
                "ee" <-- load "nodes" (v "vx" +! int 1);
                "deg" <-- (v "ee" -! v "es");
                when_ (v "deg" >! int 0)
                  [
                    "contrib" <-- (load "delta" (v "vx") /! to_float (v "deg"));
                    enq (q k 0) (v "es");
                    enq (q k 0) (v "ee");
                    for_ "e" (v "es") (v "ee") [ enq (q k 3) (v "contrib") ];
                  ];
              ];
            enq_ctrl (q k 0) cv_end;
            barrier 312;
            barrier 313;
          ];
      ]
  in
  let route k =
    let inboxes = Array.init replicas (fun j -> q j 2) in
    let cboxes = Array.init replicas (fun j -> q j 5) in
    stage
      (Printf.sprintf "route_r%d" k)
      [
        for_ "it" (int 0) (v "iters")
          [
            barrier 311;
            loop_forever
              [
                "x" <-- deq (q k 1);
                if_ (is_control (v "x"))
                  (Array.to_list inboxes
                  |> List.map (fun qd -> enq_ctrl qd cv_end)
                  |> fun fan -> fan @ [ break_ ])
                  [
                    "cb" <-- deq (q k 3);
                    "sel" <-- (v "x" %! int replicas);
                    enq_indexed inboxes (v "sel") (v "x");
                    enq_indexed cboxes (v "sel") (v "cb");
                  ];
              ];
            barrier 312;
            barrier 313;
          ];
      ]
  in
  let apply k =
    let compact =
      if k = 0 then
        [
          "total" <-- int 0;
          for_ "tt" (int 0) (int replicas)
            [
              "c" <-- load "counts" (v "tt");
              for_ "j" (int 0) (v "c")
                [
                  store "cur_fringe" (v "total")
                    (load "next_fringe" ((v "tt" *! v "n") +! v "j"));
                  "total" <-- (v "total" +! int 1);
                ];
            ];
          store "shared" (int 0) (v "total");
        ]
      else []
    in
    stage
      (Printf.sprintf "apply_r%d" k)
      [
        for_ "it" (int 0) (v "iters")
          ([
             barrier 311;
             "cvs" <-- int 0;
             loop_forever
               [
                 "y" <-- deq (q k 2);
                 if_ (is_control (v "y"))
                   [
                     "cvs" <-- (v "cvs" +! int 1);
                     when_ (v "cvs" ==! int replicas) [ break_ ];
                   ]
                   [
                     "cb2" <-- deq (q k 5);
                     store "ngh_sum" (v "y") (load "ngh_sum" (v "y") +! v "cb2");
                   ];
               ];
             barrier 312;
             "ulo" <-- (int k *! v "n" /! int replicas);
             "uhi" <-- ((int k +! int 1) *! v "n" /! int replicas);
             "cnt" <-- int 0;
             for_ "u" (v "ulo") (v "uhi")
               [
                 "d2" <-- (v "damping" *! load "ngh_sum" (v "u"));
                 store "delta" (v "u") (v "d2");
                 store "ngh_sum" (v "u") (flt 0.0);
                 when_ (fabs (v "d2") >! v "eps")
                   [
                     store "rank" (v "u") (load "rank" (v "u") +! v "d2");
                     store "next_fringe" ((int k *! v "n") +! v "cnt") (v "u");
                     "cnt" <-- (v "cnt" +! int 1);
                   ];
               ];
             store "counts" (int k) (v "cnt");
             barrier 313;
           ]
          @ compact);
      ]
  in
  let stages =
    List.concat (List.init replicas (fun k -> [ head k; route k; apply k ]))
  in
  let queues =
    List.concat (List.init replicas (fun k -> List.init stride (fun i -> queue (q k i))))
  in
  let ras =
    List.init replicas (fun k ->
        ra ~id:k ~in_q:(q k 0) ~out_q:(q k 1) ~array:"edges" ~mode:Ra_scan)
  in
  let p =
    pipeline "prd_replicated"
      ~arrays:
        [
          int_array "nodes" (n + 1);
          int_array "edges" (max g.Phloem_graph.Csr.m 1);
          float_array "rank" n;
          float_array "delta" n;
          float_array "ngh_sum" n;
          int_array "cur_fringe" n;
          int_array "next_fringe" (replicas * n);
          int_array "counts" replicas;
          int_array "shared" 1;
        ]
      ~params:(Prd.scalars g)
      ~queues ~ras stages
  in
  let inputs =
    List.filter
      (fun (name, _) -> name <> "out" && name <> "next_fringe")
      (Prd.base_arrays g)
    @ [ ("shared", vint [| n |]) ]
  in
  let tc = Array.init (3 * replicas) (fun i -> i / 3) in
  (p, inputs, tc)
