(** Run-to-run benchmark comparison: diff two evaluation JSON reports (the
    format of {!Experiments.write_json_report}) metric by metric and flag
    changes beyond per-metric thresholds as regressions. Backs
    [bench/main.exe --compare OLD NEW] and the CI baseline check. *)

type thresholds = {
  th_cycles : float;
      (** cycle-count increase beyond this fraction is a regression *)
  th_speedup : float;
      (** speedup decrease beyond this fraction is a regression *)
  th_energy : float;
      (** total-energy increase beyond this fraction is a regression *)
  th_ops_per_sec : float;
      (** simulated-ops-per-wall-second decrease beyond this fraction is a
          regression (wall-clock reports only) *)
}

val default_thresholds : thresholds
(** 5% cycles, 5% speedup, 10% energy, 10% throughput. *)

type delta = {
  d_key : string;  (** ["benchmark/input/variant/metric"] *)
  d_old : float;
  d_new : float;
  d_change : float;  (** relative: [(new - old) / old] *)
  d_regressed : bool;
}

type outcome = {
  o_deltas : delta list;  (** every metric present in both reports *)
  o_regressions : delta list;  (** the subset beyond its threshold *)
  o_missing : string list;  (** series in OLD but absent from NEW *)
  o_added : string list;  (** series in NEW but absent from OLD *)
  o_errored : string list;
      (** series in OLD whose absence from NEW is explained by a failure
          record in NEW's ["errors"] array (a deadlocked variant, a failed
          cell) — reported separately from silent omissions *)
}

val regressed : outcome -> bool

val compare_json :
  ?thresholds:thresholds ->
  old_j:Pipette.Telemetry.Json.t ->
  new_j:Pipette.Telemetry.Json.t ->
  unit ->
  outcome
(** Metrics compared per [benchmark/input/variant] series: [cycles],
    [speedup], and [energy_nj.total]. A wall-clock report (detected by its
    ["serial_wall_s"] key) flattens to a synthetic ["wall/sweep"] series
    carrying [ops_per_sec], [speedup], and the informational
    [serial_wall_s]. Series or metrics present in only one report are
    listed, not errors — a baseline written by an older build still diffs
    on whatever it shares. *)

val compare_files :
  ?thresholds:thresholds -> old_file:string -> new_file:string -> unit -> outcome
(** @raise Pipette.Telemetry.Json.Parse_error on malformed input
    @raise Sys_error if a file cannot be read *)

val render : ?all:bool -> outcome -> string
(** Table of changed series (all series when [all]), plus missing/added
    lists and a summary line. *)
