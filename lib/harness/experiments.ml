(* Reproduction of every table and figure in the paper's evaluation
   (Sec. VI-VII). Each function prints a plain-text rendering of the
   corresponding figure's data. [scale] shrinks the synthetic inputs
   uniformly so the full suite runs in minutes. *)

open Phloem_workloads
module Table = Phloem_util.Table
module Stats = Phloem_util.Stats

let fmt = Table.fmt_float

let default_scale () =
  match Sys.getenv_opt "PHLOEM_SCALE" with
  | Some s -> (try float_of_string s with _ -> 1.0)
  | None -> 1.0

let section title =
  Printf.printf "\n==== %s ====\n%!" title

(* --- inputs --- *)

let graph_of name ~scale = Lazy.force (Phloem_graph.Inputs.find ~scale name).Phloem_graph.Inputs.graph

let test_graphs ~scale =
  List.map
    (fun i -> (i.Phloem_graph.Inputs.name, Lazy.force i.Phloem_graph.Inputs.graph))
    (Phloem_graph.Inputs.test ~scale ())

let training_graphs ~scale =
  List.map
    (fun i -> (i.Phloem_graph.Inputs.name, Lazy.force i.Phloem_graph.Inputs.graph))
    (Phloem_graph.Inputs.training ~scale ())

(* SpMM is O(rows x cols) output-stationary: scale its matrices down hard. *)
let spmm_scale scale = 0.12 *. scale

let spmm_pairs ~scale kind =
  let inputs =
    match kind with
    | `Test -> Phloem_sparse.Inputs.spmm_test ~scale:(spmm_scale scale) ()
    | `Training -> Phloem_sparse.Inputs.spmm_training ~scale:(spmm_scale scale) ()
  in
  List.map
    (fun i ->
      let a = Lazy.force i.Phloem_sparse.Inputs.matrix in
      (* B^T: reuse the same generator family with a shifted seed via transpose *)
      (i.Phloem_sparse.Inputs.name, a, Phloem_sparse.Csr_matrix.transpose a))
    inputs

let taco_matrices ~scale =
  List.map
    (fun i -> (i.Phloem_sparse.Inputs.name, Lazy.force i.Phloem_sparse.Inputs.matrix))
    (Phloem_sparse.Inputs.taco_test ~scale:(0.35 *. scale) ())

(* --- tables --- *)

let table3 () =
  section "Table III: configuration of the evaluated system";
  List.iter print_endline (Pipette.Config.table3_lines Pipette.Config.four_cores)

let table4 ?(scale = default_scale ()) () =
  section "Table IV: input graphs (synthetic substitutes)";
  print_string (Phloem_graph.Inputs.table4 ~scale ())

let table5 ?(scale = default_scale ()) () =
  section "Table V: input matrices (synthetic substitutes)";
  print_string (Phloem_sparse.Inputs.table5 ~scale:(0.35 *. scale) ())

(* --- Fig. 6: BFS speedup as passes are added --- *)

let fig6 ?(scale = default_scale ()) () =
  section "Fig. 6: BFS speedup over serial with each added pass";
  let g = graph_of "USA-road-d-USA" ~scale in
  let b = Bfs.bind g in
  let serial_p, inputs = b.Workload.b_serial in
  let sr = Pipette.Sim.run ~inputs serial_p in
  let sc = Pipette.Sim.cycles sr in
  let open Phloem.Decouple in
  let variants =
    [
      ("Serial", None);
      ("Q (queues only)", Some queues_only);
      ("Q+R (+recompute)", Some { queues_only with f_recompute = true });
      ("Q+R+CV (+control values)", Some { queues_only with f_recompute = true; f_cv = true });
      ( "Q+R+CV+DCE (+inter-stage DCE)",
        Some { queues_only with f_recompute = true; f_cv = true; f_dce = true } );
      ( "Q+R+CV+DCE+CH (+handlers)",
        Some
          {
            queues_only with
            f_recompute = true;
            f_cv = true;
            f_dce = true;
            f_handlers = true;
          } );
      ("All (+reference accelerators)", Some all_passes);
      ("Manually pipelined", None);
    ]
  in
  let t = Table.create [ "Variant"; "Cycles"; "Speedup" ] in
  List.iter
    (fun (name, flags) ->
      (* A variant that fails to compile *or* to simulate (e.g. a
         Pipeline_failure under an aggressive ladder rung) renders as "-"
         instead of aborting the figure. *)
      let cycles =
        match (name, flags) with
        | "Serial", _ -> Some sc
        | "Manually pipelined", _ -> (
          match
            Option.map
              (fun mp -> Pipette.Sim.cycles (Pipette.Sim.run ~inputs:(snd mp) (fst mp)))
              b.Workload.b_manual
          with
          | c -> c
          | exception _ -> None)
        | _, Some flags -> (
          match
            let p = Phloem.Compile.static_flow ~flags ~stages:4 serial_p in
            Pipette.Sim.cycles (Pipette.Sim.run ~inputs p)
          with
          | c -> Some c
          | exception _ -> None)
        | _, None -> None
      in
      match cycles with
      | Some c ->
        Table.add_row t [ name; string_of_int c; fmt (float_of_int sc /. float_of_int c) ^ "x" ]
      | None -> Table.add_row t [ name; "-"; "-" ])
    variants;
  print_string (Table.render t)

(* --- Fig. 9/10/11: graph + SpMM benchmarks, all variants --- *)

(* A whole (benchmark x input) cell that failed before producing any
   measurement — typically the serial baseline itself (per-variant failures
   live inside [Runner.all_runs.failures] instead). *)
type cell_error = { ce_message : string; ce_backtrace : string }

type bench_runs = {
  br_bench : string;
  br_input : string;
  br_runs : (Runner.all_runs, cell_error) result;
}

(* The cells of a sweep that did produce measurements. *)
let ok_runs (runs : bench_runs list) : Runner.all_runs list =
  List.filter_map
    (fun r -> match r.br_runs with Ok a -> Some a | Error _ -> None)
    runs

let gmean_opt = function [] -> None | xs -> Some (Stats.gmean xs)
let fmt_opt = function Some v -> fmt v | None -> "-"

let graph_bound name g =
  match name with
  | "BFS" -> Bfs.bind g
  | "CC" -> Cc.bind g
  | "PRD" -> Prd.bind g
  | "Radii" -> Radii.bind g
  | _ -> invalid_arg name

let pgo_recipe ?pool ~scale bench =
  let training = training_graphs ~scale in
  match bench with
  | "SpMM" ->
    let bounds =
      List.map (fun (_, a, bt) -> Spmm.bind a bt) (spmm_pairs ~scale `Training)
    in
    (try Some (Runner.pgo_cuts ?pool bounds).Phloem.Search.best with _ -> None)
  | _ ->
    let bounds = List.map (fun (_, g) -> graph_bound bench g) training in
    (try Some (Runner.pgo_cuts ?pool bounds).Phloem.Search.best with _ -> None)

(* Progress lines route through the structured diagnostics sink at Info so a
   caller can silence or capture them; [run_all_experiments] raises the
   threshold so interactive runs still show them. *)
let progress fmt = Phloem_util.Log.info ~component:"harness" fmt

(* The per-input jobs of one benchmark are independent: fan them out over
   the pool. Inputs are forced in the submitting domain (Lazy is not
   domain-safe), [Pool.map_list] preserves submission order, and every job
   is a deterministic function of its bound — so the pooled collection is
   byte-identical to the serial one. [only_inputs] restricts the sweep to
   the named inputs (smoke tests, CI); [pgo] can be disabled to skip the
   profile-guided search. *)
let run_benchmark ?pool ?only_inputs ?(pgo = true) ?faults ?retries ~scale bench :
    bench_runs list =
  let keep name =
    match only_inputs with None -> true | Some names -> List.mem name names
  in
  let pgo =
    if pgo then begin
      progress "[fig9-11] %s: profile-guided search..." bench;
      pgo_recipe ?pool ~scale bench
    end
    else None
  in
  let inputs : (string * (unit -> Workload.bound)) list =
    match bench with
    | "SpMM" ->
      List.filter_map
        (fun (name, a, bt) ->
          if keep name then Some (name, fun () -> Spmm.bind a bt) else None)
        (spmm_pairs ~scale `Test)
    | _ ->
      List.filter_map
        (fun (name, g) ->
          if keep name then Some (name, fun () -> graph_bound bench g) else None)
        (test_graphs ~scale)
  in
  let pmap f l =
    match pool with
    | Some p -> Phloem_util.Pool.map_list p f l
    | None -> List.map f l
  in
  pmap
    (fun (name, bind) ->
      progress "[fig9-11] %s on %s" bench name;
      (* Degrade gracefully: a cell that fails outright (deadlocked serial
         baseline, compile rejection before any variant ran) becomes an
         [Error] record, and the sweep's remaining cells still run. *)
      let runs =
        match
          let b = bind () in
          Runner.run_all ?pgo_cuts:pgo ?pool ?faults ?retries b
        with
        | a -> Ok a
        | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          Phloem_util.Log.warn ~component:"harness" "[fig9-11] %s on %s failed: %s"
            bench name (Printexc.to_string e);
          Error
            {
              ce_message = Printexc.to_string e;
              ce_backtrace = Printexc.raw_backtrace_to_string bt;
            }
      in
      { br_bench = bench; br_input = name; br_runs = runs })
    inputs

let benches = [ "BFS"; "CC"; "PRD"; "Radii"; "SpMM" ]

let collect ?pool ?(benches = benches) ?only_inputs ?pgo ?faults ?retries
    ?(scale = default_scale ()) () =
  List.map
    (fun b -> (b, run_benchmark ?pool ?only_inputs ?pgo ?faults ?retries ~scale b))
    benches

let gmean_of sel (runs : bench_runs list) =
  gmean_opt (List.filter_map sel (ok_runs runs))

(* Machine-readable form of a full collection (the Fig. 9-11 data): one
   entry per benchmark, one run record per input and variant. Failed cells
   become an "error" object in place of "runs", and every failure — whole
   cells and single variants alike — is aggregated into the top-level
   "errors" array (variant "*" marks a whole cell). *)
let json_of_collection (all : (string * bench_runs list) list) :
    Pipette.Telemetry.Json.t =
  let open Pipette.Telemetry.Json in
  let errors =
    List.concat_map
      (fun (bench, runs) ->
        List.concat_map
          (fun r ->
            let tag rest =
              Obj (("benchmark", Str bench) :: ("input", Str r.br_input) :: rest)
            in
            match r.br_runs with
            | Error ce ->
              [
                tag
                  [
                    ("variant", Str "*");
                    ("kind", Str "exception");
                    ("message", Str ce.ce_message);
                    ("backtrace", Str ce.ce_backtrace);
                  ];
              ]
            | Ok a ->
              List.map
                (fun (f : Runner.failure) ->
                  tag
                    [
                      ("variant", Str f.Runner.f_variant);
                      ("kind", Str f.Runner.f_kind);
                      ("message", Str f.Runner.f_message);
                      ("retries", Int f.Runner.f_retries);
                    ])
                a.Runner.failures)
          runs)
      all
  in
  Obj
    [
      ( "benchmarks",
        List
          (List.map
             (fun (bench, runs) ->
               Obj
                 [
                   ("benchmark", Str bench);
                   ( "inputs",
                     List
                       (List.map
                          (fun r ->
                            Obj
                              (("input", Str r.br_input)
                              ::
                              (match r.br_runs with
                              | Ok a -> [ ("runs", Runner.json_of_all_runs a) ]
                              | Error ce ->
                                [
                                  ( "error",
                                    Obj
                                      [
                                        ("message", Str ce.ce_message);
                                        ("backtrace", Str ce.ce_backtrace);
                                      ] );
                                ])))
                          runs) );
                 ])
             all) );
      ("errors", List errors);
    ]

(* Run the full fig9-11 collection and write it as JSON; the substrate for
   scripted/CI consumption of the evaluation. *)
let write_json_report ?pool ?benches ?only_inputs ?pgo ?faults ?retries
    ?(scale = default_scale ()) ~file () =
  let all = collect ?pool ?benches ?only_inputs ?pgo ?faults ?retries ~scale () in
  Pipette.Telemetry.Json.to_file file (json_of_collection all);
  progress "[json] evaluation report written to %s" file;
  all

let fig9 ?pool ?(all = None) ?(scale = default_scale ()) () =
  section "Fig. 9: per-benchmark speedup over serial (gmean across inputs)";
  let all = match all with Some a -> a | None -> collect ?pool ~scale () in
  let t =
    Table.create
      [ "Benchmark"; "Data-parallel"; "Phloem (PGO)"; "Phloem static (x)"; "Manual" ]
  in
  let phloem_best (a : Runner.all_runs) =
    match (a.Runner.phloem_pgo, a.Runner.phloem_static) with
    | Some m, _ | None, Some m -> Some m.Runner.m_speedup
    | None, None -> None
  in
  List.iter
    (fun (bench, runs) ->
      let speed sel =
        gmean_of (fun a -> Option.map (fun m -> m.Runner.m_speedup) (sel a)) runs
      in
      let dp = speed (fun a -> a.Runner.data_parallel) in
      let ps = speed (fun a -> a.Runner.phloem_static) in
      let pp = gmean_of phloem_best runs in
      let man = speed (fun a -> a.Runner.manual) in
      Table.add_row t [ bench; fmt_opt dp; fmt_opt pp; fmt_opt ps; fmt_opt man ])
    all;
  let overall =
    gmean_opt
      (List.concat_map
         (fun (_, runs) -> List.filter_map phloem_best (ok_runs runs))
         all)
  in
  print_string (Table.render t);
  Printf.printf "Overall Phloem gmean speedup over serial: %sx\n" (fmt_opt overall)

let breakdown_row label (m : Runner.measurement) =
  [
    label;
    fmt m.Runner.m_issue;
    fmt m.Runner.m_backend;
    fmt m.Runner.m_queue;
    fmt m.Runner.m_other;
    fmt (m.Runner.m_issue +. m.Runner.m_backend +. m.Runner.m_queue +. m.Runner.m_other);
  ]

let fig10 ?pool ?(all = None) ?(scale = default_scale ()) () =
  section
    "Fig. 10: cycle breakdown, thread-cycles normalized to the serial run\n\
     (S serial, D data-parallel, P Phloem, M manual)";
  let all = match all with Some a -> a | None -> collect ?pool ~scale () in
  let t = Table.create [ "Bench/variant"; "Issue"; "Backend"; "Queue"; "Other"; "Total" ] in
  List.iter
    (fun (bench, runs) ->
      (* average the normalized breakdowns across inputs *)
      let avg sel =
        let ms = List.filter_map sel (ok_runs runs) in
        match ms with
        | [] -> None
        | _ ->
          let n = float_of_int (List.length ms) in
          let f g = List.fold_left (fun a m -> a +. g m) 0.0 ms /. n in
          Some
            {
              (List.hd ms) with
              Runner.m_issue = f (fun m -> m.Runner.m_issue);
              m_backend = f (fun m -> m.Runner.m_backend);
              m_queue = f (fun m -> m.Runner.m_queue);
              m_other = f (fun m -> m.Runner.m_other);
            }
      in
      let add label sel =
        match avg sel with
        | Some m -> Table.add_row t (breakdown_row (bench ^ "/" ^ label) m)
        | None -> ()
      in
      add "S" (fun r -> Some r.Runner.serial);
      add "D" (fun r -> r.Runner.data_parallel);
      add "P" (fun r ->
          match r.Runner.phloem_pgo with
          | Some _ as m -> m
          | None -> r.Runner.phloem_static);
      add "M" (fun r -> r.Runner.manual))
    all;
  print_string (Table.render t)

let fig11 ?pool ?(all = None) ?(scale = default_scale ()) () =
  section "Fig. 11: energy breakdown normalized to serial (core/memory/queues+RA/static)";
  let all = match all with Some a -> a | None -> collect ?pool ~scale () in
  let t =
    Table.create [ "Bench/variant"; "Core dyn"; "Memory"; "Queues+RA"; "Static"; "Total" ]
  in
  List.iter
    (fun (bench, runs) ->
      let oks = ok_runs runs in
      let serial_tot =
        match oks with
        | [] -> 0.0
        | _ ->
          Stats.mean
            (List.map
               (fun (a : Runner.all_runs) ->
                 Pipette.Energy.total a.Runner.serial.Runner.m_energy)
               oks)
      in
      let add label sel =
        let es = List.filter_map sel oks in
        match es with
        | [] -> ()
        | _ when serial_tot = 0.0 -> ()
        | _ ->
          let n = float_of_int (List.length es) in
          let f g = List.fold_left (fun a (m : Runner.measurement) -> a +. g m.Runner.m_energy) 0.0 es /. n /. serial_tot in
          Table.add_row t
            [
              bench ^ "/" ^ label;
              fmt (f (fun e -> e.Pipette.Energy.e_core_dynamic));
              fmt (f (fun e -> e.Pipette.Energy.e_memory));
              fmt (f (fun e -> e.Pipette.Energy.e_queues_ras));
              fmt (f (fun e -> e.Pipette.Energy.e_static));
              fmt (f Pipette.Energy.total);
            ]
      in
      add "S" (fun r -> Some r.Runner.serial);
      add "D" (fun r -> r.Runner.data_parallel);
      add "P" (fun r ->
          match r.Runner.phloem_pgo with
          | Some _ as m -> m
          | None -> r.Runner.phloem_static);
      add "M" (fun r -> r.Runner.manual))
    all;
  print_string (Table.render t)

(* --- Fig. 12: Taco benchmarks --- *)

let fig12 ?pool ?(scale = default_scale ()) () =
  section "Fig. 12: Taco benchmarks, speedup over Taco serial (static Phloem flow)";
  let t = Table.create [ "Benchmark"; "Data-parallel"; "Phloem (static)" ] in
  let pmap f l =
    match pool with
    | Some p -> Phloem_util.Pool.map_list p f l
    | None -> List.map f l
  in
  List.iter
    (fun kind ->
      let runs =
        pmap
          (fun (name, m) ->
            match Runner.run_all ?pool (Taco_kernels.bind kind m) with
            | a -> Some a
            | exception e ->
              Phloem_util.Log.warn ~component:"harness" "[fig12] %s on %s failed: %s"
                (Taco_kernels.name_of kind) name (Printexc.to_string e);
              None)
          (taco_matrices ~scale)
        |> List.filter_map Fun.id
      in
      let speed sel =
        gmean_opt
          (List.filter_map
             (fun (a : Runner.all_runs) ->
               Option.map (fun m -> m.Runner.m_speedup) (sel a))
             runs)
      in
      let dp = speed (fun a -> a.Runner.data_parallel) in
      let ps = speed (fun a -> a.Runner.phloem_static) in
      Table.add_row t [ Taco_kernels.name_of kind; fmt_opt dp; fmt_opt ps ])
    [ Taco_kernels.Mtmul; Taco_kernels.Residual; Taco_kernels.Spmv; Taco_kernels.Sddmm ];
  print_string (Table.render t)

(* --- Fig. 13: speedup distribution vs pipeline length --- *)

let fig13 ?pool ?(scale = default_scale ()) () =
  section
    "Fig. 13: gmean speedup on training inputs of profiled pipelines by stage\n\
     count (threads + RAs); min / best per length";
  let t = Table.create [ "Benchmark"; "Stages"; "Min"; "Best"; "Candidates" ] in
  let explore name (bounds : Workload.bound list) =
    match
      Runner.pgo_cuts ~top_k:6 ~max_cuts:3 ?pool bounds
    with
    | outcome ->
      let by_len = Hashtbl.create 8 in
      List.iter
        (fun (c : Phloem.Search.candidate) ->
          let cur = try Hashtbl.find by_len c.ca_stages with Not_found -> [] in
          Hashtbl.replace by_len c.ca_stages (c.ca_gmean :: cur))
        outcome.Phloem.Search.all;
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_len []
      |> List.sort compare
      |> List.iter (fun (len, gs) ->
             let lo, hi = Stats.min_max gs in
             Table.add_row t
               [
                 name;
                 string_of_int len;
                 fmt lo;
                 fmt hi;
                 string_of_int (List.length gs);
               ])
    | exception e ->
      Table.add_row t [ name; "-"; "-"; "-"; Printexc.to_string e ]
  in
  explore "BFS" (List.map (fun (_, g) -> Bfs.bind g) (training_graphs ~scale));
  explore "SpMM"
    (List.map (fun (_, a, bt) -> Spmm.bind a bt) (spmm_pairs ~scale `Training));
  explore "SpMV"
    (List.map
       (fun (_, m) -> Taco_kernels.bind Taco_kernels.Spmv m)
       [ List.hd (taco_matrices ~scale) ]);
  print_string (Table.render t)

(* --- Fig. 14: replicated pipelines on 4 cores x 4 threads --- *)

let fig14 ?(scale = default_scale ()) () =
  section "Fig. 14: replicated pipelines, 4 cores (vs 1-core serial)";
  let cfg = Pipette.Config.four_cores in
  let t =
    Table.create [ "Benchmark"; "Data-parallel x16"; "Phloem replicated"; "Manual (1 core)" ]
  in
  let graphs = [ graph_of "USA-road-d-USA" ~scale; graph_of "as-Skitter" ~scale ] in
  let row name ~serial_of ~dp_of ~rep_of ~man_of =
    (* A wedged variant (Pipeline_failure etc.) renders "-" for its cell. *)
    let speedups f =
      match
        Stats.gmean
          (List.map
             (fun g ->
               let sc = serial_of g in
               let c = f g in
               float_of_int sc /. float_of_int c)
             graphs)
      with
      | v -> fmt v
      | exception _ -> "-"
    in
    Table.add_row t [ name; speedups dp_of; speedups rep_of; speedups man_of ]
  in
  let serial_cycles bind_fn g =
    let b = bind_fn g in
    let p, inputs = b.Workload.b_serial in
    Pipette.Sim.cycles (Pipette.Sim.run ~inputs p)
  in
  let dp_cycles bind_fn g =
    let b = bind_fn g in
    let p, inputs = b.Workload.b_data_parallel ~threads:16 in
    Pipette.Sim.cycles (Pipette.Sim.run ~cfg ~inputs p)
  in
  let man_cycles bind_fn g =
    let b = bind_fn g in
    match b.Workload.b_manual with
    | Some (p, inputs) -> Pipette.Sim.cycles (Pipette.Sim.run ~inputs p)
    | None -> max_int
  in
  let rep_cycles mk g =
    let p, inputs, tc = mk g in
    Pipette.Sim.cycles (Pipette.Sim.run ~cfg ~thread_core:tc ~inputs p)
  in
  row "BFS"
    ~serial_of:(serial_cycles Bfs.bind)
    ~dp_of:(dp_cycles Bfs.bind)
    ~rep_of:(rep_cycles (fun g -> Replicated.bfs g ~replicas:4))
    ~man_of:(man_cycles Bfs.bind);
  row "CC"
    ~serial_of:(serial_cycles Cc.bind)
    ~dp_of:(dp_cycles Cc.bind)
    ~rep_of:(rep_cycles (fun g -> Replicated.cc g ~replicas:4))
    ~man_of:(man_cycles Cc.bind);
  row "PRD"
    ~serial_of:(serial_cycles Prd.bind)
    ~dp_of:(dp_cycles Prd.bind)
    ~rep_of:(rep_cycles (fun g -> Replicated.prd g ~replicas:4))
    ~man_of:(man_cycles Prd.bind);
  row "Radii"
    ~serial_of:(serial_cycles Radii.bind)
    ~dp_of:(dp_cycles Radii.bind)
    ~rep_of:
      (rep_cycles (fun g ->
           let p, i, tc, _ = Replicated.radii g ~replicas:4 in
           (p, i, tc)))
    ~man_of:(man_cycles Radii.bind);
  print_string (Table.render t)

let run_all_experiments ?pool ?(scale = default_scale ()) () =
  if Phloem_util.Log.severity (Phloem_util.Log.level ()) > Phloem_util.Log.severity Phloem_util.Log.Info
  then Phloem_util.Log.set_level Phloem_util.Log.Info;
  table3 ();
  table4 ~scale ();
  table5 ~scale ();
  fig6 ~scale ();
  let all = collect ?pool ~scale () in
  fig9 ~all:(Some all) ~scale ();
  fig10 ~all:(Some all) ~scale ();
  fig11 ~all:(Some all) ~scale ();
  fig12 ?pool ~scale ();
  fig13 ?pool ~scale ();
  fig14 ~scale ()
