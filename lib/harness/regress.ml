(* Run-to-run benchmark comparison: diff two evaluation JSON reports (the
   format written by [Experiments.write_json_report]) metric by metric, flag
   changes beyond per-metric thresholds as regressions, and render a table.
   This is the substrate behind `bench/main.exe --compare OLD NEW` and the
   CI baseline check against BENCH_baseline.json. *)

module Json = Pipette.Telemetry.Json
module Table = Phloem_util.Table

type thresholds = {
  th_cycles : float; (* cycle-count increase beyond this fraction regresses *)
  th_speedup : float; (* speedup decrease beyond this fraction regresses *)
  th_energy : float; (* total-energy increase beyond this fraction regresses *)
  th_ops_per_sec : float;
      (* simulated-ops-per-wall-second decrease beyond this fraction
         regresses; looser than the cycle thresholds because wall time is
         machine-sensitive *)
}

let default_thresholds =
  { th_cycles = 0.05; th_speedup = 0.05; th_energy = 0.10; th_ops_per_sec = 0.10 }

type delta = {
  d_key : string; (* "benchmark/input/variant/metric" *)
  d_old : float;
  d_new : float;
  d_change : float; (* relative: (new - old) / old *)
  d_regressed : bool;
}

type outcome = {
  o_deltas : delta list; (* every metric present in both reports *)
  o_regressions : delta list; (* the subset beyond its threshold *)
  o_missing : string list; (* series in OLD but absent from NEW *)
  o_added : string list; (* series in NEW but absent from OLD *)
  o_errored : string list;
      (* series in OLD whose absence from NEW is explained by a recorded
         failure in NEW's "errors" array — known-errored, not silently
         missing *)
}

let regressed outcome = outcome.o_regressions <> []

(* Flatten a report to ("bench/input/variant" -> (metric, value) list).
   Unknown or malformed nodes are skipped, not errors: a baseline written by
   an older build should still diff on whatever metrics it shares. *)
let flatten (j : Json.t) : (string * (string * float) list) list =
  let num path j =
    match Option.bind (Json.member path j) Json.to_float_opt with
    | Some v -> Some (path, v)
    | None -> None
  in
  let energy j =
    match Option.bind (Json.member "energy_nj" j) (Json.member "total") with
    | Some e -> ( match Json.to_float_opt e with
      | Some v -> Some ("energy_total", v)
      | None -> None)
    | None -> None
  in
  let series = ref [] in
  let str k j = match Json.member k j with Some (Json.Str s) -> s | _ -> "?" in
  (* A wall-clock report (the --wall output, detected by its
     "serial_wall_s" key) flattens to one synthetic series so throughput
     and sweep parallelism diff through the same machinery as the
     evaluation metrics. *)
  (match Json.member "serial_wall_s" j with
  | Some _ ->
    let metrics =
      List.filter_map Fun.id
        [ num "ops_per_sec" j; num "speedup" j; num "serial_wall_s" j ]
    in
    if metrics <> [] then series := ("wall/sweep", metrics) :: !series
  | None -> ());
  (match Json.member "benchmarks" j with
  | Some (Json.List benches) ->
    List.iter
      (fun b ->
        let bench = str "benchmark" b in
        match Json.member "inputs" b with
        | Some (Json.List inputs) ->
          List.iter
            (fun inp ->
              let input = str "input" inp in
              match Json.member "runs" inp with
              | Some (Json.Obj variants) ->
                List.iter
                  (fun (variant, m) ->
                    match m with
                    | Json.Obj _ ->
                      let metrics =
                        List.filter_map Fun.id
                          [ num "cycles" m; num "speedup" m; energy m ]
                      in
                      if metrics <> [] then
                        series :=
                          (Printf.sprintf "%s/%s/%s" bench input variant, metrics)
                          :: !series
                    | _ -> ())
                  variants
              | _ -> ())
            inputs
        | _ -> ())
      benches
  | _ -> ());
  List.rev !series

(* Series keys covered by a report's failure records ("bench/input/variant",
   matching [flatten]'s key spelling): the top-level "errors" array written
   by [Experiments.json_of_collection] plus the per-run "errors" arrays.
   Variant "*" (a whole failed cell) yields a "bench/input/*" wildcard.
   Failure records carry CLI-style variant names ("data-parallel"); series
   keys use the JSON field spelling ("data_parallel") — normalize. *)
let errored_series (j : Json.t) : string list =
  let acc = ref [] in
  let str k j = match Json.member k j with Some (Json.Str s) -> s | _ -> "?" in
  let add b i v =
    let v = String.map (fun c -> if c = '-' then '_' else c) v in
    acc := Printf.sprintf "%s/%s/%s" b i v :: !acc
  in
  (match Json.member "errors" j with
  | Some (Json.List es) ->
    List.iter
      (fun e -> add (str "benchmark" e) (str "input" e) (str "variant" e))
      es
  | _ -> ());
  (match Json.member "benchmarks" j with
  | Some (Json.List benches) ->
    List.iter
      (fun b ->
        let bench = str "benchmark" b in
        match Json.member "inputs" b with
        | Some (Json.List inputs) ->
          List.iter
            (fun inp ->
              let input = str "input" inp in
              (match Json.member "error" inp with
              | Some _ -> add bench input "*"
              | None -> ());
              match Option.bind (Json.member "runs" inp) (Json.member "errors") with
              | Some (Json.List es) ->
                List.iter (fun e -> add bench input (str "variant" e)) es
              | _ -> ())
            inputs
        | _ -> ())
      benches
  | _ -> ());
  List.sort_uniq compare !acc

let errored_matches errored key =
  List.exists
    (fun e ->
      let n = String.length e in
      if n > 0 && e.[n - 1] = '*' then
        let p = String.sub e 0 (n - 1) in
        String.length key >= String.length p
        && String.sub key 0 (String.length p) = p
      else e = key)
    errored

let judge th metric ~old_v ~new_v =
  let change =
    if old_v = 0.0 then (if new_v = 0.0 then 0.0 else 1.0)
    else (new_v -. old_v) /. old_v
  in
  let regressed =
    match metric with
    | "cycles" -> change > th.th_cycles
    | "speedup" -> change < -.th.th_speedup
    | "energy_total" -> change > th.th_energy
    | "ops_per_sec" -> change < -.th.th_ops_per_sec
    | _ -> false (* serial_wall_s is informational: machine-dependent *)
  in
  (change, regressed)

let compare_json ?(thresholds = default_thresholds) ~old_j ~new_j () : outcome =
  let old_s = flatten old_j and new_s = flatten new_j in
  let errored = errored_series new_j in
  let deltas = ref [] and missing = ref [] and errored_l = ref [] in
  List.iter
    (fun (key, old_metrics) ->
      match List.assoc_opt key new_s with
      | None ->
        (* tolerate a series NEW *knows* it lost to a failure: it is
           reported separately, not lumped in with silent omissions *)
        if errored_matches errored key then errored_l := key :: !errored_l
        else missing := key :: !missing
      | Some new_metrics ->
        List.iter
          (fun (metric, old_v) ->
            match List.assoc_opt metric new_metrics with
            | None -> ()
            | Some new_v ->
              let change, regressed =
                judge thresholds metric ~old_v ~new_v
              in
              deltas :=
                {
                  d_key = key ^ "/" ^ metric;
                  d_old = old_v;
                  d_new = new_v;
                  d_change = change;
                  d_regressed = regressed;
                }
                :: !deltas)
          old_metrics)
    old_s;
  let added =
    List.filter_map
      (fun (key, _) ->
        if List.mem_assoc key old_s then None else Some key)
      new_s
  in
  let deltas = List.rev !deltas in
  {
    o_deltas = deltas;
    o_regressions = List.filter (fun d -> d.d_regressed) deltas;
    o_missing = List.rev !missing;
    o_added = added;
    o_errored = List.rev !errored_l;
  }

let compare_files ?thresholds ~old_file ~new_file () : outcome =
  compare_json ?thresholds ~old_j:(Json.of_file old_file)
    ~new_j:(Json.of_file new_file) ()

let render ?(all = false) (o : outcome) : string =
  let buf = Buffer.create 1024 in
  let shown =
    if all then o.o_deltas
    else List.filter (fun d -> d.d_regressed || abs_float d.d_change > 0.001) o.o_deltas
  in
  if shown = [] then Buffer.add_string buf "no metric changed by more than 0.1%\n"
  else begin
    let t = Table.create [ "Series"; "Old"; "New"; "Change"; "" ] in
    List.iter
      (fun d ->
        Table.add_row t
          [
            d.d_key;
            Printf.sprintf "%.4g" d.d_old;
            Printf.sprintf "%.4g" d.d_new;
            Printf.sprintf "%+.1f%%" (100.0 *. d.d_change);
            (if d.d_regressed then "REGRESSED" else "");
          ])
      shown;
    Buffer.add_string buf (Table.render t)
  end;
  List.iter
    (fun k -> Printf.bprintf buf "missing from new report: %s\n" k)
    o.o_missing;
  List.iter
    (fun k -> Printf.bprintf buf "errored in new report (see its \"errors\" array): %s\n" k)
    o.o_errored;
  List.iter (fun k -> Printf.bprintf buf "new series: %s\n" k) o.o_added;
  Printf.bprintf buf "%d series compared, %d regression(s)\n"
    (List.length o.o_deltas) (List.length o.o_regressions);
  Buffer.contents buf
