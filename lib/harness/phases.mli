(** Wall-clock attribution for sweep work: compile / trace / simulate phase
    accumulators plus a simulated-µop counter, shared (mutex-guarded) across
    pool domains. The wall benchmark resets these, runs a sweep with each
    {!Pipette.Sim} call wrapped in {!timed}, and reports the split and the
    engine-throughput metric (ops per simulate-phase second). *)

type phase = Compile | Trace | Simulate

type snapshot = {
  ph_compile_s : float;  (** pipeline → flat µop program lowering *)
  ph_trace_s : float;  (** functional execution producing µop traces *)
  ph_simulate_s : float;  (** timing-engine replay *)
  ph_ops : int;  (** µops replayed by the timing engine *)
  ph_trace_hits : int;  (** functional-trace cache hits (since last clear) *)
  ph_trace_misses : int;
}

val name : phase -> string
(** Stable lower-case label ("compile" / "trace" / "simulate") shared by
    reports and service-level span names. *)

val timed : phase -> (unit -> 'a) -> 'a
(** Run a thunk, charging its wall time to the phase — also when it
    raises. *)

val add_ops : int -> unit
(** Credit [n] engine-replayed µops to the throughput counter. *)

val per_second : int -> float -> float
(** [per_second n s] is [n /. s] guarded for report emission: zero or
    sub-resolution durations (a tiny sweep can complete in < 1 ms, and the
    measured wall delta can be exactly [0.0]), non-finite durations, and
    non-positive counts all yield [0.0] instead of inf/NaN — a NaN written
    into a wall report poisons {!Regress.compare_json}'s strict parse. *)

val ratio : float -> float -> float
(** [ratio a b] is [a /. b] with the same guarantee: [0.0] whenever either
    operand is non-finite, [b] is not strictly positive, or [a] is
    negative. Never returns inf or NaN. *)

val reset : unit -> unit
(** Zero the accumulators (cache hit counters are owned by
    {!Pipette.Sim} and reset by [Sim.clear_caches]). *)

val snapshot : unit -> snapshot
