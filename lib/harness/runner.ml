(* Runs one workload binding through all evaluated systems (paper Sec. VI):
   Serial, Data-parallel, Phloem (static or profile-guided), and the
   manually pipelined version; collects cycles, cycle breakdowns, and
   energy, and validates every run against the pure-OCaml reference. *)

open Phloem_workloads
module Log = Phloem_util.Log

type measurement = {
  m_variant : string;
  m_cycles : int;
  m_instrs : int;
  m_speedup : float; (* over the serial run on the same input *)
  m_ok : bool;
  m_issue : float; (* thread-cycles, normalized to serial cycles *)
  m_backend : float;
  m_queue : float;
  m_other : float;
  m_energy : Pipette.Energy.breakdown;
  m_stages : int; (* threads + RAs *)
}

let of_run ~variant ~serial_cycles ~ok (r : Pipette.Sim.run) =
  let t = r.Pipette.Sim.sr_timing in
  (* A degenerate baseline (serial_cycles = 0, e.g. an empty kernel) must
     not poison the derived fields with inf/nan: report neutral values. *)
  let sc = float_of_int serial_cycles in
  let over_sc x = if serial_cycles = 0 then 0.0 else float_of_int x /. sc in
  {
    m_variant = variant;
    m_cycles = t.Pipette.Engine.cycles;
    m_instrs = t.Pipette.Engine.instrs;
    m_speedup =
      (if serial_cycles = 0 || t.Pipette.Engine.cycles = 0 then 1.0
       else sc /. float_of_int t.Pipette.Engine.cycles);
    m_ok = ok;
    m_issue = over_sc t.Pipette.Engine.issue_cycles;
    m_backend = over_sc t.Pipette.Engine.backend_cycles;
    m_queue = over_sc t.Pipette.Engine.queue_cycles;
    m_other = over_sc t.Pipette.Engine.other_cycles;
    m_energy = r.Pipette.Sim.sr_energy;
    m_stages =
      t.Pipette.Engine.n_threads
      + Array.length r.Pipette.Sim.sr_functional.Phloem_ir.Interp.r_trace.Phloem_ir.Trace.ras;
  }

(* Machine-readable form of a measurement, for --json reports and CI. *)
let json_of_measurement (m : measurement) : Pipette.Telemetry.Json.t =
  let open Pipette.Telemetry.Json in
  let e = m.m_energy in
  Obj
    [
      ("variant", Str m.m_variant);
      ("cycles", Int m.m_cycles);
      ("instrs", Int m.m_instrs);
      ("speedup", Float m.m_speedup);
      ("valid", Bool m.m_ok);
      ("stages", Int m.m_stages);
      ( "breakdown_vs_serial",
        Obj
          [
            ("issue", Float m.m_issue);
            ("backend", Float m.m_backend);
            ("queue", Float m.m_queue);
            ("other", Float m.m_other);
          ] );
      ( "energy_nj",
        Obj
          [
            ("core_dynamic", Float e.Pipette.Energy.e_core_dynamic);
            ("memory", Float e.Pipette.Energy.e_memory);
            ("queues_ras", Float e.Pipette.Energy.e_queues_ras);
            ("static", Float e.Pipette.Energy.e_static);
            ("total", Float (Pipette.Energy.total e));
          ] );
    ]

(* One recorded per-variant failure. [f_kind] is the Forensics kind name
   for structured pipeline failures ("deadlock" / "livelock" /
   "budget-exhausted") and "exception" for anything else; [f_message] is
   the full rendered forensics report in the structured case. *)
type failure = {
  f_variant : string;
  f_kind : string;
  f_message : string;
  f_backtrace : string;
  f_retries : int; (* attempts consumed before giving up (or succeeding) *)
}

let failure_of ~variant ?(retries = 0) e bt =
  let kind, message =
    match e with
    | Phloem_ir.Forensics.Pipeline_failure r ->
      (Phloem_ir.Forensics.kind_name r.Phloem_ir.Forensics.fr_kind,
       Phloem_ir.Forensics.render r)
    | e -> ("exception", Printexc.to_string e)
  in
  {
    f_variant = variant;
    f_kind = kind;
    f_message = message;
    f_backtrace = Printexc.raw_backtrace_to_string bt;
    f_retries = retries;
  }

let json_of_failure (f : failure) : Pipette.Telemetry.Json.t =
  let open Pipette.Telemetry.Json in
  Obj
    [
      ("variant", Str f.f_variant);
      ("kind", Str f.f_kind);
      ("message", Str f.f_message);
      ("backtrace", Str f.f_backtrace);
      ("retries", Int f.f_retries);
    ]

(* Run one variant; a simulation failure becomes an [Error failure] record
   instead of an exception. With a fault [plan], injected failures whose
   report shows actual injections ([fr_injected > 0]) are transient by
   construction and retried up to [retries] times, each attempt on an
   independent PRNG stream ([Faults.rekey]); clean failures and exhausted
   retries are recorded. *)
let run_one ?(cfg = Pipette.Config.default) ?thread_core ?faults ?(retries = 0)
    (b : Workload.bound) ~variant (p, inputs) ~serial_cycles :
    (measurement, failure) result =
  let rec go attempt =
    let injected =
      Option.map
        (fun plan -> Pipette.Faults.create (Pipette.Faults.rekey plan ~attempt))
        faults
    in
    (* Split execution so each phase is charged to its accumulator. The
       compile and trace phases are memoized in [Sim], so retries (and
       every other config of the same (pipeline, input) pair in the sweep)
       reuse the functional result and pay only for the timing replay. *)
    match
      Phases.timed Phases.Compile (fun () -> ignore (Pipette.Sim.prepare p));
      let fr =
        Phases.timed Phases.Trace (fun () -> Pipette.Sim.functional ~inputs p)
      in
      Phases.timed Phases.Simulate (fun () ->
          Pipette.Sim.simulate ~cfg ?thread_core ?faults:injected p fr)
    with
    | exception Phloem_ir.Forensics.Pipeline_failure r
      when r.Phloem_ir.Forensics.fr_injected > 0 && attempt < retries ->
      Log.warn ~component:"runner"
        "%s/%s: injected %s after %d fault(s); retrying (attempt %d/%d)"
        b.Workload.b_name variant
        (Phloem_ir.Forensics.kind_name r.Phloem_ir.Forensics.fr_kind)
        r.Phloem_ir.Forensics.fr_injected (attempt + 1) retries
      ;
      go (attempt + 1)
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      Log.warn ~component:"runner" "%s/%s failed: %s" b.Workload.b_name variant
        (Printexc.to_string e);
      Error (failure_of ~variant ~retries:attempt e bt)
    | r ->
      let ok = Workload.check b r.Pipette.Sim.sr_functional in
      if not ok then
        Log.warn ~component:"runner" "%s/%s: result does not match the reference"
          b.Workload.b_name variant;
      let m = of_run ~variant ~serial_cycles ~ok r in
      Phases.add_ops m.m_instrs;
      Log.debug ~component:"runner" "%s/%s: %d cycles, speedup %.2f" b.Workload.b_name
        variant m.m_cycles m.m_speedup;
      Ok m
  in
  go 0

(* The Phloem pipeline for a bound: static cost model or a provided PGO cut
   recipe (cut recipes transfer across inputs of the same kernel). *)
let phloem_pipeline ?(stages = 4) ?cuts (b : Workload.bound) =
  let serial_p = fst b.Workload.b_serial in
  match cuts with
  | Some [] -> serial_p (* PGO's serial fallback: an empty recipe *)
  | Some cuts -> Phloem.Compile.with_cuts serial_p cuts
  | None -> Phloem.Compile.static_flow ~stages serial_p

(* Every non-serial variant is optional: a failed cell leaves [None] plus a
   [failures] record instead of aborting the sweep. The serial baseline is
   the exception — without it nothing downstream (speedups, normalized
   breakdowns) is defined, so a serial failure propagates to the caller. *)
type all_runs = {
  serial : measurement;
  data_parallel : measurement option;
  phloem_static : measurement option;
  phloem_pgo : measurement option;
  manual : measurement option;
  failures : failure list; (* in variant order: dp, static, pgo, manual *)
}

let json_of_all_runs (a : all_runs) : Pipette.Telemetry.Json.t =
  let open Pipette.Telemetry.Json in
  let opt = function Some m -> json_of_measurement m | None -> Null in
  Obj
    [
      ("serial", json_of_measurement a.serial);
      ("data_parallel", opt a.data_parallel);
      ("phloem_static", opt a.phloem_static);
      ("phloem_pgo", opt a.phloem_pgo);
      ("manual", opt a.manual);
      ("errors", List (List.map json_of_failure a.failures));
    ]

let run_all ?(cfg = Pipette.Config.default) ?(threads = 4) ?pgo_cuts ?pool
    ?faults ?retries (b : Workload.bound) : all_runs =
  let serial_p, serial_in = b.Workload.b_serial in
  (* The baseline runs clean even under a fault plan: injecting into the
     denominator of every speedup would poison the whole record. *)
  let sr =
    Phases.timed Phases.Compile (fun () ->
        ignore (Pipette.Sim.prepare serial_p));
    let fr =
      Phases.timed Phases.Trace (fun () ->
          Pipette.Sim.functional ~inputs:serial_in serial_p)
    in
    Phases.timed Phases.Simulate (fun () -> Pipette.Sim.simulate ~cfg serial_p fr)
  in
  Phases.add_ops (Pipette.Sim.instrs sr);
  let serial_cycles = Pipette.Sim.cycles sr in
  let serial_m =
    of_run ~variant:"serial" ~serial_cycles
      ~ok:(Workload.check b sr.Pipette.Sim.sr_functional)
      sr
  in
  (* Given the serial baseline, the remaining variants (including their
     compilation) are independent jobs: fan them out over the pool. The
     thunk order fixes the result order, so pooled and serial runs build
     the same record. Each thunk catches its own failures (compilation
     included), so one bad cell never aborts the batch. *)
  let guarded variant (f : unit -> (measurement, failure) result option) () :
      measurement option * failure option =
    match f () with
    | None -> (None, None)
    | Some (Ok m) -> (Some m, None)
    | Some (Error fl) -> (None, Some fl)
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      Log.warn ~component:"runner" "%s/%s failed: %s" b.Workload.b_name variant
        (Printexc.to_string e);
      (None, Some (failure_of ~variant e bt))
  in
  let variant_thunks : (unit -> measurement option * failure option) list =
    [
      guarded "data-parallel" (fun () ->
          Some
            (run_one ~cfg ?faults ?retries b ~variant:"data-parallel"
               (b.Workload.b_data_parallel ~threads)
               ~serial_cycles));
      guarded "phloem-static" (fun () ->
          Some
            (run_one ~cfg ?faults ?retries b ~variant:"phloem-static"
               (phloem_pipeline b, serial_in)
               ~serial_cycles));
      guarded "phloem-pgo" (fun () ->
          Option.map
            (fun cuts ->
              run_one ~cfg ?faults ?retries b ~variant:"phloem-pgo"
                (phloem_pipeline ~cuts b, serial_in)
                ~serial_cycles)
            pgo_cuts);
      guarded "manual" (fun () ->
          Option.map
            (fun mp ->
              run_one ~cfg ?faults ?retries b ~variant:"manual" mp ~serial_cycles)
            b.Workload.b_manual);
    ]
  in
  let results =
    match pool with
    | Some p -> Phloem_util.Pool.run p variant_thunks
    | None -> List.map (fun f -> f ()) variant_thunks
  in
  match results with
  | [ (dp, e1); (ps, e2); (pp, e3); (man, e4) ] ->
    {
      serial = serial_m;
      data_parallel = dp;
      phloem_static = ps;
      phloem_pgo = pp;
      manual = man;
      failures = List.filter_map Fun.id [ e1; e2; e3; e4 ];
    }
  | _ -> assert false

(* PGO across a benchmark's training bindings; returns the best cut recipe. *)
let pgo_cuts ?(cfg = Pipette.Config.default) ?(top_k = 6) ?(max_cuts = 3) ?pool
    (training : Workload.bound list) : Phloem.Search.outcome =
  match training with
  | [] -> invalid_arg "pgo_cuts: no training bounds"
  | b0 :: _ ->
    Phloem.Search.pgo ~cfg ~top_k ~max_cuts ?pool
      ~check_arrays:b0.Workload.b_check_arrays
      ~training:(List.map (fun b -> b.Workload.b_serial) training)
      ()
