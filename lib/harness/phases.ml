(* Wall-clock attribution for sweep work. Every simulation decomposes into
   three phases — compiling the pipeline to flat µop programs, executing the
   functional semantics to obtain traces, and replaying the traces on the
   timing engine — and with memoization the first two amortize across a
   sweep while the third is paid per config. The accumulators here let the
   wall benchmark report the split and derive an engine-throughput metric
   (simulated ops per simulate-phase second) instead of a single opaque
   number. Accumulators are mutex-guarded: pool workers on other domains
   time their own phases into the same totals. *)

type phase = Compile | Trace | Simulate

type snapshot = {
  ph_compile_s : float;
  ph_trace_s : float;
  ph_simulate_s : float;
  ph_ops : int; (* µops replayed by the timing engine *)
  ph_trace_hits : int;
  ph_trace_misses : int;
}

let lock = Mutex.create ()
let compile_s = ref 0.0
let trace_s = ref 0.0
let simulate_s = ref 0.0
let ops = ref 0

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let reset () =
  with_lock (fun () ->
      compile_s := 0.0;
      trace_s := 0.0;
      simulate_s := 0.0;
      ops := 0)

let cell_of = function
  | Compile -> compile_s
  | Trace -> trace_s
  | Simulate -> simulate_s

let name = function
  | Compile -> "compile"
  | Trace -> "trace"
  | Simulate -> "simulate"

(* The phase is charged even when [f] raises: a deadlocked replay still
   burned the wall time it reports. *)
let timed phase f =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      let dt = Unix.gettimeofday () -. t0 in
      with_lock (fun () ->
          let c = cell_of phase in
          c := !c +. dt))
    f

let add_ops n = with_lock (fun () -> ops := !ops + n)

(* Throughput and speedup guards. Tiny daemon-dispatched smoke sweeps can
   finish inside the wall clock's resolution, making a measured duration
   exactly 0.0 (or, through later arithmetic, non-finite); a naive division
   then writes inf/NaN into a JSON report, which the strict parser behind
   [Regress.compare_json] rejects — one degenerate measurement poisons the
   whole comparison. Both helpers map every degenerate case to 0.0, which
   reports render as "no measurement" rather than corrupting the file. *)
let per_second n s =
  if n <= 0 || not (Float.is_finite s) || s <= 0.0 then 0.0
  else
    let r = float_of_int n /. s in
    if Float.is_finite r then r else 0.0

let ratio a b =
  if not (Float.is_finite a) || not (Float.is_finite b) || b <= 0.0 || a < 0.0
  then 0.0
  else
    let r = a /. b in
    if Float.is_finite r then r else 0.0

let snapshot () =
  let hits, misses = Pipette.Sim.cache_stats () in
  with_lock (fun () ->
      {
        ph_compile_s = !compile_s;
        ph_trace_s = !trace_s;
        ph_simulate_s = !simulate_s;
        ph_ops = !ops;
        ph_trace_hits = hits;
        ph_trace_misses = misses;
      })
