(* Structured diagnostics for the compiler and harness. Records carry a
   severity and a component tag; a single pluggable sink receives every
   record that passes the level filter, so callers (CLI, tests, harness)
   decide where output goes without the core library printing on its own. *)

type level = Debug | Info | Warn | Error

type record = {
  r_level : level;
  r_component : string; (* e.g. "pass", "search", "runner" *)
  r_message : string;
}

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let threshold = ref Warn
let set_level l = threshold := l
let level () = !threshold
let enabled l = severity l >= severity !threshold

let default_sink r =
  Printf.eprintf "[phloem %s] %s: %s\n%!"
    (level_to_string r.r_level)
    r.r_component r.r_message

let sink : (record -> unit) ref = ref default_sink
let set_sink f = sink := f

(* Emission is serialized: parallel harness jobs (Phloem_util.Pool) log
   from several domains at once, and neither stderr lines nor custom sinks
   (e.g. the capture buffer below) are domain-safe on their own. *)
let emit_mutex = Mutex.create ()

let emit ~component l msg =
  if enabled l then
    Mutex.protect emit_mutex (fun () ->
        !sink { r_level = l; r_component = component; r_message = msg })

let logf ?(component = "phloem") l fmt =
  if enabled l then Printf.ksprintf (fun s -> emit ~component l s) fmt
  else Printf.ikfprintf (fun () -> ()) () fmt

let debug ?component fmt = logf ?component Debug fmt
let info ?component fmt = logf ?component Info fmt
let warn ?component fmt = logf ?component Warn fmt
let error ?component fmt = logf ?component Error fmt

(* Run [f] with records captured into a list (most recent last); restores the
   previous sink and level afterwards. Used by tests and the harness to
   collect diagnostics from a compilation without touching stderr. *)
let with_capture ?(level = Debug) f =
  let saved_sink = !sink and saved_level = !threshold in
  let captured = ref [] in
  sink := (fun r -> captured := r :: !captured);
  threshold := level;
  Fun.protect
    ~finally:(fun () ->
      sink := saved_sink;
      threshold := saved_level)
    (fun () ->
      let x = f () in
      (x, List.rev !captured))
