(** Domain-safe metrics registry and span recorder.

    Counters and gauges are lock-free atomics; histograms (see
    {!Stats.hist}) take a short critical section per observation. The
    module has no notion of time — callers pass wall-clock floats — so it
    stays usable from any layer without a unix dependency.

    Typical use: resolve instrument handles once ({!counter},
    {!histogram}), hammer them from any domain or thread, and read a
    consistent {!snapshot} from a reporting thread. *)

type t
(** A registry of named instruments. *)

val create : unit -> t

(** {1 Instruments} *)

type counter
type gauge
type histogram

val counter : t -> string -> counter
(** Get or create. The same name always yields the same instrument. *)

val gauge : t -> string -> gauge

val histogram :
  ?lo:float -> ?growth:float -> ?buckets:int -> t -> string -> histogram
(** Get or create; layout arguments (see {!Stats.hist_create}) apply only on
    first creation. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit
(** Record one observation (NaN ignored). *)

val observed : histogram -> Stats.hist
(** Race-free copy of the underlying histogram. *)

(** {1 Snapshots} *)

type snapshot = {
  sn_counters : (string * int) list;
  sn_gauges : (string * float) list;
  sn_hists : (string * Stats.hist) list;
}
(** Point-in-time view, each section sorted by name. Histograms are copies;
    mutating the registry afterwards does not affect a snapshot. *)

val snapshot : t -> snapshot

val merge : snapshot -> snapshot -> snapshot
(** Counters and histograms sum; gauges keep the max. *)

val to_prometheus : snapshot -> string
(** Prometheus text exposition: counters, gauges, and histograms with
    cumulative [_bucket{le=...}] lines plus [_sum]/[_count]. Names are
    sanitized to [[a-zA-Z0-9_:]]. *)

(** {1 Span recorder} *)

type span = {
  sp_trace : int;  (** request/trace id the span belongs to *)
  sp_track : string;  (** logical thread: "reader-3", "dispatcher", ... *)
  sp_name : string;  (** phase: "parse", "queue-wait", "execute", ... *)
  sp_start : float;  (** wall-clock seconds *)
  sp_stop : float;
}

type recorder
(** Bounded buffer of completed spans; safe across domains. *)

val recorder : ?max_spans:int -> unit -> recorder
(** Default capacity 65536 spans; once full, further spans are counted in
    {!dropped_spans} rather than evicting history, so the head of a trace
    is always retained. @raise Invalid_argument if [max_spans < 1]. *)

val record :
  recorder ->
  trace:int ->
  track:string ->
  name:string ->
  start:float ->
  stop:float ->
  unit

val spans : recorder -> span list
(** All retained spans sorted by start time. *)

val span_count : recorder -> int
val dropped_spans : recorder -> int
