(** Small statistics helpers used by the evaluation harness. *)

val mean : float list -> float
(** Arithmetic mean. @raise Invalid_argument on the empty list. *)

val gmean : float list -> float
(** Geometric mean (the paper reports gmean speedups).
    @raise Invalid_argument on an empty list or non-positive element. *)

val min_max : float list -> float * float
(** @raise Invalid_argument on the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,1\]], nearest-rank on the sorted list. *)

val stddev : float list -> float

(** {1 Log-bucketed histograms}

    Bounded-memory summaries for long-lived services: percentiles are derived
    from bucket counts rather than retained samples, with relative error
    bounded by the bucket growth factor. Not thread-safe on their own —
    callers synchronize (see {!Metrics}). *)

type hist
(** Mutable log-bucketed histogram. *)

val hist_create : ?lo:float -> ?growth:float -> ?buckets:int -> unit -> hist
(** [hist_create ()] spans \[1e-6, 1e3) with 45 buckets growing by
    [10^0.2] (5 per decade) plus underflow/overflow buckets.
    @raise Invalid_argument if [lo <= 0], [growth <= 1] or [buckets < 1]. *)

val hist_add : hist -> float -> unit
(** Record one observation. NaN observations are ignored. *)

val hist_count : hist -> int
val hist_sum : hist -> float
val hist_mean : hist -> float
(** 0 on an empty histogram. *)

val hist_min : hist -> float option
val hist_max : hist -> float option

val hist_copy : hist -> hist
(** Deep copy (for race-free snapshots under the owner's lock). *)

val hist_merge : hist -> hist -> hist
(** Fresh histogram holding the union of both inputs.
    @raise Invalid_argument if the bucket layouts differ. *)

val hist_buckets : hist -> (float * float * int) list
(** Non-empty buckets as [(lo, hi, count)], ascending. Underflow reports
    [lo = 0.]; overflow reports [hi = infinity]. *)

val percentile_hist : float -> hist -> float
(** [percentile_hist p h] with [p] in [\[0,1\]]: rank-compatible with
    {!percentile}, linearly interpolated within the covering bucket and
    clamped to the observed \[min, max\]. The extreme ranks are exact (the
    tracked min and max); interior ranks are within a factor of [growth]
    of the exact nearest-rank percentile.
    @raise Invalid_argument on an empty histogram or [p] out of range. *)
