(* Domain-safe metrics registry: counters, gauges, log-bucketed latency
   histograms and a bounded span recorder.

   This module deliberately has no notion of time — phloem_util does not
   link unix, so callers (the daemon, the harness) pass wall-clock floats.
   Counters and gauges are atomics; histograms and the span recorder take a
   short critical section per observation. Instrument handles are
   get-or-create so hot paths can resolve them once and hammer the atomic. *)

type counter = int Atomic.t
type gauge = float Atomic.t
type histogram = { hi_lock : Mutex.t; hi_hist : Stats.hist }

type t = {
  m_lock : Mutex.t;
  m_counters : (string, counter) Hashtbl.t;
  m_gauges : (string, gauge) Hashtbl.t;
  m_hists : (string, histogram) Hashtbl.t;
}

let create () =
  {
    m_lock = Mutex.create ();
    m_counters = Hashtbl.create 16;
    m_gauges = Hashtbl.create 16;
    m_hists = Hashtbl.create 16;
  }

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let get_or_create t tbl name mk =
  with_lock t.m_lock (fun () ->
      match Hashtbl.find_opt tbl name with
      | Some v -> v
      | None ->
        let v = mk () in
        Hashtbl.replace tbl name v;
        v)

let counter t name = get_or_create t t.m_counters name (fun () -> Atomic.make 0)
let gauge t name = get_or_create t t.m_gauges name (fun () -> Atomic.make 0.0)

let histogram ?lo ?growth ?buckets t name =
  get_or_create t t.m_hists name (fun () ->
      {
        hi_lock = Mutex.create ();
        hi_hist = Stats.hist_create ?lo ?growth ?buckets ();
      })

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c by : int)
let counter_value c = Atomic.get c
let set g v = Atomic.set g v
let gauge_value g = Atomic.get g

let observe h v = with_lock h.hi_lock (fun () -> Stats.hist_add h.hi_hist v)

let observed h = with_lock h.hi_lock (fun () -> Stats.hist_copy h.hi_hist)

(* --- snapshots ---------------------------------------------------------- *)

type snapshot = {
  sn_counters : (string * int) list;
  sn_gauges : (string * float) list;
  sn_hists : (string * Stats.hist) list;
}

let by_name (a, _) (b, _) = String.compare a b

let snapshot t =
  (* Take the registry lock only to list the instruments; each histogram is
     then copied under its own lock so observers never block behind a
     long-running snapshot. *)
  let counters, gauges, hists =
    with_lock t.m_lock (fun () ->
        ( Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.m_counters [],
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.m_gauges [],
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.m_hists [] ))
  in
  {
    sn_counters =
      List.sort by_name (List.map (fun (k, c) -> (k, Atomic.get c)) counters);
    sn_gauges =
      List.sort by_name (List.map (fun (k, g) -> (k, Atomic.get g)) gauges);
    sn_hists = List.sort by_name (List.map (fun (k, h) -> (k, observed h)) hists);
  }

let merge_assoc combine a b =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) a;
  List.iter
    (fun (k, v) ->
      match Hashtbl.find_opt tbl k with
      | None -> Hashtbl.replace tbl k v
      | Some prev -> Hashtbl.replace tbl k (combine prev v))
    b;
  List.sort by_name (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let merge a b =
  {
    sn_counters = merge_assoc ( + ) a.sn_counters b.sn_counters;
    sn_gauges = merge_assoc Float.max a.sn_gauges b.sn_gauges;
    sn_hists = merge_assoc Stats.hist_merge a.sn_hists b.sn_hists;
  }

(* --- Prometheus text exposition ----------------------------------------- *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let prom_float v =
  if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else Printf.sprintf "%.9g" v

let to_prometheus snap =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (k, v) ->
      let n = sanitize k in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n%s %d\n" n n v))
    snap.sn_counters;
  List.iter
    (fun (k, v) ->
      let n = sanitize k in
      Buffer.add_string buf
        (Printf.sprintf "# TYPE %s gauge\n%s %s\n" n n (prom_float v)))
    snap.sn_gauges;
  List.iter
    (fun (k, h) ->
      let n = sanitize k in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" n);
      let cum = ref 0 in
      List.iter
        (fun (_, hi, c) ->
          cum := !cum + c;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" n (prom_float hi) !cum))
        (Stats.hist_buckets h);
      if !cum < Stats.hist_count h then
        (* defensive: hist_buckets covers every sample, but keep the +Inf
           bucket consistent with _count regardless *)
        cum := Stats.hist_count h;
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n !cum);
      Buffer.add_string buf
        (Printf.sprintf "%s_sum %s\n" n (prom_float (Stats.hist_sum h)));
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n (Stats.hist_count h)))
    snap.sn_hists;
  Buffer.contents buf

(* --- span recorder ------------------------------------------------------ *)

type span = {
  sp_trace : int;
  sp_track : string;
  sp_name : string;
  sp_start : float;
  sp_stop : float;
}

type recorder = {
  r_lock : Mutex.t;
  r_max : int;
  mutable r_spans : span list; (* newest first *)
  mutable r_count : int;
  mutable r_dropped : int;
}

let recorder ?(max_spans = 65536) () =
  if max_spans < 1 then invalid_arg "Metrics.recorder: max_spans must be >= 1";
  {
    r_lock = Mutex.create ();
    r_max = max_spans;
    r_spans = [];
    r_count = 0;
    r_dropped = 0;
  }

let record r ~trace ~track ~name ~start ~stop =
  with_lock r.r_lock (fun () ->
      if r.r_count >= r.r_max then r.r_dropped <- r.r_dropped + 1
      else begin
        r.r_spans <-
          {
            sp_trace = trace;
            sp_track = track;
            sp_name = name;
            sp_start = start;
            sp_stop = stop;
          }
          :: r.r_spans;
        r.r_count <- r.r_count + 1
      end)

let spans r =
  let s = with_lock r.r_lock (fun () -> r.r_spans) in
  List.sort
    (fun a b ->
      match Float.compare a.sp_start b.sp_start with
      | 0 -> Float.compare a.sp_stop b.sp_stop
      | c -> c)
    s

let span_count r = with_lock r.r_lock (fun () -> r.r_count)
let dropped_spans r = with_lock r.r_lock (fun () -> r.r_dropped)
