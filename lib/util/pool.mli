(** Fixed-size work pool on OCaml 5 domains for embarrassingly parallel
    sweeps (the harness's variant x input simulation jobs, the compiler's
    candidate-cut profiling).

    Determinism contract: [map] returns results in submission order
    regardless of completion order, and every job must itself be a
    deterministic function of its input — under that contract a pooled
    sweep produces byte-identical output to the serial one. When several
    jobs raise, the exception of the lowest-index job is re-raised (with
    its backtrace), so failure surfacing is deterministic too.

    [create ~jobs:1] spawns no domains: every [map]/[run] executes the
    jobs inline in the calling domain, in order — exactly the serial path.
    Calling [map] from inside a pool job (a nested submit) is supported
    and also runs inline in the worker, which cannot deadlock. *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] makes a pool of [jobs] domains total: [jobs - 1]
    worker domains are spawned, and the submitting domain participates in
    every batch. [jobs] defaults to [default_jobs ()] and is clamped to
    the range [1 .. default_jobs ()] — pool work is CPU-bound, so domains
    beyond the recommended count only add GC-barrier and scheduling
    overhead. Use {!jobs} to observe the effective size. *)

val jobs : t -> int
(** Total domain count (workers + the submitting caller). *)

val map : ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f items] applies [f] to every element, fanning the work out
    across the pool's domains, and returns the results in submission
    order. [chunk] (default 1) groups that many consecutive items into one
    unit of scheduling — raise it for very fine-grained jobs. Blocks until
    the whole batch is done. If any job raised, the batch still runs to
    completion and the lowest-index exception is re-raised. *)

val map_list : ?chunk:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** [map] over a list, preserving order. *)

val run : t -> (unit -> 'a) list -> 'a list
(** [run pool thunks] executes independent thunks across the pool and
    returns their results in the thunks' order. *)

type error = {
  e_index : int;  (** exact index of the failing item *)
  e_exn : exn;
  e_backtrace : Printexc.raw_backtrace;
}
(** One captured per-item failure from {!try_map}/{!try_run}. *)

val try_map : ?chunk:int -> t -> ('a -> 'b) -> 'a array -> ('b, error) result array
(** Like {!map}, but a raising item becomes an [Error] cell (carrying its
    exact index and backtrace) instead of aborting the batch: every sibling
    item still runs and its result is preserved as an [Ok] cell, in
    submission order. Never raises from the jobs themselves. *)

val try_run : t -> (unit -> 'a) list -> ('a, error) result list
(** {!try_map} over independent thunks, in the thunks' order. *)

val first_error : ('b, error) result array -> error option
(** The lowest-index [Error] of a {!try_map} batch, if any — the one
    {!map} would have re-raised. *)

val shutdown : t -> unit
(** Joins the worker domains. Idempotent. Using the pool afterwards raises
    [Invalid_argument]; jobs already inline (jobs = 1) are unaffected. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and always shuts it down. *)
