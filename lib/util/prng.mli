(** Deterministic pseudo-random number generator (splitmix64).

    All synthetic inputs (graphs, matrices) are generated from explicit seeds
    so every experiment is reproducible bit-for-bit. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. *)

val copy : t -> t

val split : t -> t
(** [split t] derives an independent child generator, advancing [t] once.
    Successive splits of one parent yield distinct, well-separated
    streams. *)

val of_key : seed:int -> key:int -> t
(** [of_key ~seed ~key] is a keyed stream: a pure function of [(seed,
    key)], independent of the order in which streams are created. Use one
    key per job so parallel runs draw identical numbers under any domain
    schedule. *)

val next : t -> int
(** [next t] is a uniformly distributed 62-bit non-negative int. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
