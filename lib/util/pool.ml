(* Work pool on OCaml 5 domains. A fixed set of worker domains blocks on a
   task deque; [map] carves its item array into chunks, pushes one drain
   task per worker, and the submitting domain drains chunks alongside them.
   Results land in a pre-sized slot array indexed by item position, which
   is what makes the returned order independent of the completion order. *)

type batch_state = {
  b_mutex : Mutex.t; (* guards next/completed/exn of this batch *)
  mutable b_next : int; (* next chunk index to hand out *)
  mutable b_completed : int;
  b_n_chunks : int;
  (* lowest-index failure so that which exception surfaces does not depend
     on the domain schedule *)
  mutable b_exn : (int * exn * Printexc.raw_backtrace) option;
  b_done : Condition.t; (* signalled when completed = n_chunks *)
}

type t = {
  n_jobs : int;
  mutex : Mutex.t; (* guards tasks/stopped *)
  work : Condition.t;
  tasks : (unit -> unit) Queue.t;
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
}

(* Set in every worker domain: a [map] issued from inside a job must not
   block on the pool it is running on, so nested submits execute inline. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let default_jobs () = Domain.recommended_domain_count ()

let worker_loop pool =
  Domain.DLS.set in_worker true;
  let rec next () =
    Mutex.lock pool.mutex;
    let rec wait () =
      if pool.stopped then begin
        Mutex.unlock pool.mutex;
        None
      end
      else
        match Queue.take_opt pool.tasks with
        | Some task ->
          Mutex.unlock pool.mutex;
          Some task
        | None ->
          Condition.wait pool.work pool.mutex;
          wait ()
    in
    match wait () with
    | None -> ()
    | Some task ->
      task ();
      next ()
  in
  next ()

let create ?jobs () =
  (* Clamp to the machine's recommended domain count: every task here is
     CPU-bound, so worker domains beyond that only add GC-barrier and
     scheduling overhead (on a single-CPU container, --jobs 4 would
     timeshare one core and run *slower* than serial). Results are
     submission-ordered and deterministic either way, so the clamp is
     observable only as wall-clock. *)
  let cap = max 1 (default_jobs ()) in
  let n_jobs =
    max 1 (min cap (match jobs with Some j -> j | None -> cap))
  in
  let pool =
    {
      n_jobs;
      mutex = Mutex.create ();
      work = Condition.create ();
      tasks = Queue.create ();
      stopped = false;
      workers = [];
    }
  in
  pool.workers <-
    List.init (n_jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let jobs t = t.n_jobs

let serial_map f items = Array.init (Array.length items) (fun i -> f items.(i))

let map ?(chunk = 1) t f items =
  let n = Array.length items in
  let chunk = max 1 chunk in
  if n = 0 then [||]
  else if t.n_jobs <= 1 || n = 1 || Domain.DLS.get in_worker then
    (* serial / nested path: run inline, in order, in this domain *)
    serial_map f items
  else begin
    if t.stopped then invalid_arg "Pool.map: pool is shut down";
    let n_chunks = (n + chunk - 1) / chunk in
    let results = Array.make n None in
    let batch =
      {
        b_mutex = Mutex.create ();
        b_next = 0;
        b_completed = 0;
        b_n_chunks = n_chunks;
        b_exn = None;
        b_done = Condition.create ();
      }
    in
    let take_chunk () =
      Mutex.lock batch.b_mutex;
      let ci = batch.b_next in
      let r = if ci < n_chunks then (batch.b_next <- ci + 1; Some ci) else None in
      Mutex.unlock batch.b_mutex;
      r
    in
    let run_chunk ci =
      let lo = ci * chunk in
      let hi = min n (lo + chunk) in
      let failure = ref None in
      (try
         for i = lo to hi - 1 do
           results.(i) <- Some (f items.(i))
         done
       with e -> failure := Some (lo, e, Printexc.get_raw_backtrace ()));
      Mutex.lock batch.b_mutex;
      (match (!failure, batch.b_exn) with
      | Some (i, _, _), Some (j, _, _) when j <= i -> ()
      | Some _, _ -> batch.b_exn <- !failure
      | None, _ -> ());
      batch.b_completed <- batch.b_completed + 1;
      if batch.b_completed = n_chunks then Condition.broadcast batch.b_done;
      Mutex.unlock batch.b_mutex
    in
    let drain () =
      let rec go () =
        match take_chunk () with
        | Some ci ->
          run_chunk ci;
          go ()
        | None -> ()
      in
      go ()
    in
    (* one drain task per worker; a task arriving after the batch is spent
       finds no chunk and exits immediately *)
    Mutex.lock t.mutex;
    for _ = 2 to min t.n_jobs n_chunks do
      Queue.add drain t.tasks
    done;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    (* the submitter works too, then waits out any straggler chunks *)
    drain ();
    Mutex.lock batch.b_mutex;
    while batch.b_completed < n_chunks do
      Condition.wait batch.b_done batch.b_mutex
    done;
    Mutex.unlock batch.b_mutex;
    match batch.b_exn with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
      Array.map (function Some v -> v | None -> assert false) results
  end

let map_list ?chunk t f l = Array.to_list (map ?chunk t f (Array.of_list l))
let run t thunks = map_list t (fun thunk -> thunk ()) thunks

(* ---- graceful degradation: per-item capture instead of batch abort ---- *)

type error = {
  e_index : int; (* exact index of the failing item, not its chunk *)
  e_exn : exn;
  e_backtrace : Printexc.raw_backtrace;
}

(* [guard] can never raise, so the underlying [map] batch always completes:
   every sibling item's result survives a failure as an [Ok] cell. *)
let guard i f x =
  try Ok (f x)
  with e ->
    Error { e_index = i; e_exn = e; e_backtrace = Printexc.get_raw_backtrace () }

let try_map ?chunk t f items =
  map ?chunk t (fun (i, x) -> guard i f x) (Array.mapi (fun i x -> (i, x)) items)

let try_run t thunks =
  Array.to_list (try_map t (fun thunk -> thunk ()) (Array.of_list thunks))

let first_error results =
  Array.fold_left
    (fun acc r ->
      match (acc, r) with
      | None, Error e -> Some e
      | Some a, Error e when e.e_index < a.e_index -> Some e
      | _ -> acc)
    None results

let shutdown t =
  Mutex.lock t.mutex;
  t.stopped <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  let ws = t.workers in
  t.workers <- [];
  List.iter Domain.join ws

let with_pool ?jobs f =
  let pool = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
