(** Structured diagnostics: level-filtered records routed to a pluggable
    sink. The default sink writes to stderr; the default level is [Warn] so
    library code stays quiet unless a caller opts in.

    Emission is domain-safe: a mutex serializes sink invocations, so
    records from parallel harness jobs never interleave and capture sinks
    need no locking of their own. [set_level]/[set_sink] are still
    process-global configuration — set them before fanning work out. *)

type level = Debug | Info | Warn | Error

type record = {
  r_level : level;
  r_component : string;
  r_message : string;
}

val severity : level -> int
val level_to_string : level -> string
val level_of_string : string -> level option

val set_level : level -> unit
val level : unit -> level
val enabled : level -> bool

val set_sink : (record -> unit) -> unit
val default_sink : record -> unit

val debug : ?component:string -> ('a, unit, string, unit) format4 -> 'a
val info : ?component:string -> ('a, unit, string, unit) format4 -> 'a
val warn : ?component:string -> ('a, unit, string, unit) format4 -> 'a
val error : ?component:string -> ('a, unit, string, unit) format4 -> 'a

val with_capture : ?level:level -> (unit -> 'a) -> 'a * record list
