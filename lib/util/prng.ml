type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* splitmix64: fast, good statistical quality, trivially seedable. *)
let next_i64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t = Int64.to_int (Int64.shift_right_logical (next_i64 t) 2)

(* The splitmix64 output finalizer on its own: a bijective mixer used to
   derive well-separated child states. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next_i64 t }

let of_key ~seed ~key =
  {
    state =
      mix64
        (Int64.logxor
           (mix64 (Int64.of_int seed))
           (Int64.mul (Int64.add (Int64.of_int key) 1L) 0x9E3779B97F4A7C15L));
  }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int";
  next t mod bound

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (next_i64 t) 11) in
  bound *. (x /. 9007199254740992.0)

let bool t = Int64.logand (next_i64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
