let mean = function
  | [] -> invalid_arg "Stats.mean: empty"
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let gmean = function
  | [] -> invalid_arg "Stats.gmean: empty"
  | xs ->
    let sum_logs =
      List.fold_left
        (fun acc x ->
          if x <= 0.0 then invalid_arg "Stats.gmean: non-positive element";
          acc +. log x)
        0.0 xs
    in
    exp (sum_logs /. float_of_int (List.length xs))

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty"
  | x :: xs -> List.fold_left (fun (lo, hi) y -> (min lo y, max hi y)) (x, x) xs

let percentile p = function
  | [] -> invalid_arg "Stats.percentile: empty"
  | xs ->
    if p < 0.0 || p > 1.0 then invalid_arg "Stats.percentile: p out of range";
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    let idx = int_of_float (ceil (p *. float_of_int n)) - 1 in
    a.(max 0 (min (n - 1) idx))

let stddev xs =
  let m = mean xs in
  let var = mean (List.map (fun x -> (x -. m) *. (x -. m)) xs) in
  sqrt var

(* --- log-bucketed histograms -------------------------------------------

   Retaining every latency sample of a long-lived daemon is unbounded
   memory; a log-bucketed histogram keeps percentile derivation O(buckets)
   and bounds the relative error of any quantile by the bucket growth
   factor. counts.(0) is the underflow bucket (< lo), counts.(n+1) the
   overflow bucket (>= lo * growth^n); middle bucket i covers
   [lo * growth^(i-1), lo * growth^i). *)

type hist = {
  h_lo : float;
  h_growth : float;
  h_log_growth : float;
  h_counts : int array;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float; (* +inf until the first observation *)
  mutable h_max : float; (* -inf until the first observation *)
}

let hist_create ?(lo = 1e-6) ?(growth = 10.0 ** 0.2) ?(buckets = 45) () =
  if lo <= 0.0 then invalid_arg "Stats.hist_create: lo must be > 0";
  if growth <= 1.0 then invalid_arg "Stats.hist_create: growth must be > 1";
  if buckets < 1 then invalid_arg "Stats.hist_create: buckets must be >= 1";
  {
    h_lo = lo;
    h_growth = growth;
    h_log_growth = log growth;
    h_counts = Array.make (buckets + 2) 0;
    h_count = 0;
    h_sum = 0.0;
    h_min = infinity;
    h_max = neg_infinity;
  }

let hist_n_buckets h = Array.length h.h_counts - 2

(* Lower bound of middle bucket [i] (1-based among the middle buckets). *)
let bucket_lo h i = h.h_lo *. (h.h_growth ** float_of_int (i - 1))

let bucket_index h v =
  let n = hist_n_buckets h in
  if v < h.h_lo then 0
  else if v = infinity then n + 1
  else
    let i = int_of_float (log (v /. h.h_lo) /. h.h_log_growth) in
    if i >= n then n + 1 else 1 + i

let hist_add h v =
  if not (Float.is_nan v) then begin
    let i = bucket_index h v in
    h.h_counts.(i) <- h.h_counts.(i) + 1;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v
  end

let hist_count h = h.h_count
let hist_sum h = h.h_sum
let hist_min h = if h.h_count = 0 then None else Some h.h_min
let hist_max h = if h.h_count = 0 then None else Some h.h_max

let hist_mean h =
  if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count

let hist_copy h = { h with h_counts = Array.copy h.h_counts }

let hist_merge a b =
  if
    a.h_lo <> b.h_lo || a.h_growth <> b.h_growth
    || Array.length a.h_counts <> Array.length b.h_counts
  then invalid_arg "Stats.hist_merge: shape mismatch";
  {
    a with
    h_counts =
      Array.init (Array.length a.h_counts) (fun i ->
          a.h_counts.(i) + b.h_counts.(i));
    h_count = a.h_count + b.h_count;
    h_sum = a.h_sum +. b.h_sum;
    h_min = Float.min a.h_min b.h_min;
    h_max = Float.max a.h_max b.h_max;
  }

let hist_buckets h =
  let n = hist_n_buckets h in
  let out = ref [] in
  for i = Array.length h.h_counts - 1 downto 0 do
    if h.h_counts.(i) > 0 then begin
      let lo, hi =
        if i = 0 then (0.0, h.h_lo)
        else if i = n + 1 then (bucket_lo h (n + 1), infinity)
        else (bucket_lo h i, bucket_lo h (i + 1))
      in
      out := (lo, hi, h.h_counts.(i)) :: !out
    end
  done;
  !out

let percentile_hist p h =
  if h.h_count = 0 then invalid_arg "Stats.percentile_hist: empty";
  if p < 0.0 || p > 1.0 then invalid_arg "Stats.percentile_hist: p out of range";
  let n = h.h_count in
  let rank = max 1 (int_of_float (ceil (p *. float_of_int n))) in
  (* the extreme ranks are known exactly: nearest-rank 1 is the smallest
     sample and nearest-rank n the largest, both tracked outside buckets *)
  if rank = 1 then h.h_min
  else if rank >= n then h.h_max
  else
  let rec find i cum =
    let c = h.h_counts.(i) in
    if cum + c >= rank then (i, cum, c) else find (i + 1) (cum + c)
  in
  let i, cum, c = find 0 0 in
  let nb = hist_n_buckets h in
  let blo, bhi =
    if i = 0 then (Float.min h.h_min h.h_lo, h.h_lo)
    else if i = nb + 1 then (bucket_lo h (nb + 1), Float.max h.h_max (bucket_lo h (nb + 1)))
    else (bucket_lo h i, bucket_lo h (i + 1))
  in
  (* linear interpolation at the rank's position within the bucket, clamped
     to the observed range so a sparse bucket cannot report a value no
     sample ever reached *)
  let v = blo +. ((bhi -. blo) *. (float_of_int (rank - cum) /. float_of_int c)) in
  Float.min h.h_max (Float.max h.h_min v)
