(** One-call simulation façade: validate a pipeline, execute its functional
    (Kahn-network) semantics, then replay the micro-op traces on the
    cycle-level timing model. Every benchmark, example, and experiment goes
    through this entry point. *)

type run = {
  sr_functional : Phloem_ir.Interp.result;
      (** architectural results: final arrays, instruction counts, traces *)
  sr_timing : Engine.result;  (** cycles, breakdowns, cache/branch counters *)
  sr_energy : Energy.breakdown;
}

val cycles : run -> int
val instrs : run -> int

val ra_cores : Phloem_ir.Types.pipeline -> int array -> int array
(** Reference-accelerator placement: each RA sits by the core of the stage
    that consumes its output (chains follow the final consumer). *)

val prepare : Phloem_ir.Types.pipeline -> Phloem_ir.Flat.program array
(** Validate [p] and lower every stage to its flat µop program. Memoized by
    pipeline digest (mutex-guarded, FIFO-bounded), so a sweep that simulates
    one pipeline under many configs compiles it once. Set
    [PHLOEM_TRACE_CACHE=0] to disable all memoization.
    @raise Phloem_ir.Validate.Invalid on malformed pipelines *)

val functional :
  ?inputs:(string * Phloem_ir.Types.value array) list ->
  Phloem_ir.Types.pipeline ->
  Phloem_ir.Interp.result
(** Execute the functional (Kahn-network) semantics on the compiled µop
    core. Memoized by (pipeline, inputs, op budget); cached traces are
    column-packed before publication so concurrent timing replays on pool
    domains share one read-only snapshot. Failed executions raise and are
    never cached. *)

val simulate :
  ?cfg:Config.t ->
  ?thread_core:int array ->
  ?queue_caps:(int * int) list ->
  ?telemetry:Telemetry.t ->
  ?faults:Faults.t ->
  ?watchdog:int ->
  ?cycle_budget:int ->
  Phloem_ir.Types.pipeline ->
  Phloem_ir.Interp.result ->
  run
(** Replay a functional result's µop traces on the timing model. This is
    the only per-config work in a sweep: callers obtain the functional
    result once via {!functional} and replay it under each config.
    [queue_caps] overrides individual queue capacities for the replay only
    (see {!Engine.run}) — the pipeline, and with it the memoized compiled
    program and functional trace, is untouched. *)

val run :
  ?cfg:Config.t ->
  ?thread_core:int array ->
  ?inputs:(string * Phloem_ir.Types.value array) list ->
  ?telemetry:Telemetry.t ->
  ?faults:Faults.t ->
  ?watchdog:int ->
  ?cycle_budget:int ->
  Phloem_ir.Types.pipeline ->
  run
(** [run p] validates and simulates [p]. [inputs] binds array contents by
    name (missing arrays are zero-initialized); [thread_core] maps stage
    index to core (default: packed, [Config.smt_threads] per core);
    [telemetry], when given, is wired into the timing replay (interval
    samples, stall-class timelines, Chrome trace export) — the default path
    pays no observability cost. [faults], [watchdog], and [cycle_budget]
    are forwarded to {!Engine.run}.
    @raise Phloem_ir.Validate.Invalid on malformed pipelines
    @raise Phloem_ir.Interp.Runtime_error on execution errors
    @raise Phloem_ir.Forensics.Pipeline_failure if the queue network
    deadlocks or livelocks, or the cycle budget runs out — the exception
    carries a structured report (failure kind, per-agent blocked-on state,
    cyclic wait chain, queue occupancy snapshot, diagnosis) *)

val run_tree :
  ?cfg:Config.t ->
  ?thread_core:int array ->
  ?inputs:(string * Phloem_ir.Types.value array) list ->
  ?telemetry:Telemetry.t ->
  ?faults:Faults.t ->
  ?watchdog:int ->
  ?cycle_budget:int ->
  Phloem_ir.Types.pipeline ->
  run
(** Reference path: identical to {!run} but executes the functional
    semantics on the tree-walking interpreter, bypassing the compiled core
    and every cache. Differential tests assert [run] and [run_tree] agree
    byte-for-byte on results, timing, attribution, and failures. *)

val clear_caches : unit -> unit
(** Drop all memoized programs and traces and reset the hit counters. *)

val cache_stats : unit -> int * int
(** [(hits, misses)] of the functional-trace cache since the last clear. *)

val cache_enabled : unit -> bool
(** Whether memoization is currently on. The initial value comes from the
    [PHLOEM_TRACE_CACHE] environment variable ([0]/[false]/[off] disable);
    after startup it is runtime state settable with {!set_cache_enabled} —
    a long-lived daemon can toggle it at any time. *)

val set_cache_enabled : bool -> unit
(** Turn memoization on or off at runtime. Disabling does not drop entries
    already cached (use {!clear_caches} for that); re-enabling resumes
    serving them. *)

val set_cache_capacity : int -> unit
(** Set the FIFO bound (entries) of both the compiled-program and the
    functional-trace cache. Shrinking below the current occupancy evicts
    oldest-first immediately, so the bound always holds.
    @raise Invalid_argument if the capacity is < 1. *)

val cache_capacity : unit -> int
(** The current FIFO bound of each cache (default 64). *)

type cache_counters = {
  cc_program_hits : int;
  cc_program_misses : int;
  cc_program_evictions : int;
  cc_program_entries : int;  (** compiled programs currently cached *)
  cc_trace_hits : int;
  cc_trace_misses : int;
  cc_trace_evictions : int;
  cc_trace_entries : int;  (** functional traces currently cached *)
  cc_capacity : int;  (** current FIFO bound of each cache *)
}
(** Hit / miss / eviction / occupancy counters of both memo tables, for a
    long-lived server's stats endpoint. Counters reset on {!clear_caches}. *)

val cache_counters : unit -> cache_counters

val stage_names : Phloem_ir.Types.pipeline -> string array
(** Stage names in thread order, for labeling {!analyze} reports. *)

val analyze : ?stage_names:string array -> run -> Analysis.report
(** Bottleneck attribution for a finished run; see {!Analysis.of_result}. *)

val json_of_run : run -> Telemetry.Json.t
(** Machine-readable report of a run's aggregate counters (cycles, IPC,
    cycle breakdown, cache/branch/queue/RA counters, energy). The values
    equal the plain-text reports printed by the CLI tools. *)
