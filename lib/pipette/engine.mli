(** Cycle-level timing replay of micro-op traces on the Pipette
    architecture. Each pipeline stage is an SMT thread; per cycle a core
    dispatches in program order, issues out of order within per-thread
    windows (subject to data deps, memory ports, queue occupancy, and
    branch redirects), and retires in order. Stall cycles fast-forward
    through an event heap. *)

type queue_attr = {
  qa_id : int;
  qa_capacity : int;
  qa_full : int array;
      (** per thread: cycles blocked enqueueing into this queue while it was
          full (downstream backpressure) *)
  qa_empty : int array;
      (** per thread: cycles starved waiting on a dequeue from this queue
          (upstream too slow) *)
  qa_enqs : int array;  (** per thread: enqueues issued (the producer map) *)
  qa_deqs : int array;  (** per thread: dequeues issued (the consumer map) *)
  qa_occ_hist : int array;
      (** cycles spent at each occupancy 0..capacity; buckets sum exactly to
          the run's cycle count *)
}

type attribution = {
  at_queues : queue_attr array;  (** indexed by queue id *)
  at_issue : int array;  (** per-thread 4-way split, summing to aggregates *)
  at_backend : int array;
  at_queue : int array;
  at_other : int array;
  at_barrier : int array;
      (** per thread: barrier-wait cycles, included in [at_queue] *)
  at_backend_level : int array array;
      (** per thread: backend stalls blamed on the serving cache level
          [|port/unattributed; L1; L2; L3; DRAM|], summing to [at_backend] *)
}
(** Refined stall attribution. Reconciliation invariants: for every thread
    [t], [sum_q qa_full.(t) + sum_q qa_empty.(t) + at_barrier.(t) =
    at_queue.(t)] and [Array.fold_left (+) 0 at_backend_level.(t) =
    at_backend.(t)]; the per-thread arrays sum to the aggregate fields of
    {!result}. *)

type result = {
  cycles : int;
  instrs : int;
  issue_cycles : int;  (** summed over threads *)
  backend_cycles : int;
  queue_cycles : int;
  other_cycles : int;
  cache : Cache.counters;
  branch_lookups : int;
  branch_mispredicts : int;
  queue_ops : int;
  ra_fetches : int;
  n_threads : int;
  n_cores_used : int;
  attribution : attribution;
}

val default_cycle_budget : int
(** 500M cycles: the bailout when a replay never terminates. *)

val default_watchdog : int
(** 5M cycles: the no-retire window after which a still-ticking replay is
    declared livelocked. *)

val default_thread_core : Config.t -> int -> int array
(** [default_thread_core cfg n] packs [n] threads onto cores,
    [cfg.smt_threads] per core; raises [Invalid_argument] if they do not
    fit. *)

val run :
  ?cfg:Config.t ->
  ?thread_core:int array ->
  ?ra_core:int array ->
  ?queue_caps:(int * int) list ->
  ?telemetry:Telemetry.t ->
  ?faults:Faults.t ->
  ?watchdog:int ->
  ?cycle_budget:int ->
  Phloem_ir.Types.pipeline ->
  Phloem_ir.Trace.t ->
  result
(** Replay [trace] of pipeline [p] and return cycle counts, breakdowns, and
    the refined stall {!attribution}. [queue_caps] overrides individual
    queue capacities as [(queue id, capacity)] pairs without touching the
    pipeline itself — the autotuner's per-queue depth knob; entries naming
    unknown queues or capacities below 1 are ignored. [telemetry], when
    given, receives
    interval samples and per-thread stall-state timelines; [faults] injects
    a deterministic fault plan (see {!Faults}); with [?faults:None] and no
    watchdog trip every counter is byte-identical to the unhooked engine.

    A replay that cannot finish raises
    [Phloem_ir.Forensics.Pipeline_failure] with a structured report that
    separates the three failure modes: {e deadlock} (no thread can ever
    run again — the report names the cyclic wait chain over queues),
    {e livelock} (cycles keep elapsing but nothing retired within the
    [watchdog] window, default {!default_watchdog}), and {e budget
    exhaustion} (ops were still retiring when [cycle_budget], default
    {!default_cycle_budget}, ran out). *)
