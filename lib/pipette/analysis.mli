(** Bottleneck attribution: turns a run's refined stall counters
    ({!Engine.attribution}) into an actionable report — per-stage
    issue/stall balance, the critical (most stall-attributed) queue with
    backpressure vs starvation direction, per-cache-level backend blame,
    and a quantified headroom estimate for splitting the bottleneck
    stage. *)

type stage_report = {
  st_thread : int;
  st_name : string;
  st_issue : int;  (** cycles with at least one op issued *)
  st_backend : int;  (** stalled on memory or operands *)
  st_backend_level : int array;
      (** [|port/unattributed; L1; L2; L3; DRAM|], sums to [st_backend] *)
  st_queue_full : int;  (** blocked enqueueing: downstream backpressure *)
  st_queue_empty : int;  (** starved dequeueing: upstream too slow *)
  st_barrier : int;
  st_other : int;  (** frontend / mispredict recovery *)
  st_total : int;  (** cycles accounted to this thread *)
  st_service : int;
      (** [issue + backend + other]: cycles spent on the stage's own work
          rather than waiting on the pipeline *)
}

type queue_report = {
  q_id : int;
  q_capacity : int;
  q_full : int;  (** producer-blocked cycles, summed over threads *)
  q_empty : int;  (** consumer-starved cycles, summed over threads *)
  q_enqs : int;
  q_deqs : int;
  q_producers : int list;  (** thread ids observed enqueueing *)
  q_consumers : int list;
  q_occ_hist : int array;  (** buckets sum to the run's cycle count *)
  q_mean_occ : float;
  q_frac_full : float;  (** fraction of the run at full occupancy *)
  q_frac_empty : float;  (** fraction of the run empty *)
}

type report = {
  r_cycles : int;
  r_stages : stage_report array;
  r_queues : queue_report array;
  r_bottleneck : int option;  (** thread id of the highest-service stage *)
  r_critical_queue : int option;  (** most stall-attributed queue id *)
  r_headroom : float;
      (** estimated speedup bound if the bottleneck stage were split:
          [cycles / next-highest stage service], clamped to [>= 1] *)
  r_diagnosis : string list;  (** human-readable findings, in order *)
}

type queue_direction =
  | Backpressure  (** producers blocked on a full queue *)
  | Starvation  (** consumers starved on an empty queue *)

type verdict =
  | Balanced
      (** headroom below threshold, or no attributable bottleneck: stop
          expanding this configuration *)
  | Queue_bound of { qb_queue : int; qb_direction : queue_direction }
      (** the critical queue absorbs a material share (>= 5%) of the run's
          cycles in stalls *)
  | Backend_bound of { bb_stage : int; bb_level : int }
      (** the bottleneck stage stalls on memory more than it issues;
          [bb_level] indexes [|port; L1; L2; L3; DRAM|] *)
  | Compute_bound of { cb_stage : int }
      (** the bottleneck stage is issue-limited: split it or add cores *)

val classify : ?headroom_threshold:float -> report -> verdict
(** Collapse a report into the single category the autotuner's move
    generator branches on. [headroom_threshold] (default 1.05) is the
    estimated-speedup floor below which a run counts as [Balanced]. *)

val verdict_to_string : verdict -> string

val of_result : ?stage_names:string array -> Engine.result -> report
(** Build a report from a finished run. [stage_names], when given, labels
    threads by pipeline stage (missing entries fall back to [threadN]). *)

val render : report -> string
(** Human-readable report: per-stage and per-queue tables, a queue-stall
    reconciliation line, and the diagnosis list. *)

val json_of_report : report -> Telemetry.Json.t

val json_of_failure : Phloem_ir.Forensics.report -> Telemetry.Json.t
(** Machine-readable form of a structured pipeline-failure report (failure
    kind + exit code, per-agent blocked-on states, queue occupancy
    snapshot, the cyclic wait chain, diagnosis), used by the CLI JSON
    output and the harness ["errors"] arrays. *)
