(* Deterministic fault injection: see faults.mli for the model. All random
   decisions come from one splitmix64 stream keyed by the plan; the engine
   is serial and deterministic, so draws happen in the same order on every
   replay of the same (plan, program, input). *)

open Phloem_util

type spec =
  | Queue_drop of { queue : int; prob : float }
  | Queue_dup of { queue : int; prob : float }
  | Latency_spike of { level : int; extra : int; prob : float }
  | Thread_stall of { thread : int; period : int; duration : int }
  | Thread_kill of { thread : int; after_retired : int }
  | Predictor_poison of { prob : float }

type plan = { fp_key : int; fp_specs : spec list }

let plan ?(key = 0) specs = { fp_key = key; fp_specs = specs }

(* Retry attempt [n] re-keys the stream through the keyed constructor, so
   attempts enumerate independent fault realizations of the same plan. *)
let rekey p ~attempt =
  if attempt = 0 then p
  else { p with fp_key = p.fp_key + (attempt * 0x9e3779b97f4a7c1) }

type counters = {
  mutable c_drops : int;
  mutable c_dups : int;
  mutable c_spikes : int;
  mutable c_stall_cycles : int;
  mutable c_kills : int;
  mutable c_poisons : int;
}

type t = {
  t_plan : plan;
  rng : Prng.t;
  cnt : counters;
  mutable killed : int list; (* threads already past their kill threshold *)
}

let create p =
  {
    t_plan = p;
    rng = Prng.of_key ~seed:p.fp_key ~key:0x466c74; (* "Flt" *)
    cnt =
      {
        c_drops = 0;
        c_dups = 0;
        c_spikes = 0;
        c_stall_cycles = 0;
        c_kills = 0;
        c_poisons = 0;
      };
    killed = [];
  }

let counters t = t.cnt
let total t =
  t.cnt.c_drops + t.cnt.c_dups + t.cnt.c_spikes + t.cnt.c_stall_cycles
  + t.cnt.c_kills + t.cnt.c_poisons

let roll t prob = prob > 0.0 && Prng.float t.rng 1.0 < prob

let drop_enq t ~queue =
  List.exists
    (function
      | Queue_drop { queue = q; prob } when q = -1 || q = queue ->
        if roll t prob then begin
          t.cnt.c_drops <- t.cnt.c_drops + 1;
          true
        end
        else false
      | _ -> false)
    t.t_plan.fp_specs

let dup_enq t ~queue =
  List.exists
    (function
      | Queue_dup { queue = q; prob } when q = -1 || q = queue ->
        if roll t prob then begin
          t.cnt.c_dups <- t.cnt.c_dups + 1;
          true
        end
        else false
      | _ -> false)
    t.t_plan.fp_specs

let spike t ~level =
  List.fold_left
    (fun acc spec ->
      match spec with
      | Latency_spike { level = l; extra; prob } when l = level ->
        if roll t prob then begin
          t.cnt.c_spikes <- t.cnt.c_spikes + 1;
          acc + extra
        end
        else acc
      | _ -> acc)
    0 t.t_plan.fp_specs

(* Stall windows are a pure function of the cycle count — no PRNG draw, so
   fast-forwarding over stalled regions never desynchronizes the stream. *)
let stall_release t ~thread ~now =
  let release =
    List.fold_left
      (fun acc spec ->
        match spec with
        | Thread_stall { thread = th; period; duration }
          when th = thread && period > 0 && now mod period < duration ->
          max acc (now - (now mod period) + duration)
        | _ -> acc)
      (-1) t.t_plan.fp_specs
  in
  if release >= 0 then t.cnt.c_stall_cycles <- t.cnt.c_stall_cycles + 1;
  release

let should_kill t ~thread ~retired =
  (not (List.mem thread t.killed))
  && List.exists
       (function
         | Thread_kill { thread = th; after_retired } ->
           th = thread && retired >= after_retired
         | _ -> false)
       t.t_plan.fp_specs
  && begin
       t.killed <- thread :: t.killed;
       t.cnt.c_kills <- t.cnt.c_kills + 1;
       true
     end

let poison t =
  List.exists
    (function
      | Predictor_poison { prob } ->
        if roll t prob then begin
          t.cnt.c_poisons <- t.cnt.c_poisons + 1;
          true
        end
        else false
      | _ -> false)
    t.t_plan.fp_specs

(* ---------- plan syntax ---------- *)

let level_name = function
  | 0 -> "ra"
  | 1 -> "l1"
  | 2 -> "l2"
  | 3 -> "l3"
  | _ -> "dram"

let spec_to_string = function
  | Queue_drop { queue; prob } ->
    if queue < 0 then Printf.sprintf "drop:%g" prob
    else Printf.sprintf "drop@q%d:%g" queue prob
  | Queue_dup { queue; prob } ->
    if queue < 0 then Printf.sprintf "dup:%g" prob
    else Printf.sprintf "dup@q%d:%g" queue prob
  | Latency_spike { level; extra; prob } ->
    Printf.sprintf "spike@%s+%d:%g" (level_name level) extra prob
  | Thread_stall { thread; period; duration } ->
    Printf.sprintf "stall@t%d:%dx%d" thread period duration
  | Thread_kill { thread; after_retired } ->
    Printf.sprintf "kill@t%d:%d" thread after_retired
  | Predictor_poison { prob } -> Printf.sprintf "poison:%g" prob

let to_string p = String.concat "," (List.map spec_to_string p.fp_specs)

let parse_spec s =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let split2 sep str =
    match String.index_opt str sep with
    | Some i ->
      Some
        ( String.sub str 0 i,
          String.sub str (i + 1) (String.length str - i - 1) )
    | None -> None
  in
  let head, target =
    match split2 '@' s with
    | Some (h, rest) -> (h, Some rest)
    | None -> (
      match split2 ':' s with Some (h, _) -> (h, None) | None -> (s, None))
  in
  let prob_of str =
    match float_of_string_opt str with
    | Some p when p >= 0.0 && p <= 1.0 -> Ok p
    | _ -> Error (Printf.sprintf "bad probability %S" str)
  in
  let int_of str =
    match int_of_string_opt str with
    | Some n when n >= 0 -> Ok n
    | _ -> Error (Printf.sprintf "bad number %S" str)
  in
  let ( let* ) = Result.bind in
  let after_colon str =
    match split2 ':' str with
    | Some (a, b) -> Ok (a, b)
    | None -> fail "missing ':' in %S" s
  in
  match head with
  | "drop" | "dup" ->
    let* queue, prob_str =
      match target with
      | None -> (
        match split2 ':' s with
        | Some (_, p) -> Ok (-1, p)
        | None -> fail "missing probability in %S" s)
      | Some rest ->
        let* tgt, p = after_colon rest in
        if String.length tgt > 1 && tgt.[0] = 'q' then
          let* q = int_of (String.sub tgt 1 (String.length tgt - 1)) in
          Ok (q, p)
        else fail "expected q<N> in %S" s
    in
    let* prob = prob_of prob_str in
    if head = "drop" then Ok (Queue_drop { queue; prob })
    else Ok (Queue_dup { queue; prob })
  | "spike" ->
    let* rest =
      match target with Some r -> Ok r | None -> fail "spike needs @level in %S" s
    in
    let* tgt, prob_str = after_colon rest in
    let* level, extra_str =
      match split2 '+' tgt with
      | Some (lvl, e) -> (
        match lvl with
        | "ra" -> Ok (0, e)
        | "l1" -> Ok (1, e)
        | "l2" -> Ok (2, e)
        | "l3" -> Ok (3, e)
        | "dram" -> Ok (4, e)
        | other -> fail "unknown level %S (want l1|l2|l3|dram|ra)" other)
      | None -> fail "spike needs +EXTRA in %S" s
    in
    let* extra = int_of extra_str in
    let* prob = prob_of prob_str in
    Ok (Latency_spike { level; extra; prob })
  | "stall" ->
    let* rest =
      match target with Some r -> Ok r | None -> fail "stall needs @tN in %S" s
    in
    let* tgt, sched = after_colon rest in
    if String.length tgt > 1 && tgt.[0] = 't' then
      let* thread = int_of (String.sub tgt 1 (String.length tgt - 1)) in
      let* period, duration =
        match split2 'x' sched with
        | Some (p, d) ->
          let* p = int_of p in
          let* d = int_of d in
          Ok (p, d)
        | None -> fail "stall needs PERIODxDURATION in %S" s
      in
      if duration >= period then fail "stall duration must be < period in %S" s
      else Ok (Thread_stall { thread; period; duration })
    else fail "expected t<N> in %S" s
  | "kill" ->
    let* rest =
      match target with Some r -> Ok r | None -> fail "kill needs @tN in %S" s
    in
    let* tgt, after = after_colon rest in
    if String.length tgt > 1 && tgt.[0] = 't' then
      let* thread = int_of (String.sub tgt 1 (String.length tgt - 1)) in
      let* after_retired = int_of after in
      Ok (Thread_kill { thread; after_retired })
    else fail "expected t<N> in %S" s
  | "poison" ->
    let* prob =
      match split2 ':' s with
      | Some (_, p) -> prob_of p
      | None -> fail "poison needs :PROB in %S" s
    in
    Ok (Predictor_poison { prob })
  | other -> fail "unknown fault %S (want drop|dup|spike|stall|kill|poison)" other

let of_string str =
  let parts =
    String.split_on_char ',' str |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if parts = [] then Error "empty fault plan"
  else
    let rec go acc = function
      | [] -> Ok { fp_key = 0; fp_specs = List.rev acc }
      | s :: rest -> (
        match parse_spec s with
        | Ok spec -> go (spec :: acc) rest
        | Error e -> Error e)
    in
    go [] parts

let json_of_counters t =
  let open Telemetry.Json in
  Obj
    [
      ("drops", Int t.cnt.c_drops);
      ("dups", Int t.cnt.c_dups);
      ("spikes", Int t.cnt.c_spikes);
      ("stall_cycles", Int t.cnt.c_stall_cycles);
      ("kills", Int t.cnt.c_kills);
      ("poisons", Int t.cnt.c_poisons);
      ("total", Int (total t));
    ]
