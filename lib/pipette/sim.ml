(* One-call façade: validate a pipeline, run its functional semantics, then
   replay the trace on the timing model. This is the path every benchmark,
   example, and experiment goes through. *)

open Phloem_ir

type run = {
  sr_functional : Interp.result;
  sr_timing : Engine.result;
  sr_energy : Energy.breakdown;
}

let cycles r = r.sr_timing.Engine.cycles
let instrs r = r.sr_timing.Engine.instrs

(* Derive a sensible RA-to-core placement: an RA lives next to the core of
   the stage that consumes its output (chains follow the final consumer). *)
let ra_cores (p : Types.pipeline) (thread_core : int array) =
  let stage_deqs =
    List.mapi
      (fun i (s : Types.stage) ->
        let qs = ref [] in
        let rec scan_expr (e : Types.expr) =
          match e with
          | Types.Deq q -> qs := q :: !qs
          | Types.Const _ | Types.Var _ -> ()
          | Types.Binop (_, a, b) ->
            scan_expr a;
            scan_expr b
          | Types.Unop (_, a) | Types.Is_control a | Types.Ctrl_payload a -> scan_expr a
          | Types.Load (_, i) -> scan_expr i
          | Types.Call (_, args) -> List.iter scan_expr args
        in
        let rec scan_stmt (s : Types.stmt) =
          match s with
          | Types.Assign (_, e) -> scan_expr e
          | Types.Store (_, a, b)
          | Types.Atomic_min (_, a, b)
          | Types.Atomic_add (_, a, b) ->
            scan_expr a;
            scan_expr b
          | Types.Prefetch (_, a) -> scan_expr a
          | Types.Enq (_, e) -> scan_expr e
          | Types.Enq_ctrl _ -> ()
          | Types.Enq_indexed (_, a, b) ->
            scan_expr a;
            scan_expr b
          | Types.If (_, c, t, f) ->
            scan_expr c;
            List.iter scan_stmt t;
            List.iter scan_stmt f
          | Types.While (_, c, b) ->
            scan_expr c;
            List.iter scan_stmt b
          | Types.For (_, _, lo, hi, b) ->
            scan_expr lo;
            scan_expr hi;
            List.iter scan_stmt b
          | Types.Break | Types.Exit_loops _ | Types.Barrier _ | Types.Seq_marker _ -> ()
        in
        List.iter scan_stmt s.Types.s_body;
        List.iter (fun (h : Types.handler) -> List.iter scan_stmt h.Types.h_body) s.Types.s_handlers;
        (i, !qs))
      p.Types.p_stages
  in
  let consumer_core q =
    let rec find = function
      | [] -> None
      | (i, qs) :: rest -> if List.mem q qs then Some thread_core.(i) else find rest
    in
    find stage_deqs
  in
  let ras = Array.of_list p.Types.p_ras in
  (* An RA chain's final consumer: follow ra_out through other RAs. *)
  let rec core_for_out out_q depth =
    if depth > 8 then 0
    else
      match consumer_core out_q with
      | Some c -> c
      | None -> (
        match
          Array.to_list ras
          |> List.find_opt (fun (r : Types.ra_config) -> r.Types.ra_in = out_q)
        with
        | Some r -> core_for_out r.Types.ra_out (depth + 1)
        | None -> 0)
  in
  Array.map (fun (r : Types.ra_config) -> core_for_out r.Types.ra_out 0) ras

(* --- compilation and trace memoization ------------------------------- *)

(* A sweep simulates the same (pipeline, input) pair under many timing
   configurations. The pipeline text and the functional execution are
   config-independent, so both are memoized: flat µop programs keyed by the
   pipeline digest, functional results keyed by (pipeline, inputs, op
   budget). Caches are FIFO-bounded and mutex-guarded; the mutex also
   provides the happens-before edge that publishes a result built on one
   domain to pool workers on another. Traces are column-packed before
   publication so concurrent engine replays only ever read them. Set
   PHLOEM_TRACE_CACHE=0 to disable (every run then recompiles/re-executes,
   as the tree path always did). *)

(* The environment variable is only the *initial* value: a long-lived
   process (phloemd) must be able to toggle caching at runtime, so the
   flag is mutable state, not a module-init constant. *)
let cache_enabled_flag =
  Atomic.make
    (match Sys.getenv_opt "PHLOEM_TRACE_CACHE" with
    | Some ("0" | "false" | "off") -> false
    | _ -> true)

let cache_enabled () = Atomic.get cache_enabled_flag
let set_cache_enabled b = Atomic.set cache_enabled_flag b

let cache_cap = ref 64
let cache_lock = Mutex.create ()

let program_cache : (string, Phloem_ir.Flat.program array) Hashtbl.t =
  Hashtbl.create 16

let program_order : string Queue.t = Queue.create ()
let trace_cache : (string, Interp.result) Hashtbl.t = Hashtbl.create 16
let trace_order : string Queue.t = Queue.create ()
let trace_hits = Atomic.make 0
let trace_misses = Atomic.make 0
let trace_evictions = Atomic.make 0
let program_hits = Atomic.make 0
let program_misses = Atomic.make 0
let program_evictions = Atomic.make 0

let with_lock f =
  Mutex.lock cache_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock cache_lock) f

let cache_find tbl key = with_lock (fun () -> Hashtbl.find_opt tbl key)

let cache_add tbl order evictions key v =
  with_lock (fun () ->
      if not (Hashtbl.mem tbl key) then begin
        while Queue.length order >= !cache_cap do
          Hashtbl.remove tbl (Queue.pop order);
          Atomic.incr evictions
        done;
        Queue.push key order;
        Hashtbl.add tbl key v
      end)

let set_cache_capacity n =
  if n < 1 then invalid_arg "Sim.set_cache_capacity: capacity must be >= 1";
  with_lock (fun () ->
      cache_cap := n;
      (* Shrinking evicts down to the new bound immediately, oldest first,
         so the bound is an invariant and not just an insert-time check. *)
      let trim tbl order evictions =
        while Queue.length order > n do
          Hashtbl.remove tbl (Queue.pop order);
          Atomic.incr evictions
        done
      in
      trim program_cache program_order program_evictions;
      trim trace_cache trace_order trace_evictions)

let cache_capacity () = with_lock (fun () -> !cache_cap)

let clear_caches () =
  with_lock (fun () ->
      Hashtbl.reset program_cache;
      Queue.clear program_order;
      Hashtbl.reset trace_cache;
      Queue.clear trace_order);
  Atomic.set trace_hits 0;
  Atomic.set trace_misses 0;
  Atomic.set trace_evictions 0;
  Atomic.set program_hits 0;
  Atomic.set program_misses 0;
  Atomic.set program_evictions 0

let cache_stats () = (Atomic.get trace_hits, Atomic.get trace_misses)

type cache_counters = {
  cc_program_hits : int;
  cc_program_misses : int;
  cc_program_evictions : int;
  cc_program_entries : int;
  cc_trace_hits : int;
  cc_trace_misses : int;
  cc_trace_evictions : int;
  cc_trace_entries : int;
  cc_capacity : int;
}

let cache_counters () =
  let program_entries, trace_entries, capacity =
    with_lock (fun () ->
        (Hashtbl.length program_cache, Hashtbl.length trace_cache, !cache_cap))
  in
  {
    cc_program_hits = Atomic.get program_hits;
    cc_program_misses = Atomic.get program_misses;
    cc_program_evictions = Atomic.get program_evictions;
    cc_program_entries = program_entries;
    cc_trace_hits = Atomic.get trace_hits;
    cc_trace_misses = Atomic.get trace_misses;
    cc_trace_evictions = Atomic.get trace_evictions;
    cc_trace_entries = trace_entries;
    cc_capacity = capacity;
  }
let pipeline_digest (p : Types.pipeline) = Digest.string (Marshal.to_string p [])

let prepare (p : Types.pipeline) : Phloem_ir.Flat.program array =
  Validate.check p;
  if not (cache_enabled ()) then Phloem_ir.Flat.compile p
  else
    let key = pipeline_digest p in
    match cache_find program_cache key with
    | Some progs ->
      Atomic.incr program_hits;
      progs
    | None ->
      Atomic.incr program_misses;
      let progs = Phloem_ir.Flat.compile p in
      cache_add program_cache program_order program_evictions key progs;
      progs

let functional ?(inputs = []) (p : Types.pipeline) : Interp.result =
  let programs = prepare p in
  if not (cache_enabled ()) then Phloem_ir.Flat.run ~inputs ~programs p
  else
    (* The op budget changes which executions complete, so it is part of
       the key; failed runs raise before the insert and are never cached. *)
    let key =
      pipeline_digest p
      ^ Digest.string (Marshal.to_string inputs [])
      ^ string_of_int (Interp.max_ops ())
    in
    match cache_find trace_cache key with
    | Some r ->
      Atomic.incr trace_hits;
      r
    | None ->
      Atomic.incr trace_misses;
      let r = Phloem_ir.Flat.run ~inputs ~programs p in
      Array.iter
        (fun tt -> ignore (Trace.pack tt))
        r.Interp.r_trace.Trace.threads;
      cache_add trace_cache trace_order trace_evictions key r;
      r

let simulate ?(cfg = Config.default) ?thread_core ?queue_caps ?telemetry
    ?faults ?watchdog ?cycle_budget (p : Types.pipeline) (fr : Interp.result) :
    run =
  let tc =
    match thread_core with
    | Some tc -> tc
    | None -> Engine.default_thread_core cfg (List.length p.Types.p_stages)
  in
  let timing =
    Engine.run ~cfg ~thread_core:tc ~ra_core:(ra_cores p tc) ?queue_caps
      ?telemetry ?faults ?watchdog ?cycle_budget p fr.Interp.r_trace
  in
  { sr_functional = fr; sr_timing = timing; sr_energy = Energy.of_result timing }

let run ?cfg ?thread_core ?(inputs = []) ?telemetry ?faults ?watchdog
    ?cycle_budget (p : Types.pipeline) : run =
  let fr = functional ~inputs p in
  simulate ?cfg ?thread_core ?telemetry ?faults ?watchdog ?cycle_budget p fr

(* Reference path: the tree-walking interpreter, no caches. Exists so
   differential tests (and doubting users) can confirm the compiled core
   is observationally identical. *)
let run_tree ?cfg ?thread_core ?(inputs = []) ?telemetry ?faults ?watchdog
    ?cycle_budget (p : Types.pipeline) : run =
  Validate.check p;
  let fr = Interp.run ~inputs p in
  simulate ?cfg ?thread_core ?telemetry ?faults ?watchdog ?cycle_budget p fr

let stage_names (p : Types.pipeline) =
  Array.of_list (List.map (fun (s : Types.stage) -> s.Types.s_name) p.Types.p_stages)

let analyze ?stage_names r = Analysis.of_result ?stage_names r.sr_timing

(* Machine-readable report of one run's aggregate counters. The numbers here
   must equal the plain-text report printed by the CLI tools: both read the
   same [Engine.result] fields. *)
let json_of_run (r : run) : Telemetry.Json.t =
  let open Telemetry.Json in
  let t = r.sr_timing and e = r.sr_energy in
  let c = t.Engine.cache in
  let fdiv a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b in
  Obj
    [
      ("cycles", Int t.Engine.cycles);
      ("instrs", Int t.Engine.instrs);
      ("ipc", Float (fdiv t.Engine.instrs t.Engine.cycles));
      ("n_threads", Int t.Engine.n_threads);
      ("n_cores_used", Int t.Engine.n_cores_used);
      ( "breakdown",
        Obj
          [
            ("issue_cycles", Int t.Engine.issue_cycles);
            ("backend_cycles", Int t.Engine.backend_cycles);
            ("queue_cycles", Int t.Engine.queue_cycles);
            ("other_cycles", Int t.Engine.other_cycles);
          ] );
      ( "cache",
        Obj
          [
            ("l1_hits", Int c.Cache.c_l1_hits);
            ("l1_misses", Int c.Cache.c_l1_misses);
            ("l2_hits", Int c.Cache.c_l2_hits);
            ("l2_misses", Int c.Cache.c_l2_misses);
            ("l3_hits", Int c.Cache.c_l3_hits);
            ("l3_misses", Int c.Cache.c_l3_misses);
            ("dram_accesses", Int c.Cache.c_dram);
            ("prefetches", Int c.Cache.c_prefetches);
            ("prefetch_hits", Int c.Cache.c_prefetch_hits);
            ("prefetch_dram", Int c.Cache.c_prefetch_dram);
          ] );
      ( "branches",
        Obj
          [
            ("lookups", Int t.Engine.branch_lookups);
            ("mispredicts", Int t.Engine.branch_mispredicts);
          ] );
      ("queue_ops", Int t.Engine.queue_ops);
      ("ra_fetches", Int t.Engine.ra_fetches);
      ( "energy_nj",
        Obj
          [
            ("core_dynamic", Float e.Energy.e_core_dynamic);
            ("memory", Float e.Energy.e_memory);
            ("queues_ras", Float e.Energy.e_queues_ras);
            ("static", Float e.Energy.e_static);
            ("total", Float (Energy.total e));
          ] );
    ]
