(** Observability layer for the timing engine: a counter/gauge probe
    registry with periodic interval sampling, per-thread stall-state
    timelines, a dependency-free JSON value type (emitter and parser), and
    a Chrome trace-event exporter (loadable in chrome://tracing or
    Perfetto).

    The engine owns the probes: it registers readers against a {!t} created
    by the caller, feeds thread-state transitions as it classifies stalls,
    and calls {!maybe_sample} once per simulated step. Counters are sampled
    as deltas since the previous sample, so a run's deltas sum exactly to
    its final aggregates; gauges are instantaneous. *)

(** Minimal JSON value type with a writer and a strict parser; no external
    dependencies are available in this tree. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  val to_file : string -> t -> unit

  exception Parse_error of string

  val of_string : string -> t
  (** Parse strict JSON. Numbers without ['.'], ['e'] or ['E'] parse as
      [Int]; others as [Float].
      @raise Parse_error on malformed input. *)

  val of_file : string -> t

  val member : string -> t -> t option
  (** [member k j] is field [k] of object [j], or [None]. *)

  val to_float_opt : t -> float option
  (** Numeric value of an [Int] or [Float] node. *)
end

type sample = {
  s_cycle : int;
  s_values : (string * int) array;
      (** counter deltas since the previous sample / gauge values, in
          registration order *)
}

type span = { sp_thread : int; sp_state : string; sp_start : int; sp_end : int }
type point = { pt_track : string; pt_cycle : int; pt_value : int }

type t

val create : ?interval:int -> ?max_events:int -> unit -> t
(** [create ()] makes an empty telemetry sink sampling every [interval]
    cycles (default 1000), dropping events past [max_events] (default 2M).
    @raise Invalid_argument if [interval <= 0]. *)

val interval : t -> int

val register_counter : t -> name:string -> (unit -> int) -> unit
(** Register a monotonic counter probe; sampled as deltas. *)

val register_gauge : t -> name:string -> (unit -> int) -> unit
(** Register an instantaneous-value probe; also exported as a Chrome
    counter track. *)

val set_thread_meta : t -> thread:int -> core:int -> name:string -> unit

val set_thread_state : t -> thread:int -> cycle:int -> string -> unit
(** Record that [thread] is in [state] as of [cycle]; closes the previous
    state's span when the state changes (zero-length spans are elided). *)

val end_thread_state : t -> thread:int -> cycle:int -> unit

val maybe_sample : t -> cycle:int -> unit
(** Called once per engine step; samples at most once per call, at the
    first crossed interval boundary (fast-forwarded regions collapse into
    one sample so counter deltas still partition the run). *)

val finish : t -> cycle:int -> unit
(** Close all open spans and flush a final sample so counter deltas sum
    exactly to the run's aggregates. Idempotent. *)

val samples : t -> sample list
val spans : t -> span list
val points : t -> point list
val dropped_events : t -> int

val sum_counter : t -> string -> int
(** Sum of a counter probe's deltas across all samples taken so far. *)

val report_json : t -> Json.t
(** [{sample_interval; dropped_events; samples: [{cycle; values}]}]. *)

(** {1 Generic Chrome trace-event emission}

    Shared by the engine exporter and by service-level tracers (phloemd):
    callers reduce their timeline to named processes/threads, complete
    ["X"] spans and ["C"] counter tracks; the format details live here. *)

type trace_span = {
  te_pid : int;
  te_tid : int;
  te_cat : string;
  te_name : string;
  te_ts : int;  (** microseconds *)
  te_dur : int;
}

type trace_counter = { tc_name : string; tc_ts : int; tc_value : int }

val trace_events_json :
  ?process_names:(int * string) list ->
  ?thread_names:((int * int) * string) list ->
  ?counters:trace_counter list ->
  trace_span list ->
  Json.t
(** [{traceEvents: [...]; displayTimeUnit: "ms"}] with ["M"] metadata
    events for each named process/thread, one ["X"] event per span and one
    ["C"] event per counter point. *)

val trace_json : t -> Json.t
(** Chrome trace-event export: per-thread stall-state timelines as complete
    ["X"] events grouped by core, plus one ["C"] counter track per gauge;
    timestamps are simulated cycles via the microsecond field. *)

val write_trace_file : t -> string -> unit
