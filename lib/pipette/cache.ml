(* Cache hierarchy timing model: per-core L1 and L2, shared L3, and DRAM with
   per-controller bandwidth occupancy. Set-associative with true-LRU ranking;
   inclusive fills on miss. Prefetched lines carry an availability time so a
   demand access shortly after a prefetch pays the remaining latency only. *)

type level = {
  sets : int;
  set_mask : int; (* sets - 1 when sets is a power of two, else -1 *)
  ways : int;
  latency : int;
  tags : int array; (* set * ways; -1 = invalid *)
  lru : int array; (* recency stamp per way *)
  mutable stamp : int;
  mutable hits : int;
  mutable misses : int;
}

let make_level (p : Config.cache_params) ~line_bytes ~size_scale =
  let bytes = p.size_kb * 1024 * size_scale in
  let sets = max 1 (bytes / (line_bytes * p.ways)) in
  {
    sets;
    set_mask = (if sets land (sets - 1) = 0 then sets - 1 else -1);
    ways = p.ways;
    latency = p.latency;
    tags = Array.make (sets * p.ways) (-1);
    lru = Array.make (sets * p.ways) 0;
    stamp = 0;
    hits = 0;
    misses = 0;
  }

type dram = {
  min_latency : int;
  cycles_per_line : int;
  next_free : int array; (* per controller *)
  mutable accesses : int;
}

type t = {
  line_shift : int;
  l1s : level array; (* per core *)
  l2s : level array; (* per core *)
  l3 : level;
  dram : dram;
  inflight : (int, int) Hashtbl.t; (* line -> availability time *)
  (* Prefetches are accounted separately so the per-level hit/miss counters
     and [dram.accesses] stay demand-only. *)
  mutable prefetches_issued : int;
  mutable prefetch_hits : int; (* line was already resident in some level *)
  mutable prefetch_dram : int; (* prefetch fills that went to DRAM *)
}

type access_result = { latency : int; level_hit : int (* 1..3, 4 = DRAM *) }

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n / 2) in
  go 0 n

let create (cfg : Config.t) =
  let mk p scale = make_level p ~line_bytes:cfg.line_bytes ~size_scale:scale in
  {
    line_shift = log2 cfg.line_bytes;
    l1s = Array.init cfg.n_cores (fun _ -> mk cfg.l1 1);
    l2s = Array.init cfg.n_cores (fun _ -> mk cfg.l2 1);
    l3 = mk cfg.l3 cfg.n_cores;
    dram =
      {
        min_latency = cfg.dram_latency;
        cycles_per_line = cfg.dram_cycles_per_line;
        next_free = Array.make cfg.dram_controllers 0;
        accesses = 0;
      };
    inflight = Hashtbl.create 64;
    prefetches_issued = 0;
    prefetch_hits = 0;
    prefetch_dram = 0;
  }

(* Lookup a line in a level; on hit, refresh LRU and return true. *)
let lookup lvl line =
  let set =
    (* the set count is a power of two for every realistic geometry; mask
       instead of paying an integer division on the hot lookup path *)
    if lvl.set_mask >= 0 then line land lvl.set_mask else line mod lvl.sets
  in
  (* [set < sets] and [w < ways], so [base + w] is always within the
     [sets * ways] arrays: unchecked indexing on the per-access loops *)
  let base = set * lvl.ways in
  let rec find w =
    if w >= lvl.ways then None
    else if Array.unsafe_get lvl.tags (base + w) = line then Some w
    else find (w + 1)
  in
  match find 0 with
  | Some w ->
    lvl.stamp <- lvl.stamp + 1;
    Array.unsafe_set lvl.lru (base + w) lvl.stamp;
    lvl.hits <- lvl.hits + 1;
    true
  | None ->
    lvl.misses <- lvl.misses + 1;
    false

(* Insert a line, evicting the LRU way. *)
let insert lvl line =
  let set =
    (* the set count is a power of two for every realistic geometry; mask
       instead of paying an integer division on the hot lookup path *)
    if lvl.set_mask >= 0 then line land lvl.set_mask else line mod lvl.sets
  in
  let base = set * lvl.ways in
  let victim = ref 0 in
  for w = 1 to lvl.ways - 1 do
    if
      Array.unsafe_get lvl.lru (base + w)
      < Array.unsafe_get lvl.lru (base + !victim)
    then victim := w
  done;
  lvl.stamp <- lvl.stamp + 1;
  Array.unsafe_set lvl.tags (base + !victim) line;
  Array.unsafe_set lvl.lru (base + !victim) lvl.stamp

(* Occupy a DRAM controller slot and return the transfer latency, without
   touching the demand access counter (prefetch fills share the same
   bandwidth but are counted separately). *)
let dram_occupy d line ~now =
  let ctrl = line mod Array.length d.next_free in
  let start = max now d.next_free.(ctrl) in
  d.next_free.(ctrl) <- start + d.cycles_per_line;
  start - now + d.min_latency

let dram_access d line ~now =
  d.accesses <- d.accesses + 1;
  dram_occupy d line ~now

(* A demand access from [core] at cycle [now]. Fills all levels on the way
   back (inclusive). Returns the load-to-use latency. *)
let access t ~core ~addr ~now =
  let line = addr lsr t.line_shift in
  let l1 = t.l1s.(core) and l2 = t.l2s.(core) in
  let base_lat =
    if lookup l1 line then { latency = l1.latency; level_hit = 1 }
    else if lookup l2 line then begin
      insert l1 line;
      { latency = l2.latency; level_hit = 2 }
    end
    else if lookup t.l3 line then begin
      insert l2 line;
      insert l1 line;
      { latency = t.l3.latency; level_hit = 3 }
    end
    else begin
      let lat = dram_access t.dram line ~now in
      insert t.l3 line;
      insert l2 line;
      insert l1 line;
      { latency = max lat t.l3.latency; level_hit = 4 }
    end
  in
  (* If the line is still in flight from a prefetch, wait for its arrival. *)
  match Hashtbl.find_opt t.inflight line with
  | Some avail when avail > now ->
    { base_lat with latency = max base_lat.latency (avail - now) }
  | Some _ ->
    Hashtbl.remove t.inflight line;
    base_lat
  | None -> base_lat

(* Probe a level without touching its hit/miss counters; refreshes LRU on a
   hit exactly like a demand lookup would. *)
let probe lvl line =
  let set =
    (* the set count is a power of two for every realistic geometry; mask
       instead of paying an integer division on the hot lookup path *)
    if lvl.set_mask >= 0 then line land lvl.set_mask else line mod lvl.sets
  in
  let base = set * lvl.ways in
  let rec find w =
    if w >= lvl.ways then None
    else if Array.unsafe_get lvl.tags (base + w) = line then Some w
    else find (w + 1)
  in
  match find 0 with
  | Some w ->
    lvl.stamp <- lvl.stamp + 1;
    Array.unsafe_set lvl.lru (base + w) lvl.stamp;
    true
  | None -> false

(* Bring a line into every level without touching any demand or prefetch
   counter — the "no-op that still fills". Returns the fill latency and
   whether the line was already resident in some cache level. Replacement
   state changes exactly as it would for a demand access to the same line. *)
let fill t ~core ~addr ~now =
  let line = addr lsr t.line_shift in
  let l1 = t.l1s.(core) and l2 = t.l2s.(core) in
  if probe l1 line then (l1.latency, true)
  else if probe l2 line then begin
    insert l1 line;
    (l2.latency, true)
  end
  else if probe t.l3 line then begin
    insert l2 line;
    insert l1 line;
    (t.l3.latency, true)
  end
  else begin
    let lat = dram_occupy t.dram line ~now in
    insert t.l3 line;
    insert l2 line;
    insert l1 line;
    (max lat t.l3.latency, false)
  end

(* A software/compiler prefetch: brings the line in through its own
   lookup/fill path (demand hit/miss and DRAM counters are unaffected) and
   records when it actually arrives, so immediate demand accesses pay the
   residue. *)
let prefetch t ~core ~addr ~now =
  let line = addr lsr t.line_shift in
  t.prefetches_issued <- t.prefetches_issued + 1;
  let latency, resident = fill t ~core ~addr ~now in
  if resident then t.prefetch_hits <- t.prefetch_hits + 1
  else t.prefetch_dram <- t.prefetch_dram + 1;
  if latency > t.l1s.(core).latency then
    Hashtbl.replace t.inflight line (now + latency)

type counters = {
  c_l1_hits : int; (* demand accesses only; prefetches counted separately *)
  c_l1_misses : int;
  c_l2_hits : int;
  c_l2_misses : int;
  c_l3_hits : int;
  c_l3_misses : int;
  c_dram : int;
  c_prefetches : int;
  c_prefetch_hits : int;
  c_prefetch_dram : int;
}

let counters t =
  let sum f arr = Array.fold_left (fun acc l -> acc + f l) 0 arr in
  {
    c_l1_hits = sum (fun l -> l.hits) t.l1s;
    c_l1_misses = sum (fun l -> l.misses) t.l1s;
    c_l2_hits = sum (fun l -> l.hits) t.l2s;
    c_l2_misses = sum (fun l -> l.misses) t.l2s;
    c_l3_hits = t.l3.hits;
    c_l3_misses = t.l3.misses;
    c_dram = t.dram.accesses;
    c_prefetches = t.prefetches_issued;
    c_prefetch_hits = t.prefetch_hits;
    c_prefetch_dram = t.prefetch_dram;
  }
