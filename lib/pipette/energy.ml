(* Per-event energy accounting, replacing McPAT + DDR3L models (Fig. 11).
   Energy = dynamic core (per issued micro-op) + memory hierarchy (per access
   per level) + queue/RA traffic + static leakage over the run's cycles. *)

type breakdown = {
  e_core_dynamic : float; (* nJ *)
  e_memory : float;
  e_queues_ras : float;
  e_static : float;
}

let total b = b.e_core_dynamic +. b.e_memory +. b.e_queues_ras +. b.e_static

let of_result ?(model = Config.default_energy) (r : Engine.result) : breakdown =
  let c = r.Engine.cache in
  let l1_accesses = c.Cache.c_l1_hits + c.Cache.c_l1_misses in
  let l2_accesses = c.Cache.c_l2_hits + c.Cache.c_l2_misses in
  let l3_accesses = c.Cache.c_l3_hits + c.Cache.c_l3_misses in
  {
    e_core_dynamic = float_of_int r.Engine.instrs *. model.Config.e_uop;
    e_memory =
      (float_of_int l1_accesses *. model.Config.e_l1)
      +. (float_of_int l2_accesses *. model.Config.e_l2)
      +. (float_of_int l3_accesses *. model.Config.e_l3)
      +. (float_of_int c.Cache.c_dram *. model.Config.e_dram)
      (* prefetches no longer appear in the demand counters, but their tag
         probes and DRAM fills still burn real energy *)
      +. (float_of_int c.Cache.c_prefetches *. model.Config.e_l1)
      +. (float_of_int c.Cache.c_prefetch_dram *. model.Config.e_dram);
    e_queues_ras =
      (float_of_int r.Engine.queue_ops *. model.Config.e_queue_op)
      +. (float_of_int r.Engine.ra_fetches *. model.Config.e_ra_op);
    e_static =
      float_of_int (r.Engine.cycles * r.Engine.n_cores_used)
      *. model.Config.e_static_core;
  }
