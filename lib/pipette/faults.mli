(** Deterministic fault injection for the timing engine.

    A fault {!plan} is a list of fault specifications plus a PRNG key; all
    probabilistic decisions are drawn from a splitmix64 stream keyed by the
    plan, so the same plan replayed on the same program and input injects
    the exact same faults at the exact same points — failures found under
    injection are reproducible bit-for-bit.

    Faults perturb timing, never functional values: a dropped queue op is a
    transient enqueue failure that is retried (and re-rolled) on the next
    issue attempt; a duplicated op leaves a phantom element occupying a
    queue slot; latency spikes stretch cache or RA service times; stalls
    and kills freeze a thread temporarily or permanently; predictor
    poisoning forces branches to resolve as mispredicted. Passing
    [?faults:None] to {!Engine.run} leaves every counter byte-identical to
    a build without this module. *)

type spec =
  | Queue_drop of { queue : int; prob : float }
      (** each enqueue into [queue] ([-1] = any queue) transiently fails
          with probability [prob] per issue attempt *)
  | Queue_dup of { queue : int; prob : float }
      (** each successful enqueue additionally deposits a phantom element
          (if the queue has room) with probability [prob]; the phantom is
          never consumed and permanently occupies a slot *)
  | Latency_spike of { level : int; extra : int; prob : float }
      (** accesses served by cache [level] (1–3 = L1..L3, 4 = DRAM,
          0 = reference-accelerator fetches) take [extra] additional cycles
          with probability [prob] *)
  | Thread_stall of { thread : int; period : int; duration : int }
      (** thread [thread] freezes (no dispatch, issue, or retire) for the
          first [duration] cycles of every [period]-cycle window *)
  | Thread_kill of { thread : int; after_retired : int }
      (** thread [thread] permanently freezes once it has retired
          [after_retired] ops; downstream consumers starve into a
          detectable deadlock *)
  | Predictor_poison of { prob : float }
      (** correctly predicted branches are forced to resolve as
          mispredicted with probability [prob] *)

type plan = { fp_key : int; fp_specs : spec list }

val plan : ?key:int -> spec list -> plan
(** [plan ?key specs] packs a fault plan; [key] defaults to 0. *)

val rekey : plan -> attempt:int -> plan
(** [rekey p ~attempt] derives the plan used for retry number [attempt]:
    same fault specs, an independent PRNG stream. [rekey p ~attempt:0] is
    [p] itself, so attempt numbers enumerate deterministic variations. *)

val of_string : string -> (plan, string) Result.t
(** Parse a comma-separated plan, e.g.
    ["drop@q0:0.01,spike@dram+400:0.05,stall@t1:1000x200,kill@t2:5000,poison:0.1"].
    Grammar per spec: [drop[@qN]:PROB], [dup[@qN]:PROB],
    [spike@l1|l2|l3|dram|ra+EXTRA:PROB], [stall@tN:PERIODxDURATION],
    [kill@tN:AFTER_RETIRED], [poison:PROB]. *)

val to_string : plan -> string
(** Round-trips through {!of_string}. *)

type counters = {
  mutable c_drops : int;  (** enqueue attempts transiently failed *)
  mutable c_dups : int;  (** phantom elements deposited *)
  mutable c_spikes : int;  (** latency spikes applied *)
  mutable c_stall_cycles : int;  (** simulated cycles spent force-stalled *)
  mutable c_kills : int;  (** threads permanently frozen *)
  mutable c_poisons : int;  (** branches forced to mispredict *)
}

type t
(** Runtime injection state: the plan, its PRNG stream, and counters.
    Create one per {!Engine.run} call; reusing a [t] across runs continues
    the stream and is not replay-deterministic. *)

val create : plan -> t
val counters : t -> counters
val total : t -> int
(** Total faults injected so far (sum of all counters). *)

val json_of_counters : t -> Telemetry.Json.t

(** {2 Decision hooks} — called by the engine at injection points; each
    consumes PRNG draws only for specs present in the plan. *)

val drop_enq : t -> queue:int -> bool
val dup_enq : t -> queue:int -> bool
val spike : t -> level:int -> int
(** Extra latency to add for an access served at [level], or 0. *)

val stall_release : t -> thread:int -> now:int -> int
(** If [thread] is force-stalled at cycle [now], the first cycle it runs
    again; [-1] when not stalled. Counts the stalled cycle. *)

val should_kill : t -> thread:int -> retired:int -> bool
(** True exactly once, when [thread] crosses its kill threshold. *)

val poison : t -> bool
