(* Configuration of the simulated system (paper Table III), plus the
   micro-architectural knobs of our timing model and the per-event energy
   constants that replace McPAT/DDR3L in the original evaluation. *)

type cache_params = {
  size_kb : int;
  ways : int;
  latency : int; (* load-to-use, cycles *)
}

type t = {
  n_cores : int;
  smt_threads : int; (* hardware threads per core *)
  freq_ghz : float;
  issue_width : int; (* micro-ops issued per core per cycle *)
  dispatch_width : int; (* per-thread front-end dispatch per cycle *)
  rob_size : int; (* shared among a core's active threads *)
  sched_scan : int; (* oldest unissued ops considered per thread per cycle *)
  mem_ports : int; (* memory ops issued per core per cycle *)
  mispredict_penalty : int; (* redirect cycles after branch resolution *)
  line_bytes : int;
  l1 : cache_params; (* per core *)
  l2 : cache_params; (* per core *)
  l3 : cache_params; (* shared; size_kb is per core and scaled by n_cores *)
  dram_latency : int; (* minimum load-to-use *)
  dram_controllers : int;
  dram_cycles_per_line : int; (* occupancy per 64B transfer at 25 GB/s *)
  max_queues : int;
  queue_depth : int; (* elements per architectural queue *)
  max_ras : int;
  ra_mshrs : int; (* outstanding fetches per reference accelerator *)
  predictor_entries : int;
  predictor_history_bits : int;
}

(* Pipette's evaluation configuration (Table III): Skylake-like cores scaled
   to 4 SMT threads; 16 queues of up to 24 elements; 4 RAs. *)
let default =
  {
    n_cores = 1;
    smt_threads = 4;
    freq_ghz = 3.5;
    issue_width = 6;
    dispatch_width = 6;
    rob_size = 224;
    sched_scan = 16;
    mem_ports = 3;
    mispredict_penalty = 10;
    line_bytes = 64;
    l1 = { size_kb = 32; ways = 8; latency = 4 };
    l2 = { size_kb = 256; ways = 8; latency = 12 };
    l3 = { size_kb = 2048; ways = 16; latency = 40 };
    dram_latency = 120;
    dram_controllers = 2;
    dram_cycles_per_line = 9; (* 64 B / 25 GB/s at 3.5 GHz *)
    max_queues = 16;
    queue_depth = 24;
    max_ras = 4;
    ra_mshrs = 8;
    predictor_entries = 4096;
    predictor_history_bits = 8;
  }

let four_cores = { default with n_cores = 4 }

let with_cores (cfg : t) (n : int) : t =
  if n < 1 then invalid_arg "Config.with_cores: need at least one core";
  { cfg with n_cores = n }

(* Per-event energy in nanojoules, standing in for McPAT at 22 nm and the
   Micron DDR3L power model. Only relative magnitudes matter for Fig. 11. *)
type energy_model = {
  e_uop : float; (* core dynamic energy per issued micro-op *)
  e_l1 : float;
  e_l2 : float;
  e_l3 : float;
  e_dram : float;
  e_queue_op : float; (* enq/deq through the register file *)
  e_ra_op : float; (* RA control per element, excl. its cache accesses *)
  e_static_core : float; (* leakage + clock per core per cycle *)
}

let default_energy =
  {
    e_uop = 0.15;
    e_l1 = 0.05;
    e_l2 = 0.25;
    e_l3 = 1.0;
    e_dram = 15.0;
    e_queue_op = 0.03;
    e_ra_op = 0.02;
    e_static_core = 0.45;
  }

let table3_lines cfg =
  [
    Printf.sprintf
      "Cores      | %d core(s), %.1f GHz, x86-64-like, %d-wide OOO issue; %d-thread SMT"
      cfg.n_cores cfg.freq_ghz cfg.issue_width cfg.smt_threads;
    Printf.sprintf "Pipette    | %d queues max; %d RAs; queues up to %d elements deep"
      cfg.max_queues cfg.max_ras cfg.queue_depth;
    Printf.sprintf "L1 cache   | %d KB/core, %d-way set-associative, %d cycle latency"
      cfg.l1.size_kb cfg.l1.ways cfg.l1.latency;
    Printf.sprintf "L2 cache   | %d KB/core, %d-way set-associative, %d cycle latency"
      cfg.l2.size_kb cfg.l2.ways cfg.l2.latency;
    Printf.sprintf "L3 cache   | %d MB/core, %d-way set-associative, %d cycle latency"
      (cfg.l3.size_kb / 1024) cfg.l3.ways cfg.l3.latency;
    Printf.sprintf "Main mem   | %d-cycle minimum latency, %d controllers, 25 GB/s each"
      cfg.dram_latency cfg.dram_controllers;
  ]
