(* Observability layer for the timing engine: a counter/gauge registry with
   periodic interval sampling, per-thread state (stall-class) timelines, and
   exporters for machine-readable JSON reports and Chrome trace-event files
   (loadable in chrome://tracing or Perfetto).

   The engine owns the probes: it registers readers against a [t] created by
   the caller, feeds thread-state transitions as it classifies stalls, and
   calls [maybe_sample] once per simulated step. Counters are sampled as
   deltas since the previous sample, so the deltas over a run sum exactly to
   the final aggregate; gauges are sampled as instantaneous values and also
   recorded as Chrome counter tracks. *)

(* Minimal JSON emitter (no external deps are available in this tree). *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
      else Buffer.add_string buf "null"
    | Str s -> escape buf s
    | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        l;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          write buf x)
        kvs;
      Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 4096 in
    write buf j;
    Buffer.contents buf

  let to_file file j =
    let oc = open_out file in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (to_string j);
        output_char oc '\n')
end

type kind = Counter | Gauge

type probe = {
  pr_name : string;
  pr_kind : kind;
  pr_read : unit -> int;
  mutable pr_last : int; (* last sampled raw value, for counter deltas *)
}

type sample = {
  s_cycle : int;
  s_values : (string * int) array;
      (* counter deltas since the previous sample / gauge values, in
         registration order *)
}

type span = { sp_thread : int; sp_state : string; sp_start : int; sp_end : int }
type point = { pt_track : string; pt_cycle : int; pt_value : int }
type thread_meta = { tm_thread : int; tm_core : int; tm_name : string }

type t = {
  interval : int;
  max_events : int;
  mutable probes : probe list; (* reverse registration order *)
  mutable samples : sample list; (* reverse chronological *)
  mutable next_sample : int;
  mutable spans : span list; (* reverse chronological *)
  mutable points : point list; (* reverse chronological *)
  mutable n_events : int;
  mutable dropped : int;
  open_state : (int, string * int) Hashtbl.t; (* thread -> (state, since) *)
  mutable metas : thread_meta list;
  mutable finished_at : int; (* -1 until [finish] *)
}

let create ?(interval = 1000) ?(max_events = 2_000_000) () =
  if interval <= 0 then invalid_arg "Telemetry.create: interval must be > 0";
  {
    interval;
    max_events;
    probes = [];
    samples = [];
    next_sample = interval;
    spans = [];
    points = [];
    n_events = 0;
    dropped = 0;
    open_state = Hashtbl.create 16;
    metas = [];
    finished_at = -1;
  }

let interval t = t.interval

let register t ~kind ~name read =
  t.probes <- { pr_name = name; pr_kind = kind; pr_read = read; pr_last = 0 } :: t.probes

let register_counter t ~name read = register t ~kind:Counter ~name read
let register_gauge t ~name read = register t ~kind:Gauge ~name read

let set_thread_meta t ~thread ~core ~name =
  t.metas <- { tm_thread = thread; tm_core = core; tm_name = name } :: t.metas

let push_span t span =
  if t.n_events < t.max_events then begin
    t.spans <- span :: t.spans;
    t.n_events <- t.n_events + 1
  end
  else t.dropped <- t.dropped + 1

let push_point t point =
  if t.n_events < t.max_events then begin
    t.points <- point :: t.points;
    t.n_events <- t.n_events + 1
  end
  else t.dropped <- t.dropped + 1

(* Record that [thread] is in [state] as of [cycle]; closes the previous
   state's span when the state changes. Zero-length spans are elided. *)
let set_thread_state t ~thread ~cycle state =
  match Hashtbl.find_opt t.open_state thread with
  | Some (cur, _) when String.equal cur state -> ()
  | prev ->
    (match prev with
    | Some (cur, since) when since < cycle ->
      push_span t { sp_thread = thread; sp_state = cur; sp_start = since; sp_end = cycle }
    | _ -> ());
    Hashtbl.replace t.open_state thread (state, cycle)

let end_thread_state t ~thread ~cycle =
  (match Hashtbl.find_opt t.open_state thread with
  | Some (cur, since) when since < cycle ->
    push_span t { sp_thread = thread; sp_state = cur; sp_start = since; sp_end = cycle }
  | _ -> ());
  Hashtbl.remove t.open_state thread

let take_sample t ~cycle =
  let probes = List.rev t.probes in
  let values =
    List.map
      (fun p ->
        let v = p.pr_read () in
        match p.pr_kind with
        | Gauge ->
          push_point t { pt_track = p.pr_name; pt_cycle = cycle; pt_value = v };
          (p.pr_name, v)
        | Counter ->
          let d = v - p.pr_last in
          p.pr_last <- v;
          (p.pr_name, d))
      probes
  in
  t.samples <- { s_cycle = cycle; s_values = Array.of_list values } :: t.samples

(* Called once per engine step with the current cycle; samples at most once
   per call, at the first crossed interval boundary (fast-forwarded regions
   collapse into one sample so counter deltas still partition the run). *)
let maybe_sample t ~cycle =
  if cycle >= t.next_sample && t.finished_at < 0 then begin
    take_sample t ~cycle;
    t.next_sample <- cycle - (cycle mod t.interval) + t.interval
  end

(* Close all open spans and flush a final sample so that counter deltas over
   [samples] sum exactly to the run's aggregate counters. Idempotent. *)
let finish t ~cycle =
  if t.finished_at < 0 then begin
    let open_threads = Hashtbl.fold (fun th _ acc -> th :: acc) t.open_state [] in
    List.iter (fun th -> end_thread_state t ~thread:th ~cycle) open_threads;
    take_sample t ~cycle;
    t.finished_at <- cycle
  end

let samples t = List.rev t.samples
let spans t = List.rev t.spans
let points t = List.rev t.points
let dropped_events t = t.dropped

(* Sum of a counter probe's deltas across all samples taken so far. *)
let sum_counter t name =
  List.fold_left
    (fun acc s ->
      Array.fold_left
        (fun acc (n, v) -> if String.equal n name then acc + v else acc)
        acc s.s_values)
    0 t.samples

let samples_json t : Json.t =
  Json.List
    (List.map
       (fun s ->
         Json.Obj
           [
             ("cycle", Json.Int s.s_cycle);
             ( "values",
               Json.Obj
                 (Array.to_list
                    (Array.map (fun (n, v) -> (n, Json.Int v)) s.s_values)) );
           ])
       (samples t))

let report_json t : Json.t =
  Json.Obj
    [
      ("sample_interval", Json.Int t.interval);
      ("dropped_events", Json.Int t.dropped);
      ("samples", samples_json t);
    ]

(* Chrome trace-event export: one timeline track per thread (issue/stall
   state spans as complete "X" events, grouped by core as the process), plus
   one counter ("C") track per registered gauge. Timestamps are in simulated
   cycles, reported through the trace format's microsecond field. *)
let trace_json t : Json.t =
  let core_of = Hashtbl.create 16 in
  List.iter (fun m -> Hashtbl.replace core_of m.tm_thread m.tm_core) t.metas;
  let pid thread = try Hashtbl.find core_of thread with Not_found -> 0 in
  let metas =
    List.concat_map
      (fun m ->
        [
          Json.Obj
            [
              ("ph", Json.Str "M");
              ("name", Json.Str "process_name");
              ("pid", Json.Int m.tm_core);
              ("args", Json.Obj [ ("name", Json.Str (Printf.sprintf "core%d" m.tm_core)) ]);
            ];
          Json.Obj
            [
              ("ph", Json.Str "M");
              ("name", Json.Str "thread_name");
              ("pid", Json.Int m.tm_core);
              ("tid", Json.Int m.tm_thread);
              ("args", Json.Obj [ ("name", Json.Str m.tm_name) ]);
            ];
        ])
      (List.rev t.metas)
  in
  let span_events =
    List.rev_map
      (fun sp ->
        Json.Obj
          [
            ("ph", Json.Str "X");
            ("name", Json.Str sp.sp_state);
            ("cat", Json.Str "thread");
            ("pid", Json.Int (pid sp.sp_thread));
            ("tid", Json.Int sp.sp_thread);
            ("ts", Json.Int sp.sp_start);
            ("dur", Json.Int (sp.sp_end - sp.sp_start));
          ])
      t.spans
  in
  let counter_events =
    List.rev_map
      (fun pt ->
        Json.Obj
          [
            ("ph", Json.Str "C");
            ("name", Json.Str pt.pt_track);
            ("pid", Json.Int 0);
            ("ts", Json.Int pt.pt_cycle);
            ("args", Json.Obj [ ("value", Json.Int pt.pt_value) ]);
          ])
      t.points
  in
  Json.Obj
    [
      ("traceEvents", Json.List (metas @ span_events @ counter_events));
      ("displayTimeUnit", Json.Str "ms");
    ]

let write_trace_file t file = Json.to_file file (trace_json t)
