(* Observability layer for the timing engine: a counter/gauge registry with
   periodic interval sampling, per-thread state (stall-class) timelines, and
   exporters for machine-readable JSON reports and Chrome trace-event files
   (loadable in chrome://tracing or Perfetto).

   The engine owns the probes: it registers readers against a [t] created by
   the caller, feeds thread-state transitions as it classifies stalls, and
   calls [maybe_sample] once per simulated step. Counters are sampled as
   deltas since the previous sample, so the deltas over a run sum exactly to
   the final aggregate; gauges are sampled as instantaneous values and also
   recorded as Chrome counter tracks. *)

(* Minimal JSON emitter (no external deps are available in this tree). *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
      else Buffer.add_string buf "null"
    | Str s -> escape buf s
    | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        l;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          write buf x)
        kvs;
      Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 4096 in
    write buf j;
    Buffer.contents buf

  let to_file file j =
    let oc = open_out file in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (to_string j);
        output_char oc '\n')

  exception Parse_error of string

  (* Recursive-descent parser for the same dialect [write] emits (strict
     JSON; numbers without '.', 'e' or 'E' parse as [Int]). Needed by the
     benchmark regression tool, which re-reads committed reports. *)
  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg =
      raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
    in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while
        !pos < n
        && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected '%c'" c)
    in
    let literal lit v =
      let l = String.length lit in
      if !pos + l <= n && String.sub s !pos l = lit then begin
        pos := !pos + l;
        v
      end
      else fail (Printf.sprintf "expected %s" lit)
    in
    let add_utf8 buf code =
      if code < 0x80 then Buffer.add_char buf (Char.chr code)
      else if code < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        match s.[!pos] with
        | '"' ->
          incr pos;
          Buffer.contents buf
        | '\\' ->
          incr pos;
          if !pos >= n then fail "bad escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
            if !pos + 4 >= n then fail "bad \\u escape";
            (match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
            | Some code -> add_utf8 buf code
            | None -> fail "bad \\u escape");
            pos := !pos + 4
          | _ -> fail "bad escape");
          incr pos;
          go ()
        | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      if peek () = Some '-' then incr pos;
      while
        match peek () with
        | Some ('0' .. '9' | '.' | 'e' | 'E' | '+' | '-') -> true
        | _ -> false
      do
        incr pos
      done;
      let tok = String.sub s start (!pos - start) in
      if tok = "" then fail "expected number";
      let is_float =
        String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok
      in
      if is_float then
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail "malformed number"
      else
        match int_of_string_opt tok with
        | Some i -> Int i
        | None -> (
          (* out of int range: fall back to float *)
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail "malformed number")
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec go () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
              incr pos;
              go ()
            | Some '}' -> incr pos
            | _ -> fail "expected ',' or '}'"
          in
          go ();
          Obj (List.rev !fields)
        end
      | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else begin
          let items = ref [] in
          let rec go () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
              incr pos;
              go ()
            | Some ']' -> incr pos
            | _ -> fail "expected ',' or ']'"
          in
          go ();
          List (List.rev !items)
        end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
      | None -> fail "unexpected end of input"
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let of_file file =
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> of_string (really_input_string ic (in_channel_length ic)))

  (* Field access helpers for consumers of parsed reports. *)
  let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
  let to_float_opt = function
    | Int i -> Some (float_of_int i)
    | Float f -> Some f
    | _ -> None
end

type kind = Counter | Gauge

type probe = {
  pr_name : string;
  pr_kind : kind;
  pr_read : unit -> int;
  mutable pr_last : int; (* last sampled raw value, for counter deltas *)
}

type sample = {
  s_cycle : int;
  s_values : (string * int) array;
      (* counter deltas since the previous sample / gauge values, in
         registration order *)
}

type span = { sp_thread : int; sp_state : string; sp_start : int; sp_end : int }
type point = { pt_track : string; pt_cycle : int; pt_value : int }
type thread_meta = { tm_thread : int; tm_core : int; tm_name : string }

type t = {
  interval : int;
  max_events : int;
  mutable probes : probe list; (* reverse registration order *)
  mutable samples : sample list; (* reverse chronological *)
  mutable next_sample : int;
  mutable spans : span list; (* reverse chronological *)
  mutable points : point list; (* reverse chronological *)
  mutable n_events : int;
  mutable dropped : int;
  open_state : (int, string * int) Hashtbl.t; (* thread -> (state, since) *)
  mutable metas : thread_meta list;
  mutable finished_at : int; (* -1 until [finish] *)
}

let create ?(interval = 1000) ?(max_events = 2_000_000) () =
  if interval <= 0 then invalid_arg "Telemetry.create: interval must be > 0";
  {
    interval;
    max_events;
    probes = [];
    samples = [];
    next_sample = interval;
    spans = [];
    points = [];
    n_events = 0;
    dropped = 0;
    open_state = Hashtbl.create 16;
    metas = [];
    finished_at = -1;
  }

let interval t = t.interval

let register t ~kind ~name read =
  t.probes <- { pr_name = name; pr_kind = kind; pr_read = read; pr_last = 0 } :: t.probes

let register_counter t ~name read = register t ~kind:Counter ~name read
let register_gauge t ~name read = register t ~kind:Gauge ~name read

let set_thread_meta t ~thread ~core ~name =
  t.metas <- { tm_thread = thread; tm_core = core; tm_name = name } :: t.metas

let push_span t span =
  if t.n_events < t.max_events then begin
    t.spans <- span :: t.spans;
    t.n_events <- t.n_events + 1
  end
  else t.dropped <- t.dropped + 1

let push_point t point =
  if t.n_events < t.max_events then begin
    t.points <- point :: t.points;
    t.n_events <- t.n_events + 1
  end
  else t.dropped <- t.dropped + 1

(* Record that [thread] is in [state] as of [cycle]; closes the previous
   state's span when the state changes. Zero-length spans are elided. *)
let set_thread_state t ~thread ~cycle state =
  match Hashtbl.find_opt t.open_state thread with
  | Some (cur, _) when String.equal cur state -> ()
  | prev ->
    (match prev with
    | Some (cur, since) when since < cycle ->
      push_span t { sp_thread = thread; sp_state = cur; sp_start = since; sp_end = cycle }
    | _ -> ());
    Hashtbl.replace t.open_state thread (state, cycle)

let end_thread_state t ~thread ~cycle =
  (match Hashtbl.find_opt t.open_state thread with
  | Some (cur, since) when since < cycle ->
    push_span t { sp_thread = thread; sp_state = cur; sp_start = since; sp_end = cycle }
  | _ -> ());
  Hashtbl.remove t.open_state thread

let take_sample t ~cycle =
  let probes = List.rev t.probes in
  let values =
    List.map
      (fun p ->
        let v = p.pr_read () in
        match p.pr_kind with
        | Gauge ->
          push_point t { pt_track = p.pr_name; pt_cycle = cycle; pt_value = v };
          (p.pr_name, v)
        | Counter ->
          let d = v - p.pr_last in
          p.pr_last <- v;
          (p.pr_name, d))
      probes
  in
  t.samples <- { s_cycle = cycle; s_values = Array.of_list values } :: t.samples

(* Called once per engine step with the current cycle; samples at most once
   per call, at the first crossed interval boundary (fast-forwarded regions
   collapse into one sample so counter deltas still partition the run). *)
let maybe_sample t ~cycle =
  if cycle >= t.next_sample && t.finished_at < 0 then begin
    take_sample t ~cycle;
    t.next_sample <- cycle - (cycle mod t.interval) + t.interval
  end

(* Close all open spans and flush a final sample so that counter deltas over
   [samples] sum exactly to the run's aggregate counters. Idempotent. *)
let finish t ~cycle =
  if t.finished_at < 0 then begin
    let open_threads = Hashtbl.fold (fun th _ acc -> th :: acc) t.open_state [] in
    List.iter (fun th -> end_thread_state t ~thread:th ~cycle) open_threads;
    take_sample t ~cycle;
    t.finished_at <- cycle
  end

let samples t = List.rev t.samples
let spans t = List.rev t.spans
let points t = List.rev t.points
let dropped_events t = t.dropped

(* Sum of a counter probe's deltas across all samples taken so far. *)
let sum_counter t name =
  List.fold_left
    (fun acc s ->
      Array.fold_left
        (fun acc (n, v) -> if String.equal n name then acc + v else acc)
        acc s.s_values)
    0 t.samples

let samples_json t : Json.t =
  Json.List
    (List.map
       (fun s ->
         Json.Obj
           [
             ("cycle", Json.Int s.s_cycle);
             ( "values",
               Json.Obj
                 (Array.to_list
                    (Array.map (fun (n, v) -> (n, Json.Int v)) s.s_values)) );
           ])
       (samples t))

let report_json t : Json.t =
  Json.Obj
    [
      ("sample_interval", Json.Int t.interval);
      ("dropped_events", Json.Int t.dropped);
      ("samples", samples_json t);
    ]

(* --- generic Chrome trace-event emitter --------------------------------

   Shared by the engine exporter below and by the phloemd daemon tracer:
   both reduce their timelines to named processes/threads, complete "X"
   spans and "C" counter tracks, so the format details (metadata events,
   microsecond ts/dur fields, displayTimeUnit) live in one place. *)

type trace_span = {
  te_pid : int;
  te_tid : int;
  te_cat : string;
  te_name : string;
  te_ts : int; (* microseconds *)
  te_dur : int;
}

type trace_counter = { tc_name : string; tc_ts : int; tc_value : int }

let trace_events_json ?(process_names = []) ?(thread_names = [])
    ?(counters = []) spans : Json.t =
  let metas =
    List.map
      (fun (pid, name) ->
        Json.Obj
          [
            ("ph", Json.Str "M");
            ("name", Json.Str "process_name");
            ("pid", Json.Int pid);
            ("args", Json.Obj [ ("name", Json.Str name) ]);
          ])
      process_names
    @ List.map
        (fun ((pid, tid), name) ->
          Json.Obj
            [
              ("ph", Json.Str "M");
              ("name", Json.Str "thread_name");
              ("pid", Json.Int pid);
              ("tid", Json.Int tid);
              ("args", Json.Obj [ ("name", Json.Str name) ]);
            ])
        thread_names
  in
  let span_events =
    List.map
      (fun sp ->
        Json.Obj
          [
            ("ph", Json.Str "X");
            ("name", Json.Str sp.te_name);
            ("cat", Json.Str sp.te_cat);
            ("pid", Json.Int sp.te_pid);
            ("tid", Json.Int sp.te_tid);
            ("ts", Json.Int sp.te_ts);
            ("dur", Json.Int sp.te_dur);
          ])
      spans
  in
  let counter_events =
    List.map
      (fun pt ->
        Json.Obj
          [
            ("ph", Json.Str "C");
            ("name", Json.Str pt.tc_name);
            ("pid", Json.Int 0);
            ("ts", Json.Int pt.tc_ts);
            ("args", Json.Obj [ ("value", Json.Int pt.tc_value) ]);
          ])
      counters
  in
  Json.Obj
    [
      ("traceEvents", Json.List (metas @ span_events @ counter_events));
      ("displayTimeUnit", Json.Str "ms");
    ]

(* Chrome trace-event export: one timeline track per thread (issue/stall
   state spans as complete "X" events, grouped by core as the process), plus
   one counter ("C") track per registered gauge. Timestamps are in simulated
   cycles, reported through the trace format's microsecond field. *)
let trace_json t : Json.t =
  let core_of = Hashtbl.create 16 in
  List.iter (fun m -> Hashtbl.replace core_of m.tm_thread m.tm_core) t.metas;
  let pid thread = try Hashtbl.find core_of thread with Not_found -> 0 in
  let process_names =
    List.rev_map
      (fun m -> (m.tm_core, Printf.sprintf "core%d" m.tm_core))
      t.metas
  in
  let thread_names =
    List.rev_map (fun m -> ((m.tm_core, m.tm_thread), m.tm_name)) t.metas
  in
  let spans =
    List.rev_map
      (fun sp ->
        {
          te_pid = pid sp.sp_thread;
          te_tid = sp.sp_thread;
          te_cat = "thread";
          te_name = sp.sp_state;
          te_ts = sp.sp_start;
          te_dur = sp.sp_end - sp.sp_start;
        })
      t.spans
  in
  let counters =
    List.rev_map
      (fun pt -> { tc_name = pt.pt_track; tc_ts = pt.pt_cycle; tc_value = pt.pt_value })
      t.points
  in
  trace_events_json ~process_names ~thread_names ~counters spans

let write_trace_file t file = Json.to_file file (trace_json t)
