(* Cycle-level timing replay of micro-op traces on the Pipette architecture.

   Each pipeline stage is an SMT thread. Per cycle, a core dispatches ops
   in program order into a shared instruction window (ROB), issues up to
   [issue_width] ready ops across its threads (out of order within the
   window, subject to data deps, memory ports, queue occupancy, and branch
   redirects), and retires in order. Queue back-pressure, reference
   accelerators, and barriers run alongside. Stall cycles are fast-forwarded
   through an event heap, so memory-bound regions simulate quickly. *)

open Phloem_util
open Phloem_ir

let unset = max_int

type stall_class = Sc_issue | Sc_backend | Sc_queue | Sc_other

(* Refined stall attribution. The 4-way [stall_class] split is what the
   aggregate result reports (and what the default output prints); each
   non-issue cycle additionally carries a cause: which queue blocked the
   thread and in which direction (full = downstream backpressure, empty =
   upstream starvation), or which cache level served the load the thread is
   waiting on. The mapping reason -> class is total and fixed, so refined
   counts always reconcile exactly with the 4-way aggregates. *)
type stall_reason =
  | R_issue
  | R_backend of int (* serving cache level: 0 = port/unattributed, 1..3 = L1..L3, 4 = DRAM *)
  | R_queue_full of int (* queue id: enqueue blocked, downstream backpressure *)
  | R_queue_empty of int (* queue id: dequeue starved, upstream too slow *)
  | R_barrier
  | R_other

let class_of_reason = function
  | R_issue -> Sc_issue
  | R_backend _ -> Sc_backend
  | R_queue_full _ | R_queue_empty _ | R_barrier -> Sc_queue
  | R_other -> Sc_other

type thread_state = {
  th_id : int;
  th_core : int;
  (* trace columns *)
  kind : int array;
  pa : int array;
  pb : int array;
  dep1 : int array;
  dep2 : int array;
  dep3 : int array;
  n_ops : int;
  comp : int array; (* completion cycle per op; [unset] until issued *)
  wake : int array;
      (* earliest cycle a previously-failed issue probe could succeed: a
         failed [try_issue] is side-effect-free and its blocking condition
         is monotone (dep completion times only get set, never lowered;
         queue arrivals land strictly in the future), so the scan skips
         re-probing an op until its recorded wake cycle. Enqueue ops are
         the exception — a same-cycle dequeue can free a slot (and fault
         drop rolls must re-roll per attempt) — so their probes record
         wake = now and are always retried. *)
  issued : Bytes.t;
  mutable scan_wake : int;
      (* earliest cycle the issue scan must walk this thread again. Valid
         only while the probe prefix (the first ops of the unissued list,
         up to the per-pass step limit) is fixed: it is recomputed after
         every walk and reset to 0 whenever the prefix can change — an op
         issuing from this thread or dispatch appending into a short list.
         A prefix containing an enqueue never caches (occupancy can change
         any cycle and fault drop rolls are per-attempt). *)
  mutable cl_until : int;
      (* stall classification cache: [cl_reason] is valid for cycles
         < [cl_until]. Horizons beyond now+1 are only recorded for
         dependence stalls whose pending producers all have fixed
         completion times; issuing or dispatching resets it. *)
  mutable cl_reason : stall_reason;
  link : int array; (* singly-linked list over dispatched, unissued ops *)
  mutable unissued_head : int; (* -1 = none *)
  mutable unissued_tail : int;
  mutable dispatch_ptr : int;
  mutable retire_ptr : int;
  mutable blocked_branch : int; (* op index, or -1 *)
  mutable done_ : bool;
  mutable issued_this_cycle : int;
  (* accounting *)
  mutable cy_issue : int;
  mutable cy_backend : int;
  mutable cy_queue : int;
  mutable cy_other : int;
  (* refined attribution, reconciling with the 4-way split above *)
  aq_full : int array; (* per queue: cycles blocked enqueueing into it *)
  aq_empty : int array; (* per queue: cycles starved dequeueing from it *)
  mutable cy_barrier : int; (* barrier waits (counted under cy_queue) *)
  backend_lvl : int array; (* 0 = port/unattributed, 1..3 = L1..L3, 4 = DRAM *)
  enq_ops : int array; (* per queue: enqueues issued (producer map) *)
  deq_ops : int array; (* per queue: dequeues issued (consumer map) *)
  svc : Bytes.t; (* cache level that served each memory op, 0 otherwise *)
}

type queue_state = {
  qs_capacity : int;
  arrived_at : Vec.Int_vec.t;
      (* completion time of each arrival, in arrival (issue) order: FIFO
         matching, which is what the hardware does — the functional
         scheduler's interleaving on multi-producer queues need not be
         replayable under bounded capacity *)
  mutable deq_issued : int; (* consumer progress *)
  mutable ra_consumed : int; (* RA-input progress *)
  mutable occupancy : int;
}

type ra_state = {
  ra_core : int;
  ra_in_q : int;
  ra_out_q : int;
  rin_seq : int array;
  rout_seq : int array;
  raddr : int array;
  rsize : int array;
  rn : int;
  fetch_done : int array;
  mutable next_start : int;
  mutable next_deliver : int;
  mutable outstanding : int;
  mutable fetches : int;
}

(* Per-queue attribution: all arrays indexed by thread id. [qa_occ_hist]
   counts, for each occupancy value 0..capacity, the cycles the queue spent
   at that occupancy — buckets sum exactly to the run's cycle count. *)
type queue_attr = {
  qa_id : int;
  qa_capacity : int;
  qa_full : int array; (* cycles each thread spent blocked enqueueing *)
  qa_empty : int array; (* cycles each thread spent starved dequeueing *)
  qa_enqs : int array; (* enqueues issued by each thread *)
  qa_deqs : int array; (* dequeues issued by each thread *)
  qa_occ_hist : int array;
}

(* Refined attribution of the run. Reconciliation invariants (asserted in
   tests): per thread, queue-full + queue-empty + barrier = queue_cycles and
   the backend-level buckets sum to backend_cycles; per-thread class arrays
   sum to the aggregate class fields of [result]. *)
type attribution = {
  at_queues : queue_attr array;
  at_issue : int array; (* per-thread 4-way split, summing to the aggregates *)
  at_backend : int array;
  at_queue : int array;
  at_other : int array;
  at_barrier : int array; (* per thread: barrier waits within at_queue *)
  at_backend_level : int array array;
      (* per thread: [|port/unattributed; L1; L2; L3; DRAM|], summing to
         at_backend *)
}

type result = {
  cycles : int;
  instrs : int;
  issue_cycles : int; (* summed over threads *)
  backend_cycles : int;
  queue_cycles : int;
  other_cycles : int;
  cache : Cache.counters;
  branch_lookups : int;
  branch_mispredicts : int;
  queue_ops : int;
  ra_fetches : int;
  n_threads : int;
  n_cores_used : int;
  attribution : attribution;
}

let default_thread_core (cfg : Config.t) n_threads =
  Array.init n_threads (fun i ->
      let core = i / cfg.smt_threads in
      if core >= cfg.n_cores then
        invalid_arg
          (Printf.sprintf
             "engine: %d threads do not fit on %d cores x %d SMT threads"
             n_threads cfg.n_cores cfg.smt_threads);
      core)

let default_cycle_budget = 500_000_000
let default_watchdog = 5_000_000

let run ?(cfg = Config.default) ?thread_core ?(ra_core = [||])
    ?(queue_caps = []) ?telemetry ?faults ?(watchdog = default_watchdog)
    ?(cycle_budget = default_cycle_budget) (p : Types.pipeline)
    (trace : Trace.t) : result =
  let n_threads = Array.length trace.Trace.threads in
  let thread_core =
    match thread_core with
    | Some tc -> tc
    | None -> default_thread_core cfg n_threads
  in
  let caches = Cache.create cfg in
  let pred =
    Predictor.create ~entries:cfg.predictor_entries
      ~history_bits:cfg.predictor_history_bits ~n_threads
  in
  let events = Heap.create () in
  let n_queues = trace.Trace.n_queues in
  let threads =
    Array.mapi
      (fun i (tt : Trace.thread_trace) ->
        let n = Trace.length tt in
        (* Packed columns are cached on the trace: replaying a memoized
           trace across many variant configs reuses one snapshot instead of
           re-copying six columns per replay. The engine only ever reads
           them. (Traces published to a cross-domain cache are packed
           before publication — see Sim — so this is not a racing write.) *)
        let pk = Trace.pack tt in
        {
          th_id = i;
          th_core = thread_core.(i);
          kind = pk.Trace.pk_kind;
          pa = pk.Trace.pk_pa;
          pb = pk.Trace.pk_pb;
          dep1 = pk.Trace.pk_dep1;
          dep2 = pk.Trace.pk_dep2;
          dep3 = pk.Trace.pk_dep3;
          n_ops = n;
          comp = Array.make (max n 1) unset;
          wake = Array.make (max n 1) 0;
          issued = Bytes.make (max n 1) '\000';
          scan_wake = 0;
          cl_until = 0;
          cl_reason = R_other;
          link = Array.make (max n 1) (-1);
          unissued_head = -1;
          unissued_tail = -1;
          dispatch_ptr = 0;
          retire_ptr = 0;
          blocked_branch = -1;
          done_ = n = 0;
          issued_this_cycle = 0;
          cy_issue = 0;
          cy_backend = 0;
          cy_queue = 0;
          cy_other = 0;
          aq_full = Array.make (max n_queues 1) 0;
          aq_empty = Array.make (max n_queues 1) 0;
          cy_barrier = 0;
          backend_lvl = Array.make 5 0;
          enq_ops = Array.make (max n_queues 1) 0;
          deq_ops = Array.make (max n_queues 1) 0;
          svc = Bytes.make (max n 1) '\000';
        })
      trace.Trace.threads
  in
  (* Queue state: size each enq_done array by total enqueues seen. *)
  let enq_counts = Array.make (max n_queues 1) 0 in
  Array.iter
    (fun th ->
      for i = 0 to th.n_ops - 1 do
        if th.kind.(i) = Trace.op_enq then
          enq_counts.(th.pa.(i)) <- max enq_counts.(th.pa.(i)) (th.pb.(i) + 1)
      done)
    threads;
  Array.iter
    (fun (rt : Trace.ra_trace) ->
      (* RA deliveries count as enqueues into the out queue; their queue id
         is recovered from the pipeline's RA configs below, so here we only
         need sequence bounds, handled after ra_states are built. *)
      ignore rt)
    trace.Trace.ras;
  let ra_cfgs = Array.of_list p.Types.p_ras in
  Array.iteri
    (fun r (rt : Trace.ra_trace) ->
      let out_q = ra_cfgs.(r).Types.ra_out in
      let n = Trace.ra_length rt in
      for i = 0 to n - 1 do
        let seq = Vec.Int_vec.get rt.Trace.rt_out_seq i in
        enq_counts.(out_q) <- max enq_counts.(out_q) (seq + 1)
      done)
    trace.Trace.ras;
  (* q_id -> capacity, precomputed once: looking each queue up with
     List.find_opt over the declarations is O(queues) per queue, O(q^2)
     total at setup, which shows up on wide replicated pipelines. *)
  let q_caps =
    let top =
      List.fold_left
        (fun acc (d : Types.queue_decl) -> max acc (d.q_id + 1))
        n_queues p.Types.p_queues
    in
    let caps = Array.make (max top 1) cfg.queue_depth in
    List.iter
      (fun (d : Types.queue_decl) ->
        if d.q_id >= 0 then caps.(d.q_id) <- d.q_capacity)
      p.Types.p_queues;
    (* Per-queue capacity overrides (the autotuner's "deepen q" knob).
       Taking them here instead of rewriting the queue declarations keeps
       the pipeline — and therefore Sim's compiled-program and functional-
       trace memo keys — unchanged, so a capacity move costs only a timing
       replay. *)
    List.iter
      (fun (q, cap) ->
        if q >= 0 && q < Array.length caps && cap >= 1 then caps.(q) <- cap)
      queue_caps;
    caps
  in
  let cap_of q = if q < Array.length q_caps then q_caps.(q) else cfg.queue_depth in
  let queues =
    Array.init (max n_queues 1) (fun q ->
        ignore enq_counts.(q);
        {
          qs_capacity = cap_of q;
          arrived_at = Vec.Int_vec.create ~capacity:64 ();
          deq_issued = 0;
          ra_consumed = 0;
          occupancy = 0;
        })
  in
  (* Per-queue occupancy histograms: bucket [o] counts the cycles queue [q]
     spent holding exactly [o] elements. Advanced with the same deltas as
     stall accounting, so each histogram partitions the run's cycles. *)
  let occ_hist =
    Array.init (max n_queues 1) (fun q ->
        Array.make (queues.(q).qs_capacity + 1) 0)
  in
  let ras =
    Array.mapi
      (fun r (rt : Trace.ra_trace) ->
        let n = Trace.ra_length rt in
        {
          ra_core = (if r < Array.length ra_core then ra_core.(r) else 0);
          ra_in_q = ra_cfgs.(r).Types.ra_in;
          ra_out_q = ra_cfgs.(r).Types.ra_out;
          rin_seq = Vec.Int_vec.to_array rt.Trace.rt_in_seq;
          rout_seq = Vec.Int_vec.to_array rt.Trace.rt_out_seq;
          raddr = Vec.Int_vec.to_array rt.Trace.rt_addr;
          rsize = Vec.Int_vec.to_array rt.Trace.rt_size;
          rn = n;
          fetch_done = Array.make (max n 1) unset;
          next_start = 0;
          next_deliver = 0;
          outstanding = 0;
          fetches = 0;
        })
      trace.Trace.ras
  in
  (* Barrier groups: (id, occurrence) -> pending arrivals and arrived ops. *)
  let barrier_total = Hashtbl.create 8 in
  Array.iter
    (fun th ->
      for i = 0 to th.n_ops - 1 do
        if th.kind.(i) = Trace.op_barrier then begin
          let key = (th.pa.(i), th.pb.(i)) in
          let c = try Hashtbl.find barrier_total key with Not_found -> 0 in
          Hashtbl.replace barrier_total key (c + 1)
        end
      done)
    threads;
  (* Arrival count is kept alongside the list so each arrival is O(1)
     instead of List.length per arrival (O(n^2) per barrier group). *)
  let barrier_arrived : (int * int, int * (thread_state * int) list) Hashtbl.t =
    Hashtbl.create 8
  in
  (* Core thread lists. *)
  let cores = Array.make cfg.n_cores [] in
  Array.iter (fun th -> cores.(th.th_core) <- th :: cores.(th.th_core)) threads;
  let cores = Array.map (fun l -> Array.of_list (List.rev l)) cores in
  let n_cores_used =
    Array.fold_left (fun acc c -> if Array.length c > 0 then acc + 1 else acc) 0 cores
  in
  let queue_ops = ref 0 in
  let total_dispatched = ref 0 in
  let now = ref 0 in
  let progress = ref false in
  (* Wake-event filter. The fast-forward loop discards calendar entries
     with t <= now, and a cycle that makes progress advances [now] by one
     before the calendar is consulted again — so an event at t <= now+1
     pushed from a path that also sets [progress] this cycle can never be
     the entry that wakes the simulator. Skipping those pushes keeps the
     calendar heap small on issue-heavy workloads. Only used on paths that
     unconditionally set [progress]; paths that may not make progress
     (dropped enqueues, fault stalls) push unconditionally. *)
  let schedule_wake t = if t > !now + 1 then Heap.push events t in
  (* Per-core ROB share, recomputed only when some thread finishes
     ([done_] flips only in [retire]); value is identical to the fold the
     old [window_room] performed on every call. *)
  let core_share = Array.make (max cfg.n_cores 1) cfg.rob_size in
  let shares_dirty = ref true in
  let recompute_shares () =
    Array.iteri
      (fun ci ct ->
        let active =
          Array.fold_left (fun acc t -> if t.done_ then acc else acc + 1) 0 ct
        in
        core_share.(ci) <- max 16 (cfg.rob_size / max 1 active))
      cores;
    shares_dirty := false
  in
  (* Threads still running. The per-cycle sweeps (issued_this_cycle reset,
     retire, stall accounting) iterate this set instead of all threads, so
     long-finished threads cost nothing; it is pruned at cycle end whenever
     some thread completed. *)
  let live =
    ref (Array.of_list (List.filter (fun th -> not th.done_) (Array.to_list threads)))
  in
  let live_dirty = ref false in
  (* Fault-injection state. A killed thread stays in [live] but never
     dispatches, issues, or retires again: its consumers starve into a
     detectable deadlock rather than a silent wrong answer. [stalled_now]
     is refreshed once per simulated cycle. [last_retire] feeds the
     watchdog that separates livelock from budget exhaustion; with
     [?faults:None] these are dead weight and no counter changes. *)
  let killed = Array.make (max n_threads 1) false in
  let stalled_now = Array.make (max n_threads 1) false in
  let last_retire = ref 0 in
  let inactive th = killed.(th.th_id) || stalled_now.(th.th_id) in

  (* Telemetry probes: queue occupancy and RA outstanding fetches are gauges
     (also exported as Chrome counter tracks); everything cumulative is a
     counter, sampled as deltas. The default [None] path costs one match per
     hook site and allocates nothing. *)
  (match telemetry with
  | None -> ()
  | Some tel ->
    let stage_names = Array.of_list (List.map (fun (s : Types.stage) -> s.Types.s_name) p.Types.p_stages) in
    Array.iteri
      (fun i th ->
        let name =
          if i < Array.length stage_names then stage_names.(i)
          else Printf.sprintf "thread%d" i
        in
        Telemetry.set_thread_meta tel ~thread:i ~core:th.th_core ~name)
      threads;
    Array.iteri
      (fun q qs ->
        if q < n_queues then begin
          Telemetry.register_gauge tel
            ~name:(Printf.sprintf "queue%d.occupancy" q)
            (fun () -> qs.occupancy);
          Telemetry.register_counter tel
            ~name:(Printf.sprintf "queue%d.full_stall_cycles" q)
            (fun () ->
              Array.fold_left (fun acc th -> acc + th.aq_full.(q)) 0 threads);
          Telemetry.register_counter tel
            ~name:(Printf.sprintf "queue%d.empty_stall_cycles" q)
            (fun () ->
              Array.fold_left (fun acc th -> acc + th.aq_empty.(q)) 0 threads)
        end)
      queues;
    Array.iteri
      (fun r ra ->
        Telemetry.register_gauge tel
          ~name:(Printf.sprintf "ra%d.outstanding" r)
          (fun () -> ra.outstanding);
        Telemetry.register_counter tel
          ~name:(Printf.sprintf "ra%d.fetches" r)
          (fun () -> ra.fetches))
      ras;
    Array.iter
      (fun th ->
        let n name read = Telemetry.register_counter tel ~name:(Printf.sprintf "thread%d.%s" th.th_id name) read in
        n "issue_cycles" (fun () -> th.cy_issue);
        n "backend_cycles" (fun () -> th.cy_backend);
        n "queue_cycles" (fun () -> th.cy_queue);
        n "other_cycles" (fun () -> th.cy_other);
        n "retired" (fun () -> th.retire_ptr))
      threads;
    let c name read = Telemetry.register_counter tel ~name read in
    c "cache.l1_hits" (fun () -> (Cache.counters caches).Cache.c_l1_hits);
    c "cache.l1_misses" (fun () -> (Cache.counters caches).Cache.c_l1_misses);
    c "cache.l2_hits" (fun () -> (Cache.counters caches).Cache.c_l2_hits);
    c "cache.l2_misses" (fun () -> (Cache.counters caches).Cache.c_l2_misses);
    c "cache.l3_hits" (fun () -> (Cache.counters caches).Cache.c_l3_hits);
    c "cache.l3_misses" (fun () -> (Cache.counters caches).Cache.c_l3_misses);
    c "cache.dram" (fun () -> (Cache.counters caches).Cache.c_dram);
    c "cache.prefetches" (fun () -> (Cache.counters caches).Cache.c_prefetches);
    c "branch.lookups" (fun () -> pred.Predictor.lookups);
    c "branch.mispredicts" (fun () -> pred.Predictor.mispredicts);
    c "engine.queue_ops" (fun () -> !queue_ops);
    c "engine.dispatched" (fun () -> !total_dispatched));

  (* Hot-path accesses below use unchecked indexing: every op index is
     drawn from the unissued list or the retire/dispatch pointers (all
     < [n_ops], the allocation size of every per-op column), and every
     dependence index comes from the tracer's producer columns, which only
     ever name earlier ops of the same thread. *)
  let dep_met th d =
    d = Trace.no_dep || Array.unsafe_get th.comp d <= !now
  in
  let deps_met th i =
    dep_met th (Array.unsafe_get th.dep1 i)
    && dep_met th (Array.unsafe_get th.dep2 i)
    && dep_met th (Array.unsafe_get th.dep3 i)
  in

  let push_unissued th i =
    Array.unsafe_set th.link i (-1);
    if th.unissued_head = -1 then begin
      th.unissued_head <- i;
      th.unissued_tail <- i
    end
    else begin
      Array.unsafe_set th.link th.unissued_tail i;
      th.unissued_tail <- i
    end
  in

  (* Window occupancy = dispatched but not retired. *)
  let window_room th = th.dispatch_ptr - th.retire_ptr < core_share.(th.th_core) in

  let retire th =
    let before = th.retire_ptr in
    while
      th.retire_ptr < th.dispatch_ptr
      &&
      let c = Array.unsafe_get th.comp th.retire_ptr in
      c <> unset && c <= !now
    do
      th.retire_ptr <- th.retire_ptr + 1;
      progress := true
    done;
    if th.retire_ptr <> before then last_retire := !now;
    (match faults with
    | Some f ->
      if
        (not th.done_)
        && Faults.should_kill f ~thread:th.th_id ~retired:th.retire_ptr
      then killed.(th.th_id) <- true
    | None -> ());
    if th.retire_ptr >= th.n_ops && not th.done_ then begin
      th.done_ <- true;
      live_dirty := true;
      shares_dirty := true;
      (match telemetry with
      | Some tel -> Telemetry.end_thread_state tel ~thread:th.th_id ~cycle:!now
      | None -> ());
      progress := true
    end
  in

  (* The front end is shared: a core's dispatch bandwidth is split across
     its active threads each cycle (budget passed in by the caller). *)
  let dispatch th budget =
    if th.blocked_branch >= 0 then begin
      let b = th.blocked_branch in
      if th.comp.(b) <> unset && !now >= th.comp.(b) + cfg.mispredict_penalty then begin
        th.blocked_branch <- -1;
        progress := true
      end
    end;
    if th.blocked_branch < 0 then begin
      let continue = ref true in
      while !continue && !budget > 0 && th.dispatch_ptr < th.n_ops && window_room th do
        let i = th.dispatch_ptr in
        th.dispatch_ptr <- i + 1;
        push_unissued th i;
        (* a fresh op may have entered the probe prefix *)
        th.scan_wake <- 0;
        th.cl_until <- 0;
        decr budget;
        progress := true;
        if th.kind.(i) = Trace.op_branch then begin
          let correct =
            Predictor.predict_update pred ~thread:th.th_id ~pc:th.pa.(i)
              ~taken:(th.pb.(i) = 1)
          in
          let correct =
            match faults with
            | Some f -> correct && not (Faults.poison f)
            | None -> correct
          in
          if not correct then begin
            th.blocked_branch <- i;
            continue := false
          end
        end
      done
    end
  in

  (* Earliest cycle this op's unmet dependencies could all be satisfied: a
     set completion time is exact; an unset one (producer not yet issued)
     contributes only the conservative [now + 1]. *)
  let dep_wake th i =
    let one d acc =
      if d = Trace.no_dep then acc
      else begin
        let c = Array.unsafe_get th.comp d in
        if c <= !now then acc
        else if c = unset then max acc (!now + 1)
        else max acc c
      end
    in
    one (Array.unsafe_get th.dep1 i)
      (one (Array.unsafe_get th.dep2 i)
         (one (Array.unsafe_get th.dep3 i) (!now + 1)))
  in
  (* Issue one op if it is ready; returns -1 if issued, else the earliest
     cycle a retry could succeed (see [wake] on [thread_state]). *)
  let try_issue th i ~mem_budget =
    let k = Array.unsafe_get th.kind i in
    let is_mem = k = Trace.op_load || k = Trace.op_store || k = Trace.op_atomic || k = Trace.op_prefetch in
    if is_mem && !mem_budget <= 0 then !now + 1
    else if not (deps_met th i) then dep_wake th i
    else begin
      let ok, latency =
        if k = Trace.op_alu then (true, 1)
        else if k = Trace.op_branch then (true, 1)
        else if k = Trace.op_load then begin
          let r = Cache.access caches ~core:th.th_core ~addr:th.pa.(i) ~now:!now in
          Bytes.set th.svc i (Char.chr r.Cache.level_hit);
          let extra =
            match faults with
            | Some f -> Faults.spike f ~level:r.Cache.level_hit
            | None -> 0
          in
          (true, r.Cache.latency + extra)
        end
        else if k = Trace.op_store then begin
          ignore (Cache.access caches ~core:th.th_core ~addr:th.pa.(i) ~now:!now);
          (true, 1) (* retires through the store buffer *)
        end
        else if k = Trace.op_atomic then begin
          (* locked read-modify-write: pays the access plus serialization *)
          let r = Cache.access caches ~core:th.th_core ~addr:th.pa.(i) ~now:!now in
          Bytes.set th.svc i (Char.chr r.Cache.level_hit);
          let extra =
            match faults with
            | Some f -> Faults.spike f ~level:r.Cache.level_hit
            | None -> 0
          in
          (true, r.Cache.latency + 18 + extra)
        end
        else if k = Trace.op_prefetch then begin
          Cache.prefetch caches ~core:th.th_core ~addr:th.pa.(i) ~now:!now;
          (true, 1)
        end
        else if k = Trace.op_enq then begin
          let q = queues.(th.pa.(i)) in
          if q.occupancy >= q.qs_capacity then (false, !now)
          else begin
            match faults with
            | Some f when Faults.drop_enq f ~queue:th.pa.(i) ->
              (* transient enqueue failure: the op retries (and the fault
                 re-rolls) on a later issue attempt; keep the clock moving
                 so a long streak of drops reads as livelock rather than an
                 eventless deadlock *)
              Heap.push events (!now + 1);
              (false, !now)
            | _ ->
              q.occupancy <- q.occupancy + 1;
              Vec.Int_vec.push q.arrived_at (!now + 1);
              incr queue_ops;
              th.enq_ops.(th.pa.(i)) <- th.enq_ops.(th.pa.(i)) + 1;
              (match faults with
              | Some f
                when q.occupancy < q.qs_capacity
                     && Faults.dup_enq f ~queue:th.pa.(i) ->
                (* phantom duplicate: occupies a slot until the end of the
                   run — no consumer op in the trace will ever drain it *)
                q.occupancy <- q.occupancy + 1;
                Vec.Int_vec.push q.arrived_at (!now + 1)
              | _ -> ());
              (true, 1)
          end
        end
        else if k = Trace.op_deq then begin
          let q = queues.(th.pa.(i)) in
          if
            q.deq_issued < Vec.Int_vec.length q.arrived_at
            && Vec.Int_vec.get q.arrived_at q.deq_issued <= !now
          then begin
            q.deq_issued <- q.deq_issued + 1;
            q.occupancy <- q.occupancy - 1;
            incr queue_ops;
            th.deq_ops.(th.pa.(i)) <- th.deq_ops.(th.pa.(i)) + 1;
            (true, 1)
          end
          else
            (* starved, or the head arrival is still in flight: its arrival
               time bounds the earliest useful retry *)
            ( false,
              if q.deq_issued < Vec.Int_vec.length q.arrived_at then
                Vec.Int_vec.get q.arrived_at q.deq_issued
              else !now + 1 )
        end
        else if k = Trace.op_barrier then begin
          let key = (th.pa.(i), th.pb.(i)) in
          let n, arrived =
            try Hashtbl.find barrier_arrived key with Not_found -> (0, [])
          in
          let n = n + 1 and arrived = (th, i) :: arrived in
          if n = Hashtbl.find barrier_total key then begin
            (* all threads resume after a fixed resynchronization penalty;
               the group is complete, so drop its arrival state rather than
               retaining every (thread, op) list for the whole run *)
            Hashtbl.remove barrier_arrived key;
            let release = !now + 40 in
            List.iter
              (fun (th', i') ->
                th'.comp.(i') <- release;
                schedule_wake release)
              arrived;
            (* comp already set; mark latency 0 sentinel below *)
            (true, -1)
          end
          else begin
            Hashtbl.replace barrier_arrived key (n, arrived);
            (true, -2) (* arrived; completion set when group completes *)
          end
        end
        else (true, 1)
      in
      if not ok then latency (* carries the retry wake cycle on failure *)
      else begin
        if is_mem then decr mem_budget;
        Bytes.unsafe_set th.issued i '\001';
        (* the unissued prefix and the stall picture both just changed *)
        th.scan_wake <- 0;
        th.cl_until <- 0;
        (match latency with
        | -1 | -2 -> () (* barrier: comp handled above or pending *)
        | l ->
          Array.unsafe_set th.comp i (!now + l);
          schedule_wake (!now + l));
        if k = Trace.op_branch && th.blocked_branch = i then
          schedule_wake (th.comp.(i) + cfg.mispredict_penalty);
        th.issued_this_cycle <- th.issued_this_cycle + 1;
        progress := true;
        -1
      end
    end
  in

  (* Per-core scan counters, reset by fill each cycle instead of being
     reallocated: issue_core runs every simulated cycle per core. *)
  let scan_bufs =
    Array.map (fun ct -> Array.make (max 1 (Array.length ct)) 0) cores
  in
  (* After a walk, record the earliest cycle the next walk could behave
     differently: the minimum recorded wake over the ops the next walk
     would probe (the first ops of the unissued list, up to the per-pass
     step limit). An op never yet probed (wake still 0) keeps the thread
     hot, and an enqueue disables the cache outright — a same-cycle
     dequeue can free a slot and fault drop rolls are per-attempt. An
     empty prefix sleeps until dispatch appends (which resets the field),
     and an issue from this thread also resets it, so the prefix is fixed
     for the whole validity window. *)
  let refresh_scan_wake th =
    let rec go node steps acc =
      if node < 0 || steps >= 4 then acc
      else if Bytes.unsafe_get th.issued node = '\001' then
        go (Array.unsafe_get th.link node) steps acc
      else if Array.unsafe_get th.kind node = Trace.op_enq then 0
      else
        go (Array.unsafe_get th.link node) (steps + 1)
          (min acc (Array.unsafe_get th.wake node))
    in
    th.scan_wake <- go th.unissued_head 0 max_int
  in
  let issue_core ci core_threads =
    let nth = Array.length core_threads in
    if nth > 0 then begin
      let issue_budget = ref cfg.issue_width in
      let mem_budget = ref cfg.mem_ports in
      let start = !now mod nth in
      (* Interleave threads round-robin, scanning each thread's oldest
         unissued ops; stop when the issue budget is spent. *)
      let made_progress = ref true in
      let scanned = scan_bufs.(ci) in
      Array.fill scanned 0 nth 0;
      while !made_progress && !issue_budget > 0 do
        made_progress := false;
        for off = 0 to nth - 1 do
          let ti = (start + off) mod nth in
          let th = core_threads.(ti) in
          if
            (not th.done_)
            && (not (inactive th))
            && !issue_budget > 0
            && scanned.(ti) < cfg.sched_scan
            && th.scan_wake <= !now
          then begin
            (* walk the unissued list, unlinking issued entries lazily *)
            let prev = ref (-1) in
            let node = ref th.unissued_head in
            let steps = ref 0 in
            let continue = ref true in
            while !continue && !node >= 0 && !steps < 4 && !issue_budget > 0 do
              let i = !node in
              let next = Array.unsafe_get th.link i in
              if Bytes.unsafe_get th.issued i = '\001' then begin
                (* already issued: unlink *)
                if !prev < 0 then th.unissued_head <- next else th.link.(!prev) <- next;
                if th.unissued_tail = i then th.unissued_tail <- !prev;
                node := next
              end
              else begin
                incr steps;
                scanned.(ti) <- scanned.(ti) + 1;
                if
                  Array.unsafe_get th.wake i > !now
                  || (Array.unsafe_get th.kind i = Trace.op_enq
                     &&
                     let q = queues.(Array.unsafe_get th.pa i) in
                     q.occupancy >= q.qs_capacity)
                then begin
                  (* cached or recheckable failure: [try_issue] would fail
                     with no side effects (a full-queue enqueue draws no
                     fault roll), so skip it — but charge the scan budgets
                     exactly as a probed failure would *)
                  prev := i;
                  node := next
                end
                else begin
                  let w = try_issue th i ~mem_budget in
                  if w < 0 then begin
                    decr issue_budget;
                    made_progress := true;
                    (* unlink issued op *)
                    if !prev < 0 then th.unissued_head <- next
                    else th.link.(!prev) <- next;
                    if th.unissued_tail = i then th.unissued_tail <- !prev;
                    node := next
                  end
                  else begin
                    Array.unsafe_set th.wake i w;
                    prev := i;
                    node := next
                  end
                end
              end
            done;
            ignore !continue;
            refresh_scan_wake th
          end
        done
      done
    end
  in

  (* RA engines: deliver in order, start new fetches up to the MSHR limit. *)
  let advance_ra ra =
    (* deliveries *)
    let continue = ref true in
    while !continue && ra.next_deliver < ra.rn do
      let i = ra.next_deliver in
      if ra.rout_seq.(i) < 0 then begin
        (* consume-only entry: no output to deliver *)
        if ra.fetch_done.(i) <> unset && ra.fetch_done.(i) <= !now then begin
          ra.next_deliver <- i + 1;
          ra.outstanding <- ra.outstanding - 1;
          progress := true
        end
        else continue := false
      end
      else begin
        let out = queues.(ra.ra_out_q) in
        if ra.fetch_done.(i) <> unset && ra.fetch_done.(i) <= !now
           && out.occupancy < out.qs_capacity
        then begin
          out.occupancy <- out.occupancy + 1;
          Vec.Int_vec.push out.arrived_at (!now + 1);
          schedule_wake (!now + 1);
          ra.next_deliver <- i + 1;
          ra.outstanding <- ra.outstanding - 1;
          progress := true
        end
        else continue := false
      end
    done;
    (* starts *)
    let continue = ref true in
    while !continue && ra.next_start < ra.rn && ra.outstanding < cfg.ra_mshrs do
      let i = ra.next_start in
      let inq = queues.(ra.ra_in_q) in
      let in_seq = ra.rin_seq.(i) in
      (* several scan outputs share one input element; only the first
         consumes it *)
      let first_use = i = 0 || ra.rin_seq.(i - 1) <> in_seq in
      let needed = if first_use then inq.ra_consumed + 1 else inq.ra_consumed in
      let input_ready =
        needed <= Vec.Int_vec.length inq.arrived_at
        && (needed = 0 || Vec.Int_vec.get inq.arrived_at (needed - 1) <= !now)
      in
      if input_ready then begin
        if first_use then begin
          inq.ra_consumed <- inq.ra_consumed + 1;
          inq.occupancy <- inq.occupancy - 1
        end;
        let lat =
          if ra.raddr.(i) < 0 then 1
          else begin
            ra.fetches <- ra.fetches + 1;
            let base =
              (Cache.access caches ~core:ra.ra_core ~addr:ra.raddr.(i) ~now:!now)
                .Cache.latency
            in
            match faults with
            | Some f -> base + Faults.spike f ~level:0
            | None -> base
          end
        in
        ra.fetch_done.(i) <- !now + lat;
        schedule_wake (!now + lat);
        ra.outstanding <- ra.outstanding + 1;
        ra.next_start <- i + 1;
        progress := true
      end
      else continue := false
    done
  in

  (* Stall classification for accounting. The reason refines the 4-way
     class; [class_of_reason] maps it back so the aggregate split is
     unchanged by the finer attribution. *)
  let classify th : stall_reason =
    if th.issued_this_cycle > 0 then R_issue
    else if th.blocked_branch >= 0 then R_other
    else if th.cl_until > !now then th.cl_reason
    else begin
      (* find first unissued op *)
      let rec first node =
        if node < 0 then -1
        else if Bytes.get th.issued node = '\000' then node
        else first th.link.(node)
      in
      let i = first th.unissued_head in
      if i < 0 then begin
        (* window empty: frontend. Nothing can issue, so the verdict holds
           until dispatch appends an op (which resets the cache). *)
        th.cl_reason <- R_other;
        th.cl_until <- max_int;
        R_other
      end
      else begin
        let k = th.kind.(i) in
        (* serving cache level of the first pending load/atomic operand,
           or 0 when the wait is a port conflict / not memory-shaped *)
        let dep_level () =
          let lvl d acc =
            if d <> Trace.no_dep && th.comp.(d) > !now then
              let dk = th.kind.(d) in
              if dk = Trace.op_load || dk = Trace.op_atomic then
                Char.code (Bytes.get th.svc d)
              else acc
            else acc
          in
          lvl th.dep1.(i) (lvl th.dep2.(i) (lvl th.dep3.(i) 0))
        in
        (* A plain operand stall cannot change verdict before the earliest
           pending producer completes; queue and barrier verdicts can flip
           any cycle, so they only cache for the current one. *)
        let dep_horizon () =
          let one d acc =
            if d = Trace.no_dep then acc
            else
              let c = th.comp.(d) in
              if c <= !now then acc
              else if c = unset then min acc (!now + 1)
              else min acc c
          in
          let h = one th.dep1.(i) (one th.dep2.(i) (one th.dep3.(i) max_int)) in
          if h = max_int then !now + 1 else h
        in
        let r, horizon =
          if k = Trace.op_enq then
            let q = queues.(th.pa.(i)) in
            if q.occupancy >= q.qs_capacity then
              (R_queue_full th.pa.(i), !now + 1)
            else (R_backend (dep_level ()), !now + 1)
          else if k = Trace.op_deq then
            let q = queues.(th.pa.(i)) in
            if
              q.deq_issued >= Vec.Int_vec.length q.arrived_at
              || Vec.Int_vec.get q.arrived_at q.deq_issued > !now
            then (R_queue_empty th.pa.(i), !now + 1)
            else (R_backend (dep_level ()), !now + 1)
          else if k = Trace.op_barrier then (R_barrier, !now + 1)
          else begin
            (* blocked on operands: attribute by the producer's kind *)
            let dep_kind d acc =
              if d <> Trace.no_dep && th.comp.(d) > !now then
                let dk = th.kind.(d) in
                if dk = Trace.op_load || dk = Trace.op_atomic then
                  R_backend (Char.code (Bytes.get th.svc d))
                else if dk = Trace.op_deq then R_queue_empty th.pa.(d)
                else acc
              else acc
            in
            ( dep_kind th.dep1.(i)
                (dep_kind th.dep2.(i) (dep_kind th.dep3.(i) (R_backend 0))),
              dep_horizon () )
          end
        in
        th.cl_reason <- r;
        th.cl_until <- horizon;
        r
      end
    end
  in
  let state_name = function
    | Sc_issue -> "issue"
    | Sc_backend -> "backend"
    | Sc_queue -> "queue"
    | Sc_other -> "other"
  in
  let account delta =
    for q = 0 to n_queues - 1 do
      let h = occ_hist.(q) in
      let b = min queues.(q).occupancy (Array.length h - 1) in
      h.(b) <- h.(b) + delta
    done;
    Array.iter
      (fun th ->
        if not th.done_ then begin
          (* live set not yet pruned this cycle, so recheck done_ *)
          let r = classify th in
          (match r with
          | R_issue -> th.cy_issue <- th.cy_issue + delta
          | R_backend lvl ->
            th.cy_backend <- th.cy_backend + delta;
            th.backend_lvl.(lvl) <- th.backend_lvl.(lvl) + delta
          | R_queue_full q ->
            th.cy_queue <- th.cy_queue + delta;
            th.aq_full.(q) <- th.aq_full.(q) + delta
          | R_queue_empty q ->
            th.cy_queue <- th.cy_queue + delta;
            th.aq_empty.(q) <- th.aq_empty.(q) + delta
          | R_barrier ->
            th.cy_queue <- th.cy_queue + delta;
            th.cy_barrier <- th.cy_barrier + delta
          | R_other -> th.cy_other <- th.cy_other + delta);
          match telemetry with
          | Some tel ->
            Telemetry.set_thread_state tel ~thread:th.th_id ~cycle:!now
              (state_name (class_of_reason r))
          | None -> ()
        end)
      !live
  in

  (* Build and raise the structured failure report (cold path). Blocked-on
     states come from the live engine state; the cyclic wait chain from the
     static producer/consumer wiring of the pipeline text. *)
  let fail_run kind =
    let names = Forensics.agent_names p in
    let _, producers, consumers = Forensics.queue_users p in
    let first_unissued th =
      let rec go node =
        if node < 0 then -1
        else if Bytes.get th.issued node = '\000' then node
        else go th.link.(node)
      in
      go th.unissued_head
    in
    (* The oldest unissued op in the window is the root cause and takes
       priority over the frontend state: a stage wedged on a full-queue
       enqueue usually also has an unresolved branch stuck behind it, and
       attributing that to the frontend would hide the queue edge from the
       wait-cycle finder. *)
    let blocked_of th =
      if th.done_ then Forensics.Finished
      else if killed.(th.th_id) then Forensics.Killed
      else begin
        let i = first_unissued th in
        if i < 0 then
          if th.blocked_branch >= 0 then Forensics.On_frontend
          else if th.retire_ptr < th.dispatch_ptr then Forensics.On_memory
          else Forensics.On_frontend
        else
          let k = th.kind.(i) in
          if k = Trace.op_enq then begin
            let q = queues.(th.pa.(i)) in
            if q.occupancy >= q.qs_capacity then Forensics.On_queue_full th.pa.(i)
            else Forensics.Running
          end
          else if k = Trace.op_deq then begin
            let q = queues.(th.pa.(i)) in
            if
              q.deq_issued >= Vec.Int_vec.length q.arrived_at
              || Vec.Int_vec.get q.arrived_at q.deq_issued > !now
            then Forensics.On_queue_empty th.pa.(i)
            else Forensics.Running
          end
          else if k = Trace.op_barrier then Forensics.On_barrier th.pa.(i)
          else if th.blocked_branch >= 0 then Forensics.On_frontend
          else Forensics.On_memory
      end
    in
    let thread_agents =
      Array.to_list
        (Array.map
           (fun th ->
             {
               Forensics.ag_id = th.th_id;
               ag_name =
                 (if th.th_id < Array.length names then names.(th.th_id)
                  else Printf.sprintf "thread%d" th.th_id);
               ag_blocked = blocked_of th;
               ag_done_ops = th.retire_ptr;
               ag_total_ops = th.n_ops;
             })
           threads)
    in
    let ra_agents =
      Array.to_list
        (Array.mapi
           (fun r ra ->
             let id = n_threads + r in
             let blocked =
               if ra.next_deliver >= ra.rn then Forensics.Finished
               else if ra.next_deliver < ra.next_start then begin
                 let out = queues.(ra.ra_out_q) in
                 if out.occupancy >= out.qs_capacity then
                   Forensics.On_queue_full ra.ra_out_q
                 else Forensics.On_memory
               end
               else Forensics.On_queue_empty ra.ra_in_q
             in
             {
               Forensics.ag_id = id;
               ag_name =
                 (if id < Array.length names then names.(id)
                  else Printf.sprintf "ra%d" r);
               ag_blocked = blocked;
               ag_done_ops = ra.next_deliver;
               ag_total_ops = ra.rn;
             })
           ras)
    in
    let agents = thread_agents @ ra_agents in
    let waiting =
      List.filter_map
        (fun a ->
          match a.Forensics.ag_blocked with
          | Forensics.On_queue_empty q | Forensics.On_queue_full q -> Some (a, q)
          | Forensics.On_barrier _ -> Some (a, -1)
          | _ -> None)
        agents
    in
    let users tbl q = if q >= 0 && q < Array.length tbl then tbl.(q) else [] in
    let unblockers a =
      match a.Forensics.ag_blocked with
      | Forensics.On_queue_empty q ->
        List.filter (fun b -> List.mem b.Forensics.ag_id (users producers q)) agents
      | Forensics.On_queue_full q ->
        List.filter (fun b -> List.mem b.Forensics.ag_id (users consumers q)) agents
      | Forensics.On_barrier bar ->
        List.filter
          (fun b ->
            b.Forensics.ag_id < n_threads
            && b.Forensics.ag_blocked <> Forensics.Finished
            && b.Forensics.ag_blocked <> Forensics.On_barrier bar)
          agents
      | _ -> []
    in
    let wait_cycle =
      match kind with
      | Forensics.Budget_exhausted -> []
      | Forensics.Deadlock | Forensics.Livelock ->
        Forensics.find_wait_cycle ~waiting ~unblockers
    in
    let queue_snaps =
      List.init n_queues (fun q ->
          {
            Forensics.qo_id = q;
            qo_occupancy = queues.(q).occupancy;
            qo_capacity = queues.(q).qs_capacity;
          })
    in
    let injected = match faults with Some f -> Faults.total f | None -> 0 in
    let diagnosis =
      (match kind with
      | Forensics.Deadlock when wait_cycle <> [] -> (
        [
          "every agent on the cyclic wait chain waits on a queue that only \
           another agent on the chain can move; the bounded queue network \
           can never make progress";
        ]
        @
        match
          List.filter_map
            (fun (_, q) ->
              if q >= 0 then Some (q, queues.(q).qs_capacity) else None)
            wait_cycle
        with
        | [] -> []
        | qs ->
          let q, cap = List.fold_left (fun (bq, bc) (q, c) -> if c < bc then (q, c) else (bq, bc)) (List.hd qs) qs in
          [
            Printf.sprintf
              "smallest queue on the chain is q%d (capacity %d); raising \
               its capacity may break the cycle"
              q cap;
          ])
      | Forensics.Deadlock -> []
      | Forensics.Livelock ->
        [
          Printf.sprintf
            "cycles kept advancing but no op retired in the last %d cycles \
             (watchdog window): agents are active yet none completes work"
            watchdog;
        ]
      | Forensics.Budget_exhausted ->
        [
          Printf.sprintf
            "ops were still retiring when the %d-cycle budget ran out — \
             likely an undersized budget, not a hang; re-run with a larger \
             cycle budget"
            cycle_budget;
        ])
      @ Array.to_list
          (Array.map
             (fun th ->
               Printf.sprintf
                 "%s was killed by fault injection after retiring %d ops; \
                  agents downstream of it can never be unblocked"
                 (if th.th_id < Array.length names then names.(th.th_id)
                  else Printf.sprintf "thread%d" th.th_id)
                 th.retire_ptr)
             (Array.of_list
                (List.filter (fun th -> killed.(th.th_id)) (Array.to_list threads))))
    in
    Forensics.fail
      {
        Forensics.fr_kind = kind;
        fr_pipeline = p.Types.p_name;
        fr_at = !now;
        fr_agents = agents;
        fr_queues = queue_snaps;
        fr_wait_cycle = wait_cycle;
        fr_injected = injected;
        fr_diagnosis = diagnosis;
      }
  in

  let guard = ref 0 in
  while Array.length !live > 0 do
    if !now > cycle_budget then
      fail_run
        (if !now - !last_retire > watchdog then Forensics.Livelock
         else Forensics.Budget_exhausted)
    else if !now - !last_retire > watchdog then fail_run Forensics.Livelock;
    progress := false;
    (match faults with
    | None -> ()
    | Some f ->
      Array.iter
        (fun th ->
          let rel = Faults.stall_release f ~thread:th.th_id ~now:!now in
          stalled_now.(th.th_id) <- rel >= 0;
          if rel >= 0 then Heap.push events rel)
        !live);
    Array.iter
      (fun th ->
        th.issued_this_cycle <- 0;
        if (not th.done_) && not (inactive th) then retire th)
      !live;
    if !shares_dirty then recompute_shares ();
    Array.iter
      (fun core_threads ->
        let nth = Array.length core_threads in
        if nth > 0 then begin
          let budget = ref cfg.dispatch_width in
          let start = !now mod nth in
          (* round-robin the shared front-end bandwidth, giving each live
             thread a fair share plus any slack left by stalled threads *)
          let share = max 1 (cfg.dispatch_width / max 1 nth) in
          (* a thread with no pending branch redirect and either a drained
             program or a full window slice can never consume front-end
             bandwidth this cycle: skip the call *)
          let can_dispatch th =
            th.blocked_branch >= 0
            || (th.dispatch_ptr < th.n_ops && window_room th)
          in
          for off = 0 to nth - 1 do
            let th = core_threads.((start + off) mod nth) in
            if (not th.done_) && (not (inactive th)) && can_dispatch th then begin
              let slice = ref (min share !budget) in
              let before = !slice in
              dispatch th slice;
              budget := !budget - (before - !slice)
            end
          done;
          (* leftover bandwidth flows to the threads that can still use it,
             in the same round-robin order, until it is exhausted *)
          let off = ref 0 in
          while !budget > 0 && !off < nth do
            let th = core_threads.((start + !off) mod nth) in
            if (not th.done_) && (not (inactive th)) && can_dispatch th then begin
              let slice = ref !budget in
              let before = !slice in
              dispatch th slice;
              budget := !budget - (before - !slice)
            end;
            incr off
          done;
          (* per-cycle dispatch-bandwidth conservation: a core can never
             dispatch more than its front-end width in one cycle *)
          let used = cfg.dispatch_width - !budget in
          assert (used >= 0 && used <= cfg.dispatch_width);
          total_dispatched := !total_dispatched + used
        end)
      cores;
    Array.iteri issue_core cores;
    Array.iter advance_ra ras;
    account 1;
    (match telemetry with
    | Some tel -> Telemetry.maybe_sample tel ~cycle:!now
    | None -> ());
    if !progress then begin
      incr now;
      guard := 0
    end
    else begin
      (* fast-forward to the next event *)
      let rec next_event () =
        if Heap.is_empty events then None
        else
          let t = Heap.pop events in
          if t > !now then Some t else next_event ()
      in
      match next_event () with
      | Some t ->
        account (t - !now - 1);
        now := t
      | None ->
        (* no pending event and no progress: once transient effects are
           given a few cycles to settle, this is a true deadlock — nothing
           can ever run again *)
        incr guard;
        if !guard > 4 then fail_run Forensics.Deadlock;
        incr now
    end;
    if !live_dirty then begin
      live :=
        Array.of_list (List.filter (fun th -> not th.done_) (Array.to_list !live));
      live_dirty := false
    end
  done;
  (match telemetry with
  | Some tel -> Telemetry.finish tel ~cycle:!now
  | None -> ());
  let sum f = Array.fold_left (fun acc th -> acc + f th) 0 threads in
  let per f = Array.map f threads in
  let attribution =
    {
      at_queues =
        Array.init n_queues (fun q ->
            {
              qa_id = q;
              qa_capacity = queues.(q).qs_capacity;
              qa_full = per (fun th -> th.aq_full.(q));
              qa_empty = per (fun th -> th.aq_empty.(q));
              qa_enqs = per (fun th -> th.enq_ops.(q));
              qa_deqs = per (fun th -> th.deq_ops.(q));
              qa_occ_hist = Array.copy occ_hist.(q);
            });
      at_issue = per (fun th -> th.cy_issue);
      at_backend = per (fun th -> th.cy_backend);
      at_queue = per (fun th -> th.cy_queue);
      at_other = per (fun th -> th.cy_other);
      at_barrier = per (fun th -> th.cy_barrier);
      at_backend_level = per (fun th -> Array.copy th.backend_lvl);
    }
  in
  {
    cycles = !now;
    instrs = sum (fun th -> th.n_ops);
    issue_cycles = sum (fun th -> th.cy_issue);
    backend_cycles = sum (fun th -> th.cy_backend);
    queue_cycles = sum (fun th -> th.cy_queue);
    other_cycles = sum (fun th -> th.cy_other);
    cache = Cache.counters caches;
    branch_lookups = pred.Predictor.lookups;
    branch_mispredicts = pred.Predictor.mispredicts;
    queue_ops = !queue_ops;
    ra_fetches = Array.fold_left (fun acc r -> acc + r.fetches) 0 ras;
    n_threads;
    n_cores_used;
    attribution;
  }
