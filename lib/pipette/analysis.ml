(* Bottleneck attribution: turn a run's refined stall counters
   (Engine.attribution) into an actionable diagnosis — which stage limits
   throughput, which queue is critical and in which direction (full =
   downstream backpressure, empty = upstream starvation), where backend
   stalls land in the memory hierarchy, and how much speedup is on the
   table until the bottleneck stage is split or accelerated. *)

module Table = Phloem_util.Table

type stage_report = {
  st_thread : int;
  st_name : string;
  st_issue : int; (* cycles with >= 1 op issued *)
  st_backend : int; (* stalled on memory/operands *)
  st_backend_level : int array; (* [|port/unattributed; L1; L2; L3; DRAM|] *)
  st_queue_full : int; (* blocked enqueueing: downstream backpressure *)
  st_queue_empty : int; (* starved dequeueing: upstream too slow *)
  st_barrier : int;
  st_other : int; (* frontend / mispredict recovery *)
  st_total : int; (* cycles this thread was accounted (until it retired) *)
  st_service : int;
      (* issue + backend + other: cycles spent on the stage's own work
         rather than waiting on the pipeline — the stage's intrinsic load *)
}

type queue_report = {
  q_id : int;
  q_capacity : int;
  q_full : int; (* producer-blocked cycles, summed over threads *)
  q_empty : int; (* consumer-starved cycles, summed over threads *)
  q_enqs : int;
  q_deqs : int;
  q_producers : int list; (* thread ids that enqueue into it *)
  q_consumers : int list;
  q_occ_hist : int array;
  q_mean_occ : float;
  q_frac_full : float; (* fraction of the run spent at full occupancy *)
  q_frac_empty : float; (* fraction of the run spent empty *)
}

type report = {
  r_cycles : int;
  r_stages : stage_report array;
  r_queues : queue_report array;
  r_bottleneck : int option; (* thread id of the highest-service stage *)
  r_critical_queue : int option; (* most stall-attributed queue *)
  r_headroom : float;
      (* estimated speedup bound if the bottleneck stage were split:
         cycles / next-highest stage service *)
  r_diagnosis : string list;
}

let level_names = [| "port"; "L1"; "L2"; "L3"; "DRAM" |]

let sum = Array.fold_left ( + ) 0

let of_result ?stage_names (t : Engine.result) : report =
  let a = t.Engine.attribution in
  let n = t.Engine.n_threads in
  let cycles = t.Engine.cycles in
  let name i =
    match stage_names with
    | Some ns when i < Array.length ns -> ns.(i)
    | _ -> Printf.sprintf "thread%d" i
  in
  let aq = a.Engine.at_queues in
  let stages =
    Array.init n (fun i ->
        let qf = Array.fold_left (fun acc q -> acc + q.Engine.qa_full.(i)) 0 aq in
        let qe = Array.fold_left (fun acc q -> acc + q.Engine.qa_empty.(i)) 0 aq in
        let issue = a.Engine.at_issue.(i)
        and backend = a.Engine.at_backend.(i)
        and queue = a.Engine.at_queue.(i)
        and other = a.Engine.at_other.(i) in
        {
          st_thread = i;
          st_name = name i;
          st_issue = issue;
          st_backend = backend;
          st_backend_level = Array.copy a.Engine.at_backend_level.(i);
          st_queue_full = qf;
          st_queue_empty = qe;
          st_barrier = a.Engine.at_barrier.(i);
          st_other = other;
          st_total = issue + backend + queue + other;
          st_service = issue + backend + other;
        })
  in
  let queues =
    Array.map
      (fun (q : Engine.queue_attr) ->
        let hist = q.Engine.qa_occ_hist in
        let tot = sum hist in
        let weighted =
          let acc = ref 0 in
          Array.iteri (fun occ c -> acc := !acc + (occ * c)) hist;
          !acc
        in
        let frac b = if tot = 0 then 0.0 else float_of_int b /. float_of_int tot in
        let members arr =
          let l = ref [] in
          for i = Array.length arr - 1 downto 0 do
            if arr.(i) > 0 then l := i :: !l
          done;
          !l
        in
        {
          q_id = q.Engine.qa_id;
          q_capacity = q.Engine.qa_capacity;
          q_full = sum q.Engine.qa_full;
          q_empty = sum q.Engine.qa_empty;
          q_enqs = sum q.Engine.qa_enqs;
          q_deqs = sum q.Engine.qa_deqs;
          q_producers = members q.Engine.qa_enqs;
          q_consumers = members q.Engine.qa_deqs;
          q_occ_hist = Array.copy hist;
          q_mean_occ =
            (if tot = 0 then 0.0 else float_of_int weighted /. float_of_int tot);
          q_frac_full = frac hist.(Array.length hist - 1);
          q_frac_empty = frac hist.(0);
        })
      aq
  in
  let argmax f arr =
    let best = ref (-1) and best_v = ref 0 in
    Array.iteri
      (fun i x ->
        let v = f x in
        if v > !best_v then begin
          best := i;
          best_v := v
        end)
      arr;
    if !best < 0 then None else Some !best
  in
  let bottleneck = argmax (fun s -> s.st_service) stages in
  let critical_queue =
    Option.map
      (fun i -> queues.(i).q_id)
      (argmax (fun q -> q.q_full + q.q_empty) queues)
  in
  let headroom =
    match bottleneck with
    | None -> 1.0
    | Some b ->
      let next =
        Array.fold_left
          (fun acc s -> if s.st_thread <> b then max acc s.st_service else acc)
          0 stages
      in
      if next <= 0 || cycles <= 0 then 1.0
      else max 1.0 (float_of_int cycles /. float_of_int next)
  in
  let pct x = 100.0 *. float_of_int x /. float_of_int (max 1 cycles) in
  let stage_list ?(none = "(none)") ids =
    match ids with
    | [] -> none
    | _ -> String.concat ", " (List.map (fun i -> stages.(i).st_name) ids)
  in
  let diagnosis = ref [] in
  let say fmt = Printf.ksprintf (fun s -> diagnosis := s :: !diagnosis) fmt in
  (match bottleneck with
  | Some b ->
    let s = stages.(b) in
    say
      "stage %d '%s' is the bottleneck: %.0f%% of cycles on its own work \
       (issue %.0f%%, backend %.0f%%), only %.0f%% blocked on queues"
      b s.st_name (pct s.st_service) (pct s.st_issue) (pct s.st_backend)
      (pct (s.st_queue_full + s.st_queue_empty + s.st_barrier));
    let lvl_tot = sum s.st_backend_level in
    if lvl_tot > 0 then begin
      let ranked =
        List.sort
          (fun (_, a) (_, b) -> compare b a)
          (Array.to_list (Array.mapi (fun i c -> (level_names.(i), c)) s.st_backend_level))
        |> List.filter (fun (_, c) -> c > 0)
      in
      let top =
        String.concat ", "
          (List.map
             (fun (nm, c) ->
               Printf.sprintf "%s %.0f%%" nm
                 (100.0 *. float_of_int c /. float_of_int lvl_tot))
             ranked)
      in
      say "its backend stalls resolve at: %s" top
    end
  | None -> ());
  (match critical_queue with
  | Some qi ->
    let q = queues.(qi) in
    if q.q_full >= q.q_empty && q.q_full > 0 then
      say
        "queue %d (capacity %d) is the critical queue: producers (%s) blocked \
         %d cycles (%.0f%% of run) on a full queue — consumer (%s) cannot keep \
         up; mean occupancy %.1f, full %.0f%% of the time"
        q.q_id q.q_capacity (stage_list q.q_producers) q.q_full (pct q.q_full)
        (stage_list ~none:"an RA" q.q_consumers)
        q.q_mean_occ (100.0 *. q.q_frac_full)
    else if q.q_empty > 0 then
      say
        "queue %d (capacity %d) is the critical queue: consumers (%s) starved \
         %d cycles (%.0f%% of run) on an empty queue — producer (%s) cannot \
         keep up; mean occupancy %.1f, empty %.0f%% of the time"
        q.q_id q.q_capacity (stage_list q.q_consumers) q.q_empty (pct q.q_empty)
        (stage_list ~none:"an RA" q.q_producers)
        q.q_mean_occ (100.0 *. q.q_frac_empty)
  | None -> ());
  (match (bottleneck, critical_queue) with
  | Some b, Some qi ->
    let q = queues.(qi) in
    let victims, relation =
      if q.q_full >= q.q_empty then
        (List.filter (fun i -> i <> b) q.q_producers, "backpressures")
      else (List.filter (fun i -> i <> b) q.q_consumers, "starves")
    in
    let blocked =
      List.fold_left
        (fun acc i ->
          acc + stages.(i).st_queue_full + stages.(i).st_queue_empty)
        0 victims
    in
    if victims <> [] && blocked > 0 then
      say
        "stage '%s' %s stage %s for %.0f%% of their cycles; speedup bounded \
         at %.1fx until stage '%s' is split or accelerated"
        stages.(b).st_name relation (stage_list victims)
        (100.0 *. float_of_int blocked
        /. float_of_int (max 1 (List.length victims * cycles)))
        headroom stages.(b).st_name
    else if headroom > 1.05 then
      say "speedup bounded at %.1fx until stage '%s' is split or accelerated"
        headroom stages.(b).st_name
  | _ -> ());
  {
    r_cycles = cycles;
    r_stages = stages;
    r_queues = queues;
    r_bottleneck = bottleneck;
    r_critical_queue = critical_queue;
    r_headroom = headroom;
    r_diagnosis = List.rev !diagnosis;
  }

(* Collapse a report into the single actionable category the autotuner's
   move generator branches on. Thresholds: a run with less than
   [headroom_threshold] estimated speedup left is Balanced (stop
   expanding); the critical queue must absorb at least 5% of the run's
   cycles in stalls before the run counts as queue-bound — below that the
   queue is a symptom, not the constraint, and the bottleneck stage's own
   issue/backend split decides. *)

type queue_direction = Backpressure | Starvation

type verdict =
  | Balanced
  | Queue_bound of { qb_queue : int; qb_direction : queue_direction }
  | Backend_bound of { bb_stage : int; bb_level : int }
  | Compute_bound of { cb_stage : int }

let classify ?(headroom_threshold = 1.05) (r : report) : verdict =
  if r.r_headroom < headroom_threshold then Balanced
  else
    match r.r_bottleneck with
    | None -> Balanced
    | Some b ->
      let queue_verdict =
        match r.r_critical_queue with
        | None -> None
        | Some qid -> (
          match
            Array.to_list r.r_queues
            |> List.find_opt (fun q -> q.q_id = qid)
          with
          | None -> None
          | Some q ->
            let stalls = q.q_full + q.q_empty in
            if
              stalls * 20 >= max 1 r.r_cycles (* >= 5% of the run *)
            then
              Some
                (Queue_bound
                   {
                     qb_queue = qid;
                     qb_direction =
                       (if q.q_full >= q.q_empty then Backpressure
                        else Starvation);
                   })
            else None)
      in
      (match queue_verdict with
      | Some v -> v
      | None ->
        let s = r.r_stages.(b) in
        if s.st_backend > s.st_issue then begin
          let lvl = ref 0 in
          Array.iteri
            (fun i c -> if c > s.st_backend_level.(!lvl) then lvl := i)
            s.st_backend_level;
          Backend_bound { bb_stage = b; bb_level = !lvl }
        end
        else Compute_bound { cb_stage = b })

let verdict_to_string = function
  | Balanced -> "balanced"
  | Queue_bound { qb_queue; qb_direction = Backpressure } ->
    Printf.sprintf "queue-bound(q%d, backpressure)" qb_queue
  | Queue_bound { qb_queue; qb_direction = Starvation } ->
    Printf.sprintf "queue-bound(q%d, starvation)" qb_queue
  | Backend_bound { bb_stage; bb_level } ->
    Printf.sprintf "backend-bound(stage %d, %s)" bb_stage
      level_names.(max 0 (min bb_level (Array.length level_names - 1)))
  | Compute_bound { cb_stage } -> Printf.sprintf "compute-bound(stage %d)" cb_stage

let render (r : report) : string =
  let buf = Buffer.create 2048 in
  Printf.bprintf buf
    "Bottleneck report: %d cycles, %d stage(s), %d queue(s)\n\n" r.r_cycles
    (Array.length r.r_stages)
    (Array.length r.r_queues);
  let pct x =
    Printf.sprintf "%.1f%%" (100.0 *. float_of_int x /. float_of_int (max 1 r.r_cycles))
  in
  let t =
    Table.create
      [ "Stage"; "Issue"; "Backend"; "Q-full"; "Q-empty"; "Barrier"; "Other" ]
  in
  Array.iter
    (fun s ->
      Table.add_row t
        [
          Printf.sprintf "%d:%s%s" s.st_thread s.st_name
            (if Some s.st_thread = r.r_bottleneck then " <- bottleneck" else "");
          pct s.st_issue;
          pct s.st_backend;
          pct s.st_queue_full;
          pct s.st_queue_empty;
          pct s.st_barrier;
          pct s.st_other;
        ])
    r.r_stages;
  Buffer.add_string buf (Table.render t);
  if Array.length r.r_queues > 0 then begin
    Buffer.add_char buf '\n';
    let t =
      Table.create
        [ "Queue"; "Cap"; "Enqs"; "Deqs"; "Full-stall"; "Empty-stall"; "Mean occ"; "%full"; "%empty" ]
    in
    Array.iter
      (fun q ->
        Table.add_row t
          [
            Printf.sprintf "%d%s" q.q_id
              (if Some q.q_id = r.r_critical_queue then " <- critical" else "");
            string_of_int q.q_capacity;
            string_of_int q.q_enqs;
            string_of_int q.q_deqs;
            string_of_int q.q_full;
            string_of_int q.q_empty;
            Printf.sprintf "%.1f" q.q_mean_occ;
            Printf.sprintf "%.0f" (100.0 *. q.q_frac_full);
            Printf.sprintf "%.0f" (100.0 *. q.q_frac_empty);
          ])
      r.r_queues;
    Buffer.add_string buf (Table.render t)
  end;
  (* queue-stall reconciliation: the refined counters partition Sc_queue *)
  let full = Array.fold_left (fun acc q -> acc + q.q_full) 0 r.r_queues in
  let empty = Array.fold_left (fun acc q -> acc + q.q_empty) 0 r.r_queues in
  let barrier = Array.fold_left (fun acc s -> acc + s.st_barrier) 0 r.r_stages in
  Printf.bprintf buf
    "\nqueue-stall reconciliation: full %d + empty %d + barrier %d = %d \
     thread-cycles (aggregate queue class)\n"
    full empty barrier (full + empty + barrier);
  if r.r_diagnosis <> [] then begin
    Buffer.add_string buf "\nDiagnosis:\n";
    List.iter (fun d -> Printf.bprintf buf "  - %s\n" d) r.r_diagnosis
  end;
  Buffer.contents buf

let json_of_report (r : report) : Telemetry.Json.t =
  let open Telemetry.Json in
  let ints a = List (List.map (fun i -> Int i) (Array.to_list a)) in
  Obj
    [
      ("cycles", Int r.r_cycles);
      ( "stages",
        List
          (Array.to_list
             (Array.map
                (fun s ->
                  Obj
                    [
                      ("thread", Int s.st_thread);
                      ("name", Str s.st_name);
                      ("issue", Int s.st_issue);
                      ("backend", Int s.st_backend);
                      ("backend_level", ints s.st_backend_level);
                      ("queue_full", Int s.st_queue_full);
                      ("queue_empty", Int s.st_queue_empty);
                      ("barrier", Int s.st_barrier);
                      ("other", Int s.st_other);
                      ("service", Int s.st_service);
                    ])
                r.r_stages)) );
      ( "queues",
        List
          (Array.to_list
             (Array.map
                (fun q ->
                  Obj
                    [
                      ("id", Int q.q_id);
                      ("capacity", Int q.q_capacity);
                      ("full_stall_cycles", Int q.q_full);
                      ("empty_stall_cycles", Int q.q_empty);
                      ("enqs", Int q.q_enqs);
                      ("deqs", Int q.q_deqs);
                      ("producers", ints (Array.of_list q.q_producers));
                      ("consumers", ints (Array.of_list q.q_consumers));
                      ("occupancy_hist", ints q.q_occ_hist);
                      ("mean_occupancy", Float q.q_mean_occ);
                      ("frac_full", Float q.q_frac_full);
                      ("frac_empty", Float q.q_frac_empty);
                    ])
                r.r_queues)) );
      ( "bottleneck_stage",
        match r.r_bottleneck with Some i -> Int i | None -> Null );
      ( "critical_queue",
        match r.r_critical_queue with Some i -> Int i | None -> Null );
      ("headroom", Float r.r_headroom);
      ("diagnosis", List (List.map (fun d -> Str d) r.r_diagnosis));
    ]

(* Machine-readable form of a structured pipeline-failure report, for the
   "failure" object in CLI JSON output and the harness "errors" arrays. *)
let json_of_failure (f : Phloem_ir.Forensics.report) : Telemetry.Json.t =
  let open Phloem_ir.Forensics in
  let open Telemetry.Json in
  Obj
    [
      ("kind", Str (kind_name f.fr_kind));
      ("exit_code", Int (exit_code f.fr_kind));
      ("pipeline", Str f.fr_pipeline);
      ("at", Int f.fr_at);
      ("injected_faults", Int f.fr_injected);
      ( "agents",
        List
          (List.map
             (fun a ->
               Obj
                 [
                   ("id", Int a.ag_id);
                   ("name", Str a.ag_name);
                   ("blocked_on", Str (blocked_to_string a.ag_blocked));
                   ("done_ops", Int a.ag_done_ops);
                   ("total_ops", Int a.ag_total_ops);
                 ])
             f.fr_agents) );
      ( "queues",
        List
          (List.map
             (fun q ->
               Obj
                 [
                   ("id", Int q.qo_id);
                   ("occupancy", Int q.qo_occupancy);
                   ("capacity", Int q.qo_capacity);
                 ])
             f.fr_queues) );
      ( "wait_cycle",
        List
          (List.map
             (fun (a, q) ->
               Obj [ ("agent", Str a.ag_name); ("queue", Int q) ])
             f.fr_wait_cycle) );
      ("diagnosis", List (List.map (fun d -> Str d) f.fr_diagnosis));
    ]
