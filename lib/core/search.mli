(** Profile-guided pipeline search (paper Sec. V, Fig. 8): enumerate
    candidate pipelines from combinations of the top-ranked decoupling
    points, profile each on small training inputs, keep the best. The
    paper reports "no fewer than fifty" candidates per benchmark at four
    threads; [top_k]/[max_cuts] control the space here.

    A candidate is discarded when the decoupler rejects its cuts, when the
    generated pipeline fails validation, or when its simulated result
    differs from the serial run on the checked arrays (this is also what
    catches decouplings that would race). *)

type candidate = {
  ca_cuts : Costmodel.cut list;  (** in program order *)
  ca_stages : int;  (** threads + RAs, as Fig. 13 counts them *)
  ca_cycles : int list;  (** per training input *)
  ca_speedups : float list;
  ca_gmean : float;
}

type outcome = {
  best : Costmodel.cut list;  (** the recipe to apply to test inputs *)
  all : candidate list;  (** every legal candidate profiled (Fig. 13) *)
  serial_cycles : int list;
}

val enumerate_cut_sets :
  ?top_k:int -> ?max_cuts:int -> Phloem_ir.Types.pipeline -> Costmodel.cut list list

val pgo :
  ?flags:Decouple.flags ->
  ?cfg:Pipette.Config.t ->
  ?top_k:int ->
  ?max_cuts:int ->
  ?pool:Phloem_util.Pool.t ->
  check_arrays:string list ->
  training:
    (Phloem_ir.Types.pipeline * (string * Phloem_ir.Types.value array) list) list ->
  unit ->
  outcome
(** @raise Invalid_argument when no training inputs are given or no
    candidate survives profiling. *)
