(** Profile-guided pipeline search (paper Sec. V, Fig. 8): enumerate
    candidate pipelines from combinations of the top-ranked decoupling
    points, profile each on small training inputs, keep the best. The
    paper reports "no fewer than fifty" candidates per benchmark at four
    threads; [top_k]/[max_cuts] control the space here.

    A candidate is discarded when the decoupler rejects its cuts, when the
    generated pipeline fails validation, or when its simulated result
    differs from the serial run on the checked arrays (this is also what
    catches decouplings that would race). *)

type candidate = {
  ca_cuts : Costmodel.cut list;  (** in program order *)
  ca_stages : int;  (** threads + RAs, as Fig. 13 counts them *)
  ca_cycles : int list;  (** per training input *)
  ca_speedups : float list;
  ca_gmean : float;
}

type outcome = {
  best : Costmodel.cut list;  (** the recipe to apply to test inputs *)
  all : candidate list;  (** every legal candidate profiled (Fig. 13) *)
  serial_cycles : int list;
}

val cut_set_key : Costmodel.cut list -> string
(** Canonical hex digest of a cut set: insensitive to list order and to
    the float ranking score. Two sets share a key exactly when they
    decouple the program identically. *)

val enumerate_cut_sets :
  ?top_k:int -> ?max_cuts:int -> Phloem_ir.Types.pipeline -> Costmodel.cut list list
(** Non-empty subsets of the top-[top_k] ranked cuts with at most
    [max_cuts] members, in program order, deduplicated by
    {!cut_set_key}. *)

val pgo :
  ?flags:Decouple.flags ->
  ?cfg:Pipette.Config.t ->
  ?top_k:int ->
  ?max_cuts:int ->
  ?pool:Phloem_util.Pool.t ->
  check_arrays:string list ->
  training:
    (Phloem_ir.Types.pipeline * (string * Phloem_ir.Types.value array) list) list ->
  unit ->
  outcome
(** When no candidate survives profiling, returns the serial fallback
    [{best = []; all = []; serial_cycles}] with a warning rather than
    raising — downstream consumers treat an empty recipe as "run serial".
    @raise Invalid_argument when no training inputs are given. *)
