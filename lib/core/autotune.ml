(* Analysis-guided autotuning over the full pipeline design space
   (ROADMAP item: close the loop between bottleneck attribution and the
   search).

   A configuration is a point in cut sets x per-queue capacities x stage
   replication x scan-chaining x core count (the SMT mapping follows the
   core count: threads are packed [Config.smt_threads] per core). The
   search is a beam-limited wave expansion: wave 0 seeds the frontier
   with the serial configuration plus every PGO cut set (so the tuned
   result can never lose to cut-set-only PGO); each later wave simulates
   the frontier in parallel over the pool, reads each candidate's
   bottleneck report, and expands the wave's best survivors with moves
   *directed* by the diagnosis — deepen the backpressured queue,
   replicate past it, drop the cut starving a consumer, chain away DRAM
   traffic, add cores for an issue-bound stage. Visited configurations
   are deduplicated by a canonical digest; a budget caps total
   simulations; the best-so-far is anytime.

   Per-candidate cost is one timing replay: compiled programs and
   functional traces are memoized by pipeline digest inside Sim, and the
   queue-capacity knob is an engine-side override precisely so it does
   not perturb those keys. Moves that change the pipeline itself (cuts,
   chaining, replication) recompile, but identical pipelines reached
   along different paths still share the caches. *)

open Phloem_ir.Types
module Log = Phloem_util.Log
module Json = Pipette.Telemetry.Json

type config = {
  at_cuts : Costmodel.cut list; (* program order *)
  at_queue_caps : (int * int) list; (* (queue id, capacity), sorted *)
  at_chain : bool; (* scan-chain pass enabled *)
  at_replicas : int; (* 1 = no replication *)
  at_cores : int;
}

type space = {
  sp_cut_pool : Costmodel.cut list; (* the top-k ranked cuts *)
  sp_max_queue_cap : int;
  sp_max_replicas : int;
  sp_max_cores : int;
  sp_headroom_threshold : float;
}

type move =
  | M_seed
  | M_deepen of int * int (* queue id, new capacity *)
  | M_add_cut of int (* cut identified by its first load id *)
  | M_drop_cut of int
  | M_toggle_chain
  | M_replicate of int (* new replica count *)
  | M_cores of int (* new core count *)

type status =
  | Run_ok of {
      ok_cycles : int list; (* per training input *)
      ok_speedups : float list;
      ok_gmean : float;
      ok_verdict : string;
      ok_headroom : float;
      ok_diagnosis : string list;
    }
  | Run_rejected of string (* illegal cuts, over budget, bad result, no fit *)
  | Run_failed of string (* deadlock / livelock / runtime error *)

type attempt = {
  t_id : int;
  t_parent : int; (* attempt id this move came from; -1 for seeds *)
  t_move : move;
  t_config : config;
  t_digest : string;
  t_status : status;
  t_moves : move list; (* directed moves generated from this attempt *)
}

type outcome = {
  o_best : config;
  o_best_cycles : int list;
  o_best_gmean : float;
  o_serial_cycles : int list;
  o_cut_only : (config * int list * float) option;
      (* best default-knob non-serial candidate: what cut-set-only PGO
         would have picked *)
  o_simulated : int;
  o_deduped : int; (* move targets skipped as already visited *)
  o_rejected : int;
  o_waves : int;
  o_exhaustive : float; (* lower bound on the full space size *)
  o_trace : attempt list; (* in evaluation order *)
}

let cut_id (c : Costmodel.cut) = List.hd c.Costmodel.cut_loads

let move_to_string = function
  | M_seed -> "seed"
  | M_deepen (q, cap) -> Printf.sprintf "deepen(q%d->%d)" q cap
  | M_add_cut c -> Printf.sprintf "add-cut(%d)" c
  | M_drop_cut c -> Printf.sprintf "drop-cut(%d)" c
  | M_toggle_chain -> "toggle-chain"
  | M_replicate r -> Printf.sprintf "replicate(%d)" r
  | M_cores n -> Printf.sprintf "cores(%d)" n

(* Canonical content key of a configuration, same canonical-string-then-
   MD5 scheme as the serve protocol (which lives above this library in
   the dependency order, so the approach is mirrored, not imported). Two
   configs collide exactly when they would simulate identically. *)
let config_digest (c : config) : string =
  let caps =
    List.sort compare c.at_queue_caps
    |> List.map (fun (q, cap) -> Printf.sprintf "%d:%d" q cap)
    |> String.concat ","
  in
  let canon =
    Printf.sprintf "cuts=%s;caps=%s;chain=%b;replicas=%d;cores=%d"
      (Search.cut_set_key c.at_cuts)
      caps c.at_chain c.at_replicas c.at_cores
  in
  Digest.to_hex (Digest.string canon)

(* ---------- directed move generation ---------- *)

let set_cap q cap l = List.sort compare ((q, cap) :: List.remove_assoc q l)

(* The move grammar, one branch per verdict. Every move that changes the
   pipeline's shape (cuts, chaining, replication) resets the per-queue
   capacity overrides: queue ids are assigned during decoupling, so they
   do not survive a reshape. *)
let moves (sp : space) (c : config) (r : Pipette.Analysis.report) :
    (move * config) list =
  let verdict =
    Pipette.Analysis.classify ~headroom_threshold:sp.sp_headroom_threshold r
  in
  let used = List.map cut_id c.at_cuts in
  let unused =
    List.filter (fun cut -> not (List.mem (cut_id cut) used)) sp.sp_cut_pool
  in
  let sort_cuts =
    List.sort (fun (a : Costmodel.cut) b -> compare (cut_id a) (cut_id b))
  in
  let add_cut cut =
    ( M_add_cut (cut_id cut),
      { c with at_cuts = sort_cuts (cut :: c.at_cuts); at_queue_caps = [] } )
  in
  let drop_cut cut =
    ( M_drop_cut (cut_id cut),
      {
        c with
        at_cuts = List.filter (fun x -> cut_id x <> cut_id cut) c.at_cuts;
        at_queue_caps = [];
      } )
  in
  let toggle_chain =
    if c.at_cuts = [] then []
    else [ (M_toggle_chain, { c with at_chain = not c.at_chain; at_queue_caps = [] }) ]
  in
  let replicate =
    if c.at_replicas < sp.sp_max_replicas && c.at_cuts <> [] then
      [
        ( M_replicate (c.at_replicas + 1),
          { c with at_replicas = c.at_replicas + 1; at_queue_caps = [] } );
      ]
    else []
  in
  let more_cores =
    if c.at_cores * 2 <= sp.sp_max_cores then
      [ (M_cores (c.at_cores * 2), { c with at_cores = c.at_cores * 2 }) ]
    else []
  in
  let deepen q =
    let cur =
      match List.assoc_opt q c.at_queue_caps with
      | Some cap -> cap
      | None -> (
        match
          Array.to_list r.Pipette.Analysis.r_queues
          |> List.find_opt (fun qr -> qr.Pipette.Analysis.q_id = q)
        with
        | Some qr -> qr.Pipette.Analysis.q_capacity
        | None -> 0)
    in
    let cap = min sp.sp_max_queue_cap (cur * 2) in
    if cur > 0 && cap > cur then
      [ (M_deepen (q, cap), { c with at_queue_caps = set_cap q cap c.at_queue_caps }) ]
    else []
  in
  match verdict with
  | Pipette.Analysis.Balanced -> []
  | Pipette.Analysis.Queue_bound { qb_queue; qb_direction = Backpressure } ->
    (* producers blocked on a full queue: give it room, or give its
       consumer a sibling, or restructure *)
    deepen qb_queue @ replicate @ List.map add_cut unused @ toggle_chain
  | Pipette.Analysis.Queue_bound { qb_direction = Starvation; _ } ->
    (* consumers idle on an empty queue: the upstream stage is too slow —
       shrink it by pulling work out (another cut), merge it away (drop a
       cut), or speed the whole pipeline up *)
    List.map drop_cut c.at_cuts @ List.map add_cut unused @ more_cores
    @ toggle_chain
  | Pipette.Analysis.Backend_bound { bb_level; _ } ->
    (* memory-bound stage: chaining offloads the access stream to RAs
       (most valuable when misses resolve at L3/DRAM), more stages overlap
       more misses *)
    (if bb_level >= 3 && not c.at_chain then toggle_chain else [])
    @ List.map add_cut unused @ replicate @ more_cores
  | Pipette.Analysis.Compute_bound _ ->
    (* issue-limited stage: split it or give it hardware *)
    List.map add_cut unused @ more_cores @ replicate

(* ---------- evaluation ---------- *)

type eval_ctx = {
  e_serial : pipeline;
  e_training : ((string * value array) list * Phloem_ir.Interp.result) list;
      (* per training input: bindings and the serial functional result *)
  e_serial_cycles : int list;
  e_cfg : Pipette.Config.t;
  e_check : string list;
  e_flags : Decouple.flags;
}

let pipeline_of (ctx : eval_ctx) (c : config) : pipeline =
  let p =
    if c.at_cuts = [] then ctx.e_serial
    else
      Compile.with_cuts
        ~flags:{ ctx.e_flags with Decouple.f_chain = c.at_chain }
        ctx.e_serial c.at_cuts
  in
  if c.at_replicas > 1 then
    Replicate.apply p
      {
        Replicate.r_replicas = c.at_replicas;
        r_private_arrays = [];
        r_private_params = [];
        r_distribute = None;
      }
  else p

(* Simulate one configuration on every training input. Returns the status
   plus the first input's bottleneck report (the move generator's food).
   Any exception — illegal cuts, validation, runtime divergence, deadlock
   — lands in the status; evaluation never aborts a wave. *)
let eval (ctx : eval_ctx) (c : config) : status * Pipette.Analysis.report option
    =
  match pipeline_of ctx c with
  | exception Decouple.Reject msg -> (Run_rejected ("decouple: " ^ msg), None)
  | exception Phloem_ir.Validate.Invalid msg ->
    (Run_rejected ("validate: " ^ msg), None)
  | exception e -> (Run_failed (Printexc.to_string e), None)
  | p -> (
    let n_threads = List.length p.p_stages in
    let cfg = Pipette.Config.with_cores ctx.e_cfg c.at_cores in
    if n_threads > cfg.Pipette.Config.n_cores * cfg.Pipette.Config.smt_threads
    then
      ( Run_rejected
          (Printf.sprintf "%d threads do not fit %d core(s) x %d SMT" n_threads
             cfg.Pipette.Config.n_cores cfg.Pipette.Config.smt_threads),
        None )
    else
      let run_one (inputs, (serial_fr : Phloem_ir.Interp.result)) =
        let budget = max 2_000_000 (8 * serial_fr.Phloem_ir.Interp.r_instrs) in
        let fr =
          Phloem_ir.Interp.with_max_ops budget (fun () ->
              Pipette.Sim.functional ~inputs p)
        in
        let ok =
          List.for_all
            (fun name ->
              List.assoc_opt name fr.Phloem_ir.Interp.r_arrays
              = List.assoc_opt name serial_fr.Phloem_ir.Interp.r_arrays)
            ctx.e_check
        in
        if not ok then Error "result differs from serial"
        else
          let r = Pipette.Sim.simulate ~cfg ~queue_caps:c.at_queue_caps p fr in
          Ok r
      in
      match List.map run_one ctx.e_training with
      | exception Phloem_ir.Forensics.Pipeline_failure f ->
        ( Run_failed
            (Phloem_ir.Forensics.kind_name f.Phloem_ir.Forensics.fr_kind),
          None )
      | exception e -> (Run_failed (Printexc.to_string e), None)
      | results -> (
        match
          List.find_map (function Error m -> Some m | Ok _ -> None) results
        with
        | Some m -> (Run_rejected m, None)
        | None ->
          let runs =
            List.filter_map (function Ok r -> Some r | Error _ -> None) results
          in
          let cycles = List.map Pipette.Sim.cycles runs in
          let speedups =
            List.map2
              (fun s c -> float_of_int s /. float_of_int c)
              ctx.e_serial_cycles cycles
          in
          let report =
            match runs with
            | r0 :: _ ->
              Some
                (Pipette.Sim.analyze
                   ~stage_names:(Pipette.Sim.stage_names p)
                   r0)
            | [] -> None
          in
          let verdict, headroom, diagnosis =
            match report with
            | Some r ->
              ( Pipette.Analysis.verdict_to_string
                  (Pipette.Analysis.classify r),
                r.Pipette.Analysis.r_headroom,
                r.Pipette.Analysis.r_diagnosis )
            | None -> ("balanced", 1.0, [])
          in
          ( Run_ok
              {
                ok_cycles = cycles;
                ok_speedups = speedups;
                ok_gmean = Phloem_util.Stats.gmean speedups;
                ok_verdict = verdict;
                ok_headroom = headroom;
                ok_diagnosis = diagnosis;
              },
            report )))

(* ---------- the search loop ---------- *)

(* Lower bound on the exhaustive size of the space the tuner searches:
   for every enumerated cut set, each of its queues (>= one per cut)
   ranges over the capacity doublings, chaining is on or off, replication
   and core count each range over their choices. Reported so the outcome
   can prove the tuner simulated a strict subset. *)
let exhaustive_size ~(cut_sets : Costmodel.cut list list)
    ~(cfg : Pipette.Config.t) (sp : space) : float =
  let doublings base limit =
    let n = ref 1 in
    let v = ref base in
    while !v * 2 <= limit do
      v := !v * 2;
      incr n
    done;
    !n
  in
  let cap_choices = doublings cfg.Pipette.Config.queue_depth sp.sp_max_queue_cap in
  let core_choices = doublings cfg.Pipette.Config.n_cores sp.sp_max_cores in
  List.fold_left
    (fun acc cuts ->
      acc
      +. (float_of_int cap_choices ** float_of_int (List.length cuts))
         *. 2.0 (* chain on/off *)
         *. float_of_int sp.sp_max_replicas
         *. float_of_int core_choices)
    1.0 (* the serial configuration *)
    cut_sets

let take n l = List.filteri (fun i _ -> i < n) l

let tune ?(flags = Decouple.all_passes) ?(cfg = Pipette.Config.default)
    ?(top_k = 6) ?(max_cuts = 3) ?(beam = 4) ?(budget = 64) ?max_queue_cap
    ?(max_replicas = 2) ?(max_cores = 4) ?(headroom_threshold = 1.05) ?pool
    ?metrics ~check_arrays
    ~(training : (pipeline * (string * value array) list) list) () : outcome =
  if training = [] then invalid_arg "Autotune.tune: no training inputs";
  if beam < 1 then invalid_arg "Autotune.tune: beam < 1";
  if budget < 1 then invalid_arg "Autotune.tune: budget < 1";
  let pmap f l =
    match pool with
    | Some p -> Phloem_util.Pool.map_list p f l
    | None -> List.map f l
  in
  (* Progress instruments feeding the shared service registry (phloemd's
     or the CLI's): per-eval latency lands in a histogram from whichever
     pool domain ran it; wave/dedup/reject counters track search progress. *)
  let module M = Phloem_util.Metrics in
  let obs_eval =
    match metrics with
    | None -> fun f -> f ()
    | Some m ->
      let evals = M.counter m "autotune_evals" in
      let eval_s = M.histogram m "autotune_eval_s" in
      fun f ->
        let t0 = Unix.gettimeofday () in
        Fun.protect
          ~finally:(fun () ->
            M.incr evals;
            M.observe eval_s (Unix.gettimeofday () -. t0))
          f
  in
  let obs_counter name by =
    match metrics with
    | None -> ()
    | Some m -> if by > 0 then M.incr ~by (M.counter m name)
  in
  let obs_gauge name v =
    match metrics with None -> () | Some m -> M.set (M.gauge m name) v
  in
  let serial0 = fst (List.hd training) in
  let cut_sets = Search.enumerate_cut_sets ~top_k ~max_cuts serial0 in
  let sp =
    {
      sp_cut_pool =
        take top_k (Compile.candidates serial0);
      sp_max_queue_cap =
        (match max_queue_cap with
        | Some m -> m
        | None -> 8 * cfg.Pipette.Config.queue_depth);
      sp_max_replicas = max_replicas;
      sp_max_cores = max_cores;
      sp_headroom_threshold = headroom_threshold;
    }
  in
  (* serial baselines: one functional run per training input *)
  let serial_runs =
    pmap
      (fun (serial, inputs) ->
        let r = Pipette.Sim.run ~cfg ~inputs serial in
        (inputs, r))
      training
  in
  let ctx =
    {
      e_serial = serial0;
      e_training =
        List.map (fun (i, r) -> (i, r.Pipette.Sim.sr_functional)) serial_runs;
      e_serial_cycles =
        List.map (fun (_, r) -> Pipette.Sim.cycles r) serial_runs;
      e_cfg = cfg;
      e_check = check_arrays;
      e_flags = flags;
    }
  in
  let seed_config cuts =
    {
      at_cuts = cuts;
      at_queue_caps = [];
      at_chain = flags.Decouple.f_chain;
      at_replicas = 1;
      at_cores = cfg.Pipette.Config.n_cores;
    }
  in
  let seeds =
    List.map (fun cuts -> (M_seed, -1, seed_config cuts)) ([] :: cut_sets)
  in
  let visited = Hashtbl.create 256 in
  let deduped = ref 0 in
  let enqueue candidates =
    (* dedup against everything ever enqueued; first occurrence wins *)
    List.filter_map
      (fun (mv, parent, c) ->
        let d = config_digest c in
        if Hashtbl.mem visited d then begin
          incr deduped;
          None
        end
        else begin
          Hashtbl.add visited d ();
          Some (mv, parent, c, d)
        end)
      candidates
  in
  let frontier = ref (enqueue seeds) in
  let attempts = ref [] (* reverse evaluation order *) in
  let next_id = ref 0 in
  let simulated = ref 0 in
  let rejected = ref 0 in
  let waves = ref 0 in
  Log.info ~component:"autotune"
    "seeding frontier with %d configs (serial + %d cut sets); beam %d, \
     budget %d"
    (List.length !frontier) (List.length cut_sets) beam budget;
  while !frontier <> [] && !simulated < budget do
    incr waves;
    obs_counter "autotune_waves" 1;
    let wave = take (budget - !simulated) !frontier in
    frontier := [];
    let results =
      pmap
        (fun (mv, parent, c, d) ->
          (mv, parent, c, d, obs_eval (fun () -> eval ctx c)))
        wave
    in
    simulated := !simulated + List.length wave;
    let wave_attempts =
      List.map
        (fun (mv, parent, c, d, (status, report)) ->
          let id = !next_id in
          incr next_id;
          (match status with
          | Run_ok ok ->
            Log.debug ~component:"autotune" "#%d %s: gmean %.3f (%s)" id
              (move_to_string mv) ok.ok_gmean ok.ok_verdict
          | Run_rejected m | Run_failed m ->
            incr rejected;
            Log.debug ~component:"autotune" "#%d %s: dropped (%s)" id
              (move_to_string mv) m);
          ( {
              t_id = id;
              t_parent = parent;
              t_move = mv;
              t_config = c;
              t_digest = d;
              t_status = status;
              t_moves = [];
            },
            report ))
        results
    in
    (* beam: the wave's best survivors, by gmean then digest, expand *)
    let ok_gmean a =
      match a.t_status with Run_ok ok -> ok.ok_gmean | _ -> neg_infinity
    in
    let expanders =
      wave_attempts
      |> List.filter (fun (a, r) -> ok_gmean a > neg_infinity && r <> None)
      |> List.sort (fun (a, _) (b, _) ->
             match compare (ok_gmean b) (ok_gmean a) with
             | 0 -> compare a.t_digest b.t_digest
             | c -> c)
      |> take beam
    in
    let expanded =
      List.map
        (fun (a, report) ->
          let ms =
            match report with Some r -> moves sp a.t_config r | None -> []
          in
          (a.t_id, ms))
        expanders
    in
    (* attach generated moves to their attempts, in evaluation order *)
    let with_moves =
      List.map
        (fun (a, _) ->
          match List.assoc_opt a.t_id expanded with
          | Some ms -> { a with t_moves = List.map fst ms }
          | None -> a)
        wave_attempts
    in
    attempts := List.rev_append with_moves !attempts;
    frontier :=
      enqueue
        (List.concat_map
           (fun (parent_id, ms) ->
             List.map (fun (mv, c) -> (mv, parent_id, c)) ms)
           expanded)
  done;
  let trace = List.rev !attempts in
  let ok_attempts =
    List.filter_map
      (fun a ->
        match a.t_status with
        | Run_ok { ok_cycles; ok_gmean; _ } -> Some (a, ok_cycles, ok_gmean)
        | _ -> None)
      trace
  in
  let best_of l =
    match l with
    | [] -> None
    | first :: rest ->
      Some
        (List.fold_left
           (fun ((_, _, bg) as acc) ((_, _, g) as cand) ->
             if g > bg then cand else acc)
           first rest)
  in
  let serial_cfg = seed_config [] in
  let best_cfg, best_cycles, best_gmean =
    match best_of ok_attempts with
    | Some (a, cycles, g) -> (a.t_config, cycles, g)
    | None ->
      (* nothing survived, not even serial (should not happen): report the
         serial baseline itself *)
      (serial_cfg, ctx.e_serial_cycles, 1.0)
  in
  let cut_only =
    (* what cut-set-only PGO sees: default knobs, at least one cut *)
    ok_attempts
    |> List.filter (fun (a, _, _) ->
           a.t_config.at_cuts <> []
           && a.t_config.at_queue_caps = []
           && a.t_config.at_chain = serial_cfg.at_chain
           && a.t_config.at_replicas = 1
           && a.t_config.at_cores = serial_cfg.at_cores)
    |> best_of
    |> Option.map (fun (a, cycles, g) -> (a.t_config, cycles, g))
  in
  Log.info ~component:"autotune"
    "simulated %d of >= %.0f configs in %d wave(s): best gmean %.3f \
     (cut-only PGO best %s)"
    !simulated
    (exhaustive_size ~cut_sets ~cfg sp)
    !waves best_gmean
    (match cut_only with
    | Some (_, _, g) -> Printf.sprintf "%.3f" g
    | None -> "n/a");
  obs_counter "autotune_rejected" !rejected;
  obs_counter "autotune_deduped" !deduped;
  obs_gauge "autotune_best_gmean" best_gmean;
  (match best_cycles with
  | c :: _ -> obs_gauge "autotune_best_cycles" (float_of_int c)
  | [] -> ());
  {
    o_best = best_cfg;
    o_best_cycles = best_cycles;
    o_best_gmean = best_gmean;
    o_serial_cycles = ctx.e_serial_cycles;
    o_cut_only = cut_only;
    o_simulated = !simulated;
    o_deduped = !deduped;
    o_rejected = !rejected;
    o_waves = !waves;
    o_exhaustive = exhaustive_size ~cut_sets ~cfg sp;
    o_trace = trace;
  }

(* ---------- reporting ---------- *)

let json_of_config (c : config) : Json.t =
  Json.Obj
    [
      ( "cuts",
        Json.List (List.map (fun cut -> Json.Int (cut_id cut)) c.at_cuts) );
      ( "queue_caps",
        Json.List
          (List.map
             (fun (q, cap) -> Json.List [ Json.Int q; Json.Int cap ])
             c.at_queue_caps) );
      ("chain", Json.Bool c.at_chain);
      ("replicas", Json.Int c.at_replicas);
      ("cores", Json.Int c.at_cores);
    ]

let json_of_attempt (a : attempt) : Json.t =
  let status_fields =
    match a.t_status with
    | Run_ok ok ->
      [
        ("status", Json.Str "ok");
        ("cycles", Json.List (List.map (fun c -> Json.Int c) ok.ok_cycles));
        ( "speedups",
          Json.List (List.map (fun s -> Json.Float s) ok.ok_speedups) );
        ("gmean_speedup", Json.Float ok.ok_gmean);
        ("verdict", Json.Str ok.ok_verdict);
        ("headroom", Json.Float ok.ok_headroom);
        ("diagnosis", Json.List (List.map (fun d -> Json.Str d) ok.ok_diagnosis));
      ]
    | Run_rejected m -> [ ("status", Json.Str "rejected"); ("reason", Json.Str m) ]
    | Run_failed m -> [ ("status", Json.Str "failed"); ("reason", Json.Str m) ]
  in
  Json.Obj
    ([
       ("id", Json.Int a.t_id);
       ("parent", Json.Int a.t_parent);
       ("move", Json.Str (move_to_string a.t_move));
       ("config", json_of_config a.t_config);
       ("digest", Json.Str a.t_digest);
     ]
    @ status_fields
    @ [
        ( "moves",
          Json.List (List.map (fun m -> Json.Str (move_to_string m)) a.t_moves)
        );
      ])

let json_of_outcome (o : outcome) : Json.t =
  Json.Obj
    [
      ("best_config", json_of_config o.o_best);
      ("best_digest", Json.Str (config_digest o.o_best));
      ("best_cycles", Json.List (List.map (fun c -> Json.Int c) o.o_best_cycles));
      ("best_gmean_speedup", Json.Float o.o_best_gmean);
      ( "serial_cycles",
        Json.List (List.map (fun c -> Json.Int c) o.o_serial_cycles) );
      ( "cut_only_best",
        match o.o_cut_only with
        | None -> Json.Null
        | Some (c, cycles, gmean) ->
          Json.Obj
            [
              ("config", json_of_config c);
              ("cycles", Json.List (List.map (fun x -> Json.Int x) cycles));
              ("gmean_speedup", Json.Float gmean);
            ] );
      ("simulated", Json.Int o.o_simulated);
      ("deduped", Json.Int o.o_deduped);
      ("rejected", Json.Int o.o_rejected);
      ("waves", Json.Int o.o_waves);
      ("exhaustive_lower_bound", Json.Float o.o_exhaustive);
      ("trace", Json.List (List.map json_of_attempt o.o_trace));
    ]

let config_to_string (c : config) : string =
  Printf.sprintf "cuts [%s]%s chain=%b replicas=%d cores=%d"
    (String.concat ";" (List.map (fun cut -> string_of_int (cut_id cut)) c.at_cuts))
    (match c.at_queue_caps with
    | [] -> ""
    | caps ->
      " caps {"
      ^ String.concat ", "
          (List.map (fun (q, cap) -> Printf.sprintf "q%d:%d" q cap) caps)
      ^ "}")
    c.at_chain c.at_replicas c.at_cores

let summary (o : outcome) : string =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "Autotune: best gmean speedup %.3fx with %s\n" o.o_best_gmean
    (config_to_string o.o_best);
  (match o.o_cut_only with
  | Some (c, _, g) ->
    Printf.bprintf buf "  cut-set-only (PGO) best: %.3fx with %s\n" g
      (config_to_string c)
  | None -> Buffer.add_string buf "  cut-set-only (PGO) best: none survived\n");
  Printf.bprintf buf
    "  simulated %d config(s) in %d wave(s) (%d deduped, %d dropped) of a \
     space >= %.0f\n"
    o.o_simulated o.o_waves o.o_deduped o.o_rejected o.o_exhaustive;
  let shown = take 10 (List.rev o.o_trace) in
  if shown <> [] then begin
    Buffer.add_string buf "  last attempts:\n";
    List.iter
      (fun a ->
        Printf.bprintf buf "    #%d %s <- #%d: %s\n" a.t_id
          (move_to_string a.t_move) a.t_parent
          (match a.t_status with
          | Run_ok ok -> Printf.sprintf "gmean %.3f, %s" ok.ok_gmean ok.ok_verdict
          | Run_rejected m -> "rejected: " ^ m
          | Run_failed m -> "failed: " ^ m))
      (List.rev shown)
  end;
  Buffer.contents buf
