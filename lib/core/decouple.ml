(* The decoupler: turns a normalized serial body plus a set of cut points
   into a multi-stage pipeline. The paper factors this into passes
   (Fig. 5); here the transform is itself split into cohesive modules,
   sequenced by this driver so that every position-dependent decision
   stays consistent:

   - Stage_assign (phases A/B): stage assignment at the cuts and the shared
     analysis context (def positions, ancestors, induction vars, init
     replication, movable-initializer sinking).
   - Commplan (phase C, first half): uses/needs fixpoint, recompute
     (rematerialization, recompute gate), barriers between sibling loop
     nests, then — after the CV/DCE decisions — channel construction,
     reference-accelerator assignment (ra gate), and the control-value
     emission plan.
   - Cvdce (phase C, second half): control-value conversion of consumer
     loops (cv gate), upward merging of converted loops, exit-site
     reconciliation, and conditional elision (dce gate).
   - Emit (phase D): per-stage emission, with in-band control checks or
     control-value handlers (handlers gate).

   Scan-chaining and stage elision run afterwards as separate registered
   passes (see Chain and Passes). *)

(* Re-exports: the feature gates and the rejection exception live in Pass
   (so every pass module can use them without a dependency cycle), but
   callers historically reach them through Decouple. *)
type flags = Pass.flags = {
  f_recompute : bool;
  f_ra : bool;
  f_cv : bool;
  f_handlers : bool;
  f_dce : bool;
  f_chain : bool;
}

let all_passes = Pass.all_passes
let queues_only = Pass.queues_only

exception Reject = Pass.Reject

let reject = Pass.reject

(* Phase C: all per-stage decisions, in dependency order. Channel
   construction must follow the CV/DCE decisions because converted-loop
   bounds and elided-If conditions drop out of the consumer sets. *)
let decide ctx (cuts : Costmodel.cut list) : Commplan.decisions =
  let d = Commplan.create () in
  Commplan.analyze ctx d;
  Commplan.plan_recompute ctx d;
  Commplan.plan_barriers ctx d;
  Cvdce.convert_loops ctx d;
  Cvdce.merge_converted ctx d;
  Cvdce.reconcile_exit_sites ctx d;
  Cvdce.elide_conditionals ctx d;
  Commplan.build_channels ctx d cuts;
  Commplan.assign_ras ctx d;
  Commplan.plan_cv_emits ctx d;
  d

(* Decouple a serial pipeline at the given cuts. *)
let split ?(flags = all_passes) (serial : Phloem_ir.Types.pipeline)
    (cuts : Costmodel.cut list) : Phloem_ir.Types.pipeline =
  let body =
    match serial.Phloem_ir.Types.p_stages with
    | [ st ] -> st.Phloem_ir.Types.s_body
    | _ -> reject "split expects a single-stage (serial) pipeline"
  in
  let tree, n_keys = Ktree.of_body (Normalize.body body) in
  let params = List.map fst serial.Phloem_ir.Types.p_params in
  let ctx = Stage_assign.build_context ~flags ~params tree n_keys cuts in
  if ctx.Stage_assign.n_stages < 2 then reject "no cuts selected";
  let d = decide ctx cuts in
  Emit.emit ctx d ~orig:serial
