(* Per-stage emission for the decouple pass (phase D).

   Each stage walks the full keyed tree and keeps the control skeleton it
   needs; simple statements turn into the owner's original statement plus
   producer-side enqueues, or a consumer-side dequeue with forward-chain
   re-enqueue. Converted loops become while(true) with either an in-band
   control check or a control-value handler (handlers gate). *)

open Phloem_ir.Types
module K = Ktree
module Ctx = Stage_assign
module C = Commplan

type stage_acc = { mutable sa_handlers : handler list }

let emit (ctx : Ctx.context) (d : C.decisions) ~(orig : pipeline) : pipeline =
  let cv_emits_after s k =
    match Hashtbl.find_opt d.C.d_cv_emits (s, k) with
    | Some l -> List.rev_map (fun (q, site) -> Enq_ctrl (q, site)) !l
    | None -> []
  in
  let emit_stage s =
    let acc = { sa_handlers = [] } in
    let rec emit_nodes nodes = List.concat_map emit_node nodes
    and emit_node node =
      let k = K.key node in
      let barrier = if Hashtbl.mem d.C.d_barrier_before k then [ Barrier k ] else [] in
      let core =
        match node with
        | K.Kstmt (_, stmt) -> emit_stmt k stmt
        | K.Kif (_, site, cond, tb, fb) ->
          if Hashtbl.mem d.C.d_elided (s, k) then emit_nodes tb
          else if List.mem s (C.needs_of d k) then
            [ If (site, cond, emit_nodes tb, emit_nodes fb) ]
          else []
        | K.Kwhile (_, site, cond, body) ->
          if List.mem s (C.needs_of d k) then
            [ While (site, cond, emit_nodes body) ] @ cv_emits_after s k
          else []
        | K.Kfor (_, site, v, lo, hi, body) ->
          if Hashtbl.mem d.C.d_merged (s, k) then emit_nodes body @ cv_emits_after s k
          else if Hashtbl.mem d.C.d_converted (s, k) then begin
            let primary = Hashtbl.find d.C.d_converted (s, k) in
            let exit_site = Hashtbl.find d.C.d_exit_site (s, k) in
            let ch =
              match Hashtbl.find_opt d.C.d_var_channel primary with
              | Some ch -> ch
              | None -> Pass.reject "converted loop %d: primary %s has no channel" k primary
            in
            let q =
              match C.queue_into ch s with
              | Some q -> q
              | None -> Pass.reject "converted loop %d: no inbound queue for %s" k primary
            in
            let inner = emit_nodes body in
            (* the primary dequeue must come first *)
            (match inner with
            | Assign (x, Deq q') :: rest when x = primary && q' = q ->
              if ctx.Ctx.flags.Pass.f_handlers then begin
                let cv = Printf.sprintf "__cv%d" q in
                acc.sa_handlers <-
                  {
                    h_queue = q;
                    h_cv_var = cv;
                    h_body =
                      [
                        If
                          ( fresh_site (),
                            Binop (Eq, Ctrl_payload (Var cv), Const (Vint exit_site)),
                            [ Exit_loops 1 ],
                            [] );
                      ];
                  }
                  :: acc.sa_handlers;
                [ While (site, Const (Vint 1), Assign (x, Deq q) :: rest) ]
                @ cv_emits_after s k
              end
              else begin
                let body' =
                  [
                    Assign (x, Deq q);
                    If
                      ( fresh_site (),
                        Is_control (Var x),
                        [
                          If
                            ( fresh_site (),
                              Binop (Eq, Ctrl_payload (Var x), Const (Vint exit_site)),
                              [ Break ],
                              [] );
                        ],
                        rest );
                  ]
                in
                [ While (site, Const (Vint 1), body') ] @ cv_emits_after s k
              end
            | _ ->
              Pass.reject "converted loop %d: primary dequeue of %s is not first" k primary)
          end
          else if List.mem s (C.needs_of d k) then
            [ For (site, v, lo, hi, emit_nodes body) ] @ cv_emits_after s k
          else []
      in
      barrier @ core
    and emit_stmt k stmt =
      match stmt with
      | Break | Exit_loops _ ->
        (* structural: reached only inside control this stage emits *)
        [ stmt ]
      | Seq_marker _ -> []
      | _ -> (
        let replicated = Hashtbl.mem ctx.Ctx.replicated_keys k in
        let prefetch_here =
          match Hashtbl.find_opt ctx.Ctx.prefetch_from k with
          | Some p when p = s -> true
          | _ -> false
        in
        let owner = ctx.Ctx.stage_of.(k) = s in
        let defvar = K.stmt_def stmt in
        let ch = Option.bind defvar (Hashtbl.find_opt d.C.d_var_channel) in
        let pieces = ref [] in
        if replicated then pieces := [ stmt ]
        else begin
          if prefetch_here then begin
            match stmt with
            | Assign (_, Load (arr, idx)) -> pieces := !pieces @ [ Prefetch (arr, idx) ]
            | _ -> ()
          end;
          if owner then begin
            (* producer side *)
            match (defvar, ch) with
            | Some x, Some ch when List.mem k ch.C.ch_def_keys ->
              let is_ra_def =
                ch.C.ch_ra <> None && Hashtbl.mem ctx.Ctx.cut_head_keys k
              in
              if is_ra_def then begin
                match stmt with
                | Assign (_, Load (_, idx)) ->
                  pieces := !pieces @ [ Enq (ch.C.ch_ra_in, idx) ]
                | _ -> Pass.reject "RA def %d is not a load" k
              end
              else begin
                pieces := !pieces @ [ stmt ];
                (match ch.C.ch_chain with
                | (_, q1) :: _ -> pieces := !pieces @ [ Enq (q1, Var x) ]
                | [] -> ());
                List.iter
                  (fun (_, qb) -> pieces := !pieces @ [ Enq (qb, Var x) ])
                  ch.C.ch_back
              end
            | _ -> pieces := !pieces @ [ stmt ]
          end
          else begin
            (* consumer / recompute side *)
            match defvar with
            | Some x -> (
              let recomputed = Hashtbl.mem d.C.d_recomputed (s, x) in
              if recomputed && not (Hashtbl.mem ctx.Ctx.replicated_keys k) then
                pieces := !pieces @ [ stmt ]
              else
                match ch with
                | Some ch when List.mem k ch.C.ch_def_keys -> (
                  match C.queue_into ch s with
                  | Some q ->
                    pieces := !pieces @ [ Assign (x, Deq q) ];
                    (match C.next_link ch s with
                    | Some q' -> pieces := !pieces @ [ Enq (q', Var x) ]
                    | None -> ())
                  | None -> ())
                | _ -> ())
            | None -> ()
          end
        end;
        !pieces)
    in
    let body = emit_nodes ctx.Ctx.tree in
    { s_name = Printf.sprintf "s%d" s; s_body = body; s_handlers = acc.sa_handlers }
  in
  let stages = List.init ctx.Ctx.n_stages emit_stage in
  let queues = List.init d.C.d_next_queue (fun q -> { q_id = q; q_capacity = 24 }) in
  {
    orig with
    p_name = orig.p_name ^ "_phloem";
    p_stages = stages;
    p_queues = queues;
    p_ras = List.rev d.C.d_ras;
  }
