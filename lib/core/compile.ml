(* Phloem's top-level compilation entry points.

   [static_flow] implements the static compilation mode (paper Fig. 8,
   upper right): pick the (n-1) highest-ranked decoupling points with the
   cost model and emit one pipeline. [with_cuts] compiles an explicit cut
   selection (used by the profile-guided search in Search). Both are thin
   wrappers over [Pass.Manager] running the registered pass list from
   [Passes.standard]; the [_report] variants expose the manager's per-pass
   timing/op-count report and accept [Pass.options] for per-pass
   verification and IR snapshots. *)

open Phloem_ir.Types

exception Unsupported = Decouple.Reject

let candidates (serial : pipeline) : Costmodel.cut list =
  match serial.p_stages with
  | [ st ] ->
    let tree, _ = Ktree.of_body (Normalize.body st.s_body) in
    Costmodel.candidates tree
  | _ -> invalid_arg "Compile.candidates: expected serial pipeline"

let with_cuts_report ?(flags = Decouple.all_passes) ?(options = Pass.default_options)
    (serial : pipeline) (cuts : Costmodel.cut list) : pipeline * Pass.report =
  let manager = Pass.Manager.create ~options (Passes.standard ~flags) in
  Pass.Manager.run manager { Pass.flags; cuts } serial

let with_cuts ?flags ?options (serial : pipeline) (cuts : Costmodel.cut list) : pipeline
    =
  fst (with_cuts_report ?flags ?options serial cuts)

(* Static mode: an n-stage pipeline from the top-ranked cost-model cuts.
   Cuts that make decoupling illegal (e.g. they would split a merge loop's
   induction updates across stages) are skipped greedily, in rank order.
   The greedy search compiles without instrumentation; the winning cut set
   is recompiled once under the caller's [options] for the report. *)
let static_flow_report ?(flags = Decouple.all_passes) ?(options = Pass.default_options)
    ?(stages = 4) (serial : pipeline) : pipeline * Pass.report =
  match serial.p_stages with
  | [ st ] ->
    let tree, _ = Ktree.of_body (Normalize.body st.s_body) in
    let ranked = Costmodel.candidates tree in
    let in_order cuts =
      List.sort
        (fun (a : Costmodel.cut) b -> compare (List.hd a.cut_loads) (List.hd b.cut_loads))
        cuts
    in
    let try_compile cuts =
      match with_cuts ~flags serial (in_order cuts) with
      | _ -> true
      | exception Decouple.Reject _ -> false
      | exception Phloem_ir.Validate.Invalid _ -> false
    in
    let rec greedy chosen = function
      | [] -> chosen
      | c :: rest ->
        if List.length chosen >= stages - 1 then chosen
        else if try_compile (c :: chosen) then greedy (c :: chosen) rest
        else greedy chosen rest
    in
    (match greedy [] ranked with
    | [] -> Decouple.reject "no legal decoupling found"
    | chosen -> with_cuts_report ~flags ~options serial (in_order chosen))
  | _ -> invalid_arg "Compile.static_flow: expected serial pipeline"

let static_flow ?flags ?options ?stages (serial : pipeline) : pipeline =
  fst (static_flow_report ?flags ?options ?stages serial)

(* Compile minic source text end to end (used by phloemc and tests). *)
let from_minic_source_report ?(flags = Decouple.all_passes)
    ?(options = Pass.default_options) ?(stages = 4) src
    ~(arrays : (string * value array) list) ~(scalars : (string * value) list) :
    pipeline * Pass.report * (string * value array) list =
  let lw = Phloem_minic.Lower.of_source src in
  let serial, inputs = Phloem_minic.Lower.to_serial_pipeline lw ~arrays ~scalars in
  let p, report = static_flow_report ~flags ~options ~stages serial in
  (p, report, inputs)

let from_minic_source ?flags ?options ?stages src
    ~(arrays : (string * value array) list) ~(scalars : (string * value) list) :
    pipeline * (string * value array) list =
  let p, _, inputs = from_minic_source_report ?flags ?options ?stages src ~arrays ~scalars in
  (p, inputs)
