(** Analysis-guided autotuning over the full pipeline design space: cut
    sets x per-queue capacities x stage replication x scan-chaining x
    core count (SMT threads are packed {!Pipette.Config.smt_threads} per
    core, so the core count is the thread-mapping knob).

    The search is a beam-limited wave expansion. Wave 0 seeds the
    frontier with the serial configuration plus every cut set PGO would
    enumerate — the tuned result can therefore never lose to cut-set-only
    PGO on the same training inputs. Each wave simulates its frontier in
    parallel over the pool, classifies every candidate's bottleneck
    report ({!Pipette.Analysis.classify}), and expands the wave's best
    [beam] survivors with moves directed by the diagnosis: a
    backpressured queue is deepened or its pipeline replicated, a
    starving consumer loses its upstream cut, a DRAM-bound stage gets
    scan-chaining, an issue-bound stage gets more cuts or cores; a
    [Balanced] verdict (headroom below threshold) stops expansion.
    Visited configurations are deduplicated by canonical digest and a
    [budget] caps total simulations, so the search always terminates with
    an anytime best-so-far.

    Per-candidate cost is one timing replay: compiled programs and
    functional traces are memoized inside {!Pipette.Sim}, and the
    queue-capacity knob is an engine-side override that leaves those memo
    keys untouched. *)

type config = {
  at_cuts : Costmodel.cut list;  (** in program order *)
  at_queue_caps : (int * int) list;
      (** per-queue capacity overrides, sorted by queue id; queue ids are
          assigned during decoupling, so overrides never survive a move
          that reshapes the pipeline *)
  at_chain : bool;  (** run the scan-chain pass *)
  at_replicas : int;  (** 1 = no replication *)
  at_cores : int;
}

type space = {
  sp_cut_pool : Costmodel.cut list;  (** the top-k ranked cuts *)
  sp_max_queue_cap : int;
  sp_max_replicas : int;
  sp_max_cores : int;
  sp_headroom_threshold : float;
      (** verdicts below this estimated speedup are [Balanced] *)
}

type move =
  | M_seed  (** wave-0 frontier member, no parent *)
  | M_deepen of int * int  (** double queue [q] to the given capacity *)
  | M_add_cut of int  (** cut identified by its first load id *)
  | M_drop_cut of int
  | M_toggle_chain
  | M_replicate of int  (** new replica count *)
  | M_cores of int  (** new core count *)

type status =
  | Run_ok of {
      ok_cycles : int list;  (** per training input *)
      ok_speedups : float list;
      ok_gmean : float;
      ok_verdict : string;
      ok_headroom : float;
      ok_diagnosis : string list;
    }
  | Run_rejected of string
      (** illegal cuts, thread-fit failure, or result mismatch *)
  | Run_failed of string  (** deadlock, livelock, or runtime error *)

type attempt = {
  t_id : int;
  t_parent : int;  (** attempt id this move expanded from; -1 for seeds *)
  t_move : move;
  t_config : config;
  t_digest : string;
  t_status : status;
  t_moves : move list;  (** directed moves generated from this attempt *)
}

type outcome = {
  o_best : config;
  o_best_cycles : int list;
  o_best_gmean : float;
  o_serial_cycles : int list;
  o_cut_only : (config * int list * float) option;
      (** best default-knob non-serial candidate: what cut-set-only PGO
          would have picked on the same training inputs *)
  o_simulated : int;
  o_deduped : int;  (** move targets skipped as already visited *)
  o_rejected : int;
  o_waves : int;
  o_exhaustive : float;  (** lower bound on the full space size *)
  o_trace : attempt list;  (** every attempt, in evaluation order *)
}

val config_digest : config -> string
(** Canonical hex content key: two configs collide exactly when they
    would simulate identically. *)

val moves :
  space -> config -> Pipette.Analysis.report -> (move * config) list
(** The directed move grammar: classify the report and propose successor
    configurations. Pure — unit tests feed synthetic reports and assert
    the exact move set. A [Balanced] verdict yields no moves. *)

val tune :
  ?flags:Decouple.flags ->
  ?cfg:Pipette.Config.t ->
  ?top_k:int ->
  ?max_cuts:int ->
  ?beam:int ->
  ?budget:int ->
  ?max_queue_cap:int ->
  ?max_replicas:int ->
  ?max_cores:int ->
  ?headroom_threshold:float ->
  ?pool:Phloem_util.Pool.t ->
  ?metrics:Phloem_util.Metrics.t ->
  check_arrays:string list ->
  training:
    (Phloem_ir.Types.pipeline * (string * Phloem_ir.Types.value array) list)
    list ->
  unit ->
  outcome
(** Run the search. [beam] (default 4) bounds how many survivors each
    wave expands; [budget] (default 64) caps total simulations;
    [max_queue_cap] defaults to [8 * cfg.queue_depth]. With the same
    arguments the outcome is byte-identical whether [pool] is absent,
    single-job, or many-job (the pool preserves submission order).
    [metrics] feeds search progress into a shared registry: per-eval
    latency (histogram [autotune_eval_s]), counters [autotune_evals] /
    [autotune_waves] / [autotune_rejected] / [autotune_deduped], and
    gauges [autotune_best_gmean] / [autotune_best_cycles] — observation
    only, never affects the outcome.
    @raise Invalid_argument on empty training or a non-positive
    beam/budget. *)

val move_to_string : move -> string
val config_to_string : config -> string
val json_of_config : config -> Pipette.Telemetry.Json.t

val json_of_outcome : outcome -> Pipette.Telemetry.Json.t
(** Machine-readable best config + full search trace (per-attempt cycles,
    speedups, verdict, diagnosis, move provenance) plus the search
    counters, including [simulated] vs [exhaustive_lower_bound]. *)

val summary : outcome -> string
(** Human-readable digest: winner, PGO comparison, search counters, and
    the last few attempts. *)
