(* The compiler's registered pass list.

   Each pass wraps one IR-to-IR transformation as a first-class [Pass.PASS]
   module; [standard ~flags] assembles the list the top-level compilation
   flows run through [Pass.Manager]. The feature gates in [Pass.flags]
   remain orthogonal: they steer decisions *inside* the decouple pass and
   decide whether scan-chaining is included at all. *)

open Phloem_ir.Types

let max_queues = 16
let max_ras = 4

let decouple : Pass.pass =
  (module struct
    let name = "decouple"
    let describe = "split the serial kernel into pipeline stages at the selected cuts"
    let run (ctx : Pass.ctx) p = Decouple.split ~flags:ctx.Pass.flags p ctx.Pass.cuts

    let invariants =
      [
        (fun (_ : Pass.ctx) p ->
          if List.length p.p_stages < 2 then
            Pass.reject "decouple produced %d stage(s), expected at least 2"
              (List.length p.p_stages));
      ]
  end)

let scan_chain : Pass.pass =
  (module struct
    let name = "scan-chain"
    let describe = "replace dequeue-pair/stream-scan stages with chained SCAN RAs"
    let run (_ : Pass.ctx) p = Chain.chain p

    let invariants =
      [
        (fun (_ : Pass.ctx) p ->
          if List.length p.p_ras > max_ras then
            Pass.reject "scan-chain allocated %d RAs (max %d)" (List.length p.p_ras)
              max_ras);
      ]
  end)

let cleanup : Pass.pass =
  (module struct
    let name = "cleanup"
    let describe = "drop effect-free stages, orphan handlers, and dead queues/RAs"
    let run (_ : Pass.ctx) p = Chain.cleanup p
    let invariants = []
  end)

let check_limits : Pass.pass =
  (module struct
    let name = "check-limits"
    let describe = "reject pipelines exceeding the queue and RA budgets"

    let run (_ : Pass.ctx) p =
      if List.length p.p_queues > max_queues then
        Decouple.reject "pipeline uses %d queues (max %d)" (List.length p.p_queues)
          max_queues;
      if List.length p.p_ras > max_ras then
        Decouple.reject "pipeline uses %d RAs (max %d)" (List.length p.p_ras) max_ras;
      p

    let invariants = []
  end)

let validate : Pass.pass =
  (module struct
    let name = "validate"
    let describe = "structural IR validation (Phloem_ir.Validate)"

    let run (_ : Pass.ctx) p =
      Phloem_ir.Validate.check p;
      p

    let invariants = []
  end)

(* Parameterized: clone the pipeline [spec.r_replicas] times with disjoint
   queue/RA namespaces (and optional data-centric distribution). Not part of
   [standard]; the multicore flow appends it explicitly. *)
let replicate (spec : Replicate.spec) : Pass.pass =
  (module struct
    let name = "replicate"

    let describe =
      Printf.sprintf "clone the pipeline into %d replicas" spec.Replicate.r_replicas

    let run (_ : Pass.ctx) p = Replicate.apply p spec
    let invariants = []
  end)

let () = List.iter Pass.register [ decouple; scan_chain; cleanup; check_limits; validate ]

(* The standard single-pipeline compilation sequence for a given feature
   ladder. Scan-chaining needs both the RA substrate and inter-stage DCE. *)
let standard ~(flags : Pass.flags) : Pass.pass list =
  [ decouple ]
  @ (if flags.Pass.f_ra && flags.Pass.f_dce then [ scan_chain ] else [])
  @ [ cleanup; check_limits; validate ]
