(* The compiler's registered pass list.

   Each pass wraps one IR-to-IR transformation as a first-class [Pass.PASS]
   module; [standard ~flags] assembles the list the top-level compilation
   flows run through [Pass.Manager]. The feature gates in [Pass.flags]
   remain orthogonal: they steer decisions *inside* the decouple pass and
   decide whether scan-chaining is included at all. *)

open Phloem_ir.Types

let max_queues = 16
let max_ras = 4

let decouple : Pass.pass =
  (module struct
    let name = "decouple"
    let describe = "split the serial kernel into pipeline stages at the selected cuts"
    let run (ctx : Pass.ctx) p = Decouple.split ~flags:ctx.Pass.flags p ctx.Pass.cuts

    let invariants =
      [
        (fun (_ : Pass.ctx) p ->
          if List.length p.p_stages < 2 then
            Pass.reject "decouple produced %d stage(s), expected at least 2"
              (List.length p.p_stages));
      ]
  end)

let scan_chain : Pass.pass =
  (module struct
    let name = "scan-chain"
    let describe = "replace dequeue-pair/stream-scan stages with chained SCAN RAs"
    let run (_ : Pass.ctx) p = Chain.chain p

    let invariants =
      [
        (fun (_ : Pass.ctx) p ->
          if List.length p.p_ras > max_ras then
            Pass.reject "scan-chain allocated %d RAs (max %d)" (List.length p.p_ras)
              max_ras);
      ]
  end)

let cleanup : Pass.pass =
  (module struct
    let name = "cleanup"
    let describe = "drop effect-free stages, orphan handlers, and dead queues/RAs"
    let run (_ : Pass.ctx) p = Chain.cleanup p
    let invariants = []
  end)

let check_limits : Pass.pass =
  (module struct
    let name = "check-limits"
    let describe = "reject pipelines exceeding the queue and RA budgets"

    let run (_ : Pass.ctx) p =
      if List.length p.p_queues > max_queues then
        Decouple.reject "pipeline uses %d queues (max %d)" (List.length p.p_queues)
          max_queues;
      if List.length p.p_ras > max_ras then
        Decouple.reject "pipeline uses %d RAs (max %d)" (List.length p.p_ras) max_ras;
      p

    let invariants = []
  end)

(* Static deadlock guard over the communication plan. Agents are stages and
   RAs; the wait graph has one edge producer -> consumer per queue. Two
   checks: (1) a queue with consumers but no producer can never be filled —
   reject; (2) a strongly connected component where *every* member's first
   queue operation (pre-order through its body) is a blocking dequeue of an
   in-cycle queue that no outside agent feeds can never enqueue its first
   token — reject and name the cycle. Cyclic plans that escape (2) are
   feasible but capacity-sensitive: every in-cycle queue must be able to
   hold the cycle's in-flight tokens, so undersized ones get a warning with
   a minimum-capacity suggestion rather than a rejection (the timing model
   decides at run time; see Forensics for the run-time counterpart). *)
let check_deadlock : Pass.pass =
  (module struct
    let name = "check-deadlock"
    let describe = "reject communication plans whose queue cycles can never make progress"

    type first_op = F_deq of int | F_enq | F_none

    let first_queue_op (s : stage) =
      let exception Found of first_op in
      let rec ex (e : expr) =
        match e with
        | Deq q -> raise (Found (F_deq q))
        | Const _ | Var _ -> ()
        | Binop (_, a, b) ->
          ex a;
          ex b
        | Unop (_, a) | Is_control a | Ctrl_payload a -> ex a
        | Load (_, i) -> ex i
        | Call (_, args) -> List.iter ex args
      in
      let rec st (x : stmt) =
        match x with
        | Assign (_, e) | Prefetch (_, e) -> ex e
        | Store (_, a, b) | Atomic_min (_, a, b) | Atomic_add (_, a, b) ->
          ex a;
          ex b
        | Enq (_, e) ->
          ex e;
          (* the enqueued value is computed first: a Deq inside it blocks
             before the enqueue lands *)
          raise (Found F_enq)
        | Enq_ctrl _ -> raise (Found F_enq)
        | Enq_indexed (_, a, b) ->
          ex a;
          ex b;
          raise (Found F_enq)
        | If (_, c, t, f) ->
          ex c;
          List.iter st t;
          List.iter st f
        | While (_, c, b) ->
          ex c;
          List.iter st b
        | For (_, _, lo, hi, b) ->
          ex lo;
          ex hi;
          List.iter st b
        | Break | Exit_loops _ | Barrier _ | Seq_marker _ -> ()
      in
      try
        List.iter st s.s_body;
        F_none
      with Found f -> f

    let run (_ : Pass.ctx) p =
      let n_stages = List.length p.p_stages in
      let n_agents = n_stages + List.length p.p_ras in
      let _, producers, consumers = Phloem_ir.Forensics.queue_users p in
      let n_queues = Array.length producers in
      for q = 0 to n_queues - 1 do
        if consumers.(q) <> [] && producers.(q) = [] then
          Pass.reject
            "check-deadlock: q%d is dequeued but no stage or RA ever enqueues \
             into it"
            q
      done;
      let names = Phloem_ir.Forensics.agent_names p in
      let agent_name a =
        if a < Array.length names then names.(a) else Printf.sprintf "agent%d" a
      in
      let succs = Array.make (max n_agents 1) [] in
      for q = 0 to n_queues - 1 do
        List.iter
          (fun a ->
            List.iter
              (fun b ->
                if a < n_agents && b < n_agents && not (List.mem b succs.(a))
                then succs.(a) <- b :: succs.(a))
              consumers.(q))
          producers.(q)
      done;
      (* Tarjan's SCC *)
      let index = Array.make (max n_agents 1) (-1) in
      let low = Array.make (max n_agents 1) 0 in
      let on_stack = Array.make (max n_agents 1) false in
      let stack = ref [] in
      let counter = ref 0 in
      let sccs = ref [] in
      let rec strongconnect v =
        index.(v) <- !counter;
        low.(v) <- !counter;
        incr counter;
        stack := v :: !stack;
        on_stack.(v) <- true;
        List.iter
          (fun w ->
            if index.(w) < 0 then begin
              strongconnect w;
              low.(v) <- min low.(v) low.(w)
            end
            else if on_stack.(w) then low.(v) <- min low.(v) index.(w))
          succs.(v);
        if low.(v) = index.(v) then begin
          let rec pop acc =
            match !stack with
            | w :: rest ->
              stack := rest;
              on_stack.(w) <- false;
              if w = v then w :: acc else pop (w :: acc)
            | [] -> acc
          in
          sccs := pop [] :: !sccs
        end
      in
      for v = 0 to n_agents - 1 do
        if index.(v) < 0 then strongconnect v
      done;
      let first_ops =
        Array.init n_agents (fun a ->
            if a < n_stages then first_queue_op (List.nth p.p_stages a)
            else F_deq (List.nth p.p_ras (a - n_stages)).ra_in)
      in
      let cap q =
        match List.find_opt (fun (d : queue_decl) -> d.q_id = q) p.p_queues with
        | Some d -> d.q_capacity
        | None -> 24
      in
      List.iter
        (fun scc ->
          let cyclic =
            match scc with
            | [ v ] -> List.mem v succs.(v)
            | _ :: _ :: _ -> true
            | _ -> false
          in
          if cyclic then begin
            let in_scc a = List.mem a scc in
            let in_cycle_q q =
              List.exists in_scc producers.(q) && List.exists in_scc consumers.(q)
            in
            let wedged =
              List.for_all
                (fun a ->
                  match first_ops.(a) with
                  | F_deq q ->
                    in_cycle_q q && List.for_all in_scc producers.(q)
                  | F_enq | F_none -> false)
                scc
          in
            let members = String.concat " -> " (List.map agent_name scc) in
            if wedged then
              Pass.reject
                "check-deadlock: cyclic communication plan {%s} can never \
                 start — every member first dequeues a queue only the cycle \
                 itself fills"
                members
            else begin
              let tight =
                List.filter
                  (fun q -> in_cycle_q q && cap q < List.length scc)
                  (List.init n_queues Fun.id)
              in
              List.iter
                (fun q ->
                  Phloem_util.Log.warn ~component:"check-deadlock"
                    "queue cycle {%s}: q%d capacity %d may not cover the \
                     cycle's in-flight tokens; suggest capacity >= %d"
                    members q (cap q) (List.length scc))
                tight
            end
          end)
        !sccs;
      p

    let invariants = []
  end)

let validate : Pass.pass =
  (module struct
    let name = "validate"
    let describe = "structural IR validation (Phloem_ir.Validate)"

    let run (_ : Pass.ctx) p =
      Phloem_ir.Validate.check p;
      p

    let invariants = []
  end)

(* Parameterized: clone the pipeline [spec.r_replicas] times with disjoint
   queue/RA namespaces (and optional data-centric distribution). Not part of
   [standard]; the multicore flow appends it explicitly. *)
let replicate (spec : Replicate.spec) : Pass.pass =
  (module struct
    let name = "replicate"

    let describe =
      Printf.sprintf "clone the pipeline into %d replicas" spec.Replicate.r_replicas

    let run (_ : Pass.ctx) p = Replicate.apply p spec
    let invariants = []
  end)

let () =
  List.iter Pass.register
    [ decouple; scan_chain; cleanup; check_deadlock; check_limits; validate ]

(* The standard single-pipeline compilation sequence for a given feature
   ladder. Scan-chaining needs both the RA substrate and inter-stage DCE.
   The deadlock guard runs after cleanup (dead queues are gone) and before
   the limit checks. *)
let standard ~(flags : Pass.flags) : Pass.pass list =
  [ decouple ]
  @ (if flags.Pass.f_ra && flags.Pass.f_dce && flags.Pass.f_chain then
       [ scan_chain ]
     else [])
  @ [ cleanup; check_deadlock; check_limits; validate ]
