(* Pass-manager infrastructure for the Phloem compiler.

   The compiler is a sequence of IR-to-IR transformations over [pipeline]
   (decouple -> scan-chain -> cleanup -> limit checks -> validation, plus
   replication for the multicore flow). Each transformation is a first-class
   pass: a name, a [run] function, and optional invariants checked after the
   pass when [verify_each] is on. The [Manager] runs a registered pass list,
   re-validating the IR between passes on request, recording per-pass wall
   time and op-count deltas, and capturing before/after IR snapshots via
   [Phloem_ir.Printer]. *)

open Phloem_ir.Types
module Log = Phloem_util.Log

(* A transformation that cannot be applied legally (e.g. a cut that would
   split a merge loop's induction updates across stages) rejects the whole
   compilation; the static flow catches this and tries other cuts. *)
exception Reject of string

let reject fmt =
  Printf.ksprintf
    (fun s ->
      Log.debug ~component:"pass" "reject: %s" s;
      raise (Reject s))
    fmt

(* Feature gates of the decoupling transform (paper Fig. 6 ablation ladder).
   These are orthogonal to the registered pass list: they gate decisions
   *inside* the decouple pass and decide whether scan-chaining runs. *)
type flags = {
  f_recompute : bool;
  f_ra : bool;
  f_cv : bool;
  f_handlers : bool;
  f_dce : bool;
  f_chain : bool;
      (* scan-chaining as its own first-class knob: the autotuner toggles it
         per candidate config without disturbing the RA/DCE decisions made
         inside decouple (f_ra / f_dce stay the ablation-ladder gates) *)
}

let all_passes =
  {
    f_recompute = true;
    f_ra = true;
    f_cv = true;
    f_handlers = true;
    f_dce = true;
    f_chain = true;
  }

let queues_only =
  {
    f_recompute = false;
    f_ra = false;
    f_cv = false;
    f_handlers = false;
    f_dce = false;
    f_chain = false;
  }

(* Context shared by every pass of one compilation. *)
type ctx = {
  flags : flags;
  cuts : Costmodel.cut list; (* selected decoupling points, program order *)
}

module type PASS = sig
  val name : string
  val describe : string

  val run : ctx -> pipeline -> pipeline

  (* Checked after the pass when [verify_each] is on; raise [Reject] (or any
     exception) to flag a violated invariant. *)
  val invariants : (ctx -> pipeline -> unit) list
end

type pass = (module PASS)

let name_of (p : pass) =
  let module P = (val p) in
  P.name

let describe_of (p : pass) =
  let module P = (val p) in
  P.describe

(* ---------- registry ---------- *)

let registry : (string, pass) Hashtbl.t = Hashtbl.create 8
let registration_order : string list ref = ref []

let register (p : pass) =
  let n = name_of p in
  if not (Hashtbl.mem registry n) then
    registration_order := !registration_order @ [ n ];
  Hashtbl.replace registry n p

let find name = Hashtbl.find_opt registry name
let registered () = !registration_order

(* ---------- op counting (for per-pass deltas) ---------- *)

let rec stmt_ops s =
  1
  +
  match s with
  | If (_, _, t, f) -> block_ops t + block_ops f
  | While (_, _, b) | For (_, _, _, _, b) -> block_ops b
  | Assign _ | Store _ | Atomic_min _ | Atomic_add _ | Prefetch _ | Enq _
  | Enq_ctrl _ | Enq_indexed _ | Break | Exit_loops _ | Barrier _ | Seq_marker _ ->
    0

and block_ops stmts = List.fold_left (fun acc s -> acc + stmt_ops s) 0 stmts

let count_ops (p : pipeline) =
  List.fold_left
    (fun acc st ->
      acc + block_ops st.s_body
      + List.fold_left (fun a h -> a + block_ops h.h_body) 0 st.s_handlers)
    0 p.p_stages

(* ---------- manager ---------- *)

(* Raised when [verify_each] catches a malformed pipeline or a violated pass
   invariant; names the pass that produced the bad IR. *)
exception Verify_failed of string * string

type options = {
  verify_each : bool; (* run Validate + pass invariants after every pass *)
  dump_ir : string option; (* write numbered IR snapshots into this directory *)
  keep_snapshots : bool; (* retain the printed IR in the report *)
}

let default_options = { verify_each = false; dump_ir = None; keep_snapshots = false }

type pass_report = {
  pr_name : string;
  pr_wall_s : float;
  pr_ops_before : int;
  pr_ops_after : int;
  pr_stages_after : int;
  pr_snapshot : string option; (* IR after the pass, when keep_snapshots *)
}

type report = {
  rep_passes : pass_report list; (* in execution order *)
  rep_wall_s : float;
}

let empty_report = { rep_passes = []; rep_wall_s = 0.0 }

let report_to_string (r : report) =
  let line pr =
    Printf.sprintf "  %-14s %9.3f ms   %5d -> %5d ops   %d stages" pr.pr_name
      (pr.pr_wall_s *. 1000.0) pr.pr_ops_before pr.pr_ops_after pr.pr_stages_after
  in
  String.concat "\n"
    (("Pass timings:" :: List.map line r.rep_passes)
    @ [ Printf.sprintf "  %-14s %9.3f ms" "total" (r.rep_wall_s *. 1000.0) ])

module Manager = struct
  type t = {
    passes : pass list;
    options : options;
  }

  let create ?(options = default_options) (passes : pass list) = { passes; options }
  let names t = List.map name_of t.passes

  let dump_snapshot dir idx name p =
    (try Unix.mkdir dir 0o755 with
    | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    | Unix.Unix_error _ as e -> raise e);
    let file = Filename.concat dir (Printf.sprintf "%02d-%s.ir" idx name) in
    Out_channel.with_open_text file (fun oc ->
        output_string oc (Phloem_ir.Printer.pipeline_to_string p);
        output_char oc '\n')

  let verify_after (ctx : ctx) (module P : PASS) p =
    (match Phloem_ir.Validate.check p with
    | () -> ()
    | exception Phloem_ir.Validate.Invalid msg -> raise (Verify_failed (P.name, msg)));
    List.iter
      (fun inv ->
        match inv ctx p with
        | () -> ()
        | exception Reject msg -> raise (Verify_failed (P.name, msg))
        | exception Phloem_ir.Validate.Invalid msg ->
          raise (Verify_failed (P.name, msg)))
      P.invariants

  let run (t : t) (ctx : ctx) (p0 : pipeline) : pipeline * report =
    Option.iter (fun dir -> dump_snapshot dir 0 "input" p0) t.options.dump_ir;
    let t_start = Unix.gettimeofday () in
    let reports = ref [] in
    let idx = ref 0 in
    let run_pass p (pass : pass) =
      let module P = (val pass) in
      incr idx;
      let ops_before = count_ops p in
      let t0 = Unix.gettimeofday () in
      (* Re-canonicalize site ids after every pass: transforms mint fresh
         sites from a global counter, and site ids feed the branch
         predictor, so leaving them raw would make timing depend on global
         build history (and race across domains). *)
      let p' = Phloem_ir.Types.renumber_sites (P.run ctx p) in
      let wall = Unix.gettimeofday () -. t0 in
      if t.options.verify_each then verify_after ctx pass p';
      Option.iter (fun dir -> dump_snapshot dir !idx P.name p') t.options.dump_ir;
      let ops_after = count_ops p' in
      Log.debug ~component:"pass" "%s: %d -> %d ops, %d stages, %.3f ms" P.name
        ops_before ops_after (List.length p'.p_stages) (wall *. 1000.0);
      reports :=
        {
          pr_name = P.name;
          pr_wall_s = wall;
          pr_ops_before = ops_before;
          pr_ops_after = ops_after;
          pr_stages_after = List.length p'.p_stages;
          pr_snapshot =
            (if t.options.keep_snapshots then
               Some (Phloem_ir.Printer.pipeline_to_string p')
             else None);
        }
        :: !reports;
      p'
    in
    let pfinal = List.fold_left run_pass p0 t.passes in
    ( pfinal,
      { rep_passes = List.rev !reports; rep_wall_s = Unix.gettimeofday () -. t_start } )
end
