(* Profile-guided pipeline search (paper Sec. V, Fig. 8): enumerate candidate
   pipelines from combinations of the top-ranked decoupling points, profile
   each on small training inputs, and keep the best. Candidates that the
   decoupler rejects, that fail validation, or that compute a different
   result from the serial version are discarded. *)

open Phloem_ir.Types
module Log = Phloem_util.Log

type candidate = {
  ca_cuts : Costmodel.cut list; (* program order *)
  ca_stages : int; (* threads + RAs, as Fig. 13 counts them *)
  ca_cycles : int list; (* per training input *)
  ca_speedups : float list;
  ca_gmean : float;
}

type outcome = {
  best : Costmodel.cut list;
  all : candidate list; (* every profiled candidate *)
  serial_cycles : int list;
}

(* Canonical digest of a cut set, insensitive to list order (subsets are
   always re-sorted to program order anyway) and to the float score, which
   is a ranking artifact rather than part of the cut's identity. Same
   canonical-string-then-MD5 scheme as the serve protocol's content key, so
   two cut sets collide exactly when they decouple identically. *)
let cut_set_key (cuts : Costmodel.cut list) : string =
  let canon =
    cuts
    |> List.map (fun (c : Costmodel.cut) ->
           Printf.sprintf "[%s]%b"
             (String.concat "," (List.map string_of_int c.cut_loads))
             c.cut_prefetch)
    |> List.sort compare
    |> String.concat ";"
  in
  Digest.to_hex (Digest.string canon)

(* All non-empty subsets of the top-k cuts with at most [max_cuts] members,
   each subset ordered by program position. The cost model can rank the
   same decoupling point more than once (e.g. with and without an equal
   neighbor), so subsets are deduplicated by canonical digest — profiling
   the same pipeline twice would only waste training runs. *)
let enumerate_cut_sets ?(top_k = 6) ?(max_cuts = 3) (serial : pipeline) :
    Costmodel.cut list list =
  let cuts = Compile.candidates serial in
  let top = List.filteri (fun i _ -> i < top_k) cuts in
  let rec subsets = function
    | [] -> [ [] ]
    | c :: rest ->
      let without = subsets rest in
      List.map (fun s -> c :: s) without @ without
  in
  let seen = Hashtbl.create 64 in
  subsets top
  |> List.filter (fun s -> s <> [] && List.length s <= max_cuts)
  |> List.map
       (List.sort (fun (a : Costmodel.cut) b ->
            compare (List.hd a.cut_loads) (List.hd b.cut_loads)))
  |> List.filter (fun s ->
         let k = cut_set_key s in
         if Hashtbl.mem seen k then false
         else begin
           Hashtbl.add seen k ();
           true
         end)

(* One training run: returns cycles if the pipeline runs and matches the
   serial result on the checked arrays. Candidates that run away (e.g. an
   inconsistent control-value protocol that spins forever) are killed by a
   budget derived from the serial instruction count. *)
let profile_one ~cfg ~check_arrays ~budget pipeline ~inputs ~serial_result =
  (* the budget is domain-local, so concurrent candidates profiled by the
     pool each get their own *)
  let result =
    Phloem_ir.Interp.with_max_ops budget (fun () ->
        match Pipette.Sim.run ~cfg ~inputs pipeline with
        | exception _ -> None
        | r -> Some r)
  in
  match result with
  | None -> None
  | Some r ->
    let ok =
      List.for_all
        (fun name ->
          List.assoc_opt name r.Pipette.Sim.sr_functional.Phloem_ir.Interp.r_arrays
          = List.assoc_opt name serial_result)
        check_arrays
    in
    if ok then Some r else None

(* Profile-guided optimization over a list of training bindings.
   [training] supplies, per training input, the serial pipeline and its
   array contents. [check_arrays] names the output arrays that must match. *)
let pgo ?(flags = Decouple.all_passes) ?(cfg = Pipette.Config.default) ?(top_k = 6)
    ?(max_cuts = 3) ?pool ~check_arrays
    ~(training : (pipeline * (string * value array) list) list) () : outcome =
  (* [pmap] fans independent jobs over the pool while keeping list order,
     so the outcome is identical to the serial evaluation. *)
  let pmap f l =
    match pool with
    | Some p -> Phloem_util.Pool.map_list p f l
    | None -> List.map f l
  in
  match training with
  | [] -> invalid_arg "Search.pgo: no training inputs"
  | (serial0, _) :: _ ->
    let cut_sets = enumerate_cut_sets ~top_k ~max_cuts serial0 in
    Log.info ~component:"search" "pgo: profiling %d candidate cut sets on %d inputs"
      (List.length cut_sets) (List.length training);
    let serial_runs =
      pmap
        (fun (serial, inputs) ->
          let r = Pipette.Sim.run ~cfg ~inputs serial in
          (serial, inputs, r))
        training
    in
    let serial_cycles =
      List.map (fun (_, _, r) -> Pipette.Sim.cycles r) serial_runs
    in
    let candidates =
      pmap
        (fun cuts ->
          let runs =
            List.map
              (fun (serial, inputs, sr) ->
                match Compile.with_cuts ~flags serial cuts with
                | exception Decouple.Reject _ -> None
                | exception Phloem_ir.Validate.Invalid _ -> None
                | p ->
                  let budget =
                    max 2_000_000
                      (8 * sr.Pipette.Sim.sr_functional.Phloem_ir.Interp.r_instrs)
                  in
                  Option.map
                    (fun r -> (p, Pipette.Sim.cycles r))
                    (profile_one ~cfg ~check_arrays ~budget p ~inputs
                       ~serial_result:sr.Pipette.Sim.sr_functional.Phloem_ir.Interp.r_arrays))
              serial_runs
          in
          if List.exists (fun r -> r = None) runs then None
          else
            let runs = List.filter_map Fun.id runs in
            let cycles = List.map snd runs in
            let stages =
              match runs with
              | (p, _) :: _ -> List.length p.p_stages + List.length p.p_ras
              | [] -> 0
            in
            let speedups =
              List.map2 (fun s c -> float_of_int s /. float_of_int c) serial_cycles cycles
            in
            let gmean = Phloem_util.Stats.gmean speedups in
            Log.debug ~component:"search" "cuts [%s]: %d stages, gmean %.3f"
              (String.concat ";"
                 (List.map
                    (fun (c : Costmodel.cut) -> string_of_int (List.hd c.cut_loads))
                    cuts))
              stages gmean;
            Some
              {
                ca_cuts = cuts;
                ca_stages = stages;
                ca_cycles = cycles;
                ca_speedups = speedups;
                ca_gmean = gmean;
              })
        cut_sets
      |> List.filter_map Fun.id
    in
    (match candidates with
    | [] ->
      (* No candidate survived profiling: degrade to the serial (no-cut)
         recipe instead of aborting the whole sweep — downstream consumers
         treat [best = []] as "run serial". *)
      Log.warn ~component:"search"
        "pgo: no legal candidate pipelines among %d cut sets; falling back \
         to the serial (no-cut) configuration"
        (List.length cut_sets);
      { best = []; all = []; serial_cycles }
    | _ ->
      let best =
        List.fold_left
          (fun acc c -> if c.ca_gmean > acc.ca_gmean then c else acc)
          (List.hd candidates) (List.tl candidates)
      in
      Log.info ~component:"search" "pgo: best of %d legal candidates has gmean %.3f"
        (List.length candidates) best.ca_gmean;
      { best = best.ca_cuts; all = candidates; serial_cycles })
