(* Normalization into fine-grain form: every memory access, call, and
   compound operation gets its own statement over atomic operands
   (variables/constants). This is the representation "that allows any two
   operations in a program to be decoupled" (paper Sec. V); the cost model
   and the decoupler both walk it, identifying loads by ordinal. *)

open Phloem_ir.Types

(* Temp names restart at __n1 for every [body] call: normalized output must
   be a pure function of its input (pipelines are digested for memoization,
   so recompiling the same kernel has to produce byte-identical IR), and a
   process-global counter would also race across pool domains. *)

let is_atom = function Const _ | Var _ -> true | _ -> false

let rec has_load = function
  | Const _ | Var _ | Deq _ -> false
  | Load _ -> true
  | Binop (_, a, b) -> has_load a || has_load b
  | Unop (_, a) | Is_control a | Ctrl_payload a -> has_load a
  | Call (_, args) -> List.exists has_load args

(* Flatten an expression to an atom, emitting setup statements. *)
let rec atomize fresh acc e =
  match e with
  | Const _ | Var _ -> (acc, e)
  | _ ->
    let acc, e' = flatten_node fresh acc e in
    let t = fresh () in
    (acc @ [ Assign (t, e') ], Var t)

(* Flatten one level: children become atoms, the node itself survives. *)
and flatten_node fresh acc e =
  match e with
  | Const _ | Var _ -> (acc, e)
  | Binop (op, a, b) ->
    let acc, a = atomize fresh acc a in
    let acc, b = atomize fresh acc b in
    (acc, Binop (op, a, b))
  | Unop (op, a) ->
    let acc, a = atomize fresh acc a in
    (acc, Unop (op, a))
  | Load (arr, i) ->
    let acc, i = atomize fresh acc i in
    (acc, Load (arr, i))
  | Deq q -> (acc, Deq q)
  | Is_control a ->
    let acc, a = atomize fresh acc a in
    (acc, Is_control a)
  | Ctrl_payload a ->
    let acc, a = atomize fresh acc a in
    (acc, Ctrl_payload a)
  | Call (f, args) ->
    let acc, args =
      List.fold_left
        (fun (acc, rev) a ->
          let acc, a = atomize fresh acc a in
          (acc, a :: rev))
        (acc, []) args
    in
    (acc, Call (f, List.rev args))

(* A while condition stays inline only if it is a cheap load-free test;
   otherwise it is rewritten as while(1) { t = cond; if (!t) break; ... }. *)
let simple_cond e =
  match e with
  | Const _ | Var _ -> true
  | Binop (_, a, b) -> is_atom a && is_atom b && not (has_load e)
  | _ -> false

let rec norm_stmt fresh (s : stmt) : stmt list =
  match s with
  | Assign (x, e) ->
    let acc, e' = flatten_node fresh [] e in
    acc @ [ Assign (x, e') ]
  | Store (arr, i, v) ->
    let acc, i = atomize fresh [] i in
    let acc, v = atomize fresh acc v in
    acc @ [ Store (arr, i, v) ]
  | Atomic_min (arr, i, v) ->
    let acc, i = atomize fresh [] i in
    let acc, v = atomize fresh acc v in
    acc @ [ Atomic_min (arr, i, v) ]
  | Atomic_add (arr, i, v) ->
    let acc, i = atomize fresh [] i in
    let acc, v = atomize fresh acc v in
    acc @ [ Atomic_add (arr, i, v) ]
  | Prefetch (arr, i) ->
    let acc, i = atomize fresh [] i in
    acc @ [ Prefetch (arr, i) ]
  | Enq (q, e) ->
    let acc, e = atomize fresh [] e in
    acc @ [ Enq (q, e) ]
  | Enq_ctrl _ -> [ s ]
  | Enq_indexed (qs, sel, e) ->
    let acc, sel = atomize fresh [] sel in
    let acc, e = atomize fresh acc e in
    acc @ [ Enq_indexed (qs, sel, e) ]
  | If (site, c, t, f) ->
    let acc, c = atomize fresh [] c in
    acc @ [ If (site, c, norm_block fresh t, norm_block fresh f) ]
  | While (site, c, b) ->
    if simple_cond c then [ While (site, c, norm_block fresh b) ]
    else begin
      let acc, c' = atomize fresh [] c in
      let guard =
        acc @ [ If (fresh_site (), Unop (Not, c'), [ Break ], []) ]
      in
      [ While (site, Const (Vint 1), guard @ norm_block fresh b) ]
    end
  | For (site, v, lo, hi, b) ->
    let acc, lo = atomize fresh [] lo in
    let acc, hi = atomize fresh acc hi in
    acc @ [ For (site, v, lo, hi, norm_block fresh b) ]
  | Break | Exit_loops _ | Barrier _ | Seq_marker _ -> [ s ]

and norm_block fresh stmts = List.concat_map (norm_stmt fresh) stmts

let body stmts =
  let n = ref 0 in
  let fresh () =
    incr n;
    Printf.sprintf "__n%d" !n
  in
  norm_block fresh stmts
