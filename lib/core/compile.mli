(** Phloem's top-level compilation entry points (paper Fig. 8).

    A "serial pipeline" below is a single-stage {!Phloem_ir.Types.pipeline},
    typically produced by {!Phloem_minic.Lower.to_serial_pipeline}. Both
    flows run the registered pass list from {!Passes.standard} through
    {!Pass.Manager}; the [_report] variants expose the manager's per-pass
    timing/op-count report and accept {!Pass.options} for per-pass
    verification ([verify_each]) and IR snapshots ([dump_ir]). *)

exception Unsupported of string
(** Raised when no legal decoupling exists (alias of {!Decouple.Reject}). *)

val candidates : Phloem_ir.Types.pipeline -> Costmodel.cut list
(** The cost model's ranked decoupling points for a serial kernel,
    best first. *)

val with_cuts :
  ?flags:Decouple.flags ->
  ?options:Pass.options ->
  Phloem_ir.Types.pipeline ->
  Costmodel.cut list ->
  Phloem_ir.Types.pipeline
(** Compile with an explicit cut selection (the profile-guided search uses
    this); applies the pass gates in [flags], scan-chaining/cleanup, and
    validates the result against the architecture's queue/RA limits.
    @raise Unsupported if the cuts are illegal.
    @raise Pass.Verify_failed if [options.verify_each] catches a malformed
    intermediate pipeline. *)

val with_cuts_report :
  ?flags:Decouple.flags ->
  ?options:Pass.options ->
  Phloem_ir.Types.pipeline ->
  Costmodel.cut list ->
  Phloem_ir.Types.pipeline * Pass.report
(** [with_cuts], also returning the pass manager's report. *)

val static_flow :
  ?flags:Decouple.flags ->
  ?options:Pass.options ->
  ?stages:int ->
  Phloem_ir.Types.pipeline ->
  Phloem_ir.Types.pipeline
(** The static compilation mode: greedily select up to [stages]-1 of the
    highest-ranked legal decoupling points and emit one pipeline.
    @raise Unsupported if no cut is legal. *)

val static_flow_report :
  ?flags:Decouple.flags ->
  ?options:Pass.options ->
  ?stages:int ->
  Phloem_ir.Types.pipeline ->
  Phloem_ir.Types.pipeline * Pass.report
(** [static_flow], also returning the pass manager's report for the winning
    cut selection (the greedy search itself runs uninstrumented). *)

val from_minic_source :
  ?flags:Decouple.flags ->
  ?options:Pass.options ->
  ?stages:int ->
  string ->
  arrays:(string * Phloem_ir.Types.value array) list ->
  scalars:(string * Phloem_ir.Types.value) list ->
  Phloem_ir.Types.pipeline * (string * Phloem_ir.Types.value array) list
(** Compile minic source text end to end, binding array parameters to the
    given contents; returns the pipeline and the inputs to pass to
    {!Pipette.Sim.run}. *)

val from_minic_source_report :
  ?flags:Decouple.flags ->
  ?options:Pass.options ->
  ?stages:int ->
  string ->
  arrays:(string * Phloem_ir.Types.value array) list ->
  scalars:(string * Phloem_ir.Types.value) list ->
  Phloem_ir.Types.pipeline * Pass.report * (string * Phloem_ir.Types.value array) list
(** [from_minic_source], also returning the pass manager's report. *)
