(* Post passes on a generated pipeline:
   - scan chaining: a stage whose steady-state work is "dequeue a start/end
     pair, stream arr[start..end)" is replaced by a SCAN reference
     accelerator chained after the producing queue (paper Sec. III,
     "chained RAs").
   - stage elision: stages left with no effects (no stores, enqueues to live
     queues, or prefetches) are deleted together with their private queues.
   - queue compaction: surviving queues are renumbered densely. *)

open Phloem_ir.Types

(* Detect the scan shape inside a statement list; returns
   (pair_queue, out_queue_or_load) on success. Two flavors:
   - [a = deq q; b = deq q; for e in a..b { x = load arr e; enq qo x }]
   - [a = deq q; b = deq q; for e in a..b { enq qo e }]   (RA-fed variant)
   possibly wrapped in the control-value check produced by the CV pass. *)
type scan_match = {
  sm_pair_q : int;
  sm_body_kind : [ `Load of array_id * int (* out queue *) | `Index of int ];
}

let match_scan_region (body : stmt list) : scan_match option =
  let match_for a b = function
    | For (_, e, Var a', Var b', forbody) when a' = a && b' = b -> (
      match forbody with
      | [ Assign (x, Load (arr, Var e')); Enq (qo, Var x') ] when e' = e && x' = x ->
        Some (`Load (arr, qo))
      | [ Enq (qo, Var e') ] when e' = e -> Some (`Index qo)
      | _ -> None)
    | _ -> None
  in
  match body with
  | [ Assign (a, Deq q); Assign (b, Deq q'); forstmt ] when q = q' ->
    Option.map (fun k -> { sm_pair_q = q; sm_body_kind = k }) (match_for a b forstmt)
  | [ Assign (a, Deq q); If (_, Is_control (Var a'), _, [ Assign (b, Deq q'); forstmt ]) ]
    when q = q' && a' = a ->
    Option.map (fun k -> { sm_pair_q = q; sm_body_kind = k }) (match_for a b forstmt)
  | _ -> None

(* Find a while(1) whose body is a scan region anywhere in a stage body;
   returns the match and the body with that while removed. *)
let rec extract_scan (stmts : stmt list) : (scan_match * stmt list) option =
  match stmts with
  | [] -> None
  | While (site, Const (Vint 1), wbody) :: rest -> (
    match match_scan_region wbody with
    | Some m -> Some (m, rest)
    | None -> (
      match extract_scan wbody with
      | Some (m, wbody') -> Some (m, While (site, Const (Vint 1), wbody') :: rest)
      | None ->
        Option.map (fun (m, rest') -> (m, While (site, Const (Vint 1), wbody) :: rest'))
          (extract_scan rest)))
  | While (site, c, wbody) :: rest -> (
    match extract_scan wbody with
    | Some (m, wbody') -> Some (m, While (site, c, wbody') :: rest)
    | None ->
      Option.map (fun (m, rest') -> (m, While (site, c, wbody) :: rest'))
        (extract_scan rest))
  | For (site, v, lo, hi, fbody) :: rest -> (
    match extract_scan fbody with
    | Some (m, fbody') -> Some (m, For (site, v, lo, hi, fbody') :: rest)
    | None ->
      Option.map (fun (m, rest') -> (m, For (site, v, lo, hi, fbody) :: rest'))
        (extract_scan rest))
  | s :: rest -> Option.map (fun (m, rest') -> (m, s :: rest')) (extract_scan rest)

(* --- effect & queue usage analysis --- *)

let rec stmts_have_effect stmts =
  List.exists
    (fun s ->
      match s with
      | Store _ | Atomic_min _ | Atomic_add _ | Prefetch _ | Enq _ | Enq_ctrl _
      | Enq_indexed _ ->
        true
      | Assign _ | Break | Exit_loops _ | Barrier _ | Seq_marker _ -> false
      | If (_, _, t, f) -> stmts_have_effect t || stmts_have_effect f
      | While (_, _, b) | For (_, _, _, _, b) -> stmts_have_effect b)
    stmts

let rec expr_deqs acc = function
  | Deq q -> q :: acc
  | Const _ | Var _ -> acc
  | Binop (_, a, b) -> expr_deqs (expr_deqs acc a) b
  | Unop (_, a) | Is_control a | Ctrl_payload a -> expr_deqs acc a
  | Load (_, i) -> expr_deqs acc i
  | Call (_, args) -> List.fold_left expr_deqs acc args

let rec stmt_queues ~enqs ~deqs s =
  match s with
  | Assign (_, e) -> deqs := expr_deqs !deqs e
  | Store (_, i, v) | Atomic_min (_, i, v) | Atomic_add (_, i, v) ->
    deqs := expr_deqs (expr_deqs !deqs i) v
  | Prefetch (_, i) -> deqs := expr_deqs !deqs i
  | Enq (q, e) ->
    enqs := q :: !enqs;
    deqs := expr_deqs !deqs e
  | Enq_ctrl (q, _) -> enqs := q :: !enqs
  | Enq_indexed (qs, a, b) ->
    enqs := Array.to_list qs @ !enqs;
    deqs := expr_deqs (expr_deqs !deqs a) b
  | If (_, c, t, f) ->
    deqs := expr_deqs !deqs c;
    List.iter (stmt_queues ~enqs ~deqs) t;
    List.iter (stmt_queues ~enqs ~deqs) f
  | While (_, c, b) ->
    deqs := expr_deqs !deqs c;
    List.iter (stmt_queues ~enqs ~deqs) b
  | For (_, _, lo, hi, b) ->
    deqs := expr_deqs (expr_deqs !deqs lo) hi;
    List.iter (stmt_queues ~enqs ~deqs) b
  | Break | Exit_loops _ | Barrier _ | Seq_marker _ -> ()

let stage_queues (st : stage) =
  let enqs = ref [] and deqs = ref [] in
  List.iter (stmt_queues ~enqs ~deqs) st.s_body;
  List.iter
    (fun h ->
      deqs := h.h_queue :: !deqs;
      List.iter (stmt_queues ~enqs ~deqs) h.h_body)
    st.s_handlers;
  (List.sort_uniq compare !enqs, List.sort_uniq compare !deqs)

(* Remove enqueues targeting dead queues. *)
let rec prune_enqs dead stmts =
  List.filter_map
    (fun s ->
      match s with
      | Enq (q, _) when List.mem q dead -> None
      | Enq_ctrl (q, _) when List.mem q dead -> None
      | If (site, c, t, f) -> Some (If (site, c, prune_enqs dead t, prune_enqs dead f))
      | While (site, c, b) -> Some (While (site, c, prune_enqs dead b))
      | For (site, v, lo, hi, b) -> Some (For (site, v, lo, hi, prune_enqs dead b))
      | _ -> Some s)
    stmts

(* One chaining step: returns Some pipeline if something changed. *)
let chain_step (p : pipeline) : pipeline option =
  let rec try_stages before = function
    | [] -> None
    | st :: after -> (
      match extract_scan st.s_body with
      | None -> try_stages (before @ [ st ]) after
      | Some ({ sm_body_kind = `Load _; _ }, _) when List.length p.p_ras >= 4 ->
        (* no RA left to allocate *)
        try_stages (before @ [ st ]) after
      | Some (m, residual_body) ->
        (* the extracted loop's control-value handler leaves with it: keep
           only handlers guarding queues the residual body still dequeues *)
        let residual =
          let _, deqs = stage_queues { st with s_body = residual_body; s_handlers = [] } in
          {
            st with
            s_body = residual_body;
            s_handlers = List.filter (fun h -> List.mem h.h_queue deqs) st.s_handlers;
          }
        in
        (* Register the scan RA. *)
        let p' =
          match m.sm_body_kind with
          | `Load (arr, qo) ->
            let ra_id =
              1 + List.fold_left (fun a (r : ra_config) -> max a r.ra_id) (-1) p.p_ras
            in
            {
              p with
              p_ras =
                p.p_ras
                @ [
                    {
                      ra_id;
                      ra_in = m.sm_pair_q;
                      ra_out = qo;
                      ra_array = arr;
                      ra_mode = Ra_scan;
                    };
                  ];
            }
          | `Index qo ->
            (* retarget the existing indirect RA fed by qo *)
            {
              p with
              p_ras =
                List.map
                  (fun (r : ra_config) ->
                    if r.ra_in = qo then { r with ra_in = m.sm_pair_q; ra_mode = Ra_scan }
                    else r)
                  p.p_ras;
            }
        in
        (* If the residual stage has no effects, drop it entirely. *)
        let keep_stage = stmts_have_effect residual.s_body in
        let stages' =
          if keep_stage then before @ [ residual ] @ after else before @ after
        in
        Some { p' with p_stages = stages' })
  in
  try_stages [] p.p_stages

(* Drop queues nobody dequeues (after elision), pruning their enqueues. *)
(* Iterate: drop effect-free stages, orphaned handlers, queues nobody
   dequeues (pruning their enqueues), and RAs whose output is dead. *)
let cleanup (p : pipeline) : pipeline =
  let step p =
    (* stages with no observable effects disappear *)
    let stages =
      match List.filter (fun st -> stmts_have_effect st.s_body) p.p_stages with
      | [] -> p.p_stages
      | ss -> ss
    in
    (* handlers must guard queues their stage still dequeues *)
    let stages =
      List.map
        (fun st ->
          let _, deqs = stage_queues { st with s_handlers = [] } in
          {
            st with
            s_handlers = List.filter (fun h -> List.mem h.h_queue deqs) st.s_handlers;
          })
        stages
    in
    let p = { p with p_stages = stages } in
    let live_deqs =
      List.concat_map (fun st -> snd (stage_queues st)) p.p_stages
      @ List.map (fun (r : ra_config) -> r.ra_in) p.p_ras
    in
    (* RAs with a dead output are dead; their inputs die with them *)
    let dead_ras =
      List.filter (fun (r : ra_config) -> not (List.mem r.ra_out live_deqs)) p.p_ras
    in
    let ras = List.filter (fun r -> not (List.mem r dead_ras)) p.p_ras in
    let live_deqs =
      List.concat_map (fun st -> snd (stage_queues st)) p.p_stages
      @ List.map (fun (r : ra_config) -> r.ra_in) ras
    in
    let dead =
      List.filter_map
        (fun (q : queue_decl) ->
          if List.mem q.q_id live_deqs then None else Some q.q_id)
        p.p_queues
    in
    {
      p with
      p_stages =
        List.map (fun st -> { st with s_body = prune_enqs dead st.s_body }) p.p_stages;
      p_ras = ras;
      p_queues = List.filter (fun q -> not (List.mem q.q_id dead)) p.p_queues;
    }
  in
  let rec go p =
    let p' = step p in
    if p' = p then p else go p'
  in
  go p

(* Scan-chaining alone (to a fixpoint), without the cleanup; registered as
   its own pass so cleanup can run and be observed separately. *)
let chain (p : pipeline) : pipeline =
  let rec go p = match chain_step p with Some p' -> go p' | None -> p in
  go p

let apply (p : pipeline) : pipeline = cleanup (chain p)
