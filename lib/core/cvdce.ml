(* Control-value conversion and inter-stage DCE for the decouple pass
   (phase C, second half).

   Consumer loops whose bounds are queued per iteration become while(true)
   loops terminated by in-band control values (cv gate); control-value
   levels downstream stages do not need are merged away, exit sites are
   reconciled across stages, and conditionals whose payloads are enqueued
   under the producer's condition are elided in consumers (dce gate). *)

module K = Ktree
module Ctx = Stage_assign
module C = Commplan

(* CV conversion: consumer loops become while(true) terminated by in-band
   control values. Decided innermost-first so that an outer loop's primary
   payload is a value the stage still receives. *)
let convert_loops (ctx : Ctx.context) (d : C.decisions) =
  if ctx.Ctx.flags.Pass.f_cv then begin
    let rec post_order nodes =
      List.iter
        (fun node ->
          (match node with
          | K.Kif (_, _, _, t, f) ->
            post_order t;
            post_order f
          | K.Kwhile (_, _, _, b) | K.Kfor (_, _, _, _, _, b) -> post_order b
          | K.Kstmt _ -> ());
          match node with
          | K.Kfor (k, site, v, lo, hi, _) ->
            let bound_vars = K.expr_uses (K.expr_uses [] lo) hi in
            List.iter
              (fun s ->
                (* convert only loops whose bounds would need a queue *)
                let nonlocal_bounds =
                  List.exists (fun x -> C.consumed_by ctx d s x) bound_vars
                in
                (* induction var used by stage s? then keep the For *)
                let v_used =
                  match Hashtbl.find_opt d.C.d_uses v with
                  | None -> false
                  | Some uses ->
                    List.exists (fun (s', o) -> s' = s && o = C.Ostmt) !uses
                in
                if nonlocal_bounds && not v_used then begin
                  (* primary payload: the first value the stage still
                     receives per iteration of this loop *)
                  let primary =
                    Hashtbl.fold
                      (fun x _ best ->
                        if C.still_consumed ctx d s x then
                          match Ctx.channel_defs ctx x with
                          | dk :: _
                            when Ctx.innermost ctx dk = k && not (List.mem x bound_vars)
                            -> (
                            match best with
                            | Some (bk, _) when bk <= dk -> best
                            | _ -> Some (dk, x))
                          | _ -> best
                        else best)
                      d.C.d_uses None
                  in
                  match primary with
                  | Some (_, x) ->
                    Hashtbl.replace d.C.d_converted (s, k) x;
                    Hashtbl.replace d.C.d_exit_site (s, k) site
                  | None -> ()
                end)
              (C.needs_of d k)
          | K.Kstmt _ | K.Kif _ | K.Kwhile _ -> ())
        nodes
    in
    post_order ctx.Ctx.tree
  end

(* DCE: merge converted loops upward through ancestors whose only content
   (for this stage) is the converted loop and its dropped bounds. *)
let merge_converted (ctx : Ctx.context) (d : C.decisions) =
  if ctx.Ctx.flags.Pass.f_cv && ctx.Ctx.flags.Pass.f_dce then begin
    let content_at s p ~excluding_loop:l =
      (* any simple stmt of stage s, or def position consumed by s, whose
         innermost loop is p and which is not inside l's subtree *)
      let inside_l k = List.mem l (Hashtbl.find ctx.Ctx.parent_loops k) || k = l in
      let found = ref false in
      K.iter_list
        (fun node ->
          match node with
          | K.Kstmt (k, stmt) when Ctx.innermost ctx k = p && not (inside_l k) -> (
            if
              (not !found)
              && ctx.Ctx.stage_of.(k) = s
              && not (Hashtbl.mem ctx.Ctx.replicated_keys k)
            then found := true;
            if not !found then
              match K.stmt_def stmt with
              | Some x ->
                if C.consumed_by ctx d s x then begin
                  (* a dropped bound of the converted loop doesn't count *)
                  let is_dropped_bound =
                    match ctx.Ctx.key_node.(l) with
                    | Some (K.Kfor (_, _, _, lo, hi, _)) ->
                      Hashtbl.mem d.C.d_converted (s, l)
                      && List.mem x (K.expr_uses (K.expr_uses [] lo) hi)
                    | _ -> false
                  in
                  if not is_dropped_bound then found := true
                end
              | None -> ())
          | K.Kstmt _ | K.Kif _ | K.Kwhile _ | K.Kfor _ -> ())
        ctx.Ctx.tree;
      !found
    in
    let converted = Hashtbl.fold (fun k v acc -> (k, v) :: acc) d.C.d_converted [] in
    List.iter
      (fun ((s, l), _primary) ->
        (* walk up through Kfor ancestors *)
        (* a barrier anywhere at the current level must fire once per
           iteration of the parent, so it blocks merging upward *)
        let barrier_at_level p cur =
          Hashtbl.fold
            (fun bk () acc -> acc || bk = cur || Ctx.innermost ctx bk = p)
            d.C.d_barrier_before false
        in
        let rec up cur =
          match Hashtbl.find ctx.Ctx.parent_loops cur with
          | p :: _ -> (
            match ctx.Ctx.key_node.(p) with
            | Some (K.Kfor (_, psite, _, _, _, _))
              when List.mem s (C.needs_of d p)
                   && (not (content_at s p ~excluding_loop:cur))
                   && not (barrier_at_level p cur) ->
              Hashtbl.replace d.C.d_merged (s, p) ();
              Hashtbl.replace d.C.d_exit_site (s, l) psite;
              up p
            | _ -> ())
          | [] -> ()
        in
        up l)
      converted
  end

(* Consistency: every stage that converts the same loop must exit it at
   the same control-value level, or producers and consumers disagree on
   how many control values flow. On disagreement, demote all of them to
   the unmerged (per-loop) level. *)
let reconcile_exit_sites (ctx : Ctx.context) (d : C.decisions) =
  if ctx.Ctx.flags.Pass.f_cv && ctx.Ctx.flags.Pass.f_dce then begin
    let by_loop = Hashtbl.create 8 in
    Hashtbl.iter
      (fun (s, l) _ ->
        let cur = try Hashtbl.find by_loop l with Not_found -> [] in
        Hashtbl.replace by_loop l (s :: cur))
      d.C.d_converted;
    Hashtbl.iter
      (fun l stages ->
        let sites =
          List.sort_uniq compare
            (List.map (fun s -> Hashtbl.find d.C.d_exit_site (s, l)) stages)
        in
        if List.length sites > 1 then begin
          let own_site =
            match ctx.Ctx.key_node.(l) with
            | Some (K.Kfor (_, site, _, _, _, _)) -> site
            | _ -> l
          in
          List.iter
            (fun s ->
              Hashtbl.replace d.C.d_exit_site (s, l) own_site;
              List.iter
                (fun p -> Hashtbl.remove d.C.d_merged (s, p))
                (Hashtbl.find ctx.Ctx.parent_loops l))
            stages
        end)
      by_loop
  end

(* DCE: conditional elision for consumers whose per-iteration payloads are
   all enqueued under the producer's condition. *)
let elide_conditionals (ctx : Ctx.context) (d : C.decisions) =
  if ctx.Ctx.flags.Pass.f_cv && ctx.Ctx.flags.Pass.f_dce then begin
    K.iter_list
      (fun node ->
        match node with
        | K.Kif (k, _, cond, _tb, fb) when fb = [] ->
          let cond_vars = K.expr_uses [] cond in
          List.iter
            (fun s ->
              let enclosing_loop = Ctx.innermost ctx k in
              let loop_converted =
                enclosing_loop >= 0 && Hashtbl.mem d.C.d_converted (s, enclosing_loop)
              in
              let cond_nonlocal =
                List.exists (fun x -> C.consumed_by ctx d s x) cond_vars
              in
              if loop_converted && cond_nonlocal then begin
                (* every channel consumed by s at this loop level must have
                   its defs inside this If, and s must own no simple stmts
                   at the loop level outside the If *)
                let ok = ref true in
                K.iter_list
                  (fun n2 ->
                    match n2 with
                    | K.Kstmt (k2, stmt2)
                      when Ctx.innermost ctx k2 = enclosing_loop
                           && not (List.mem k (Hashtbl.find ctx.Ctx.parent_ifs k2)) -> (
                      if
                        ctx.Ctx.stage_of.(k2) = s
                        && not (Hashtbl.mem ctx.Ctx.replicated_keys k2)
                      then ok := false;
                      match K.stmt_def stmt2 with
                      | Some x ->
                        if C.consumed_by ctx d s x then begin
                          let is_bound =
                            match ctx.Ctx.key_node.(enclosing_loop) with
                            | Some (K.Kfor (_, _, _, lo, hi, _)) ->
                              List.mem x (K.expr_uses (K.expr_uses [] lo) hi)
                            | _ -> false
                          in
                          if not is_bound then ok := false
                        end
                      | None -> ())
                    | _ -> ())
                  ctx.Ctx.tree;
                (* ...and s must actually have content inside the If *)
                let has_content = ref false in
                K.iter_list
                  (fun n2 ->
                    match n2 with
                    | K.Kstmt (k2, _)
                      when List.mem k (Hashtbl.find ctx.Ctx.parent_ifs k2)
                           && (ctx.Ctx.stage_of.(k2) = s
                              ||
                              match
                                K.stmt_def
                                  (match n2 with
                                  | K.Kstmt (_, st) -> st
                                  | _ -> assert false)
                              with
                              | Some x -> C.consumed_by ctx d s x
                              | None -> false) ->
                      has_content := true
                    | _ -> ())
                  ctx.Ctx.tree;
                if !ok && !has_content then Hashtbl.replace d.C.d_elided (s, k) ()
              end)
            (C.needs_of d k)
        | K.Kstmt _ | K.Kif _ | K.Kwhile _ | K.Kfor _ -> ())
      ctx.Ctx.tree
  end
