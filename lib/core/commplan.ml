(* Communication planning for the decouple pass (phase C, first half).

   Computes which variables each stage consumes and which control nodes each
   stage needs (a fixpoint over control-expression uses and def-position
   contexts), decides rematerialization (recompute gate), places barriers
   between sibling loop nests with cross-stage array dependences, and, after
   the CV/DCE decisions (see Cvdce), builds the communication channels,
   assigns reference accelerators, and plans control-value emission. *)

open Phloem_ir.Types
module K = Ktree
module Ctx = Stage_assign

(* A communication channel: one or more variables (a merged cut group)
   flowing from a producer stage through a forward chain and/or backward
   edges. *)
type channel = {
  ch_vars : var list;
  ch_def_stage : int;
  ch_def_keys : int list; (* def keys, program order *)
  mutable ch_chain : (int * int) list; (* (stage, queue into that stage), forward *)
  mutable ch_back : (int * int) list; (* (stage, queue), feedback *)
  mutable ch_ra : int option; (* RA id when the producing loads are offloaded *)
  mutable ch_ra_in : int; (* RA input queue (valid when ch_ra set) *)
}

type use_origin = Ostmt | Obound of int (* loop key *) | Ocond of int (* if key *)

type decisions = {
  d_uses : (var, (int * use_origin) list ref) Hashtbl.t; (* var -> (stage, origin) *)
  d_needs : (int, int list ref) Hashtbl.t; (* control key -> stages *)
  d_recomputed : (int * var, unit) Hashtbl.t; (* (stage, var) *)
  d_converted : (int * int, var) Hashtbl.t; (* (stage, loop key) -> primary var *)
  d_exit_site : (int * int, int) Hashtbl.t; (* (stage, loop key) -> CV site *)
  d_merged : (int * int, unit) Hashtbl.t; (* (stage, ancestor loop key) emits nothing *)
  d_elided : (int * int, unit) Hashtbl.t; (* (stage, if key) *)
  d_barrier_before : (int, unit) Hashtbl.t; (* node keys preceded by a barrier *)
  mutable d_channels : channel list;
  d_var_channel : (var, channel) Hashtbl.t;
  (* (emitter stage, loop key) -> (queue, site) list: enq_ctrl after the loop *)
  d_cv_emits : (int * int, (int * int) list ref) Hashtbl.t;
  mutable d_next_queue : int;
  mutable d_next_ra : int;
  mutable d_ras : ra_config list;
}

let create () : decisions =
  {
    d_uses = Hashtbl.create 64;
    d_needs = Hashtbl.create 64;
    d_recomputed = Hashtbl.create 16;
    d_converted = Hashtbl.create 16;
    d_exit_site = Hashtbl.create 16;
    d_merged = Hashtbl.create 16;
    d_elided = Hashtbl.create 16;
    d_barrier_before = Hashtbl.create 4;
    d_channels = [];
    d_var_channel = Hashtbl.create 16;
    d_cv_emits = Hashtbl.create 8;
    d_next_queue = 0;
    d_next_ra = 0;
    d_ras = [];
  }

(* ---------- shared accessors over the decision state ---------- *)

let add_use d x s origin =
  let l =
    match Hashtbl.find_opt d.d_uses x with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.replace d.d_uses x l;
      l
  in
  if not (List.mem (s, origin) !l) then l := (s, origin) :: !l

let needs_of d k = match Hashtbl.find_opt d.d_needs k with Some l -> !l | None -> []

(* Returns true when the need was new. *)
let add_need d k s =
  let l =
    match Hashtbl.find_opt d.d_needs k with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.replace d.d_needs k l;
      l
  in
  if not (List.mem s !l) then begin
    l := s :: !l;
    true
  end
  else false

(* Does stage s consume x through a queue (not local, not recomputed)? *)
let consumed_by ctx d s x =
  (not (Ctx.local ctx ~stage:s x))
  && (not (Hashtbl.mem d.d_recomputed (s, x)))
  &&
  match Hashtbl.find_opt d.d_uses x with
  | None -> false
  | Some uses -> List.exists (fun (s', _) -> s' = s) !uses

(* Is x still communicated to s given decisions so far? A use that is
   only the bound of an already-converted loop no longer counts. *)
let still_consumed ctx d s x =
  consumed_by ctx d s x
  &&
  match Hashtbl.find_opt d.d_uses x with
  | None -> false
  | Some uses ->
    List.exists
      (fun (s', o) ->
        s' = s
        &&
        match o with
        | Ostmt -> true
        | Obound l -> not (Hashtbl.mem d.d_converted (s, l))
        | Ocond i -> not (Hashtbl.mem d.d_elided (s, i)))
      !uses

(* Final consumer sets, with converted-loop bounds and elided-If conds
   dropped. *)
let final_consumers ctx d x =
  match Hashtbl.find_opt d.d_uses x with
  | None -> []
  | Some uses ->
    List.sort_uniq compare
      (List.filter_map
         (fun (s, origin) ->
           if s < 0 || Ctx.local ctx ~stage:s x || Hashtbl.mem d.d_recomputed (s, x)
           then None
           else
             match origin with
             | Obound l when Hashtbl.mem d.d_converted (s, l) ->
               (* still consumed if used elsewhere by s *)
               if
                 List.exists
                   (fun (s', o') ->
                     s' = s
                     && o' <> origin
                     &&
                     match o' with
                     | Obound l' -> not (Hashtbl.mem d.d_converted (s, l'))
                     | Ocond i' -> not (Hashtbl.mem d.d_elided (s, i'))
                     | Ostmt -> true)
                   !uses
               then Some s
               else None
             | Ocond i when Hashtbl.mem d.d_elided (s, i) ->
               if
                 List.exists
                   (fun (s', o') ->
                     s' = s
                     && o' <> origin
                     &&
                     match o' with
                     | Obound l' -> not (Hashtbl.mem d.d_converted (s, l'))
                     | Ocond i' -> not (Hashtbl.mem d.d_elided (s, i'))
                     | Ostmt -> true)
                   !uses
               then Some s
               else None
             | Obound l -> (
               (* needed for the For bound if s emits the For *)
               ignore l;
               Some s)
             | Ocond _ | Ostmt -> Some s)
         !uses)

(* ---------- uses/needs analysis (seed + fixpoint) ---------- *)

let analyze (ctx : Ctx.context) (d : decisions) =
  (* seed: simple stmt uses and needs *)
  K.iter_list
    (fun node ->
      match node with
      | K.Kstmt (k, stmt) ->
        let s =
          if Hashtbl.mem ctx.Ctx.replicated_keys k then -2 (* everywhere *)
          else ctx.Ctx.stage_of.(k)
        in
        if s >= 0 then begin
          List.iter (fun x -> add_use d x s Ostmt) (K.stmt_uses stmt);
          List.iter
            (fun a -> ignore (add_need d a s))
            (Hashtbl.find ctx.Ctx.ancestors k);
          match Hashtbl.find_opt ctx.Ctx.prefetch_from k with
          | Some p ->
            (* the producer prefetches: it needs the index and the loops *)
            List.iter (fun x -> add_use d x p Ostmt) (K.stmt_uses stmt);
            List.iter
              (fun a -> ignore (add_need d a p))
              (Hashtbl.find ctx.Ctx.ancestors k)
          | None -> ()
        end
      | K.Kif _ | K.Kwhile _ | K.Kfor _ -> ())
    ctx.Ctx.tree;
  (* fixpoint: control uses and def-position needs *)
  let changed = ref true in
  while !changed do
    changed := false;
    (* an If that can break a loop must replicate into every stage that has
       the loop, or their copies would never exit *)
    K.iter_list
      (fun node ->
        match node with
        | K.Kif (k, _, _, tb, fb) ->
          let rec directly_breaks ns =
            List.exists
              (function
                | K.Kstmt (_, (Break | Exit_loops _)) -> true
                | K.Kstmt _ | K.Kwhile _ | K.Kfor _ -> false
                | K.Kif (_, _, _, t, f) -> directly_breaks t || directly_breaks f)
              ns
          in
          if directly_breaks tb || directly_breaks fb then (
            match Hashtbl.find ctx.Ctx.parent_loops k with
            | l :: _ ->
              List.iter
                (fun s -> if add_need d k s then changed := true)
                (needs_of d l)
            | [] -> ())
        | K.Kstmt _ | K.Kwhile _ | K.Kfor _ -> ())
      ctx.Ctx.tree;
    (* register control-expression uses for needing stages *)
    K.iter_list
      (fun node ->
        match node with
        | K.Kstmt _ -> ()
        | K.Kif (k, _, _, _, _) ->
          List.iter
            (fun s ->
              List.iter (fun x -> add_use d x s (Ocond k)) (Ctx.node_cond_vars node))
            (needs_of d k)
        | K.Kwhile (k, _, _, _) ->
          List.iter
            (fun s ->
              List.iter (fun x -> add_use d x s (Ocond k)) (Ctx.node_cond_vars node))
            (needs_of d k)
        | K.Kfor (k, _, _, _, _, _) ->
          List.iter
            (fun s ->
              List.iter (fun x -> add_use d x s (Obound k)) (Ctx.node_cond_vars node))
            (needs_of d k))
      ctx.Ctx.tree;
    (* consumers need the control context of each def position *)
    Hashtbl.iter
      (fun x uses ->
        List.iter
          (fun (s, _) ->
            if s >= 0 && not (Ctx.local ctx ~stage:s x) then
              List.iter
                (fun dk ->
                  List.iter
                    (fun a -> if add_need d a s then changed := true)
                    (Hashtbl.find ctx.Ctx.ancestors dk))
                (Ctx.channel_defs ctx x))
          !uses)
      d.d_uses
  done

(* ---------- recompute (rematerialization) ---------- *)

let plan_recompute (ctx : Ctx.context) (d : decisions) =
  if ctx.Ctx.flags.Pass.f_recompute then begin
    (* a def is recomputable in stage s only when its full control context
       is available there: no enclosing If, and every enclosing loop is one
       the stage replicates *)
    let candidate ~stage:s x =
      Ctx.nonrep_defs ctx x <> []
      && List.for_all
           (fun k ->
             (match ctx.Ctx.key_node.(k) with
             | Some (K.Kstmt (_, Assign (_, rhs))) -> K.expr_is_pure rhs
             | _ -> false)
             && Hashtbl.find ctx.Ctx.parent_ifs k = []
             && List.for_all
                  (fun l -> List.mem s (needs_of d l))
                  (Hashtbl.find ctx.Ctx.parent_loops k))
           (Ctx.nonrep_defs ctx x)
    in
    let consumer_stages x =
      match Hashtbl.find_opt d.d_uses x with
      | None -> []
      | Some uses ->
        List.sort_uniq compare
          (List.filter_map
             (fun (s, _) ->
               if s >= 0 && not (Ctx.local ctx ~stage:s x) then Some s else None)
             !uses)
    in
    let all_vars = Hashtbl.fold (fun x _ acc -> x :: acc) d.d_uses [] in
    List.iter
      (fun x ->
        List.iter
          (fun s ->
            if candidate ~stage:s x then begin
              (* availability closure for stage s *)
              let rec avail ?(seen = []) y =
                if List.mem y seen then false
                else
                  Ctx.local ctx ~stage:s y
                  || Hashtbl.mem d.d_recomputed (s, y)
                  || (candidate ~stage:s y
                     && List.for_all
                          (fun k ->
                            match ctx.Ctx.key_node.(k) with
                            | Some (K.Kstmt (_, Assign (_, rhs))) ->
                              List.for_all
                                (fun z -> z = y || avail ~seen:(y :: seen) z)
                                (K.expr_uses [] rhs)
                            | _ -> false)
                          (Ctx.nonrep_defs ctx y))
              in
              if avail x then Hashtbl.replace d.d_recomputed (s, x) ()
            end)
          (consumer_stages x))
      all_vars
  end

(* ---------- barriers between sibling loop nests ---------- *)

let plan_barriers (ctx : Ctx.context) (d : decisions) =
  if ctx.Ctx.n_stages > 1 then begin
    let arrays_written nodes =
      let acc = ref [] in
      let rec go ns =
        List.iter
          (fun n ->
            match n with
            | K.Kstmt (k, (Store (a, _, _) | Atomic_min (a, _, _) | Atomic_add (a, _, _))) ->
              acc := (a, ctx.Ctx.stage_of.(k)) :: !acc
            | K.Kstmt _ -> ()
            | K.Kif (_, _, _, t, f) ->
              go t;
              go f
            | K.Kwhile (_, _, _, b) | K.Kfor (_, _, _, _, _, b) -> go b)
          ns
      in
      go nodes;
      !acc
    in
    let arrays_read nodes =
      let acc = ref [] in
      let rec go_expr k e =
        match e with
        | Load (a, i) ->
          acc := (a, ctx.Ctx.stage_of.(k)) :: !acc;
          go_expr k i
        | Binop (_, x, y) ->
          go_expr k x;
          go_expr k y
        | Unop (_, x) | Is_control x | Ctrl_payload x -> go_expr k x
        | Call (_, args) -> List.iter (go_expr k) args
        | Const _ | Var _ | Deq _ -> ()
      in
      let rec go ns =
        List.iter
          (fun n ->
            match n with
            | K.Kstmt (k, stmt) -> (
              match stmt with
              | Assign (_, e) | Enq (_, e) | Prefetch (_, e) -> go_expr k e
              | Store (_, i, v) | Atomic_min (_, i, v) | Atomic_add (_, i, v) ->
                go_expr k i;
                go_expr k v
              | Enq_indexed (_, a, b) ->
                go_expr k a;
                go_expr k b
              | _ -> ())
            | K.Kif (_, _, _, t, f) ->
              go t;
              go f
            | K.Kwhile (_, _, _, b) | K.Kfor (_, _, _, _, _, b) -> go b)
          ns
      in
      go nodes;
      !acc
    in
    let rec scan_siblings nodes =
      let loops =
        List.filter (function K.Kfor _ | K.Kwhile _ -> true | _ -> false) nodes
      in
      let conflicts n1 n2 =
        (* a write in n1 touching an array n2 accesses from another stage *)
        let reads2 = arrays_read [ n2 ] @ arrays_written [ n2 ] in
        List.exists
          (fun (a, t) ->
            List.exists (fun (a2, s2) -> a2 = a && s2 <> t && s2 >= 0 && t >= 0) reads2)
          (arrays_written [ n1 ])
      in
      List.iteri
        (fun j n2 ->
          let earlier = List.filteri (fun i _ -> i < j) loops in
          if List.exists (fun n1 -> conflicts n1 n2) earlier then
            Hashtbl.replace d.d_barrier_before (K.key n2) ())
        loops;
      (* wrap-around: a later sibling's writes feeding an earlier sibling's
         reads in the next iteration of the enclosing loop *)
      (match loops with
      | first :: _ :: _ ->
        let later = List.tl loops in
        if List.exists (fun n1 -> conflicts n1 first) later then
          Hashtbl.replace d.d_barrier_before (K.key first) ()
      | _ -> ());
      List.iter
        (function
          | K.Kif (_, _, _, t, f) ->
            scan_siblings t;
            scan_siblings f
          | K.Kwhile (_, _, _, b) | K.Kfor (_, _, _, _, _, b) -> scan_siblings b
          | K.Kstmt _ -> ())
        nodes
    in
    scan_siblings ctx.Ctx.tree
  end

(* ---------- channels, RAs, CV emission (after Cvdce decisions) ---------- *)

let build_channels (ctx : Ctx.context) (d : decisions) (cuts : Costmodel.cut list) =
  let fresh_queue () =
    let q = d.d_next_queue in
    d.d_next_queue <- q + 1;
    q
  in
  (* group id for cut-group merging: var -> cut head ordinal *)
  let cut_group_of x =
    let dks = Ctx.channel_defs ctx x in
    match dks with
    | [ dk ] when Hashtbl.mem ctx.Ctx.cut_head_keys dk ->
      let o = ctx.Ctx.load_ord.(dk) in
      List.find_map
        (fun (c : Costmodel.cut) ->
          if (not c.Costmodel.cut_prefetch) && List.mem o c.Costmodel.cut_loads then
            Some (List.hd c.Costmodel.cut_loads)
          else None)
        cuts
    | _ -> None
  in
  let all_vars =
    List.sort_uniq compare (Hashtbl.fold (fun x _ acc -> x :: acc) d.d_uses [])
  in
  let communicated =
    List.filter_map
      (fun x ->
        match final_consumers ctx d x with
        | [] -> None
        | consumers -> (
          match Ctx.def_stage_of ctx x with
          | None -> None (* params/replicated only *)
          | Some t -> Some (x, t, consumers)))
      all_vars
  in
  (* merge by cut group when consumer sets coincide *)
  let grouped : (int option * int * int list, (var * int) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (x, t, consumers) ->
      let g = cut_group_of x in
      let key = (g, t, consumers) in
      let key = if g = None then (Some (-1 - Hashtbl.hash x), t, consumers) else key in
      let l =
        match Hashtbl.find_opt grouped key with
        | Some l -> l
        | None ->
          let l = ref [] in
          Hashtbl.replace grouped key l;
          l
      in
      let dk = List.hd (Ctx.channel_defs ctx x) in
      l := (x, dk) :: !l)
    communicated;
  Hashtbl.iter
    (fun (_, t, consumers) members ->
      let members = List.sort (fun (_, a) (_, b) -> compare a b) !members in
      let vars = List.map fst members in
      let def_keys = List.concat_map (fun (x, _) -> Ctx.channel_defs ctx x) members in
      let forward = List.filter (fun s -> s > t) consumers in
      let backward = List.filter (fun s -> s < t) consumers in
      let chain = List.map (fun s -> (s, fresh_queue ())) forward in
      let back = List.map (fun s -> (s, fresh_queue ())) backward in
      let ch =
        {
          ch_vars = vars;
          ch_def_stage = t;
          ch_def_keys = List.sort compare def_keys;
          ch_chain = chain;
          ch_back = back;
          ch_ra = None;
          ch_ra_in = -1;
        }
      in
      d.d_channels <- ch :: d.d_channels;
      List.iter (fun x -> Hashtbl.replace d.d_var_channel x ch) vars)
    grouped

let assign_ras (ctx : Ctx.context) (d : decisions) =
  if ctx.Ctx.flags.Pass.f_ra then
    List.iter
      (fun ch ->
        if d.d_next_ra < 4 && ch.ch_back = [] && ch.ch_chain <> [] then begin
          let arrays =
            List.filter_map
              (fun k ->
                match ctx.Ctx.key_node.(k) with
                | Some (K.Kstmt (_, Assign (_, Load (a, _))))
                  when Hashtbl.mem ctx.Ctx.cut_head_keys k ->
                  Some a
                | _ -> None)
              ch.ch_def_keys
          in
          let producer_uses_locally =
            List.exists
              (fun x ->
                match Hashtbl.find_opt d.d_uses x with
                | None -> false
                | Some uses -> List.exists (fun (s, _) -> s = ch.ch_def_stage) !uses)
              ch.ch_vars
          in
          if
            List.length arrays = List.length ch.ch_def_keys
            && arrays <> []
            && List.for_all (fun a -> a = List.hd arrays) arrays
            && not producer_uses_locally
          then begin
            let ra_id = d.d_next_ra in
            d.d_next_ra <- ra_id + 1;
            let q_in =
              let q = d.d_next_queue in
              d.d_next_queue <- q + 1;
              q
            in
            ch.ch_ra <- Some ra_id;
            ch.ch_ra_in <- q_in;
            d.d_ras <-
              {
                ra_id;
                ra_in = q_in;
                ra_out = snd (List.hd ch.ch_chain);
                ra_array = List.hd arrays;
                ra_mode = Ra_indirect;
              }
              :: d.d_ras
          end
        end)
      d.d_channels

(* CV emission plan: the hop feeding each converted consumer re-emits the
   control value after its own copy of the effective loop. *)
let plan_cv_emits (ctx : Ctx.context) (d : decisions) =
  Hashtbl.iter
    (fun (s, l) primary ->
      match Hashtbl.find_opt d.d_var_channel primary with
      | None -> ()
      | Some ch ->
        let site = Hashtbl.find d.d_exit_site (s, l) in
        (* effective loop key for emission position *)
        let rec effective cur =
          match Hashtbl.find ctx.Ctx.parent_loops cur with
          | p :: _ when Hashtbl.mem d.d_merged (s, p) -> effective p
          | _ -> cur
        in
        let eff = effective l in
        (* find the hop before s in ch's chain *)
        let rec hop_before prev = function
          | [] -> None
          | (s', q) :: rest -> if s' = s then Some (prev, q) else hop_before (Some s') rest
        in
        (match hop_before None ch.ch_chain with
        | Some (prev_stage, q_into_s) ->
          let emitter, target =
            match (prev_stage, ch.ch_ra) with
            | None, Some _ -> (ch.ch_def_stage, ch.ch_ra_in)
            | None, None -> (ch.ch_def_stage, q_into_s)
            | Some p, _ -> (p, q_into_s)
          in
          let key = (emitter, eff) in
          let l' =
            match Hashtbl.find_opt d.d_cv_emits key with
            | Some l -> l
            | None ->
              let l = ref [] in
              Hashtbl.replace d.d_cv_emits key l;
              l
          in
          if not (List.mem (target, site) !l') then l' := (target, site) :: !l'
        | None -> ()))
    d.d_converted

(* ---------- queue lookup helpers used by the emitter ---------- *)

let queue_into ch s =
  match List.assoc_opt s ch.ch_chain with
  | Some q -> Some q
  | None -> List.assoc_opt s ch.ch_back

let next_link ch s =
  let rec go = function
    | (s', _) :: ((_, q2) :: _ as rest) -> if s' = s then Some q2 else go rest
    | _ -> None
  in
  go ch.ch_chain
