(* Stage assignment and context construction for the decouple pass.

   Phase A walks the keyed tree and assigns every statement to a pipeline
   stage according to the selected cuts (a prefetch-only cut puts the stage
   boundary *before* its load; a normal cut puts it after). Phase B derives
   the analysis context the later phases share: def positions, enclosing
   loops/ifs, induction variables, init replication, and movable-initializer
   sinking. *)

open Phloem_ir.Types
module K = Ktree

type context = {
  flags : Pass.flags;
  tree : K.t list;
  n_keys : int;
  stage_of : int array; (* key -> stage; -1 for control nodes *)
  load_ord : int array; (* key -> load ordinal or -1 *)
  prefetch_from : (int, int) Hashtbl.t; (* load key -> producer stage *)
  cut_head_keys : (int, unit) Hashtbl.t; (* keys of normal-cut loads (RA candidates) *)
  n_stages : int;
  parent_loops : (int, int list) Hashtbl.t; (* key -> enclosing loop keys, inner first *)
  ancestors : (int, int list) Hashtbl.t; (* key -> enclosing control nodes, inner first *)
  parent_ifs : (int, int list) Hashtbl.t; (* key -> enclosing If keys, inner first *)
  def_keys : (var, int list) Hashtbl.t;
  def_stages : (var, int list) Hashtbl.t;
  replicated : (var, unit) Hashtbl.t; (* vars whose every def is init-replicated *)
  replicated_keys : (int, unit) Hashtbl.t;
  induction_of : (var, int) Hashtbl.t; (* induction var -> loop key *)
  params : var list;
  key_node : K.t option array;
}

(* ---------- phase A: stage assignment ---------- *)

let assign_stages tree n_keys (cuts : Costmodel.cut list) =
  let stage_of = Array.make n_keys (-1) in
  let load_ord = Array.make n_keys (-1) in
  let prefetch_from = Hashtbl.create 4 in
  let cut_head_keys = Hashtbl.create 4 in
  (* ordinal -> cut info *)
  let cut_start = Hashtbl.create 8 in
  let cut_end = Hashtbl.create 8 in
  List.iter
    (fun (c : Costmodel.cut) ->
      let first = List.hd c.cut_loads in
      let last = List.nth c.cut_loads (List.length c.cut_loads - 1) in
      Hashtbl.replace cut_start first c;
      Hashtbl.replace cut_end last c)
    cuts;
  let ordinal = ref 0 in
  let stage = ref 0 in
  let rec walk nodes =
    List.iter
      (fun node ->
        match node with
        | K.Kstmt (k, stmt) -> (
          match K.stmt_load stmt with
          | None -> stage_of.(k) <- !stage
          | Some _ ->
            let o = !ordinal in
            incr ordinal;
            load_ord.(k) <- o;
            (match Hashtbl.find_opt cut_start o with
            | Some c when c.Costmodel.cut_prefetch ->
              (* boundary before the load; producer prefetches *)
              Hashtbl.replace prefetch_from k !stage;
              incr stage
            | Some _ | None -> ());
            stage_of.(k) <- !stage;
            (match Hashtbl.find_opt cut_end o with
            | Some c when not c.Costmodel.cut_prefetch ->
              List.iter (fun _ -> ()) c.Costmodel.cut_loads;
              Hashtbl.replace cut_head_keys k ();
              incr stage
            | Some _ | None -> ());
            (* non-tail members of a normal cut group are also RA-mergeable *)
            (match Hashtbl.find_opt cut_start o with
            | Some c when (not c.Costmodel.cut_prefetch) && List.length c.Costmodel.cut_loads > 1
              ->
              Hashtbl.replace cut_head_keys k ()
            | _ -> ()))
        | K.Kif (_, _, _, t, f) ->
          walk t;
          walk f
        | K.Kwhile (_, _, _, b) | K.Kfor (_, _, _, _, _, b) -> walk b)
      nodes
  in
  walk tree;
  (* middle members of normal groups: mark them too *)
  let rec mark_members nodes =
    List.iter
      (fun node ->
        match node with
        | K.Kstmt (k, stmt) -> (
          match K.stmt_load stmt with
          | Some _ ->
            let o = load_ord.(k) in
            List.iter
              (fun (c : Costmodel.cut) ->
                if (not c.Costmodel.cut_prefetch) && List.mem o c.Costmodel.cut_loads then
                  Hashtbl.replace cut_head_keys k ())
              cuts
          | None -> ())
        | K.Kif (_, _, _, t, f) ->
          mark_members t;
          mark_members f
        | K.Kwhile (_, _, _, b) | K.Kfor (_, _, _, _, _, b) -> mark_members b)
      nodes
  in
  mark_members tree;
  (stage_of, load_ord, prefetch_from, cut_head_keys, !stage + 1)

(* ---------- phase B: context construction ---------- *)

let build_context ?(flags = Pass.all_passes) ~params tree n_keys cuts =
  let stage_of, load_ord, prefetch_from, cut_head_keys, n_stages =
    assign_stages tree n_keys cuts
  in
  let parent_loops = Hashtbl.create 32 in
  let def_keys = Hashtbl.create 32 in
  let def_stages = Hashtbl.create 32 in
  let induction_of = Hashtbl.create 8 in
  let key_node = Array.make n_keys None in
  let add_def x k =
    let cur = try Hashtbl.find def_keys x with Not_found -> [] in
    Hashtbl.replace def_keys x (cur @ [ k ]);
    let s = stage_of.(k) in
    let cur = try Hashtbl.find def_stages x with Not_found -> [] in
    if not (List.mem s cur) then Hashtbl.replace def_stages x (s :: cur)
  in
  let rec walk loops nodes =
    List.iter
      (fun node ->
        key_node.(K.key node) <- Some node;
        Hashtbl.replace parent_loops (K.key node) loops;
        match node with
        | K.Kstmt (k, stmt) -> (
          match K.stmt_def stmt with Some x -> add_def x k | None -> ())
        | K.Kif (_, _, _, t, f) ->
          walk loops t;
          walk loops f
        | K.Kwhile (k, _, _, b) -> walk (k :: loops) b
        | K.Kfor (k, _, v, _, _, b) ->
          Hashtbl.replace induction_of v k;
          walk (k :: loops) b)
      nodes
  in
  walk [] tree;
  (* control ancestors: all enclosing control nodes (loops and ifs), and the
     enclosing If keys alone; used by the consumer/recompute analyses. *)
  let ancestors = Hashtbl.create n_keys in
  let parent_ifs = Hashtbl.create n_keys in
  let rec anc path ifs nodes =
    List.iter
      (fun node ->
        Hashtbl.replace ancestors (K.key node) path;
        Hashtbl.replace parent_ifs (K.key node) ifs;
        match node with
        | K.Kstmt _ -> ()
        | K.Kif (k, _, _, t, f) ->
          anc (k :: path) (k :: ifs) t;
          anc (k :: path) (k :: ifs) f
        | K.Kwhile (k, _, _, b) | K.Kfor (k, _, _, _, _, b) -> anc (k :: path) ifs b)
      nodes
  in
  anc [] [] tree;
  (* Sink movable initializers: a pure constant-ish def of a variable whose
     remaining defs all live in one stage moves to that stage (e.g. an
     accumulator reset at the top of an outer loop, accumulated downstream). *)
  Hashtbl.iter
    (fun x dks ->
      let stages = List.sort_uniq compare (List.map (fun k -> stage_of.(k)) dks) in
      if List.length stages > 1 then begin
        let movable k =
          match key_node.(k) with
          | Some (K.Kstmt (_, Assign (_, rhs))) -> (
            match rhs with
            | Const _ -> true
            | Var y | Binop (_, Var y, Const _) | Binop (_, Const _, Var y) ->
              List.mem y params
            | _ -> false)
          | _ -> false
        in
        let fixed = List.filter (fun k -> not (movable k)) dks in
        let fixed_stages = List.sort_uniq compare (List.map (fun k -> stage_of.(k)) fixed) in
        match fixed_stages with
        | [ t ] ->
          List.iter (fun k -> if movable k then stage_of.(k) <- t) dks;
          Hashtbl.replace def_stages x [ t ]
        | _ -> ()
      end)
    def_keys;
  (* init replication: depth-0 pure defs over params/other replicated vars,
     plus depth-0 constant stores handled at emission. *)
  let replicated = Hashtbl.create 8 in
  let replicated_keys = Hashtbl.create 8 in
  let changed = ref true in
  while !changed do
    changed := false;
    let scan_node node =
      match node with
      | K.Kstmt (k, Assign (x, rhs))
        when Hashtbl.find parent_loops k = [] && K.expr_is_pure rhs
             && not (Hashtbl.mem replicated_keys k) ->
        let ops = K.expr_uses [] rhs in
        let avail v = List.mem v params || Hashtbl.mem replicated v in
        if List.for_all avail ops then begin
          Hashtbl.replace replicated_keys k ();
          changed := true;
          (* a var is fully local everywhere if ALL its defs replicate *)
          let dks = try Hashtbl.find def_keys x with Not_found -> [] in
          if List.for_all (fun dk -> Hashtbl.mem replicated_keys dk) dks then
            Hashtbl.replace replicated x ()
        end
      | K.Kstmt _ | K.Kif _ | K.Kwhile _ | K.Kfor _ -> ()
    in
    K.iter_list scan_node tree
  done;
  {
    flags;
    tree;
    n_keys;
    stage_of;
    load_ord;
    prefetch_from;
    cut_head_keys;
    n_stages;
    parent_loops;
    ancestors;
    parent_ifs;
    def_keys;
    def_stages;
    replicated;
    replicated_keys;
    induction_of;
    params;
    key_node;
  }

(* ---------- context helpers shared by the later phases ---------- *)

let node_cond_vars node =
  match node with
  | K.Kif (_, _, c, _, _) -> K.expr_uses [] c
  | K.Kwhile (_, _, c, _) -> K.expr_uses [] c
  | K.Kfor (_, _, _, lo, hi, _) -> K.expr_uses (K.expr_uses [] lo) hi
  | K.Kstmt _ -> []

(* Innermost enclosing loop key, or -1 at top level. *)
let innermost ctx k =
  match Hashtbl.find ctx.parent_loops k with [] -> -1 | l :: _ -> l

let def_keys_of ctx x = try Hashtbl.find ctx.def_keys x with Not_found -> []

let nonrep_defs ctx x =
  List.filter (fun k -> not (Hashtbl.mem ctx.replicated_keys k)) (def_keys_of ctx x)

(* The stage that produces x for communication purposes. Normally all
   non-replicated defs live in one stage. A cursor initialized by a cut load
   in an early stage and updated locally by one later stage (SpMM's merge
   indices) is also fine: the early defs are communicated, the later ones
   are local. Anything else is rejected. *)
let def_stage_of ctx x =
  match nonrep_defs ctx x with
  | [] -> None
  | ks ->
    let stages = List.sort_uniq compare (List.map (fun k -> ctx.stage_of.(k)) ks) in
    (match stages with
    | [ s ] -> Some s
    | [ t; u ] when t < u ->
      let early_defs = List.filter (fun k -> ctx.stage_of.(k) = t) ks in
      if List.for_all (fun k -> Hashtbl.mem ctx.cut_head_keys k) early_defs then Some t
      else
        Pass.reject "variable %s is defined in multiple stages %s" x
          (String.concat "," (List.map string_of_int stages))
    | _ ->
      Pass.reject "variable %s is defined in multiple stages %s" x
        (String.concat "," (List.map string_of_int stages)))

(* The def keys that feed x's communication channel (the producer stage's). *)
let channel_defs ctx x =
  match def_stage_of ctx x with
  | None -> []
  | Some t -> List.filter (fun k -> ctx.stage_of.(k) = t) (nonrep_defs ctx x)

(* Is x available locally in [stage] without communication? *)
let local ctx ~stage:s x =
  List.mem x ctx.params || Hashtbl.mem ctx.replicated x
  || Hashtbl.mem ctx.induction_of x
  || (match def_stage_of ctx x with Some t -> t = s | None -> true)
