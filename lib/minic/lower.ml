(* Type checking and lowering of minic ASTs into the Phloem IR.

   The [#pragma phloem] function becomes a single-stage serial pipeline body;
   the compiler passes later split it into stages. Array parameters become IR
   arrays (their lengths are bound at run time), scalar parameters become
   pipeline params, and extern functions become costed opaque calls. *)

open Ast
module I = Phloem_ir.Types

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let int_max_value = 0x3FFFFFFF

type lowered = {
  lw_name : string;
  lw_body : I.stmt list;
  lw_arrays : (string * I.elem_ty) list; (* array params, lengths bound later *)
  lw_scalars : (string * I.elem_ty) list; (* scalar params *)
  lw_call_costs : (string * int) list;
  lw_pragmas : pragma list;
}

type env = {
  mutable vars : (string * ty) list;
  externs : (string * extern_decl) list;
  mutable n_tmp : int;
      (* per-lowering temp counter: lowering the same kernel twice must
         produce byte-identical IR (pipelines are digested for memoization),
         so temps cannot come from process-global state *)
}

let lookup_var env x =
  match List.assoc_opt x env.vars with
  | Some t -> t
  | None -> fail "unbound variable %s" x

let declare env x t =
  env.vars <- (x, t) :: env.vars

let elem_ty_of = function
  | Tint -> I.Ety_int
  | Tfloat -> I.Ety_float
  | t -> fail "unsupported element type %s" (ty_to_string t)

let ir_binop = function
  | Badd -> I.Add
  | Bsub -> I.Sub
  | Bmul -> I.Mul
  | Bdiv -> I.Div
  | Bmod -> I.Mod
  | Blt -> I.Lt
  | Ble -> I.Le
  | Bgt -> I.Gt
  | Bge -> I.Ge
  | Beq -> I.Eq
  | Bne -> I.Ne
  | Band -> I.And
  | Bor -> I.Or
  | Bband -> I.Band
  | Bbor -> I.Bor
  | Bbxor -> I.Bxor
  | Bshl -> I.Shl
  | Bshr -> I.Shr

let is_comparison = function
  | Blt | Ble | Bgt | Bge | Beq | Bne -> true
  | _ -> false

let is_logical = function Band | Bor -> true | _ -> false

(* Builtin functions with fixed signatures, lowered to IR primitives. *)
let builtins = [ "fabs"; "min"; "max"; "fmin"; "fmax"; "abs" ]

let fresh_tmp env =
  env.n_tmp <- env.n_tmp + 1;
  Printf.sprintf "__t%d" env.n_tmp

(* Lowering an expression yields setup statements (for side-effecting
   sub-expressions like x++), the IR expression, and its type. *)
let rec lower_expr env (e : expr) : I.stmt list * I.expr * ty =
  match e with
  | Eint i -> ([], I.Const (I.Vint i), Tint)
  | Efloat f -> ([], I.Const (I.Vfloat f), Tfloat)
  | Evar "INT_MAX" -> ([], I.Const (I.Vint int_max_value), Tint)
  | Evar x -> ([], I.Var x, lookup_var env x)
  | Ebin (op, a, b) ->
    let sa, ea, ta = lower_expr env a in
    let sb, eb, tb = lower_expr env b in
    let ea, eb, ty = unify_operands ea ta eb tb in
    let result_ty =
      if is_comparison op || is_logical op then Tint
      else if is_logical op then Tint
      else ty
    in
    if (is_logical op || op = Bmod || op = Bband || op = Bbor || op = Bbxor
       || op = Bshl || op = Bshr)
       && ty <> Tint
    then fail "operator %s requires int operands" "logical/bitwise";
    (sa @ sb, I.Binop (ir_binop op, ea, eb), result_ty)
  | Eun (Uneg, a) ->
    let sa, ea, ta = lower_expr env a in
    (sa, I.Unop (I.Neg, ea), ta)
  | Eun (Unot, a) ->
    let sa, ea, _ = lower_expr env a in
    (sa, I.Unop (I.Not, ea), Tint)
  | Eun (Ucast_int, a) ->
    let sa, ea, _ = lower_expr env a in
    (sa, I.Unop (I.To_int, ea), Tint)
  | Eun (Ucast_float, a) ->
    let sa, ea, _ = lower_expr env a in
    (sa, I.Unop (I.To_float, ea), Tfloat)
  | Eindex (a, i) ->
    let elem =
      match lookup_var env a with
      | Tarray t -> t
      | t -> fail "%s has type %s, not an array" a (ty_to_string t)
    in
    let si, ei, ti = lower_expr env i in
    if ti <> Tint then fail "array index of %s must be int" a;
    (si, I.Load (a, ei), elem)
  | Ecall ("fabs", [ a ]) ->
    let sa, ea, ta = lower_expr env a in
    (sa, I.Unop (I.Fabs, ea), ta)
  | Ecall ("abs", [ a ]) ->
    let sa, ea, ta = lower_expr env a in
    (sa, I.Unop (I.Fabs, ea), ta)
  | Ecall (("min" | "fmin"), [ a; b ]) ->
    let sa, ea, ta = lower_expr env a in
    let sb, eb, tb = lower_expr env b in
    let ea, eb, ty = unify_operands ea ta eb tb in
    (sa @ sb, I.Binop (I.Min, ea, eb), ty)
  | Ecall (("max" | "fmax"), [ a; b ]) ->
    let sa, ea, ta = lower_expr env a in
    let sb, eb, tb = lower_expr env b in
    let ea, eb, ty = unify_operands ea ta eb tb in
    (sa @ sb, I.Binop (I.Max, ea, eb), ty)
  | Ecall (f, args) -> (
    match List.assoc_opt f env.externs with
    | None -> fail "call to unknown function %s (declare it extern)" f
    | Some decl ->
      if List.length args <> List.length decl.x_params then
        fail "%s expects %d arguments" f (List.length decl.x_params);
      let setups, irs =
        List.fold_left
          (fun (ss, es) a ->
            let sa, ea, _ = lower_expr env a in
            (ss @ sa, es @ [ ea ]))
          ([], []) args
      in
      (setups, I.Call (f, irs), decl.x_ret))
  | Epostincr x ->
    let t = lookup_var env x in
    if t <> Tint then fail "%s++ requires int" x;
    let tmp = fresh_tmp env in
    declare env tmp Tint;
    ( [ I.Assign (tmp, I.Var x); I.Assign (x, I.Binop (I.Add, I.Var x, I.Const (I.Vint 1))) ],
      I.Var tmp,
      Tint )

(* Implicit conversions: only int literals promote to float. *)
and unify_operands ea ta eb tb =
  match (ta, tb) with
  | Tint, Tint -> (ea, eb, Tint)
  | Tfloat, Tfloat -> (ea, eb, Tfloat)
  | Tfloat, Tint -> (
    match eb with
    | I.Const (I.Vint i) -> (ea, I.Const (I.Vfloat (float_of_int i)), Tfloat)
    | _ -> fail "mixing float and int operands; add an explicit cast")
  | Tint, Tfloat -> (
    match ea with
    | I.Const (I.Vint i) -> (I.Const (I.Vfloat (float_of_int i)), eb, Tfloat)
    | _ -> fail "mixing int and float operands; add an explicit cast")
  | _ -> fail "invalid operand types"

(* Assignment target typing: int literals coerce to float, anything else
   must match exactly. *)
let coerce_to target actual e ~what =
  match (target, actual, e) with
  | Tfloat, Tint, I.Const (I.Vint i) -> I.Const (I.Vfloat (float_of_int i))
  | Tfloat, Tint, _ | Tint, Tfloat, _ ->
    fail "type mismatch assigning to %s (expected %s, got %s)" what
      (ty_to_string target) (ty_to_string actual)
  | _ -> e

let rec lower_stmt env (s : stmt) : I.stmt list =
  match s with
  | Sdecl (ty, x, init) -> (
    declare env x ty;
    match init with
    | None ->
      [ I.Assign (x, I.Const (match ty with Tfloat -> I.Vfloat 0.0 | _ -> I.Vint 0)) ]
    | Some e ->
      let se, ee, te = lower_expr env e in
      let ee =
        match (ty, te, ee) with
        | Tfloat, Tint, I.Const (I.Vint i) -> I.Const (I.Vfloat (float_of_int i))
        | Tfloat, Tint, _ | Tint, Tfloat, _ ->
          fail "initializer type mismatch for %s" x
        | _ -> ee
      in
      se @ [ I.Assign (x, ee) ])
  | Sassign (Lvar x, e) ->
    let tx = lookup_var env x in
    let se, ee, te = lower_expr env e in
    let ee = coerce_to tx te ee ~what:x in
    se @ [ I.Assign (x, ee) ]
  | Sassign (Lindex (a, i), e) ->
    let elem =
      match lookup_var env a with Tarray t -> t | _ -> fail "%s is not an array" a
    in
    let si, ei, _ = lower_expr env i in
    let se, ee, te = lower_expr env e in
    let ee = coerce_to elem te ee ~what:(a ^ "[]") in
    si @ se @ [ I.Store (a, ei, ee) ]
  | Sop_assign (Lvar x, op, e) ->
    let se, ee, te = lower_expr env e in
    let tx = lookup_var env x in
    let ex, ee, _ = unify_operands (I.Var x) tx ee te in
    se @ [ I.Assign (x, I.Binop (ir_binop op, ex, ee)) ]
  | Sop_assign (Lindex (a, i), op, e) ->
    let elem =
      match lookup_var env a with Tarray t -> t | _ -> fail "%s is not an array" a
    in
    let si, ei, _ = lower_expr env i in
    let se, ee, te = lower_expr env e in
    let el, ee, _ = unify_operands (I.Load (a, ei)) elem ee te in
    si @ se @ [ I.Store (a, ei, I.Binop (ir_binop op, el, ee)) ]
  | Sincr (Lvar x) -> [ I.Assign (x, I.Binop (I.Add, I.Var x, I.Const (I.Vint 1))) ]
  | Sincr (Lindex (a, i)) ->
    let si, ei, _ = lower_expr env i in
    si @ [ I.Store (a, ei, I.Binop (I.Add, I.Load (a, ei), I.Const (I.Vint 1))) ]
  | Sexpr e ->
    let se, ee, _ = lower_expr env e in
    se @ [ I.Assign ("_", ee) ]
  | Sif (c, t, f) ->
    let sc, ec, _ = lower_expr env c in
    sc @ [ I.If (I.fresh_site (), ec, lower_block env t, lower_block env f) ]
  | Swhile (c, body) ->
    let sc, ec, _ = lower_expr env c in
    if sc <> [] then fail "side effects in while condition are unsupported";
    [ I.While (I.fresh_site (), ec, lower_block env body) ]
  | Sfor (init, cond, step, body) -> (
    (* Recognize the canonical counted loop; fall back to init+while. *)
    match (init, cond, step) with
    | ( Some (Sassign (Lvar i, lo)),
        Some (Ebin (Blt, Evar i', hi)),
        Some (Sincr (Lvar i'') | Sop_assign (Lvar i'', Badd, Eint 1)) )
      when i = i' && i = i'' ->
      if not (List.mem_assoc i env.vars) then declare env i Tint;
      let slo, elo, _ = lower_expr env lo in
      let shi, ehi, _ = lower_expr env hi in
      slo @ shi @ [ I.For (I.fresh_site (), i, elo, ehi, lower_block env body) ]
    | ( Some (Sdecl (Tint, i, Some lo)),
        Some (Ebin (Blt, Evar i', hi)),
        Some (Sincr (Lvar i'') | Sop_assign (Lvar i'', Badd, Eint 1)) )
      when i = i' && i = i'' ->
      declare env i Tint;
      let slo, elo, _ = lower_expr env lo in
      let shi, ehi, _ = lower_expr env hi in
      slo @ shi @ [ I.For (I.fresh_site (), i, elo, ehi, lower_block env body) ]
    | _ ->
      let init_ir = match init with None -> [] | Some s -> lower_stmt env s in
      let cond_ir, cond_e =
        match cond with
        | None -> ([], I.Const (I.Vint 1))
        | Some c ->
          let sc, ec, _ = lower_expr env c in
          if sc <> [] then fail "side effects in for condition are unsupported";
          (sc, ec)
      in
      let step_ir = match step with None -> [] | Some s -> lower_stmt env s in
      init_ir @ cond_ir
      @ [ I.While (I.fresh_site (), cond_e, lower_block env body @ step_ir) ])
  | Sbreak -> [ I.Break ]
  | Sreturn None -> []
  | Sreturn (Some _) -> fail "value-returning return in a pipeline kernel is unsupported"
  | Spragma Pdecouple -> [ I.Seq_marker "pragma:decouple" ]
  | Spragma _ -> []

and lower_block env stmts = List.concat_map (lower_stmt env) stmts

let lower_func (prog : program) (f : func) : lowered =
  let externs = List.map (fun x -> (x.x_name, x)) prog.externs in
  let env = { vars = []; externs; n_tmp = 0 } in
  let arrays = ref [] and scalars = ref [] in
  List.iter
    (fun p ->
      declare env p.p_name p.p_ty;
      match p.p_ty with
      | Tarray t -> arrays := (p.p_name, elem_ty_of t) :: !arrays
      | Tint -> scalars := (p.p_name, I.Ety_int) :: !scalars
      | Tfloat -> scalars := (p.p_name, I.Ety_float) :: !scalars
      | Tvoid -> fail "void parameter")
    f.f_params;
  let body = lower_block env f.f_body in
  {
    lw_name = f.f_name;
    lw_body = body;
    lw_arrays = List.rev !arrays;
    lw_scalars = List.rev !scalars;
    lw_call_costs = List.map (fun x -> (x.x_name, x.x_cost)) prog.externs;
    lw_pragmas = f.f_pragmas;
  }

(* Find and lower the function marked [#pragma phloem]. *)
let lower_kernel (prog : program) : lowered =
  match
    List.find_opt (fun f -> List.mem Pphloem f.f_pragmas) prog.funcs
  with
  | Some f -> lower_func prog f
  | None -> fail "no function marked with #pragma phloem"

(* Compile source text to a lowered kernel. *)
let of_source src = lower_kernel (Parser.parse_program src)

(* Bind a lowered kernel to concrete inputs, producing a runnable serial
   pipeline. [arrays] supplies (name, values); [scalars] supplies parameter
   values. *)
let to_serial_pipeline ?(name = "") (lw : lowered)
    ~(arrays : (string * I.value array) list) ~(scalars : (string * I.value) list) :
    I.pipeline * (string * I.value array) list =
  let decls =
    List.map
      (fun (a, ty) ->
        match List.assoc_opt a arrays with
        | Some contents -> { I.a_name = a; a_ty = ty; a_len = Array.length contents }
        | None -> fail "array %s not bound" a)
      lw.lw_arrays
  in
  List.iter
    (fun (s, _) ->
      if not (List.mem_assoc s scalars) then fail "scalar parameter %s not bound" s)
    lw.lw_scalars;
  ( I.renumber_sites
      {
        I.p_name = (if name = "" then lw.lw_name else name);
        p_stages = [ { I.s_name = "serial"; s_body = lw.lw_body; s_handlers = [] } ];
        p_queues = [];
        p_ras = [];
        p_arrays = decls;
        p_params = scalars;
        p_call_costs = lw.lw_call_costs;
      },
    arrays )
