(** Content-addressed result cache of the daemon: hex content key (see
    {!Protocol.content_key}) to serialized result payload bytes. Payloads
    are opaque bytes, so a hit is byte-identical to the cold response that
    filled the entry. FIFO-bounded; mutex-guarded (client threads look up
    while the dispatcher inserts). *)

type t

type stats = {
  cs_hits : int;
  cs_misses : int;
  cs_evictions : int;
  cs_entries : int;
  cs_capacity : int;
  cs_payload_bytes : int;  (** bytes currently resident *)
}

val create : ?capacity:int -> unit -> t
(** [capacity] (default 256) is the entry bound; oldest entries are
    evicted first. @raise Invalid_argument if [capacity < 1]. *)

val find : t -> string -> string option
(** Counts a hit or a miss. *)

val add : t -> string -> string -> unit
(** Insert-if-absent (concurrent identical misses race benignly: results
    are deterministic, the second insert is dropped), evicting FIFO past
    the capacity. *)

val stats : t -> stats
val json_of_stats : stats -> Pipette.Telemetry.Json.t
