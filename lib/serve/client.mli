(** Minimal blocking client for phloemd's line protocol (one request line
    out, one response line back), used by [simulate --remote] and tests. *)

val connect_unix : string -> Unix.file_descr
(** Connect to a Unix-domain socket. @raise Unix.Unix_error on failure. *)

val with_unix : string -> (Unix.file_descr -> 'a) -> 'a
(** Connect, run, always close. *)

val send_line : Unix.file_descr -> string -> unit
(** Write one line (the newline is appended). *)

val recv_line : Unix.file_descr -> string
(** Read one response line, newline stripped.
    @raise End_of_file if the peer hangs up first. *)

val request : Unix.file_descr -> string -> string
(** [send_line] then [recv_line]. *)
