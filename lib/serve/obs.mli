(** Service-level observability for phloemd: a {!Phloem_util.Metrics}
    registry plus a request-span recorder and slow-request threshold,
    bundled as one optional handle threaded through the server, scheduler
    glue, and job runner.

    The server takes [Obs.t option]; [None] (the default) leaves the
    request path untouched — cache hits still splice raw payload bytes
    with no extra clock reads.

    Span taxonomy (tracks become Chrome trace threads):
    - [reader-<client>]: [parse], [cache-lookup], [respond] (hit path)
    - [queue]: [queue-wait] per dispatched job
    - [dispatcher]: [dispatch] per batch, [respond] (cold path)
    - [worker-<domain>]: [execute] containing [compile]/[trace]/[simulate]
      (names from {!Phloem_harness.Phases}) and [serialize] *)

type t

val create : ?slow_ms:float -> ?max_spans:int -> unit -> t
(** [slow_ms] enables the slow-request log at that latency threshold;
    [max_spans] bounds the recorder (see {!Phloem_util.Metrics.recorder}). *)

val metrics : t -> Phloem_util.Metrics.t
(** The underlying registry, for callers adding their own instruments
    (the autotuner's progress counters use this). *)

val spans : t -> Phloem_util.Metrics.span list
(** All recorded request spans, sorted by start time. *)

val now : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]) — the time base of all spans. *)

val next_trace : t -> int
(** Allocate a fresh request/trace id. *)

val record :
  t -> trace:int -> track:string -> name:string -> start:float -> stop:float -> unit
(** Record a completed span. *)

val span : t -> trace:int -> track:string -> name:string -> (unit -> 'a) -> 'a
(** Time a thunk and record it as a span — also when it raises. *)

val on_request : t -> unit
val on_shed : t -> unit
val on_error : t -> unit

val observe_queue_wait : t -> float -> unit
(** Feed one job's queue-wait (seconds) to the queue-wait histogram. *)

val finish_request : t -> trace:int -> hit:bool -> start:float -> label:string -> unit
(** Close out one simulate request: observe its latency into the hit or
    miss histogram and emit the slow-request log when past the threshold.
    [label] identifies the request in the log (bench/input). *)

val metrics_json : t -> Pipette.Telemetry.Json.t
(** [{counters; gauges; histograms; spans}] — histograms carry
    count/sum/min/max/mean, derived p50/p95/p99, and non-empty buckets. *)

val trace_json : t -> Pipette.Telemetry.Json.t
(** Chrome trace-event export of the recorded request spans: one process
    ("phloemd"), one thread per span track, microsecond timestamps
    relative to the earliest span. *)

val write_metrics_file : t -> string -> unit
(** Atomic (tmp + rename) write: Prometheus text when the filename ends in
    [.prom], the {!metrics_json} JSON otherwise. *)

val write_trace_file : t -> string -> unit
(** Atomic write of {!trace_json}. *)
