(* Wire protocol of phloemd: line-delimited JSON over a Unix-domain (or
   TCP) socket. Each request is one JSON object on one line; each response
   is one JSON object on one line. The response envelope is assembled by
   string splicing with the ["result"] field last, so a cached response can
   return the stored payload bytes verbatim — byte-identical to the cold
   run that produced them. *)

module Json = Pipette.Telemetry.Json

(* A compile+simulate job, the unit of daemon work. Jobs name a benchmark,
   variant, and generated input rather than carrying program text: input
   generation and compilation are deterministic functions of these fields
   (PR 3), so the fields are the content. *)
type job = {
  j_bench : string;
  j_variant : string; (* serial | phloem | data-parallel | manual *)
  j_input : string;
  j_scale : float;
  j_stages : int; (* static-flow stage count for the phloem variant *)
  j_threads : int; (* thread count for the data-parallel variant *)
  j_inject : Pipette.Faults.plan option;
  j_watchdog : int option;
  j_cycle_budget : int option;
}

let default_job =
  {
    j_bench = "bfs";
    j_variant = "phloem";
    j_input = "internet";
    j_scale = 1.0;
    j_stages = 4;
    j_threads = 4;
    j_inject = None;
    j_watchdog = None;
    j_cycle_budget = None;
  }

type request =
  | Simulate of { id : Json.t; job : job }
  | Stats of { id : Json.t }
  | Ping of { id : Json.t }
  | Shutdown of { id : Json.t }

type reject = { rj_code : string; rj_msg : string }
(* rj_code: "oversized" | "bad-request" | "unknown-kind" *)

(* --- request parsing --------------------------------------------------- *)

let str_field j k =
  match Json.member k j with Some (Json.Str s) -> Some s | _ -> None

let int_field j k =
  match Json.member k j with Some (Json.Int i) -> Some i | _ -> None

let float_field j k =
  match Json.member k j with
  | Some n -> Json.to_float_opt n
  | None -> None

(* Echoed ids are restricted to scalars: a client-supplied structured id
   spliced into the envelope could interfere with raw-payload extraction
   (see [response_payload_raw]); scalar JSON values cannot contain an
   unescaped ["result": ] byte sequence. *)
let sanitize_id j =
  match Json.member "id" j with
  | Some ((Json.Int _ | Json.Str _ | Json.Null) as id) -> id
  | _ -> Json.Null

let job_of_json j : (job, string) result =
  match str_field j "bench" with
  | None -> Error "simulate request needs a \"bench\" field"
  | Some bench -> (
    match str_field j "input" with
    | None -> Error "simulate request needs an \"input\" field"
    | Some input -> (
      let base =
        {
          default_job with
          j_bench = bench;
          j_input = input;
          j_variant =
            Option.value (str_field j "variant") ~default:default_job.j_variant;
          j_scale = Option.value (float_field j "scale") ~default:1.0;
          j_stages = Option.value (int_field j "stages") ~default:4;
          j_threads = Option.value (int_field j "threads") ~default:4;
          j_watchdog = int_field j "watchdog";
          j_cycle_budget = int_field j "cycle_budget";
        }
      in
      match str_field j "inject" with
      | None -> Ok base
      | Some plan_s -> (
        match Pipette.Faults.of_string plan_s with
        | Error msg -> Error (Printf.sprintf "bad \"inject\" plan: %s" msg)
        | Ok plan ->
          let plan =
            match int_field j "fault_key" with
            | Some k -> { plan with Pipette.Faults.fp_key = k }
            | None -> plan
          in
          Ok { base with j_inject = Some plan })))

let parse_request ~max_bytes (line : string) : (request, reject) result =
  if String.length line > max_bytes then
    Error
      {
        rj_code = "oversized";
        rj_msg =
          Printf.sprintf "request is %d bytes; the limit is %d"
            (String.length line) max_bytes;
      }
  else
    match Json.of_string line with
    | exception Json.Parse_error msg ->
      Error { rj_code = "bad-request"; rj_msg = "malformed JSON: " ^ msg }
    | j -> (
      let id = sanitize_id j in
      match str_field j "kind" with
      | None ->
        Error { rj_code = "bad-request"; rj_msg = "missing \"kind\" field" }
      | Some "ping" -> Ok (Ping { id })
      | Some "stats" -> Ok (Stats { id })
      | Some "shutdown" -> Ok (Shutdown { id })
      | Some "simulate" -> (
        match job_of_json j with
        | Ok job -> Ok (Simulate { id; job })
        | Error msg -> Error { rj_code = "bad-request"; rj_msg = msg })
      | Some other ->
        Error
          {
            rj_code = "unknown-kind";
            rj_msg = Printf.sprintf "unknown request kind %S" other;
          })

(* --- request encoding (client side) ------------------------------------ *)

let json_of_job (j : job) : (string * Json.t) list =
  [
    ("bench", Json.Str j.j_bench);
    ("variant", Json.Str j.j_variant);
    ("input", Json.Str j.j_input);
    ("scale", Json.Float j.j_scale);
    ("stages", Json.Int j.j_stages);
    ("threads", Json.Int j.j_threads);
  ]
  @ (match j.j_inject with
    | Some p ->
      [
        ("inject", Json.Str (Pipette.Faults.to_string p));
        ("fault_key", Json.Int p.Pipette.Faults.fp_key);
      ]
    | None -> [])
  @ (match j.j_watchdog with Some w -> [ ("watchdog", Json.Int w) ] | None -> [])
  @
  match j.j_cycle_budget with
  | Some b -> [ ("cycle_budget", Json.Int b) ]
  | None -> []

let simulate_request ?(id = Json.Null) (j : job) : string =
  let id_field = match id with Json.Null -> [] | id -> [ ("id", id) ] in
  Json.to_string (Json.Obj ((("kind", Json.Str "simulate") :: id_field) @ json_of_job j))

let plain_request ?(id = Json.Null) kind : string =
  let id_field = match id with Json.Null -> [] | id -> [ ("id", id) ] in
  Json.to_string (Json.Obj (("kind", Json.Str kind) :: id_field))

(* --- content-addressed key ---------------------------------------------

   The key must cover everything a result depends on. Simulation is a pure
   function of (program, input, machine config, fault plan) — PR 3 made
   timing deterministic in the program and input, and input generation and
   compilation are themselves deterministic in (bench, variant, input name,
   scale, stages, threads). The machine config and the functional op budget
   are process-global and folded in as a digest; the fault plan is folded
   in canonically (its key + its round-tripping string form). A version
   tag salts the key so a protocol change never aliases old entries. *)

let key_version = 1

let config_digest =
  lazy
    (Digest.to_hex
       (Digest.string
          (Marshal.to_string
             (Pipette.Config.default, Pipette.Config.default_energy)
             [])))

let canonical_of_job (j : job) : string =
  Json.to_string
    (Json.Obj
       [
         ("v", Json.Int key_version);
         ("bench", Json.Str j.j_bench);
         ("variant", Json.Str j.j_variant);
         ("input", Json.Str j.j_input);
         ("scale", Json.Float j.j_scale);
         ("stages", Json.Int j.j_stages);
         ("threads", Json.Int j.j_threads);
         ( "faults",
           match j.j_inject with
           | None -> Json.Null
           | Some p ->
             Json.Str
               (Printf.sprintf "%d:%s" p.Pipette.Faults.fp_key
                  (Pipette.Faults.to_string p)) );
         ( "watchdog",
           match j.j_watchdog with Some w -> Json.Int w | None -> Json.Null );
         ( "cycle_budget",
           match j.j_cycle_budget with Some b -> Json.Int b | None -> Json.Null );
         ("config", Json.Str (Lazy.force config_digest));
         ("max_ops", Json.Int (Phloem_ir.Interp.max_ops ()));
       ])

let content_key (j : job) : string =
  Digest.to_hex (Digest.string (canonical_of_job j))

(* --- response encoding -------------------------------------------------- *)

(* The ok envelope is spliced, not rebuilt from a parsed tree: [payload] is
   stored and returned as raw bytes, which is what makes a cache hit
   byte-identical to the cold response that filled it. ["result"] is the
   last field and everything before it is an escaped scalar, so the first
   unescaped [,"result":] in the line delimits the payload unambiguously. *)
let result_marker = ",\"result\":"

let ok_response ~id ~cached (payload : string) : string =
  Printf.sprintf "{\"id\":%s,\"status\":\"ok\",\"cached\":%b%s%s}"
    (Json.to_string id) cached result_marker payload

let error_response ~id ~code ?failure msg : string =
  Json.to_string
    (Json.Obj
       ([
          ("id", id);
          ("status", Json.Str "error");
          ("code", Json.Str code);
          ("message", Json.Str msg);
        ]
       @ match failure with Some f -> [ ("failure", f) ] | None -> []))

let shed_response ~id ~queued ~limit : string =
  Json.to_string
    (Json.Obj
       [
         ("id", id);
         ("status", Json.Str "shed");
         ("code", Json.Str "queue-full");
         ("queued", Json.Int queued);
         ("limit", Json.Int limit);
         ( "message",
           Json.Str
             "job queue is full; the daemon is shedding load — retry with \
              backoff" );
       ])

(* --- response decoding (client side) ------------------------------------ *)

let response_status (j : Json.t) : string =
  Option.value ~default:"?" (str_field j "status")

let response_cached (j : Json.t) : bool =
  match Json.member "cached" j with Some (Json.Bool b) -> b | _ -> false

(* Raw bytes of the ok envelope's ["result"] field — exactly as the daemon
   spliced them, so writing them to a file preserves byte identity across
   cached and cold responses. *)
let response_payload_raw (line : string) : string option =
  let line =
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\n' then String.sub line 0 (n - 1) else line
  in
  let mlen = String.length result_marker in
  let n = String.length line in
  let rec find i =
    if i + mlen > n then None
    else if String.sub line i mlen = result_marker then Some (i + mlen)
    else find (i + 1)
  in
  match find 0 with
  | Some start when n > start && line.[n - 1] = '}' ->
    Some (String.sub line start (n - 1 - start))
  | _ -> None
