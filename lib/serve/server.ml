(* phloemd's core: accept connections on a Unix-domain (and optionally
   TCP) socket, read line-delimited JSON requests, serve repeats from the
   content-addressed result cache, and dispatch cold jobs through a
   bounded fair scheduler onto a Phloem_util.Pool of OCaml 5 domains.

   Threading model: the caller's thread runs the accept loop; each
   connection gets a reader thread (cheap system threads — connections
   block on I/O, not CPU); one dispatcher thread drains the scheduler in
   batches and fans each batch out across the pool's domains (the CPU
   side). Cache hits, stats, pings, and shed responses are answered
   directly on the reader thread in O(lookup) — they never touch the pool.

   Failure containment: a job that deadlocks, livelocks, exhausts its
   budget, or raises for any other reason becomes a structured JSON error
   on its own connection ([Pool.try_map] captures per-item failures);
   sibling jobs in the batch and the daemon itself are unaffected. *)

module Json = Pipette.Telemetry.Json
module Log = Phloem_util.Log

type opts = {
  so_unix : string option; (* Unix-domain socket path *)
  so_tcp : int option; (* TCP port on 127.0.0.1 *)
  so_jobs : int; (* pool domains for job execution *)
  so_queue_limit : int; (* scheduler bound; past it requests shed *)
  so_batch : int; (* max jobs dispatched per pool batch *)
  so_cache_entries : int; (* result-cache entry bound *)
  so_max_request : int; (* request line byte bound *)
  so_obs : Obs.t option; (* service metrics + request tracing; off by default *)
}

let default_opts =
  {
    so_unix = None;
    so_tcp = None;
    so_jobs = 1;
    so_queue_limit = 64;
    so_batch = 8;
    so_cache_entries = 256;
    so_max_request = 1 lsl 20;
    so_obs = None;
  }

type client = {
  c_id : int;
  c_fd : Unix.file_descr;
  c_wlock : Mutex.t; (* reader thread and dispatcher both respond *)
}

type entry = {
  en_client : client;
  en_id : Json.t; (* echoed request id *)
  en_key : string; (* content key; fills the cache on completion *)
  en_job : Protocol.job;
  en_trace : int; (* request trace id (0 when tracing is off) *)
  en_t0 : float; (* request arrival wall time (0. when tracing is off) *)
}

type t = {
  t_opts : opts;
  t_cache : Cache.t;
  t_sched : entry Scheduler.t;
  t_stopped : bool Atomic.t;
  t_listeners : Unix.file_descr list;
  t_clients : (int, client) Hashtbl.t;
  t_clients_lock : Mutex.t;
  t_next_client : int Atomic.t;
  t_connections : int Atomic.t;
  t_requests : int Atomic.t;
  t_ok : int Atomic.t;
  t_errors : int Atomic.t;
  t_shed : int Atomic.t;
  t_started : float;
}

(* --- listener setup ----------------------------------------------------- *)

let unix_listener path =
  (* A stale socket file from a previous daemon would make bind fail; a
     *live* daemon still serving it is indistinguishable here, so the
     operator owns path uniqueness (CI uses mktemp -d). *)
  if Sys.file_exists path then Unix.unlink path;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let tcp_listener port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  fd

let create (opts : opts) : t =
  if opts.so_unix = None && opts.so_tcp = None then
    invalid_arg "Serve.Server.create: need a Unix socket path or a TCP port";
  let listeners =
    (match opts.so_unix with Some p -> [ unix_listener p ] | None -> [])
    @ match opts.so_tcp with Some p -> [ tcp_listener p ] | None -> []
  in
  {
    t_opts = opts;
    t_cache = Cache.create ~capacity:opts.so_cache_entries ();
    t_sched = Scheduler.create ~limit:opts.so_queue_limit ();
    t_stopped = Atomic.make false;
    t_listeners = listeners;
    t_clients = Hashtbl.create 16;
    t_clients_lock = Mutex.create ();
    t_next_client = Atomic.make 0;
    t_connections = Atomic.make 0;
    t_requests = Atomic.make 0;
    t_ok = Atomic.make 0;
    t_errors = Atomic.make 0;
    t_shed = Atomic.make 0;
    t_started = Unix.gettimeofday ();
  }

(* --- responses ---------------------------------------------------------- *)

(* Best-effort write: a client that hung up mid-job must not take the
   dispatcher (or its batch siblings) down with it. *)
let send t (c : client) (line : string) =
  let data = Bytes.of_string (line ^ "\n") in
  Mutex.lock c.c_wlock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock c.c_wlock)
    (fun () ->
      try
        let n = Bytes.length data in
        let rec loop off =
          if off < n then
            let w = Unix.write c.c_fd data off (n - off) in
            loop (off + w)
        in
        loop 0
      with Unix.Unix_error _ | Sys_error _ ->
        Log.debug ~component:"phloemd" "client %d write failed (gone?)" c.c_id);
  ignore t

(* --- stats -------------------------------------------------------------- *)

let stats_json t : Json.t =
  let sc = Scheduler.stats t.t_sched in
  let cc = Pipette.Sim.cache_counters () in
  let ph = Phloem_harness.Phases.snapshot () in
  let module P = Phloem_harness.Phases in
  let metrics_section =
    match t.t_opts.so_obs with
    | None -> []
    | Some obs -> [ ("metrics", Obs.metrics_json obs) ]
  in
  Json.Obj
    ([
      ("uptime_s", Json.Float (Unix.gettimeofday () -. t.t_started));
      ("jobs", Json.Int t.t_opts.so_jobs);
      ("connections", Json.Int (Atomic.get t.t_connections));
      ("requests", Json.Int (Atomic.get t.t_requests));
      ("ok", Json.Int (Atomic.get t.t_ok));
      ("errors", Json.Int (Atomic.get t.t_errors));
      ("shed", Json.Int (Atomic.get t.t_shed));
      ("result_cache", Cache.json_of_stats (Cache.stats t.t_cache));
      ( "scheduler",
        Json.Obj
          [
            ("accepted", Json.Int sc.Scheduler.st_accepted);
            ("shed", Json.Int sc.Scheduler.st_shed);
            ("dispatched", Json.Int sc.Scheduler.st_dispatched);
            ("queued", Json.Int sc.Scheduler.st_queued);
            ("limit", Json.Int sc.Scheduler.st_limit);
            ("queue_wait_total_s", Json.Float sc.Scheduler.st_wait_total_s);
            ("queue_wait_max_s", Json.Float sc.Scheduler.st_wait_max_s);
            ( "queue_wait_mean_s",
              Json.Float
                (P.ratio sc.Scheduler.st_wait_total_s
                   (float_of_int sc.Scheduler.st_dispatched)) );
          ] );
      ( "sim_cache",
        Json.Obj
          [
            ("enabled", Json.Bool (Pipette.Sim.cache_enabled ()));
            ("capacity", Json.Int cc.Pipette.Sim.cc_capacity);
            ("program_hits", Json.Int cc.Pipette.Sim.cc_program_hits);
            ("program_misses", Json.Int cc.Pipette.Sim.cc_program_misses);
            ("program_evictions", Json.Int cc.Pipette.Sim.cc_program_evictions);
            ("program_entries", Json.Int cc.Pipette.Sim.cc_program_entries);
            ("trace_hits", Json.Int cc.Pipette.Sim.cc_trace_hits);
            ("trace_misses", Json.Int cc.Pipette.Sim.cc_trace_misses);
            ("trace_evictions", Json.Int cc.Pipette.Sim.cc_trace_evictions);
            ("trace_entries", Json.Int cc.Pipette.Sim.cc_trace_entries);
          ] );
      ( "phases",
        Json.Obj
          [
            ("compile_s", Json.Float ph.P.ph_compile_s);
            ("trace_s", Json.Float ph.P.ph_trace_s);
            ("simulate_s", Json.Float ph.P.ph_simulate_s);
            ("simulated_ops", Json.Int ph.P.ph_ops);
            ( "ops_per_sec",
              Json.Float (P.per_second ph.P.ph_ops ph.P.ph_simulate_s) );
          ] );
    ]
    @ metrics_section)

(* --- stop --------------------------------------------------------------- *)

(* Idempotent; safe to call from any thread and from a signal handler
   running at a safe point. Closing the listeners wakes the accept loop;
   closing the scheduler wakes the dispatcher, which drains already-queued
   jobs, answers them, and exits. Open client connections are closed by
   [run] after the drain so in-flight jobs still get their responses. *)
let stop t =
  if not (Atomic.exchange t.t_stopped true) then begin
    List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.t_listeners;
    (match t.t_opts.so_unix with
    | Some p -> ( try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
    | None -> ());
    Scheduler.close t.t_sched
  end

let stopped t = Atomic.get t.t_stopped

(* --- dispatcher --------------------------------------------------------- *)

let failure_code (fr : Phloem_ir.Forensics.report) =
  Phloem_ir.Forensics.kind_name fr.Phloem_ir.Forensics.fr_kind

let job_label (job : Protocol.job) =
  Printf.sprintf "%s/%s/%s" job.Protocol.j_bench job.Protocol.j_variant
    job.Protocol.j_input

let respond_result t (en : entry) (r : (string, Phloem_util.Pool.error) result) =
  let obs = t.t_opts.so_obs in
  let respond f =
    match obs with
    | None -> f ()
    | Some o ->
      Obs.span o ~trace:en.en_trace ~track:"dispatcher" ~name:"respond" f
  in
  (match r with
  | Ok payload ->
    Cache.add t.t_cache en.en_key payload;
    Atomic.incr t.t_ok;
    respond (fun () ->
        send t en.en_client
          (Protocol.ok_response ~id:en.en_id ~cached:false payload))
  | Error { Phloem_util.Pool.e_exn = Phloem_ir.Forensics.Pipeline_failure fr; _ }
    ->
    Atomic.incr t.t_errors;
    Option.iter Obs.on_error obs;
    respond (fun () ->
        send t en.en_client
          (Protocol.error_response ~id:en.en_id ~code:(failure_code fr)
             ~failure:(Pipette.Analysis.json_of_failure fr)
             "pipeline failed; see the structured forensics report"))
  | Error { Phloem_util.Pool.e_exn = Jobs.Bad_job msg; _ } ->
    Atomic.incr t.t_errors;
    Option.iter Obs.on_error obs;
    respond (fun () ->
        send t en.en_client
          (Protocol.error_response ~id:en.en_id ~code:"bad-job" msg))
  | Error { Phloem_util.Pool.e_exn; _ } ->
    Atomic.incr t.t_errors;
    Option.iter Obs.on_error obs;
    respond (fun () ->
        send t en.en_client
          (Protocol.error_response ~id:en.en_id ~code:"job-failed"
             (Printexc.to_string e_exn))));
  match obs with
  | None -> ()
  | Some o ->
    Obs.finish_request o ~trace:en.en_trace ~hit:false ~start:en.en_t0
      ~label:(job_label en.en_job)

let dispatcher_loop t =
  let obs = t.t_opts.so_obs in
  Phloem_util.Pool.with_pool ~jobs:t.t_opts.so_jobs @@ fun pool ->
  let rec loop () =
    match Scheduler.take_batch_timed t.t_sched ~max:t.t_opts.so_batch with
    | [] -> () (* closed and drained *)
    | batch ->
      let entries = Array.of_list (List.map fst batch) in
      (match obs with
      | None -> ()
      | Some o ->
        (* queue-wait spans: reconstructed from the scheduler's measured
           wait so the trace shows the interval each job sat queued *)
        let taken = Obs.now () in
        List.iter
          (fun ((en : entry), wait) ->
            Obs.observe_queue_wait o wait;
            Obs.record o ~trace:en.en_trace ~track:"queue" ~name:"queue-wait"
              ~start:(taken -. wait) ~stop:taken)
          batch);
      Log.debug ~component:"phloemd" "dispatching batch of %d"
        (Array.length entries);
      let dispatch f =
        match obs with
        | None -> f ()
        | Some o ->
          Obs.span o ~trace:entries.(0).en_trace ~track:"dispatcher"
            ~name:"dispatch" f
      in
      let results =
        dispatch (fun () ->
            Phloem_util.Pool.try_map pool
              (fun (en : entry) -> Jobs.run ?obs ~trace:en.en_trace en.en_job)
              entries)
      in
      Array.iteri (fun i r -> respond_result t entries.(i) r) results;
      loop ()
  in
  loop ()

(* --- per-connection reader ---------------------------------------------- *)

let handle_request t (c : client) (line : string) =
  Atomic.incr t.t_requests;
  let obs = t.t_opts.so_obs in
  let t0 = match obs with None -> 0.0 | Some _ -> Obs.now () in
  let trace =
    match obs with None -> 0 | Some o -> Obs.on_request o; Obs.next_trace o
  in
  let track = Printf.sprintf "reader-%d" c.c_id in
  let reader_span name f =
    match obs with
    | None -> f ()
    | Some o -> Obs.span o ~trace ~track ~name f
  in
  match
    reader_span "parse" (fun () ->
        Protocol.parse_request ~max_bytes:t.t_opts.so_max_request line)
  with
  | Error rej ->
    Atomic.incr t.t_errors;
    Option.iter Obs.on_error obs;
    send t c (Protocol.error_response ~id:Json.Null ~code:rej.Protocol.rj_code
                rej.Protocol.rj_msg)
  | Ok (Protocol.Ping { id }) ->
    Atomic.incr t.t_ok;
    send t c (Protocol.ok_response ~id ~cached:false "\"pong\"")
  | Ok (Protocol.Stats { id }) ->
    Atomic.incr t.t_ok;
    send t c (Protocol.ok_response ~id ~cached:false
                (Json.to_string (stats_json t)))
  | Ok (Protocol.Shutdown { id }) ->
    Atomic.incr t.t_ok;
    send t c (Protocol.ok_response ~id ~cached:false "\"shutting-down\"");
    stop t
  | Ok (Protocol.Simulate { id; job }) -> (
    let key = Protocol.content_key job in
    match reader_span "cache-lookup" (fun () -> Cache.find t.t_cache key) with
    | Some payload ->
      (* content-addressed hit: answered on the reader thread, O(lookup),
         byte-identical to the cold response that filled the entry *)
      Atomic.incr t.t_ok;
      reader_span "respond" (fun () ->
          send t c (Protocol.ok_response ~id ~cached:true payload));
      (match obs with
      | None -> ()
      | Some o ->
        Obs.finish_request o ~trace ~hit:true ~start:t0 ~label:(job_label job))
    | None -> (
      match
        Scheduler.submit t.t_sched ~client:c.c_id
          {
            en_client = c;
            en_id = id;
            en_key = key;
            en_job = job;
            en_trace = trace;
            en_t0 = t0;
          }
      with
      | Ok () -> ()
      | Error { Scheduler.sh_queued; sh_limit } ->
        Atomic.incr t.t_shed;
        Option.iter Obs.on_shed obs;
        send t c (Protocol.shed_response ~id ~queued:sh_queued ~limit:sh_limit)))

let reader_loop t (c : client) =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let oversized () =
    (* no newline within the request bound: reject and drop the connection
       (resynchronizing inside an unbounded line is not worth the state) *)
    Atomic.incr t.t_requests;
    Atomic.incr t.t_errors;
    send t c
      (Protocol.error_response ~id:Json.Null ~code:"oversized"
         (Printf.sprintf "request exceeds %d bytes before a newline"
            t.t_opts.so_max_request))
  in
  let rec drain_lines () =
    let s = Buffer.contents buf in
    match String.index_opt s '\n' with
    | None ->
      if String.length s > t.t_opts.so_max_request then (oversized (); false)
      else true
    | Some i ->
      let line = String.sub s 0 i in
      Buffer.clear buf;
      Buffer.add_substring buf s (i + 1) (String.length s - i - 1);
      let line =
        (* tolerate CRLF clients *)
        let n = String.length line in
        if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
      in
      if String.length line > 0 then handle_request t c line;
      drain_lines ()
  in
  let rec read_loop () =
    match Unix.read c.c_fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      if drain_lines () then read_loop ()
    | exception Unix.Unix_error _ -> ()
  in
  read_loop ();
  Mutex.lock t.t_clients_lock;
  Hashtbl.remove t.t_clients c.c_id;
  Mutex.unlock t.t_clients_lock;
  try Unix.close c.c_fd with Unix.Unix_error _ -> ()

(* --- accept loop -------------------------------------------------------- *)

let accept_one t lfd =
  match Unix.accept lfd with
  | exception Unix.Unix_error _ -> ()
  | fd, _ ->
    let c =
      {
        c_id = Atomic.fetch_and_add t.t_next_client 1;
        c_fd = fd;
        c_wlock = Mutex.create ();
      }
    in
    Atomic.incr t.t_connections;
    Mutex.lock t.t_clients_lock;
    Hashtbl.add t.t_clients c.c_id c;
    Mutex.unlock t.t_clients_lock;
    ignore (Thread.create (fun () -> reader_loop t c) ())

let run t =
  let dispatcher = Thread.create (fun () -> dispatcher_loop t) () in
  let rec accept_loop () =
    if not (stopped t) then begin
      (match Unix.select t.t_listeners [] [] 0.25 with
      | ready, _, _ -> List.iter (accept_one t) ready
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error (Unix.EBADF, _, _) ->
        (* listeners closed by [stop] *)
        ());
      accept_loop ()
    end
  in
  accept_loop ();
  (* Drain: the scheduler is closed, the dispatcher answers what was
     already queued and exits; only then are client connections torn
     down, so no accepted job loses its response. *)
  Thread.join dispatcher;
  Mutex.lock t.t_clients_lock;
  let cs = Hashtbl.fold (fun _ c acc -> c :: acc) t.t_clients [] in
  Hashtbl.reset t.t_clients;
  Mutex.unlock t.t_clients_lock;
  List.iter
    (fun c ->
      try Unix.shutdown c.c_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    cs;
  Log.info ~component:"phloemd" "shut down cleanly (%d requests served)"
    (Atomic.get t.t_requests)
