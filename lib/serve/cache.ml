(* Content-addressed result cache: hex content key -> serialized result
   payload bytes. Payloads are stored and served as opaque bytes so a hit
   is byte-identical to the cold response that filled the entry. FIFO
   bounded and mutex-guarded: client threads look entries up while the
   dispatcher inserts. *)

module Json = Pipette.Telemetry.Json

type t = {
  mutex : Mutex.t;
  tbl : (string, string) Hashtbl.t;
  order : string Queue.t;
  mutable capacity : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable payload_bytes : int; (* bytes currently resident *)
}

type stats = {
  cs_hits : int;
  cs_misses : int;
  cs_evictions : int;
  cs_entries : int;
  cs_capacity : int;
  cs_payload_bytes : int;
}

let create ?(capacity = 256) () =
  if capacity < 1 then invalid_arg "Serve.Cache.create: capacity must be >= 1";
  {
    mutex = Mutex.create ();
    tbl = Hashtbl.create 64;
    order = Queue.create ();
    capacity;
    hits = 0;
    misses = 0;
    evictions = 0;
    payload_bytes = 0;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find t key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some payload ->
        t.hits <- t.hits + 1;
        Some payload
      | None ->
        t.misses <- t.misses + 1;
        None)

let add t key payload =
  with_lock t (fun () ->
      (* Concurrent identical misses both compute; determinism makes their
         payloads identical, so the second insert is simply dropped. *)
      if not (Hashtbl.mem t.tbl key) then begin
        while Queue.length t.order >= t.capacity do
          let victim = Queue.pop t.order in
          (match Hashtbl.find_opt t.tbl victim with
          | Some p -> t.payload_bytes <- t.payload_bytes - String.length p
          | None -> ());
          Hashtbl.remove t.tbl victim;
          t.evictions <- t.evictions + 1
        done;
        Queue.push key t.order;
        Hashtbl.add t.tbl key payload;
        t.payload_bytes <- t.payload_bytes + String.length payload
      end)

let stats t =
  with_lock t (fun () ->
      {
        cs_hits = t.hits;
        cs_misses = t.misses;
        cs_evictions = t.evictions;
        cs_entries = Hashtbl.length t.tbl;
        cs_capacity = t.capacity;
        cs_payload_bytes = t.payload_bytes;
      })

let json_of_stats (s : stats) : Json.t =
  Json.Obj
    [
      ("hits", Json.Int s.cs_hits);
      ("misses", Json.Int s.cs_misses);
      ("evictions", Json.Int s.cs_evictions);
      ("entries", Json.Int s.cs_entries);
      ("capacity", Json.Int s.cs_capacity);
      ("payload_bytes", Json.Int s.cs_payload_bytes);
    ]
