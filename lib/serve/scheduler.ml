(* Bounded job queue with per-client round-robin fairness. Each client has
   its own FIFO; a rotation queue holds the ids of clients with pending
   work, each at most once. [take_batch] pops one job per rotation turn, so
   a client streaming hundreds of requests cannot starve one submitting a
   single job — dispatch order interleaves clients no matter the arrival
   order. The total bound is global: when [queued = limit] a submit is shed
   (explicit backpressure), never blocked or dropped silently.

   Every job is stamped at submit time so queue-wait — the interval between
   enqueue and dispatch — is measured per job and aggregated in [stats];
   it is the service-level signal that separates "the simulator is slow"
   from "the queue is deep". *)

type 'a t = {
  mutex : Mutex.t;
  nonempty : Condition.t; (* signalled on submit and on close *)
  queues : (int, ('a * float) Queue.t) Hashtbl.t; (* job, enqueue time *)
  rotation : int Queue.t; (* client ids with pending jobs, each once *)
  limit : int;
  clock : unit -> float;
  mutable queued : int;
  mutable closed : bool;
  mutable accepted : int;
  mutable shed : int;
  mutable dispatched : int;
  mutable wait_total : float; (* summed queue-wait of dispatched jobs *)
  mutable wait_max : float;
}

type shed_info = { sh_queued : int; sh_limit : int }

type stats = {
  st_accepted : int;
  st_shed : int;
  st_dispatched : int;
  st_queued : int;
  st_limit : int;
  st_wait_total_s : float;
  st_wait_max_s : float;
}

let create ?(limit = 64) ?(clock = Unix.gettimeofday) () =
  if limit < 0 then invalid_arg "Serve.Scheduler.create: negative limit";
  {
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    queues = Hashtbl.create 16;
    rotation = Queue.create ();
    limit;
    clock;
    queued = 0;
    closed = false;
    accepted = 0;
    shed = 0;
    dispatched = 0;
    wait_total = 0.0;
    wait_max = 0.0;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let submit t ~client job =
  with_lock t (fun () ->
      if t.closed then begin
        t.shed <- t.shed + 1;
        Error { sh_queued = t.queued; sh_limit = t.limit }
      end
      else if t.queued >= t.limit then begin
        t.shed <- t.shed + 1;
        Error { sh_queued = t.queued; sh_limit = t.limit }
      end
      else begin
        let q =
          match Hashtbl.find_opt t.queues client with
          | Some q -> q
          | None ->
            let q = Queue.create () in
            Hashtbl.add t.queues client q;
            q
        in
        if Queue.is_empty q then Queue.push client t.rotation;
        Queue.push (job, t.clock ()) q;
        t.queued <- t.queued + 1;
        t.accepted <- t.accepted + 1;
        Condition.signal t.nonempty;
        Ok ()
      end)

(* One job from the client at the head of the rotation; the client re-enters
   the rotation's tail while it still has pending work. Caller holds the
   lock. Returns the job with its queue-wait in seconds. *)
let pop_one t ~now =
  match Queue.take_opt t.rotation with
  | None -> None
  | Some client ->
    let q = Hashtbl.find t.queues client in
    let job, enq = Queue.pop q in
    if not (Queue.is_empty q) then Queue.push client t.rotation;
    t.queued <- t.queued - 1;
    t.dispatched <- t.dispatched + 1;
    let wait = Float.max 0.0 (now -. enq) in
    t.wait_total <- t.wait_total +. wait;
    if wait > t.wait_max then t.wait_max <- wait;
    Some (job, wait)

let take_batch_timed t ~max =
  if max < 1 then
    invalid_arg "Serve.Scheduler.take_batch_timed: max must be >= 1";
  with_lock t (fun () ->
      while t.queued = 0 && not t.closed do
        Condition.wait t.nonempty t.mutex
      done;
      (* closed and drained -> [] signals the dispatcher to exit *)
      let now = t.clock () in
      let rec grab acc n =
        if n = 0 then List.rev acc
        else
          match pop_one t ~now with
          | Some job -> grab (job :: acc) (n - 1)
          | None -> List.rev acc
      in
      grab [] max)

let take_batch t ~max = List.map fst (take_batch_timed t ~max)

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let queued t = with_lock t (fun () -> t.queued)

let stats t =
  with_lock t (fun () ->
      {
        st_accepted = t.accepted;
        st_shed = t.shed;
        st_dispatched = t.dispatched;
        st_queued = t.queued;
        st_limit = t.limit;
        st_wait_total_s = t.wait_total;
        st_wait_max_s = t.wait_max;
      })
