(** phloemd's core server: accepts line-delimited JSON requests on a
    Unix-domain (and optionally TCP) socket, serves repeated requests from
    the content-addressed result cache in O(lookup), and dispatches cold
    jobs through a bounded fair {!Scheduler} onto a {!Phloem_util.Pool} of
    OCaml 5 domains. Per-job failures (deadlock, livelock, budget, bad
    names) become structured JSON error responses on their own connection;
    the daemon never dies with a job. *)

type opts = {
  so_unix : string option;  (** Unix-domain socket path *)
  so_tcp : int option;  (** TCP port on 127.0.0.1 *)
  so_jobs : int;  (** pool domains executing jobs *)
  so_queue_limit : int;  (** job-queue bound; submits past it shed *)
  so_batch : int;  (** max jobs per dispatched pool batch *)
  so_cache_entries : int;  (** result-cache entry bound *)
  so_max_request : int;  (** request line byte bound *)
  so_obs : Obs.t option;
      (** service metrics + request tracing; [None] (the default) leaves
          the request path untouched — cache hits still splice raw payload
          bytes with no extra clock reads *)
}

val default_opts : opts
(** jobs 1, queue limit 64, batch 8, 256 cache entries, 1 MiB requests,
    observability off; no listeners — set [so_unix] and/or [so_tcp]. *)

type t

val create : opts -> t
(** Bind and listen on the configured sockets (the Unix path is created —
    and any stale file replaced — before this returns, so a caller can
    connect as soon as {!run} starts).
    @raise Invalid_argument when neither listener is configured
    @raise Unix.Unix_error when binding fails *)

val run : t -> unit
(** Serve until {!stop}: blocks the calling thread in the accept loop,
    spawning one reader thread per connection and one dispatcher thread
    for job execution. On stop, already-accepted jobs drain and receive
    responses before connections close. *)

val stop : t -> unit
(** Begin graceful shutdown; idempotent, callable from any thread or from
    a signal handler. {!run} returns once queued jobs have drained. *)

val stopped : t -> bool

val stats_json : t -> Pipette.Telemetry.Json.t
(** The stats payload served for [{"kind":"stats"}] requests: request /
    response counters, result-cache and scheduler stats (including
    queue-wait totals), the simulator's memo-cache counters, and the phase
    split of job execution. With observability enabled, an extra
    ["metrics"] section carries the {!Obs.metrics_json} snapshot —
    latency histograms with derived percentiles and span counts. *)
