(** Bounded job queue with per-client round-robin fairness and explicit
    backpressure. Each client has its own FIFO; dispatch interleaves
    clients one job per turn, so a chatty client cannot starve a quiet
    one. The bound is global: a submit past it is {e shed} (reported to
    the caller), never blocked or silently dropped. *)

type 'a t

type shed_info = { sh_queued : int; sh_limit : int }

type stats = {
  st_accepted : int;
  st_shed : int;
  st_dispatched : int;
  st_queued : int;
  st_limit : int;
  st_wait_total_s : float;
      (** summed queue-wait (enqueue to dispatch) of dispatched jobs *)
  st_wait_max_s : float;
}

val create : ?limit:int -> ?clock:(unit -> float) -> unit -> 'a t
(** [limit] (default 64) bounds the total queued jobs across all clients;
    [limit = 0] sheds every submit (useful for tests and drain mode).
    [clock] (default [Unix.gettimeofday]) stamps jobs at submit time for
    queue-wait measurement; injectable for deterministic tests.
    @raise Invalid_argument on a negative limit. *)

val submit : 'a t -> client:int -> 'a -> (unit, shed_info) result
(** Enqueue a job for [client], or shed it when the queue is full or the
    scheduler is closed. Never blocks. *)

val take_batch : 'a t -> max:int -> 'a list
(** Block until at least one job is available (or the scheduler is closed),
    then pop up to [max] jobs round-robin across clients. [[]] means closed
    and fully drained — the dispatcher's exit signal.
    @raise Invalid_argument if [max < 1]. *)

val take_batch_timed : 'a t -> max:int -> ('a * float) list
(** Like {!take_batch} but each job carries its queue-wait in seconds
    (dispatch time minus enqueue time, clamped at 0). *)

val close : 'a t -> unit
(** Stop accepting submits (they shed) and wake blocked takers; already
    queued jobs still drain through {!take_batch}. *)

val queued : 'a t -> int
val stats : 'a t -> stats
