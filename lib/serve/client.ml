(* Minimal blocking client for phloemd's line protocol, used by
   `simulate --remote` and the tests. *)

let connect_unix path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let with_unix path f =
  let fd = connect_unix path in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> f fd)

let send_line fd line =
  let data = Bytes.of_string (line ^ "\n") in
  let n = Bytes.length data in
  let rec loop off =
    if off < n then loop (off + Unix.write fd data off (n - off))
  in
  loop 0

(* One response line, without its newline. @raise End_of_file if the
   daemon hangs up first. *)
let recv_line fd =
  let buf = Buffer.create 1024 in
  let b = Bytes.create 1 in
  let rec loop () =
    match Unix.read fd b 0 1 with
    | 0 -> if Buffer.length buf = 0 then raise End_of_file else Buffer.contents buf
    | _ ->
      if Bytes.get b 0 = '\n' then Buffer.contents buf
      else begin
        Buffer.add_char buf (Bytes.get b 0);
        loop ()
      end
  in
  loop ()

let request fd line =
  send_line fd line;
  recv_line fd
