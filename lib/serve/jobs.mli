(** Shared binding and execution of compile+simulate jobs: the substrate
    under both `bin/simulate.exe` and phloemd's dispatcher. *)

exception Bad_job of string
(** Unknown benchmark / input / variant: the job can never run (as opposed
    to a run-time pipeline failure, which raises
    {!Phloem_ir.Forensics.Pipeline_failure}). *)

val graph_names : string list

val bind :
  bench:string -> input:string -> scale:float -> Phloem_workloads.Workload.bound
(** Bind a named benchmark to its named generated input at [scale].
    @raise Bad_job on unknown names. *)

val variant_pipeline :
  Phloem_workloads.Workload.bound ->
  variant:string ->
  stages:int ->
  threads:int ->
  Phloem_ir.Types.pipeline * Phloem_workloads.Workload.inputs
(** Select the serial / phloem / data-parallel / manual pipeline of a bound
    workload. @raise Bad_job on an unknown or unavailable variant. *)

val run : ?obs:Obs.t -> ?trace:int -> Protocol.job -> string
(** Execute one job — serial baseline plus requested variant, faults
    injected into the variant only — and serialize the result payload.
    Serialization is deterministic: identical jobs yield identical bytes,
    which is what the daemon's content-addressed cache relies on. Phase
    wall time is charged to {!Phloem_harness.Phases}; with [obs], each
    phase is additionally recorded as a span under request id [trace] on
    the executing worker's track, nested in an ["execute"] span.
    @raise Bad_job on unknown names
    @raise Phloem_ir.Forensics.Pipeline_failure on deadlock/livelock/budget *)
