(* Binding and execution of compile+simulate jobs. This is the shared
   substrate of `bin/simulate.exe` (local and --remote runs) and phloemd's
   dispatcher: one place maps (bench, input, scale) names to bound
   workloads, picks the variant pipeline, runs serial baseline + variant,
   and serializes the result payload. Payload serialization is
   deterministic, which is what lets the daemon cache payload bytes. *)

open Phloem_workloads
module Json = Pipette.Telemetry.Json

exception Bad_job of string
(* unknown bench / input / variant: the job can never run, as opposed to a
   run-time pipeline failure *)

let graph_names =
  [ "internet"; "USA-road-d-NY"; "coAuthorsDBLP"; "hugetrace-00000"; "Freescale1";
    "as-Skitter"; "USA-road-d-USA" ]

let matrix_names () =
  List.map (fun i -> i.Phloem_sparse.Inputs.name) (Phloem_sparse.Inputs.all ())

let bind ~bench ~input ~scale : Workload.bound =
  match bench with
  | "bfs" | "cc" | "prd" | "radii" ->
    if not (List.mem input graph_names) then
      raise (Bad_job (Printf.sprintf "unknown graph %s" input));
    let g =
      Lazy.force (Phloem_graph.Inputs.find ~scale input).Phloem_graph.Inputs.graph
    in
    (match bench with
    | "bfs" -> Bfs.bind g
    | "cc" -> Cc.bind g
    | "prd" -> Prd.bind g
    | _ -> Radii.bind g)
  | "spmm" ->
    if not (List.mem input (matrix_names ())) then
      raise (Bad_job (Printf.sprintf "unknown matrix %s" input));
    let m =
      Lazy.force
        (Phloem_sparse.Inputs.find ~scale:(0.12 *. scale) input)
          .Phloem_sparse.Inputs.matrix
    in
    Spmm.bind m (Phloem_sparse.Csr_matrix.transpose m)
  | "spmv" | "residual" | "mtmul" | "sddmm" ->
    if not (List.mem input (matrix_names ())) then
      raise (Bad_job (Printf.sprintf "unknown matrix %s" input));
    let m =
      Lazy.force
        (Phloem_sparse.Inputs.find ~scale:(0.35 *. scale) input)
          .Phloem_sparse.Inputs.matrix
    in
    let kind =
      match bench with
      | "spmv" -> Taco_kernels.Spmv
      | "residual" -> Taco_kernels.Residual
      | "mtmul" -> Taco_kernels.Mtmul
      | _ -> Taco_kernels.Sddmm
    in
    Taco_kernels.bind kind m
  | other -> raise (Bad_job (Printf.sprintf "unknown benchmark %s" other))

let variant_pipeline (b : Workload.bound) ~variant ~stages ~threads =
  let serial_p, serial_in = b.Workload.b_serial in
  match variant with
  | "serial" -> (serial_p, serial_in)
  | "phloem" -> (Phloem.Compile.static_flow ~stages serial_p, serial_in)
  | "data-parallel" -> b.Workload.b_data_parallel ~threads
  | "manual" -> (
    match b.Workload.b_manual with
    | Some mp -> mp
    | None -> raise (Bad_job "no manual pipeline for this benchmark"))
  | other -> raise (Bad_job (Printf.sprintf "unknown variant %s" other))

(* Empty traces report 0 cycles; keep the derived ratios finite. *)
let fdiv a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b

let payload_json ~(job : Protocol.job) ~valid ~serial_cycles ~faults
    (r : Pipette.Sim.run) : Json.t =
  let t = r.Pipette.Sim.sr_timing in
  let meta =
    [
      ("bench", Json.Str job.Protocol.j_bench);
      ("variant", Json.Str job.Protocol.j_variant);
      ("input", Json.Str job.Protocol.j_input);
      ("scale", Json.Float job.Protocol.j_scale);
      ("valid", Json.Bool valid);
      ("serial_cycles", Json.Int serial_cycles);
      ("speedup", Json.Float (fdiv serial_cycles t.Pipette.Engine.cycles));
    ]
  in
  let core =
    match Pipette.Sim.json_of_run r with
    | Json.Obj fields -> fields
    | j -> [ ("run", j) ]
  in
  let flt =
    match faults with
    | Some f -> [ ("faults", Pipette.Faults.json_of_counters f) ]
    | None -> []
  in
  Json.Obj (meta @ core @ flt)

(* Execute one job to its serialized payload bytes. Phase wall time is
   charged to the shared Harness.Phases accumulators (the daemon's stats
   endpoint reports the split); a cache-served request never reaches this
   function, so a hit records no compile/trace/simulate phase at all.
   With [obs], each phase additionally becomes a span on the executing
   worker's track (named via Phases.name), nested in an "execute" span —
   the per-request view the global accumulators cannot give.
   @raise Bad_job on unknown bench/input/variant
   @raise Phloem_ir.Forensics.Pipeline_failure on deadlock/livelock/budget *)
let run ?obs ?(trace = 0) (job : Protocol.job) : string =
  let module P = Phloem_harness.Phases in
  let track =
    lazy (Printf.sprintf "worker-%d" (Domain.self () :> int))
  in
  let phase_span ph f =
    match obs with
    | None -> P.timed ph f
    | Some o ->
      Obs.span o ~trace ~track:(Lazy.force track) ~name:(P.name ph) (fun () ->
          P.timed ph f)
  in
  let named_span name f =
    match obs with
    | None -> f ()
    | Some o -> Obs.span o ~trace ~track:(Lazy.force track) ~name f
  in
  named_span "execute" @@ fun () ->
  let b = bind ~bench:job.Protocol.j_bench ~input:job.Protocol.j_input
      ~scale:job.Protocol.j_scale
  in
  let serial_p, serial_in = b.Workload.b_serial in
  let p, inputs =
    variant_pipeline b ~variant:job.Protocol.j_variant
      ~stages:job.Protocol.j_stages ~threads:job.Protocol.j_threads
  in
  let faults = Option.map Pipette.Faults.create job.Protocol.j_inject in
  phase_span P.Compile (fun () ->
      ignore (Pipette.Sim.prepare serial_p);
      ignore (Pipette.Sim.prepare p));
  let serial_fr =
    phase_span P.Trace (fun () ->
        Pipette.Sim.functional ~inputs:serial_in serial_p)
  in
  let fr = phase_span P.Trace (fun () -> Pipette.Sim.functional ~inputs p) in
  let sr =
    phase_span P.Simulate (fun () -> Pipette.Sim.simulate serial_p serial_fr)
  in
  let r =
    phase_span P.Simulate (fun () ->
        Pipette.Sim.simulate ?faults ?watchdog:job.Protocol.j_watchdog
          ?cycle_budget:job.Protocol.j_cycle_budget p fr)
  in
  P.add_ops (Pipette.Sim.instrs sr);
  P.add_ops (Pipette.Sim.instrs r);
  let valid = Workload.check b r.Pipette.Sim.sr_functional in
  named_span "serialize" @@ fun () ->
  Json.to_string
    (payload_json ~job ~valid ~serial_cycles:(Pipette.Sim.cycles sr) ~faults r)
