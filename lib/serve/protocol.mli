(** phloemd's wire protocol: line-delimited JSON requests and responses.

    A request is one JSON object per line:
    {v
      {"kind":"simulate","id":1,"bench":"bfs","variant":"phloem",
       "input":"internet","scale":0.05}
      {"kind":"stats"}  {"kind":"ping"}  {"kind":"shutdown"}
    v}

    A response is one JSON object per line with a ["status"] of ["ok"],
    ["error"], or ["shed"]. Ok responses carry the result payload in a
    trailing ["result"] field spliced as raw bytes, so a cache hit returns
    the exact bytes of the cold run that filled the cache. *)

module Json = Pipette.Telemetry.Json

type job = {
  j_bench : string;
  j_variant : string;  (** serial | phloem | data-parallel | manual *)
  j_input : string;
  j_scale : float;
  j_stages : int;  (** static-flow stage count for the phloem variant *)
  j_threads : int;  (** thread count for the data-parallel variant *)
  j_inject : Pipette.Faults.plan option;
  j_watchdog : int option;
  j_cycle_budget : int option;
}
(** One compile+simulate job. Jobs carry generator parameters, not program
    text: generation and compilation are deterministic in these fields, so
    they are the content the result cache is addressed by. *)

val default_job : job
(** bfs / phloem / internet at scale 1.0, stages 4, threads 4, no faults. *)

type request =
  | Simulate of { id : Json.t; job : job }
  | Stats of { id : Json.t }
  | Ping of { id : Json.t }
  | Shutdown of { id : Json.t }

type reject = { rj_code : string; rj_msg : string }
(** [rj_code] is ["oversized"], ["bad-request"], or ["unknown-kind"]. *)

val parse_request : max_bytes:int -> string -> (request, reject) result
(** Parse one request line. Rejects lines longer than [max_bytes] before
    parsing; client-supplied ids are echoed but sanitized to scalar JSON. *)

val simulate_request : ?id:Json.t -> job -> string
(** Encode a simulate request line (client side). *)

val plain_request : ?id:Json.t -> string -> string
(** Encode a bodyless request line of the given kind (ping/stats/...). *)

val canonical_of_job : job -> string
(** The canonical serialization the content key hashes: every job field,
    the machine-config digest, the functional op budget, and a key-schema
    version tag. Documented in DESIGN.md "Simulation as a service". *)

val content_key : job -> string
(** Hex digest of {!canonical_of_job} — the result cache's address. *)

val ok_response : id:Json.t -> cached:bool -> string -> string
(** [ok_response ~id ~cached payload] splices the raw payload bytes into
    the envelope as the trailing ["result"] field. *)

val error_response :
  id:Json.t -> code:string -> ?failure:Json.t -> string -> string
(** Structured error envelope; [failure] carries a forensics report for
    deadlock / livelock / budget-exhausted jobs. *)

val shed_response : id:Json.t -> queued:int -> limit:int -> string
(** Backpressure envelope: the bounded job queue is full and the request
    was not enqueued. *)

val response_status : Json.t -> string
val response_cached : Json.t -> bool

val response_payload_raw : string -> string option
(** Raw bytes of an ok response line's ["result"] field, exactly as the
    daemon spliced them (byte-identical across cached and cold responses). *)
