(* Service-level observability for phloemd: one [t] bundles a
   Phloem_util.Metrics registry, a span recorder for the request timeline,
   and the slow-request threshold. The server, scheduler glue, and job
   runner all instrument through this module so the daemon has a single
   metrics surface.

   Everything here is optional: the server takes [Obs.t option], and [None]
   (the default) leaves the request path untouched — cache hits still
   splice raw payload bytes with no extra clock reads.

   Span taxonomy (tracks are logical threads in the Chrome trace):
     reader-<client>   parse, cache-lookup, respond (hit path)
     queue             queue-wait (enqueue -> dispatch, per job)
     dispatcher        dispatch (per batch), respond (cold path)
     worker-<domain>   execute, containing compile/trace/simulate (names
                       from Harness.Phases) and serialize *)

module Json = Pipette.Telemetry.Json
module M = Phloem_util.Metrics
module Log = Phloem_util.Log

type t = {
  ob_metrics : M.t;
  ob_recorder : M.recorder;
  ob_slow_s : float option;
  ob_next_trace : int Atomic.t;
  (* hot-path handles, resolved once *)
  ob_requests : M.counter;
  ob_hits : M.counter;
  ob_misses : M.counter;
  ob_shed : M.counter;
  ob_errors : M.counter;
  ob_hit_latency : M.histogram;
  ob_miss_latency : M.histogram;
  ob_queue_wait : M.histogram;
}

let create ?slow_ms ?max_spans () =
  let m = M.create () in
  {
    ob_metrics = m;
    ob_recorder = M.recorder ?max_spans ();
    ob_slow_s = Option.map (fun ms -> ms /. 1000.0) slow_ms;
    ob_next_trace = Atomic.make 1;
    ob_requests = M.counter m "phloemd_requests";
    ob_hits = M.counter m "phloemd_cache_hits";
    ob_misses = M.counter m "phloemd_cache_misses";
    ob_shed = M.counter m "phloemd_shed";
    ob_errors = M.counter m "phloemd_errors";
    ob_hit_latency = M.histogram m "phloemd_request_latency_hit_s";
    ob_miss_latency = M.histogram m "phloemd_request_latency_miss_s";
    ob_queue_wait = M.histogram m "phloemd_queue_wait_s";
  }

let metrics t = t.ob_metrics
let spans t = M.spans t.ob_recorder
let now () = Unix.gettimeofday ()
let next_trace t = Atomic.fetch_and_add t.ob_next_trace 1

let record t ~trace ~track ~name ~start ~stop =
  M.record t.ob_recorder ~trace ~track ~name ~start ~stop

(* Time a section and record it as a span; the span is recorded also when
   [f] raises (the time was spent either way). *)
let span t ~trace ~track ~name f =
  let start = now () in
  Fun.protect
    ~finally:(fun () -> record t ~trace ~track ~name ~start ~stop:(now ()))
    f

let on_request t = M.incr t.ob_requests
let on_shed t = M.incr t.ob_shed
let on_error t = M.incr t.ob_errors

let observe_queue_wait t wait = M.observe t.ob_queue_wait wait

(* Close out one simulate request: latency goes to the hit or miss
   histogram, and past the slow threshold the request is logged with its
   identity so an operator can correlate with the trace id. *)
let finish_request t ~trace ~hit ~start ~label =
  let latency = now () -. start in
  if hit then begin
    M.incr t.ob_hits;
    M.observe t.ob_hit_latency latency
  end
  else begin
    M.incr t.ob_misses;
    M.observe t.ob_miss_latency latency
  end;
  match t.ob_slow_s with
  | Some thr when latency >= thr ->
    Log.warn ~component:"phloemd" "slow request trace=%d %s: %.1f ms (%s)"
      trace label (latency *. 1000.0)
      (if hit then "cache hit" else "cold")
  | _ -> ()

(* --- exposition --------------------------------------------------------- *)

let hist_json h : Json.t =
  let pct p =
    if Phloem_util.Stats.hist_count h = 0 then Json.Null
    else Json.Float (Phloem_util.Stats.percentile_hist p h)
  in
  let opt_float = function None -> Json.Null | Some v -> Json.Float v in
  Json.Obj
    [
      ("count", Json.Int (Phloem_util.Stats.hist_count h));
      ("sum", Json.Float (Phloem_util.Stats.hist_sum h));
      ("min", opt_float (Phloem_util.Stats.hist_min h));
      ("max", opt_float (Phloem_util.Stats.hist_max h));
      ("mean", Json.Float (Phloem_util.Stats.hist_mean h));
      ("p50", pct 0.50);
      ("p95", pct 0.95);
      ("p99", pct 0.99);
      ( "buckets",
        Json.List
          (List.map
             (fun (lo, hi, c) ->
               Json.List [ Json.Float lo; Json.Float hi; Json.Int c ])
             (Phloem_util.Stats.hist_buckets h)) );
    ]

let metrics_json t : Json.t =
  let snap = M.snapshot t.ob_metrics in
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) snap.M.sn_counters)
      );
      ( "gauges",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) snap.M.sn_gauges)
      );
      ( "histograms",
        Json.Obj (List.map (fun (k, h) -> (k, hist_json h)) snap.M.sn_hists) );
      ( "spans",
        Json.Obj
          [
            ("recorded", Json.Int (M.span_count t.ob_recorder));
            ("dropped", Json.Int (M.dropped_spans t.ob_recorder));
          ] );
    ]

(* Chrome trace: one process ("phloemd"), one tid per span track in order
   of first appearance. Wall-clock seconds become microseconds relative to
   the earliest span so the timeline starts at 0; sub-microsecond spans
   round up to 1 µs to stay visible. *)
let trace_json t : Json.t =
  let spans = M.spans t.ob_recorder in
  let tids = Hashtbl.create 16 in
  let order = ref [] in
  let tid_of track =
    match Hashtbl.find_opt tids track with
    | Some id -> id
    | None ->
      let id = Hashtbl.length tids in
      Hashtbl.add tids track id;
      order := (track, id) :: !order;
      id
  in
  let epoch =
    match spans with [] -> 0.0 | s :: _ -> s.M.sp_start
  in
  let us v = int_of_float (Float.round ((v -. epoch) *. 1e6)) in
  let trace_spans =
    List.map
      (fun (s : M.span) ->
        {
          Pipette.Telemetry.te_pid = 0;
          te_tid = tid_of s.M.sp_track;
          te_cat = "request";
          te_name = s.M.sp_name;
          te_ts = us s.M.sp_start;
          te_dur = max 1 (us s.M.sp_stop - us s.M.sp_start);
        })
      spans
  in
  let thread_names = List.rev_map (fun (tr, id) -> ((0, id), tr)) !order in
  Pipette.Telemetry.trace_events_json
    ~process_names:[ (0, "phloemd") ]
    ~thread_names trace_spans

(* Atomic write (tmp + rename): a scrape or a crash never observes a
   half-written file. *)
let write_string_file file s =
  let tmp = file ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc s;
      output_char oc '\n');
  Sys.rename tmp file

let write_metrics_file t file =
  if Filename.check_suffix file ".prom" then
    write_string_file file (M.to_prometheus (M.snapshot t.ob_metrics))
  else write_string_file file (Json.to_string (metrics_json t))

let write_trace_file t file =
  write_string_file file (Json.to_string (trace_json t))
