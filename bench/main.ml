(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's experiment index), plus Bechamel
   micro-benchmarks of the simulator's primitives.

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe fig9            # one experiment
     dune exec bench/main.exe table3 fig6 ...
     PHLOEM_SCALE=0.5 dune exec bench/main.exe  # smaller inputs
     dune exec bench/main.exe micro           # Bechamel microbenches only
     dune exec bench/main.exe --json out.json # fig9-11 data as JSON
     dune exec bench/main.exe -- --jobs 4     # parallel sweep on 4 domains
     dune exec bench/main.exe -- --wall --jobs 4   # wall-clock speedup
                                              # report -> BENCH_parallel.json
     dune exec bench/main.exe -- --compare old.json new.json
                                              # regression diff; exit 4 on a
                                              # regression (0 with --warn) *)

let micro () =
  print_endline "\n==== Bechamel micro-benchmarks (simulator primitives) ====";
  let open Bechamel in
  let open Toolkit in
  let test_prng =
    Test.make ~name:"prng.next"
      (Staged.stage
         (let rng = Phloem_util.Prng.create 42 in
          fun () -> ignore (Phloem_util.Prng.next rng)))
  in
  let test_cache =
    Test.make ~name:"cache.access (streaming)"
      (Staged.stage
         (let caches = Pipette.Cache.create Pipette.Config.default in
          let addr = ref 0x100000 in
          fun () ->
            addr := !addr + 64;
            ignore (Pipette.Cache.access caches ~core:0 ~addr:!addr ~now:0)))
  in
  let test_predictor =
    Test.make ~name:"predictor.predict_update"
      (Staged.stage
         (let p = Pipette.Predictor.create ~entries:4096 ~history_bits:8 ~n_threads:1 in
          let i = ref 0 in
          fun () ->
            incr i;
            ignore
              (Pipette.Predictor.predict_update p ~thread:0 ~pc:42
                 ~taken:(!i land 3 <> 0))))
  in
  let test_interp =
    Test.make ~name:"interp+engine: 2-stage pipeline (n=64)"
      (Staged.stage
         (let open Phloem_ir.Builder in
          let p =
            pipeline "micro"
              ~params:[ ("n", Phloem_ir.Types.Vint 64) ]
              ~queues:[ queue 0 ]
              [
                stage "prod" [ for_ "i" (int 0) (v "n") [ enq 0 (v "i") ] ];
                stage "cons" [ for_ "i" (int 0) (v "n") [ "x" <-- deq 0 ] ];
              ]
          in
          fun () -> ignore (Pipette.Sim.run p)))
  in
  let test_compile =
    Test.make ~name:"phloem: compile BFS (static flow)"
      (Staged.stage
         (let g = Phloem_graph.Gen.grid ~width:8 ~height:8 ~seed:1 in
          let b = Phloem_workloads.Bfs.bind g in
          let serial = fst b.Phloem_workloads.Workload.b_serial in
          fun () -> ignore (Phloem.Compile.static_flow ~stages:4 serial)))
  in
  let benchmark test =
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) () in
    let raw = Benchmark.all cfg instances test in
    let results =
      Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) Instance.monotonic_clock raw
    in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.printf "  %-42s %12.1f ns/run\n%!" name est
        | _ -> Printf.printf "  %-42s (no estimate)\n%!" name)
      results
  in
  List.iter
    (fun t -> benchmark (Bechamel.Test.make_grouped ~name:"pipette" [ t ]))
    [ test_prng; test_cache; test_predictor; test_interp; test_compile ]

(* --- flag parsing (no cmdliner dep here: keep bechamel the only extra) --- *)

type opts = {
  o_json : string option; (* --json FILE: fig9-11 data as JSON *)
  o_jobs : int; (* --jobs N: domains for the parallel sweep *)
  o_wall : string option; (* --wall[=FILE]: wall-clock speedup report *)
  o_pgo : bool; (* --no-pgo: skip profile-guided search *)
  o_only : string list option; (* --only A,B: restrict sweep inputs *)
  o_compare : (string * string) option; (* --compare OLD NEW: diff reports *)
  o_warn : bool; (* --warn: report regressions without failing *)
  o_args : string list; (* positional experiment names *)
}

let parse_args args =
  let prefixed p a =
    let n = String.length p in
    if String.length a > n && String.sub a 0 n = p then
      Some (String.sub a n (String.length a - n))
    else None
  in
  let split_commas s = String.split_on_char ',' s |> List.filter (( <> ) "") in
  let rec go o = function
    | [] -> { o with o_args = List.rev o.o_args }
    | "--json" :: file :: rest -> go { o with o_json = Some file } rest
    | "--jobs" :: n :: rest -> go { o with o_jobs = int_of_string n } rest
    | "--wall" :: rest -> go { o with o_wall = Some "BENCH_parallel.json" } rest
    | "--no-pgo" :: rest -> go { o with o_pgo = false } rest
    | "--only" :: names :: rest ->
      go { o with o_only = Some (split_commas names) } rest
    | "--compare" :: old_f :: new_f :: rest ->
      go { o with o_compare = Some (old_f, new_f) } rest
    | "--warn" :: rest -> go { o with o_warn = true } rest
    | a :: rest -> (
      match
        ( prefixed "--json=" a,
          prefixed "--jobs=" a,
          prefixed "--wall=" a,
          prefixed "--only=" a )
      with
      | Some f, _, _, _ -> go { o with o_json = Some f } rest
      | _, Some n, _, _ -> go { o with o_jobs = int_of_string n } rest
      | _, _, Some f, _ -> go { o with o_wall = Some f } rest
      | _, _, _, Some s -> go { o with o_only = Some (split_commas s) } rest
      | None, None, None, None -> go { o with o_args = a :: o.o_args } rest)
  in
  go
    {
      o_json = None;
      o_jobs = Phloem_util.Pool.default_jobs ();
      o_wall = None;
      o_pgo = true;
      o_only = None;
      o_compare = None;
      o_warn = false;
      o_args = [];
    }
    args

(* --- --compare OLD NEW: diff two evaluation JSON reports and exit 4 on a
   regression beyond the default thresholds (unless --warn). --- *)

let compare_reports ~warn old_file new_file =
  let module R = Phloem_harness.Regress in
  Printf.printf "==== Benchmark comparison: %s -> %s ====\n" old_file new_file;
  match R.compare_files ~old_file ~new_file () with
  | exception Pipette.Telemetry.Json.Parse_error msg ->
    Printf.eprintf "error: malformed report: %s\n" msg;
    exit 2
  | exception Sys_error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 2
  | o ->
    print_string (R.render o);
    if R.regressed o then
      if warn then
        print_endline "regressions found (exit 0: --warn)"
      else begin
        print_endline "regressions found";
        exit 4
      end

(* --- --wall: wall-clock seconds of the standard sweep, serial vs pooled,
   with a byte-equality check of the two JSON reports and a phase-split
   attribution (compile / trace / simulate) of where the time went. --- *)

(* Committed pre-refactor reference: the tree-walking sweep at the CI smoke
   configuration (PHLOEM_SCALE=0.05, --no-pgo, smoke inputs) took this many
   serial wall seconds end to end. The sweep is deterministic, so it
   replayed the same simulated µops the compiled core replays today — which
   makes [ops / pre_refactor_serial_s] a conservative upper bound on the old
   engine throughput (the old sweep spent at least its simulate phase, i.e.
   at most its whole wall, producing those ops). The engine-speedup ratio
   in the report divides current simulate-phase throughput by it. *)
let pre_refactor_serial_s = 1.21287

let wall_benchmark ~jobs ~scale ?only_inputs ~pgo ~file ~json_file () =
  let module E = Phloem_harness.Experiments in
  let module P = Phloem_harness.Phases in
  let module Json = Pipette.Telemetry.Json in
  Printf.printf "==== Wall-clock benchmark: standard sweep, --jobs 1 vs --jobs %d ====\n%!"
    jobs;
  let time f =
    let t0 = Unix.gettimeofday () in
    let x = f () in
    (x, Unix.gettimeofday () -. t0)
  in
  (* The serial leg runs three times: the first cold (caches cleared), so
     its phase split shows the one-time compile+trace cost next to the
     per-config simulate cost; the rest trace-warm. Engine throughput is
     taken from the fastest repetition's simulate phase — every repetition
     replays the identical simulated work, and the minimum over repetitions
     is the standard noise-robust cost estimator on a shared machine. *)
  let serial_reps = 3 in
  let serial_runs = ref [] in
  for rep = 1 to serial_reps do
    if rep = 1 then Pipette.Sim.clear_caches ();
    P.reset ();
    let all, s = time (fun () -> E.collect ?only_inputs ~pgo ~scale ()) in
    serial_runs := (all, s, P.snapshot ()) :: !serial_runs
  done;
  let serial_runs = List.rev !serial_runs in
  let serial_all, serial_s, sp =
    match serial_runs with r :: _ -> r | [] -> assert false
  in
  let min_simulate_s =
    List.fold_left
      (fun acc (_, _, (s : P.snapshot)) -> min acc s.P.ph_simulate_s)
      infinity serial_runs
  in
  Printf.printf
    "  --jobs 1 : %8.2f s   (compile %.3f s, trace %.3f s, simulate %.3f s; \
     best-of-%d simulate %.3f s)\n\
     %!"
    serial_s sp.P.ph_compile_s sp.P.ph_trace_s sp.P.ph_simulate_s serial_reps
    min_simulate_s;
  let sp_cache =
    match List.rev serial_runs with (_, _, s) :: _ -> s | [] -> assert false
  in
  (* The parallel leg runs cache-warm: every (pipeline, input) trace is
     already memoized from the serial leg, so pool thunks pay only for
     timing replays — the honest measure of sweep parallelism now that
     compilation and functional execution amortize across configs. Also
     best-of-3, for the same noise robustness as the serial leg. *)
  (* The pool exists only for this leg: idle worker domains would otherwise
     join every minor-collection barrier during the serial leg and tax the
     single-thread measurement. Domain spawn happens outside the timers. *)
  let effective_jobs, par_runs =
    Phloem_util.Pool.with_pool ~jobs @@ fun pool ->
    let acc = ref [] in
    for _rep = 1 to serial_reps do
      P.reset ();
      let all, s =
        time (fun () -> E.collect ~pool ?only_inputs ~pgo ~scale ())
      in
      acc := (all, s, P.snapshot ()) :: !acc
    done;
    (Phloem_util.Pool.jobs pool, List.rev !acc)
  in
  let par_all, _, pp = match par_runs with r :: _ -> r | [] -> assert false in
  let par_s =
    List.fold_left (fun acc (_, s, _) -> min acc s) infinity par_runs
  in
  Printf.printf
    "  --jobs %-2d: %8.2f s   (compile %.3f s, trace %.3f s, simulate %.3f s; \
     best of %d)\n\
     %!"
    effective_jobs par_s pp.P.ph_compile_s pp.P.ph_trace_s pp.P.ph_simulate_s
    serial_reps;
  let serial_json = Json.to_string (E.json_of_collection serial_all) in
  let par_json = Json.to_string (E.json_of_collection par_all) in
  (* every repetition of either leg must reproduce the same bytes *)
  let deterministic =
    String.equal serial_json par_json
    && List.for_all
         (fun (all, _, _) ->
           String.equal serial_json (Json.to_string (E.json_of_collection all)))
         (List.tl serial_runs @ List.tl par_runs)
  in
  (* All derived rates and ratios go through the Phases guards: a smoke
     sweep small enough to finish inside the clock resolution must report
     0.0, never inf/NaN (which would poison the JSON report and every
     later --compare against it). *)
  let speedup = P.ratio serial_s par_s in
  Printf.printf "  speedup  : %8.2fx   (deterministic: %b)\n%!" speedup deterministic;
  let simulated_ops = sp.P.ph_ops in
  let ops_per_sec = P.per_second simulated_ops min_simulate_s in
  let pre_ops_per_sec = P.per_second simulated_ops pre_refactor_serial_s in
  let engine_speedup = P.ratio ops_per_sec pre_ops_per_sec in
  Printf.printf
    "  engine   : %8.2f Mops/s single-thread (%.1fx the pre-refactor sweep's %.2f Mops/s)\n%!"
    (ops_per_sec /. 1e6) engine_speedup (pre_ops_per_sec /. 1e6);
  let n_runs =
    List.fold_left (fun acc (_, rs) -> acc + List.length rs) 0 serial_all
  in
  let phases (s : P.snapshot) =
    Json.Obj
      [
        ("compile_s", Json.Float s.P.ph_compile_s);
        ("trace_s", Json.Float s.P.ph_trace_s);
        ("simulate_s", Json.Float s.P.ph_simulate_s);
      ]
  in
  Json.to_file file
    (Json.Obj
       [
         ("jobs", Json.Int effective_jobs);
         ("requested_jobs", Json.Int jobs);
         ("recommended_domains", Json.Int (Phloem_util.Pool.default_jobs ()));
         ("scale", Json.Float scale);
         ("pgo", Json.Bool pgo);
         ("benchmarks", Json.Int (List.length serial_all));
         ("sweep_jobs", Json.Int n_runs);
         ("serial_wall_s", Json.Float serial_s);
         ("serial_reps", Json.Int serial_reps);
         ("serial_simulate_best_s", Json.Float min_simulate_s);
         ("parallel_wall_s", Json.Float par_s);
         ("speedup", Json.Float speedup);
         ("deterministic", Json.Bool deterministic);
         ("serial_phases", phases sp);
         ("parallel_phases", phases pp);
         ("simulated_ops", Json.Int simulated_ops);
         ("ops_per_sec", Json.Float ops_per_sec);
         ("pre_refactor_wall_s", Json.Float pre_refactor_serial_s);
         ("pre_refactor_ops_per_sec", Json.Float pre_ops_per_sec);
         ("engine_speedup", Json.Float engine_speedup);
         ( "trace_cache",
           Json.Obj
             [
               ("serial_hits", Json.Int sp_cache.P.ph_trace_hits);
               ("serial_misses", Json.Int sp_cache.P.ph_trace_misses);
               ( "parallel_hits",
                 Json.Int (pp.P.ph_trace_hits - sp_cache.P.ph_trace_hits) );
               ( "parallel_misses",
                 Json.Int (pp.P.ph_trace_misses - sp_cache.P.ph_trace_misses) );
             ] );
       ]);
  Printf.printf "  report written to %s\n%!" file;
  (match json_file with
  | Some f ->
    Json.to_file f (E.json_of_collection par_all);
    Printf.printf "  evaluation JSON written to %s\n%!" f
  | None -> ());
  if not deterministic then exit 3

let () =
  let module E = Phloem_harness.Experiments in
  (* The tracer and the workload binders allocate heavily between engine
     replays; with the default 256k-word minor heap the resulting minor
     collections land inside the timed simulate windows and cost ~25% of
     engine throughput. A 4M-word minor heap (per domain) moves that work
     out of the measurement. Set before any domain spawns so pool domains
     inherit it. *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 4 * 1024 * 1024 };
  let scale = E.default_scale () in
  let o = parse_args (Array.to_list Sys.argv |> List.tl) in
  match o.o_wall with
  | Some file ->
    (* --wall manages its own pool: the serial leg must run without idle
       worker domains in the process *)
    wall_benchmark ~jobs:o.o_jobs ~scale ?only_inputs:o.o_only ~pgo:o.o_pgo
      ~file ~json_file:o.o_json ()
  | None ->
  Phloem_util.Pool.with_pool ~jobs:o.o_jobs @@ fun pool ->
  let dispatch = function
    | "table3" -> E.table3 ()
    | "table4" -> E.table4 ~scale ()
    | "table5" -> E.table5 ~scale ()
    | "fig6" -> E.fig6 ~scale ()
    | "fig9" -> E.fig9 ~pool ~scale ()
    | "fig10" -> E.fig10 ~pool ~scale ()
    | "fig11" -> E.fig11 ~pool ~scale ()
    | "fig12" -> E.fig12 ~pool ~scale ()
    | "fig13" -> E.fig13 ~pool ~scale ()
    | "fig14" -> E.fig14 ~scale ()
    | "micro" -> micro ()
    | other -> Printf.eprintf "unknown experiment %s\n" other
  in
  match o.o_compare with
  | Some (old_f, new_f) -> compare_reports ~warn:o.o_warn old_f new_f
  | None -> (
    match (o.o_json, o.o_args) with
    | Some file, [] ->
      ignore
        (E.write_json_report ~pool ?only_inputs:o.o_only ~pgo:o.o_pgo ~scale
           ~file ())
    | Some file, args ->
      ignore
        (E.write_json_report ~pool ?only_inputs:o.o_only ~pgo:o.o_pgo ~scale
           ~file ());
      List.iter dispatch args
    | None, [] ->
      E.run_all_experiments ~pool ~scale ();
      micro ()
    | None, args -> List.iter dispatch args)
