(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's experiment index), plus Bechamel
   micro-benchmarks of the simulator's primitives.

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe fig9            # one experiment
     dune exec bench/main.exe table3 fig6 ...
     PHLOEM_SCALE=0.5 dune exec bench/main.exe  # smaller inputs
     dune exec bench/main.exe micro           # Bechamel microbenches only
     dune exec bench/main.exe --json out.json # fig9-11 data as JSON *)

let micro () =
  print_endline "\n==== Bechamel micro-benchmarks (simulator primitives) ====";
  let open Bechamel in
  let open Toolkit in
  let test_prng =
    Test.make ~name:"prng.next"
      (Staged.stage
         (let rng = Phloem_util.Prng.create 42 in
          fun () -> ignore (Phloem_util.Prng.next rng)))
  in
  let test_cache =
    Test.make ~name:"cache.access (streaming)"
      (Staged.stage
         (let caches = Pipette.Cache.create Pipette.Config.default in
          let addr = ref 0x100000 in
          fun () ->
            addr := !addr + 64;
            ignore (Pipette.Cache.access caches ~core:0 ~addr:!addr ~now:0)))
  in
  let test_predictor =
    Test.make ~name:"predictor.predict_update"
      (Staged.stage
         (let p = Pipette.Predictor.create ~entries:4096 ~history_bits:8 ~n_threads:1 in
          let i = ref 0 in
          fun () ->
            incr i;
            ignore
              (Pipette.Predictor.predict_update p ~thread:0 ~pc:42
                 ~taken:(!i land 3 <> 0))))
  in
  let test_interp =
    Test.make ~name:"interp+engine: 2-stage pipeline (n=64)"
      (Staged.stage
         (let open Phloem_ir.Builder in
          let p =
            pipeline "micro"
              ~params:[ ("n", Phloem_ir.Types.Vint 64) ]
              ~queues:[ queue 0 ]
              [
                stage "prod" [ for_ "i" (int 0) (v "n") [ enq 0 (v "i") ] ];
                stage "cons" [ for_ "i" (int 0) (v "n") [ "x" <-- deq 0 ] ];
              ]
          in
          fun () -> ignore (Pipette.Sim.run p)))
  in
  let test_compile =
    Test.make ~name:"phloem: compile BFS (static flow)"
      (Staged.stage
         (let g = Phloem_graph.Gen.grid ~width:8 ~height:8 ~seed:1 in
          let b = Phloem_workloads.Bfs.bind g in
          let serial = fst b.Phloem_workloads.Workload.b_serial in
          fun () -> ignore (Phloem.Compile.static_flow ~stages:4 serial)))
  in
  let benchmark test =
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) () in
    let raw = Benchmark.all cfg instances test in
    let results =
      Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) Instance.monotonic_clock raw
    in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.printf "  %-42s %12.1f ns/run\n%!" name est
        | _ -> Printf.printf "  %-42s (no estimate)\n%!" name)
      results
  in
  List.iter
    (fun t -> benchmark (Bechamel.Test.make_grouped ~name:"pipette" [ t ]))
    [ test_prng; test_cache; test_predictor; test_interp; test_compile ]

(* Extract "--json FILE" / "--json=FILE" from the argument list. *)
let rec extract_json = function
  | [] -> (None, [])
  | "--json" :: file :: rest ->
    let _, others = extract_json rest in
    (Some file, others)
  | arg :: rest when String.length arg > 7 && String.sub arg 0 7 = "--json=" ->
    let _, others = extract_json rest in
    (Some (String.sub arg 7 (String.length arg - 7)), others)
  | arg :: rest ->
    let file, others = extract_json rest in
    (file, arg :: others)

let () =
  let module E = Phloem_harness.Experiments in
  let scale = E.default_scale () in
  let args = Array.to_list Sys.argv |> List.tl in
  let json_file, args = extract_json args in
  let dispatch = function
    | "table3" -> E.table3 ()
    | "table4" -> E.table4 ~scale ()
    | "table5" -> E.table5 ~scale ()
    | "fig6" -> E.fig6 ~scale ()
    | "fig9" -> E.fig9 ~scale ()
    | "fig10" -> E.fig10 ~scale ()
    | "fig11" -> E.fig11 ~scale ()
    | "fig12" -> E.fig12 ~scale ()
    | "fig13" -> E.fig13 ~scale ()
    | "fig14" -> E.fig14 ~scale ()
    | "micro" -> micro ()
    | other -> Printf.eprintf "unknown experiment %s\n" other
  in
  match (json_file, args) with
  | Some file, [] -> ignore (E.write_json_report ~scale ~file ())
  | Some file, args ->
    ignore (E.write_json_report ~scale ~file ());
    List.iter dispatch args
  | None, [] ->
    E.run_all_experiments ~scale ();
    micro ()
  | None, args -> List.iter dispatch args
