/* CSR breadth-first search (paper Sec. II, Fig. 2), in minic.
   Compile with: phloemc examples/kernels/bfs.c --time-passes --verify-each */
#pragma phloem
void bfs(int n, int root, int *restrict nodes, int *restrict edges,
         int *restrict dist, int *restrict cur_fringe, int *restrict next_fringe,
         int *restrict out) {
int cur_size = 1;
int cur_dist = 0;
cur_fringe[0] = root;
dist[root] = 0;
while (cur_size > 0) {
int next_size = 0;
cur_dist = cur_dist + 1;
for (int i = 0; i < cur_size; i++) {
int v = cur_fringe[i];
int edge_start = nodes[v];
int edge_end = nodes[v + 1];
for (int e = edge_start; e < edge_end; e++) {
int ngh = edges[e];
int old_dist = dist[ngh];
if (cur_dist < old_dist) {
dist[ngh] = cur_dist;
next_fringe[next_size++] = ngh;
}
}
}
for (int i = 0; i < next_size; i++) { cur_fringe[i] = next_fringe[i]; }
cur_size = next_size;
}
out[0] = cur_dist;
}
