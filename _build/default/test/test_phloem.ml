(* Tests for the Phloem compiler: cost model ranking, normalization, the
   decoupler's pass gates, scan chaining, search, and replication. *)

open Phloem
module I = Phloem_ir.Types
module B = Phloem_ir.Builder

let bfs_src = Phloem_workloads.Bfs.serial_source

let bfs_serial () =
  let g = Phloem_graph.Gen.grid ~width:12 ~height:10 ~seed:5 in
  (Phloem_workloads.Bfs.serial g ~root:0, g)

(* --- normalization --- *)

let test_normalize_flattens () =
  let open B in
  let body =
    [ "x" <-- ((load "a" (v "i" +! int 1) *! int 2) +! load "b" (v "j")) ]
  in
  let normalized = Normalize.body body in
  (* every statement's rhs has at most one operation over atoms *)
  let rec depth (e : I.expr) =
    match e with
    | I.Const _ | I.Var _ -> 0
    | I.Binop (_, a, b) -> 1 + max (depth a) (depth b)
    | I.Unop (_, a) | I.Is_control a | I.Ctrl_payload a -> 1 + depth a
    | I.Load (_, i) -> 1 + depth i
    | I.Deq _ -> 1
    | I.Call (_, args) -> 1 + List.fold_left (fun m a -> max m (depth a)) 0 args
  in
  List.iter
    (function
      | I.Assign (_, e) ->
        if depth e > 1 then Alcotest.failf "not flattened: %s" (Phloem_ir.Printer.expr_to_string e)
      | _ -> ())
    normalized;
  Alcotest.(check bool) "multiple statements emitted" true (List.length normalized > 1)

let test_normalize_while_condition () =
  let open B in
  let body = [ while_ (load "a" (int 0) >! int 0) [ Seq_marker "body" ] ] in
  match Normalize.body body with
  | [ I.While (_, I.Const (I.Vint 1), _) ] -> ()
  | _ -> Alcotest.fail "loaded while-condition should become while(1) + break"

(* --- cost model --- *)

let test_costmodel_bfs_ranking () =
  let (serial, _), _g = (bfs_serial (), ()) in
  let serial_p = fst serial in
  let cuts = Compile.candidates serial_p in
  Alcotest.(check bool) "several candidates" true (List.length cuts >= 4);
  (* top cut is the innermost distance load, marked prefetch-only because
     distances are also written in the same iteration (paper Fig. 4) *)
  let top = List.hd cuts in
  Alcotest.(check bool) "top cut is prefetch-only" true top.Costmodel.cut_prefetch;
  (* scores decrease *)
  let rec mono = function
    | a :: (b :: _ as rest) -> a.Costmodel.cut_score >= b.Costmodel.cut_score && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "ranked by score" true (mono cuts)

let test_costmodel_adjacent_group () =
  let (serial, _), () = (bfs_serial (), ()) in
  let cuts = Compile.candidates (fst serial) in
  (* nodes[v] and nodes[v+1] group into one cut *)
  Alcotest.(check bool) "some cut groups two loads" true
    (List.exists (fun c -> List.length c.Costmodel.cut_loads = 2) cuts)

(* --- full compilation: structure of the BFS pipeline --- *)

let test_bfs_pipeline_structure () =
  let (serial, inputs), g = bfs_serial () in
  let p = Compile.static_flow ~stages:4 serial in
  (* scan chaining elides the enumerate-neighbors stage: 3 threads + 2 RAs *)
  Alcotest.(check int) "threads" 3 (List.length p.I.p_stages);
  Alcotest.(check int) "reference accelerators" 2 (List.length p.I.p_ras);
  Alcotest.(check bool) "one scan RA" true
    (List.exists (fun r -> r.I.ra_mode = I.Ra_scan) p.I.p_ras);
  Alcotest.(check bool) "one indirect RA" true
    (List.exists (fun r -> r.I.ra_mode = I.Ra_indirect) p.I.p_ras);
  (* and it computes BFS *)
  let r = Pipette.Sim.run ~inputs p in
  let expected = Phloem_graph.Algos.bfs g ~root:0 in
  Alcotest.(check bool) "correct distances" true
    (List.assoc "dist" r.Pipette.Sim.sr_functional.Phloem_ir.Interp.r_arrays
    = Array.map (fun x -> I.Vint x) expected)

let test_pass_gates_monotone () =
  (* each pass level must stay functionally correct *)
  let (serial, inputs), g = bfs_serial () in
  let expected = Array.map (fun x -> I.Vint x) (Phloem_graph.Algos.bfs g ~root:0) in
  let open Decouple in
  List.iter
    (fun flags ->
      let p = Compile.static_flow ~flags ~stages:4 serial in
      let r = Pipette.Sim.run ~inputs p in
      Alcotest.(check bool) "correct" true
        (List.assoc "dist" r.Pipette.Sim.sr_functional.Phloem_ir.Interp.r_arrays = expected))
    [
      queues_only;
      { queues_only with f_recompute = true };
      { queues_only with f_recompute = true; f_cv = true };
      { queues_only with f_recompute = true; f_cv = true; f_dce = true };
      all_passes;
    ]

let test_prefetch_cut_for_rmw_array () =
  (* the distance array is read and written in the same iteration: Phloem
     must never split that load into a different stage than the store *)
  let (serial, _), _ = bfs_serial () in
  let p = Compile.static_flow ~stages:4 serial in
  let rec stores_dist (stmts : I.stmt list) =
    List.exists
      (fun s ->
        match s with
        | I.Store ("dist", _, _) -> true
        | I.If (_, _, t, f) -> stores_dist t || stores_dist f
        | I.While (_, _, b) | I.For (_, _, _, _, b) -> stores_dist b
        | _ -> false)
      stmts
  in
  let rec loads_dist (stmts : I.stmt list) =
    let rec in_expr (e : I.expr) =
      match e with
      | I.Load ("dist", _) -> true
      | I.Binop (_, a, b) -> in_expr a || in_expr b
      | I.Unop (_, a) | I.Is_control a | I.Ctrl_payload a -> in_expr a
      | I.Load (_, i) -> in_expr i
      | _ -> false
    in
    List.exists
      (fun s ->
        match s with
        | I.Assign (_, e) -> in_expr e
        | I.If (_, c, t, f) -> in_expr c || loads_dist t || loads_dist f
        | I.While (_, c, b) -> in_expr c || loads_dist b
        | I.For (_, _, lo, hi, b) -> in_expr lo || in_expr hi || loads_dist b
        | _ -> false)
      stmts
  in
  List.iter
    (fun st ->
      if loads_dist st.I.s_body then
        Alcotest.(check bool)
          (st.I.s_name ^ " loads dist so it must own the stores")
          true (stores_dist st.I.s_body))
    p.I.p_stages

let test_spmm_rejects_merge_cuts () =
  let a = Phloem_sparse.Gen.random ~rows:16 ~cols:16 ~nnz_per_row:3 ~seed:1 in
  let bt = Phloem_sparse.Gen.random ~rows:16 ~cols:16 ~nnz_per_row:3 ~seed:2 in
  let b = Phloem_workloads.Spmm.bind a bt in
  let serial = fst b.Phloem_workloads.Workload.b_serial in
  let cuts = Compile.candidates serial in
  (* the innermost merge-loop cuts are individually illegal *)
  let top = List.hd cuts in
  match Compile.with_cuts serial [ top ] with
  | _ -> Alcotest.fail "expected the merge-loop cut to be rejected"
  | exception Decouple.Reject _ -> ()

(* --- search --- *)

let test_search_finds_candidates () =
  let g1 = Phloem_graph.Gen.grid ~width:10 ~height:8 ~seed:7 in
  let g2 = Phloem_graph.Gen.rmat ~scale:7 ~edge_factor:2 ~seed:8 in
  let bounds = [ Phloem_workloads.Bfs.bind g1; Phloem_workloads.Bfs.bind g2 ] in
  let outcome = Phloem_harness.Runner.pgo_cuts ~top_k:4 ~max_cuts:3 bounds in
  Alcotest.(check bool) "several candidates profiled" true
    (List.length outcome.Search.all >= 3);
  (* the chosen recipe compiles and validates on a fresh input *)
  let g3 = Phloem_graph.Gen.grid ~width:14 ~height:6 ~seed:9 in
  let b3 = Phloem_workloads.Bfs.bind g3 in
  let serial, inputs = b3.Phloem_workloads.Workload.b_serial in
  let p = Compile.with_cuts serial outcome.Search.best in
  let r = Pipette.Sim.run ~inputs p in
  Alcotest.(check bool) "recipe transfers to new input" true
    (Phloem_workloads.Workload.check b3 r.Pipette.Sim.sr_functional)

let test_search_best_is_max () =
  let g = Phloem_graph.Gen.grid ~width:10 ~height:8 ~seed:7 in
  let bounds = [ Phloem_workloads.Bfs.bind g ] in
  let o = Phloem_harness.Runner.pgo_cuts ~top_k:4 ~max_cuts:2 bounds in
  let best_g =
    List.fold_left (fun acc c -> max acc c.Search.ca_gmean) 0.0 o.Search.all
  in
  let chosen =
    List.find (fun c -> c.Search.ca_cuts = o.Search.best) o.Search.all
  in
  Alcotest.(check (float 1e-9)) "best picked" best_g chosen.Search.ca_gmean

(* --- replication --- *)

let test_replicate_independent () =
  (* replicate a 2-stage summing pipeline; each replica sums its own array *)
  let open B in
  let base =
    pipeline "sum2"
      ~arrays:[ int_array "a" 8; int_array "out" 1 ]
      ~params:[ ("n", I.Vint 8) ]
      ~queues:[ queue 0 ]
      [
        stage "prod" [ for_ "i" (int 0) (v "n") [ enq 0 (load "a" (v "i")) ] ];
        stage "cons"
          [
            "acc" <-- int 0;
            for_ "i" (int 0) (v "n") [ "acc" <-- (v "acc" +! deq 0) ];
            store "out" (int 0) (v "acc");
          ];
      ]
  in
  let spec =
    {
      Replicate.r_replicas = 3;
      r_private_arrays = [ "a"; "out" ];
      r_private_params = [];
      r_distribute = None;
    }
  in
  let p = Replicate.apply base spec in
  Alcotest.(check int) "stages" 6 (List.length p.I.p_stages);
  let inputs =
    List.concat
      (List.init 3 (fun k ->
           [
             ( Replicate.private_name "a" k,
               Array.init 8 (fun i -> I.Vint ((k * 100) + i)) );
           ]))
  in
  let r = Pipette.Sim.run ~cfg:Pipette.Config.four_cores ~inputs p in
  List.iteri
    (fun k expected ->
      match
        List.assoc (Replicate.private_name "out" k)
          r.Pipette.Sim.sr_functional.Phloem_ir.Interp.r_arrays
      with
      | [| I.Vint got |] -> Alcotest.(check int) "replica sum" expected got
      | _ -> Alcotest.fail "bad out")
    [ 28; 828; 1628 ]

let test_replicate_distribute () =
  (* distribution routes values to the replica selected by parity *)
  let open B in
  let base =
    pipeline "dist2"
      ~arrays:[ int_array "a" 10; int_array "out" 1 ]
      ~params:[ ("n", I.Vint 10) ]
      ~queues:[ queue 0 ]
      [
        stage "prod"
          [
            for_ "i" (int 0) (v "n") [ enq 0 (load "a" (v "i")) ];
            enq_ctrl 0 1;
          ];
        stage "cons"
          ~handlers:[ handler ~queue:0 ~cv:"c" [ exit_loops 1 ] ]
          [
            "acc" <-- int 0;
            loop_forever [ "acc" <-- (v "acc" +! deq 0) ];
            store "out" (int 0) (v "acc");
          ];
      ]
  in
  let spec =
    {
      Replicate.r_replicas = 2;
      r_private_arrays = [ "out" ];
      r_private_params = [];
      r_distribute = Some (0, fun e -> I.Binop (I.Mod, e, I.Const (I.Vint 2)));
    }
  in
  let p = Replicate.apply base spec in
  let a = Array.init 10 (fun i -> I.Vint i) in
  let r = Pipette.Sim.run ~cfg:Pipette.Config.four_cores ~inputs:[ ("a", a) ] p in
  let out k =
    match
      List.assoc (Replicate.private_name "out" k)
        r.Pipette.Sim.sr_functional.Phloem_ir.Interp.r_arrays
    with
    | [| I.Vint got |] -> got
    | _ -> -1
  in
  (* both producers enumerate the same array, so each consumer sees every
     value of its parity class twice *)
  Alcotest.(check int) "evens" (2 * (0 + 2 + 4 + 6 + 8)) (out 0);
  Alcotest.(check int) "odds" (2 * (1 + 3 + 5 + 7 + 9)) (out 1)

(* property: static flow stays correct on random grid graphs *)
let prop_static_flow_correct =
  QCheck.Test.make ~count:12 ~name:"phloem BFS correct on random grids"
    QCheck.(pair (int_range 4 14) (int_range 4 12))
    (fun (w, h) ->
      let g = Phloem_graph.Gen.grid ~width:w ~height:h ~seed:((w * 31) + h) in
      let b = Phloem_workloads.Bfs.bind g in
      let serial, inputs = b.Phloem_workloads.Workload.b_serial in
      match Compile.static_flow ~stages:4 serial with
      | p ->
        let r = Pipette.Sim.run ~inputs p in
        Phloem_workloads.Workload.check b r.Pipette.Sim.sr_functional
      | exception Decouple.Reject _ -> true)

let suite =
  [
    Alcotest.test_case "normalize flattens" `Quick test_normalize_flattens;
    Alcotest.test_case "normalize while cond" `Quick test_normalize_while_condition;
    Alcotest.test_case "cost model BFS ranking" `Quick test_costmodel_bfs_ranking;
    Alcotest.test_case "cost model adjacency" `Quick test_costmodel_adjacent_group;
    Alcotest.test_case "BFS pipeline structure" `Quick test_bfs_pipeline_structure;
    Alcotest.test_case "pass gates all correct" `Quick test_pass_gates_monotone;
    Alcotest.test_case "prefetch cut keeps RMW together" `Quick test_prefetch_cut_for_rmw_array;
    Alcotest.test_case "SpMM merge cuts rejected" `Quick test_spmm_rejects_merge_cuts;
    Alcotest.test_case "search finds candidates" `Quick test_search_finds_candidates;
    Alcotest.test_case "search best is max" `Quick test_search_best_is_max;
    Alcotest.test_case "replicate independent" `Quick test_replicate_independent;
    Alcotest.test_case "replicate distribute" `Quick test_replicate_distribute;
    QCheck_alcotest.to_alcotest prop_static_flow_correct;
  ]

let () =
  ignore bfs_src;
  Alcotest.run "phloem" [ ("compiler", suite) ]
