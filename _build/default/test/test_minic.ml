(* Tests for the minic frontend: lexer, parser, type checking, lowering, and
   end-to-end execution of minic kernels against pure-OCaml references. *)

open Phloem_minic
module I = Phloem_ir.Types

let lex_kinds src =
  Lexer.tokenize src |> List.map (fun l -> l.Lexer.tok)

let test_lexer_basics () =
  let toks = lex_kinds "int x = 42; // comment\nfloat y = 3.5;" in
  Alcotest.(check int) "token count" 11 (List.length toks);
  (match toks with
  | Lexer.KW "int" :: Lexer.IDENT "x" :: Lexer.PUNCT "=" :: Lexer.INT 42 :: _ -> ()
  | _ -> Alcotest.fail "unexpected tokens");
  match List.filter (function Lexer.FLOAT f -> f = 3.5 | _ -> false) toks with
  | [ _ ] -> ()
  | _ -> Alcotest.fail "float literal not lexed"

let test_lexer_pragma () =
  match lex_kinds "#pragma phloem\nvoid f() {}" with
  | Lexer.PRAGMA "phloem" :: _ -> ()
  | _ -> Alcotest.fail "pragma not lexed"

let test_lexer_block_comment () =
  let toks = lex_kinds "/* multi\nline */ int x;" in
  Alcotest.(check int) "comment skipped" 4 (List.length toks)

let test_lexer_error () =
  match lex_kinds "int @ x;" with
  | _ -> Alcotest.fail "expected lexer error"
  | exception Lexer.Error _ -> ()

let test_parser_precedence () =
  let prog = Parser.parse_program "void f(int a) { int x = 1 + 2 * 3 < 4 && 5 == 6; }" in
  match prog.Ast.funcs with
  | [ { Ast.f_body = [ Ast.Sdecl (Ast.Tint, "x", Some e) ]; _ } ] -> (
    (* (((1 + (2*3)) < 4) && (5 == 6)) *)
    match e with
    | Ast.Ebin (Ast.Band, Ast.Ebin (Ast.Blt, Ast.Ebin (Ast.Badd, _, Ast.Ebin (Ast.Bmul, _, _)), _), Ast.Ebin (Ast.Beq, _, _)) -> ()
    | _ -> Alcotest.fail "wrong precedence tree")
  | _ -> Alcotest.fail "parse failure"

let test_parser_for_if_break () =
  let src =
    "void f(int n, int *restrict a) {\n\
     for (int i = 0; i < n; i++) {\n\
     if (a[i] > 0) { a[i] = 0; } else break;\n\
     }\n\
     }"
  in
  let prog = Parser.parse_program src in
  match prog.Ast.funcs with
  | [ { Ast.f_body = [ Ast.Sfor (Some _, Some _, Some _, [ Ast.Sif (_, _, [ Ast.Sbreak ]) ]) ]; _ } ] -> ()
  | _ -> Alcotest.fail "unexpected for/if structure"

let test_parser_pragmas_attach () =
  let src = "#pragma phloem\n#pragma replicate(4)\nvoid k(int n) { }" in
  let prog = Parser.parse_program src in
  match prog.Ast.funcs with
  | [ f ] ->
    Alcotest.(check bool) "phloem" true (List.mem Ast.Pphloem f.Ast.f_pragmas);
    Alcotest.(check bool) "replicate" true (List.mem (Ast.Preplicate 4) f.Ast.f_pragmas)
  | _ -> Alcotest.fail "parse failure"

let test_parser_extern_cost () =
  let src = "#pragma cost 12\nextern int work(int x);\n#pragma phloem\nvoid k(int n) { int y = work(n); }" in
  let prog = Parser.parse_program src in
  match prog.Ast.externs with
  | [ x ] ->
    Alcotest.(check int) "cost" 12 x.Ast.x_cost;
    Alcotest.(check string) "name" "work" x.Ast.x_name
  | _ -> Alcotest.fail "extern not parsed"

let test_parser_postincr_index () =
  let src = "void f(int *restrict a, int len, int v) { a[len++] = v; }" in
  let prog = Parser.parse_program src in
  match prog.Ast.funcs with
  | [ { Ast.f_body = [ Ast.Sassign (Ast.Lindex ("a", Ast.Epostincr "len"), _) ]; _ } ] -> ()
  | _ -> Alcotest.fail "postincrement index not parsed"

let test_parser_error_message () =
  match Parser.parse_program "void f( { }" with
  | _ -> Alcotest.fail "expected parse error"
  | exception Parser.Error msg ->
    Alcotest.(check bool) "mentions line" true (String.length msg > 0)

(* --- lowering + execution --- *)

let run_kernel src ~arrays ~scalars =
  let lw = Lower.of_source src in
  let p, inputs = Lower.to_serial_pipeline lw ~arrays ~scalars in
  Phloem_ir.Interp.run ~inputs p

let ints name res =
  match List.assoc_opt name res.Phloem_ir.Interp.r_arrays with
  | Some a -> Array.map (function I.Vint i -> i | _ -> Alcotest.fail "non-int") a
  | None -> Alcotest.failf "missing array %s" name

let floats name res =
  match List.assoc_opt name res.Phloem_ir.Interp.r_arrays with
  | Some a -> Array.map (function I.Vfloat f -> f | _ -> Alcotest.fail "non-float") a
  | None -> Alcotest.failf "missing array %s" name

let vint a = Array.map (fun x -> I.Vint x) a
let vfloat a = Array.map (fun x -> I.Vfloat x) a

let test_lower_sum () =
  let src =
    "#pragma phloem\n\
     void sum(int n, int *restrict a, int *restrict out) {\n\
     int acc = 0;\n\
     for (int i = 0; i < n; i++) { acc += a[i]; }\n\
     out[0] = acc;\n\
     }"
  in
  let a = Array.init 12 (fun i -> (i * 7) - 20) in
  let res =
    run_kernel src
      ~arrays:[ ("a", vint a); ("out", vint [| 0 |]) ]
      ~scalars:[ ("n", I.Vint 12) ]
  in
  Alcotest.(check int) "sum" (Array.fold_left ( + ) 0 a) (ints "out" res).(0)

let test_lower_float_kernel () =
  let src =
    "#pragma phloem\n\
     void scale(int n, float *restrict x, float *restrict y, float alpha) {\n\
     for (int i = 0; i < n; i++) { y[i] = alpha * x[i] + 1.5; }\n\
     }"
  in
  let x = [| 1.0; -2.0; 0.25 |] in
  let res =
    run_kernel src
      ~arrays:[ ("x", vfloat x); ("y", vfloat [| 0.; 0.; 0. |]) ]
      ~scalars:[ ("n", I.Vint 3); ("alpha", I.Vfloat 2.0) ]
  in
  let y = floats "y" res in
  Array.iteri
    (fun i xi -> Alcotest.(check (float 1e-9)) "y" ((2.0 *. xi) +. 1.5) y.(i))
    x

let test_lower_while_break () =
  let src =
    "#pragma phloem\n\
     void findfirst(int n, int *restrict a, int *restrict out) {\n\
     int i = 0;\n\
     out[0] = 0 - 1;\n\
     while (i < n) {\n\
     if (a[i] == 7) { out[0] = i; break; }\n\
     i++;\n\
     }\n\
     }"
  in
  let a = [| 3; 9; 7; 7; 1 |] in
  let res =
    run_kernel src
      ~arrays:[ ("a", vint a); ("out", vint [| 0 |]) ]
      ~scalars:[ ("n", I.Vint 5) ]
  in
  Alcotest.(check int) "first index of 7" 2 (ints "out" res).(0)

let test_lower_postincr_compaction () =
  let src =
    "#pragma phloem\n\
     void compact(int n, int *restrict a, int *restrict out, int *restrict cnt) {\n\
     int len = 0;\n\
     for (int i = 0; i < n; i++) {\n\
     if (a[i] > 0) { out[len++] = a[i]; }\n\
     }\n\
     cnt[0] = len;\n\
     }"
  in
  let a = [| 5; -1; 3; 0; 9 |] in
  let res =
    run_kernel src
      ~arrays:[ ("a", vint a); ("out", vint [| 0; 0; 0; 0; 0 |]); ("cnt", vint [| 0 |]) ]
      ~scalars:[ ("n", I.Vint 5) ]
  in
  Alcotest.(check int) "count" 3 (ints "cnt" res).(0);
  Alcotest.(check (list int)) "compacted" [ 5; 3; 9 ]
    (Array.sub (ints "out" res) 0 3 |> Array.to_list)

let test_lower_int_max () =
  let src =
    "#pragma phloem\n\
     void f(int *restrict out) { out[0] = INT_MAX; }"
  in
  let res = run_kernel src ~arrays:[ ("out", vint [| 0 |]) ] ~scalars:[] in
  Alcotest.(check int) "INT_MAX" Lower.int_max_value (ints "out" res).(0)

let test_lower_type_error () =
  let src =
    "#pragma phloem\n\
     void f(int n, float *restrict x) { x[0] = n; }"
  in
  match run_kernel src ~arrays:[ ("x", vfloat [| 0. |]) ] ~scalars:[ ("n", I.Vint 1) ] with
  | _ -> Alcotest.fail "expected a type error"
  | exception Lower.Error _ -> ()
  | exception Phloem_ir.Interp.Runtime_error _ -> ()

let test_lower_unknown_call () =
  let src = "#pragma phloem\nvoid f(int n) { int x = mystery(n); }" in
  match Lower.of_source src with
  | _ -> Alcotest.fail "expected unknown-function error"
  | exception Lower.Error msg ->
    Alcotest.(check bool) "names function" true
      (String.length msg > 0
      && (try ignore (Str.search_forward (Str.regexp "mystery") msg 0); true
          with Not_found -> false))

(* BFS in minic, validated against the reference algorithm. This is the
   paper's Fig. 2 serial code in our surface syntax. *)
let bfs_src =
  "#pragma phloem\n\
   void bfs(int n, int root, int *restrict nodes, int *restrict edges,\n\
   \         int *restrict dist, int *restrict cur_fringe, int *restrict next_fringe,\n\
   \         int *restrict sizes) {\n\
   int cur_size = 1;\n\
   int cur_dist = 0;\n\
   cur_fringe[0] = root;\n\
   dist[root] = 0;\n\
   while (cur_size > 0) {\n\
   int next_size = 0;\n\
   cur_dist = cur_dist + 1;\n\
   for (int i = 0; i < cur_size; i++) {\n\
   int v = cur_fringe[i];\n\
   int edge_start = nodes[v];\n\
   int edge_end = nodes[v + 1];\n\
   for (int e = edge_start; e < edge_end; e++) {\n\
   int ngh = edges[e];\n\
   int old_dist = dist[ngh];\n\
   if (cur_dist < old_dist) {\n\
   dist[ngh] = cur_dist;\n\
   next_fringe[next_size++] = ngh;\n\
   }\n\
   }\n\
   }\n\
   for (int i = 0; i < next_size; i++) { cur_fringe[i] = next_fringe[i]; }\n\
   cur_size = next_size;\n\
   }\n\
   sizes[0] = cur_dist;\n\
   }"

let test_minic_bfs_matches_reference () =
  let g = Phloem_graph.Gen.grid ~width:16 ~height:12 ~seed:3 in
  let n = g.Phloem_graph.Csr.n in
  let expected = Phloem_graph.Algos.bfs g ~root:0 in
  let dist0 = Array.make n Phloem_graph.Algos.int_max in
  let res =
    run_kernel bfs_src
      ~arrays:
        [
          ("nodes", vint g.Phloem_graph.Csr.offsets);
          ("edges", vint g.Phloem_graph.Csr.edges);
          ("dist", vint dist0);
          ("cur_fringe", vint (Array.make n 0));
          ("next_fringe", vint (Array.make n 0));
          ("sizes", vint [| 0 |]);
        ]
      ~scalars:[ ("n", I.Vint n); ("root", I.Vint 0) ]
  in
  Alcotest.(check (array int)) "distances" expected (ints "dist" res)

let suite =
  [
    Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
    Alcotest.test_case "lexer pragma" `Quick test_lexer_pragma;
    Alcotest.test_case "lexer block comment" `Quick test_lexer_block_comment;
    Alcotest.test_case "lexer error" `Quick test_lexer_error;
    Alcotest.test_case "parser precedence" `Quick test_parser_precedence;
    Alcotest.test_case "parser for/if/break" `Quick test_parser_for_if_break;
    Alcotest.test_case "parser pragmas" `Quick test_parser_pragmas_attach;
    Alcotest.test_case "parser extern cost" `Quick test_parser_extern_cost;
    Alcotest.test_case "parser postincr index" `Quick test_parser_postincr_index;
    Alcotest.test_case "parser error" `Quick test_parser_error_message;
    Alcotest.test_case "lower: sum" `Quick test_lower_sum;
    Alcotest.test_case "lower: float kernel" `Quick test_lower_float_kernel;
    Alcotest.test_case "lower: while/break" `Quick test_lower_while_break;
    Alcotest.test_case "lower: postincr compaction" `Quick test_lower_postincr_compaction;
    Alcotest.test_case "lower: INT_MAX" `Quick test_lower_int_max;
    Alcotest.test_case "lower: type error" `Quick test_lower_type_error;
    Alcotest.test_case "lower: unknown call" `Quick test_lower_unknown_call;
    Alcotest.test_case "minic BFS matches reference" `Quick test_minic_bfs_matches_reference;
  ]

let () = Alcotest.run "phloem_minic" [ ("minic", suite) ]
