(* Tests for the graph/sparse substrates: CSR invariants, generators,
   reference algorithms, matrices, kernels, and taco_lite codegen. *)

module G = Phloem_graph
module S = Phloem_sparse

(* --- CSR graphs --- *)

let test_csr_of_edge_list () =
  let g = G.Csr.of_edge_list ~n:4 [ (0, 1); (0, 2); (1, 3); (3, 0) ] in
  Alcotest.(check int) "m" 4 g.G.Csr.m;
  Alcotest.(check int) "deg 0" 2 (G.Csr.degree g 0);
  Alcotest.(check int) "deg 2" 0 (G.Csr.degree g 2);
  let nghs = ref [] in
  G.Csr.iter_neighbors g 0 (fun u -> nghs := u :: !nghs);
  Alcotest.(check (list int)) "sorted neighbors" [ 1; 2 ] (List.rev !nghs)

let test_csr_rejects_bad_edges () =
  match G.Csr.of_edge_list ~n:2 [ (0, 5) ] with
  | _ -> Alcotest.fail "expected Malformed"
  | exception G.Csr.Malformed _ -> ()

let test_symmetrize () =
  let g = G.Csr.of_edge_list ~n:3 [ (0, 1); (1, 2) ] in
  let s = G.Csr.symmetrize g in
  Alcotest.(check int) "edges doubled" 4 s.G.Csr.m;
  let has u v =
    let found = ref false in
    G.Csr.iter_neighbors s u (fun x -> if x = v then found := true);
    !found
  in
  Alcotest.(check bool) "reverse edge" true (has 1 0 && has 2 1)

let prop_generators_wellformed =
  QCheck.Test.make ~count:20 ~name:"generated graphs are well-formed CSR"
    QCheck.(int_range 0 2)
    (fun kind ->
      let g =
        match kind with
        | 0 -> G.Gen.grid ~width:9 ~height:7 ~seed:3
        | 1 -> G.Gen.rmat ~scale:7 ~edge_factor:3 ~seed:4
        | _ -> G.Gen.uniform ~n:100 ~avg_degree:4 ~seed:5
      in
      G.Csr.check g;
      true)

(* --- reference algorithms --- *)

let path_graph n =
  G.Csr.of_edge_list ~n
    (List.concat (List.init (n - 1) (fun i -> [ (i, i + 1); (i + 1, i) ])))

let test_bfs_path () =
  let g = path_graph 6 in
  let d = G.Algos.bfs g ~root:0 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; 4; 5 |] d

let test_bfs_unreachable () =
  let g = G.Csr.of_edge_list ~n:3 [ (0, 1); (1, 0) ] in
  let d = G.Algos.bfs g ~root:0 in
  Alcotest.(check int) "unreachable" G.Algos.int_max d.(2)

let test_cc_components () =
  let g = G.Csr.of_edge_list ~n:5 [ (0, 1); (1, 0); (3, 4); (4, 3) ] in
  let l = G.Algos.connected_components g in
  Alcotest.(check (array int)) "labels" [| 0; 0; 2; 3; 3 |] l

let test_pagerank_delta_sums () =
  let g = G.Gen.grid ~width:6 ~height:5 ~seed:1 in
  let r = G.Algos.pagerank_delta g ~iters:5 ~damping:0.85 ~eps:0.0001 in
  Alcotest.(check bool) "all positive" true (Array.for_all (fun x -> x > 0.0) r)

let test_radii_path () =
  let g = path_graph 7 in
  let radii, est = G.Algos.radii_from_roots g ~roots:[| 0 |] in
  Alcotest.(check int) "estimate = path length" 6 est;
  Alcotest.(check int) "far end radius" 6 radii.(6)

let prop_bfs_triangle_inequality =
  QCheck.Test.make ~count:20 ~name:"bfs: neighbors differ by at most 1"
    QCheck.(int_range 2 30)
    (fun seed ->
      let g = G.Gen.uniform ~n:60 ~avg_degree:4 ~seed in
      let d = G.Algos.bfs g ~root:0 in
      let ok = ref true in
      for v = 0 to g.G.Csr.n - 1 do
        if d.(v) < G.Algos.int_max then
          G.Csr.iter_neighbors g v (fun u ->
              if d.(u) > d.(v) + 1 then ok := false)
      done;
      !ok)

(* --- sparse matrices --- *)

let test_matrix_of_triples_dedup () =
  let m = S.Csr_matrix.of_triples ~rows:2 ~cols:3 [ (0, 1, 1.0); (0, 1, 2.0); (1, 0, 4.0) ] in
  Alcotest.(check int) "duplicates collapse" 2 m.S.Csr_matrix.nnz;
  Alcotest.(check (float 1e-9)) "summed" 3.0 m.S.Csr_matrix.vals.(0)

let test_transpose_involution () =
  let m = S.Gen.random ~rows:20 ~cols:15 ~nnz_per_row:3 ~seed:9 in
  let tt = S.Csr_matrix.transpose (S.Csr_matrix.transpose m) in
  Alcotest.(check bool) "transpose twice = identity" true
    (tt.S.Csr_matrix.row_ptr = m.S.Csr_matrix.row_ptr
    && tt.S.Csr_matrix.col_idx = m.S.Csr_matrix.col_idx
    && tt.S.Csr_matrix.vals = m.S.Csr_matrix.vals)

let test_spmv_identity () =
  let n = 5 in
  let eye = S.Csr_matrix.of_triples ~rows:n ~cols:n (List.init n (fun i -> (i, i, 1.0))) in
  let x = Array.init n float_of_int in
  Alcotest.(check (array (float 1e-9))) "Ix = x" x (S.Kernels.spmv eye x)

let test_merge_intersect () =
  let idx1 = [| 1; 3; 5; 9 |] and val1 = [| 1.0; 1.0; 1.0; 1.0 |] in
  let idx2 = [| 3; 4; 9 |] and val2 = [| 2.0; 2.0; 2.0 |] in
  let dot =
    S.Kernels.merge_intersect_dot ~idx1 ~val1 ~lo1:0 ~hi1:4 ~idx2 ~val2 ~lo2:0 ~hi2:3
  in
  Alcotest.(check (float 1e-9)) "two matches" 4.0 dot

let test_spmm_vs_dense () =
  let a = S.Gen.random ~rows:8 ~cols:8 ~nnz_per_row:3 ~seed:21 in
  let b = S.Gen.random ~rows:8 ~cols:8 ~nnz_per_row:3 ~seed:22 in
  let c = S.Kernels.spmm_inner a (S.Csr_matrix.transpose b) in
  (* dense check *)
  let dense m =
    let d = Array.make_matrix m.S.Csr_matrix.rows m.S.Csr_matrix.cols 0.0 in
    for r = 0 to m.S.Csr_matrix.rows - 1 do
      for e = m.S.Csr_matrix.row_ptr.(r) to m.S.Csr_matrix.row_ptr.(r + 1) - 1 do
        d.(r).(m.S.Csr_matrix.col_idx.(e)) <- d.(r).(m.S.Csr_matrix.col_idx.(e)) +. m.S.Csr_matrix.vals.(e)
      done
    done;
    d
  in
  let da = dense a and db = dense b in
  for i = 0 to 7 do
    for j = 0 to 7 do
      let expect = ref 0.0 in
      for k = 0 to 7 do
        expect := !expect +. (da.(i).(k) *. db.(k).(j))
      done;
      Alcotest.(check (float 1e-6)) "C(i,j)" !expect c.(i).(j)
    done
  done

(* --- taco_lite --- *)

let test_taco_parse () =
  let a = Phloem_taco.Taco.parse "y(i) = alpha * A(j,i) * x(j) + beta * z(i)" in
  Alcotest.(check int) "two terms" 2 (List.length a.Phloem_taco.Taco.terms);
  Alcotest.(check string) "lhs" "y" a.Phloem_taco.Taco.lhs.Phloem_taco.Taco.tensor

let test_taco_parse_minus () =
  let a = Phloem_taco.Taco.parse "y(i) = b(i) - A(i,j) * x(j)" in
  match a.Phloem_taco.Taco.terms with
  | [ t1; t2 ] ->
    Alcotest.(check (float 0.0)) "first +" 1.0 t1.Phloem_taco.Taco.sign;
    Alcotest.(check (float 0.0)) "second -" (-1.0) t2.Phloem_taco.Taco.sign
  | _ -> Alcotest.fail "two terms expected"

let test_taco_codegen_compiles () =
  List.iter
    (fun kind ->
      let m = S.Gen.random ~rows:20 ~cols:20 ~nnz_per_row:3 ~seed:33 in
      let b = Phloem_workloads.Taco_kernels.bind kind m in
      let p, inputs = b.Phloem_workloads.Workload.b_serial in
      let r = Pipette.Sim.run ~inputs p in
      Alcotest.(check bool)
        (Phloem_workloads.Taco_kernels.name_of kind ^ " matches reference")
        true
        (Phloem_workloads.Workload.check b r.Pipette.Sim.sr_functional))
    [
      Phloem_workloads.Taco_kernels.Spmv;
      Phloem_workloads.Taco_kernels.Residual;
      Phloem_workloads.Taco_kernels.Mtmul;
      Phloem_workloads.Taco_kernels.Sddmm;
    ]

let test_taco_error () =
  match Phloem_taco.Taco.parse "y(i) = " with
  | _ -> Alcotest.fail "expected parse error"
  | exception Phloem_taco.Taco.Error _ -> ()

let suite_graph =
  [
    Alcotest.test_case "csr of edge list" `Quick test_csr_of_edge_list;
    Alcotest.test_case "csr rejects bad edges" `Quick test_csr_rejects_bad_edges;
    Alcotest.test_case "symmetrize" `Quick test_symmetrize;
    QCheck_alcotest.to_alcotest prop_generators_wellformed;
    Alcotest.test_case "bfs path" `Quick test_bfs_path;
    Alcotest.test_case "bfs unreachable" `Quick test_bfs_unreachable;
    Alcotest.test_case "cc components" `Quick test_cc_components;
    Alcotest.test_case "pagerank-delta positive" `Quick test_pagerank_delta_sums;
    Alcotest.test_case "radii on path" `Quick test_radii_path;
    QCheck_alcotest.to_alcotest prop_bfs_triangle_inequality;
  ]

let suite_sparse =
  [
    Alcotest.test_case "triples dedup" `Quick test_matrix_of_triples_dedup;
    Alcotest.test_case "transpose involution" `Quick test_transpose_involution;
    Alcotest.test_case "spmv identity" `Quick test_spmv_identity;
    Alcotest.test_case "merge-intersect" `Quick test_merge_intersect;
    Alcotest.test_case "spmm vs dense" `Quick test_spmm_vs_dense;
  ]

let suite_taco =
  [
    Alcotest.test_case "parse expression" `Quick test_taco_parse;
    Alcotest.test_case "parse signs" `Quick test_taco_parse_minus;
    Alcotest.test_case "codegen all four kernels" `Quick test_taco_codegen_compiles;
    Alcotest.test_case "parse error" `Quick test_taco_error;
  ]

let () =
  Alcotest.run "substrates"
    [ ("graph", suite_graph); ("sparse", suite_sparse); ("taco", suite_taco) ]
