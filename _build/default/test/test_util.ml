(* Tests for the utility substrate: vectors, heap, PRNG, stats, tables. *)

open Phloem_util

let test_vec_growth () =
  let v = Vec.create ~dummy:0 () in
  for i = 0 to 999 do
    Vec.push v (i * 2)
  done;
  Alcotest.(check int) "length" 1000 (Vec.length v);
  Alcotest.(check int) "get" 998 (Vec.get v 499);
  Vec.set v 499 7;
  Alcotest.(check int) "set" 7 (Vec.get v 499);
  Alcotest.(check int) "last" 1998 (Vec.last v);
  Alcotest.(check int) "fold" (List.init 1000 (fun i -> i * 2) |> List.fold_left ( + ) 0 |> fun s -> s - 998 + 7)
    (Vec.fold_left ( + ) 0 v)

let test_vec_bounds () =
  let v = Vec.of_list ~dummy:0 [ 1; 2; 3 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get") (fun () ->
      ignore (Vec.get v 3))

let test_int_vec () =
  let v = Vec.Int_vec.create () in
  for i = 0 to 99 do
    Vec.Int_vec.push v i
  done;
  Alcotest.(check int) "sum" 4950 (Vec.Int_vec.fold_left ( + ) 0 v);
  Alcotest.(check (array int)) "to_array" (Array.init 100 Fun.id) (Vec.Int_vec.to_array v)

let test_heap_sorts () =
  let h = Heap.create () in
  let rng = Prng.create 99 in
  let input = List.init 500 (fun _ -> Prng.int rng 10_000) in
  List.iter (Heap.push h) input;
  let out = List.init 500 (fun _ -> Heap.pop h) in
  Alcotest.(check (list int)) "heap pops sorted" (List.sort compare input) out;
  Alcotest.(check bool) "empty after" true (Heap.is_empty h)

let test_heap_empty () =
  let h = Heap.create () in
  Alcotest.check_raises "pop empty" (Invalid_argument "Heap.pop") (fun () ->
      ignore (Heap.pop h))

let test_prng_deterministic () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.next a) (Prng.next b)
  done

let test_prng_bounds () =
  let rng = Prng.create 3 in
  for _ = 1 to 1000 do
    let x = Prng.int rng 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17);
    let f = Prng.float rng 2.5 in
    Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 2.5)
  done

let test_prng_shuffle_permutes () =
  let rng = Prng.create 5 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle rng a;
  Alcotest.(check (list int)) "same multiset" (List.init 50 Fun.id)
    (List.sort compare (Array.to_list a))

let test_stats () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "gmean" 2.0 (Stats.gmean [ 1.0; 2.0; 4.0 ]);
  Alcotest.(check (pair (float 1e-9) (float 1e-9))) "min_max" (1.0, 4.0)
    (Stats.min_max [ 2.0; 1.0; 4.0 ]);
  Alcotest.(check (float 1e-9)) "median" 2.0 (Stats.percentile 0.5 [ 3.0; 1.0; 2.0 ]);
  Alcotest.check_raises "gmean rejects <= 0"
    (Invalid_argument "Stats.gmean: non-positive element") (fun () ->
      ignore (Stats.gmean [ 1.0; 0.0 ]))

let test_table_render () =
  let t = Table.create [ "A"; "Bench" ] in
  Table.add_row t [ "1"; "x" ];
  Table.add_row t [ "22"; "yy" ];
  let s = Table.render t in
  Alcotest.(check bool) "header present" true (String.length s > 0);
  let lines = String.split_on_char '\n' s in
  (match lines with
  | header :: rule :: _ ->
    Alcotest.(check int) "aligned" (String.length header) (String.length rule)
  | _ -> Alcotest.fail "too few lines");
  Alcotest.check_raises "row width" (Invalid_argument "Table.add_row: row width mismatch")
    (fun () -> Table.add_row t [ "only one" ])

let prop_heap_min =
  QCheck.Test.make ~count:100 ~name:"heap min is list min"
    QCheck.(list_of_size Gen.(int_range 1 50) int)
    (fun xs ->
      let h = Heap.create () in
      List.iter (Heap.push h) xs;
      Heap.min h = List.fold_left min (List.hd xs) xs)

let prop_percentile_bounds =
  QCheck.Test.make ~count:100 ~name:"percentile within min/max"
    QCheck.(pair (list_of_size Gen.(int_range 1 30) (float_range 0.0 100.0)) (float_range 0.0 1.0))
    (fun (xs, p) ->
      let v = Stats.percentile p xs in
      let lo, hi = Stats.min_max xs in
      v >= lo && v <= hi)

let suite =
  [
    Alcotest.test_case "vec growth" `Quick test_vec_growth;
    Alcotest.test_case "vec bounds" `Quick test_vec_bounds;
    Alcotest.test_case "int vec" `Quick test_int_vec;
    Alcotest.test_case "heap sorts" `Quick test_heap_sorts;
    Alcotest.test_case "heap empty" `Quick test_heap_empty;
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
    Alcotest.test_case "prng shuffle" `Quick test_prng_shuffle_permutes;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "table render" `Quick test_table_render;
    QCheck_alcotest.to_alcotest prop_heap_min;
    QCheck_alcotest.to_alcotest prop_percentile_bounds;
  ]

let () = Alcotest.run "phloem_util" [ ("util", suite) ]
