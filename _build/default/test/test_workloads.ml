(* Integration tests: every benchmark x variant on small inputs computes the
   reference result; replicated pipelines validate on 4 cores. These are the
   end-to-end guarantees behind the evaluation harness. *)

open Phloem_workloads

let check_variant (b : Workload.bound) ~what (p, inputs) ?thread_core ?cfg () =
  let cfg = match cfg with Some c -> c | None -> Pipette.Config.default in
  match Pipette.Sim.run ~cfg ?thread_core ~inputs p with
  | exception e -> Alcotest.failf "%s/%s raised %s" b.Workload.b_name what (Printexc.to_string e)
  | r ->
    Alcotest.(check bool)
      (Printf.sprintf "%s/%s matches reference" b.Workload.b_name what)
      true
      (Workload.check b r.Pipette.Sim.sr_functional);
    Pipette.Sim.cycles r

let exercise (b : Workload.bound) =
  let serial_cycles = check_variant b ~what:"serial" b.Workload.b_serial () in
  let phloem =
    match Phloem.Compile.static_flow ~stages:4 (fst b.Workload.b_serial) with
    | p -> Some (check_variant b ~what:"phloem" (p, snd b.Workload.b_serial) ())
    | exception Phloem.Compile.Unsupported _ -> None
  in
  let _dp = check_variant b ~what:"data-parallel" (b.Workload.b_data_parallel ~threads:4) () in
  (match b.Workload.b_manual with
  | Some mp -> ignore (check_variant b ~what:"manual" mp ())
  | None -> ());
  (serial_cycles, phloem)

let grid () = Phloem_graph.Gen.grid ~width:14 ~height:10 ~seed:3
let powerlaw () = Phloem_graph.Gen.rmat ~scale:7 ~edge_factor:3 ~seed:4

let test_bfs () =
  ignore (exercise (Bfs.bind (grid ())));
  ignore (exercise (Bfs.bind (powerlaw ())))

let test_bfs_phloem_speedup () =
  (* on a large enough road network, the pipeline must win clearly *)
  let g = Phloem_graph.Gen.grid ~width:60 ~height:50 ~seed:11 in
  let serial_cycles, phloem = exercise (Bfs.bind g) in
  match phloem with
  | Some pc ->
    let speedup = float_of_int serial_cycles /. float_of_int pc in
    Alcotest.(check bool)
      (Printf.sprintf "BFS speedup %.2f > 1.3" speedup)
      true (speedup > 1.3)
  | None -> Alcotest.fail "BFS must decouple"

let test_cc () = ignore (exercise (Cc.bind (grid ())))
let test_prd () = ignore (exercise (Prd.bind (grid ())))
let test_radii () = ignore (exercise (Radii.bind (grid ())))

let test_spmm () =
  let a = Phloem_sparse.Gen.random ~rows:24 ~cols:24 ~nnz_per_row:3 ~seed:41 in
  let bt = Phloem_sparse.Gen.random ~rows:24 ~cols:24 ~nnz_per_row:3 ~seed:42 in
  ignore (exercise (Spmm.bind a bt))

let test_taco_all () =
  let m = Phloem_sparse.Gen.banded ~n:30 ~bandwidth:6 ~nnz_per_row:4 ~seed:43 in
  List.iter
    (fun k -> ignore (exercise (Taco_kernels.bind k m)))
    [ Taco_kernels.Spmv; Taco_kernels.Residual; Taco_kernels.Mtmul; Taco_kernels.Sddmm ]

(* --- replicated pipelines (Fig. 14 machinery) --- *)

let cfg4 = Pipette.Config.four_cores

let test_replicated_bfs () =
  let g = grid () in
  let p, inputs, tc = Replicated.bfs g ~replicas:4 in
  let r = Pipette.Sim.run ~cfg:cfg4 ~thread_core:tc ~inputs p in
  Alcotest.(check bool) "distances" true
    (List.assoc "dist" r.Pipette.Sim.sr_functional.Phloem_ir.Interp.r_arrays
    = Workload.vint (Phloem_graph.Algos.bfs g ~root:0))

let test_replicated_cc () =
  let g = powerlaw () in
  let p, inputs, tc = Replicated.cc g ~replicas:4 in
  let r = Pipette.Sim.run ~cfg:cfg4 ~thread_core:tc ~inputs p in
  Alcotest.(check bool) "labels" true
    (List.assoc "labels" r.Pipette.Sim.sr_functional.Phloem_ir.Interp.r_arrays
    = Workload.vint (Phloem_graph.Algos.connected_components g))

let test_replicated_radii () =
  let g = grid () in
  let p, inputs, tc, _ = Replicated.radii g ~replicas:4 in
  let r = Pipette.Sim.run ~cfg:cfg4 ~thread_core:tc ~inputs p in
  let combined =
    Replicated.radii_combined r.Pipette.Sim.sr_functional ~replicas:4 ~n:g.Phloem_graph.Csr.n
  in
  let reference, _ = Phloem_graph.Algos.radii_from_roots g ~roots:(Radii.roots g) in
  Alcotest.(check (array int)) "radii max-combined" reference combined

let test_replicated_prd () =
  let g = grid () in
  let p, inputs, tc = Replicated.prd g ~replicas:4 in
  let r = Pipette.Sim.run ~cfg:cfg4 ~thread_core:tc ~inputs p in
  let got = List.assoc "rank" r.Pipette.Sim.sr_functional.Phloem_ir.Interp.r_arrays in
  let want =
    Workload.vfloat
      (Phloem_graph.Algos.pagerank_delta g ~iters:Prd.iters ~damping:Prd.damping
         ~eps:Prd.eps)
  in
  Alcotest.(check bool) "rank within tolerance" true (Workload.values_close ~tol:1e-6 got want)

let test_replicated_bfs_speedup () =
  let g = Phloem_graph.Gen.grid ~width:60 ~height:50 ~seed:11 in
  let b = Bfs.bind g in
  let sp, si = b.Workload.b_serial in
  let sc = Pipette.Sim.cycles (Pipette.Sim.run ~inputs:si sp) in
  let p, inputs, tc = Replicated.bfs g ~replicas:4 in
  let rc = Pipette.Sim.cycles (Pipette.Sim.run ~cfg:cfg4 ~thread_core:tc ~inputs p) in
  let speedup = float_of_int sc /. float_of_int rc in
  Alcotest.(check bool)
    (Printf.sprintf "4-core replicated speedup %.2f > 1-core phloem" speedup)
    true (speedup > 1.5)

let prop_dp_threads_agree =
  QCheck.Test.make ~count:6 ~name:"data-parallel BFS agrees for any thread count"
    QCheck.(int_range 1 4)
    (fun threads ->
      let g = grid () in
      let b = Bfs.bind g in
      let p, inputs = b.Workload.b_data_parallel ~threads in
      let r = Pipette.Sim.run ~inputs p in
      Workload.check b r.Pipette.Sim.sr_functional)

let suite =
  [
    Alcotest.test_case "BFS all variants" `Quick test_bfs;
    Alcotest.test_case "BFS phloem speedup" `Quick test_bfs_phloem_speedup;
    Alcotest.test_case "CC all variants" `Quick test_cc;
    Alcotest.test_case "PRD all variants" `Quick test_prd;
    Alcotest.test_case "Radii all variants" `Quick test_radii;
    Alcotest.test_case "SpMM all variants" `Quick test_spmm;
    Alcotest.test_case "Taco kernels all variants" `Quick test_taco_all;
    Alcotest.test_case "replicated BFS" `Quick test_replicated_bfs;
    Alcotest.test_case "replicated CC" `Quick test_replicated_cc;
    Alcotest.test_case "replicated Radii" `Quick test_replicated_radii;
    Alcotest.test_case "replicated PRD" `Quick test_replicated_prd;
    Alcotest.test_case "replicated BFS speedup" `Quick test_replicated_bfs_speedup;
    QCheck_alcotest.to_alcotest prop_dp_threads_agree;
  ]

let () = Alcotest.run "workloads" [ ("workloads", suite) ]
