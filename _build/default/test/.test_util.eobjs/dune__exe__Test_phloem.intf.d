test/test_phloem.mli:
