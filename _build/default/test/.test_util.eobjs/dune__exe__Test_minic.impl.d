test/test_minic.ml: Alcotest Array Ast Lexer List Lower Parser Phloem_graph Phloem_ir Phloem_minic Str String
