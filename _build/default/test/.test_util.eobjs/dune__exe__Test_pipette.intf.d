test/test_pipette.mli:
