test/test_substrates.ml: Alcotest Array List Phloem_graph Phloem_sparse Phloem_taco Phloem_workloads Pipette QCheck QCheck_alcotest
