test/test_util.ml: Alcotest Array Fun Gen Heap List Phloem_util Prng QCheck QCheck_alcotest Stats String Table Vec
