test/test_pipette.ml: Alcotest Array Builder Cache Config Energy Engine Interp List Phloem_ir Phloem_util Pipette Predictor Printf QCheck QCheck_alcotest Sim Types
