test/test_ir.ml: Alcotest Array Builder Gen Interp List Phloem_ir Phloem_util QCheck QCheck_alcotest Trace Types Validate
