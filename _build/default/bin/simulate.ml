(* simulate: run one benchmark / variant / input on the Pipette model and
   report cycles, IPC, breakdowns and energy. *)

open Cmdliner
open Phloem_workloads

let graph_names =
  [ "internet"; "USA-road-d-NY"; "coAuthorsDBLP"; "hugetrace-00000"; "Freescale1";
    "as-Skitter"; "USA-road-d-USA" ]

let bind_bench bench input scale =
  match bench with
  | "bfs" | "cc" | "prd" | "radii" ->
    if not (List.mem input graph_names) then
      failwith (Printf.sprintf "unknown graph %s" input);
    let g = Lazy.force (Phloem_graph.Inputs.find ~scale input).Phloem_graph.Inputs.graph in
    (match bench with
    | "bfs" -> Bfs.bind g
    | "cc" -> Cc.bind g
    | "prd" -> Prd.bind g
    | _ -> Radii.bind g)
  | "spmm" ->
    let m = Lazy.force (Phloem_sparse.Inputs.find ~scale:(0.12 *. scale) input).Phloem_sparse.Inputs.matrix in
    Spmm.bind m (Phloem_sparse.Csr_matrix.transpose m)
  | "spmv" | "residual" | "mtmul" | "sddmm" ->
    let m = Lazy.force (Phloem_sparse.Inputs.find ~scale:(0.35 *. scale) input).Phloem_sparse.Inputs.matrix in
    let kind =
      match bench with
      | "spmv" -> Taco_kernels.Spmv
      | "residual" -> Taco_kernels.Residual
      | "mtmul" -> Taco_kernels.Mtmul
      | _ -> Taco_kernels.Sddmm
    in
    Taco_kernels.bind kind m
  | other -> failwith (Printf.sprintf "unknown benchmark %s" other)

let simulate bench variant input scale =
  let b = bind_bench bench input scale in
  let serial_p, serial_in = b.Workload.b_serial in
  let sr = Pipette.Sim.run ~inputs:serial_in serial_p in
  let serial_cycles = Pipette.Sim.cycles sr in
  let p, inputs =
    match variant with
    | "serial" -> (serial_p, serial_in)
    | "phloem" -> (Phloem.Compile.static_flow ~stages:4 serial_p, serial_in)
    | "data-parallel" -> b.Workload.b_data_parallel ~threads:4
    | "manual" -> (
      match b.Workload.b_manual with
      | Some mp -> mp
      | None -> failwith "no manual pipeline for this benchmark")
    | other -> failwith (Printf.sprintf "unknown variant %s" other)
  in
  let r = Pipette.Sim.run ~inputs p in
  let t = r.Pipette.Sim.sr_timing in
  let ok = Workload.check b r.Pipette.Sim.sr_functional in
  Printf.printf "%s / %s on %s\n" b.Workload.b_name variant input;
  Printf.printf "  result valid vs reference : %b\n" ok;
  Printf.printf "  cycles                    : %d\n" t.Pipette.Engine.cycles;
  Printf.printf "  micro-ops                 : %d (IPC %.2f)\n" t.Pipette.Engine.instrs
    (float_of_int t.Pipette.Engine.instrs /. float_of_int t.Pipette.Engine.cycles);
  Printf.printf "  speedup over serial       : %.2fx\n"
    (float_of_int serial_cycles /. float_of_int t.Pipette.Engine.cycles);
  Printf.printf "  thread-cycles: issue %d, backend %d, queue %d, other %d\n"
    t.Pipette.Engine.issue_cycles t.Pipette.Engine.backend_cycles
    t.Pipette.Engine.queue_cycles t.Pipette.Engine.other_cycles;
  Printf.printf "  branches: %d (%.1f%% mispredicted)\n" t.Pipette.Engine.branch_lookups
    (100.0
    *. float_of_int t.Pipette.Engine.branch_mispredicts
    /. float_of_int (max 1 t.Pipette.Engine.branch_lookups));
  Printf.printf "  DRAM accesses: %d; queue ops: %d; RA fetches: %d\n"
    t.Pipette.Engine.cache.Pipette.Cache.c_dram t.Pipette.Engine.queue_ops
    t.Pipette.Engine.ra_fetches;
  let e = r.Pipette.Sim.sr_energy in
  Printf.printf "  energy (nJ): core %.0f, memory %.0f, queues+RA %.0f, static %.0f\n"
    e.Pipette.Energy.e_core_dynamic e.Pipette.Energy.e_memory
    e.Pipette.Energy.e_queues_ras e.Pipette.Energy.e_static;
  if ok then 0 else 2

let bench_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"BENCH" ~doc:"bfs | cc | prd | radii | spmm | spmv | residual | mtmul | sddmm")

let variant_arg =
  Arg.(
    value & pos 1 string "phloem"
    & info [] ~docv:"VARIANT" ~doc:"serial | phloem | data-parallel | manual")

let input_arg =
  Arg.(value & pos 2 string "USA-road-d-USA" & info [] ~docv:"INPUT" ~doc:"input name (Table IV/V)")

let scale_arg = Arg.(value & opt float 1.0 & info [ "scale" ] ~doc:"input scale factor")

let cmd =
  Cmd.v
    (Cmd.info "simulate" ~doc:"run one benchmark variant on the Pipette simulator")
    Term.(const simulate $ bench_arg $ variant_arg $ input_arg $ scale_arg)

let () = exit (Cmd.eval' cmd)
