(* phloemc: the Phloem compiler CLI.

   Reads a minic source file containing a [#pragma phloem] kernel, runs the
   decoupling-point cost model and the pass pipeline, and prints the
   resulting pipeline-parallel program. Because array extents are part of
   the IR, array parameters are bound to placeholder lengths (--length). *)

open Cmdliner

let compile_cmd src_file stages length list_cuts flags_off =
  let src = In_channel.with_open_text src_file In_channel.input_all in
  let lw = Phloem_minic.Lower.of_source src in
  let arrays =
    List.map
      (fun (name, ty) ->
        ( name,
          Array.make length
            (match ty with
            | Phloem_ir.Types.Ety_int -> Phloem_ir.Types.Vint 0
            | Phloem_ir.Types.Ety_float -> Phloem_ir.Types.Vfloat 0.0) ))
      lw.Phloem_minic.Lower.lw_arrays
  in
  let scalars =
    List.map
      (fun (name, ty) ->
        ( name,
          match ty with
          | Phloem_ir.Types.Ety_int -> Phloem_ir.Types.Vint 1
          | Phloem_ir.Types.Ety_float -> Phloem_ir.Types.Vfloat 1.0 ))
      lw.Phloem_minic.Lower.lw_scalars
  in
  let serial, _ = Phloem_minic.Lower.to_serial_pipeline lw ~arrays ~scalars in
  if list_cuts then begin
    print_endline "Decoupling-point candidates (best first):";
    List.iteri
      (fun i (c : Phloem.Costmodel.cut) ->
        Printf.printf "  %2d. loads %s%s, score %.1f\n" i
          (String.concat "," (List.map string_of_int c.Phloem.Costmodel.cut_loads))
          (if c.Phloem.Costmodel.cut_prefetch then " (prefetch-only)" else "")
          c.Phloem.Costmodel.cut_score)
      (Phloem.Compile.candidates serial)
  end;
  let flags =
    List.fold_left
      (fun f off ->
        let open Phloem.Decouple in
        match off with
        | "recompute" -> { f with f_recompute = false }
        | "ra" -> { f with f_ra = false }
        | "cv" -> { f with f_cv = false }
        | "handlers" -> { f with f_handlers = false }
        | "dce" -> { f with f_dce = false }
        | other -> failwith ("unknown pass: " ^ other))
      Phloem.Decouple.all_passes flags_off
  in
  match Phloem.Compile.static_flow ~flags ~stages serial with
  | p ->
    print_endline (Phloem_ir.Printer.pipeline_to_string p);
    Printf.printf "\n;; %d stages, %d queues, %d reference accelerators\n"
      (List.length p.Phloem_ir.Types.p_stages)
      (List.length p.Phloem_ir.Types.p_queues)
      (List.length p.Phloem_ir.Types.p_ras);
    0
  | exception Phloem.Compile.Unsupported msg ->
    Printf.eprintf "phloemc: %s\n" msg;
    1

let src_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SOURCE.c" ~doc:"minic source file")

let stages_arg =
  Arg.(value & opt int 4 & info [ "stages"; "s" ] ~doc:"target pipeline stage count")

let length_arg =
  Arg.(value & opt int 64 & info [ "length" ] ~doc:"placeholder array length for binding")

let list_cuts_arg =
  Arg.(value & flag & info [ "list-cuts" ] ~doc:"print the ranked decoupling points")

let flags_off_arg =
  Arg.(
    value & opt_all string []
    & info [ "disable" ]
        ~doc:"disable a pass: recompute, ra, cv, handlers, dce (repeatable)")

let cmd =
  Cmd.v
    (Cmd.info "phloemc" ~doc:"compile a serial minic kernel into a Pipette pipeline")
    Term.(const compile_cmd $ src_arg $ stages_arg $ length_arg $ list_cuts_arg $ flags_off_arg)

let () = exit (Cmd.eval' cmd)
