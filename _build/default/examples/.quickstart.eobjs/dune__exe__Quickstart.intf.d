examples/quickstart.mli:
