examples/taco_spmv.ml: Phloem Phloem_sparse Phloem_taco Phloem_workloads Pipette Printf Taco_kernels Workload
