examples/replicated_multicore.ml: Bfs List Phloem_graph Phloem_ir Phloem_workloads Pipette Printf Replicated Workload
