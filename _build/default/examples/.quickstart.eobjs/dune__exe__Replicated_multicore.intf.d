examples/replicated_multicore.mli:
