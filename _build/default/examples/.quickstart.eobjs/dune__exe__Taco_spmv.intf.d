examples/taco_spmv.mli:
