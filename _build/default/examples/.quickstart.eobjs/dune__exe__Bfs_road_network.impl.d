examples/bfs_road_network.ml: Bfs List Phloem Phloem_graph Phloem_ir Phloem_workloads Pipette Printf String Workload
