examples/bfs_road_network.mli:
