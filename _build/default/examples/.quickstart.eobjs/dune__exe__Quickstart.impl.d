examples/quickstart.ml: Array List Phloem Phloem_ir Phloem_minic Phloem_util Pipette Printf
