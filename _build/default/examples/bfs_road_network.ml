(* BFS on a road-network-like graph, end to end: serial C-like source ->
   Phloem pipeline (with chained reference accelerators) -> Pipette timing,
   validated against a reference BFS — the paper's running example (Sec. II).

   Run with: dune exec examples/bfs_road_network.exe *)

open Phloem_workloads

let () =
  let g = Phloem_graph.Gen.grid ~width:104 ~height:88 ~seed:107 in
  Printf.printf "road network: %d vertices, %d edges\n" g.Phloem_graph.Csr.n
    g.Phloem_graph.Csr.m;
  let b = Bfs.bind g in
  let serial, inputs = b.Workload.b_serial in

  (* show the ranked decoupling points the cost model found *)
  print_endline "\ncost-model ranking of decoupling points:";
  List.iteri
    (fun i (c : Phloem.Costmodel.cut) ->
      Printf.printf "  %d. loads %s%s (score %.0f)\n" i
        (String.concat "," (List.map string_of_int c.cut_loads))
        (if c.cut_prefetch then ", prefetch-only" else "")
        c.cut_score)
    (Phloem.Compile.candidates serial);

  let p = Phloem.Compile.static_flow ~stages:4 serial in
  Printf.printf "\npipeline: %d threads + %d reference accelerators (%s)\n"
    (List.length p.Phloem_ir.Types.p_stages)
    (List.length p.Phloem_ir.Types.p_ras)
    (String.concat ", "
       (List.map
          (fun r ->
            Printf.sprintf "%s %s" r.Phloem_ir.Types.ra_array
              (match r.Phloem_ir.Types.ra_mode with
              | Phloem_ir.Types.Ra_indirect -> "indirect"
              | Phloem_ir.Types.Ra_scan -> "scan"))
          p.Phloem_ir.Types.p_ras));

  let rs = Pipette.Sim.run ~inputs serial in
  let rp = Pipette.Sim.run ~inputs p in
  assert (Workload.check b rp.Pipette.Sim.sr_functional);
  Printf.printf "\nserial %d cycles, phloem %d cycles: %.2fx (result verified)\n"
    (Pipette.Sim.cycles rs) (Pipette.Sim.cycles rp)
    (float_of_int (Pipette.Sim.cycles rs) /. float_of_int (Pipette.Sim.cycles rp));
  let t = rp.Pipette.Sim.sr_timing in
  Printf.printf "phloem breakdown (thread-cycles): issue %d, backend %d, queue %d, other %d\n"
    t.Pipette.Engine.issue_cycles t.Pipette.Engine.backend_cycles
    t.Pipette.Engine.queue_cycles t.Pipette.Engine.other_cycles
