(* Quickstart: compile the paper's introductory kernel
     for (i = 0; i < n; i++) if (A[i] > 0) work(B[A[i]]);
   with Phloem and compare it against serial execution on Pipette.

   Run with: dune exec examples/quickstart.exe *)

let source =
  "#pragma cost 10\n\
   extern int work(int x);\n\n\
   #pragma phloem\n\
   void kernel(int n, int *restrict A, int *restrict B, int *restrict out) {\n\
   \  int acc = 0;\n\
   \  for (int i = 0; i < n; i++) {\n\
   \    if (A[i] > 0) { acc = acc + work(B[A[i]]); }\n\
   \  }\n\
   \  out[0] = acc;\n\
   }\n"

let () =
  (* an adversarial input: A alternates sign randomly and indexes a large B *)
  let n = 20_000 and bsize = 1 lsl 16 in
  let rng = Phloem_util.Prng.create 42 in
  let a =
    Array.init n (fun _ ->
        let idx = Phloem_util.Prng.int rng bsize in
        Phloem_ir.Types.Vint (if Phloem_util.Prng.bool rng then idx else -idx - 1))
  in
  let b = Array.init bsize (fun i -> Phloem_ir.Types.Vint (i land 0xFF)) in
  let arrays = [ ("A", a); ("B", b); ("out", [| Phloem_ir.Types.Vint 0 |]) ] in
  let scalars = [ ("n", Phloem_ir.Types.Vint n) ] in

  (* 1. parse + type check + lower the serial kernel *)
  let lw = Phloem_minic.Lower.of_source source in
  let serial, inputs = Phloem_minic.Lower.to_serial_pipeline lw ~arrays ~scalars in

  (* 2. let Phloem pick decoupling points and build the pipeline *)
  let pipelined = Phloem.Compile.static_flow ~stages:3 serial in
  print_endline "Phloem produced this pipeline:\n";
  print_endline (Phloem_ir.Printer.pipeline_to_string pipelined);

  (* 3. simulate both on the Pipette model *)
  let rs = Pipette.Sim.run ~inputs serial in
  let rp = Pipette.Sim.run ~inputs pipelined in
  let out r = List.assoc "out" r.Pipette.Sim.sr_functional.Phloem_ir.Interp.r_arrays in
  assert (out rs = out rp);
  Printf.printf "\nserial:   %8d cycles\n" (Pipette.Sim.cycles rs);
  Printf.printf "pipeline: %8d cycles  -> %.2fx speedup, same result\n"
    (Pipette.Sim.cycles rp)
    (float_of_int (Pipette.Sim.cycles rs) /. float_of_int (Pipette.Sim.cycles rp))
