(* Domain-specific pipeline: a tensor-algebra expression goes through
   taco_lite into minic, and Phloem pipelines the generated kernel
   automatically (paper Sec. IV-D).

   Run with: dune exec examples/taco_spmv.exe *)

open Phloem_workloads

let () =
  let expr = "y(i) = A(i,j) * x(j)" in
  Printf.printf "tensor expression: %s\n\n" expr;
  let m = Phloem_sparse.Gen.random ~rows:600 ~cols:600 ~nnz_per_row:6 ~seed:77 in
  let plan =
    Phloem_taco.Taco.compile
      [ ("A", Phloem_taco.Taco.Csr); ("x", Dense_vector); ("y", Dense_vector) ]
      expr
  in
  print_endline "taco_lite emitted this minic kernel:";
  print_endline plan.Phloem_taco.Taco.pl_source;

  let b = Taco_kernels.bind Taco_kernels.Spmv m in
  let serial, inputs = b.Workload.b_serial in
  let p = Phloem.Compile.static_flow ~stages:4 serial in
  let rs = Pipette.Sim.run ~inputs serial in
  let rp = Pipette.Sim.run ~inputs p in
  assert (Workload.check b rp.Pipette.Sim.sr_functional);
  Printf.printf "SpMV on %d x %d (%d nnz): serial %d cycles, phloem %d cycles (%.2fx)\n"
    m.Phloem_sparse.Csr_matrix.rows m.Phloem_sparse.Csr_matrix.cols
    m.Phloem_sparse.Csr_matrix.nnz (Pipette.Sim.cycles rs) (Pipette.Sim.cycles rp)
    (float_of_int (Pipette.Sim.cycles rs) /. float_of_int (Pipette.Sim.cycles rp))
