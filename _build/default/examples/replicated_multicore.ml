(* Composing data and pipeline parallelism (paper Sec. IV-C): the BFS
   pipeline replicated over 4 cores, with neighbors distributed to the
   replica that owns them (the #pragma replicate / distribute flow).

   Run with: dune exec examples/replicated_multicore.exe *)

open Phloem_workloads

let () =
  let g = Phloem_graph.Gen.grid ~width:104 ~height:88 ~seed:107 in
  let b = Bfs.bind g in
  let sp, si = b.Workload.b_serial in
  let sc = Pipette.Sim.cycles (Pipette.Sim.run ~inputs:si sp) in

  let cfg = Pipette.Config.four_cores in
  let p, inputs, thread_core = Replicated.bfs g ~replicas:4 in
  Printf.printf "replicated pipeline: %d threads over %d cores, %d RAs\n"
    (List.length p.Phloem_ir.Types.p_stages) cfg.Pipette.Config.n_cores
    (List.length p.Phloem_ir.Types.p_ras);
  let r = Pipette.Sim.run ~cfg ~thread_core ~inputs p in
  let ok =
    List.assoc "dist" r.Pipette.Sim.sr_functional.Phloem_ir.Interp.r_arrays
    = Workload.vint (Phloem_graph.Algos.bfs g ~root:0)
  in
  Printf.printf "1-core serial %d cycles -> 4-core replicated %d cycles: %.2fx (valid=%b)\n"
    sc (Pipette.Sim.cycles r)
    (float_of_int sc /. float_of_int (Pipette.Sim.cycles r))
    ok
