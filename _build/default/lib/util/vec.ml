type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;
}

let create ?(capacity = 16) ~dummy () =
  { data = Array.make (max capacity 1) dummy; len = 0; dummy }

let length v = v.len

let ensure v n =
  if n > Array.length v.data then begin
    let cap = ref (Array.length v.data) in
    while !cap < n do
      cap := !cap * 2
    done;
    let data = Array.make !cap v.dummy in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end

let push v x =
  ensure v (v.len + 1);
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get";
  v.data.(i)

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Vec.set";
  v.data.(i) <- x

let clear v = v.len <- 0

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let to_list v =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (v.data.(i) :: acc) in
  loop (v.len - 1) []

let to_array v = Array.sub v.data 0 v.len

let of_list ~dummy l =
  let v = create ~dummy () in
  List.iter (push v) l;
  v

let last v = if v.len = 0 then invalid_arg "Vec.last" else v.data.(v.len - 1)

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

module Int_vec = struct
  type t = { mutable data : int array; mutable len : int }

  let create ?(capacity = 16) () = { data = Array.make (max capacity 1) 0; len = 0 }
  let length v = v.len

  let ensure v n =
    if n > Array.length v.data then begin
      let cap = ref (Array.length v.data) in
      while !cap < n do
        cap := !cap * 2
      done;
      let data = Array.make !cap 0 in
      Array.blit v.data 0 data 0 v.len;
      v.data <- data
    end

  let push v x =
    ensure v (v.len + 1);
    v.data.(v.len) <- x;
    v.len <- v.len + 1

  let get v i =
    if i < 0 || i >= v.len then invalid_arg "Int_vec.get";
    v.data.(i)

  let set v i x =
    if i < 0 || i >= v.len then invalid_arg "Int_vec.set";
    v.data.(i) <- x

  let clear v = v.len <- 0
  let to_array v = Array.sub v.data 0 v.len
  let of_array a = { data = Array.copy a; len = Array.length a }

  let iter f v =
    for i = 0 to v.len - 1 do
      f v.data.(i)
    done

  let fold_left f acc v =
    let acc = ref acc in
    for i = 0 to v.len - 1 do
      acc := f !acc v.data.(i)
    done;
    !acc
end
