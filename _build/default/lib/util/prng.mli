(** Deterministic pseudo-random number generator (splitmix64).

    All synthetic inputs (graphs, matrices) are generated from explicit seeds
    so every experiment is reproducible bit-for-bit. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. *)

val copy : t -> t
val next : t -> int
(** [next t] is a uniformly distributed 62-bit non-negative int. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
