let mean = function
  | [] -> invalid_arg "Stats.mean: empty"
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let gmean = function
  | [] -> invalid_arg "Stats.gmean: empty"
  | xs ->
    let sum_logs =
      List.fold_left
        (fun acc x ->
          if x <= 0.0 then invalid_arg "Stats.gmean: non-positive element";
          acc +. log x)
        0.0 xs
    in
    exp (sum_logs /. float_of_int (List.length xs))

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty"
  | x :: xs -> List.fold_left (fun (lo, hi) y -> (min lo y, max hi y)) (x, x) xs

let percentile p = function
  | [] -> invalid_arg "Stats.percentile: empty"
  | xs ->
    if p < 0.0 || p > 1.0 then invalid_arg "Stats.percentile: p out of range";
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    let idx = int_of_float (ceil (p *. float_of_int n)) - 1 in
    a.(max 0 (min (n - 1) idx))

let stddev xs =
  let m = mean xs in
  let var = mean (List.map (fun x -> (x -. m) *. (x -. m)) xs) in
  sqrt var
