(** Plain-text table rendering for the benchmark harness.

    Renders aligned columns with a header rule, in the style of the paper's
    tables, e.g.:

    {v
    Benchmark | Serial | Phloem
    ----------+--------+-------
    BFS       |   1.00 |   4.70
    v} *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header width. *)

val render : t -> string

val fmt_float : ?decimals:int -> float -> string
(** Fixed-point formatting helper, default 2 decimals. *)
