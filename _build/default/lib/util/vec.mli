(** Growable arrays.

    [Vec.t] is a generic growable array; [Int_vec.t] is an unboxed-int
    specialization used on the hot paths of the interpreter and the timing
    engine, where traces routinely hold millions of entries. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [create ~dummy ()] makes an empty vector. [dummy] fills unused slots. *)

val length : 'a t -> int
val push : 'a t -> 'a -> unit
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array
val of_list : dummy:'a -> 'a list -> 'a t
val last : 'a t -> 'a
(** [last v] is the most recently pushed element. @raise Invalid_argument if empty. *)

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

module Int_vec : sig
  type t

  val create : ?capacity:int -> unit -> t
  val length : t -> int
  val push : t -> int -> unit
  val get : t -> int -> int
  val set : t -> int -> int -> unit
  val clear : t -> unit
  val to_array : t -> int array
  val of_array : int array -> t
  val iter : (int -> unit) -> t -> unit
  val fold_left : ('acc -> int -> 'acc) -> 'acc -> t -> 'acc
end
