(** Minimal binary min-heap over integer keys, used by the timing engine's
    event queue (fast-forward over stall cycles). *)

type t

val create : unit -> t
val size : t -> int
val is_empty : t -> bool
val push : t -> int -> unit
val min : t -> int
(** @raise Invalid_argument when empty. *)

val pop : t -> int
(** Removes and returns the minimum. @raise Invalid_argument when empty. *)

val clear : t -> unit
