lib/util/table.mli:
