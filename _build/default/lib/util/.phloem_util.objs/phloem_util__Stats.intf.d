lib/util/stats.mli:
