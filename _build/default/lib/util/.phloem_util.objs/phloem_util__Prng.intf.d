lib/util/prng.mli:
