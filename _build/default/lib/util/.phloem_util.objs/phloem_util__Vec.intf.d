lib/util/vec.mli:
