lib/util/heap.mli:
