type t = {
  headers : string list;
  mutable rows : string list list; (* reversed *)
}

let create headers = { headers; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: row width mismatch";
  t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let buf = Buffer.create 256 in
  let render_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  render_row t.headers;
  Array.iteri
    (fun i w ->
      if i > 0 then Buffer.add_string buf "-+-";
      Buffer.add_string buf (String.make w '-'))
    widths;
  Buffer.add_char buf '\n';
  List.iter render_row rows;
  Buffer.contents buf

let fmt_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
