type t = { mutable data : int array; mutable len : int }

let create () = { data = Array.make 64 0; len = 0 }
let size h = h.len
let is_empty h = h.len = 0

let ensure h n =
  if n > Array.length h.data then begin
    let data = Array.make (2 * n) 0 in
    Array.blit h.data 0 data 0 h.len;
    h.data <- data
  end

let push h x =
  ensure h (h.len + 1);
  let i = ref h.len in
  h.len <- h.len + 1;
  h.data.(!i) <- x;
  (* sift up *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if h.data.(parent) > h.data.(!i) then begin
      let tmp = h.data.(parent) in
      h.data.(parent) <- h.data.(!i);
      h.data.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let min h = if h.len = 0 then invalid_arg "Heap.min" else h.data.(0)

let pop h =
  if h.len = 0 then invalid_arg "Heap.pop";
  let top = h.data.(0) in
  h.len <- h.len - 1;
  if h.len > 0 then begin
    h.data.(0) <- h.data.(h.len);
    (* sift down *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.len && h.data.(l) < h.data.(!smallest) then smallest := l;
      if r < h.len && h.data.(r) < h.data.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = h.data.(!smallest) in
        h.data.(!smallest) <- h.data.(!i);
        h.data.(!i) <- tmp;
        i := !smallest
      end
      else continue := false
    done
  end;
  top

let clear h = h.len <- 0
