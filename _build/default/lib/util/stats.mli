(** Small statistics helpers used by the evaluation harness. *)

val mean : float list -> float
(** Arithmetic mean. @raise Invalid_argument on the empty list. *)

val gmean : float list -> float
(** Geometric mean (the paper reports gmean speedups).
    @raise Invalid_argument on an empty list or non-positive element. *)

val min_max : float list -> float * float
(** @raise Invalid_argument on the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,1\]], nearest-rank on the sorted list. *)

val stddev : float list -> float
