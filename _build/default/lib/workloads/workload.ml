(* Common shape of an evaluated benchmark: given an input, a workload binds
   the serial kernel, a data-parallel implementation, and a hand-pipelined
   implementation to concrete arrays, and says how to validate results. *)

open Phloem_ir.Types

type inputs = (string * value array) list

type bound = {
  b_name : string;
  b_serial : pipeline * inputs;
  b_data_parallel : threads:int -> pipeline * inputs;
  b_manual : (pipeline * inputs) option;
  b_check_arrays : string list;
      (* output arrays that must match the serial result (and the reference) *)
  b_reference : inputs; (* expected contents of the checked arrays *)
  b_float_tolerance : float; (* 0.0 = exact; else relative tolerance *)
}

let vint a = Array.map (fun x -> Vint x) a
let vfloat a = Array.map (fun x -> Vfloat x) a

let values_close ~tol a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y ->
         match (x, y) with
         | Vint i, Vint j -> i = j
         | Vfloat f, Vfloat g ->
           if tol = 0.0 then f = g
           else abs_float (f -. g) <= tol *. (1.0 +. max (abs_float f) (abs_float g))
         | Vctrl a, Vctrl b -> a = b
         | _ -> false)
       a b

(* Does a run's output match the workload's reference? *)
let check (b : bound) (r : Phloem_ir.Interp.result) : bool =
  List.for_all
    (fun name ->
      match
        ( List.assoc_opt name r.Phloem_ir.Interp.r_arrays,
          List.assoc_opt name b.b_reference )
      with
      | Some got, Some want -> values_close ~tol:b.b_float_tolerance got want
      | _, _ -> false)
    b.b_check_arrays

(* Partition [0, n) into [threads] contiguous slices; returns start offsets
   of length threads+1. Used by the data-parallel variants. *)
let slice_bounds ~n ~threads =
  Array.init (threads + 1) (fun t -> t * n / threads)
