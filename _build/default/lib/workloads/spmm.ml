(* Sparse Matrix-Matrix Multiplication with an inner-product (output
   stationary) dataflow: C(i,j) is the merge-intersection dot product of A's
   row i and B^T's row j (paper Sec. VI-B).

   This is the paper's negative result for Phloem: the merge loop's
   induction updates are control-dependent on loaded values, so cuts inside
   it are illegal and the static flow only decouples the row-pointer
   fetches. The manual pipeline streams both (column, value) runs through
   four scan RAs with per-task control values and uses the bespoke
   skip-to-next-control-value trick when one run ends first. *)

open Phloem_ir.Types
open Phloem_ir.Builder
open Workload
module M = Phloem_sparse.Csr_matrix

let serial_source =
  "#pragma phloem\n\
   void spmm(int rows, int cols, int *restrict arp, int *restrict acol,\n\
   \          float *restrict avals, int *restrict brp, int *restrict bcol,\n\
   \          float *restrict bvals, float *restrict c) {\n\
   for (int i = 0; i < rows; i++) {\n\
   for (int j = 0; j < cols; j++) {\n\
   int i1 = arp[i];\n\
   int e1 = arp[i + 1];\n\
   int j1 = brp[j];\n\
   int e2 = brp[j + 1];\n\
   float acc = 0.0;\n\
   while (i1 < e1 && j1 < e2) {\n\
   int c1 = acol[i1];\n\
   int c2 = bcol[j1];\n\
   if (c1 == c2) {\n\
   acc = acc + avals[i1] * bvals[j1];\n\
   i1 = i1 + 1;\n\
   j1 = j1 + 1;\n\
   } else {\n\
   if (c1 < c2) { i1 = i1 + 1; } else { j1 = j1 + 1; }\n\
   }\n\
   }\n\
   c[i * cols + j] = acc;\n\
   }\n\
   }\n\
   }"

let base_arrays (a : M.t) (bt : M.t) =
  [
    ("arp", vint a.M.row_ptr);
    ("acol", vint a.M.col_idx);
    ("avals", vfloat a.M.vals);
    ("brp", vint bt.M.row_ptr);
    ("bcol", vint bt.M.col_idx);
    ("bvals", vfloat bt.M.vals);
    ("c", vfloat (Array.make (a.M.rows * bt.M.rows) 0.0));
  ]

let scalars (a : M.t) (bt : M.t) = [ ("rows", Vint a.M.rows); ("cols", Vint bt.M.rows) ]

let serial (a : M.t) (bt : M.t) =
  let lw = Phloem_minic.Lower.of_source serial_source in
  Phloem_minic.Lower.to_serial_pipeline lw ~arrays:(base_arrays a bt)
    ~scalars:(scalars a bt)

(* Data-parallel: output rows are independent; partition i across threads. *)
let data_parallel (a : M.t) (bt : M.t) ~threads =
  let thread t =
    stage
      (Printf.sprintf "dp%d" t)
      [
        "lo" <-- (int t *! v "rows" /! int threads);
        "hi" <-- ((int t +! int 1) *! v "rows" /! int threads);
        for_ "i" (v "lo") (v "hi")
          [
            for_ "j" (int 0) (v "cols")
              [
                "i1" <-- load "arp" (v "i");
                "e1" <-- load "arp" (v "i" +! int 1);
                "j1" <-- load "brp" (v "j");
                "e2" <-- load "brp" (v "j" +! int 1);
                "acc" <-- flt 0.0;
                while_ true_
                  [
                    when_ (not_ (v "i1" <! v "e1" &&! (v "j1" <! v "e2"))) [ break_ ];
                    "c1" <-- load "acol" (v "i1");
                    "c2" <-- load "bcol" (v "j1");
                    if_ (v "c1" ==! v "c2")
                      [
                        "acc" <-- (v "acc" +! (load "avals" (v "i1") *! load "bvals" (v "j1")));
                        "i1" <-- (v "i1" +! int 1);
                        "j1" <-- (v "j1" +! int 1);
                      ]
                      [
                        if_ (v "c1" <! v "c2")
                          [ "i1" <-- (v "i1" +! int 1) ]
                          [ "j1" <-- (v "j1" +! int 1) ];
                      ];
                  ];
                store "c" ((v "i" *! v "cols") +! v "j") (v "acc");
              ];
          ];
      ]
  in
  let arrays_decl =
    [
      int_array "arp" (a.M.rows + 1);
      int_array "acol" (max a.M.nnz 1);
      float_array "avals" (max a.M.nnz 1);
      int_array "brp" (bt.M.rows + 1);
      int_array "bcol" (max bt.M.nnz 1);
      float_array "bvals" (max bt.M.nnz 1);
      float_array "c" (a.M.rows * bt.M.rows);
    ]
  in
  ( pipeline "spmm_dp" ~arrays:arrays_decl ~params:(scalars a bt)
      (List.init threads thread),
    base_arrays a bt )

(* Manual pipeline with the merge-skip insight. *)
let cv_task = 7

let manual (a : M.t) (bt : M.t) =
  let s0 =
    stage "tasks"
      [
        for_ "i" (int 0) (v "rows")
          [
            "i1" <-- load "arp" (v "i");
            "e1" <-- load "arp" (v "i" +! int 1);
            for_ "j" (int 0) (v "cols")
              [
                "j1" <-- load "brp" (v "j");
                "e2" <-- load "brp" (v "j" +! int 1);
                enq 0 (v "i1");
                enq 0 (v "e1");
                enq 1 (v "i1");
                enq 1 (v "e1");
                enq 2 (v "j1");
                enq 2 (v "e2");
                enq 3 (v "j1");
                enq 3 (v "e2");
                enq_ctrl 0 cv_task;
                enq_ctrl 1 cv_task;
                enq_ctrl 2 cv_task;
                enq_ctrl 3 cv_task;
              ];
          ];
      ]
  in
  let advance side =
    (* dequeue the next (col, val) of one run; flags <side>_end on a CV *)
    let qc, qv = if side = "a" then (4, 5) else (6, 7) in
    [
      ("c" ^ side) <-- deq qc;
      ("v" ^ side) <-- deq qv;
      when_ (is_control (v ("c" ^ side))) [ (side ^ "_end") <-- int 1 ];
    ]
  in
  let s1 =
    stage "merge"
      [
        "ii" <-- int 0;
        "jj" <-- int 0;
        for_ "task" (int 0) (v "rows" *! v "cols")
          ([ "acc" <-- flt 0.0; "a_end" <-- int 0; "b_end" <-- int 0 ]
          @ advance "a" @ advance "b"
          @ [
              loop_forever
                [
                  when_ (v "a_end" ==! int 1 &&! (v "b_end" ==! int 1)) [ break_ ];
                  if_
                    (v "a_end" ==! int 0 &&! (v "b_end" ==! int 0))
                    [
                      if_ (v "ca" ==! v "cb")
                        ([ "acc" <-- (v "acc" +! (v "va" *! v "vb")) ]
                        @ advance "a" @ advance "b")
                        [
                          if_ (v "ca" <! v "cb") (advance "a") (advance "b");
                        ];
                    ]
                    [
                      (* one run ended: skip the other to its control value *)
                      if_ (v "a_end" ==! int 1) (advance "b") (advance "a");
                    ];
                ];
              store "c" ((v "ii" *! v "cols") +! v "jj") (v "acc");
              "jj" <-- (v "jj" +! int 1);
              when_ (v "jj" ==! v "cols") [ "jj" <-- int 0; "ii" <-- (v "ii" +! int 1) ];
            ]);
      ]
  in
  let arrays_decl =
    [
      int_array "arp" (a.M.rows + 1);
      int_array "acol" (max a.M.nnz 1);
      float_array "avals" (max a.M.nnz 1);
      int_array "brp" (bt.M.rows + 1);
      int_array "bcol" (max bt.M.nnz 1);
      float_array "bvals" (max bt.M.nnz 1);
      float_array "c" (a.M.rows * bt.M.rows);
    ]
  in
  ( pipeline "spmm_manual" ~arrays:arrays_decl ~params:(scalars a bt)
      ~queues:[ queue 0; queue 1; queue 2; queue 3; queue 4; queue 5; queue 6; queue 7 ]
      ~ras:
        [
          ra ~id:0 ~in_q:0 ~out_q:4 ~array:"acol" ~mode:Ra_scan;
          ra ~id:1 ~in_q:1 ~out_q:5 ~array:"avals" ~mode:Ra_scan;
          ra ~id:2 ~in_q:2 ~out_q:6 ~array:"bcol" ~mode:Ra_scan;
          ra ~id:3 ~in_q:3 ~out_q:7 ~array:"bvals" ~mode:Ra_scan;
        ]
      [ s0; s1 ],
    base_arrays a bt )

let bind (a : M.t) (bt : M.t) : bound =
  let reference = Phloem_sparse.Kernels.spmm_inner a bt in
  let flat = Array.concat (Array.to_list reference) in
  {
    b_name = "SpMM";
    b_serial = serial a bt;
    b_data_parallel = (fun ~threads -> data_parallel a bt ~threads);
    b_manual = Some (manual a bt);
    b_check_arrays = [ "c" ];
    b_reference = [ ("c", vfloat flat) ];
    b_float_tolerance = 0.0;
  }
