(* The four Taco benchmarks (paper Sec. VI-B): tensor expressions compiled
   by taco_lite into minic, then bound to Table V matrices. The paper uses
   the static Phloem flow for these; there are no manual pipelines. *)

open Phloem_ir.Types
open Workload
module M = Phloem_sparse.Csr_matrix
module K = Phloem_sparse.Kernels

type kind = Spmv | Residual | Mtmul | Sddmm

let name_of = function
  | Spmv -> "SpMV"
  | Residual -> "Residual"
  | Mtmul -> "MTMul"
  | Sddmm -> "SDDMM"

let expression = function
  | Spmv -> "y(i) = A(i,j) * x(j)"
  | Residual -> "y(i) = b(i) - A(i,j) * x(j)"
  | Mtmul -> "y(i) = alpha * A(j,i) * x(j) + beta * z(i)"
  | Sddmm -> "A(i,j) = B(i,j) * C(i,k) * D(k,j)"

let sddmm_k = 16
let alpha = 1.5
let beta = 0.5

let formats kind (m : M.t) =
  match kind with
  | Spmv -> [ ("A", Phloem_taco.Taco.Csr); ("x", Dense_vector); ("y", Dense_vector) ]
  | Residual ->
    [
      ("A", Phloem_taco.Taco.Csr);
      ("x", Dense_vector);
      ("b", Dense_vector);
      ("y", Dense_vector);
    ]
  | Mtmul ->
    [
      ("A", Phloem_taco.Taco.Csr);
      ("x", Dense_vector);
      ("z", Dense_vector);
      ("y", Dense_vector);
      ("alpha", Scalar);
      ("beta", Scalar);
    ]
  | Sddmm ->
    [
      ("B", Phloem_taco.Taco.Csr);
      ("C", Dense_matrix (m.M.rows, sddmm_k));
      ("D", Dense_matrix (sddmm_k, m.M.cols));
      ("A", Csr);
    ]

(* The data-parallel baseline partitions output rows across threads; it is
   generated from the same taco_lite source shape, hand-rolled per kind. *)
let dp_slice_kernel kind (m : M.t) ~threads =
  let open Phloem_ir.Builder in
  let body t =
    let lo = "lo" and hi = "hi" in
    let prologue =
      [
        lo <-- (int t *! v "n_rows" /! int threads);
        hi <-- ((int t +! int 1) *! v "n_rows" /! int threads);
      ]
    in
    let row_loop inner = [ for_ "i" (v lo) (v hi) inner ] in
    let spmv_inner ~extra ~init ~finish =
      [
        "acc" <-- flt 0.0;
        "es" <-- load "A_rp" (v "i");
        "ee" <-- load "A_rp" (v "i" +! int 1);
        for_ "e" (v "es") (v "ee")
          [
            "j" <-- load "A_col" (v "e");
            "acc" <-- (v "acc" +! (load "A_vals" (v "e") *! load "x" (v "j")));
          ];
      ]
      @ extra @ init @ finish
    in
    match kind with
    | Spmv ->
      prologue
      @ row_loop (spmv_inner ~extra:[] ~init:[] ~finish:[ store "y" (v "i") (v "acc") ])
    | Residual ->
      prologue
      @ row_loop
          (spmv_inner ~extra:[] ~init:[]
             ~finish:[ store "y" (v "i") (load "b" (v "i") -! v "acc") ])
    | Mtmul ->
      prologue
      @ row_loop
          (spmv_inner ~extra:[] ~init:[]
             ~finish:
               [
                 store "y" (v "i")
                   ((v "alpha" *! v "acc") +! (v "beta" *! load "z" (v "i")));
               ])
    | Sddmm ->
      prologue
      @ row_loop
          [
            "es" <-- load "B_rp" (v "i");
            "ee" <-- load "B_rp" (v "i" +! int 1);
            for_ "e" (v "es") (v "ee")
              [
                "j" <-- load "B_col" (v "e");
                "acc" <-- flt 0.0;
                for_ "k" (int 0) (int sddmm_k)
                  [
                    "acc"
                    <-- (v "acc"
                        +! (load "C" ((v "i" *! int sddmm_k) +! v "k")
                           *! load "D" ((v "k" *! v "n_cols") +! v "j")));
                  ];
                store "A_out" (v "e") (load "B_vals" (v "e") *! v "acc");
              ];
          ]
  in
  ignore m;
  List.init threads (fun t -> stage (Printf.sprintf "dp%d" t) (body t))

(* Bind a kind to a matrix. For MTMul the matrix is pre-transposed, exactly
   as taco_lite assumes (the sparse row dimension matches the output). *)
let bind kind (m0 : M.t) : bound =
  let m = match kind with Mtmul -> M.transpose m0 | _ -> m0 in
  let n = m.M.rows in
  let x = Phloem_sparse.Gen.dense_vector ~n:m.M.cols ~seed:301 in
  let b = Phloem_sparse.Gen.dense_vector ~n ~seed:302 in
  let z = Phloem_sparse.Gen.dense_vector ~n ~seed:303 in
  let cm = Phloem_sparse.Gen.dense_matrix ~rows:n ~cols:sddmm_k ~seed:304 in
  let d = Phloem_sparse.Gen.dense_matrix ~rows:sddmm_k ~cols:m.M.cols ~seed:305 in
  let plan = Phloem_taco.Taco.compile (formats kind m) (expression kind) in
  let lw = Phloem_minic.Lower.of_source plan.Phloem_taco.Taco.pl_source in
  let flatten mat = Array.concat (Array.to_list mat) in
  let arrays, scalars, check, reference =
    match kind with
    | Spmv ->
      ( [
          ("A_rp", vint m.M.row_ptr);
          ("A_col", vint m.M.col_idx);
          ("A_vals", vfloat m.M.vals);
          ("x", vfloat x);
          ("y", vfloat (Array.make n 0.0));
        ],
        [ ("n_rows", Vint n) ],
        [ "y" ],
        [ ("y", vfloat (K.spmv m x)) ] )
    | Residual ->
      ( [
          ("A_rp", vint m.M.row_ptr);
          ("A_col", vint m.M.col_idx);
          ("A_vals", vfloat m.M.vals);
          ("x", vfloat x);
          ("b", vfloat b);
          ("y", vfloat (Array.make n 0.0));
        ],
        [ ("n_rows", Vint n) ],
        [ "y" ],
        [ ("y", vfloat (K.residual m x b)) ] )
    | Mtmul ->
      ( [
          ("A_rp", vint m.M.row_ptr);
          ("A_col", vint m.M.col_idx);
          ("A_vals", vfloat m.M.vals);
          ("x", vfloat x);
          ("z", vfloat z);
          ("y", vfloat (Array.make n 0.0));
        ],
        [ ("n_rows", Vint n); ("alpha", Vfloat alpha); ("beta", Vfloat beta) ],
        [ "y" ],
        [ ("y", vfloat (K.mtmul m x z ~alpha ~beta)) ] )
    | Sddmm ->
      ( [
          ("B_rp", vint m.M.row_ptr);
          ("B_col", vint m.M.col_idx);
          ("B_vals", vfloat m.M.vals);
          ("C", vfloat (flatten cm));
          ("D", vfloat (flatten d));
          ("A_out", vfloat (Array.make (max m.M.nnz 1) 0.0));
        ],
        [ ("n_rows", Vint n) ],
        [ "A_out" ],
        [ ("A_out", vfloat (K.sddmm m cm d)) ] )
  in
  let serial = Phloem_minic.Lower.to_serial_pipeline lw ~arrays ~scalars in
  let data_parallel ~threads =
    let open Phloem_ir.Builder in
    let decls =
      List.map
        (fun (name, contents) ->
          match contents.(0) with
          | Vint _ -> int_array name (Array.length contents)
          | Vfloat _ -> float_array name (Array.length contents)
          | Vctrl _ -> assert false)
        arrays
    in
    let scalars' = scalars @ [ ("n_cols", Vint m.M.cols) ] in
    ( pipeline
        (String.lowercase_ascii (name_of kind) ^ "_dp")
        ~arrays:decls ~params:scalars'
        (dp_slice_kernel kind m ~threads),
      arrays )
  in
  {
    b_name = name_of kind;
    b_serial = serial;
    b_data_parallel = data_parallel;
    b_manual = None;
    b_check_arrays = check;
    b_reference = reference;
    b_float_tolerance = 0.0;
  }
