(* Breadth-First Search (paper Sec. II, Fig. 2).
   - serial: the paper's CSR BFS in minic, compiled by Phloem.
   - data-parallel: level-synchronous with sliced fringes, atomic relaxations
     and a compaction step (PBFS-flavored).
   - manual: the hand-optimized Pipette pipeline — chained nodes/edges RAs,
     a visit-neighbors thread that fetches old distances and forwards
     (ngh, old_dist) pairs with inline control-value checks, and an update
     thread that re-checks distances. *)

open Phloem_ir.Types
open Phloem_ir.Builder
open Workload

let serial_source =
  "#pragma phloem\n\
   void bfs(int n, int root, int *restrict nodes, int *restrict edges,\n\
   \         int *restrict dist, int *restrict cur_fringe, int *restrict next_fringe,\n\
   \         int *restrict out) {\n\
   int cur_size = 1;\n\
   int cur_dist = 0;\n\
   cur_fringe[0] = root;\n\
   dist[root] = 0;\n\
   while (cur_size > 0) {\n\
   int next_size = 0;\n\
   cur_dist = cur_dist + 1;\n\
   for (int i = 0; i < cur_size; i++) {\n\
   int v = cur_fringe[i];\n\
   int edge_start = nodes[v];\n\
   int edge_end = nodes[v + 1];\n\
   for (int e = edge_start; e < edge_end; e++) {\n\
   int ngh = edges[e];\n\
   int old_dist = dist[ngh];\n\
   if (cur_dist < old_dist) {\n\
   dist[ngh] = cur_dist;\n\
   next_fringe[next_size++] = ngh;\n\
   }\n\
   }\n\
   }\n\
   for (int i = 0; i < next_size; i++) { cur_fringe[i] = next_fringe[i]; }\n\
   cur_size = next_size;\n\
   }\n\
   out[0] = cur_dist;\n\
   }"

let base_arrays (g : Phloem_graph.Csr.t) ~root =
  let n = g.Phloem_graph.Csr.n in
  ignore root;
  let dist = Array.make n Phloem_graph.Algos.int_max in
  [
    ("nodes", vint g.Phloem_graph.Csr.offsets);
    ("edges", vint g.Phloem_graph.Csr.edges);
    ("dist", vint dist);
    ("cur_fringe", vint (Array.make n 0));
    ("next_fringe", vint (Array.make n 0));
    ("out", vint [| 0 |]);
  ]

let serial (g : Phloem_graph.Csr.t) ~root =
  let lw = Phloem_minic.Lower.of_source serial_source in
  Phloem_minic.Lower.to_serial_pipeline lw
    ~arrays:(base_arrays g ~root)
    ~scalars:[ ("n", Vint g.Phloem_graph.Csr.n); ("root", Vint root) ]

(* --- data-parallel --- *)

let data_parallel (g : Phloem_graph.Csr.t) ~root ~threads =
  let n = g.Phloem_graph.Csr.n in
  let thread t =
    let init =
      if t = 0 then
        [ store "shared" (int 0) (int 1); store "cur_fringe" (int 0) (v "root");
          store "dist" (v "root") (int 0) ]
      else []
    in
    let compact =
      if t = 0 then
        [
          "total" <-- int 0;
          for_ "tt" (int 0) (int threads)
            [
              "c" <-- load "counts" (v "tt");
              for_ "j" (int 0) (v "c")
                [
                  store "cur_fringe" (v "total")
                    (load "next_fringe" ((v "tt" *! v "n") +! v "j"));
                  "total" <-- (v "total" +! int 1);
                ];
            ];
          store "shared" (int 0) (v "total");
        ]
      else []
    in
    stage
      (Printf.sprintf "dp%d" t)
      (init
      @ [
          "cur_dist" <-- int 0;
          loop_forever
            ([
               barrier 201;
               "cur_size" <-- load "shared" (int 0);
               when_ (v "cur_size" ==! int 0) [ break_ ];
               "cur_dist" <-- (v "cur_dist" +! int 1);
               "lo" <-- (int t *! v "cur_size" /! int threads);
               "hi" <-- ((int t +! int 1) *! v "cur_size" /! int threads);
               "cnt" <-- int 0;
               for_ "i" (v "lo") (v "hi")
                 [
                   "vx" <-- load "cur_fringe" (v "i");
                   "es" <-- load "nodes" (v "vx");
                   "ee" <-- load "nodes" (v "vx" +! int 1);
                   for_ "e" (v "es") (v "ee")
                     [
                       "ngh" <-- load "edges" (v "e");
                       "od" <-- load "dist" (v "ngh");
                       when_ (v "cur_dist" <! v "od")
                         [
                           atomic_min "dist" (v "ngh") (v "cur_dist");
                           store "next_fringe" ((int t *! v "n") +! v "cnt") (v "ngh");
                           "cnt" <-- (v "cnt" +! int 1);
                         ];
                     ];
                 ];
               store "counts" (int t) (v "cnt");
               barrier 202;
             ]
            @ compact);
        ])
  in
  let n_arr = g.Phloem_graph.Csr.n in
  let dist = Array.make n_arr Phloem_graph.Algos.int_max in
  let p =
    pipeline "bfs_dp"
      ~arrays:
        [
          int_array "nodes" (n + 1);
          int_array "edges" (max g.Phloem_graph.Csr.m 1);
          int_array "dist" n;
          int_array "cur_fringe" n;
          int_array "next_fringe" (threads * n);
          int_array "counts" threads;
          int_array "shared" 1;
        ]
      ~params:[ ("n", Vint n); ("root", Vint root) ]
      (List.init threads thread)
  in
  ( p,
    [
      ("nodes", vint g.Phloem_graph.Csr.offsets);
      ("edges", vint g.Phloem_graph.Csr.edges);
      ("dist", vint dist);
    ] )

(* --- manual Pipette pipeline --- *)

let cv_end = 1

let manual (g : Phloem_graph.Csr.t) ~root =
  let n = g.Phloem_graph.Csr.n in
  let s0 =
    stage "process_fringe"
      [
        "cur_size" <-- int 1;
        store "cur_fringe" (int 0) (v "root");
        store "dist" (v "root") (int 0);
        while_ (v "cur_size" >! int 0)
          [
            for_ "i" (int 0) (v "cur_size")
              [
                "vx" <-- load "cur_fringe" (v "i");
                enq 0 (v "vx");
                enq 0 (v "vx" +! int 1);
              ];
            enq_ctrl 0 cv_end;
            "cur_size" <-- deq 5;
          ];
      ]
  in
  let s1 =
    stage "visit_neighbors"
      [
        "cur_size" <-- int 1;
        while_ (v "cur_size" >! int 0)
          [
            loop_forever
              [
                "x" <-- deq 2;
                if_ (is_control (v "x"))
                  [ enq_ctrl 3 cv_end; break_ ]
                  [
                    "od" <-- load "dist" (v "x");
                    enq 3 (v "x");
                    enq 3 (v "od");
                  ];
              ];
            "cur_size" <-- deq 6;
          ];
      ]
  in
  let s2 =
    stage "update"
      [
        "cur_size" <-- int 1;
        "cur_dist" <-- int 0;
        while_ (v "cur_size" >! int 0)
          [
            "next_size" <-- int 0;
            "cur_dist" <-- (v "cur_dist" +! int 1);
            loop_forever
              [
                "x" <-- deq 3;
                when_ (is_control (v "x")) [ break_ ];
                "oh" <-- deq 3;
                when_ (v "cur_dist" <! v "oh")
                  [
                    "od2" <-- load "dist" (v "x");
                    when_ (v "cur_dist" <! v "od2")
                      [
                        store "dist" (v "x") (v "cur_dist");
                        store "next_fringe" (v "next_size") (v "x");
                        "next_size" <-- (v "next_size" +! int 1);
                      ];
                  ];
              ];
            for_ "i" (int 0) (v "next_size")
              [ store "cur_fringe" (v "i") (load "next_fringe" (v "i")) ];
            "cur_size" <-- v "next_size";
            enq 5 (v "cur_size");
            enq 6 (v "cur_size");
          ];
        store "out" (int 0) (v "cur_dist");
      ]
  in
  let p =
    pipeline "bfs_manual"
      ~arrays:
        [
          int_array "nodes" (n + 1);
          int_array "edges" (max g.Phloem_graph.Csr.m 1);
          int_array "dist" n;
          int_array "cur_fringe" n;
          int_array "next_fringe" n;
          int_array "out" 1;
        ]
      ~params:[ ("root", Vint root) ]
      ~queues:[ queue 0; queue 1; queue 2; queue 3; queue 5; queue 6 ]
      ~ras:
        [
          ra ~id:0 ~in_q:0 ~out_q:1 ~array:"nodes" ~mode:Ra_indirect;
          ra ~id:1 ~in_q:1 ~out_q:2 ~array:"edges" ~mode:Ra_scan;
        ]
      [ s0; s1; s2 ]
  in
  let dist = Array.make n Phloem_graph.Algos.int_max in
  ( p,
    [
      ("nodes", vint g.Phloem_graph.Csr.offsets);
      ("edges", vint g.Phloem_graph.Csr.edges);
      ("dist", vint dist);
    ] )

let bind (g : Phloem_graph.Csr.t) : bound =
  let root = 0 in
  let reference = Phloem_graph.Algos.bfs g ~root in
  {
    b_name = "BFS";
    b_serial = serial g ~root;
    b_data_parallel = (fun ~threads -> data_parallel g ~root ~threads);
    b_manual = Some (manual g ~root);
    b_check_arrays = [ "dist" ];
    b_reference = [ ("dist", vint reference) ];
    b_float_tolerance = 0.0;
  }
