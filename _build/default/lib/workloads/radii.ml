(* Radii estimation: BFS from several sampled sources; radii.(v) is the
   maximum distance observed from any source, and the estimate is the
   overall maximum. The per-sample reset / search / fold phases are exactly
   the multi-nest structure Phloem separates with barriers. *)

open Phloem_ir.Types
open Phloem_ir.Builder
open Workload

let samples = 4
let seed = 1234

let serial_source =
  "#pragma phloem\n\
   void radii(int n, int samples, int *restrict roots, int *restrict nodes,\n\
   \           int *restrict edges, int *restrict dist, int *restrict radii,\n\
   \           int *restrict cur_fringe, int *restrict next_fringe, int *restrict out) {\n\
   int estimate = 0;\n\
   for (int s = 0; s < samples; s++) {\n\
   for (int i = 0; i < n; i++) { dist[i] = INT_MAX; }\n\
   int root = roots[s];\n\
   int cur_size = 1;\n\
   int cur_dist = 0;\n\
   cur_fringe[0] = root;\n\
   dist[root] = 0;\n\
   while (cur_size > 0) {\n\
   int next_size = 0;\n\
   cur_dist = cur_dist + 1;\n\
   for (int i = 0; i < cur_size; i++) {\n\
   int v = cur_fringe[i];\n\
   int edge_start = nodes[v];\n\
   int edge_end = nodes[v + 1];\n\
   for (int e = edge_start; e < edge_end; e++) {\n\
   int ngh = edges[e];\n\
   int old_dist = dist[ngh];\n\
   if (cur_dist < old_dist) {\n\
   dist[ngh] = cur_dist;\n\
   next_fringe[next_size++] = ngh;\n\
   }\n\
   }\n\
   }\n\
   for (int i = 0; i < next_size; i++) { cur_fringe[i] = next_fringe[i]; }\n\
   cur_size = next_size;\n\
   }\n\
   for (int i = 0; i < n; i++) {\n\
   int d = dist[i];\n\
   if (d < INT_MAX) {\n\
   if (d > radii[i]) { radii[i] = d; }\n\
   if (d > estimate) { estimate = d; }\n\
   }\n\
   }\n\
   }\n\
   out[0] = estimate;\n\
   }"

let roots (g : Phloem_graph.Csr.t) = Phloem_graph.Algos.sample_roots g ~samples ~seed

let base_arrays (g : Phloem_graph.Csr.t) =
  let n = g.Phloem_graph.Csr.n in
  [
    ("roots", vint (roots g));
    ("nodes", vint g.Phloem_graph.Csr.offsets);
    ("edges", vint g.Phloem_graph.Csr.edges);
    ("dist", vint (Array.make n 0));
    ("radii", vint (Array.make n 0));
    ("cur_fringe", vint (Array.make n 0));
    ("next_fringe", vint (Array.make n 0));
    ("out", vint [| 0 |]);
  ]

let scalars (g : Phloem_graph.Csr.t) =
  [ ("n", Vint g.Phloem_graph.Csr.n); ("samples", Vint samples) ]

let serial (g : Phloem_graph.Csr.t) =
  let lw = Phloem_minic.Lower.of_source serial_source in
  Phloem_minic.Lower.to_serial_pipeline lw ~arrays:(base_arrays g) ~scalars:(scalars g)

(* Data-parallel: parallel BFS relaxations per sample (as in BFS's DP), with
   the reset and fold loops range-partitioned. *)
let data_parallel (g : Phloem_graph.Csr.t) ~threads =
  let n = g.Phloem_graph.Csr.n in
  let thread t =
    let compact =
      if t = 0 then
        [
          "total" <-- int 0;
          for_ "tt" (int 0) (int threads)
            [
              "c" <-- load "counts" (v "tt");
              for_ "j" (int 0) (v "c")
                [
                  store "cur_fringe" (v "total")
                    (load "next_fringe" ((v "tt" *! v "n") +! v "j"));
                  "total" <-- (v "total" +! int 1);
                ];
            ];
          store "shared" (int 0) (v "total");
        ]
      else []
    in
    stage
      (Printf.sprintf "dp%d" t)
      [
        "ulo" <-- (int t *! v "n" /! int threads);
        "uhi" <-- ((int t +! int 1) *! v "n" /! int threads);
        for_ "s" (int 0) (v "samples")
          ([
             for_ "i" (v "ulo") (v "uhi") [ store "dist" (v "i") (int 0x3FFFFFFF) ];
             barrier 241;
           ]
          @ (if t = 0 then
               [
                 "root" <-- load "roots" (v "s");
                 store "cur_fringe" (int 0) (v "root");
                 store "dist" (v "root") (int 0);
                 store "shared" (int 0) (int 1);
               ]
             else [])
          @ [
              "cur_dist" <-- int 0;
              loop_forever
                ([
                   barrier 242;
                   "cur_size" <-- load "shared" (int 0);
                   when_ (v "cur_size" ==! int 0) [ break_ ];
                   "cur_dist" <-- (v "cur_dist" +! int 1);
                   "lo" <-- (int t *! v "cur_size" /! int threads);
                   "hi" <-- ((int t +! int 1) *! v "cur_size" /! int threads);
                   "cnt" <-- int 0;
                   for_ "i" (v "lo") (v "hi")
                     [
                       "vx" <-- load "cur_fringe" (v "i");
                       "es" <-- load "nodes" (v "vx");
                       "ee" <-- load "nodes" (v "vx" +! int 1);
                       for_ "e" (v "es") (v "ee")
                         [
                           "ngh" <-- load "edges" (v "e");
                           "od" <-- load "dist" (v "ngh");
                           when_ (v "cur_dist" <! v "od")
                             [
                               atomic_min "dist" (v "ngh") (v "cur_dist");
                               store "next_fringe" ((int t *! v "n") +! v "cnt") (v "ngh");
                               "cnt" <-- (v "cnt" +! int 1);
                             ];
                         ];
                     ];
                   store "counts" (int t) (v "cnt");
                   barrier 243;
                 ]
                @ compact);
              for_ "i" (v "ulo") (v "uhi")
                [
                  "d" <-- load "dist" (v "i");
                  when_
                    (v "d" <! int 0x3FFFFFFF &&! (v "d" >! load "radii" (v "i")))
                    [ store "radii" (v "i") (v "d") ];
                ];
              barrier 244;
            ]);
      ]
  in
  let p =
    pipeline "radii_dp"
      ~arrays:
        [
          int_array "roots" samples;
          int_array "nodes" (n + 1);
          int_array "edges" (max g.Phloem_graph.Csr.m 1);
          int_array "dist" n;
          int_array "radii" n;
          int_array "cur_fringe" n;
          int_array "next_fringe" (threads * n);
          int_array "counts" threads;
          int_array "shared" 1;
        ]
      ~params:(scalars g)
      (List.init threads thread)
  in
  ( p,
    List.filter
      (fun (name, _) -> name <> "out" && name <> "next_fringe")
      (base_arrays g) )

(* Manual pipeline: the hand-tuned version is a short 2-stage pipeline plus
   the chained RAs, run once per sample (paper Sec. VII-B notes the 2-stage
   organization is what the manual/replicated Radii uses). *)
let cv_end = 1

let manual (g : Phloem_graph.Csr.t) =
  let n = g.Phloem_graph.Csr.n in
  let s0 =
    stage "head"
      [
        for_ "s" (int 0) (v "samples")
          [
            "root" <-- load "roots" (v "s");
            store "cur_fringe" (int 0) (v "root");
            "cur_size" <-- int 1;
            while_ (v "cur_size" >! int 0)
              [
                for_ "i" (int 0) (v "cur_size")
                  [
                    "vx" <-- load "cur_fringe" (v "i");
                    enq 0 (v "vx");
                    enq 0 (v "vx" +! int 1);
                  ];
                enq_ctrl 0 cv_end;
                "cur_size" <-- deq 4;
              ];
            barrier 251;
          ];
      ]
  in
  let s1 =
    stage "update"
      ~handlers:[ handler ~queue:2 ~cv:"__c" [ exit_loops 1 ] ]
      [
        "estimate" <-- int 0;
        for_ "s" (int 0) (v "samples")
          [
            for_ "i" (int 0) (v "n") [ store "dist" (v "i") (int 0x3FFFFFFF) ];
            "root" <-- load "roots" (v "s");
            store "dist" (v "root") (int 0);
            "cur_size" <-- int 1;
            "cur_dist" <-- int 0;
            while_ (v "cur_size" >! int 0)
              [
                "next_size" <-- int 0;
                "cur_dist" <-- (v "cur_dist" +! int 1);
                loop_forever
                  [
                    "ngh" <-- deq 2;
                    "od" <-- load "dist" (v "ngh");
                    when_ (v "cur_dist" <! v "od")
                      [
                        store "dist" (v "ngh") (v "cur_dist");
                        store "next_fringe" (v "next_size") (v "ngh");
                        "next_size" <-- (v "next_size" +! int 1);
                      ];
                  ];
                for_ "i" (int 0) (v "next_size")
                  [ store "cur_fringe" (v "i") (load "next_fringe" (v "i")) ];
                "cur_size" <-- v "next_size";
                enq 4 (v "cur_size");
              ];
            for_ "i" (int 0) (v "n")
              [
                "d" <-- load "dist" (v "i");
                when_ (v "d" <! int 0x3FFFFFFF)
                  [
                    when_ (v "d" >! load "radii" (v "i")) [ store "radii" (v "i") (v "d") ];
                    when_ (v "d" >! v "estimate") [ "estimate" <-- v "d" ];
                  ];
              ];
            barrier 251;
          ];
        store "out" (int 0) (v "estimate");
      ]
  in
  let p =
    pipeline "radii_manual"
      ~arrays:
        [
          int_array "roots" samples;
          int_array "nodes" (n + 1);
          int_array "edges" (max g.Phloem_graph.Csr.m 1);
          int_array "dist" n;
          int_array "radii" n;
          int_array "cur_fringe" n;
          int_array "next_fringe" n;
          int_array "out" 1;
        ]
      ~params:(scalars g)
      ~queues:[ queue 0; queue 1; queue 2; queue 4 ]
      ~ras:
        [
          ra ~id:0 ~in_q:0 ~out_q:1 ~array:"nodes" ~mode:Ra_indirect;
          ra ~id:1 ~in_q:1 ~out_q:2 ~array:"edges" ~mode:Ra_scan;
        ]
      [ s0; s1 ]
  in
  (p, base_arrays g)

let bind (g : Phloem_graph.Csr.t) : bound =
  let reference, estimate = Phloem_graph.Algos.radii_from_roots g ~roots:(roots g) in
  {
    b_name = "Radii";
    b_serial = serial g;
    b_data_parallel = (fun ~threads -> data_parallel g ~threads);
    b_manual = Some (manual g);
    b_check_arrays = [ "radii" ];
    b_reference = [ ("radii", vint reference) ];
    b_float_tolerance = 0.0;
  }
  |> fun b ->
  ignore estimate;
  b
