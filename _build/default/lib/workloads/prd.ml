(* PageRank-Delta (Ligra-derived): per round, active vertices scatter
   delta/deg to their neighbors' sums (phase A); then every vertex applies
   the damped sum, re-activating itself if the change exceeds the threshold
   (phase B). The two phases touch ngh_sum from different pipeline stages,
   so Phloem separates them with barriers (paper Sec. IV-A, program phases). *)

open Phloem_ir.Types
open Phloem_ir.Builder
open Workload

let damping = 0.85
let eps = 0.01
let iters = 4

let serial_source =
  "#pragma phloem\n\
   void prd(int n, int iters, float damping, float eps,\n\
   \         int *restrict nodes, int *restrict edges,\n\
   \         float *restrict rank, float *restrict delta, float *restrict ngh_sum,\n\
   \         int *restrict cur_fringe, int *restrict next_fringe, int *restrict out) {\n\
   int cur_size = n;\n\
   for (int it = 0; it < iters; it++) {\n\
   for (int i = 0; i < cur_size; i++) {\n\
   int v = cur_fringe[i];\n\
   int edge_start = nodes[v];\n\
   int edge_end = nodes[v + 1];\n\
   int deg = edge_end - edge_start;\n\
   if (deg > 0) {\n\
   float contrib = delta[v] / (float) deg;\n\
   for (int e = edge_start; e < edge_end; e++) {\n\
   int ngh = edges[e];\n\
   ngh_sum[ngh] = ngh_sum[ngh] + contrib;\n\
   }\n\
   }\n\
   }\n\
   int next_size = 0;\n\
   for (int u = 0; u < n; u++) {\n\
   float d2 = damping * ngh_sum[u];\n\
   delta[u] = d2;\n\
   ngh_sum[u] = 0.0;\n\
   if (fabs(d2) > eps) {\n\
   rank[u] = rank[u] + d2;\n\
   next_fringe[next_size++] = u;\n\
   }\n\
   }\n\
   for (int i = 0; i < next_size; i++) { cur_fringe[i] = next_fringe[i]; }\n\
   cur_size = next_size;\n\
   }\n\
   out[0] = cur_size;\n\
   }"

let base_arrays (g : Phloem_graph.Csr.t) =
  let n = g.Phloem_graph.Csr.n in
  [
    ("nodes", vint g.Phloem_graph.Csr.offsets);
    ("edges", vint g.Phloem_graph.Csr.edges);
    ("rank", vfloat (Array.make n ((1.0 -. damping) /. float_of_int n)));
    ("delta", vfloat (Array.make n (1.0 /. float_of_int n)));
    ("ngh_sum", vfloat (Array.make n 0.0));
    ("cur_fringe", vint (Array.init n (fun i -> i)));
    ("next_fringe", vint (Array.make n 0));
    ("out", vint [| 0 |]);
  ]

let scalars (g : Phloem_graph.Csr.t) =
  [
    ("n", Vint g.Phloem_graph.Csr.n);
    ("iters", Vint iters);
    ("damping", Vfloat damping);
    ("eps", Vfloat eps);
  ]

let serial (g : Phloem_graph.Csr.t) =
  let lw = Phloem_minic.Lower.of_source serial_source in
  Phloem_minic.Lower.to_serial_pipeline lw ~arrays:(base_arrays g) ~scalars:(scalars g)

(* Data-parallel: phase A over fringe slices with atomic float adds; phase B
   over vertex ranges; leader compaction between rounds. *)
let data_parallel (g : Phloem_graph.Csr.t) ~threads =
  let n = g.Phloem_graph.Csr.n in
  let thread t =
    let init = if t = 0 then [ store "shared" (int 0) (v "n") ] else [] in
    let compact =
      if t = 0 then
        [
          "total" <-- int 0;
          for_ "tt" (int 0) (int threads)
            [
              "c" <-- load "counts" (v "tt");
              for_ "j" (int 0) (v "c")
                [
                  store "cur_fringe" (v "total")
                    (load "next_fringe" ((v "tt" *! v "n") +! v "j"));
                  "total" <-- (v "total" +! int 1);
                ];
            ];
          store "shared" (int 0) (v "total");
        ]
      else []
    in
    stage
      (Printf.sprintf "dp%d" t)
      (init
      @ [
          for_ "it" (int 0) (v "iters")
            ([
               barrier 221;
               "cur_size" <-- load "shared" (int 0);
               "lo" <-- (int t *! v "cur_size" /! int threads);
               "hi" <-- ((int t +! int 1) *! v "cur_size" /! int threads);
               for_ "i" (v "lo") (v "hi")
                 [
                   "vx" <-- load "cur_fringe" (v "i");
                   "es" <-- load "nodes" (v "vx");
                   "ee" <-- load "nodes" (v "vx" +! int 1);
                   "deg" <-- (v "ee" -! v "es");
                   when_ (v "deg" >! int 0)
                     [
                       "contrib" <-- (load "delta" (v "vx") /! to_float (v "deg"));
                       for_ "e" (v "es") (v "ee")
                         [ atomic_add "ngh_sum" (load "edges" (v "e")) (v "contrib") ];
                     ];
                 ];
               barrier 222;
               "ulo" <-- (int t *! v "n" /! int threads);
               "uhi" <-- ((int t +! int 1) *! v "n" /! int threads);
               "cnt" <-- int 0;
               for_ "u" (v "ulo") (v "uhi")
                 [
                   "d2" <-- (v "damping" *! load "ngh_sum" (v "u"));
                   store "delta" (v "u") (v "d2");
                   store "ngh_sum" (v "u") (flt 0.0);
                   when_ (fabs (v "d2") >! v "eps")
                     [
                       store "rank" (v "u") (load "rank" (v "u") +! v "d2");
                       store "next_fringe" ((int t *! v "n") +! v "cnt") (v "u");
                       "cnt" <-- (v "cnt" +! int 1);
                     ];
                 ];
               store "counts" (int t) (v "cnt");
               barrier 223;
             ]
            @ compact);
        ])
  in
  let p =
    pipeline "prd_dp"
      ~arrays:
        [
          int_array "nodes" (n + 1);
          int_array "edges" (max g.Phloem_graph.Csr.m 1);
          float_array "rank" n;
          float_array "delta" n;
          float_array "ngh_sum" n;
          int_array "cur_fringe" n;
          int_array "next_fringe" (threads * n);
          int_array "counts" threads;
          int_array "shared" 1;
        ]
      ~params:(scalars g)
      (List.init threads thread)
  in
  ( p,
    List.filter
      (fun (name, _) -> name <> "out" && name <> "next_fringe")
      (base_arrays g) )

(* Manual pipeline: 3 stages + scan RA. The middle stages are merged (the
   transformation the paper notes Phloem does not do automatically), giving
   the hand version its edge on PRD. *)
let cv_end = 1

let manual (g : Phloem_graph.Csr.t) =
  let n = g.Phloem_graph.Csr.n in
  let s1 =
    stage "scatter_apply"
      [
        "cur_size" <-- v "n";
        for_ "it" (int 0) (v "iters")
          [
            loop_forever
              [
                "x" <-- deq 1;
                if_ (is_control (v "x"))
                  [ break_ ]
                  [
                    "contrib" <-- deq 3;
                    store "ngh_sum" (v "x") (load "ngh_sum" (v "x") +! v "contrib");
                  ];
              ];
            barrier 231;
            (* apply phase, merged into this stage *)
            "next_size" <-- int 0;
            for_ "u" (int 0) (v "n")
              [
                "d2" <-- (v "damping" *! load "ngh_sum" (v "u"));
                store "delta" (v "u") (v "d2");
                store "ngh_sum" (v "u") (flt 0.0);
                when_ (fabs (v "d2") >! v "eps")
                  [
                    store "rank" (v "u") (load "rank" (v "u") +! v "d2");
                    store "next_fringe" (v "next_size") (v "u");
                    "next_size" <-- (v "next_size" +! int 1);
                  ];
              ];
            for_ "i" (int 0) (v "next_size")
              [ store "cur_fringe" (v "i") (load "next_fringe" (v "i")) ];
            barrier 232;
            enq 5 (v "next_size");
          ];
      ]
  in
  (* s0 must send one contrib per *neighbor* for the simple variant *)
  let s0 =
    stage "scatter_head"
      [
        "cur_size" <-- v "n";
        for_ "it" (int 0) (v "iters")
          [
            for_ "i" (int 0) (v "cur_size")
              [
                "vx" <-- load "cur_fringe" (v "i");
                "es" <-- load "nodes" (v "vx");
                "ee" <-- load "nodes" (v "vx" +! int 1);
                "deg" <-- (v "ee" -! v "es");
                when_ (v "deg" >! int 0)
                  [
                    "contrib" <-- (load "delta" (v "vx") /! to_float (v "deg"));
                    enq 0 (v "es");
                    enq 0 (v "ee");
                    for_ "e" (v "es") (v "ee") [ enq 3 (v "contrib") ];
                  ];
              ];
            enq_ctrl 0 cv_end;
            barrier 231;
            barrier 232;
            "cur_size" <-- deq 5;
          ];
      ]
  in
  let p =
    pipeline "prd_manual"
      ~arrays:
        [
          int_array "nodes" (n + 1);
          int_array "edges" (max g.Phloem_graph.Csr.m 1);
          float_array "rank" n;
          float_array "delta" n;
          float_array "ngh_sum" n;
          int_array "cur_fringe" n;
          int_array "next_fringe" n;
        ]
      ~params:(scalars g)
      ~queues:[ queue 0; queue 1; queue 3; queue 5 ]
      ~ras:[ ra ~id:0 ~in_q:0 ~out_q:1 ~array:"edges" ~mode:Ra_scan ]
      [ s0; s1 ]
  in
  ( p,
    List.filter
      (fun (name, _) -> name <> "out" && name <> "next_fringe")
      (base_arrays g) )

let bind (g : Phloem_graph.Csr.t) : bound =
  let reference = Phloem_graph.Algos.pagerank_delta g ~iters ~damping ~eps in
  {
    b_name = "PRD";
    b_serial = serial g;
    b_data_parallel = (fun ~threads -> data_parallel g ~threads);
    b_manual = Some (manual g);
    b_check_arrays = [ "rank" ];
    b_reference = [ ("rank", vfloat reference) ];
    b_float_tolerance = 1e-9;
  }
