lib/workloads/bfs.ml: Array List Phloem_graph Phloem_ir Phloem_minic Printf Workload
