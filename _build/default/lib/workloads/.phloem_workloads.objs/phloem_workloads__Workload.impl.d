lib/workloads/workload.ml: Array List Phloem_ir
