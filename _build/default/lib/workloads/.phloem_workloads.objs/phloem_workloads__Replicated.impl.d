lib/workloads/replicated.ml: Array List Phloem Phloem_graph Phloem_ir Prd Printf Radii Workload
