lib/workloads/taco_kernels.ml: Array List Phloem_ir Phloem_minic Phloem_sparse Phloem_taco Printf String Workload
