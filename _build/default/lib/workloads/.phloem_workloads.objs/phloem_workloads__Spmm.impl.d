lib/workloads/spmm.ml: Array List Phloem_ir Phloem_minic Phloem_sparse Printf Workload
