(* Connected Components: label-propagation searches until every vertex holds
   the minimum vertex id of its component (derived from Ligra's CC). The
   loop skeleton matches BFS with one extra indirection (the source label),
   so Phloem finds the same kind of pipeline. *)

open Phloem_ir.Types
open Phloem_ir.Builder
open Workload

let serial_source =
  "#pragma phloem\n\
   void cc(int n, int *restrict nodes, int *restrict edges, int *restrict labels,\n\
   \        int *restrict cur_fringe, int *restrict next_fringe, int *restrict out) {\n\
   int cur_size = n;\n\
   int rounds = 0;\n\
   while (cur_size > 0) {\n\
   int next_size = 0;\n\
   rounds = rounds + 1;\n\
   for (int i = 0; i < cur_size; i++) {\n\
   int v = cur_fringe[i];\n\
   int lv = labels[v];\n\
   int edge_start = nodes[v];\n\
   int edge_end = nodes[v + 1];\n\
   for (int e = edge_start; e < edge_end; e++) {\n\
   int ngh = edges[e];\n\
   int lngh = labels[ngh];\n\
   if (lv < lngh) {\n\
   labels[ngh] = lv;\n\
   next_fringe[next_size++] = ngh;\n\
   }\n\
   }\n\
   }\n\
   for (int i = 0; i < next_size; i++) { cur_fringe[i] = next_fringe[i]; }\n\
   cur_size = next_size;\n\
   }\n\
   out[0] = rounds;\n\
   }"

(* Fringes are sized n+m: a vertex re-enters the fringe once per improving
   update, which is bounded by the edge count per round. *)
let fringe_size (g : Phloem_graph.Csr.t) = g.Phloem_graph.Csr.n + g.Phloem_graph.Csr.m

let base_arrays (g : Phloem_graph.Csr.t) =
  let n = g.Phloem_graph.Csr.n in
  let fs = fringe_size g in
  [
    ("nodes", vint g.Phloem_graph.Csr.offsets);
    ("edges", vint g.Phloem_graph.Csr.edges);
    ("labels", vint (Array.init n (fun i -> i)));
    ("cur_fringe", vint (Array.init fs (fun i -> if i < n then i else 0)));
    ("next_fringe", vint (Array.make fs 0));
    ("out", vint [| 0 |]);
  ]

let serial (g : Phloem_graph.Csr.t) =
  let lw = Phloem_minic.Lower.of_source serial_source in
  Phloem_minic.Lower.to_serial_pipeline lw ~arrays:(base_arrays g)
    ~scalars:[ ("n", Vint g.Phloem_graph.Csr.n) ]

(* Data-parallel label propagation: sliced fringe, atomic_min on labels,
   per-thread output sections, leader compaction. Because a vertex can be
   appended by several threads in one round, next_fringe sections are sized
   n per thread and duplicates merely cause re-checks. *)
let data_parallel (g : Phloem_graph.Csr.t) ~threads =
  let n = g.Phloem_graph.Csr.n in
  let thread t =
    let init =
      if t = 0 then [ store "shared" (int 0) (v "n") ] else []
    in
    let compact =
      if t = 0 then
        [
          "total" <-- int 0;
          for_ "tt" (int 0) (int threads)
            [
              "c" <-- load "counts" (v "tt");
              for_ "j" (int 0) (v "c")
                [
                  store "cur_fringe" (v "total")
                    (load "next_fringe" ((v "tt" *! v "fs") +! v "j"));
                  "total" <-- (v "total" +! int 1);
                ];
            ];
          store "shared" (int 0) (v "total");
        ]
      else []
    in
    stage
      (Printf.sprintf "dp%d" t)
      (init
      @ [
          loop_forever
            ([
               barrier 211;
               "cur_size" <-- load "shared" (int 0);
               when_ (v "cur_size" ==! int 0) [ break_ ];
               "lo" <-- (int t *! v "cur_size" /! int threads);
               "hi" <-- ((int t +! int 1) *! v "cur_size" /! int threads);
               "cnt" <-- int 0;
               for_ "i" (v "lo") (v "hi")
                 [
                   "vx" <-- load "cur_fringe" (v "i");
                   "lv" <-- load "labels" (v "vx");
                   "es" <-- load "nodes" (v "vx");
                   "ee" <-- load "nodes" (v "vx" +! int 1);
                   for_ "e" (v "es") (v "ee")
                     [
                       "ngh" <-- load "edges" (v "e");
                       "lngh" <-- load "labels" (v "ngh");
                       when_ (v "lv" <! v "lngh")
                         [
                           atomic_min "labels" (v "ngh") (v "lv");
                           store "next_fringe" ((int t *! v "fs") +! v "cnt") (v "ngh");
                           "cnt" <-- (v "cnt" +! int 1);
                         ];
                     ];
                 ];
               store "counts" (int t) (v "cnt");
               barrier 212;
             ]
            @ compact);
        ])
  in
  let p =
    pipeline "cc_dp"
      ~arrays:
        [
          int_array "nodes" (n + 1);
          int_array "edges" (max g.Phloem_graph.Csr.m 1);
          int_array "labels" n;
          int_array "cur_fringe" (fringe_size g);
          int_array "next_fringe" (threads * fringe_size g);
          int_array "counts" threads;
          int_array "shared" 1;
        ]
      ~params:[ ("n", Vint n); ("fs", Vint (fringe_size g)) ]
      (List.init threads thread)
  in
  ( p,
    [
      ("nodes", vint g.Phloem_graph.Csr.offsets);
      ("edges", vint g.Phloem_graph.Csr.edges);
      ("labels", vint (Array.init n (fun i -> i)));
      ( "cur_fringe",
        vint (Array.init (fringe_size g) (fun i -> if i < n then i else 0)) );
    ] )

(* Manual pipeline: like BFS's, but the source label rides along with the
   neighbor through the queues (a 2-wide payload). *)
let cv_end = 1

let manual (g : Phloem_graph.Csr.t) =
  let n = g.Phloem_graph.Csr.n in
  (* The head stage sends the source label once per edge so the label and
     neighbor streams stay aligned through the scan RA (as the hand-written
     Pipette CC does); visit pre-filters with a possibly stale label and the
     update stage re-checks before writing. *)
  let s0 =
    stage "process_fringe"
      [
        "cur_size" <-- v "n";
        while_ (v "cur_size" >! int 0)
          [
            for_ "i" (int 0) (v "cur_size")
              [
                "vx" <-- load "cur_fringe" (v "i");
                "lv" <-- load "labels" (v "vx");
                "es" <-- load "nodes" (v "vx");
                "ee" <-- load "nodes" (v "vx" +! int 1);
                enq 1 (v "es");
                enq 1 (v "ee");
                for_ "e" (v "es") (v "ee") [ enq 4 (v "lv") ];
              ];
            enq_ctrl 1 cv_end;
            "cur_size" <-- deq 5;
          ];
      ]
  in
  let s1 =
    stage "visit_neighbors"
      [
        "cur_size" <-- v "n";
        while_ (v "cur_size" >! int 0)
          [
            loop_forever
              [
                "x" <-- deq 2;
                if_ (is_control (v "x"))
                  [ enq_ctrl 3 cv_end; break_ ]
                  [
                    "lngh" <-- load "labels" (v "x");
                    "lvv" <-- deq 4;
                    when_ (v "lvv" <! v "lngh")
                      [
                        enq 3 (v "x");
                        enq 3 (v "lvv");
                      ];
                  ];
              ];
            "cur_size" <-- deq 6;
          ];
      ]
  in
  let s2 =
    stage "update"
      ~handlers:[ handler ~queue:3 ~cv:"__c" [ exit_loops 1 ] ]
      [
        "cur_size" <-- v "n";
        while_ (v "cur_size" >! int 0)
          [
            "next_size" <-- int 0;
            loop_forever
              [
                "ngh" <-- deq 3;
                "lvv" <-- deq 3;
                "lngh" <-- load "labels" (v "ngh");
                when_ (v "lvv" <! v "lngh")
                  [
                    store "labels" (v "ngh") (v "lvv");
                    store "next_fringe" (v "next_size") (v "ngh");
                    "next_size" <-- (v "next_size" +! int 1);
                  ];
              ];
            for_ "i" (int 0) (v "next_size")
              [ store "cur_fringe" (v "i") (load "next_fringe" (v "i")) ];
            "cur_size" <-- v "next_size";
            enq 5 (v "cur_size");
            enq 6 (v "cur_size");
          ];
      ]
  in
  let p =
    pipeline "cc_manual"
      ~arrays:
        [
          int_array "nodes" (n + 1);
          int_array "edges" (max g.Phloem_graph.Csr.m 1);
          int_array "labels" n;
          int_array "cur_fringe" (fringe_size g);
          int_array "next_fringe" (fringe_size g);
        ]
      ~params:[ ("n", Vint n) ]
      ~queues:[ queue 1; queue 2; queue 3; queue 4; queue 5; queue 6 ]
      ~ras:[ ra ~id:0 ~in_q:1 ~out_q:2 ~array:"edges" ~mode:Ra_scan ]
      [ s0; s1; s2 ]
  in
  ( p,
    [
      ("nodes", vint g.Phloem_graph.Csr.offsets);
      ("edges", vint g.Phloem_graph.Csr.edges);
      ("labels", vint (Array.init n (fun i -> i)));
      ( "cur_fringe",
        vint (Array.init (fringe_size g) (fun i -> if i < n then i else 0)) );
    ] )

let bind (g : Phloem_graph.Csr.t) : bound =
  let reference = Phloem_graph.Algos.connected_components g in
  {
    b_name = "CC";
    b_serial = serial g;
    b_data_parallel = (fun ~threads -> data_parallel g ~threads);
    b_manual = Some (manual g);
    b_check_arrays = [ "labels" ];
    b_reference = [ ("labels", vint reference) ];
    b_float_tolerance = 0.0;
  }
