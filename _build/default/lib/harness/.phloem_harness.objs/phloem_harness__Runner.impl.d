lib/harness/runner.ml: Array List Option Phloem Phloem_ir Phloem_workloads Pipette Printexc Workload
