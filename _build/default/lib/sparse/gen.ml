(* Synthetic sparse matrices matching Table V's average nnz/row profiles.
   Values are quantized to multiples of 1/16 so float accumulations compare
   exactly between reference and simulated kernels when evaluation order is
   preserved. *)

open Phloem_util

let quantize x = float_of_int (int_of_float (x *. 16.0)) /. 16.0

(* Uniform random sparsity with a target average nnz per row. *)
let random ~rows ~cols ~nnz_per_row ~seed =
  let rng = Prng.create seed in
  let triples = ref [] in
  for r = 0 to rows - 1 do
    (* Vary row lengths to create the irregularity the paper relies on. *)
    let len = max 1 (Prng.int rng (2 * nnz_per_row)) in
    for _ = 1 to len do
      let c = Prng.int rng cols in
      triples := (r, c, quantize (Prng.float rng 2.0 -. 1.0)) :: !triples
    done
  done;
  Csr_matrix.of_triples ~rows ~cols !triples

(* Banded matrix (structural problems like pwtk/cant have clustered rows). *)
let banded ~n ~bandwidth ~nnz_per_row ~seed =
  let bandwidth = max 2 (min bandwidth (n / 2)) in
  let rng = Prng.create seed in
  let triples = ref [] in
  for r = 0 to n - 1 do
    let len = max 1 (nnz_per_row / 2 + Prng.int rng (max 1 nnz_per_row)) in
    for _ = 1 to len do
      let off = Prng.int rng (2 * bandwidth) - bandwidth in
      let c = max 0 (min (n - 1) (r + off)) in
      triples := (r, c, quantize (Prng.float rng 2.0 -. 1.0)) :: !triples
    done
  done;
  Csr_matrix.of_triples ~rows:n ~cols:n !triples

(* Power-law column popularity (graph-as-matrix inputs like amazon0312). *)
let power_law ~rows ~cols ~nnz_per_row ~seed =
  let rng = Prng.create seed in
  let triples = ref [] in
  for r = 0 to rows - 1 do
    let len = max 1 (Prng.int rng (2 * nnz_per_row)) in
    for _ = 1 to len do
      (* square the uniform draw to skew toward low column ids *)
      let u = Prng.float rng 1.0 in
      let c = int_of_float (u *. u *. float_of_int cols) in
      let c = min (cols - 1) c in
      triples := (r, c, quantize (Prng.float rng 2.0 -. 1.0)) :: !triples
    done
  done;
  Csr_matrix.of_triples ~rows ~cols !triples

let dense_vector ~n ~seed =
  let rng = Prng.create seed in
  Array.init n (fun _ -> quantize (Prng.float rng 2.0 -. 1.0))

let dense_matrix ~rows ~cols ~seed =
  let rng = Prng.create seed in
  Array.init rows (fun _ -> Array.init cols (fun _ -> quantize (Prng.float rng 2.0 -. 1.0)))
