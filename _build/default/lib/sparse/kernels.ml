(* Reference sparse kernels (pure OCaml ground truth), evaluated exactly as
   the simulated kernels do — same iteration order, so float results match
   bit-for-bit. *)

(* y = A x *)
let spmv (a : Csr_matrix.t) (x : float array) =
  let y = Array.make a.Csr_matrix.rows 0.0 in
  for r = 0 to a.Csr_matrix.rows - 1 do
    let acc = ref 0.0 in
    for e = a.Csr_matrix.row_ptr.(r) to a.Csr_matrix.row_ptr.(r + 1) - 1 do
      acc := !acc +. (a.Csr_matrix.vals.(e) *. x.(a.Csr_matrix.col_idx.(e)))
    done;
    y.(r) <- !acc
  done;
  y

(* y = b - A x *)
let residual (a : Csr_matrix.t) (x : float array) (b : float array) =
  let ax = spmv a x in
  Array.mapi (fun i bi -> bi -. ax.(i)) b

(* y = alpha * A^T x + beta * z, computed with A^T precomputed in CSR (the
   Taco-emitted kernel iterates the transposed matrix's rows). *)
let mtmul (at : Csr_matrix.t) (x : float array) (z : float array) ~alpha ~beta =
  let ax = spmv at x in
  Array.mapi (fun i zi -> (alpha *. ax.(i)) +. (beta *. zi)) z

(* Merge-intersection of two sorted index/value runs: the core of
   inner-product SpMM. Returns the dot product over matching indices. *)
let merge_intersect_dot ~idx1 ~val1 ~lo1 ~hi1 ~idx2 ~val2 ~lo2 ~hi2 =
  let acc = ref 0.0 in
  let i = ref lo1 and j = ref lo2 in
  while !i < hi1 && !j < hi2 do
    let c1 = idx1.(!i) and c2 = idx2.(!j) in
    if c1 = c2 then begin
      acc := !acc +. (val1.(!i) *. val2.(!j));
      incr i;
      incr j
    end
    else if c1 < c2 then incr i
    else incr j
  done;
  !acc

(* C = A * B with an inner-product (output-stationary) dataflow: element
   C(i,j) is the merge-intersection dot of A's row i with B^T's row j.
   Returns C as a dense row-major array (small test sizes only) plus the
   nnz count of nonzero outputs. *)
let spmm_inner (a : Csr_matrix.t) (bt : Csr_matrix.t) =
  let rows = a.Csr_matrix.rows and cols = bt.Csr_matrix.rows in
  let c = Array.make_matrix rows cols 0.0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      c.(i).(j) <-
        merge_intersect_dot ~idx1:a.Csr_matrix.col_idx ~val1:a.Csr_matrix.vals
          ~lo1:a.Csr_matrix.row_ptr.(i) ~hi1:a.Csr_matrix.row_ptr.(i + 1)
          ~idx2:bt.Csr_matrix.col_idx ~val2:bt.Csr_matrix.vals
          ~lo2:bt.Csr_matrix.row_ptr.(j) ~hi2:bt.Csr_matrix.row_ptr.(j + 1)
    done
  done;
  c

(* A = B o (C D): sampled dense-dense matrix multiplication. B sparse;
   C (rows x k) and D (k x cols) dense; the output has B's sparsity. *)
let sddmm (b : Csr_matrix.t) (cm : float array array) (d : float array array) =
  let k = Array.length cm.(0) in
  let out_vals = Array.make (max b.Csr_matrix.nnz 1) 0.0 in
  for r = 0 to b.Csr_matrix.rows - 1 do
    for e = b.Csr_matrix.row_ptr.(r) to b.Csr_matrix.row_ptr.(r + 1) - 1 do
      let c = b.Csr_matrix.col_idx.(e) in
      let acc = ref 0.0 in
      for kk = 0 to k - 1 do
        acc := !acc +. (cm.(r).(kk) *. d.(kk).(c))
      done;
      out_vals.(e) <- b.Csr_matrix.vals.(e) *. !acc
    done
  done;
  out_vals
