lib/sparse/kernels.mli: Csr_matrix
