lib/sparse/gen.ml: Array Csr_matrix Phloem_util Prng
