lib/sparse/kernels.ml: Array Csr_matrix
