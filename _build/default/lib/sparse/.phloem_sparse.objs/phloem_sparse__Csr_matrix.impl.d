lib/sparse/csr_matrix.ml: Array Hashtbl List
