lib/sparse/csr_matrix.mli:
