lib/sparse/inputs.ml: Csr_matrix Gen Lazy List Phloem_util Printf
