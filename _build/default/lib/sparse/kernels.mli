(** Reference sparse kernels (ground truth for the simulated versions).
    All iterate in the same order as the generated/simulated code, so float
    results match bit-for-bit. *)

val spmv : Csr_matrix.t -> float array -> float array
(** [spmv a x] is [y = A x]. *)

val residual : Csr_matrix.t -> float array -> float array -> float array
(** [residual a x b] is [y = b - A x]. *)

val mtmul :
  Csr_matrix.t -> float array -> float array -> alpha:float -> beta:float -> float array
(** [mtmul at x z ~alpha ~beta] is [y = alpha * A^T x + beta * z], with the
    transpose already materialized in [at] (as the Taco flow does). *)

val merge_intersect_dot :
  idx1:int array ->
  val1:float array ->
  lo1:int ->
  hi1:int ->
  idx2:int array ->
  val2:float array ->
  lo2:int ->
  hi2:int ->
  float
(** Dot product of two sorted sparse runs over their matching indices — the
    core of inner-product SpMM (and the site of the paper's negative
    result for automatic decoupling). *)

val spmm_inner : Csr_matrix.t -> Csr_matrix.t -> float array array
(** [spmm_inner a bt] computes [C = A * B] with an output-stationary
    dataflow, [bt] being [B^T] in CSR; returns C dense (test sizes only). *)

val sddmm : Csr_matrix.t -> float array array -> float array array -> float array
(** [sddmm b c d] evaluates [A = B ∘ (C D)]; returns the values array of A
    over B's sparsity pattern. *)
