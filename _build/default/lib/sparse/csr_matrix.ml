(* Compressed Sparse Row matrices for the sparse linear algebra benchmarks
   (SpMM, SpMV, SDDMM, MTMul, Residual). Column indices are sorted within
   each row, which the merge-intersection in SpMM relies on. *)

type t = {
  rows : int;
  cols : int;
  nnz : int;
  row_ptr : int array; (* length rows+1 *)
  col_idx : int array; (* length nnz, sorted within each row *)
  vals : float array; (* length nnz *)
}

exception Malformed of string

let check m =
  if Array.length m.row_ptr <> m.rows + 1 then raise (Malformed "row_ptr length");
  if m.row_ptr.(0) <> 0 || m.row_ptr.(m.rows) <> m.nnz then raise (Malformed "row_ptr ends");
  for r = 0 to m.rows - 1 do
    if m.row_ptr.(r) > m.row_ptr.(r + 1) then raise (Malformed "row_ptr not monotone");
    for e = m.row_ptr.(r) to m.row_ptr.(r + 1) - 2 do
      if m.col_idx.(e) >= m.col_idx.(e + 1) then
        raise (Malformed "column indices not strictly sorted within row")
    done
  done;
  Array.iter
    (fun c -> if c < 0 || c >= m.cols then raise (Malformed "column out of range"))
    m.col_idx

let nnz_row m r = m.row_ptr.(r + 1) - m.row_ptr.(r)
let avg_nnz_row m = if m.rows = 0 then 0.0 else float_of_int m.nnz /. float_of_int m.rows

(* Build from (row, col, value) triples; duplicates collapse by summation. *)
let of_triples ~rows ~cols triples =
  let tbl = Hashtbl.create (List.length triples) in
  List.iter
    (fun (r, c, v) ->
      if r < 0 || r >= rows || c < 0 || c >= cols then raise (Malformed "triple out of range");
      let key = (r, c) in
      let cur = try Hashtbl.find tbl key with Not_found -> 0.0 in
      Hashtbl.replace tbl key (cur +. v))
    triples;
  let per_row = Array.make rows [] in
  Hashtbl.iter (fun (r, c) v -> per_row.(r) <- (c, v) :: per_row.(r)) tbl;
  let row_ptr = Array.make (rows + 1) 0 in
  for r = 0 to rows - 1 do
    per_row.(r) <- List.sort compare per_row.(r);
    row_ptr.(r + 1) <- row_ptr.(r) + List.length per_row.(r)
  done;
  let nnz = row_ptr.(rows) in
  let col_idx = Array.make (max nnz 1) 0 in
  let vals = Array.make (max nnz 1) 0.0 in
  for r = 0 to rows - 1 do
    List.iteri
      (fun i (c, v) ->
        col_idx.(row_ptr.(r) + i) <- c;
        vals.(row_ptr.(r) + i) <- v)
      per_row.(r)
  done;
  let m =
    {
      rows;
      cols;
      nnz;
      row_ptr;
      col_idx = (if nnz = 0 then [||] else col_idx);
      vals = (if nnz = 0 then [||] else vals);
    }
  in
  check m;
  m

(* Transpose (used to express the inner-product SpMM B^T and MTMul). *)
let transpose m =
  let triples = ref [] in
  for r = 0 to m.rows - 1 do
    for e = m.row_ptr.(r) to m.row_ptr.(r + 1) - 1 do
      triples := (m.col_idx.(e), r, m.vals.(e)) :: !triples
    done
  done;
  of_triples ~rows:m.cols ~cols:m.rows !triples
