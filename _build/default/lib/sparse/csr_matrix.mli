(** Compressed Sparse Row matrices for the sparse linear algebra
    benchmarks. Column indices are strictly sorted within each row — the
    SpMM merge-intersection depends on it. *)

type t = {
  rows : int;
  cols : int;
  nnz : int;
  row_ptr : int array;  (** length rows+1 *)
  col_idx : int array;  (** length nnz *)
  vals : float array;  (** length nnz *)
}

exception Malformed of string

val check : t -> unit
(** @raise Malformed on inconsistent structure. *)

val nnz_row : t -> int -> int
val avg_nnz_row : t -> float

val of_triples : rows:int -> cols:int -> (int * int * float) list -> t
(** Duplicate coordinates collapse by summation.
    @raise Malformed on out-of-range coordinates. *)

val transpose : t -> t
