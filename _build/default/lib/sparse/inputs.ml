(* Table V: input matrices. Synthetic counterparts with matching average
   nnz/row, scaled down for simulation. *)

type input = {
  name : string;
  domain : string;
  kind : [ `Training | `Test ];
  group : [ `Spmm | `Taco ];
  substitute : string;
  matrix : Csr_matrix.t Lazy.t;
}

let mk name domain kind group substitute gen =
  { name; domain; kind; group; substitute; matrix = Lazy.from_fun gen }

let sc scale base = max 16 (int_of_float (float_of_int base *. scale))

let all ?(scale = 1.0) () =
  let n = sc scale in
  [
    (* SpMM training *)
    mk "email-Enron" "Training graph as matrix 1" `Training `Spmm "power-law, ~10 nnz/row"
      (fun () -> Gen.power_law ~rows:(n 600) ~cols:(n 600) ~nnz_per_row:10 ~seed:201);
    mk "wiki-Vote" "Training graph as matrix 2" `Training `Spmm "power-law, ~12 nnz/row"
      (fun () -> Gen.power_law ~rows:(n 400) ~cols:(n 400) ~nnz_per_row:12 ~seed:202);
    (* SpMM test *)
    mk "p2p-Gnutella31" "File sharing" `Test `Spmm "uniform, ~2.4 nnz/row"
      (fun () -> Gen.random ~rows:(n 1200) ~cols:(n 1200) ~nnz_per_row:2 ~seed:203);
    mk "amazon0312" "Graph as matrix" `Test `Spmm "power-law, ~8 nnz/row"
      (fun () -> Gen.power_law ~rows:(n 1600) ~cols:(n 1600) ~nnz_per_row:8 ~seed:204);
    mk "cage12" "Gel electrophoresis" `Test `Spmm "banded, ~15.6 nnz/row"
      (fun () -> Gen.banded ~n:(n 1000) ~bandwidth:200 ~nnz_per_row:15 ~seed:205);
    mk "2cubes_sphere" "Electromagnetics" `Test `Spmm "banded, ~16.2 nnz/row"
      (fun () -> Gen.banded ~n:(n 900) ~bandwidth:300 ~nnz_per_row:16 ~seed:206);
    mk "rma10" "Fluid dynamics" `Test `Spmm "banded, ~49.7 nnz/row"
      (fun () -> Gen.banded ~n:(n 500) ~bandwidth:150 ~nnz_per_row:49 ~seed:207);
    (* Taco test (MTMul, Residual, SpMV, SDDMM) *)
    mk "scircuit" "Circuit simulation" `Test `Taco "uniform, ~5.6 nnz/row"
      (fun () -> Gen.random ~rows:(n 1700) ~cols:(n 1700) ~nnz_per_row:5 ~seed:208);
    mk "mac_econ_fwd500" "Economics" `Test `Taco "uniform, ~6.2 nnz/row"
      (fun () -> Gen.random ~rows:(n 2000) ~cols:(n 2000) ~nnz_per_row:6 ~seed:209);
    mk "cop20k_A" "Particle physics" `Test `Taco "banded, ~21.7 nnz/row"
      (fun () -> Gen.banded ~n:(n 1200) ~bandwidth:400 ~nnz_per_row:21 ~seed:210);
    mk "pwtk" "Structural" `Test `Taco "banded, ~52.9 nnz/row"
      (fun () -> Gen.banded ~n:(n 1100) ~bandwidth:120 ~nnz_per_row:52 ~seed:211);
    mk "cant" "Cantilever" `Test `Taco "banded, ~64.2 nnz/row"
      (fun () -> Gen.banded ~n:(n 600) ~bandwidth:100 ~nnz_per_row:64 ~seed:212);
  ]

let spmm_training ?scale () =
  List.filter (fun i -> i.kind = `Training && i.group = `Spmm) (all ?scale ())

let spmm_test ?scale () =
  List.filter (fun i -> i.kind = `Test && i.group = `Spmm) (all ?scale ())

let taco_test ?scale () =
  List.filter (fun i -> i.kind = `Test && i.group = `Taco) (all ?scale ())

let find ?scale name =
  match List.find_opt (fun i -> i.name = name) (all ?scale ()) with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "unknown matrix input %s" name)

let table5 ?scale () =
  let t =
    Phloem_util.Table.create
      [ "Domain"; "Matrix"; "Size (n x n)"; "Avg nnz/row"; "Substitute" ]
  in
  List.iter
    (fun i ->
      let m = Lazy.force i.matrix in
      Phloem_util.Table.add_row t
        [
          i.domain;
          i.name;
          string_of_int m.Csr_matrix.rows;
          Phloem_util.Table.fmt_float ~decimals:1 (Csr_matrix.avg_nnz_row m);
          i.substitute;
        ])
    (all ?scale ());
  Phloem_util.Table.render t
