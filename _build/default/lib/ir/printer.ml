(* Human-readable rendering of IR pipelines, in a C-like surface syntax close
   to the paper's Fig. 5 listings. Used by the phloemc CLI, tests, and
   examples to show what each pass did. *)

open Types

let rec expr_to_string e =
  match e with
  | Const v -> value_to_string v
  | Var x -> x
  | Binop ((Min | Max) as op, a, b) ->
    Printf.sprintf "%s(%s, %s)" (binop_to_string op) (expr_to_string a)
      (expr_to_string b)
  | Binop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_to_string a) (binop_to_string op)
      (expr_to_string b)
  | Unop (op, a) -> Printf.sprintf "%s(%s)" (unop_to_string op) (expr_to_string a)
  | Load (a, i) -> Printf.sprintf "%s[%s]" a (expr_to_string i)
  | Deq q -> Printf.sprintf "deq(q%d)" q
  | Is_control e -> Printf.sprintf "is_control(%s)" (expr_to_string e)
  | Ctrl_payload e -> Printf.sprintf "ctrl_payload(%s)" (expr_to_string e)
  | Call (f, args) ->
    Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr_to_string args))

let rec stmt_lines indent s =
  let pad = String.make indent ' ' in
  match s with
  | Assign (x, e) -> [ Printf.sprintf "%s%s = %s;" pad x (expr_to_string e) ]
  | Store (a, i, v) ->
    [ Printf.sprintf "%s%s[%s] = %s;" pad a (expr_to_string i) (expr_to_string v) ]
  | Atomic_min (a, i, v) ->
    [ Printf.sprintf "%satomic_min(%s[%s], %s);" pad a (expr_to_string i)
        (expr_to_string v) ]
  | Atomic_add (a, i, v) ->
    [ Printf.sprintf "%satomic_add(%s[%s], %s);" pad a (expr_to_string i)
        (expr_to_string v) ]
  | Prefetch (a, i) -> [ Printf.sprintf "%sprefetch(%s[%s]);" pad a (expr_to_string i) ]
  | Enq (q, e) -> [ Printf.sprintf "%senq(q%d, %s);" pad q (expr_to_string e) ]
  | Enq_ctrl (q, cv) -> [ Printf.sprintf "%senq_ctrl(q%d, %d);" pad q cv ]
  | Enq_indexed (qs, sel, v) ->
    let ids = Array.to_list qs |> List.map string_of_int |> String.concat "," in
    [ Printf.sprintf "%senq(q{%s}[%s], %s);" pad ids (expr_to_string sel)
        (expr_to_string v) ]
  | If (_, c, t, []) ->
    (Printf.sprintf "%sif (%s) {" pad (expr_to_string c))
    :: block_lines (indent + 2) t
    @ [ pad ^ "}" ]
  | If (_, c, t, f) ->
    (Printf.sprintf "%sif (%s) {" pad (expr_to_string c))
    :: block_lines (indent + 2) t
    @ [ pad ^ "} else {" ]
    @ block_lines (indent + 2) f
    @ [ pad ^ "}" ]
  | While (_, c, b) ->
    (Printf.sprintf "%swhile (%s) {" pad (expr_to_string c))
    :: block_lines (indent + 2) b
    @ [ pad ^ "}" ]
  | For (_, v, lo, hi, b) ->
    (Printf.sprintf "%sfor (%s = %s; %s < %s; %s++) {" pad v (expr_to_string lo) v
       (expr_to_string hi) v)
    :: block_lines (indent + 2) b
    @ [ pad ^ "}" ]
  | Break -> [ pad ^ "break;" ]
  | Exit_loops n -> [ Printf.sprintf "%sexit_loops(%d);" pad n ]
  | Barrier id -> [ Printf.sprintf "%sbarrier(%d);" pad id ]
  | Seq_marker m -> [ Printf.sprintf "%s/* %s */" pad m ]

and block_lines indent stmts = List.concat_map (stmt_lines indent) stmts

let stage_to_string st =
  let header = Printf.sprintf "stage %s {" st.s_name in
  let handlers =
    List.concat_map
      (fun h ->
        Printf.sprintf "  on_control(q%d, %s) {" h.h_queue h.h_cv_var
        :: block_lines 4 h.h_body
        @ [ "  }" ])
      st.s_handlers
  in
  String.concat "\n" ((header :: handlers) @ block_lines 2 st.s_body @ [ "}" ])

let pipeline_to_string p =
  let arrays =
    List.map
      (fun a ->
        Printf.sprintf "array %s : %s[%d]" a.a_name
          (match a.a_ty with Ety_int -> "int" | Ety_float -> "float")
          a.a_len)
      p.p_arrays
  in
  let queues =
    List.map (fun q -> Printf.sprintf "queue q%d (cap %d)" q.q_id q.q_capacity) p.p_queues
  in
  let ras =
    List.map
      (fun r ->
        Printf.sprintf "ra%d : q%d -> %s[%s] -> q%d" r.ra_id r.ra_in r.ra_array
          (match r.ra_mode with Ra_indirect -> "indirect" | Ra_scan -> "scan")
          r.ra_out)
      p.p_ras
  in
  let params =
    List.map (fun (x, v) -> Printf.sprintf "param %s = %s" x (value_to_string v)) p.p_params
  in
  String.concat "\n"
    ((Printf.sprintf "pipeline %s" p.p_name :: arrays)
    @ queues @ ras @ params
    @ List.map stage_to_string p.p_stages)
