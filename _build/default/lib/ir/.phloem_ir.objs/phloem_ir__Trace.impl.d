lib/ir/trace.ml: Array Phloem_util Vec
