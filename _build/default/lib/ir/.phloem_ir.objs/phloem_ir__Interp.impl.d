lib/ir/interp.ml: Array Effect Fun Hashtbl List Printf Queue String Trace Types
