lib/ir/validate.ml: Array Hashtbl List Printf String Types
