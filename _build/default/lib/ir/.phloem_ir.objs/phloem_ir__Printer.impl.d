lib/ir/printer.ml: Array List Printf String Types
