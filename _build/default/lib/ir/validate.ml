(* Static well-formedness checks for pipelines. Run before interpreting or
   compiling: catches malformed queue wiring and scoping mistakes early, with
   messages that name the offending stage. *)

open Types

exception Invalid of string

let fail fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

type queue_use = { mutable producers : string list; mutable consumers : string list }

let rec scan_expr ~stage ~arrays ~use_queue ~in_handler:_ e =
  match e with
  | Const _ | Var _ -> ()
  | Binop (_, a, b) ->
    scan_expr ~stage ~arrays ~use_queue ~in_handler:false a;
    scan_expr ~stage ~arrays ~use_queue ~in_handler:false b
  | Unop (_, a) | Is_control a | Ctrl_payload a ->
    scan_expr ~stage ~arrays ~use_queue ~in_handler:false a
  | Load (arr, i) ->
    if not (List.mem arr arrays) then fail "stage %s: load from undeclared array %s" stage arr;
    scan_expr ~stage ~arrays ~use_queue ~in_handler:false i
  | Deq q -> use_queue `Consume q
  | Call (_, args) ->
    List.iter (scan_expr ~stage ~arrays ~use_queue ~in_handler:false) args

let rec scan_stmt ~stage ~arrays ~use_queue ~loop_depth s =
  let scan_e = scan_expr ~stage ~arrays ~use_queue ~in_handler:false in
  match s with
  | Assign (_, e) -> scan_e e
  | Store (arr, i, e) | Atomic_min (arr, i, e) | Atomic_add (arr, i, e) ->
    if not (List.mem arr arrays) then fail "stage %s: store to undeclared array %s" stage arr;
    scan_e i;
    scan_e e
  | Prefetch (arr, i) ->
    if not (List.mem arr arrays) then fail "stage %s: prefetch of undeclared array %s" stage arr;
    scan_e i
  | Enq (q, e) ->
    use_queue `Produce q;
    scan_e e
  | Enq_ctrl (q, _) -> use_queue `Produce q
  | Enq_indexed (qs, sel, e) ->
    Array.iter (use_queue `Produce) qs;
    scan_e sel;
    scan_e e
  | If (_, c, t, f) ->
    scan_e c;
    List.iter (scan_stmt ~stage ~arrays ~use_queue ~loop_depth) t;
    List.iter (scan_stmt ~stage ~arrays ~use_queue ~loop_depth) f
  | While (_, c, body) ->
    scan_e c;
    List.iter (scan_stmt ~stage ~arrays ~use_queue ~loop_depth:(loop_depth + 1)) body
  | For (_, _, lo, hi, body) ->
    scan_e lo;
    scan_e hi;
    List.iter (scan_stmt ~stage ~arrays ~use_queue ~loop_depth:(loop_depth + 1)) body
  | Break -> if loop_depth = 0 then fail "stage %s: break outside of a loop" stage
  | Exit_loops _ | Barrier _ | Seq_marker _ -> ()

(* Raises [Invalid] on:
   - queue references to undeclared queues, arrays to undeclared arrays
   - queues with more than one consumer (FIFO matching requires one reader)
   - handlers installed on queues the stage never dequeues
   - break outside loops
   - RAs whose in/out queues coincide *)
let check (p : pipeline) =
  let declared = List.map (fun q -> q.q_id) p.p_queues in
  let arrays = List.map (fun a -> a.a_name) p.p_arrays in
  let uses = Hashtbl.create 16 in
  let get_use q =
    match Hashtbl.find_opt uses q with
    | Some u -> u
    | None ->
      let u = { producers = []; consumers = [] } in
      Hashtbl.replace uses q u;
      u
  in
  let scan_unit name stmts =
    let use_queue kind q =
      if not (List.mem q declared) then fail "%s: undeclared queue q%d" name q;
      let u = get_use q in
      match kind with
      | `Produce -> if not (List.mem name u.producers) then u.producers <- name :: u.producers
      | `Consume -> if not (List.mem name u.consumers) then u.consumers <- name :: u.consumers
    in
    List.iter (scan_stmt ~stage:name ~arrays ~use_queue ~loop_depth:0) stmts
  in
  List.iter
    (fun stg ->
      scan_unit stg.s_name stg.s_body;
      List.iter
        (fun h ->
          if not (List.mem h.h_queue declared) then
            fail "stage %s: handler on undeclared queue q%d" stg.s_name h.h_queue;
          (* Handler bodies run on the consumer thread; loop_depth 1 because
             they fire inside the stage's dequeue loops. *)
          let use_queue kind q =
            if not (List.mem q declared) then fail "%s handler: undeclared queue q%d" stg.s_name q;
            let u = get_use q in
            match kind with
            | `Produce ->
              if not (List.mem stg.s_name u.producers) then u.producers <- stg.s_name :: u.producers
            | `Consume ->
              if not (List.mem stg.s_name u.consumers) then u.consumers <- stg.s_name :: u.consumers
          in
          List.iter (scan_stmt ~stage:stg.s_name ~arrays ~use_queue ~loop_depth:1) h.h_body)
        stg.s_handlers)
    p.p_stages;
  List.iter
    (fun ra ->
      if ra.ra_in = ra.ra_out then fail "ra%d: input and output queue coincide" ra.ra_id;
      if not (List.mem ra.ra_in declared) then fail "ra%d: undeclared input queue" ra.ra_id;
      if not (List.mem ra.ra_out declared) then fail "ra%d: undeclared output queue" ra.ra_id;
      if not (List.mem ra.ra_array arrays) then
        fail "ra%d: undeclared array %s" ra.ra_id ra.ra_array;
      let name = Printf.sprintf "ra%d" ra.ra_id in
      let uin = get_use ra.ra_in in
      uin.consumers <- name :: uin.consumers;
      let uout = get_use ra.ra_out in
      uout.producers <- name :: uout.producers)
    p.p_ras;
  Hashtbl.iter
    (fun q u ->
      match u.consumers with
      | [] | [ _ ] -> ()
      | cs -> fail "queue q%d has multiple consumers: %s" q (String.concat ", " cs))
    uses;
  (* Handlers must guard queues their own stage consumes. *)
  List.iter
    (fun stg ->
      List.iter
        (fun h ->
          let u = get_use h.h_queue in
          if not (List.mem stg.s_name u.consumers) then
            fail "stage %s: handler on q%d, which the stage never dequeues"
              stg.s_name h.h_queue)
        stg.s_handlers)
    p.p_stages
