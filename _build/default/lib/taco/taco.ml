(* taco_lite: a miniature Tensor Algebra Compiler in the spirit of Taco
   (Kjolstad et al., OOPSLA'17) as the paper uses it (Sec. IV-D): it accepts
   a tensor index-notation expression, plus per-tensor format annotations,
   and emits serial minic code that Phloem then pipelines.

   Supported class: single-statement assignments whose right-hand side is a
   sum of terms, each term a product of tensor accesses/scalars, with at
   most one sparse (CSR) factor per term and at most one contraction index.
   This covers the paper's four Taco benchmarks:
     SpMV     y(i) = A(i,j) * x(j)
     Residual y(i) = b(i) - A(i,j) * x(j)
     MTMul    y(i) = alpha * A(j,i) * x(j) + beta * z(i)   (transposed A)
     SDDMM    A(i,j) = B(i,j) * C(i,k) * D(k,j)
*)

type format =
  | Csr (* sparse 2-D, row-major compressed *)
  | Dense_vector
  | Dense_matrix of int * int (* rows, cols; flattened row-major *)
  | Scalar

type access = { tensor : string; indices : string list }

type factor =
  | Faccess of access
  | Fconst of float

type term = { sign : float; factors : factor list }

type assignment = { lhs : access; terms : term list }

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* --- parser for index notation --- *)

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' then incr i
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then begin
      let start = !i in
      while
        !i < n
        &&
        let c = src.[!i] in
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
      do
        incr i
      done;
      toks := `Ident (String.sub src start (!i - start)) :: !toks
    end
    else if (c >= '0' && c <= '9') || c = '.' then begin
      let start = !i in
      while
        !i < n
        &&
        let c = src.[!i] in
        (c >= '0' && c <= '9') || c = '.'
      do
        incr i
      done;
      toks := `Num (float_of_string (String.sub src start (!i - start))) :: !toks
    end
    else begin
      (match c with
      | '(' -> toks := `Lpar :: !toks
      | ')' -> toks := `Rpar :: !toks
      | ',' -> toks := `Comma :: !toks
      | '=' -> toks := `Eq :: !toks
      | '+' -> toks := `Plus :: !toks
      | '-' -> toks := `Minus :: !toks
      | '*' -> toks := `Star :: !toks
      | _ -> fail "unexpected character %c" c);
      incr i
    end
  done;
  List.rev !toks

let parse (src : string) : assignment =
  let toks = ref (tokenize src) in
  let peek () = match !toks with t :: _ -> Some t | [] -> None in
  let advance () = match !toks with _ :: rest -> toks := rest | [] -> () in
  let expect t =
    if peek () = Some t then advance () else fail "parse error in %s" src
  in
  let parse_access name =
    if peek () = Some `Lpar then begin
      advance ();
      let idxs = ref [] in
      let rec loop () =
        match peek () with
        | Some (`Ident i) ->
          advance ();
          idxs := i :: !idxs;
          if peek () = Some `Comma then begin
            advance ();
            loop ()
          end
        | _ -> fail "expected index variable"
      in
      loop ();
      expect `Rpar;
      { tensor = name; indices = List.rev !idxs }
    end
    else { tensor = name; indices = [] }
  in
  let parse_factor () =
    match peek () with
    | Some (`Ident name) ->
      advance ();
      Faccess (parse_access name)
    | Some (`Num x) ->
      advance ();
      Fconst x
    | _ -> fail "expected a factor"
  in
  let parse_term sign =
    let factors = ref [ parse_factor () ] in
    while peek () = Some `Star do
      advance ();
      factors := parse_factor () :: !factors
    done;
    { sign; factors = List.rev !factors }
  in
  let lhs =
    match peek () with
    | Some (`Ident name) ->
      advance ();
      parse_access name
    | _ -> fail "expected left-hand side"
  in
  expect `Eq;
  let terms = ref [] in
  let rec loop sign =
    terms := parse_term sign :: !terms;
    match peek () with
    | Some `Plus ->
      advance ();
      loop 1.0
    | Some `Minus ->
      advance ();
      loop (-1.0)
    | None -> ()
    | _ -> fail "trailing tokens"
  in
  let first_sign =
    if peek () = Some `Minus then begin
      advance ();
      -1.0
    end
    else 1.0
  in
  loop first_sign;
  { lhs; terms = List.rev !terms }

(* --- code generation --- *)

type plan = {
  pl_source : string; (* minic source with #pragma phloem *)
  pl_kernel : string; (* kernel function name *)
}

let find_sparse formats t =
  List.exists (fun f -> match f with Faccess a -> List.assoc a.tensor formats = Csr | Fconst _ -> false) t.factors

(* Emit the value expression of one factor at loop position, given:
   [row] the outer index var, [je] the sparse column variable (if any),
   [k] an inner dense contraction variable (if any). *)
let factor_code formats ~subst f =
  match f with
  | Fconst x -> Printf.sprintf "%g" x
  | Faccess a -> (
    match List.assoc a.tensor formats with
    | Scalar -> a.tensor
    | Dense_vector -> (
      match a.indices with
      | [ i ] -> Printf.sprintf "%s[%s]" a.tensor (subst i)
      | _ -> fail "vector %s must have one index" a.tensor)
    | Dense_matrix (_, cols) -> (
      match a.indices with
      | [ i; j ] ->
        Printf.sprintf "%s[%s * %d + %s]" a.tensor (subst i) cols (subst j)
      | _ -> fail "matrix %s must have two indices" a.tensor)
    | Csr -> fail "sparse factor %s handled separately" a.tensor)

(* Generate code for the supported class. *)
let codegen ?(kernel = "taco_kernel") (formats : (string * format) list)
    (asg : assignment) : plan =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  let lhs_fmt = List.assoc asg.lhs.tensor formats in
  (* declare parameters: for each tensor, its arrays *)
  let params = ref [] in
  let seen = ref [] in
  let declare name f =
    if not (List.mem name !seen) then begin
      seen := name :: !seen;
      match f with
      | Csr ->
        params :=
          !params
          @ [
              Printf.sprintf "int *restrict %s_rp" name;
              Printf.sprintf "int *restrict %s_col" name;
              Printf.sprintf "float *restrict %s_vals" name;
            ]
      | Dense_vector -> params := !params @ [ Printf.sprintf "float *restrict %s" name ]
      | Dense_matrix _ -> params := !params @ [ Printf.sprintf "float *restrict %s" name ]
      | Scalar -> params := !params @ [ Printf.sprintf "float %s" name ]
    end
  in
  (* the sparse output's pattern arrays come from the sampling factor, not
     as separate parameters; only its values array (name_out) is passed *)
  List.iter
    (fun (n, f) -> if not (lhs_fmt = Csr && n = asg.lhs.tensor) then declare n f)
    formats;
  out "#pragma phloem\nvoid %s(int n_rows, %s) {\n" kernel (String.concat ", " !params);
  (match (lhs_fmt, asg.lhs.indices) with
  | Dense_vector, [ row ] ->
    (* y(i) = sum of terms *)
    out "for (int %s = 0; %s < n_rows; %s++) {\n" row row row;
    out "float total = 0.0;\n";
    List.iter
      (fun t ->
        let sparse =
          List.find_map
            (fun f ->
              match f with
              | Faccess a when List.assoc a.tensor formats = Csr -> Some a
              | _ -> None)
            t.factors
        in
        let sgn_op = if t.sign < 0.0 then "-" else "+" in
        match sparse with
        | None ->
          (* pointwise term *)
          let subst i = if i = row then row else fail "free index %s" i in
          let code =
            List.map (factor_code formats ~subst) t.factors |> String.concat " * "
          in
          out "total = total %s %s;\n" sgn_op code
        | Some a ->
          (* contraction over the sparse factor's other index; iterate the
             sparse rows of the index that matches the output row. For
             A(i,j) with output i we scan row i; for A(j,i) (MTMul) the
             caller must pass A already transposed so the row index is
             first — taco_lite, like Taco, picks the traversal-friendly
             layout. *)
          let contraction =
            match a.indices with
            | [ r; c ] when r = row -> c
            | [ c; r ] when r = row -> c (* pre-transposed binding *)
            | _ -> fail "sparse access %s incompatible with output" a.tensor
          in
          out "float acc = 0.0;\n";
          out "int e_start = %s_rp[%s];\nint e_end = %s_rp[%s + 1];\n" a.tensor row
            a.tensor row;
          out "for (int e = e_start; e < e_end; e++) {\n";
          out "int %s = %s_col[e];\n" contraction a.tensor;
          let subst i = if i = row then row else i in
          let is_scalar f =
            match f with
            | Fconst _ -> true
            | Faccess b -> List.assoc b.tensor formats = Scalar
          in
          let others =
            List.filter_map
              (fun f ->
                match f with
                | Faccess b when b.tensor = a.tensor && b.indices = a.indices -> None
                | f when is_scalar f -> None
                | f -> Some (factor_code formats ~subst f))
              t.factors
          in
          let scalars =
            List.filter_map
              (fun f -> if is_scalar f then Some (factor_code formats ~subst f) else None)
              t.factors
          in
          let code = String.concat " * " ((a.tensor ^ "_vals[e]") :: others) in
          out "acc = acc + %s;\n}\n" code;
          let acc_expr = String.concat " * " (scalars @ [ "acc" ]) in
          out "total = total %s %s;\n" sgn_op acc_expr)
      asg.terms;
    out "%s[%s] = total;\n}\n" asg.lhs.tensor row
  | Csr, [ row; colv ] ->
    (* sampled output: iterate the lhs sparsity (SDDMM). Exactly one term,
       containing the lhs-sparsity factor B(i,j) and dense factors. *)
    (match asg.terms with
    | [ t ] ->
      let sampler =
        List.find_map
          (fun f ->
            match f with
            | Faccess a
              when List.assoc a.tensor formats = Csr && a.indices = [ row; colv ] ->
              Some a
            | _ -> None)
          t.factors
      in
      (match sampler with
      | None -> fail "sparse output needs a sampling sparse factor"
      | Some b ->
        (* find the dense contraction index *)
        let kvar =
          List.concat_map
            (fun f -> match f with Faccess a -> a.indices | Fconst _ -> [])
            t.factors
          |> List.filter (fun i -> i <> row && i <> colv)
          |> fun l -> match l with [] -> fail "sddmm needs a contraction" | k :: _ -> k
        in
        let kdim =
          List.find_map
            (fun f ->
              match f with
              | Faccess a when List.assoc a.tensor formats <> Csr -> (
                match (List.assoc a.tensor formats, a.indices) with
                | Dense_matrix (_, cols), [ _; j ] when j = kvar -> Some cols
                | _ -> None)
              | _ -> None)
            t.factors
        in
        let kdim = match kdim with Some k -> k | None -> fail "cannot size contraction" in
        out "for (int %s = 0; %s < n_rows; %s++) {\n" row row row;
        out "int e_start = %s_rp[%s];\nint e_end = %s_rp[%s + 1];\n" b.tensor row
          b.tensor row;
        out "for (int e = e_start; e < e_end; e++) {\n";
        out "int %s = %s_col[e];\n" colv b.tensor;
        out "float acc = 0.0;\n";
        out "for (int %s = 0; %s < %d; %s++) {\n" kvar kvar kdim kvar;
        let subst i = i in
        let others =
          List.filter_map
            (fun f ->
              match f with
              | Faccess a when a.tensor = b.tensor && a.indices = b.indices -> None
              | f -> Some (factor_code formats ~subst f))
            t.factors
        in
        out "acc = acc + %s;\n}\n" (String.concat " * " others);
        out "%s_out[e] = %s_vals[e] * acc;\n}\n}\n" asg.lhs.tensor b.tensor)
    | _ -> fail "sparse output supports a single term")
  | _ -> fail "unsupported output format");
  out "}\n";
  (* sparse outputs need the extra _out array parameter *)
  let src = Buffer.contents buf in
  let src =
    if lhs_fmt = Csr then
      (* add the output values parameter *)
      Str.global_replace
        (Str.regexp_string (Printf.sprintf "void %s(int n_rows, " kernel))
        (Printf.sprintf "void %s(int n_rows, float *restrict %s_out, " kernel
           asg.lhs.tensor)
        src
    else src
  in
  { pl_source = src; pl_kernel = kernel }

let compile ?kernel formats src = codegen ?kernel formats (parse src)
