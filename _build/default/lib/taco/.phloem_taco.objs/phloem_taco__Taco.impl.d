lib/taco/taco.ml: Buffer List Printf Str String
