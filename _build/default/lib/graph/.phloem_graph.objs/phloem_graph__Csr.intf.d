lib/graph/csr.mli:
