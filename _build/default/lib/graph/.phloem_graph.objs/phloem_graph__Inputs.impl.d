lib/graph/inputs.ml: Csr Gen Lazy List Phloem_util Printf
