lib/graph/algos.mli: Csr
