lib/graph/algos.ml: Array Csr Phloem_util Queue Stack
