lib/graph/csr.ml: Array Hashtbl List
