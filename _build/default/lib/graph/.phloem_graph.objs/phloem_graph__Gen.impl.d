lib/graph/gen.ml: Csr Phloem_util Prng
