(* Compressed Sparse Row graphs, the representation used throughout the
   paper (Sec. II). [offsets] has n+1 entries; the neighbors of vertex v are
   [edges.(offsets.(v)) .. edges.(offsets.(v+1) - 1)]. *)

type t = {
  n : int; (* vertices *)
  m : int; (* directed edges *)
  offsets : int array; (* length n+1 *)
  edges : int array; (* length m *)
}

exception Malformed of string

let check g =
  if Array.length g.offsets <> g.n + 1 then raise (Malformed "offsets length");
  if Array.length g.edges <> g.m then raise (Malformed "edges length");
  if g.offsets.(0) <> 0 then raise (Malformed "offsets.(0) <> 0");
  if g.offsets.(g.n) <> g.m then raise (Malformed "offsets.(n) <> m");
  for v = 0 to g.n - 1 do
    if g.offsets.(v) > g.offsets.(v + 1) then raise (Malformed "offsets not monotone")
  done;
  Array.iter
    (fun u -> if u < 0 || u >= g.n then raise (Malformed "edge endpoint out of range"))
    g.edges

let degree g v = g.offsets.(v + 1) - g.offsets.(v)

let iter_neighbors g v f =
  for e = g.offsets.(v) to g.offsets.(v + 1) - 1 do
    f g.edges.(e)
  done

let avg_degree g = if g.n = 0 then 0.0 else float_of_int g.m /. float_of_int g.n

(* Build from a directed edge list; duplicate edges are kept (multigraph),
   matching what generators produce. Neighbors are sorted per vertex. *)
let of_edge_list ~n pairs =
  let deg = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then raise (Malformed "edge out of range");
      deg.(u) <- deg.(u) + 1)
    pairs;
  let offsets = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    offsets.(v + 1) <- offsets.(v) + deg.(v)
  done;
  let m = offsets.(n) in
  let edges = Array.make (max m 1) 0 in
  let cursor = Array.copy offsets in
  List.iter
    (fun (u, v) ->
      edges.(cursor.(u)) <- v;
      cursor.(u) <- cursor.(u) + 1)
    pairs;
  (* sort each adjacency list for locality and determinism *)
  for v = 0 to n - 1 do
    let lo = offsets.(v) and hi = offsets.(v + 1) in
    let sub = Array.sub edges lo (hi - lo) in
    Array.sort compare sub;
    Array.blit sub 0 edges lo (hi - lo)
  done;
  let g = { n; m; offsets; edges = (if m = 0 then [||] else edges) } in
  check g;
  g

(* Make the graph symmetric (undirected) by adding reverse edges and
   deduplicating. *)
let symmetrize g =
  let pairs = ref [] in
  for v = 0 to g.n - 1 do
    iter_neighbors g v (fun u ->
        if u <> v then begin
          pairs := (v, u) :: !pairs;
          pairs := (u, v) :: !pairs
        end)
  done;
  let dedup = Hashtbl.create (2 * g.m) in
  let uniq =
    List.filter
      (fun e ->
        if Hashtbl.mem dedup e then false
        else begin
          Hashtbl.replace dedup e ();
          true
        end)
      !pairs
  in
  of_edge_list ~n:g.n uniq
