(* Pure-OCaml reference implementations of the paper's graph benchmarks.
   These are the ground truth every simulated variant (serial, data-parallel,
   Phloem, manual) is validated against. *)

let int_max = 0x3FFFFFFF

(* Breadth-first search: distance of every vertex reachable from [root];
   unreachable vertices keep [int_max]. *)
let bfs (g : Csr.t) ~root =
  let dist = Array.make g.Csr.n int_max in
  dist.(root) <- 0;
  let cur = Queue.create () in
  Queue.push root cur;
  let rec go () =
    if not (Queue.is_empty cur) then begin
      let v = Queue.pop cur in
      let d = dist.(v) + 1 in
      Csr.iter_neighbors g v (fun u ->
          if dist.(u) = int_max then begin
            dist.(u) <- d;
            Queue.push u cur
          end);
      go ()
    end
  in
  go ();
  dist

(* Connected components: label of each vertex = smallest vertex id in its
   component (searches from each unlabeled vertex, as in the paper). *)
let connected_components (g : Csr.t) =
  let label = Array.make g.Csr.n (-1) in
  let stack = Stack.create () in
  for v = 0 to g.Csr.n - 1 do
    if label.(v) < 0 then begin
      label.(v) <- v;
      Stack.push v stack;
      while not (Stack.is_empty stack) do
        let x = Stack.pop stack in
        Csr.iter_neighbors g x (fun u ->
            if label.(u) < 0 then begin
              label.(u) <- v;
              Stack.push u stack
            end)
      done
    end
  done;
  label

(* PageRank-Delta (Ligra-style): only vertices whose delta exceeds
   [eps] propagate. Deterministic accumulation in vertex order so the
   simulated serial version can match exactly. *)
let pagerank_delta (g : Csr.t) ~iters ~damping ~eps =
  let n = g.Csr.n in
  let rank = Array.make n ((1.0 -. damping) /. float_of_int n) in
  let delta = Array.make n (1.0 /. float_of_int n) in
  let active = Array.make n true in
  for _ = 1 to iters do
    let ngh_sum = Array.make n 0.0 in
    for v = 0 to n - 1 do
      if active.(v) then begin
        let contrib = delta.(v) /. float_of_int (max 1 (Csr.degree g v)) in
        Csr.iter_neighbors g v (fun u -> ngh_sum.(u) <- ngh_sum.(u) +. contrib)
      end
    done;
    for u = 0 to n - 1 do
      let d = damping *. ngh_sum.(u) in
      delta.(u) <- d;
      if abs_float d > eps then begin
        rank.(u) <- rank.(u) +. d;
        active.(u) <- true
      end
      else active.(u) <- false
    done
  done;
  rank

(* Radii estimation: BFS from the given sources; radii.(v) is the max
   distance from any sample, and the estimate is the overall max. *)
let radii_from_roots (g : Csr.t) ~roots =
  let n = g.Csr.n in
  let radii = Array.make n 0 in
  let estimate = ref 0 in
  Array.iter
    (fun root ->
      let dist = bfs g ~root in
      for v = 0 to n - 1 do
        if dist.(v) < int_max && dist.(v) > radii.(v) then radii.(v) <- dist.(v);
        if radii.(v) > !estimate then estimate := radii.(v)
      done)
    roots;
  (radii, !estimate)

let sample_roots (g : Csr.t) ~samples ~seed =
  let rng = Phloem_util.Prng.create seed in
  Array.init samples (fun _ -> Phloem_util.Prng.int rng g.Csr.n)

let radii (g : Csr.t) ~samples ~seed =
  radii_from_roots g ~roots:(sample_roots g ~samples ~seed)
