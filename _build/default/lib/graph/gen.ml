(* Synthetic graph generators standing in for the paper's Table IV inputs
   (DIMACS road networks, SNAP internet/collaboration graphs, meshes).
   What matters for the evaluation's shape is the degree distribution and
   the working-set size relative to the caches, both controlled here. *)

open Phloem_util

(* Road-network-like: a W x H grid with 4-neighbor connectivity and a small
   fraction of random "highway" shortcuts. Low uniform degree (~2-4), long
   diameter — like USA-road-d. *)
let grid ~width ~height ~seed =
  let rng = Prng.create seed in
  let n = width * height in
  let id x y = (y * width) + x in
  let pairs = ref [] in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      if x + 1 < width then begin
        pairs := (id x y, id (x + 1) y) :: !pairs;
        pairs := (id (x + 1) y, id x y) :: !pairs
      end;
      if y + 1 < height then begin
        pairs := (id x y, id x (y + 1)) :: !pairs;
        pairs := (id x (y + 1), id x y) :: !pairs
      end
    done
  done;
  (* shortcuts: ~1% of vertices get a long-range link *)
  for _ = 1 to max 1 (n / 100) do
    let u = Prng.int rng n and v = Prng.int rng n in
    if u <> v then begin
      pairs := (u, v) :: !pairs;
      pairs := (v, u) :: !pairs
    end
  done;
  Csr.of_edge_list ~n !pairs

(* Power-law-ish (internet/collaboration/as-Skitter-like): R-MAT with the
   classic (0.57, 0.19, 0.19, 0.05) partition probabilities. *)
let rmat ~scale ~edge_factor ~seed =
  let rng = Prng.create seed in
  let n = 1 lsl scale in
  let m = n * edge_factor in
  let a, b, c = (0.57, 0.19, 0.19) in
  let gen_edge () =
    let u = ref 0 and v = ref 0 in
    for _ = 1 to scale do
      let r = Prng.float rng 1.0 in
      let bit_u, bit_v =
        if r < a then (0, 0)
        else if r < a +. b then (0, 1)
        else if r < a +. b +. c then (1, 0)
        else (1, 1)
      in
      u := (!u lsl 1) lor bit_u;
      v := (!v lsl 1) lor bit_v
    done;
    (!u, !v)
  in
  let pairs = ref [] in
  for _ = 1 to m / 2 do
    let u, v = gen_edge () in
    if u <> v then begin
      pairs := (u, v) :: !pairs;
      pairs := (v, u) :: !pairs
    end
  done;
  Csr.of_edge_list ~n !pairs

(* Uniform random (Erdős–Rényi by edge sampling), symmetric. *)
let uniform ~n ~avg_degree ~seed =
  let rng = Prng.create seed in
  let m = n * avg_degree / 2 in
  let pairs = ref [] in
  for _ = 1 to m do
    let u = Prng.int rng n and v = Prng.int rng n in
    if u <> v then begin
      pairs := (u, v) :: !pairs;
      pairs := (v, u) :: !pairs
    end
  done;
  Csr.of_edge_list ~n !pairs

(* Mesh-like (hugetrace dynamic-simulation style): a triangulated grid,
   degree ~3 and very regular locality. *)
let mesh ~width ~height ~seed =
  let rng = Prng.create seed in
  ignore rng;
  let n = width * height in
  let id x y = (y * width) + x in
  let pairs = ref [] in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      let add u v =
        pairs := (u, v) :: !pairs;
        pairs := (v, u) :: !pairs
      in
      if x + 1 < width then add (id x y) (id (x + 1) y);
      if y + 1 < height then add (id x y) (id x (y + 1));
      if x + 1 < width && y + 1 < height then add (id x y) (id (x + 1) (y + 1))
    done
  done;
  Csr.of_edge_list ~n !pairs
