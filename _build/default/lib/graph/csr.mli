(** Compressed Sparse Row graphs (the paper's representation, Sec. II). *)

type t = {
  n : int;  (** vertices *)
  m : int;  (** directed edges *)
  offsets : int array;  (** length n+1; the paper's [g->nodes] *)
  edges : int array;  (** length m; the paper's [g->edges] *)
}

exception Malformed of string

val check : t -> unit
(** Well-formedness: offset monotonicity, endpoint ranges.
    @raise Malformed otherwise. *)

val degree : t -> int -> int
val iter_neighbors : t -> int -> (int -> unit) -> unit
val avg_degree : t -> float

val of_edge_list : n:int -> (int * int) list -> t
(** Build from directed edges; duplicates are kept, adjacency lists are
    sorted. @raise Malformed on out-of-range endpoints. *)

val symmetrize : t -> t
(** Undirected closure with duplicate edges removed. *)
