(* Table IV: input graphs. Each paper input is replaced by a synthetic
   counterpart with a matching degree profile, scaled down so event-driven
   simulation of every variant stays tractable. [scale] multiplies the
   vertex counts (1.0 = default evaluation size). *)

type input = {
  name : string; (* the paper's name *)
  domain : string;
  kind : [ `Training | `Test ];
  substitute : string; (* what we generate instead *)
  graph : Csr.t Lazy.t;
}

let mk name domain kind substitute gen =
  { name; domain; kind; substitute; graph = Lazy.from_fun gen }

let sc scale base = max 8 (int_of_float (float_of_int base *. scale))

let all ?(scale = 1.0) () =
  [
    (* --- training inputs --- *)
    mk "internet" "Training internet graph" `Training "R-MAT scale 10, ef 2"
      (fun () -> Gen.rmat ~scale:10 ~edge_factor:2 ~seed:101);
    mk "USA-road-d-NY" "Training road network" `Training "grid w/ shortcuts"
      (fun () -> Gen.grid ~width:(sc scale 56) ~height:(sc scale 48) ~seed:102);
    (* --- test inputs (Table IV order: sorted by edge count) --- *)
    mk "coAuthorsDBLP" "Human collaboration" `Test "R-MAT scale 11, ef 6"
      (fun () -> Gen.rmat ~scale:11 ~edge_factor:6 ~seed:103);
    mk "hugetrace-00000" "Dynamic simulation" `Test "triangulated mesh"
      (fun () -> Gen.mesh ~width:(sc scale 80) ~height:(sc scale 64) ~seed:104);
    mk "Freescale1" "Circuit simulation" `Test "uniform, avg deg 5.6"
      (fun () -> Gen.uniform ~n:(sc scale 5000) ~avg_degree:5 ~seed:105);
    mk "as-Skitter" "Internet graph" `Test "R-MAT scale 11, ef 12"
      (fun () -> Gen.rmat ~scale:11 ~edge_factor:12 ~seed:106);
    mk "USA-road-d-USA" "Road network" `Test "large grid w/ shortcuts"
      (fun () -> Gen.grid ~width:(sc scale 104) ~height:(sc scale 88) ~seed:107);
  ]

let training ?scale () = List.filter (fun i -> i.kind = `Training) (all ?scale ())
let test ?scale () = List.filter (fun i -> i.kind = `Test) (all ?scale ())

let find ?scale name =
  match List.find_opt (fun i -> i.name = name) (all ?scale ()) with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "unknown graph input %s" name)

let table4 ?scale () =
  let t = Phloem_util.Table.create [ "Domain"; "Graph"; "Vertices"; "Edges"; "Avg. deg."; "Substitute" ] in
  List.iter
    (fun i ->
      let g = Lazy.force i.graph in
      Phloem_util.Table.add_row t
        [
          i.domain;
          i.name;
          string_of_int g.Csr.n;
          string_of_int g.Csr.m;
          Phloem_util.Table.fmt_float ~decimals:1 (Csr.avg_degree g);
          i.substitute;
        ])
    (all ?scale ());
  Phloem_util.Table.render t
