(** Pure-OCaml reference implementations of the evaluated graph algorithms.

    Every simulated variant (serial, data-parallel, Phloem-compiled, manual)
    is validated against these. They follow the exact iteration order of the
    serial kernels so even floating-point results compare bit-for-bit. *)

val int_max : int
(** The "unvisited" sentinel used by the kernels (fits in 32 bits). *)

val bfs : Csr.t -> root:int -> int array
(** [bfs g ~root] is the distance of every vertex from [root]; unreachable
    vertices hold {!int_max}. *)

val connected_components : Csr.t -> int array
(** Label of each vertex = the smallest vertex id in its component
    (searches from each unlabeled vertex, as the paper describes). *)

val pagerank_delta : Csr.t -> iters:int -> damping:float -> eps:float -> float array
(** Ligra-style PageRank-Delta: only vertices whose delta exceeds [eps]
    propagate in a round. Deterministic, vertex-ordered accumulation. *)

val radii_from_roots : Csr.t -> roots:int array -> int array * int
(** [radii_from_roots g ~roots] runs one BFS per root; returns per-vertex
    maximum observed distance and the overall radius estimate. *)

val sample_roots : Csr.t -> samples:int -> seed:int -> int array
(** Deterministic pseudo-random BFS sources for Radii. *)

val radii : Csr.t -> samples:int -> seed:int -> int array * int
(** {!radii_from_roots} over {!sample_roots}. *)
