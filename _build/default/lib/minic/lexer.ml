(* Hand-written lexer for minic. Produces a token list with line numbers for
   error reporting. [#pragma ...] lines become single PRAGMA tokens. *)

type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | KW of string (* int float void if else while for break return extern restrict *)
  | PUNCT of string (* operators and delimiters *)
  | PRAGMA of string (* body of a #pragma line *)
  | EOF

type lexed = { tok : token; line : int }

exception Error of string

let fail line fmt = Printf.ksprintf (fun s -> raise (Error (Printf.sprintf "line %d: %s" line s))) fmt

let keywords =
  [ "int"; "float"; "double"; "void"; "if"; "else"; "while"; "for"; "break";
    "return"; "extern"; "restrict" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(* Longest-match punctuation, tried in order. *)
let puncts =
  [ "<<="; ">>="; "<<"; ">>"; "<="; ">="; "=="; "!="; "&&"; "||"; "+="; "-=";
    "*="; "/="; "%="; "++"; "--"; "->"; "("; ")"; "{"; "}"; "["; "]"; ";"; ",";
    "+"; "-"; "*"; "/"; "%"; "<"; ">"; "="; "!"; "&"; "|"; "^"; "~"; "?"; ":"; "." ]

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let pos = ref 0 in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let emit tok = toks := { tok; line = !line } :: !toks in
  while !pos < n do
    let c = src.[!pos] in
    if c = '\n' then begin
      incr line;
      incr pos
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if c = '/' && peek 1 = Some '/' then begin
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      pos := !pos + 2;
      let closed = ref false in
      while (not !closed) && !pos < n do
        if src.[!pos] = '\n' then incr line;
        if src.[!pos] = '*' && peek 1 = Some '/' then begin
          closed := true;
          pos := !pos + 2
        end
        else incr pos
      done;
      if not !closed then fail !line "unterminated comment"
    end
    else if c = '#' then begin
      (* #pragma <body> to end of line *)
      let start = !pos in
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done;
      let text = String.sub src start (!pos - start) in
      let prefix = "#pragma" in
      if String.length text >= String.length prefix
         && String.sub text 0 (String.length prefix) = prefix
      then
        emit (PRAGMA (String.trim (String.sub text (String.length prefix)
                                     (String.length text - String.length prefix))))
      else fail !line "unsupported preprocessor directive: %s" text
    end
    else if is_digit c then begin
      let start = !pos in
      while !pos < n && is_digit src.[!pos] do
        incr pos
      done;
      if !pos < n && src.[!pos] = '.' then begin
        incr pos;
        while !pos < n && is_digit src.[!pos] do
          incr pos
        done;
        emit (FLOAT (float_of_string (String.sub src start (!pos - start))))
      end
      else emit (INT (int_of_string (String.sub src start (!pos - start))))
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do
        incr pos
      done;
      let word = String.sub src start (!pos - start) in
      if List.mem word keywords then
        emit (KW (if word = "double" then "float" else word))
      else emit (IDENT word)
    end
    else begin
      let rec try_puncts = function
        | [] -> fail !line "unexpected character %c" c
        | p :: rest ->
          let lp = String.length p in
          if !pos + lp <= n && String.sub src !pos lp = p then begin
            emit (PUNCT p);
            pos := !pos + lp
          end
          else try_puncts rest
      in
      try_puncts puncts
    end
  done;
  List.rev ({ tok = EOF; line = !line } :: !toks)

let token_to_string = function
  | INT i -> string_of_int i
  | FLOAT f -> string_of_float f
  | IDENT s -> s
  | KW s -> s
  | PUNCT s -> Printf.sprintf "'%s'" s
  | PRAGMA s -> Printf.sprintf "#pragma %s" s
  | EOF -> "<eof>"
