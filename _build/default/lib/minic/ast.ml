(* AST for minic, the C-like input language of Phloem. It covers what the
   paper's kernels need: int/float scalars, 1-D restrict-qualified array
   parameters, loops, conditionals, break, calls, and Phloem's pragma
   annotations (Table II). *)

type ty =
  | Tint
  | Tfloat
  | Tvoid
  | Tarray of ty (* array-of-int / array-of-float parameter *)

type binop =
  | Badd | Bsub | Bmul | Bdiv | Bmod
  | Blt | Ble | Bgt | Bge | Beq | Bne
  | Band | Bor
  | Bband | Bbor | Bbxor | Bshl | Bshr

type unop = Uneg | Unot | Ucast_int | Ucast_float

type expr =
  | Eint of int
  | Efloat of float
  | Evar of string
  | Ebin of binop * expr * expr
  | Eun of unop * expr
  | Eindex of string * expr (* a[i] *)
  | Ecall of string * expr list
  | Epostincr of string (* x++ as an expression: yields the old value *)

type lhs =
  | Lvar of string
  | Lindex of string * expr

type pragma =
  | Pphloem
  | Pdecouple
  | Preplicate of int
  | Pdistribute
  | Pcost of int

type stmt =
  | Sdecl of ty * string * expr option
  | Sassign of lhs * expr
  | Sop_assign of lhs * binop * expr (* x += e, a[i] -= e, ... *)
  | Sincr of lhs (* x++; as a statement *)
  | Sexpr of expr
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sfor of stmt option * expr option * stmt option * stmt list
  | Sbreak
  | Sreturn of expr option
  | Spragma of pragma

type param = {
  p_ty : ty;
  p_name : string;
  p_restrict : bool;
}

type func = {
  f_name : string;
  f_ret : ty;
  f_params : param list;
  f_body : stmt list;
  f_pragmas : pragma list;
}

type extern_decl = {
  x_name : string;
  x_ret : ty;
  x_params : ty list;
  x_cost : int;
}

type program = {
  funcs : func list;
  externs : extern_decl list;
}

let rec ty_to_string = function
  | Tint -> "int"
  | Tfloat -> "float"
  | Tvoid -> "void"
  | Tarray t -> ty_to_string t ^ "*"
