(* Recursive-descent parser for minic. Standard C expression precedence;
   statements cover the subset the paper's kernels use. *)

open Ast
open Lexer

exception Error of string

type state = { mutable toks : lexed list }

let fail st fmt =
  let line = match st.toks with { line; _ } :: _ -> line | [] -> 0 in
  Printf.ksprintf (fun s -> raise (Error (Printf.sprintf "line %d: %s" line s))) fmt

let peek st = match st.toks with { tok; _ } :: _ -> tok | [] -> EOF

let peek2 st = match st.toks with _ :: { tok; _ } :: _ -> tok | _ -> EOF

let advance st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let expect st tok =
  if peek st = tok then advance st
  else fail st "expected %s, found %s" (token_to_string tok) (token_to_string (peek st))

let expect_ident st =
  match peek st with
  | IDENT s ->
    advance st;
    s
  | t -> fail st "expected identifier, found %s" (token_to_string t)

let parse_pragma_text st text =
  let words =
    String.split_on_char ' ' text |> List.concat_map (String.split_on_char '(')
    |> List.concat_map (String.split_on_char ')')
    |> List.filter (fun w -> w <> "")
  in
  match words with
  | [ "phloem" ] -> Pphloem
  | [ "decouple" ] -> Pdecouple
  | "replicate" :: n :: _ -> (
    match int_of_string_opt n with
    | Some n -> Preplicate n
    | None -> fail st "replicate expects a count, got %s" n)
  | [ "distribute" ] | "distribute" :: _ -> Pdistribute
  | "cost" :: n :: _ -> (
    match int_of_string_opt n with
    | Some n -> Pcost n
    | None -> fail st "cost expects a count, got %s" n)
  | _ -> fail st "unknown pragma: %s" text

(* --- types --- *)

let parse_base_ty st =
  match peek st with
  | KW "int" ->
    advance st;
    Tint
  | KW "float" ->
    advance st;
    Tfloat
  | KW "void" ->
    advance st;
    Tvoid
  | t -> fail st "expected a type, found %s" (token_to_string t)

(* --- expressions --- *)

let binop_of_punct = function
  | "+" -> Some Badd
  | "-" -> Some Bsub
  | "*" -> Some Bmul
  | "/" -> Some Bdiv
  | "%" -> Some Bmod
  | "<" -> Some Blt
  | "<=" -> Some Ble
  | ">" -> Some Bgt
  | ">=" -> Some Bge
  | "==" -> Some Beq
  | "!=" -> Some Bne
  | "&&" -> Some Band
  | "||" -> Some Bor
  | "&" -> Some Bband
  | "|" -> Some Bbor
  | "^" -> Some Bbxor
  | "<<" -> Some Bshl
  | ">>" -> Some Bshr
  | _ -> None

(* precedence climbing; higher binds tighter *)
let precedence = function
  | Bmul | Bdiv | Bmod -> 10
  | Badd | Bsub -> 9
  | Bshl | Bshr -> 8
  | Blt | Ble | Bgt | Bge -> 7
  | Beq | Bne -> 6
  | Bband -> 5
  | Bbxor -> 4
  | Bbor -> 3
  | Band -> 2
  | Bor -> 1

let rec parse_expr st = parse_binary st 0

and parse_binary st min_prec =
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | PUNCT p -> (
      match binop_of_punct p with
      | Some op when precedence op >= min_prec ->
        advance st;
        let rhs = parse_binary st (precedence op + 1) in
        lhs := Ebin (op, !lhs, rhs)
      | Some _ | None -> continue := false)
    | _ -> continue := false
  done;
  !lhs

and parse_unary st =
  match peek st with
  | PUNCT "-" ->
    advance st;
    Eun (Uneg, parse_unary st)
  | PUNCT "!" ->
    advance st;
    Eun (Unot, parse_unary st)
  | PUNCT "(" when peek2 st = KW "int" || peek2 st = KW "float" -> (
    advance st;
    let ty = parse_base_ty st in
    expect st (PUNCT ")");
    let e = parse_unary st in
    match ty with
    | Tint -> Eun (Ucast_int, e)
    | Tfloat -> Eun (Ucast_float, e)
    | Tvoid | Tarray _ -> fail st "invalid cast")
  | _ -> parse_postfix st

and parse_postfix st =
  match peek st with
  | INT i ->
    advance st;
    Eint i
  | FLOAT f ->
    advance st;
    Efloat f
  | PUNCT "(" ->
    advance st;
    let e = parse_expr st in
    expect st (PUNCT ")");
    e
  | IDENT name -> (
    advance st;
    match peek st with
    | PUNCT "(" ->
      advance st;
      let args = ref [] in
      if peek st <> PUNCT ")" then begin
        args := [ parse_expr st ];
        while peek st = PUNCT "," do
          advance st;
          args := parse_expr st :: !args
        done
      end;
      expect st (PUNCT ")");
      Ecall (name, List.rev !args)
    | PUNCT "[" ->
      advance st;
      let idx = parse_expr st in
      expect st (PUNCT "]");
      Eindex (name, idx)
    | PUNCT "++" ->
      advance st;
      Epostincr name
    | _ -> Evar name)
  | t -> fail st "expected an expression, found %s" (token_to_string t)

(* --- statements --- *)

let op_of_compound = function
  | "+=" -> Badd
  | "-=" -> Bsub
  | "*=" -> Bmul
  | "/=" -> Bdiv
  | "%=" -> Bmod
  | p -> invalid_arg p

let rec parse_stmt st : stmt =
  match peek st with
  | PUNCT "{" -> (
    match parse_block st with
    | [ s ] -> s
    | ss -> Sif (Eint 1, ss, []) (* block as unconditional if; rare *))
  | KW "if" ->
    advance st;
    expect st (PUNCT "(");
    let c = parse_expr st in
    expect st (PUNCT ")");
    let t = parse_stmt_as_block st in
    let f =
      if peek st = KW "else" then begin
        advance st;
        parse_stmt_as_block st
      end
      else []
    in
    Sif (c, t, f)
  | KW "while" ->
    advance st;
    expect st (PUNCT "(");
    let c = parse_expr st in
    expect st (PUNCT ")");
    Swhile (c, parse_stmt_as_block st)
  | KW "for" ->
    advance st;
    expect st (PUNCT "(");
    let init =
      match peek st with
      | PUNCT ";" -> None
      | KW ("int" | "float") ->
        (* declaration initializer: for (int i = 0; ...) *)
        let ty = parse_base_ty st in
        let name = expect_ident st in
        expect st (PUNCT "=");
        Some (Sdecl (ty, name, Some (parse_expr st)))
      | _ -> Some (parse_simple st)
    in
    expect st (PUNCT ";");
    let cond = if peek st = PUNCT ";" then None else Some (parse_expr st) in
    expect st (PUNCT ";");
    let step = if peek st = PUNCT ")" then None else Some (parse_simple st) in
    expect st (PUNCT ")");
    Sfor (init, cond, step, parse_stmt_as_block st)
  | KW "break" ->
    advance st;
    expect st (PUNCT ";");
    Sbreak
  | KW "return" ->
    advance st;
    if peek st = PUNCT ";" then begin
      advance st;
      Sreturn None
    end
    else begin
      let e = parse_expr st in
      expect st (PUNCT ";");
      Sreturn (Some e)
    end
  | PRAGMA text ->
    advance st;
    Spragma (parse_pragma_text st text)
  | KW ("int" | "float") ->
    let ty = parse_base_ty st in
    let name = expect_ident st in
    let init =
      if peek st = PUNCT "=" then begin
        advance st;
        Some (parse_expr st)
      end
      else None
    in
    expect st (PUNCT ";");
    Sdecl (ty, name, init)
  | _ ->
    let s = parse_simple st in
    expect st (PUNCT ";");
    s

and parse_stmt_as_block st : stmt list =
  if peek st = PUNCT "{" then parse_block st else [ parse_stmt st ]

and parse_block st : stmt list =
  expect st (PUNCT "{");
  let stmts = ref [] in
  while peek st <> PUNCT "}" do
    stmts := parse_stmt st :: !stmts
  done;
  expect st (PUNCT "}");
  List.rev !stmts

(* assignment / expression statements (no trailing ';') *)
and parse_simple st : stmt =
  match peek st with
  | IDENT name -> (
    match peek2 st with
    | PUNCT "=" ->
      advance st;
      advance st;
      Sassign (Lvar name, parse_expr st)
    | PUNCT (("+=" | "-=" | "*=" | "/=" | "%=") as p) ->
      advance st;
      advance st;
      Sop_assign (Lvar name, op_of_compound p, parse_expr st)
    | PUNCT "++" ->
      advance st;
      advance st;
      Sincr (Lvar name)
    | PUNCT "[" -> (
      (* a[i] = ..., a[i] += ..., or expression statement *)
      advance st;
      advance st;
      let idx = parse_expr st in
      expect st (PUNCT "]");
      match peek st with
      | PUNCT "=" ->
        advance st;
        Sassign (Lindex (name, idx), parse_expr st)
      | PUNCT (("+=" | "-=" | "*=" | "/=" | "%=") as p) ->
        advance st;
        Sop_assign (Lindex (name, idx), op_of_compound p, parse_expr st)
      | PUNCT "++" ->
        advance st;
        Sincr (Lindex (name, idx))
      | _ -> Sexpr (Eindex (name, idx)))
    | _ -> Sexpr (parse_expr st))
  | _ -> Sexpr (parse_expr st)

(* --- top level --- *)

let parse_param st =
  let base = parse_base_ty st in
  let is_ptr =
    if peek st = PUNCT "*" then begin
      advance st;
      true
    end
    else false
  in
  let restrict =
    if peek st = KW "restrict" then begin
      advance st;
      true
    end
    else false
  in
  let name = expect_ident st in
  let is_arr =
    if peek st = PUNCT "[" then begin
      advance st;
      expect st (PUNCT "]");
      true
    end
    else false
  in
  let ty = if is_ptr || is_arr then Tarray base else base in
  { p_ty = ty; p_name = name; p_restrict = restrict || not (is_ptr || is_arr) }

let parse_program src : program =
  let st = { toks = Lexer.tokenize src } in
  let funcs = ref [] and externs = ref [] in
  let pending_pragmas = ref [] in
  let rec loop () =
    match peek st with
    | EOF -> ()
    | PRAGMA text ->
      advance st;
      pending_pragmas := parse_pragma_text st text :: !pending_pragmas;
      loop ()
    | KW "extern" ->
      advance st;
      let ret = parse_base_ty st in
      let name = expect_ident st in
      expect st (PUNCT "(");
      let ptys = ref [] in
      if peek st <> PUNCT ")" then begin
        let p = parse_param st in
        ptys := [ p.p_ty ];
        while peek st = PUNCT "," do
          advance st;
          let p = parse_param st in
          ptys := p.p_ty :: !ptys
        done
      end;
      expect st (PUNCT ")");
      expect st (PUNCT ";");
      let cost =
        List.fold_left
          (fun acc p -> match p with Pcost c -> c | _ -> acc)
          10 !pending_pragmas
      in
      pending_pragmas := [];
      externs := { x_name = name; x_ret = ret; x_params = List.rev !ptys; x_cost = cost } :: !externs;
      loop ()
    | KW ("int" | "float" | "void") ->
      let ret = parse_base_ty st in
      let name = expect_ident st in
      expect st (PUNCT "(");
      let params = ref [] in
      if peek st <> PUNCT ")" then begin
        params := [ parse_param st ];
        while peek st = PUNCT "," do
          advance st;
          params := parse_param st :: !params
        done
      end;
      expect st (PUNCT ")");
      let body = parse_block st in
      funcs :=
        {
          f_name = name;
          f_ret = ret;
          f_params = List.rev !params;
          f_body = body;
          f_pragmas = List.rev !pending_pragmas;
        }
        :: !funcs;
      pending_pragmas := [];
      loop ()
    | t -> fail st "expected a declaration, found %s" (token_to_string t)
  in
  loop ();
  { funcs = List.rev !funcs; externs = List.rev !externs }
