lib/minic/ast.ml:
