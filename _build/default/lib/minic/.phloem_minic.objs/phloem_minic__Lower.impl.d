lib/minic/lower.ml: Array Ast List Parser Phloem_ir Printf
