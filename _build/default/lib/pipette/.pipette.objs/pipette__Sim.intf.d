lib/pipette/sim.mli: Config Energy Engine Phloem_ir
