lib/pipette/sim.ml: Array Config Energy Engine Interp List Phloem_ir Types Validate
