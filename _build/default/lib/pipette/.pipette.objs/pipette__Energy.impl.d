lib/pipette/energy.ml: Cache Config Engine
