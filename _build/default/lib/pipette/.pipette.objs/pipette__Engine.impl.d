lib/pipette/engine.ml: Array Bytes Cache Config Hashtbl Heap List Phloem_ir Phloem_util Predictor Printf String Trace Types Vec
