lib/pipette/config.ml: Printf
