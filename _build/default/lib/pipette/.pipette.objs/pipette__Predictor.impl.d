lib/pipette/predictor.ml: Array
