lib/pipette/cache.ml: Array Config Hashtbl
