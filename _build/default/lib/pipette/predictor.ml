(* Branch direction predictor: gshare with 2-bit saturating counters and
   per-thread global history. Irregular applications' data-dependent branches
   are exactly what this mispredicts, which is the serial baseline's pain. *)

type t = {
  table : int array; (* 2-bit counters, initialized weakly taken *)
  mask : int;
  history_mask : int;
  histories : int array; (* per thread *)
  mutable lookups : int;
  mutable mispredicts : int;
}

let create ~entries ~history_bits ~n_threads =
  {
    table = Array.make entries 2;
    mask = entries - 1;
    history_mask = (1 lsl history_bits) - 1;
    histories = Array.make n_threads 0;
    lookups = 0;
    mispredicts = 0;
  }

(* Predict-and-update in one step (trace-driven: the actual outcome is
   known). Returns whether the prediction was correct. *)
let predict_update t ~thread ~pc ~taken =
  let h = t.histories.(thread) in
  let idx = (pc lxor h) land t.mask in
  let ctr = t.table.(idx) in
  let predicted_taken = ctr >= 2 in
  t.lookups <- t.lookups + 1;
  let correct = predicted_taken = taken in
  if not correct then t.mispredicts <- t.mispredicts + 1;
  t.table.(idx) <- (if taken then min 3 (ctr + 1) else max 0 (ctr - 1));
  t.histories.(thread) <- ((h lsl 1) lor (if taken then 1 else 0)) land t.history_mask;
  correct

let mispredict_rate t =
  if t.lookups = 0 then 0.0 else float_of_int t.mispredicts /. float_of_int t.lookups
