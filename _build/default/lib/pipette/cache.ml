(* Cache hierarchy timing model: per-core L1 and L2, shared L3, and DRAM with
   per-controller bandwidth occupancy. Set-associative with true-LRU ranking;
   inclusive fills on miss. Prefetched lines carry an availability time so a
   demand access shortly after a prefetch pays the remaining latency only. *)

type level = {
  sets : int;
  ways : int;
  latency : int;
  tags : int array; (* set * ways; -1 = invalid *)
  lru : int array; (* recency stamp per way *)
  mutable stamp : int;
  mutable hits : int;
  mutable misses : int;
}

let make_level (p : Config.cache_params) ~line_bytes ~size_scale =
  let bytes = p.size_kb * 1024 * size_scale in
  let sets = max 1 (bytes / (line_bytes * p.ways)) in
  {
    sets;
    ways = p.ways;
    latency = p.latency;
    tags = Array.make (sets * p.ways) (-1);
    lru = Array.make (sets * p.ways) 0;
    stamp = 0;
    hits = 0;
    misses = 0;
  }

type dram = {
  min_latency : int;
  cycles_per_line : int;
  next_free : int array; (* per controller *)
  mutable accesses : int;
}

type t = {
  line_shift : int;
  l1s : level array; (* per core *)
  l2s : level array; (* per core *)
  l3 : level;
  dram : dram;
  inflight : (int, int) Hashtbl.t; (* line -> availability time *)
}

type access_result = { latency : int; level_hit : int (* 1..3, 4 = DRAM *) }

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n / 2) in
  go 0 n

let create (cfg : Config.t) =
  let mk p scale = make_level p ~line_bytes:cfg.line_bytes ~size_scale:scale in
  {
    line_shift = log2 cfg.line_bytes;
    l1s = Array.init cfg.n_cores (fun _ -> mk cfg.l1 1);
    l2s = Array.init cfg.n_cores (fun _ -> mk cfg.l2 1);
    l3 = mk cfg.l3 cfg.n_cores;
    dram =
      {
        min_latency = cfg.dram_latency;
        cycles_per_line = cfg.dram_cycles_per_line;
        next_free = Array.make cfg.dram_controllers 0;
        accesses = 0;
      };
    inflight = Hashtbl.create 64;
  }

(* Lookup a line in a level; on hit, refresh LRU and return true. *)
let lookup lvl line =
  let set = line mod lvl.sets in
  let base = set * lvl.ways in
  let rec find w =
    if w >= lvl.ways then None
    else if lvl.tags.(base + w) = line then Some w
    else find (w + 1)
  in
  match find 0 with
  | Some w ->
    lvl.stamp <- lvl.stamp + 1;
    lvl.lru.(base + w) <- lvl.stamp;
    lvl.hits <- lvl.hits + 1;
    true
  | None ->
    lvl.misses <- lvl.misses + 1;
    false

(* Insert a line, evicting the LRU way. *)
let insert lvl line =
  let set = line mod lvl.sets in
  let base = set * lvl.ways in
  let victim = ref 0 in
  for w = 1 to lvl.ways - 1 do
    if lvl.lru.(base + w) < lvl.lru.(base + !victim) then victim := w
  done;
  lvl.stamp <- lvl.stamp + 1;
  lvl.tags.(base + !victim) <- line;
  lvl.lru.(base + !victim) <- lvl.stamp

let dram_access d line ~now =
  d.accesses <- d.accesses + 1;
  let ctrl = line mod Array.length d.next_free in
  let start = max now d.next_free.(ctrl) in
  d.next_free.(ctrl) <- start + d.cycles_per_line;
  start - now + d.min_latency

(* A demand access from [core] at cycle [now]. Fills all levels on the way
   back (inclusive). Returns the load-to-use latency. *)
let access t ~core ~addr ~now =
  let line = addr lsr t.line_shift in
  let l1 = t.l1s.(core) and l2 = t.l2s.(core) in
  let base_lat =
    if lookup l1 line then { latency = l1.latency; level_hit = 1 }
    else if lookup l2 line then begin
      insert l1 line;
      { latency = l2.latency; level_hit = 2 }
    end
    else if lookup t.l3 line then begin
      insert l2 line;
      insert l1 line;
      { latency = t.l3.latency; level_hit = 3 }
    end
    else begin
      let lat = dram_access t.dram line ~now in
      insert t.l3 line;
      insert l2 line;
      insert l1 line;
      { latency = max lat t.l3.latency; level_hit = 4 }
    end
  in
  (* If the line is still in flight from a prefetch, wait for its arrival. *)
  match Hashtbl.find_opt t.inflight line with
  | Some avail when avail > now ->
    { base_lat with latency = max base_lat.latency (avail - now) }
  | Some _ ->
    Hashtbl.remove t.inflight line;
    base_lat
  | None -> base_lat

(* A software/compiler prefetch: brings the line in but records when it
   actually arrives, so immediate demand accesses pay the residue. *)
let prefetch t ~core ~addr ~now =
  let line = addr lsr t.line_shift in
  let r = access t ~core ~addr ~now in
  if r.level_hit > 1 then Hashtbl.replace t.inflight line (now + r.latency)

type counters = {
  c_l1_hits : int;
  c_l1_misses : int;
  c_l2_hits : int;
  c_l2_misses : int;
  c_l3_hits : int;
  c_l3_misses : int;
  c_dram : int;
}

let counters t =
  let sum f arr = Array.fold_left (fun acc l -> acc + f l) 0 arr in
  {
    c_l1_hits = sum (fun l -> l.hits) t.l1s;
    c_l1_misses = sum (fun l -> l.misses) t.l1s;
    c_l2_hits = sum (fun l -> l.hits) t.l2s;
    c_l2_misses = sum (fun l -> l.misses) t.l2s;
    c_l3_hits = t.l3.hits;
    c_l3_misses = t.l3.misses;
    c_dram = t.dram.accesses;
  }
