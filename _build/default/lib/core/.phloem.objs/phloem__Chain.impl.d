lib/core/chain.ml: Array List Option Phloem_ir
