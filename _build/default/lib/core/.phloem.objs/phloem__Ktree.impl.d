lib/core/ktree.ml: List Phloem_ir
