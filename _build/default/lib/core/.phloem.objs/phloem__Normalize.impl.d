lib/core/normalize.ml: List Phloem_ir Printf
