lib/core/costmodel.ml: Hashtbl Ktree List Phloem_ir
