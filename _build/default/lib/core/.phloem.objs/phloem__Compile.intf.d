lib/core/compile.mli: Costmodel Decouple Phloem_ir
