lib/core/costmodel.mli: Ktree Phloem_ir
