lib/core/compile.ml: Chain Costmodel Decouple Ktree List Normalize Phloem_ir Phloem_minic
