lib/core/decouple.ml: Array Costmodel Hashtbl Ktree List Normalize Option Phloem_ir Printf String
