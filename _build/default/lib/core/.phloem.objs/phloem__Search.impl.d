lib/core/search.ml: Compile Costmodel Decouple Fun List Option Phloem_ir Phloem_util Pipette
