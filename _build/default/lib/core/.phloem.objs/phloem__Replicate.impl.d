lib/core/replicate.ml: Array List Phloem_ir Printf
