lib/core/search.mli: Costmodel Decouple Phloem_ir Pipette
